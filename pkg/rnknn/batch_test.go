package rnknn

import (
	"context"
	"errors"
	"testing"

	"rnknn/internal/gen"
)

func batchDB(t *testing.T) *DB {
	t.Helper()
	g := gen.Network(gen.NetworkSpec{Name: "batch", Rows: 16, Cols: 20, Seed: 9})
	db, err := Open(g,
		WithMethods(INE, IERPHL, Gtree),
		WithObjects(DefaultCategory, gen.Uniform(g, 0.03, 5)),
		WithObjects("sparse", gen.Uniform(g, 0.005, 6)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestBatchMatchesIndividualQueries: a mixed batch across methods,
// categories, kNN and range must return exactly what the one-at-a-time
// API returns, in Add* order, for every worker count.
func TestBatchMatchesIndividualQueries(t *testing.T) {
	db := batchDB(t)
	ctx := context.Background()
	queries := gen.QueryVertices(db.Graph(), 16, 31)
	for _, workers := range []int{1, 3, 8} {
		b := db.Batch().Workers(workers)
		type expect func() ([]Result, error)
		var wants []expect
		for i, q := range queries {
			switch i % 4 {
			case 0:
				b.AddKNN(q, 5)
				wants = append(wants, func() ([]Result, error) { return db.KNN(ctx, q, 5) })
			case 1:
				b.AddKNN(q, 3, WithMethod(Gtree), WithCategory("sparse"))
				wants = append(wants, func() ([]Result, error) {
					return db.KNN(ctx, q, 3, WithMethod(Gtree), WithCategory("sparse"))
				})
			case 2:
				b.AddKNN(q, 8, WithMethod(MethodAuto))
				wants = append(wants, func() ([]Result, error) { return db.BruteForceKNN(q, 8) })
			case 3:
				b.AddRange(q, 9000)
				wants = append(wants, func() ([]Result, error) { return db.Range(ctx, q, 9000) })
			}
		}
		got, err := b.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wants) {
			t.Fatalf("workers=%d: %d results for %d queries", workers, len(got), len(wants))
		}
		for i, r := range got {
			if r.Err != nil {
				t.Fatalf("workers=%d op %d: %v", workers, i, r.Err)
			}
			want, err := wants[i]()
			if err != nil {
				t.Fatal(err)
			}
			if !SameResults(r.Results, want) {
				t.Fatalf("workers=%d op %d (q=%d): batch %s != individual %s",
					workers, i, r.Query, FormatResults(r.Results), FormatResults(want))
			}
		}
	}
}

// TestBatchPerQueryErrors: invalid queries carry their own typed error and
// leave the rest of the batch untouched.
func TestBatchPerQueryErrors(t *testing.T) {
	db := batchDB(t)
	got, err := db.Batch().
		AddKNN(0, 0).                         // bad k
		AddKNN(-1, 3).                        // bad vertex
		AddKNN(0, 3, WithMethod(Method(42))). // unknown method
		AddKNN(0, 3, WithMethod(ROAD)).       // known but not enabled
		AddKNN(0, 3, WithCategory("nope")).   // unknown category
		AddRange(0, -1).                      // bad radius
		AddRange(0, 100, WithMethod(Gtree)).  // range on a non-INE method
		AddKNN(5, 4).                         // and one valid query
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantErrs := []error{ErrBadK, ErrBadVertex, ErrUnknownMethod, ErrMethodNotEnabled,
		ErrUnknownCategory, ErrBadRadius, ErrRangeMethod, nil}
	for i, want := range wantErrs {
		if want == nil {
			if got[i].Err != nil || len(got[i].Results) != 4 {
				t.Errorf("op %d: err=%v results=%d, want 4 clean results", i, got[i].Err, len(got[i].Results))
			}
			continue
		}
		if !errors.Is(got[i].Err, want) {
			t.Errorf("op %d: err = %v, want %v", i, got[i].Err, want)
		}
	}
}

// TestBatchCancellation: a pre-cancelled context fails every query with
// the context error, and Run reports it.
func TestBatchCancellation(t *testing.T) {
	db := batchDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := db.Batch()
	for i := 0; i < 10; i++ {
		b.AddKNN(int32(i), 3)
	}
	got, err := b.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	for i, r := range got {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("op %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Results != nil {
			t.Fatalf("op %d: partial results survived cancellation", i)
		}
	}
}

// TestBatchEmptyAndRerun: an empty batch is a no-op; Run is repeatable.
func TestBatchEmptyAndRerun(t *testing.T) {
	db := batchDB(t)
	ctx := context.Background()
	empty, err := db.Batch().Run(ctx)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(empty))
	}
	b := db.Batch().AddKNN(7, 3)
	first, err := b.Run(ctx)
	if err != nil || first[0].Err != nil {
		t.Fatal(err, first[0].Err)
	}
	second, err := b.Run(ctx)
	if err != nil || second[0].Err != nil {
		t.Fatal(err, second[0].Err)
	}
	if !SameResults(first[0].Results, second[0].Results) {
		t.Fatal("re-run returned different results")
	}
}

// TestBatchReportsMethodAndLatency: successful ops carry the concrete
// answering method (Auto resolved) and a positive latency.
func TestBatchReportsMethodAndLatency(t *testing.T) {
	db := batchDB(t)
	got, err := db.Batch().
		AddKNN(3, 4, WithMethod(Gtree)).
		AddKNN(3, 4, WithMethod(MethodAuto)).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Method != Gtree || got[0].Latency <= 0 {
		t.Fatalf("fixed op: method=%v latency=%v", got[0].Method, got[0].Latency)
	}
	if got[1].Method == MethodAuto || !got[1].Method.valid() {
		t.Fatalf("auto op resolved to %v, want a concrete enabled method", got[1].Method)
	}
	if got[0].Query != 3 {
		t.Fatalf("Query echo = %d", got[0].Query)
	}
}

// TestBatchSessionAmortization: a single-worker batch of N queries on one
// method checks out exactly one session for the whole batch — the
// amortization Batch exists for.
func TestBatchSessionAmortization(t *testing.T) {
	db := batchDB(t)
	base := db.pools[Gtree].gets.Load()
	b := db.Batch().Workers(1)
	for i := 0; i < 32; i++ {
		b.AddKNN(int32(i), 3, WithMethod(Gtree))
	}
	if _, err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if gets := db.pools[Gtree].gets.Load() - base; gets != 1 {
		t.Fatalf("32 single-worker batch queries checked out %d sessions, want 1", gets)
	}
	if db.pools[Gtree].gets.Load() != db.pools[Gtree].puts.Load() {
		t.Fatal("batch leaked a session")
	}
}

// TestBatchStats: batch queries land in the same per-method counters as
// individual ones.
func TestBatchStats(t *testing.T) {
	db := batchDB(t)
	if _, err := db.Batch().AddKNN(1, 2, WithMethod(IERPHL)).AddRange(1, 500).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Methods["IER-PHL"].KNNQueries != 1 {
		t.Fatalf("IER-PHL KNNQueries = %d", s.Methods["IER-PHL"].KNNQueries)
	}
	if s.Methods["INE"].RangeQueries != 1 {
		t.Fatalf("INE RangeQueries = %d", s.Methods["INE"].RangeQueries)
	}
}
