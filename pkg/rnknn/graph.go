package rnknn

import (
	"io"

	"rnknn/internal/graph"
)

// The graph construction surface, re-exported so external importers (which
// cannot reach internal/ packages) can build, load and save road networks.
// In-module code may keep using internal/graph and internal/gen directly.

// GraphBuilder accumulates undirected edges and produces a Graph in CSR
// form: create one with NewGraphBuilder, AddEdge each road segment with its
// travel-distance and travel-time weights, then Build.
type GraphBuilder = graph.Builder

// WeightKind selects which weight a Graph view exposes (TravelDistance or
// TravelTime); switch views with Graph.View.
type WeightKind = graph.WeightKind

// The two weight kinds of the paper's evaluation (Section 7.5).
const (
	TravelDistance = graph.TravelDistance
	TravelTime     = graph.TravelTime
)

// NewGraphBuilder creates a builder for n vertices with the given
// coordinates (one x,y pair per vertex, used for the Euclidean lower
// bounds of IER and DisBrw).
func NewGraphBuilder(n int, x, y []float64) *GraphBuilder {
	return graph.NewBuilder(n, x, y)
}

// ReadGraph deserializes a Graph written with Graph.Write.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }
