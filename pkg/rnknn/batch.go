package rnknn

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rnknn/internal/knn"
)

// Batch collects kNN and range queries and executes them together: Run
// fans the queries across a bounded worker pool, and each worker checks
// out at most one pooled session per method for its whole share of the
// batch instead of once per query — the per-query pool round-trip and
// interrupt setup are amortized away, which is what makes a batch the
// natural unit of work for a server front end draining a request queue.
//
//	results, err := db.Batch().
//		AddKNN(q1, 10).
//		AddKNN(q2, 5, rnknn.WithMethod(rnknn.MethodAuto)).
//		AddRange(q3, 5000, rnknn.WithCategory("fuel")).
//		Run(ctx)
//
// A Batch is built and run from one goroutine (Run itself fans out
// internally); create one Batch per goroutine rather than sharing. Run may
// be called again to re-execute the same queries.
type Batch struct {
	db      *DB
	workers int
	ops     []batchOp
}

type batchOp struct {
	isRange bool
	q       int32
	k       int
	radius  Dist
	qo      queryOpts
}

// BatchResult is the outcome of one query in a batch, at the same index
// Add* placed it.
type BatchResult struct {
	// Query echoes the query vertex.
	Query int32
	// Method is the concrete method that answered (the planner's pick when
	// the query asked for MethodAuto; INE for range queries). Meaningless
	// when Err is non-nil.
	Method Method
	// Results is the query's answer, in nondecreasing distance order.
	Results []Result
	// Err is this query's error — validation errors and cancellation land
	// here per query, never as a panic, so one bad query cannot sink the
	// batch.
	Err error
	// Latency is this query's execution time (zero when it never ran).
	Latency time.Duration
}

// Batch starts an empty batch bound to the DB.
func (db *DB) Batch() *Batch { return &Batch{db: db} }

// Workers bounds the worker pool; n <= 0 (the default) means GOMAXPROCS.
// The effective pool is never larger than the number of queries.
func (b *Batch) Workers(n int) *Batch {
	b.workers = n
	return b
}

// AddKNN appends a kNN query with the same options KNN accepts, returning
// b for chaining.
func (b *Batch) AddKNN(q int32, k int, opts ...QueryOption) *Batch {
	b.ops = append(b.ops, batchOp{q: q, k: k, qo: b.db.applyOpts(opts)})
	return b
}

// AddRange appends a range query with the same options Range accepts,
// returning b for chaining.
func (b *Batch) AddRange(q int32, radius Dist, opts ...QueryOption) *Batch {
	b.ops = append(b.ops, batchOp{isRange: true, q: q, radius: radius, qo: b.db.applyOpts(opts)})
	return b
}

// Len returns the number of queries added so far.
func (b *Batch) Len() int { return len(b.ops) }

// Run executes every added query and returns one BatchResult per query, in
// Add* order. Per-query failures (validation, unknown category, ...) land
// in the corresponding BatchResult.Err and do not affect other queries.
// The returned error is non-nil only when ctx was cancelled or expired
// before the batch drained; queries cut short or never started then carry
// ctx's error individually.
func (b *Batch) Run(ctx context.Context) ([]BatchResult, error) {
	out := make([]BatchResult, len(b.ops))
	if len(b.ops) == 0 {
		return out, ctx.Err()
	}
	workers := b.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(b.ops) {
		workers = len(b.ops)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.db.batchWorker(ctx, b.ops, out, &next)
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// batchWorker drains queries from the shared cursor. Sessions are checked
// out from the pools at most once per (worker, method) and returned when
// the worker's share is drained — the batch amortization this API exists
// for. After cancellation the worker keeps draining, marking each
// remaining query with ctx's error, so every result slot is filled.
func (db *DB) batchWorker(ctx context.Context, ops []batchOp, out []BatchResult, next *atomic.Int64) {
	var sess [numMethods]*pooledSession
	defer func() {
		for m, ps := range sess {
			if ps != nil {
				db.pools[m].put(ps)
			}
		}
	}()
	for {
		i := int(next.Add(1)) - 1
		if i >= len(ops) {
			return
		}
		out[i] = db.runBatchOp(ctx, &ops[i], &sess)
	}
}

// runBatchOp validates and executes one batch query against the worker's
// cached sessions. The search runs into the session's worker-local scratch
// buffer (reused across the worker's whole share of the batch); the only
// per-query allocation is the exact-size result copy the caller keeps.
func (db *DB) runBatchOp(ctx context.Context, op *batchOp, sess *[numMethods]*pooledSession) BatchResult {
	res := BatchResult{Query: op.q}
	fail := func(err error) BatchResult { res.Err = err; return res }
	if op.isRange {
		if op.radius < 0 {
			return fail(fmt.Errorf("%w: radius=%d", ErrBadRadius, op.radius))
		}
		if err := db.checkRangeMethod(op.qo); err != nil {
			return fail(err)
		}
	} else {
		if op.k <= 0 {
			return fail(fmt.Errorf("%w: k=%d", ErrBadK, op.k))
		}
		if err := db.checkKNNMethod(op.qo.method); err != nil {
			return fail(err)
		}
	}
	b, err := db.checkQuery(ctx, op.q, op.qo)
	if err != nil {
		return fail(err)
	}
	m := INE
	if !op.isRange {
		m = db.resolveMethod(op.qo.method, op.k, b)
	}
	res.Method = m
	ps := sess[m]
	if ps == nil {
		if ps, err = db.pools[m].get(b); err != nil {
			return fail(err)
		}
		sess[m] = ps
	} else {
		// Rebinding an already-held session to this query's category
		// snapshot is a few pointer swaps — the cheap path Batch exists
		// to hit.
		ps.sess.Rebind(b)
	}
	ps.arm(ctx)
	start := time.Now()
	if op.isRange {
		ps.buf = ps.sess.(knn.RangeMethod).RangeAppend(op.q, op.radius, ps.buf[:0])
	} else {
		ps.buf = ps.sess.KNNAppend(op.q, op.k, ps.buf[:0])
	}
	res.Latency = time.Since(start)
	ps.disarm()
	if err := ctx.Err(); err != nil {
		// The scan may have been cut short; drop the partial answer, as
		// KNN and Range do.
		return fail(err)
	}
	res.Results = make([]Result, len(ps.buf))
	copy(res.Results, ps.buf)
	if op.isRange {
		db.stats.recordRange(res.Latency)
	} else {
		db.recordKNN(m, op.k, b, res.Latency)
	}
	return res
}
