package rnknn

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rnknn/internal/core"
	"rnknn/internal/dijkstra"
	"rnknn/internal/knn"
)

// Batch collects kNN and range queries and executes them together. Run
// first groups the kNN queries by (object category, resolved method,
// partition leaf): queries clustered in one leaf cell of the road network
// overlap heavily in search region, and a group of them runs as ONE shared
// expansion — a multi-source frontier (INE) or a shared border-distance
// computation (G-tree) that pays the graph traversal once for the whole
// group while preserving each member's exact answer. Whether a group
// shares or fans out is decided by the planner's fitted cost model
// (SharedAuto, the default): sharing wins when individual queries are
// expensive (sparse objects, large k), and loses when they are cheap.
// Everything else — range queries, scattered queries, non-expansion
// methods — fans across a bounded worker pool, and each worker checks out
// at most one pooled session per method for its whole share of the batch,
// so the per-query pool round-trip is amortized away either way.
//
//	results, err := db.Batch().
//		AddKNN(q1, 10).
//		AddKNN(q2, 5, rnknn.WithMethod(rnknn.MethodAuto)).
//		AddRange(q3, 5000, rnknn.WithCategory("fuel")).
//		Run(ctx)
//
// A Batch is built and run from one goroutine (Run itself fans out
// internally); create one Batch per goroutine rather than sharing. Run may
// be called again to re-execute the same queries.
type Batch struct {
	db      *DB
	workers int
	shared  SharedMode
	ops     []batchOp
}

type batchOp struct {
	isRange bool
	q       int32
	k       int
	radius  Dist
	qo      queryOpts
}

// SharedMode controls the shared-expansion grouping decision.
type SharedMode int

const (
	// SharedAuto (the default) lets the planner's fitted cost model decide
	// per group whether sharing beats fanning out.
	SharedAuto SharedMode = iota
	// SharedOn forces every eligible group (≥2 same-leaf queries on an
	// expansion method) through the shared path.
	SharedOn
	// SharedOff disables sharing: every query fans out individually.
	SharedOff
)

// BatchResult is the outcome of one query in a batch, at the same index
// Add* placed it.
type BatchResult struct {
	// Query echoes the query vertex.
	Query int32
	// Method is the concrete method that answered (the planner's pick when
	// the query asked for MethodAuto; INE for range queries). Meaningless
	// when Err is non-nil.
	Method Method
	// Results is the query's answer, in nondecreasing distance order.
	Results []Result
	// Err is this query's error — validation errors and cancellation land
	// here per query, never as a panic, so one bad query cannot sink the
	// batch.
	Err error
	// Latency is this query's execution time (zero when it never ran). For
	// a query answered by a shared group it is the group's elapsed time
	// divided by the group size — the amortized cost sharing exists for.
	Latency time.Duration
	// Shared reports that a shared-expansion group answered this query.
	Shared bool
	// Epoch is the category epoch the answer was computed from (see
	// DB.Epoch) — the exact object-set version, so callers can cache the
	// answer with epoch-keyed invalidation. Left zero when Err is non-nil
	// (note a never-mutated category's epoch is itself 0).
	Epoch uint64
}

// Batch starts an empty batch bound to the DB.
func (db *DB) Batch() *Batch { return &Batch{db: db} }

// Workers bounds the worker pool; n <= 0 (the default) means GOMAXPROCS.
// The effective pool is never larger than the number of work units.
func (b *Batch) Workers(n int) *Batch {
	b.workers = n
	return b
}

// SharedExpansion sets the grouping mode (default SharedAuto), returning b
// for chaining.
func (b *Batch) SharedExpansion(m SharedMode) *Batch {
	b.shared = m
	return b
}

// AddKNN appends a kNN query with the same options KNN accepts, returning
// b for chaining.
func (b *Batch) AddKNN(q int32, k int, opts ...QueryOption) *Batch {
	b.ops = append(b.ops, batchOp{q: q, k: k, qo: b.db.applyOpts(opts)})
	return b
}

// AddRange appends a range query with the same options Range accepts,
// returning b for chaining.
func (b *Batch) AddRange(q int32, radius Dist, opts ...QueryOption) *Batch {
	b.ops = append(b.ops, batchOp{isRange: true, q: q, radius: radius, qo: b.db.applyOpts(opts)})
	return b
}

// Len returns the number of queries added so far.
func (b *Batch) Len() int { return len(b.ops) }

// BatchGroup describes one same-leaf cluster the grouping planner found,
// and its execution decision.
type BatchGroup struct {
	// Method is the resolved method the group's members share.
	Method Method
	// Category is the members' object category.
	Category string
	// Leaf is the partition leaf the members cluster in.
	Leaf int32
	// Size is the number of member queries.
	Size int
	// Shared reports the decision: one shared expansion (true) or
	// individual fan-out (false).
	Shared bool
	// Reason is the planner's one-line rationale for the decision.
	Reason string
}

// BatchPlan is Batch.Explain's report: how Run would execute the batch.
type BatchPlan struct {
	// Groups lists the same-leaf clusters considered for sharing, in first-
	// query order, each with its decision and rationale.
	Groups []BatchGroup
	// SharedQueries counts queries that would run inside shared groups.
	SharedQueries int
	// FanoutQueries counts queries that would fan out individually (range
	// queries, non-expansion methods, scattered or below-crossover groups).
	FanoutQueries int
}

// Explain reports how Run would execute the batch — the grouping planner's
// clusters and per-group shared-vs-fanout decisions — without running any
// query. The planner adapts to observed latency, so consecutive Explains
// may differ.
func (b *Batch) Explain() BatchPlan {
	units, singles := b.db.planBatch(context.Background(), b.ops, b.shared)
	p := BatchPlan{FanoutQueries: len(singles)}
	for _, u := range units {
		p.Groups = append(p.Groups, BatchGroup{
			Method: u.m, Category: u.cat, Leaf: u.leaf,
			Size: len(u.ops), Shared: u.sharedRun, Reason: u.reason,
		})
		if u.sharedRun {
			p.SharedQueries += len(u.ops)
		} else {
			p.FanoutQueries += len(u.ops)
		}
	}
	return p
}

// planUnit is one same-leaf cluster with its execution decision and the
// category epoch it is pinned to.
type planUnit struct {
	ops       []int // indices into Batch.ops
	m         Method
	cat       string
	leaf      int32
	bind      *core.Binding
	maxK      int
	sharedRun bool
	reason    string
}

// groupKey identifies one shareable cluster.
type groupKey struct {
	cat  string
	m    Method
	leaf int32
}

// planBatch is the grouping planner: it buckets group-eligible kNN queries
// by (category, resolved method, partition leaf), caps each bucket at the
// shared frontier's width, and decides shared-vs-fanout per group. Queries
// that are not group-eligible — range queries, methods without a shared
// path, validation failures (left for runBatchOp to report) — come back in
// singles. Group units pin the category epoch their members will answer
// from.
func (db *DB) planBatch(ctx context.Context, ops []batchOp, mode SharedMode) ([]planUnit, []int) {
	var units []planUnit
	var singles []int
	byKey := map[groupKey]int{} // key -> index of its open unit
	for i := range ops {
		op := &ops[i]
		if op.isRange || op.k <= 0 || mode == SharedOff {
			singles = append(singles, i)
			continue
		}
		if db.checkKNNMethod(op.qo.method) != nil {
			singles = append(singles, i)
			continue
		}
		bind, err := db.checkQuery(ctx, op.q, op.qo)
		if err != nil {
			singles = append(singles, i)
			continue
		}
		m := db.resolveMethod(op.qo.method, op.k, bind)
		if m != INE && m != Gtree {
			singles = append(singles, i)
			continue
		}
		key := groupKey{cat: op.qo.category, m: m, leaf: db.batchPartition().LeafOf[op.q]}
		ui, open := byKey[key]
		// Buckets split at the shared frontier's width: a wider group would
		// overflow the multi-source improvement masks.
		if open && len(units[ui].ops) >= dijkstra.MaxWidth {
			open = false
		}
		if !open {
			ui = len(units)
			byKey[key] = ui
			units = append(units, planUnit{m: m, cat: key.cat, leaf: key.leaf, bind: bind})
		}
		u := &units[ui]
		u.ops = append(u.ops, i)
		if op.k > u.maxK {
			u.maxK = op.k
		}
	}
	// Decide each unit; members of non-shared units fan out individually.
	for ui := range units {
		u := &units[ui]
		switch {
		case len(u.ops) < 2:
			u.reason = "fan-out: group too small to share"
		case mode == SharedOn:
			u.sharedRun = true
			u.reason = fmt.Sprintf("shared expansion: forced by SharedOn (%d members)", len(u.ops))
		default:
			bc := db.plan.ChooseBatch(u.m.kind(), db.features(u.maxK, u.bind), len(u.ops))
			u.sharedRun = bc.Shared
			u.reason = bc.Reason
		}
		if !u.sharedRun {
			singles = append(singles, u.ops...)
		}
	}
	return units, singles
}

// Run executes every added query and returns one BatchResult per query, in
// Add* order. Per-query failures (validation, unknown category, ...) land
// in the corresponding BatchResult.Err and do not affect other queries.
// The returned error is non-nil only when ctx was cancelled or expired
// before the batch drained; queries cut short or never started then carry
// ctx's error individually.
func (b *Batch) Run(ctx context.Context) ([]BatchResult, error) {
	out := make([]BatchResult, len(b.ops))
	if len(b.ops) == 0 {
		return out, ctx.Err()
	}
	units, singles := b.db.planBatch(ctx, b.ops, b.shared)
	shared := units[:0:0]
	for _, u := range units {
		if u.sharedRun {
			shared = append(shared, u)
		}
	}
	b.db.batchStats.batches.Add(1)
	b.db.batchStats.sharedGroups.Add(uint64(len(shared)))
	for _, u := range shared {
		b.db.batchStats.sharedQueries.Add(uint64(len(u.ops)))
	}
	b.db.batchStats.fanoutQueries.Add(uint64(len(singles)))

	nUnits := len(shared) + len(singles)
	workers := b.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nUnits {
		workers = nUnits
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.db.batchWorker(ctx, b.ops, out, shared, singles, &next)
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// batchWorker drains work units (shared groups first, then the fan-out
// singles) from the shared cursor. Sessions are checked out from the pools
// at most once per (worker, method) and returned when the worker's share is
// drained — the batch amortization this API exists for. After cancellation
// the worker keeps draining, marking each remaining query with ctx's error,
// so every result slot is filled.
func (db *DB) batchWorker(ctx context.Context, ops []batchOp, out []BatchResult, shared []planUnit, singles []int, next *atomic.Int64) {
	var sess [numMethods]*pooledSession
	defer func() {
		for m, ps := range sess {
			if ps != nil {
				db.pools[m].put(ps)
			}
		}
	}()
	for {
		i := int(next.Add(1)) - 1
		if i >= len(shared)+len(singles) {
			return
		}
		if i < len(shared) {
			db.runBatchGroup(ctx, ops, &shared[i], out, &sess)
		} else {
			j := singles[i-len(shared)]
			out[j] = db.runBatchOp(ctx, &ops[j], &sess)
		}
	}
}

// runBatchGroup answers one shared group through a single KNNGroupAppend on
// the group's method session. Every member answers from the unit's pinned
// category epoch; each member's Latency is the group's elapsed time divided
// by the group size. Shared members feed the per-method query counters but
// NOT the planner's latency EWMA — an amortized group latency is not a
// single-query latency and would corrupt the regime cells the grouping
// decision itself reads.
func (db *DB) runBatchGroup(ctx context.Context, ops []batchOp, u *planUnit, out []BatchResult, sess *[numMethods]*pooledSession) {
	fail := func(err error) {
		for _, i := range u.ops {
			out[i] = BatchResult{Query: ops[i].q, Err: err}
		}
	}
	if err := ctx.Err(); err != nil {
		fail(err)
		return
	}
	ps := sess[u.m]
	if ps == nil {
		var err error
		if ps, err = db.pools[u.m].get(u.bind); err != nil {
			fail(err)
			return
		}
		sess[u.m] = ps
	} else {
		ps.sess.Rebind(u.bind)
	}
	bm, ok := ps.sess.(knn.BatchMethod)
	if !ok {
		// Unreachable for the methods planBatch groups; answer individually
		// rather than fail if a future method slips through.
		for _, i := range u.ops {
			out[i] = db.runBatchOp(ctx, &ops[i], sess)
		}
		return
	}
	qs := make([]knn.GroupQuery, len(u.ops))
	dst := make([][]knn.Result, len(u.ops))
	for j, i := range u.ops {
		qs[j] = knn.GroupQuery{Q: ops[i].q, K: ops[i].k}
	}
	ps.arm(ctx)
	start := time.Now()
	bm.KNNGroupAppend(qs, dst)
	elapsed := time.Since(start)
	ps.disarm()
	if err := ctx.Err(); err != nil {
		// The expansion may have been cut short; drop the partial answers,
		// as KNN does.
		fail(err)
		return
	}
	per := elapsed / time.Duration(len(u.ops))
	for j, i := range u.ops {
		out[i] = BatchResult{Query: ops[i].q, Method: u.m, Results: dst[j], Latency: per, Shared: true, Epoch: u.bind.Epoch}
		db.stats.recordKNN(u.m, per)
	}
}

// runBatchOp validates and executes one batch query against the worker's
// cached sessions. The search runs into the session's worker-local scratch
// buffer (reused across the worker's whole share of the batch); the only
// per-query allocation is the exact-size result copy the caller keeps.
func (db *DB) runBatchOp(ctx context.Context, op *batchOp, sess *[numMethods]*pooledSession) BatchResult {
	res := BatchResult{Query: op.q}
	fail := func(err error) BatchResult { res.Err = err; return res }
	if op.isRange {
		if op.radius < 0 {
			return fail(fmt.Errorf("%w: radius=%d", ErrBadRadius, op.radius))
		}
		if err := db.checkRangeMethod(op.qo); err != nil {
			return fail(err)
		}
	} else {
		if op.k <= 0 {
			return fail(fmt.Errorf("%w: k=%d", ErrBadK, op.k))
		}
		if err := db.checkKNNMethod(op.qo.method); err != nil {
			return fail(err)
		}
	}
	b, err := db.checkQuery(ctx, op.q, op.qo)
	if err != nil {
		return fail(err)
	}
	m := INE
	if !op.isRange {
		m = db.resolveMethod(op.qo.method, op.k, b)
	}
	res.Method = m
	ps := sess[m]
	if ps == nil {
		if ps, err = db.pools[m].get(b); err != nil {
			return fail(err)
		}
		sess[m] = ps
	} else {
		// Rebinding an already-held session to this query's category
		// snapshot is a few pointer swaps — the cheap path Batch exists
		// to hit.
		ps.sess.Rebind(b)
	}
	ps.arm(ctx)
	start := time.Now()
	if op.isRange {
		ps.buf = ps.sess.(knn.RangeMethod).RangeAppend(op.q, op.radius, ps.buf[:0])
	} else {
		ps.buf = ps.sess.KNNAppend(op.q, op.k, ps.buf[:0])
	}
	res.Latency = time.Since(start)
	ps.disarm()
	if err := ctx.Err(); err != nil {
		// The scan may have been cut short; drop the partial answer, as
		// KNN and Range do.
		return fail(err)
	}
	res.Results = make([]Result, len(ps.buf))
	copy(res.Results, ps.buf)
	res.Epoch = b.Epoch
	if op.isRange {
		db.stats.recordRange(res.Latency)
	} else {
		db.recordKNN(m, op.k, b, res.Latency)
	}
	return res
}
