package rnknn

import (
	"context"
	"errors"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/knn"
)

// testDB opens a small network with every non-SILC method and one default
// category.
func testDB(t *testing.T) *DB {
	t.Helper()
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 16, Cols: 20, Seed: 7})
	db, err := Open(g,
		WithMethods(INE, IERDijk, IERCH, IERTNR, IERPHL, IERGt, Gtree, ROAD),
		WithObjects(DefaultCategory, gen.Uniform(g, 0.02, 3)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil); !errors.Is(err, ErrBadGraph) {
		t.Fatalf("nil graph: got %v, want ErrBadGraph", err)
	}
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 8, Cols: 8, Seed: 1})
	if _, err := Open(g, WithMethods()); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("no methods: got %v, want ErrUnknownMethod", err)
	}
	if _, err := Open(g, WithMethods(Method(99))); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("bad method: got %v, want ErrUnknownMethod", err)
	}
	if _, err := Open(g, WithObjects("x", []int32{-1})); !errors.Is(err, ErrBadVertex) {
		t.Fatalf("bad object vertex: got %v, want ErrBadVertex", err)
	}
}

func TestMethodParsing(t *testing.T) {
	for _, m := range Methods() {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("nope"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown name: got %v, want ErrUnknownMethod", err)
	}
}

func TestEveryMethodMatchesBruteForce(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	queries := gen.QueryVertices(db.Graph(), 12, 5)
	for _, m := range db.Methods() {
		for _, q := range queries {
			got, err := db.KNN(ctx, q, 8, WithMethod(m))
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			want, err := db.BruteForceKNN(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !SameResults(got, want) {
				t.Fatalf("%s q=%d: got %s want %s", m, q, FormatResults(got), FormatResults(want))
			}
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	for _, q := range gen.QueryVertices(db.Graph(), 8, 6) {
		for _, radius := range []Dist{0, 2500, 20000} {
			got, err := db.Range(ctx, q, radius)
			if err != nil {
				t.Fatal(err)
			}
			want, err := db.BruteForceRange(q, radius)
			if err != nil {
				t.Fatal(err)
			}
			if !SameResults(got, want) {
				t.Fatalf("q=%d r=%d: got %s want %s", q, radius, FormatResults(got), FormatResults(want))
			}
		}
	}
}

func TestTypedQueryErrors(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"bad k", errOf(db.KNN(ctx, 0, 0)), ErrBadK},
		{"bad vertex", errOf(db.KNN(ctx, -1, 3)), ErrBadVertex},
		{"vertex past end", errOf(db.KNN(ctx, int32(db.Graph().NumVertices()), 3)), ErrBadVertex},
		{"unknown method", errOf(db.KNN(ctx, 0, 3, WithMethod(Method(42)))), ErrUnknownMethod},
		{"not enabled", errOf(db.KNN(ctx, 0, 3, WithMethod(DisBrw))), ErrMethodNotEnabled},
		{"unknown category", errOf(db.KNN(ctx, 0, 3, WithCategory("nope"))), ErrUnknownCategory},
		{"bad radius", errOf(db.Range(ctx, 0, -1)), ErrBadRadius},
		{"range method", errOf(db.Range(ctx, 0, 10, WithMethod(Gtree))), ErrRangeMethod},
		{"empty category name", db.RegisterObjects("", []int32{0}), ErrBadCategory},
		{"register bad vertex", db.RegisterObjects("x", []int32{int32(db.Graph().NumVertices())}), ErrBadVertex},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, c.err, c.want)
		}
	}
}

func errOf(_ []Result, err error) error { return err }

func TestContextCancellation(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.KNN(ctx, 0, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled KNN: got %v", err)
	}
	if _, err := db.Range(ctx, 0, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Range: got %v", err)
	}

	// A k far above the object count forces INE to scan the whole graph;
	// cancelling mid-scan must surface the context error, not a partial
	// answer. The interrupt is polled between expansion steps, so cancel
	// from the check itself via a context that expires immediately.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := db.KNN(ctx2, 0, db.Graph().NumVertices())
		done <- err
	}()
	cancel2()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-scan cancel: got %v", err)
	}
}

func TestCategorySwapVisibility(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	g := db.Graph()
	setA := gen.Uniform(g, 0.05, 11)
	setB := gen.Uniform(g, 0.05, 22)
	if err := db.RegisterObjects("poi", setA); err != nil {
		t.Fatal(err)
	}
	objsA := knn.NewObjectSet(g, setA)
	objsB := knn.NewObjectSet(g, setB)
	q := int32(g.NumVertices() / 2)
	got, err := db.KNN(ctx, q, 4, WithCategory("poi"))
	if err != nil {
		t.Fatal(err)
	}
	if want := knn.BruteForce(g, objsA, q, 4); !SameResults(got, want) {
		t.Fatalf("before swap: got %s want %s", FormatResults(got), FormatResults(want))
	}
	if err := db.RegisterObjects("poi", setB); err != nil {
		t.Fatal(err)
	}
	got, err = db.KNN(ctx, q, 4, WithCategory("poi"))
	if err != nil {
		t.Fatal(err)
	}
	if want := knn.BruteForce(g, objsB, q, 4); !SameResults(got, want) {
		t.Fatalf("after swap: got %s want %s", FormatResults(got), FormatResults(want))
	}
	if n, err := db.NumObjects("poi"); err != nil || n != objsB.Len() {
		t.Fatalf("NumObjects = %d, %v; want %d", n, err, objsB.Len())
	}
}

func TestStats(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := db.KNN(ctx, int32(i), 3, WithMethod(Gtree)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Range(ctx, 0, 5000); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Methods["Gtree"].KNNQueries != 5 {
		t.Fatalf("Gtree KNNQueries = %d, want 5", s.Methods["Gtree"].KNNQueries)
	}
	if s.Methods["Gtree"].TotalLatency <= 0 || s.Methods["Gtree"].MaxLatency <= 0 {
		t.Fatalf("Gtree latency aggregates not recorded: %+v", s.Methods["Gtree"])
	}
	if s.Methods["INE"].RangeQueries != 1 {
		t.Fatalf("INE RangeQueries = %d, want 1", s.Methods["INE"].RangeQueries)
	}
	for _, idx := range []string{"Gtree", "ROAD", "CH", "PHL", "TNR"} {
		info, ok := s.Indexes[idx]
		if !ok || info.SizeBytes <= 0 {
			t.Fatalf("index %s missing from stats: %+v", idx, s.Indexes)
		}
	}
	if n := s.Categories[DefaultCategory]; n <= 0 {
		t.Fatalf("default category size = %d", n)
	}
}

func TestDefaultMethodOrder(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 8, Cols: 8, Seed: 2})
	db, err := Open(g, WithMethods(Gtree, INE), WithObjects(DefaultCategory, gen.Uniform(g, 0.05, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if db.DefaultMethod() != Gtree {
		t.Fatalf("default = %v, want Gtree", db.DefaultMethod())
	}
	if got := db.Methods(); len(got) != 2 || got[0] != Gtree || got[1] != INE {
		t.Fatalf("methods = %v", got)
	}
}
