package rnknn

import (
	"context"
	"errors"
	"testing"
	"time"

	"rnknn/internal/gen"
)

// TestMethodAutoRegimes is the planner acceptance contract: on one DB,
// MethodAuto must resolve to different methods across (k, density)
// regimes — INE where objects are dense and k small (the expansion finds
// them immediately, Section 7.3), a fast-oracle method where objects are
// sparse and k large (Figures 10-11). The checked-in DefaultModel is
// fitted to one machine's measurements and may legitimately place the
// dense crossover elsewhere, so the test pins the planner to the seed
// model — the paper's regime table — explicitly.
func TestMethodAutoRegimes(t *testing.T) {
	// Large enough that a graph-wide INE scan (the sparse regime's worst
	// case) is clearly costlier than oracle-verified candidates.
	g := gen.Network(gen.NetworkSpec{Name: "auto", Rows: 64, Cols: 80, Seed: 13})
	db, err := Open(g,
		WithMethods(INE, IERPHL, Gtree),
		WithObjects("dense", gen.Uniform(g, 0.1, 3)),
		WithObjects("sparse", gen.Uniform(g, 0.003, 4)),
	)
	if err != nil {
		t.Fatal(err)
	}
	db.plan.SetModel(nil) // nil reverts to the hand-seeded paper priors

	densePlan, err := db.Explain(0, 2, WithMethod(MethodAuto), WithCategory("dense"))
	if err != nil {
		t.Fatal(err)
	}
	sparsePlan, err := db.Explain(0, 50, WithMethod(MethodAuto), WithCategory("sparse"))
	if err != nil {
		t.Fatal(err)
	}
	if densePlan.Method != INE {
		t.Errorf("dense/small-k regime: planned %v (%s), want INE", densePlan.Method, densePlan.Reason)
	}
	if sparsePlan.Method == INE || sparsePlan.Method == MethodAuto {
		t.Errorf("sparse/large-k regime: planned %v (%s), want a non-INE method", sparsePlan.Method, sparsePlan.Reason)
	}
	if densePlan.Method == sparsePlan.Method {
		t.Errorf("planner chose %v for both regimes; the crossover is the point", densePlan.Method)
	}

	// And the auto-planned queries are still exactly correct in both.
	ctx := context.Background()
	for _, c := range []struct {
		cat string
		k   int
	}{{"dense", 2}, {"sparse", 50}} {
		got, err := db.KNN(ctx, 0, c.k, WithMethod(MethodAuto), WithCategory(c.cat))
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.BruteForceKNN(0, c.k, WithCategory(c.cat))
		if err != nil {
			t.Fatal(err)
		}
		if !SameResults(got, want) {
			t.Errorf("%s: auto answer %s != %s", c.cat, FormatResults(got), FormatResults(want))
		}
	}
}

// TestExplain covers the fixed-method path and validation.
func TestExplain(t *testing.T) {
	db := testDB(t)
	p, err := db.Explain(0, 5, WithMethod(Gtree))
	if err != nil || p.Method != Gtree || p.Reason == "" {
		t.Fatalf("fixed Explain = %+v, %v", p, err)
	}
	auto, err := db.Explain(0, 5, WithMethod(MethodAuto))
	if err != nil || auto.Method == MethodAuto || auto.Reason == "" {
		t.Fatalf("auto Explain = %+v, %v", auto, err)
	}
	if _, err := db.Explain(0, 0); !errors.Is(err, ErrBadK) {
		t.Fatalf("bad k: %v", err)
	}
	if _, err := db.Explain(0, 5, WithMethod(Method(42))); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
	if _, err := db.Explain(0, 5, WithMethod(DisBrw)); !errors.Is(err, ErrMethodNotEnabled) {
		t.Fatalf("disabled method: %v", err)
	}
	if _, err := db.Explain(-5, 5); !errors.Is(err, ErrBadVertex) {
		t.Fatalf("bad vertex: %v", err)
	}
}

// TestAutoAdaptsToObservedLatency: after feeding the planner heavily
// skewed observations for a regime, MethodAuto must move off its static
// choice within that regime.
func TestAutoAdaptsToObservedLatency(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "adapt", Rows: 16, Cols: 20, Seed: 8})
	db, err := Open(g,
		WithMethods(INE, Gtree),
		WithObjects(DefaultCategory, gen.Uniform(g, 0.1, 3)),
	)
	if err != nil {
		t.Fatal(err)
	}
	before, err := db.Explain(0, 2, WithMethod(MethodAuto))
	if err != nil {
		t.Fatal(err)
	}
	if before.Method != INE {
		t.Fatalf("static dense choice = %v, want INE", before.Method)
	}
	b, err := db.snapshot(DefaultCategory)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate INE latencies collapsing (as if the regime's real traffic
	// contradicted the model) and Gtree being fast.
	for i := 0; i < 30; i++ {
		db.plan.Observe(INE.kind(), db.features(2, b), 50*time.Millisecond)
		db.plan.Observe(Gtree.kind(), db.features(2, b), 50*time.Microsecond)
	}
	after, err := db.Explain(0, 2, WithMethod(MethodAuto))
	if err != nil {
		t.Fatal(err)
	}
	if after.Method != Gtree {
		t.Fatalf("after observations: %v (%s), want Gtree", after.Method, after.Reason)
	}
}

// TestParseMethodAuto: "auto" round-trips case-insensitively.
func TestParseMethodAuto(t *testing.T) {
	for _, s := range []string{"Auto", "auto", "AUTO"} {
		m, err := ParseMethod(s)
		if err != nil || m != MethodAuto {
			t.Fatalf("ParseMethod(%q) = %v, %v", s, m, err)
		}
	}
	if MethodAuto.String() != "Auto" {
		t.Fatalf("MethodAuto.String() = %q", MethodAuto.String())
	}
	if m, err := ParseMethod("ier-phl"); err != nil || m != IERPHL {
		t.Fatalf("case-insensitive parse: %v, %v", m, err)
	}
}

// TestValidationBoundaries is the table-driven boundary check across all
// four public query entry points: k and radius limits, unknown and
// disabled methods, never a silent fallback.
func TestValidationBoundaries(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	seqErr := func(ctx context.Context, q int32, k int, opts ...QueryOption) error {
		var last error
		for _, err := range db.KNNSeq(ctx, q, k, opts...) {
			last = err
		}
		return last
	}
	batchErr := func(op func(b *Batch) *Batch) error {
		res, err := op(db.Batch()).Run(ctx)
		if err != nil {
			return err
		}
		return res[0].Err
	}
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"KNN k=0", errOf(db.KNN(ctx, 0, 0)), ErrBadK},
		{"KNN k<0", errOf(db.KNN(ctx, 0, -3)), ErrBadK},
		{"KNN unknown method", errOf(db.KNN(ctx, 0, 3, WithMethod(Method(99)))), ErrUnknownMethod},
		{"KNN negative method", errOf(db.KNN(ctx, 0, 3, WithMethod(Method(-7)))), ErrUnknownMethod},
		{"KNN disabled method", errOf(db.KNN(ctx, 0, 3, WithMethod(DisBrwOH))), ErrMethodNotEnabled},
		{"Range radius<0", errOf(db.Range(ctx, 0, -1)), ErrBadRadius},
		{"Range unknown method", errOf(db.Range(ctx, 0, 10, WithMethod(Method(99)))), ErrUnknownMethod},
		{"Range non-INE method", errOf(db.Range(ctx, 0, 10, WithMethod(IERPHL))), ErrRangeMethod},
		{"KNNSeq k=0", seqErr(ctx, 0, 0), ErrBadK},
		{"KNNSeq disabled", seqErr(ctx, 0, 3, WithMethod(DisBrw)), ErrMethodNotEnabled},
		{"Batch KNN k=0", batchErr(func(b *Batch) *Batch { return b.AddKNN(0, 0) }), ErrBadK},
		{"Batch unknown method", batchErr(func(b *Batch) *Batch { return b.AddKNN(0, 3, WithMethod(Method(99))) }), ErrUnknownMethod},
		{"Batch radius<0", batchErr(func(b *Batch) *Batch { return b.AddRange(0, -2) }), ErrBadRadius},
		{"BruteForceKNN k=0", errOf(db.BruteForceKNN(0, 0)), ErrBadK},
		{"BruteForceKNN unknown method", errOf(db.BruteForceKNN(0, 3, WithMethod(Method(99)))), ErrUnknownMethod},
		{"BruteForceRange radius<0", errOf(db.BruteForceRange(0, -1)), ErrBadRadius},
		{"BruteForceRange non-INE method", errOf(db.BruteForceRange(0, 5, WithMethod(Gtree))), ErrRangeMethod},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, c.err, c.want)
		}
	}
	// Range accepts MethodAuto (resolves to the one native range method).
	if _, err := db.Range(ctx, 0, 100, WithMethod(MethodAuto)); err != nil {
		t.Errorf("Range with MethodAuto: %v", err)
	}
}
