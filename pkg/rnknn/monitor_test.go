package rnknn

import (
	"context"
	"errors"
	"iter"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/monitor"
)

// monitorGraphs are the three networks the continuous-query contract is
// checked on; the third is monitored under the travel-time view, so the
// safe-region displacement accounting runs against the alternate weight
// array.
var monitorGraphs = []struct {
	spec       gen.NetworkSpec
	travelTime bool
}{
	{spec: gen.NetworkSpec{Name: "m-small", Rows: 8, Cols: 10, Seed: 61}},
	{spec: gen.NetworkSpec{Name: "m-mid", Rows: 14, Cols: 18, Seed: 67}},
	{spec: gen.NetworkSpec{Name: "m-tt", Rows: 10, Cols: 24, Seed: 71}, travelTime: true},
}

// walkRoute builds an n-vertex route by walking the adjacency: mostly one
// edge per step, with occasional stay-puts (a stopped vehicle) and rare
// teleports (forcing the monitor's jump path).
func walkRoute(g *graph.Graph, start int32, n int, rng *rand.Rand) []int32 {
	route := make([]int32, n)
	route[0] = start
	for i := 1; i < n; i++ {
		prev := route[i-1]
		switch {
		case rng.Intn(10) == 0:
			route[i] = prev
		case rng.Intn(25) == 0:
			route[i] = int32(rng.Intn(g.NumVertices()))
		default:
			targets, _ := g.Neighbors(prev)
			if len(targets) == 0 {
				route[i] = prev
			} else {
				route[i] = targets[rng.Intn(len(targets))]
			}
		}
	}
	return route
}

// verifyMonitorState proves the replayed member set is a valid kNN answer
// at vertex v over the given object set: the members are annotated with
// their true network distances (a brute-force expansion over just the
// members) and compared tie-tolerantly against a fresh brute-force kNN over
// the full set. At refresh steps the reported distances themselves must
// also be exact, so those are compared as-is.
func verifyMonitorState(t *testing.T, g *graph.Graph, objs []int32, v int32, k int, state map[int32]graph.Dist, refreshed bool, where string) {
	t.Helper()
	want := knn.BruteForce(g, knn.NewObjectSet(g, objs), v, k)
	if len(state) != len(want) {
		t.Fatalf("%s: replay holds %d members, fresh kNN has %d (%s)", where, len(state), len(want), knn.FormatResults(want))
	}
	members := make([]int32, 0, len(state))
	for m := range state {
		members = append(members, m)
	}
	annotated := knn.BruteForce(g, knn.NewObjectSet(g, members), v, len(members))
	if !knn.SameResults(annotated, want) {
		t.Fatalf("%s: replayed membership %s is not a valid kNN answer (want %s)",
			where, knn.FormatResults(annotated), knn.FormatResults(want))
	}
	if refreshed {
		reported := make([]Result, 0, len(state))
		for _, a := range annotated {
			reported = append(reported, Result{Vertex: a.Vertex, Dist: state[a.Vertex]})
		}
		if !knn.SameResults(reported, want) {
			t.Fatalf("%s: refresh-step distances %s not exact (want %s)",
				where, knn.FormatResults(reported), knn.FormatResults(want))
		}
	}
}

// TestMonitorExactEveryStep is the central contract: replaying the delta
// stream yields a result set that equals a from-scratch kNN at every route
// step — across three graphs (one travel-time view), with object churn
// landed deterministically between steps via iter.Pull2, so epoch refreshes
// interleave drift refreshes and safe steps on a checked schedule.
func TestMonitorExactEveryStep(t *testing.T) {
	for _, tc := range monitorGraphs {
		t.Run(tc.spec.Name, func(t *testing.T) {
			g := gen.Network(tc.spec)
			if tc.travelTime {
				g = g.View(graph.TravelTime)
			}
			rng := rand.New(rand.NewSource(int64(tc.spec.Seed)))
			initial := gen.Uniform(g, 0.04, int64(tc.spec.Seed)+1)
			db, err := Open(g,
				WithMethods(INE, Gtree),
				WithObjects(DefaultCategory, initial),
			)
			if err != nil {
				t.Fatal(err)
			}

			live := map[int32]bool{}
			for _, v := range initial {
				live[v] = true
			}
			snapshotLive := func() []int32 {
				out := make([]int32, 0, len(live))
				for v := range live {
					out = append(out, v)
				}
				return out
			}
			epoch := uint64(0)
			epochSets := map[uint64][]int32{0: snapshotLive()}

			const k = 5
			route := walkRoute(g, int32(rng.Intn(g.NumVertices())), 80, rng)
			state := map[int32]graph.Dist{}
			next, stop := iter.Pull2(db.Monitor(context.Background(), route, k))
			defer stop()
			epochRefreshes := 0
			for i := range route {
				u, err, ok := next()
				if !ok {
					t.Fatalf("stream ended at step %d of %d", i, len(route))
				}
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				if u.Step != i || u.Vertex != route[i] {
					t.Fatalf("step %d: got (step %d, vertex %d), want vertex %d", i, u.Step, u.Vertex, route[i])
				}
				if u.Refresh == MonitorRefreshNone && len(u.Events) != 0 {
					t.Fatalf("step %d: safe step carries events %v", i, u.Events)
				}
				if u.Refresh == MonitorRefreshEpoch {
					epochRefreshes++
				}
				if err := monitor.Apply(state, u.Events); err != nil {
					t.Fatalf("step %d: inconsistent delta stream: %v", i, err)
				}
				set, ok := epochSets[u.Epoch]
				if !ok {
					t.Fatalf("step %d: unknown epoch %d", i, u.Epoch)
				}
				verifyMonitorState(t, g, set, u.Vertex, k, state,
					u.Refresh != MonitorRefreshNone, tc.spec.Name)

				// Land churn between pulls every few steps: toggle one
				// vertex so each mutation bumps the epoch by exactly one.
				if i%7 == 3 {
					v := int32(rng.Intn(g.NumVertices()))
					if live[v] {
						delete(live, v)
						err = db.RemoveObjects(DefaultCategory, []int32{v})
					} else {
						live[v] = true
						err = db.InsertObjects(DefaultCategory, []int32{v})
					}
					if err != nil {
						t.Fatal(err)
					}
					epoch++
					epochSets[epoch] = snapshotLive()
				}
			}
			if _, _, ok := next(); ok {
				t.Fatal("stream yielded past the route end")
			}
			if epochRefreshes == 0 {
				t.Fatal("no epoch refresh observed despite mid-route churn")
			}
		})
	}
}

// TestMonitorAvoidsRedundantQueries pins the subsystem's reason to exist:
// on an edge-by-edge route with no churn, most steps must be answered by
// the safe-region check alone, and the stats must account every step.
func TestMonitorAvoidsRedundantQueries(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "m-avoid", Rows: 30, Cols: 40, Seed: 73})
	// ~2.2k vertices at density 0.005: 11 objects, comfortably more than
	// k+1, so the safe gap is finite and every avoided step is earned by
	// the bound rather than by an exhausted object set.
	db, err := Open(g,
		WithMethods(INE, Gtree),
		WithObjects(DefaultCategory, gen.Uniform(g, 0.005, 74)),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(75))
	// Pure edge walk: no jumps, no churn — every refresh past the first is
	// drift-driven.
	route := make([]int32, 120)
	route[0] = int32(g.NumVertices() / 2)
	for i := 1; i < len(route); i++ {
		targets, _ := g.Neighbors(route[i-1])
		route[i] = targets[rng.Intn(len(targets))]
	}
	before := db.MonitorStats()
	steps := 0
	for u, err := range db.Monitor(context.Background(), route, 4) {
		if err != nil {
			t.Fatal(err)
		}
		if u.Refresh == MonitorRefreshEpoch || u.Refresh == MonitorRefreshJump {
			t.Fatalf("step %d: unexpected %v refresh on a churn-free edge walk", u.Step, u.Refresh)
		}
		steps++
	}
	ms := db.MonitorStats()
	if steps != len(route) || ms.Steps-before.Steps != uint64(len(route)) {
		t.Fatalf("steps %d, stats delta %d, want %d", steps, ms.Steps-before.Steps, len(route))
	}
	avoided := ms.Avoided - before.Avoided
	refreshes := ms.Refreshes - before.Refreshes
	if avoided+refreshes != uint64(len(route)) {
		t.Fatalf("avoided %d + refreshes %d != steps %d", avoided, refreshes, len(route))
	}
	if ms.Started == before.Started {
		t.Fatal("Started did not advance")
	}
	if avoided*2 < uint64(len(route)) {
		t.Fatalf("only %d/%d steps avoided a search — safe-region check is not earning its keep", avoided, len(route))
	}
	if db.Stats().Monitor != ms {
		t.Fatal("Stats().Monitor diverges from MonitorStats()")
	}
}

// TestMonitorConcurrentChurn is the -race exercise: monitors replay routes
// while a live writer churns the object set concurrently. Every update is
// verified against the exact object set of the epoch it is stamped with
// (pre-recorded hammer-style before each mutation publishes).
func TestMonitorConcurrentChurn(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "m-conc", Rows: 12, Cols: 16, Seed: 79})
	initial := gen.Uniform(g, 0.05, 80)
	db, err := Open(g,
		WithMethods(INE, Gtree),
		WithObjects(DefaultCategory, initial),
	)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	epochSets := map[uint64][]int32{}
	live := map[int32]bool{}
	for _, v := range initial {
		live[v] = true
	}
	snapshotLive := func() []int32 {
		out := make([]int32, 0, len(live))
		for v := range live {
			out = append(out, v)
		}
		return out
	}
	epochSets[0] = snapshotLive()

	var done atomic.Bool
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewSource(81))
		epoch := uint64(0)
		for !done.Load() {
			v := int32(rng.Intn(g.NumVertices()))
			// Record the next epoch's exact set before publishing the
			// mutation, so any epoch a monitor can stamp is already known.
			mu.Lock()
			insert := !live[v]
			if insert {
				live[v] = true
			} else {
				delete(live, v)
			}
			epoch++
			epochSets[epoch] = snapshotLive()
			mu.Unlock()
			var err error
			if insert {
				err = db.InsertObjects(DefaultCategory, []int32{v})
			} else {
				err = db.RemoveObjects(DefaultCategory, []int32{v})
			}
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	const k = 4
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			route := walkRoute(g, int32(rng.Intn(g.NumVertices())), 50, rng)
			state := map[int32]graph.Dist{}
			for u, err := range db.Monitor(context.Background(), route, k) {
				if err != nil {
					t.Errorf("monitor: %v", err)
					return
				}
				if err := monitor.Apply(state, u.Events); err != nil {
					t.Errorf("replay: %v", err)
					return
				}
				mu.Lock()
				set, ok := epochSets[u.Epoch]
				mu.Unlock()
				if !ok {
					t.Errorf("unknown epoch %d", u.Epoch)
					return
				}
				verifyMonitorState(t, g, set, u.Vertex, k, state,
					u.Refresh != MonitorRefreshNone, "concurrent")
			}
		}(int64(90 + r))
	}
	readers.Wait()
	done.Store(true)
	writers.Wait()
}

// TestMonitorCancelReleasesSession is the pool-leak proof: monitors broken
// mid-route by the consumer and monitors cancelled mid-route by their
// context must both return their one held session — gets equals puts after
// any number of abandoned sessions.
func TestMonitorCancelReleasesSession(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "m-leak", Rows: 8, Cols: 10, Seed: 83})
	db, err := Open(g,
		WithMethods(INE, Gtree),
		WithObjects(DefaultCategory, gen.Uniform(g, 0.05, 84)),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(85))
	route := walkRoute(g, 7, 30, rng)

	for i := 0; i < 50; i++ {
		n := 0
		for _, err := range db.Monitor(context.Background(), route, 3, WithMethod(Gtree)) {
			if err != nil {
				t.Fatal(err)
			}
			if n++; n == 2 {
				break // abandon mid-route
			}
		}
	}
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		steps := 0
		for _, err := range db.Monitor(ctx, route, 3, WithMethod(Gtree)) {
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatal(err)
				}
				break
			}
			steps++
			cancel() // the stream must end with ctx's error, not keep going
		}
		cancel()
		if steps == 0 || steps == len(route) {
			t.Fatalf("cancelled monitor streamed %d/%d steps", steps, len(route))
		}
	}
	gets, puts := db.pools[Gtree].gets.Load(), db.pools[Gtree].puts.Load()
	if gets != 100 || puts != gets {
		t.Fatalf("session pool gets=%d puts=%d after 100 abandoned monitors; want 100/100", gets, puts)
	}
	// And the pool still serves complete routes.
	n := 0
	for _, err := range db.Monitor(context.Background(), route, 3, WithMethod(Gtree)) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(route) {
		t.Fatalf("post-leak-check monitor streamed %d/%d steps", n, len(route))
	}
}

// TestMonitorValidation: invalid input yields exactly one typed-error pair.
func TestMonitorValidation(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "m-val", Rows: 8, Cols: 8, Seed: 87})
	db, err := Open(g,
		WithMethods(INE),
		WithObjects(DefaultCategory, gen.Uniform(g, 0.1, 88)),
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		route []int32
		k     int
		opts  []QueryOption
		want  error
	}{
		{"bad k", []int32{1, 2}, 0, nil, ErrBadK},
		{"empty route", nil, 3, nil, ErrBadRoute},
		{"bad vertex", []int32{1, -4}, 3, nil, ErrBadVertex},
		{"vertex past range", []int32{1, int32(g.NumVertices())}, 3, nil, ErrBadVertex},
		{"unknown category", []int32{1, 2}, 3, []QueryOption{WithCategory("nope")}, ErrUnknownCategory},
		{"disabled method", []int32{1, 2}, 3, []QueryOption{WithMethod(ROAD)}, ErrMethodNotEnabled},
	}
	for _, tc := range cases {
		pairs := 0
		for _, err := range db.Monitor(context.Background(), tc.route, tc.k, tc.opts...) {
			pairs++
			if !errors.Is(err, tc.want) {
				t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
			}
		}
		if pairs != 1 {
			t.Fatalf("%s: %d yielded pairs, want 1", tc.name, pairs)
		}
	}
}

// TestMonitorRouteAliasing: the monitor must copy its route — a caller
// mutating the slice mid-iteration must not corrupt the stream.
func TestMonitorRouteAliasing(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "m-alias", Rows: 8, Cols: 8, Seed: 89})
	db, err := Open(g,
		WithMethods(INE),
		WithObjects(DefaultCategory, gen.Uniform(g, 0.1, 90)),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	route := walkRoute(g, 3, 20, rng)
	want := append([]int32(nil), route...)
	i := 0
	for u, err := range db.Monitor(context.Background(), route, 2) {
		if err != nil {
			t.Fatal(err)
		}
		if u.Vertex != want[i] {
			t.Fatalf("step %d follows %d, want %d (route aliased?)", i, u.Vertex, want[i])
		}
		route[i] = -1 // stomp the caller's slice mid-iteration
		i++
	}
	if i != len(want) {
		t.Fatalf("streamed %d/%d steps", i, len(want))
	}
}
