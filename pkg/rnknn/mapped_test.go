package rnknn_test

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/snapshot"
	"rnknn/pkg/rnknn"
)

// TestOpenSnapshotFileIdenticalAnswers is the zero-copy acceptance test:
// a DB opened from a self-contained snapshot file — graph included, no
// other input — loads every index (nothing rebuilt) and answers every
// method identically to the DB that built them.
func TestOpenSnapshotFileIdenticalAnswers(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "mmapsnap", Rows: 10, Cols: 11, Seed: 6})
	objs := gen.Uniform(g, 0.04, 9)
	methods := rnknn.Methods()

	built, err := rnknn.Open(g,
		rnknn.WithMethods(methods...),
		rnknn.WithObjects(rnknn.DefaultCategory, objs))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.rnks")
	if err := built.SaveIndexesFile(path); err != nil {
		t.Fatal(err)
	}

	db, err := rnknn.OpenSnapshotFile(path,
		rnknn.WithMethods(methods...),
		rnknn.WithObjects(rnknn.DefaultCategory, objs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for name, ix := range db.Stats().Indexes {
		if !ix.Loaded {
			t.Fatalf("index %s rebuilt instead of loaded", name)
		}
	}
	if db.Graph().NumVertices() != g.NumVertices() || db.Graph().NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot graph %d/%d, want %d/%d",
			db.Graph().NumVertices(), db.Graph().NumEdges(), g.NumVertices(), g.NumEdges())
	}

	ctx := context.Background()
	for _, m := range methods {
		for _, q := range []int32{0, int32(g.NumVertices() / 2), int32(g.NumVertices() - 1)} {
			want, err := built.KNN(ctx, q, 6, rnknn.WithMethod(m))
			if err != nil {
				t.Fatalf("%v built: %v", m, err)
			}
			got, err := db.KNN(ctx, q, 6, rnknn.WithMethod(m))
			if err != nil {
				t.Fatalf("%v mapped: %v", m, err)
			}
			if !rnknn.SameResults(got, want) {
				t.Fatalf("%v q=%d: got %v want %v", m, q, got, want)
			}
		}
	}
}

// TestOpenSnapshotFileNoGraphSection: a container without a Graph section
// (an index-only snapshot hand-built the old way) cannot self-open; the
// error says why.
func TestOpenSnapshotFileNoGraphSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nograph.rnks")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	err = snapshot.Write(f, 1234, []snapshot.Section{{
		Name: "NotGraph",
		Encode: func(w io.Writer) error {
			_, err := w.Write([]byte("no graph here"))
			return err
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = rnknn.OpenSnapshotFile(path)
	if err == nil || !strings.Contains(err.Error(), "Graph section") {
		t.Fatalf("want a no-Graph-section error, got %v", err)
	}
}

// TestWithMmapIndexCache: the transparent cache with WithMmap loads the
// second open zero-copy — every index Loaded, answers identical, and a
// Close that releases the mapping.
func TestWithMmapIndexCache(t *testing.T) {
	dir := t.TempDir()
	g := gen.Network(gen.NetworkSpec{Name: "mmapcache", Rows: 9, Cols: 10, Seed: 4})
	objs := gen.Uniform(g, 0.05, 7)
	open := func() *rnknn.DB {
		db, err := rnknn.Open(g,
			rnknn.WithMethods(rnknn.Gtree, rnknn.IERPHL),
			rnknn.WithObjects(rnknn.DefaultCategory, objs),
			rnknn.WithIndexCache(dir),
			rnknn.WithMmap())
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	first := open()
	want, err := first.KNN(context.Background(), 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second := open()
	defer second.Close()
	for name, ix := range second.Stats().Indexes {
		if !ix.Loaded {
			t.Fatalf("index %s rebuilt on the cached open", name)
		}
	}
	got, err := second.KNN(context.Background(), 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rnknn.SameResults(got, want) {
		t.Fatalf("cached mmap open answers differently: got %v want %v", got, want)
	}
}

// TestOpenSnapshotFileRejectsGarbage: not-a-snapshot files surface
// ErrBadSnapshot, and missing files surface the underlying OS error.
func TestOpenSnapshotFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.rnks")
	if err := os.WriteFile(path, []byte(strings.Repeat("junk", 100)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := rnknn.OpenSnapshotFile(path); !errors.Is(err, rnknn.ErrBadSnapshot) {
		t.Fatalf("want ErrBadSnapshot, got %v", err)
	}
	if _, err := rnknn.OpenSnapshotFile(filepath.Join(t.TempDir(), "absent.rnks")); err == nil {
		t.Fatal("missing file accepted")
	}
}
