package rnknn

import "errors"

// The typed errors every DB operation can surface; match with errors.Is.
// Returned errors wrap these sentinels with the offending value.
var (
	// ErrBadGraph reports a nil or empty road network at Open.
	ErrBadGraph = errors.New("rnknn: invalid graph")
	// ErrUnknownMethod reports a method name or value outside the known
	// set.
	ErrUnknownMethod = errors.New("rnknn: unknown method")
	// ErrMethodNotEnabled reports a known method the DB was not opened
	// with (its index was never built); pass it to WithMethods at Open.
	ErrMethodNotEnabled = errors.New("rnknn: method not enabled for this DB")
	// ErrUnknownCategory reports a query against an object category that
	// was never registered.
	ErrUnknownCategory = errors.New("rnknn: unknown object category")
	// ErrBadCategory reports an invalid category name (empty).
	ErrBadCategory = errors.New("rnknn: invalid category name")
	// ErrBadVertex reports a vertex id outside [0, NumVertices).
	ErrBadVertex = errors.New("rnknn: vertex out of range")
	// ErrBadK reports a non-positive k.
	ErrBadK = errors.New("rnknn: k must be positive")
	// ErrBadRadius reports a negative range radius.
	ErrBadRadius = errors.New("rnknn: radius must be non-negative")
	// ErrRangeMethod reports a Range call with a method other than INE;
	// range queries run on incremental network expansion only.
	ErrRangeMethod = errors.New("rnknn: range queries support only INE")
	// ErrBadRoute reports a Monitor call with an empty route.
	ErrBadRoute = errors.New("rnknn: route must have at least one vertex")
)
