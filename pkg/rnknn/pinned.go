package rnknn

import (
	"context"
	"fmt"
	"time"
)

// KNNPinned answers the same query as KNN and additionally reports the
// epoch of the category snapshot the search pinned — read from the very
// binding the query ran on, not re-read around the call. That atomicity is
// what an exact result cache keyed on (vertex, k, category, epoch) needs: a
// result stamped with epoch E was computed from exactly epoch E's object
// set, so storing it under E can never serve an answer from one epoch to a
// reader observing another, no matter how much churn raced the query. The
// serving layer (internal/serve) is the intended caller; everything else
// about validation, method resolution, cancellation, and Stats/planner
// recording is identical to KNN.
func (db *DB) KNNPinned(ctx context.Context, q int32, k int, opts ...QueryOption) ([]Result, uint64, error) {
	qo := db.applyOpts(opts)
	if k <= 0 {
		return nil, 0, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if err := db.checkKNNMethod(qo.method); err != nil {
		return nil, 0, err
	}
	b, err := db.checkQuery(ctx, q, qo)
	if err != nil {
		return nil, 0, err
	}
	m := db.resolveMethod(qo.method, k, b)
	ps, err := db.pools[m].get(b)
	if err != nil {
		return nil, 0, err
	}
	ps.arm(ctx)
	start := time.Now()
	ps.buf = ps.sess.KNNAppend(q, k, ps.buf[:0])
	elapsed := time.Since(start)
	ps.disarm()
	res := make([]Result, len(ps.buf))
	copy(res, ps.buf)
	db.pools[m].put(ps)
	if err := ctx.Err(); err != nil {
		// The scan may have been cut short; the partial answer is not
		// returned.
		return nil, 0, err
	}
	db.recordKNN(m, k, b, elapsed)
	return res, b.Epoch, nil
}
