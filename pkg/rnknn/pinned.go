package rnknn

import (
	"context"
	"fmt"
	"time"

	"rnknn/internal/knn"
)

// KNNPinned answers the same query as KNN and additionally reports the
// epoch of the category snapshot the search pinned — read from the very
// binding the query ran on, not re-read around the call. That atomicity is
// what an exact result cache keyed on (vertex, k, category, epoch) needs: a
// result stamped with epoch E was computed from exactly epoch E's object
// set, so storing it under E can never serve an answer from one epoch to a
// reader observing another, no matter how much churn raced the query. The
// serving layer (internal/serve) is the intended caller; everything else
// about validation, method resolution, cancellation, and Stats/planner
// recording is identical to KNN.
func (db *DB) KNNPinned(ctx context.Context, q int32, k int, opts ...QueryOption) ([]Result, uint64, error) {
	qo := db.applyOpts(opts)
	if k <= 0 {
		return nil, 0, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if err := db.checkKNNMethod(qo.method); err != nil {
		return nil, 0, err
	}
	b, err := db.checkQuery(ctx, q, qo)
	if err != nil {
		return nil, 0, err
	}
	m := db.resolveMethod(qo.method, k, b)
	ps, err := db.pools[m].get(b)
	if err != nil {
		return nil, 0, err
	}
	ps.arm(ctx)
	start := time.Now()
	ps.buf = ps.sess.KNNAppend(q, k, ps.buf[:0])
	elapsed := time.Since(start)
	ps.disarm()
	res := make([]Result, len(ps.buf))
	copy(res, ps.buf)
	db.pools[m].put(ps)
	if err := ctx.Err(); err != nil {
		// The scan may have been cut short; the partial answer is not
		// returned.
		return nil, 0, err
	}
	db.recordKNN(m, k, b, elapsed)
	return res, b.Epoch, nil
}

// RangePinned answers the same query as Range and additionally reports the
// epoch of the category snapshot the search pinned — the range analogue of
// KNNPinned, and the call the serving layer's range cache needs: stamping
// the answer with the epoch of the very binding it ran on (not re-read
// around the call) closes the load-epoch/run-query race, so an entry keyed
// on (vertex, radius, category, epoch) can never serve one epoch's answer
// to a reader observing another. Validation, INE-only method rules,
// cancellation, and Stats recording are identical to Range.
func (db *DB) RangePinned(ctx context.Context, q int32, radius Dist, opts ...QueryOption) ([]Result, uint64, error) {
	qo := db.applyOpts(opts)
	if radius < 0 {
		return nil, 0, fmt.Errorf("%w: radius=%d", ErrBadRadius, radius)
	}
	if err := db.checkRangeMethod(qo); err != nil {
		return nil, 0, err
	}
	b, err := db.checkQuery(ctx, q, qo)
	if err != nil {
		return nil, 0, err
	}
	ps, err := db.pools[INE].get(b)
	if err != nil {
		return nil, 0, err
	}
	rm := ps.sess.(knn.RangeMethod)
	ps.arm(ctx)
	start := time.Now()
	ps.buf = rm.RangeAppend(q, radius, ps.buf[:0])
	elapsed := time.Since(start)
	ps.disarm()
	res := make([]Result, len(ps.buf))
	copy(res, ps.buf)
	db.pools[INE].put(ps)
	if err := ctx.Err(); err != nil {
		// The scan may have been cut short; the partial answer is not
		// returned.
		return nil, 0, err
	}
	db.stats.recordRange(elapsed)
	return res, b.Epoch, nil
}
