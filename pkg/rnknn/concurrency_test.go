package rnknn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/knn"
)

// TestConcurrentQueriesWithLiveSwap is the concurrency contract of the DB:
// many goroutines issue mixed kNN/range queries across several methods
// against one shared DB while another goroutine keeps swapping the object
// category between two sets. Every answer must match the brute-force
// reference on whichever set was live when the query snapshotted its
// binding — under -race this also proves the pooled sessions and atomic
// category swaps are data-race free.
func TestConcurrentQueriesWithLiveSwap(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "conc", Rows: 16, Cols: 20, Seed: 9})
	db, err := Open(g, WithMethods(INE, IERPHL, IERCH, Gtree, ROAD))
	if err != nil {
		t.Fatal(err)
	}
	setA := gen.Uniform(g, 0.03, 100)
	setB := gen.Uniform(g, 0.03, 200)
	if err := db.RegisterObjects("poi", setA); err != nil {
		t.Fatal(err)
	}

	// Precompute the correctness references for both sets at every query
	// vertex: a concurrent answer must equal one of the two (the one whose
	// set was live at snapshot time).
	const k = 5
	const radius = Dist(6000)
	objsA := knn.NewObjectSet(g, setA)
	objsB := knn.NewObjectSet(g, setB)
	queries := gen.QueryVertices(g, 10, 77)
	knnWant := map[int32][2][]Result{}
	rangeWant := map[int32][2][]Result{}
	for _, q := range queries {
		knnWant[q] = [2][]Result{
			knn.BruteForce(g, objsA, q, k),
			knn.BruteForce(g, objsB, q, k),
		}
		rangeWant[q] = [2][]Result{
			knn.BruteForceRange(g, objsA, q, radius),
			knn.BruteForceRange(g, objsB, q, radius),
		}
	}
	matchesEither := func(got []Result, want [2][]Result) bool {
		return SameResults(got, want[0]) || SameResults(got, want[1])
	}

	const workers = 8
	const iters = 150
	methods := []Method{INE, IERPHL, IERCH, Gtree, ROAD}
	ctx := context.Background()
	stop := make(chan struct{})
	var swaps sync.WaitGroup
	swaps.Add(1)
	go func() {
		defer swaps.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			set := setA
			if i%2 == 1 {
				set = setB
			}
			if err := db.RegisterObjects("poi", set); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(w+i)%len(queries)]
				if i%4 == 3 {
					got, err := db.Range(ctx, q, radius, WithCategory("poi"))
					if err != nil {
						t.Error(err)
						return
					}
					if !matchesEither(got, rangeWant[q]) {
						t.Errorf("worker %d: range q=%d matches neither live set: %s", w, q, FormatResults(got))
						return
					}
					continue
				}
				m := methods[(w+i)%len(methods)]
				got, err := db.KNN(ctx, q, k, WithMethod(m), WithCategory("poi"))
				if err != nil {
					t.Error(err)
					return
				}
				if !matchesEither(got, knnWant[q]) {
					t.Errorf("worker %d: %s q=%d matches neither live set: %s", w, m, q, FormatResults(got))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	swaps.Wait()

	s := db.Stats()
	var totalKNN uint64
	for _, ms := range s.Methods {
		totalKNN += ms.KNNQueries
	}
	if totalKNN == 0 || s.Methods["INE"].RangeQueries == 0 {
		t.Fatalf("stats did not record the concurrent workload: %+v", s.Methods)
	}
}

// TestQueryRacesFirstRegistration queries a category name while it is being
// registered for the first time: until the registration lands the query
// must report ErrUnknownCategory, never observe a half-published category
// (a category visible in the map with no binding would panic).
func TestQueryRacesFirstRegistration(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "fresh", Rows: 8, Cols: 10, Seed: 6})
	db, err := Open(g, WithMethods(INE))
	if err != nil {
		t.Fatal(err)
	}
	set := gen.Uniform(g, 0.05, 5)
	ctx := context.Background()
	for round := 0; round < 30; round++ {
		name := fmt.Sprintf("cat-%d", round)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					_, err := db.KNN(ctx, 0, 2, WithCategory(name))
					if err == nil {
						return
					}
					if !errors.Is(err, ErrUnknownCategory) {
						t.Error(err)
						return
					}
				}
			}()
		}
		if err := db.RegisterObjects(name, set); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}

// TestConcurrentRegisterSameCategory hammers RegisterObjects on one name
// from many goroutines (the map-insert double-check path).
func TestConcurrentRegisterSameCategory(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "reg", Rows: 8, Cols: 10, Seed: 4})
	db, err := Open(g, WithMethods(INE, Gtree))
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]int32{
		gen.Uniform(g, 0.05, 1),
		gen.Uniform(g, 0.05, 2),
		gen.Uniform(g, 0.05, 3),
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := db.RegisterObjects("hot", sets[(w+i)%len(sets)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if len(db.Categories()) != 1 || db.Categories()[0] != "hot" {
		t.Fatalf("categories = %v", db.Categories())
	}
}
