// Package rnknn is the public, concurrency-safe entry point to the library:
// a DB facade over the kNN methods of Abeywickrama, Cheema and Taniar,
// "k-Nearest Neighbors on Road Networks: A Journey in Experimentation and
// In-Memory Implementation" (PVLDB 2016).
//
// A DB owns one road network and the road-network indexes of the methods it
// was opened with, and serves kNN and range queries from any number of
// goroutines: query sessions (per-method search state) are pooled, and
// object sets are named categories that can be bulk-swapped
// (RegisterObjects) or mutated incrementally (InsertObjects,
// RemoveObjects) while queries are in flight — the paper's decoupled
// index/object design (Section 2.2) as a live API. Each mutation derives a
// new immutable epoch of the category from the live one in O(delta); a
// query pins one epoch at its start and answers consistently from it no
// matter how much churn lands mid-query (see Epoch).
//
//	g := gen.Network(gen.NetworkSpec{Name: "city", Rows: 96, Cols: 120, Seed: 1})
//	db, err := rnknn.Open(g, rnknn.WithMethods(rnknn.IERPHL, rnknn.Gtree))
//	if err != nil { ... }
//	if err := db.RegisterObjects("hospitals", hospitalVertices); err != nil { ... }
//	results, err := db.KNN(ctx, query, 10,
//		rnknn.WithMethod(rnknn.IERPHL), rnknn.WithCategory("hospitals"))
//
// Queries accept a context: cancellation and deadlines are checked between
// expansion steps of the long INE/Dijkstra-style scans, so a cancelled
// graph-wide scan returns promptly with the context's error. Invalid input
// surfaces as typed errors (ErrUnknownMethod, ErrBadVertex, ...) that work
// with errors.Is. DB.Stats exposes per-index build cost and per-method
// query counters.
//
// # Query execution
//
// Three execution shapes share the pooled sessions:
//
//   - KNN and Range return fully materialized result slices.
//   - KNNSeq streams each neighbor as it is confirmed (Go range-over-func);
//     breaking early abandons the rest of the search.
//   - Batch collects many queries and fans them across a bounded worker
//     pool, checking sessions out once per worker — the unit of work for
//     a server front end.
//
// WithMethod(MethodAuto) resolves the method per query through an adaptive
// planner: the paper's regime findings (no single method dominates;
// crossovers governed by k, object density, and network size — Section 7,
// Table 5) seeded as a static cost model and refined online by observed
// per-method latency. Explain reports the planner's decision without
// running the query.
//
// # Index persistence
//
// Index construction is the expensive part of Open — G-tree and ROAD are
// linearithmic, CH/PHL/TNR somewhat above, SILC quadratic — and all of it
// can be paid once per graph instead of once per process. Three entry
// points, from most to least automatic:
//
//   - WithIndexCache(dir): Open loads dir/<name>-<fingerprint>.rnks if it
//     matches the graph, builds whatever is missing, and saves the result
//     back atomically. No other code changes; the second Open of the same
//     graph skips every build (Stats reports Loaded per index).
//   - OpenFromSnapshot(g, r): warm-start from a snapshot written earlier —
//     typically by cmd/buildindex at deploy time.
//   - DB.SaveIndexes / DB.SaveIndexesFile: write the built indexes
//     explicitly.
//
// A snapshot records the fingerprint of the graph (topology, both weight
// arrays, the active weight kind, coordinates); loading it against any
// other graph fails with ErrFingerprintMismatch, and corrupt bytes fail
// with ErrBadSnapshot — never with silently wrong distances. A loaded index
// is bit-identical to the built one, so query answers are identical too.
// The on-disk layout is specified in docs/SNAPSHOT_FORMAT.md.
package rnknn

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"rnknn/internal/core"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/mapped"
	"rnknn/internal/partition"
	"rnknn/internal/planner"
)

// Graph is the road network a DB serves: a CSR adjacency with travel
// distance and travel time weights and vertex coordinates.
type Graph = graph.Graph

// Dist is a network distance (travel distance or travel time, depending on
// the graph's weight view).
type Dist = graph.Dist

// Result is one query answer: an object vertex and its network distance
// from the query vertex. Queries return results in nondecreasing distance
// order.
type Result = knn.Result

// DefaultCategory is the object category queries use when WithCategory is
// not given.
const DefaultCategory = "default"

// config collects Open options.
type config struct {
	methods []Method
	opts    core.Options
	objects []initialObjects
	// cacheDir enables the transparent snapshot cache (WithIndexCache).
	cacheDir string
	// snapshotR, when non-nil, warm-starts Open from a snapshot
	// (OpenFromSnapshot).
	snapshotR io.Reader
	// mmap selects the zero-copy load path for file-backed snapshots
	// (WithMmap).
	mmap bool
	// snap, when non-nil, is an already-opened snapshot whose bytes Open
	// loads directly (OpenSnapshotFile); seedFP carries its container
	// fingerprint so the engine never recomputes it from mapped pages.
	snap      *mapped.Snapshot
	seedFP    uint64
	seedFPSet bool
}

type initialObjects struct {
	name     string
	vertices []int32
}

// Option configures Open.
type Option func(*config)

// WithMethods selects the query methods the DB supports, in preference
// order: the first is the default for KNN. Each method's road-network index
// is built during Open. The default is {INE, IERDijk, Gtree} — the methods
// whose index cost is no more than a G-tree build; add IERPHL (the paper's
// overall winner) when the hub-labeling build cost is acceptable.
func WithMethods(ms ...Method) Option {
	return func(c *config) { c.methods = append([]Method(nil), ms...) }
}

// WithObjects registers an object category during Open, equivalent to
// calling RegisterObjects immediately after.
func WithObjects(name string, vertices []int32) Option {
	return func(c *config) {
		c.objects = append(c.objects, initialObjects{name, append([]int32(nil), vertices...)})
	}
}

// WithGtreeFanout sets the G-tree fanout (paper default 4).
func WithGtreeFanout(n int) Option { return func(c *config) { c.opts.GtreeFanout = n } }

// WithGtreeTau sets the G-tree leaf capacity tau.
func WithGtreeTau(n int) Option { return func(c *config) { c.opts.GtreeTau = n } }

// WithRoadFanout sets the ROAD hierarchy fanout.
func WithRoadFanout(n int) Option { return func(c *config) { c.opts.RoadFanout = n } }

// WithRoadLevels sets the ROAD hierarchy depth.
func WithRoadLevels(n int) Option { return func(c *config) { c.opts.RoadLevels = n } }

// WithNumTransit sets the TNR transit-set size.
func WithNumTransit(n int) Option { return func(c *config) { c.opts.NumTransit = n } }

// WithSILCParallelism bounds the SILC build workers.
func WithSILCParallelism(n int) Option { return func(c *config) { c.opts.SILCParallelism = n } }

// DB is a queryable road-network database. All methods are safe for
// concurrent use by any number of goroutines.
type DB struct {
	g       *graph.Graph
	eng     *core.Engine
	methods []Method
	enabled [numMethods]bool
	// bindKinds lists the enabled method kinds; every category binding
	// carries the derived object indexes for all of them.
	bindKinds []core.MethodKind
	// pools[m] pools query sessions of method m. pools[INE] always exists:
	// it also serves Range and context-checked fallbacks.
	pools [numMethods]*sessionPool

	mu   sync.RWMutex // guards cats (the map, not the bindings inside)
	cats map[string]*category

	stats registry
	// batchStats aggregates batch execution counters (see Batch and Stats).
	batchStats batchCounters
	// mon aggregates continuous-query counters (see Monitor).
	mon monitorCounters
	// plan resolves MethodAuto queries and learns from every completed
	// kNN query's latency (see MethodAuto and Explain).
	plan *planner.Planner

	// batchPT is the leaf partition the batch grouping planner clusters
	// queries by, built lazily by batchPartition on the first batch.
	batchPTOnce sync.Once
	batchPT     *partition.Tree

	// mapped, when non-nil, is the snapshot mapping this DB's graph and/or
	// indexes alias (WithMmap, OpenSnapshotFile); released by Close.
	mapped *mapped.Snapshot
}

// batchPartition returns the partition tree batch grouping keys on: the
// G-tree's own partition when that index is built (its leaves are exactly
// the locality unit the shared G-tree path requires), otherwise a
// standalone partition of the road network, built once on first use.
func (db *DB) batchPartition() *partition.Tree {
	db.batchPTOnce.Do(func() {
		if db.enabled[Gtree] {
			db.batchPT = db.eng.GtreeIndex().PT
			return
		}
		db.batchPT = partition.Build(db.g, partition.Options{Fanout: 4})
	})
	return db.batchPT
}

// Open builds a DB over g. The road-network index of every selected method
// is constructed here (so queries never pay index construction), which
// makes Open the expensive call: on the paper's parameters, expect G-tree
// and ROAD builds linearithmic in |V|, CH/PHL/TNR somewhat above that, and
// SILC quadratic — the paper restricts SILC (DisBrw) to small networks and
// so should callers.
//
// The construction cost can be paid once per graph instead of once per
// process: WithIndexCache(dir) saves built indexes to disk and loads them on
// the next Open, and OpenFromSnapshot warm-starts from a snapshot written by
// SaveIndexes or cmd/buildindex.
func Open(g *Graph, opts ...Option) (*DB, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("%w: nil or empty graph", ErrBadGraph)
	}
	cfg := config{methods: []Method{INE, IERDijk, Gtree}}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.methods) == 0 {
		return nil, fmt.Errorf("%w: WithMethods given no methods", ErrUnknownMethod)
	}
	db := &DB{
		g:    g,
		cats: map[string]*category{},
		plan: planner.New(),
	}
	for _, m := range cfg.methods {
		if !m.valid() {
			return nil, fmt.Errorf("%w: %d", ErrUnknownMethod, int(m))
		}
		if db.enabled[m] {
			continue
		}
		db.enabled[m] = true
		db.methods = append(db.methods, m)
		db.bindKinds = append(db.bindKinds, m.kind())
	}
	db.eng = core.New(g)
	db.eng.Opts = cfg.opts
	if cfg.seedFPSet {
		db.eng.SeedFingerprint(cfg.seedFP)
	}
	// On any error below, an established mapping must be released before
	// the DB it was opened for is abandoned.
	fail := func(err error) (*DB, error) {
		_ = db.mapped.Close()
		return nil, err
	}
	switch {
	case cfg.snap != nil:
		// OpenSnapshotFile: the snapshot is already open (and usually
		// mapped); graph and mappable indexes alias its bytes.
		db.mapped = cfg.snap
		if err := db.eng.LoadIndexesData(cfg.snap.Data, cfg.snap.Mapped); err != nil {
			return fail(err)
		}
	case cfg.snapshotR != nil:
		f, isFile := cfg.snapshotR.(*os.File)
		if cfg.mmap && isFile {
			ms, err := mapped.OpenFile(f)
			if err != nil {
				return nil, err
			}
			db.mapped = ms
			if err := db.eng.LoadIndexesData(ms.Data, ms.Mapped); err != nil {
				return fail(err)
			}
		} else if err := db.eng.LoadIndexes(cfg.snapshotR); err != nil {
			return nil, err
		}
	}
	var cachePath string
	if cfg.cacheDir != "" {
		if err := os.MkdirAll(cfg.cacheDir, 0o755); err != nil {
			return fail(err)
		}
		cachePath = cacheFilePath(cfg.cacheDir, g, db.eng.Fingerprint())
		if cfg.mmap && db.mapped == nil {
			// Best effort, like the streamed load below.
			if ms, err := mapped.Open(cachePath); err == nil {
				if db.eng.LoadIndexesData(ms.Data, ms.Mapped) == nil {
					db.mapped = ms
				} else {
					_ = ms.Close()
				}
			}
		} else if f, err := os.Open(cachePath); err == nil {
			// Best effort: a missing, corrupt, or mismatched cache file just
			// means the builds below run and refresh it.
			_ = db.eng.LoadIndexes(f)
			f.Close()
		}
	}
	for _, m := range db.methods {
		db.eng.EnsureIndex(m.kind())
		db.pools[m] = newSessionPool(db.eng, m.kind())
	}
	if cachePath != "" {
		built := false
		for _, info := range db.eng.BuiltIndexes() {
			if !info.Loaded {
				built = true
				break
			}
		}
		if built {
			// Best effort, like the load above: a full or read-only cache
			// volume must not fail an Open whose indexes all built fine —
			// the next Open just builds again (see WithIndexCache).
			_ = writeFileAtomic(cachePath, db.eng.SaveIndexes)
		}
	}
	if db.pools[INE] == nil {
		db.pools[INE] = newSessionPool(db.eng, core.INE)
	}
	for _, o := range cfg.objects {
		if err := db.RegisterObjects(o.name, o.vertices); err != nil {
			return fail(err)
		}
	}
	return db, nil
}

// Graph returns the road network the DB serves.
func (db *DB) Graph() *Graph { return db.g }

// Methods returns the enabled methods in preference order; the first is
// the default for KNN.
func (db *DB) Methods() []Method { return append([]Method(nil), db.methods...) }

// DefaultMethod returns the method KNN uses when WithMethod is not given.
func (db *DB) DefaultMethod() Method { return db.methods[0] }

// Categories returns the registered object category names, sorted. A
// category being created by a concurrent first mutation is listed only once
// its first epoch is published.
func (db *DB) Categories() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.cats))
	for name, cat := range db.cats {
		if cat.binding.Load() != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
