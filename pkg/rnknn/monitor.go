package rnknn

import (
	"context"
	"fmt"
	"iter"
	"sync/atomic"
	"time"

	"rnknn/internal/monitor"
)

// MonitorUpdate is one route step of a continuous query: step/epoch stamps,
// whether the step re-ran the search (and why), and the result-set deltas
// versus the previous step. See DB.Monitor.
type MonitorUpdate = monitor.Update

// MonitorEvent is one result-set delta inside a MonitorUpdate: an object
// entering or leaving the k nearest, or a member's distance changing across
// a re-expansion.
type MonitorEvent = monitor.Event

// MonitorEventKind classifies a MonitorEvent.
type MonitorEventKind = monitor.EventKind

// MonitorRefresh says why a monitor step re-ran the search, or
// MonitorRefreshNone when the safe-region check alone proved the cached
// set still exact.
type MonitorRefresh = monitor.RefreshReason

// The MonitorEvent kinds and MonitorUpdate refresh reasons, re-exported
// from internal/monitor.
const (
	MonitorEnter      = monitor.Enter
	MonitorExit       = monitor.Exit
	MonitorDistChange = monitor.DistChange

	MonitorRefreshNone    = monitor.RefreshNone
	MonitorRefreshInitial = monitor.RefreshInitial
	MonitorRefreshDrift   = monitor.RefreshDrift
	MonitorRefreshEpoch   = monitor.RefreshEpoch
	MonitorRefreshJump    = monitor.RefreshJump
)

// MonitorStats aggregates the DB's continuous-query work: how many monitor
// sessions ran, how many route steps they served, and — the number the
// subsystem exists for — how many of those steps were answered by the
// safe-region check alone versus re-running the search.
type MonitorStats struct {
	// Started counts Monitor streams that began iterating (validated and
	// checked out a session).
	Started uint64
	// Steps counts route-step updates yielded across all monitors.
	Steps uint64
	// Avoided counts steps answered by the safe-region bound alone — no
	// search ran. Avoided + Refreshes == Steps.
	Avoided uint64
	// Refreshes counts steps that re-ran the (k+1)-expansion, split by
	// cause below.
	Refreshes uint64
	// Initial: first step of a route (nothing pinned yet). Drift: the
	// accumulated displacement outgrew the safe gap. Epoch: object churn
	// landed. Jump: a non-edge route step made displacement unbounded.
	Initial uint64
	Drift   uint64
	Epoch   uint64
	Jump    uint64
}

// monitorCounters is the DB's lock-free MonitorStats aggregate.
type monitorCounters struct {
	started   atomic.Uint64
	steps     atomic.Uint64
	avoided   atomic.Uint64
	refreshes atomic.Uint64
	initial   atomic.Uint64
	drift     atomic.Uint64
	epoch     atomic.Uint64
	jump      atomic.Uint64
}

func (mc *monitorCounters) recordStep(r MonitorRefresh) {
	mc.steps.Add(1)
	switch r {
	case MonitorRefreshNone:
		mc.avoided.Add(1)
		return
	case MonitorRefreshInitial:
		mc.initial.Add(1)
	case MonitorRefreshDrift:
		mc.drift.Add(1)
	case MonitorRefreshEpoch:
		mc.epoch.Add(1)
	case MonitorRefreshJump:
		mc.jump.Add(1)
	}
	mc.refreshes.Add(1)
}

func (mc *monitorCounters) snapshot() MonitorStats {
	return MonitorStats{
		Started:   mc.started.Load(),
		Steps:     mc.steps.Load(),
		Avoided:   mc.avoided.Load(),
		Refreshes: mc.refreshes.Load(),
		Initial:   mc.initial.Load(),
		Drift:     mc.drift.Load(),
		Epoch:     mc.epoch.Load(),
		Jump:      mc.jump.Load(),
	}
}

// MonitorStats returns the DB's continuous-query counters. Safe for
// concurrent use; counters are read atomically but not as one consistent
// cut.
func (db *DB) MonitorStats() MonitorStats { return db.mon.snapshot() }

// Monitor runs a continuous kNN query along a route: the query point visits
// route[0], route[1], ... in order, and the returned stream yields one
// MonitorUpdate per vertex carrying the result-set deltas (Enter / Exit /
// DistChange events) rather than the full answer. Consecutive route
// vertices are normally joined by an edge (a moving client advances one
// edge per step); repeats ("stopped at a light") and jumps are both legal —
// a jump just forfeits the cheap step.
//
// Per step the monitor first runs a safe-region check derived from the
// pinned answer: having expanded to the (k+1)-th neighbor at an anchor, the
// gap d_{k+1} - d_k bounds how far the query may move before membership
// could change, and each route step only adds its edge weight (from the
// graph's active weight view) to the accumulated displacement. While twice
// the displacement stays within the gap the cached set is provably still
// exact and the step costs no search at all. Only when the bound breaks, an
// object-epoch change lands (InsertObjects / RemoveObjects), or the route
// jumps does the monitor re-expand — seeded from the one pooled session it
// holds for its whole lifetime, with the same pinned-epoch semantics as
// KNNPinned. MonitorStats reports the avoided/re-run split.
//
// Membership is exact at every step. Reported distances are exact at
// refresh steps (Update.Refresh != MonitorRefreshNone) and anchored between
// them: each is stale by at most the accumulated displacement. Replaying
// the events in order (exits first) reconstructs the result set at every
// step.
//
// The yielded error is non-nil on at most the final pair, as with KNNSeq:
// invalid input yields one typed-error pair (ErrBadK, ErrBadRoute,
// ErrBadVertex, ...) and ends, and cancellation mid-route ends the stream
// with ctx's error. Breaking out of the loop early releases the session;
// the sequence is single-use. Safe for unbounded concurrent callers, each
// monitor being its own session.
func (db *DB) Monitor(ctx context.Context, route []int32, k int, opts ...QueryOption) iter.Seq2[MonitorUpdate, error] {
	r := append([]int32(nil), route...)
	return func(yield func(MonitorUpdate, error) bool) {
		qo := db.applyOpts(opts)
		if k <= 0 {
			yield(MonitorUpdate{}, fmt.Errorf("%w: k=%d", ErrBadK, k))
			return
		}
		if len(r) == 0 {
			yield(MonitorUpdate{}, fmt.Errorf("%w: empty route", ErrBadRoute))
			return
		}
		if err := db.checkKNNMethod(qo.method); err != nil {
			yield(MonitorUpdate{}, err)
			return
		}
		for i, v := range r {
			if v < 0 || int(v) >= db.g.NumVertices() {
				yield(MonitorUpdate{}, fmt.Errorf("%w: route[%d]=%d (network has %d vertices)", ErrBadVertex, i, v, db.g.NumVertices()))
				return
			}
		}
		b, err := db.checkQuery(ctx, r[0], qo)
		if err != nil {
			yield(MonitorUpdate{}, err)
			return
		}
		// The refresh expansion asks for k+1 neighbors: the k-th is the
		// answer's edge and the (k+1)-th prices the safe gap.
		m := db.resolveMethod(qo.method, k+1, b)
		ps, err := db.pools[m].get(b)
		if err != nil {
			yield(MonitorUpdate{}, err)
			return
		}
		ps.arm(ctx)
		// One deferred release covers the monitor's whole lifetime: route
		// completion, early consumer break, cancellation, and panics in the
		// consumer's loop body unwinding through this frame.
		defer func() {
			ps.disarm()
			db.pools[m].put(ps)
		}()
		db.mon.started.Add(1)

		tr := monitor.New(db.g, k)
		// emitted is the result set as of the last yielded update; Diff
		// against it produces each refresh step's events.
		var emitted []Result
		prev := r[0]
		for i, v := range r {
			if err := ctx.Err(); err != nil {
				yield(MonitorUpdate{}, err)
				return
			}
			// Re-snapshot the category each step so live churn is observed:
			// a new epoch forces a refresh on this epoch's object set.
			b, err = db.snapshot(qo.category)
			if err != nil {
				yield(MonitorUpdate{}, err)
				return
			}
			reason := tr.Step(prev, v, b.Epoch)
			var events []MonitorEvent
			if reason != MonitorRefreshNone {
				// Rebind is legal here: the monitor is between queries on
				// its one single-goroutine session.
				ps.sess.Rebind(b)
				start := time.Now()
				ps.buf = ps.sess.KNNAppend(v, k+1, ps.buf[:0])
				elapsed := time.Since(start)
				if err := ctx.Err(); err != nil {
					yield(MonitorUpdate{}, err)
					return
				}
				db.recordKNN(m, k+1, b, elapsed)
				tr.Pin(ps.buf, b.Epoch)
				events = monitor.Diff(emitted, tr.Results(), nil)
				emitted = append(emitted[:0], tr.Results()...)
			}
			db.mon.recordStep(reason)
			u := MonitorUpdate{
				Step:    i,
				Vertex:  v,
				Epoch:   tr.Epoch(),
				Refresh: reason,
				Events:  events,
			}
			if !yield(u, nil) {
				return
			}
			prev = v
		}
	}
}
