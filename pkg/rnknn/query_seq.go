package rnknn

import (
	"context"
	"fmt"
	"iter"
	"time"

	"rnknn/internal/knn"
)

// KNNSeq answers the same query as KNN but streams each neighbor as it is
// confirmed, instead of buffering all k: ranging over the sequence sees
// the first neighbor as soon as the method finalizes it — for INE and the
// other expansion methods that is long before the k-th is found. Results
// arrive in nondecreasing distance order, and a fully consumed stream is
// exactly KNN's answer.
//
//	for r, err := range db.KNNSeq(ctx, q, 10) {
//		if err != nil { ... }          // validation or ctx error; stream ends
//		serve(r)
//		if enough() { break }          // stops the underlying expansion
//	}
//
// The yielded error is non-nil on at most the final pair: invalid input
// yields one typed-error pair and ends, and if ctx is cancelled mid-stream
// the expansion stops and the stream ends with (Result{}, ctx.Err()) after
// whatever was already streamed. Breaking out of the loop early abandons
// the rest of the search immediately and returns the pooled session; the
// sequence is single-use but cheap to recreate.
//
// INE, the IER family, G-tree and ROAD stream natively (each confirmed
// neighbor is yielded mid-search); the SILC pair computes its full answer
// first and replays it. Safe for unbounded concurrent callers; only fully
// consumed streams are recorded in Stats and planner EWMAs.
func (db *DB) KNNSeq(ctx context.Context, q int32, k int, opts ...QueryOption) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		qo := db.applyOpts(opts)
		if k <= 0 {
			yield(Result{}, fmt.Errorf("%w: k=%d", ErrBadK, k))
			return
		}
		if err := db.checkKNNMethod(qo.method); err != nil {
			yield(Result{}, err)
			return
		}
		b, err := db.checkQuery(ctx, q, qo)
		if err != nil {
			yield(Result{}, err)
			return
		}
		m := db.resolveMethod(qo.method, k, b)
		ps, err := db.pools[m].get(b)
		if err != nil {
			yield(Result{}, err)
			return
		}
		ps.arm(ctx)
		// The deferred release covers every exit: normal completion, early
		// consumer break, the error yields below, and panics in the
		// consumer's loop body unwinding through this frame.
		defer func() {
			ps.disarm()
			db.pools[m].put(ps)
		}()

		consumerDone := false
		// elapsed accumulates only time spent inside the method: the clock
		// pauses around each yield so consumer loop-body work does not
		// inflate Stats or poison the planner's latency EWMAs.
		var elapsed time.Duration
		segment := time.Now()
		knn.StreamKNN(ps.sess, q, k, func(r knn.Result) bool {
			elapsed += time.Since(segment)
			defer func() { segment = time.Now() }()
			// The interrupt hook stops the scan between results; checking
			// again here keeps cancellation ahead of result delivery for
			// the buffered fallback methods too.
			if ctx.Err() != nil {
				return false
			}
			if !yield(r, nil) {
				consumerDone = true
				return false
			}
			return true
		})
		elapsed += time.Since(segment)
		if consumerDone {
			return
		}
		if err := ctx.Err(); err != nil {
			yield(Result{}, err)
			return
		}
		db.recordKNN(m, k, b, elapsed)
	}
}
