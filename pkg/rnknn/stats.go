package rnknn

import (
	"sync/atomic"
	"time"
)

// IndexStats describes one built road-network index.
type IndexStats struct {
	// BuildTime is the wall-clock construction time paid at Open — or, when
	// Loaded is true, the snapshot decode time.
	BuildTime time.Duration
	// SizeBytes estimates the index's in-memory footprint.
	SizeBytes int
	// Loaded reports that the index came from a snapshot (OpenFromSnapshot
	// or a WithIndexCache hit) instead of being built.
	Loaded bool
}

// MethodStats aggregates the queries one method has served.
type MethodStats struct {
	// KNNQueries and RangeQueries count completed (non-errored,
	// non-cancelled) queries. Range queries always run on INE.
	KNNQueries   uint64
	RangeQueries uint64
	// TotalLatency sums completed query latencies; divide by the query
	// count for the mean. MaxLatency is the worst single query.
	TotalLatency time.Duration
	MaxLatency   time.Duration
}

// BatchStats aggregates batch execution: how many batches ran and how
// their queries split between shared-expansion groups and individual
// fan-out (see Batch).
type BatchStats struct {
	// Batches counts Batch.Run calls that executed at least one query.
	Batches uint64
	// SharedGroups counts shared-expansion groups executed.
	SharedGroups uint64
	// SharedQueries counts queries answered inside shared groups.
	SharedQueries uint64
	// FanoutQueries counts batch queries that fanned out individually.
	FanoutQueries uint64
}

// batchCounters is the lock-free aggregate behind BatchStats.
type batchCounters struct {
	batches       atomic.Uint64
	sharedGroups  atomic.Uint64
	sharedQueries atomic.Uint64
	fanoutQueries atomic.Uint64
}

func (c *batchCounters) snapshot() BatchStats {
	return BatchStats{
		Batches:       c.batches.Load(),
		SharedGroups:  c.sharedGroups.Load(),
		SharedQueries: c.sharedQueries.Load(),
		FanoutQueries: c.fanoutQueries.Load(),
	}
}

// Stats is a point-in-time snapshot of the DB's observability counters.
type Stats struct {
	// Indexes maps index name ("Gtree", "PHL", ...) to its build cost.
	Indexes map[string]IndexStats
	// Methods maps method name to its query counters (methods with no
	// completed queries report zero counters).
	Methods map[string]MethodStats
	// Categories maps each registered object category to its live object
	// count.
	Categories map[string]int
	// Epochs maps each registered object category to its live epoch number
	// (how many set-changing mutations it has absorbed since registration).
	Epochs map[string]uint64
	// Monitor aggregates continuous-query work (see DB.Monitor): route
	// steps served, and the avoided/re-run split.
	Monitor MonitorStats
	// Batch aggregates batch execution (see DB.Batch): shared-expansion
	// groups versus individual fan-out.
	Batch BatchStats
}

// counters is one method's lock-free aggregate.
type counters struct {
	knnQueries   atomic.Uint64
	rangeQueries atomic.Uint64
	totalNanos   atomic.Int64
	maxNanos     atomic.Int64
}

func (c *counters) record(d time.Duration, isRange bool) {
	if isRange {
		c.rangeQueries.Add(1)
	} else {
		c.knnQueries.Add(1)
	}
	c.totalNanos.Add(int64(d))
	for {
		cur := c.maxNanos.Load()
		if int64(d) <= cur || c.maxNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

func (c *counters) snapshot() MethodStats {
	return MethodStats{
		KNNQueries:   c.knnQueries.Load(),
		RangeQueries: c.rangeQueries.Load(),
		TotalLatency: time.Duration(c.totalNanos.Load()),
		MaxLatency:   time.Duration(c.maxNanos.Load()),
	}
}

// registry holds one counters slot per method; slots for disabled methods
// exist but stay zero (INE's slot also aggregates Range queries even when
// INE is not an enabled KNN method).
type registry struct {
	perMethod [numMethods]counters
}

func (r *registry) recordKNN(m Method, d time.Duration) { r.perMethod[m].record(d, false) }

func (r *registry) recordRange(d time.Duration) { r.perMethod[INE].record(d, true) }

// Stats returns a snapshot of index build costs, per-method query counters
// and live category sizes. Safe for concurrent use; counters are read
// atomically but not as one consistent cut.
func (db *DB) Stats() Stats {
	s := Stats{
		Indexes:    map[string]IndexStats{},
		Methods:    map[string]MethodStats{},
		Categories: map[string]int{},
		Epochs:     map[string]uint64{},
		Monitor:    db.mon.snapshot(),
		Batch:      db.batchStats.snapshot(),
	}
	for name, info := range db.eng.BuiltIndexes() {
		s.Indexes[name] = IndexStats{BuildTime: info.BuildTime, SizeBytes: info.SizeBytes, Loaded: info.Loaded}
	}
	for _, m := range db.methods {
		s.Methods[m.String()] = db.stats.perMethod[m].snapshot()
	}
	// Range queries land on INE even when it is not an enabled method.
	if !db.enabled[INE] {
		if ms := db.stats.perMethod[INE].snapshot(); ms.RangeQueries > 0 {
			s.Methods[INE.String()] = ms
		}
	}
	db.mu.RLock()
	for name, cat := range db.cats {
		if b := cat.binding.Load(); b != nil {
			s.Categories[name] = b.Objs.Len()
			s.Epochs[name] = b.Epoch
		}
	}
	db.mu.RUnlock()
	return s
}
