package rnknn

import (
	"context"
	"testing"

	"rnknn/internal/gen"
)

// TestDBKNNAppendZeroAllocs pins the public-API half of the Issue 5
// contract: on a warm DB, KNNAppend into a caller-reused buffer performs
// zero heap allocations per query for every enabled method — the pooled
// session owns all transient search state, the interrupt closure is bound
// once at session manufacture, and result storage is caller-owned. The
// buffered KNN form allocates exactly its caller-visible result slice and
// nothing else, which the companion BenchmarkDBKNNAllocs tracks in the
// perf trajectory.
func TestDBKNNAppendZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every queried index")
	}
	if raceEnabled {
		t.Skip("race-detector sync.Pool drops Puts; pooled sessions are re-manufactured mid-run")
	}
	g := gen.Network(gen.NetworkSpec{Name: "alloc", Rows: 24, Cols: 24, Seed: 606})
	db, err := Open(g,
		WithMethods(INE, IERPHL, IERCH, Gtree, ROAD, DisBrw),
		WithObjects(DefaultCategory, gen.Uniform(g, 0.05, 13)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const k = 8

	for _, m := range db.Methods() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			opt := WithMethod(m)
			var buf []Result
			// Warm up: manufacture the pooled session, grow its scratch to
			// steady state, and land this regime's planner EWMA bucket.
			for q := int32(0); q < 16; q++ {
				buf, err = db.KNNAppend(ctx, q*29, k, buf[:0], opt)
				if err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				buf, _ = db.KNNAppend(ctx, 137, k, buf[:0], opt)
			})
			if allocs != 0 {
				t.Errorf("%s: warm db.KNNAppend allocates %v allocs/op, want 0", m, allocs)
			}
			if len(buf) != k {
				t.Fatalf("%s: got %d results, want %d", m, len(buf), k)
			}
		})
	}

	t.Run("Range", func(t *testing.T) {
		var buf []Result
		for q := int32(0); q < 8; q++ {
			var err error
			buf, err = db.RangeAppend(ctx, q*31, 4000, buf[:0])
			if err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			buf, _ = db.RangeAppend(ctx, 137, 4000, buf[:0])
		})
		if allocs != 0 {
			t.Errorf("warm db.RangeAppend allocates %v allocs/op, want 0", allocs)
		}
	})
}
