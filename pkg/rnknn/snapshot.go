// Index persistence on the public API: save a DB's built indexes as one
// snapshot, open a DB from a snapshot, or let WithIndexCache do both
// transparently. The snapshot container format is specified byte-for-byte in
// docs/SNAPSHOT_FORMAT.md.
package rnknn

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rnknn/internal/core"
	"rnknn/internal/mapped"
	"rnknn/internal/snapshot"
)

// Snapshot errors; match with errors.Is.
var (
	// ErrBadSnapshot reports a malformed, truncated, or corrupt snapshot
	// (bad magic, unsupported version, checksum mismatch, or a section its
	// index codec rejects).
	ErrBadSnapshot = snapshot.ErrBadSnapshot
	// ErrFingerprintMismatch reports a valid snapshot whose indexes were
	// built over a different graph than the one supplied.
	ErrFingerprintMismatch = snapshot.ErrFingerprintMismatch
)

// WithIndexCache makes Open transparently persistent: before building any
// index it tries to load dir/<graph>-<fingerprint>.rnks, and after building
// it saves every built index back (written to a temporary file and renamed,
// so readers never observe a partial snapshot). The file name includes the
// graph fingerprint, so a changed graph simply misses the cache and
// rebuilds; a corrupt or mismatched cache file is ignored the same way. The
// second Open of the same graph therefore skips every expensive build —
// observable via Stats().Indexes[...].Loaded.
//
// The cache is best-effort in both directions: a failed load falls back to
// building, and a failed save (full or read-only cache volume) does not
// fail the Open that just built its indexes successfully — the next Open
// simply builds again. Use DB.SaveIndexesFile when a write failure must be
// surfaced. Only creating the cache directory itself reports an error,
// since that points at a misconfigured dir rather than a runtime fault.
func WithIndexCache(dir string) Option {
	return func(c *config) { c.cacheDir = dir }
}

// OpenFromSnapshot is Open, warm-started from a snapshot previously written
// by SaveIndexes (or cmd/buildindex): every index the snapshot carries is
// loaded instead of built, and any enabled method whose index the snapshot
// lacks is built as usual. The snapshot must match g (ErrFingerprintMismatch
// otherwise); corrupt data surfaces ErrBadSnapshot.
func OpenFromSnapshot(g *Graph, r io.Reader, opts ...Option) (*DB, error) {
	opts = append(append([]Option(nil), opts...), func(c *config) { c.snapshotR = r })
	return Open(g, opts...)
}

// WithMmap selects the zero-copy snapshot load path: when the snapshot
// source is a file (OpenFromSnapshot with an *os.File, the WithIndexCache
// file, or OpenSnapshotFile — which implies it), the file is mmap'ed
// read-only and every mappable section decodes into slices that alias the
// mapping. Warm start becomes O(pages touched) instead of O(bytes
// decoded), and all processes (or shard DBs) opening the same snapshot
// share one physical copy of it in the page cache.
//
// The trade: a mapped open skips checksum verification and the
// per-element validation scans (each would fault in every page, paying
// the full decode cost the mapping exists to avoid), so it trusts the
// snapshot file — appropriate for snapshots the deployment wrote itself.
// Close the DB when done to release the mapping; on platforms without
// mmap the flag quietly degrades to the ordinary verified decode.
func WithMmap() Option {
	return func(c *config) { c.mmap = true }
}

// OpenSnapshotFile opens a DB directly from a self-contained snapshot
// file written by SaveIndexesFile or cmd/buildindex — no graph argument:
// the snapshot's own Graph section supplies the road network, mapped
// zero-copy alongside the indexes (see WithMmap, which this implies).
// This is the continental-scale entry point: opening a multi-gigabyte
// snapshot costs page faults, not a decode of every byte, and N replicas
// of one snapshot cost one page cache, not N heaps.
func OpenSnapshotFile(path string, opts ...Option) (*DB, error) {
	ms, err := mapped.Open(path)
	if err != nil {
		return nil, err
	}
	g, fp, err := core.LoadGraphData(ms.Data, ms.Mapped)
	if err != nil {
		_ = ms.Close()
		return nil, err
	}
	opts = append(append([]Option(nil), opts...), func(c *config) {
		c.snap = ms
		c.seedFP = fp
		c.seedFPSet = true
	})
	db, err := Open(g, opts...)
	if err != nil {
		// Open released the mapping on its own failure paths.
		return nil, err
	}
	return db, nil
}

// Close releases resources the DB holds beyond ordinary heap — today the
// snapshot mapping established by WithMmap or OpenSnapshotFile. Call it
// only after every query, monitor, and batch has completed: indexes
// decoded from the mapping alias it, and touching them afterwards faults.
// Close is idempotent; a DB without a mapping closes to nil trivially.
func (db *DB) Close() error {
	return db.mapped.Close()
}

// SaveIndexes writes every index the DB has built as one snapshot. Indexes
// are immutable once built, so this is safe to call while queries are in
// flight.
func (db *DB) SaveIndexes(w io.Writer) error {
	return db.eng.SaveIndexes(w)
}

// SaveIndexesFile writes the snapshot to path atomically: the bytes go to a
// temporary file in the same directory, synced, then renamed over path.
func (db *DB) SaveIndexesFile(path string) error {
	return writeFileAtomic(path, db.SaveIndexes)
}

// writeFileAtomic streams write into a temp file next to path and renames it
// into place, so concurrent readers of path see the old or the new snapshot,
// never a torn one.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err := write(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	tmp = ""
	return nil
}

// cacheFilePath names the snapshot for g inside dir: the sanitized graph
// name plus the graph fingerprint (which also covers the active weight
// kind), so distance and travel-time views of one network cache separately.
func cacheFilePath(dir string, g *Graph, fingerprint uint64) string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, g.Name)
	if name == "" {
		name = "graph"
	}
	return filepath.Join(dir, fmt.Sprintf("%s-%016x.rnks", name, fingerprint))
}
