package rnknn

import (
	"context"
	"sync"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/knn"
)

// sharedEquivDBs opens the three-network fixture the shared-expansion
// equivalence tests sweep: different shapes and seeds, every method family
// built (the networks are small enough that even quadratic SILC is cheap),
// a dense and a sparse category each.
func sharedEquivDBs(t *testing.T) []*DB {
	t.Helper()
	specs := []gen.NetworkSpec{
		{Name: "shared-a", Rows: 16, Cols: 20, Seed: 9},
		{Name: "shared-b", Rows: 24, Cols: 24, Seed: 11},
		{Name: "shared-c", Rows: 30, Cols: 18, Seed: 13},
	}
	dbs := make([]*DB, len(specs))
	for i, spec := range specs {
		g := gen.Network(spec)
		db, err := Open(g,
			WithMethods(INE, IERDijk, IERPHL, IERGt, Gtree, ROAD, DisBrw),
			WithObjects(DefaultCategory, gen.Uniform(g, 0.04, spec.Seed+1)),
			WithObjects("sparse", gen.Uniform(g, 0.006, spec.Seed+2)),
		)
		if err != nil {
			t.Fatal(err)
		}
		dbs[i] = db
	}
	return dbs
}

// clusteredQueries picks queries packed into partition leaves — the
// workload the grouping planner is built for. Leaves rotate so several
// groups form per batch.
func clusteredQueries(db *DB, n int) []int32 {
	pt := db.batchPartition()
	var leaves [][]int32
	for ni := range pt.Nodes {
		if pt.Nodes[ni].IsLeaf() && len(pt.Nodes[ni].Vertices) >= 4 {
			leaves = append(leaves, pt.Nodes[ni].Vertices)
		}
	}
	out := make([]int32, n)
	for i := range out {
		leaf := leaves[(i/8)%len(leaves)]
		out[i] = leaf[i%len(leaf)]
	}
	return out
}

// TestBatchSharedEquivalence is the tentpole's exactness gate: for every
// network, every built method, and every sharing mode (forced on, forced
// off, planner-decided), a batch of leaf-clustered queries must return
// exactly what the one-at-a-time API returns for each member.
func TestBatchSharedEquivalence(t *testing.T) {
	ctx := context.Background()
	for gi, db := range sharedEquivDBs(t) {
		queries := clusteredQueries(db, 24)
		for _, m := range db.Methods() {
			for _, mode := range []SharedMode{SharedOn, SharedOff, SharedAuto} {
				b := db.Batch().SharedExpansion(mode)
				for i, q := range queries {
					cat := DefaultCategory
					if i%2 == 1 {
						cat = "sparse"
					}
					b.AddKNN(q, 1+i%8, WithMethod(m), WithCategory(cat))
				}
				got, err := b.Run(ctx)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range got {
					if r.Err != nil {
						t.Fatalf("graph %d %s mode %d op %d: %v", gi, m, mode, i, r.Err)
					}
					cat := DefaultCategory
					if i%2 == 1 {
						cat = "sparse"
					}
					want, err := db.KNN(ctx, queries[i], 1+i%8, WithMethod(m), WithCategory(cat))
					if err != nil {
						t.Fatal(err)
					}
					if !SameResults(r.Results, want) {
						t.Fatalf("graph %d %s mode %d op %d (q=%d k=%d): batch %s != individual %s",
							gi, m, mode, i, queries[i], 1+i%8, FormatResults(r.Results), FormatResults(want))
					}
				}
			}
		}
	}
}

// TestBatchSharedOnActuallyShares pins that SharedOn drives the expansion
// methods through the shared path (Shared flag and counters), and SharedOff
// never does.
func TestBatchSharedOnActuallyShares(t *testing.T) {
	db := sharedEquivDBs(t)[0]
	ctx := context.Background()
	queries := clusteredQueries(db, 16)
	for _, m := range []Method{INE, Gtree} {
		before := db.batchStats.snapshot()
		b := db.Batch().SharedExpansion(SharedOn)
		for _, q := range queries {
			b.AddKNN(q, 5, WithMethod(m))
		}
		got, err := b.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		sharedN := 0
		for _, r := range got {
			if r.Shared {
				sharedN++
			}
		}
		after := db.batchStats.snapshot()
		if sharedN == 0 || after.SharedGroups == before.SharedGroups {
			t.Fatalf("%s: SharedOn batch shared %d queries, groups %d -> %d",
				m, sharedN, before.SharedGroups, after.SharedGroups)
		}
		if after.SharedQueries-before.SharedQueries != uint64(sharedN) {
			t.Fatalf("%s: Shared flags (%d) disagree with counters (%d)",
				m, sharedN, after.SharedQueries-before.SharedQueries)
		}
	}
	// SharedOff: everything fans out.
	before := db.batchStats.snapshot()
	b := db.Batch().SharedExpansion(SharedOff)
	for _, q := range queries {
		b.AddKNN(q, 5, WithMethod(INE))
	}
	got, err := b.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Shared {
			t.Fatalf("SharedOff op %d ran shared", i)
		}
	}
	after := db.batchStats.snapshot()
	if after.SharedGroups != before.SharedGroups {
		t.Fatal("SharedOff still formed shared groups")
	}
	if after.FanoutQueries-before.FanoutQueries != uint64(len(queries)) {
		t.Fatalf("SharedOff fan-out count %d, want %d",
			after.FanoutQueries-before.FanoutQueries, len(queries))
	}
}

// TestBatchExplainGroups drives the batch planner's report: group sizes,
// leaves, decisions and reasons, consistent with what Run then does.
func TestBatchExplainGroups(t *testing.T) {
	db := sharedEquivDBs(t)[0]
	pt := db.batchPartition()
	var verts []int32
	for ni := range pt.Nodes {
		if pt.Nodes[ni].IsLeaf() && len(pt.Nodes[ni].Vertices) >= 6 {
			verts = pt.Nodes[ni].Vertices
			break
		}
	}
	b := db.Batch().SharedExpansion(SharedOn)
	for i := 0; i < 6; i++ {
		b.AddKNN(verts[i], 4, WithMethod(INE))
	}
	b.AddRange(verts[0], 500) // never grouped
	plan := b.Explain()
	if len(plan.Groups) != 1 {
		t.Fatalf("Explain groups = %+v, want one 6-member group", plan.Groups)
	}
	g := plan.Groups[0]
	if g.Size != 6 || !g.Shared || g.Method != INE || g.Reason == "" {
		t.Fatalf("group = %+v", g)
	}
	if plan.SharedQueries != 6 || plan.FanoutQueries != 1 {
		t.Fatalf("plan counts = %+v", plan)
	}
	// The auto decision cites the cost model (fitted or seed) or the EWMA.
	auto := db.Batch().SharedExpansion(SharedAuto)
	for i := 0; i < 6; i++ {
		auto.AddKNN(verts[i], 4, WithMethod(INE))
	}
	aplan := auto.Explain()
	if len(aplan.Groups) != 1 || aplan.Groups[0].Reason == "" {
		t.Fatalf("auto plan = %+v", aplan)
	}
	// Run agrees with the forced plan.
	got, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if got[i].Err != nil || !got[i].Shared {
			t.Fatalf("op %d: err=%v shared=%v, want shared", i, got[i].Err, got[i].Shared)
		}
	}
	if got[6].Shared {
		t.Fatal("range query ran shared")
	}
}

// TestBatchSharedUnderConcurrentChurn races shared batches against object
// churn on the same category: every member must answer exactly from one of
// the two possible epochs (spare object in or out) — the group pins one
// epoch for all its members, and a torn read would show as a result
// matching neither reference.
func TestBatchSharedUnderConcurrentChurn(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "shared-churn", Rows: 24, Cols: 24, Seed: 17})
	db, err := Open(g, WithMethods(INE, Gtree))
	if err != nil {
		t.Fatal(err)
	}
	const spare int32 = 0
	base := gen.Uniform(g, 0.02, 18)
	objs := base[:0]
	for _, v := range base {
		if v != spare {
			objs = append(objs, v)
		}
	}
	if err := db.RegisterObjects("churn", objs); err != nil {
		t.Fatal(err)
	}
	withSpare := knn.NewObjectSet(g, append(append([]int32(nil), objs...), spare))
	withoutSpare := knn.NewObjectSet(g, objs)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				err = db.InsertObjects("churn", []int32{spare})
			} else {
				err = db.RemoveObjects("churn", []int32{spare})
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	queries := clusteredQueries(db, 8)
	for iter := 0; iter < 40; iter++ {
		m := INE
		if iter%2 == 1 {
			m = Gtree
		}
		b := db.Batch().SharedExpansion(SharedOn)
		for _, q := range queries {
			b.AddKNN(q, 5, WithMethod(m), WithCategory("churn"))
		}
		got, err := b.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range got {
			if r.Err != nil {
				t.Fatalf("iter %d op %d: %v", iter, i, r.Err)
			}
			a := knn.BruteForce(g, withSpare, queries[i], 5)
			bf := knn.BruteForce(g, withoutSpare, queries[i], 5)
			if !SameResults(r.Results, a) && !SameResults(r.Results, bf) {
				t.Fatalf("iter %d op %d (q=%d): %s matches neither epoch (%s | %s)",
					iter, i, queries[i], FormatResults(r.Results), FormatResults(a), FormatResults(bf))
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestBatchSharedAcrossCategories guards the group key: same-leaf queries
// on different categories must not share a frontier.
func TestBatchSharedAcrossCategories(t *testing.T) {
	db := sharedEquivDBs(t)[0]
	queries := clusteredQueries(db, 8)
	b := db.Batch().SharedExpansion(SharedOn)
	for i, q := range queries {
		cat := DefaultCategory
		if i%2 == 1 {
			cat = "sparse"
		}
		b.AddKNN(q, 4, WithMethod(INE), WithCategory(cat))
	}
	plan := b.Explain()
	for _, g := range plan.Groups {
		if g.Category != DefaultCategory && g.Category != "sparse" {
			t.Fatalf("unexpected group category %q", g.Category)
		}
	}
	got, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		cat := DefaultCategory
		if i%2 == 1 {
			cat = "sparse"
		}
		want, err := db.KNN(context.Background(), queries[i], 4, WithMethod(INE), WithCategory(cat))
		if err != nil {
			t.Fatal(err)
		}
		if !SameResults(r.Results, want) {
			t.Fatalf("op %d (%s): %s != %s", i, cat, FormatResults(r.Results), FormatResults(want))
		}
	}
}

// TestBatchGroupWidthCap: a batch wider than the shared frontier's width
// must split groups rather than panic, and stay exact.
func TestBatchGroupWidthCap(t *testing.T) {
	db := sharedEquivDBs(t)[1]
	pt := db.batchPartition()
	// Gather enough same-leaf queries to overflow one group (repeats are
	// fine — duplicate members are legal).
	var verts []int32
	for ni := range pt.Nodes {
		if pt.Nodes[ni].IsLeaf() && len(pt.Nodes[ni].Vertices) > len(verts) {
			verts = pt.Nodes[ni].Vertices
		}
	}
	const n = 80 // > dijkstra.MaxWidth
	b := db.Batch().SharedExpansion(SharedOn)
	for i := 0; i < n; i++ {
		b.AddKNN(verts[i%len(verts)], 3, WithMethod(INE))
	}
	plan := b.Explain()
	for _, g := range plan.Groups {
		if g.Size > 64 {
			t.Fatalf("group of %d exceeds the frontier width cap", g.Size)
		}
	}
	if len(plan.Groups) < 2 {
		t.Fatalf("80 same-leaf queries formed %d group(s), want a split", len(plan.Groups))
	}
	got, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		want, err := db.KNN(context.Background(), verts[i%len(verts)], 3, WithMethod(INE))
		if err != nil {
			t.Fatal(err)
		}
		if !SameResults(r.Results, want) {
			t.Fatalf("op %d: %s != %s", i, FormatResults(r.Results), FormatResults(want))
		}
	}
}
