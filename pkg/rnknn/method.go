package rnknn

import (
	"fmt"
	"strings"

	"rnknn/internal/core"
)

// Method identifies a kNN method configuration. The zero value is INE.
type Method int

// MethodAuto asks the adaptive planner to pick the method per query from
// the DB's enabled methods, using the paper's regime findings (no single
// method dominates; crossovers are governed by k, object density, and
// network size — Section 7, Table 5) refined by observed per-method
// latency. Usable with WithMethod on KNN, KNNSeq, and batch queries;
// Explain reports what it resolves to and why.
const MethodAuto Method = -1

// The methods mirror internal/core's kinds: the paper's five algorithms,
// with IER composable over each distance oracle (Section 5).
const (
	// INE is Incremental Network Expansion (Section 3.1).
	INE Method = iota
	// IERDijk is IER with a resumable Dijkstra oracle (the original IER).
	IERDijk
	// IERCH is IER with a Contraction Hierarchies oracle.
	IERCH
	// IERTNR is IER with a Transit Node Routing oracle.
	IERTNR
	// IERPHL is IER with the hub-labeling (PHL) oracle — the paper's
	// overall winner (Table 5).
	IERPHL
	// IERGt is IER with the materialized G-tree oracle (MGtree).
	IERGt
	// Gtree is the G-tree kNN algorithm (Section 3.5, Algorithm 3).
	Gtree
	// ROAD is Route Overlay and Association Directory (Section 3.4).
	ROAD
	// DisBrw is Distance Browsing in its DB-ENN form (Appendix A.1.1).
	DisBrw
	// DisBrwOH is Distance Browsing with the original Object Hierarchy.
	DisBrwOH
	numMethods
)

func (m Method) valid() bool { return m >= 0 && m < numMethods }

func (m Method) kind() core.MethodKind { return core.MethodKind(m) }

// String returns the method's display name (e.g. "IER-PHL"), the same name
// ParseMethod accepts. MethodAuto prints as "Auto".
func (m Method) String() string {
	if m == MethodAuto {
		return "Auto"
	}
	return m.kind().String()
}

// Methods lists every method in display order.
func Methods() []Method {
	out := make([]Method, 0, numMethods)
	for m := Method(0); m < numMethods; m++ {
		out = append(out, m)
	}
	return out
}

// MethodNames lists every method's display name in display order.
func MethodNames() []string {
	out := make([]string, 0, numMethods)
	for _, m := range Methods() {
		out = append(out, m.String())
	}
	return out
}

// ParseMethod resolves a display name ("INE", "IER-PHL", "Gtree", ...,
// case-insensitively) to its Method, reporting ErrUnknownMethod for
// anything else. "Auto" (or "auto") resolves to MethodAuto.
func ParseMethod(name string) (Method, error) {
	if strings.EqualFold(name, MethodAuto.String()) {
		return MethodAuto, nil
	}
	for _, m := range Methods() {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("%w: %q (valid: Auto, %v)", ErrUnknownMethod, name, MethodNames())
}
