package rnknn

import (
	"context"
	"errors"
	"iter"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rnknn/internal/gen"
)

// churnGraphs are the three networks the churn-equivalence property is
// checked on; the smallest also builds SILC so the DisBrw pair's
// maintainers (dynamic R-tree, rebuilt object hierarchy) are exercised.
var churnGraphs = []gen.NetworkSpec{
	{Name: "c-small", Rows: 8, Cols: 10, Seed: 31},
	{Name: "c-mid", Rows: 14, Cols: 18, Seed: 37},
	{Name: "c-wide", Rows: 10, Cols: 32, Seed: 41},
}

func churnDB(t *testing.T, spec gen.NetworkSpec) *DB {
	t.Helper()
	g := gen.Network(spec)
	methods := []Method{INE, IERDijk, IERCH, IERTNR, IERPHL, IERGt, Gtree, ROAD}
	if g.NumVertices() <= 200 {
		methods = append(methods, DisBrw, DisBrwOH)
	}
	db, err := Open(g, WithMethods(methods...))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestChurnEquivalence is the central property of the dynamic object store:
// after every step of a random Insert/Remove workload, every built method
// answers KNN, KNNSeq, and Range over the incrementally maintained indexes
// exactly as a DB whose category was re-registered from scratch — across
// three graphs, with the epoch counter advancing per mutation.
func TestChurnEquivalence(t *testing.T) {
	for _, spec := range churnGraphs {
		t.Run(spec.Name, func(t *testing.T) {
			inc := churnDB(t, spec)     // mutated incrementally
			rebuilt := churnDB(t, spec) // re-registered from scratch each step
			g := inc.Graph()
			rng := rand.New(rand.NewSource(int64(spec.Seed)))
			ctx := context.Background()

			current := map[int32]bool{}
			initial := gen.Uniform(g, 0.05, int64(spec.Seed)+1)
			for _, v := range initial {
				current[v] = true
			}
			if err := inc.RegisterObjects(DefaultCategory, initial); err != nil {
				t.Fatal(err)
			}

			lastEpoch, err := inc.Epoch(DefaultCategory)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 25; step++ {
				// Mutate: a small batch of inserts or removes.
				var batch []int32
				for i := 0; i < 1+rng.Intn(4); i++ {
					batch = append(batch, int32(rng.Intn(g.NumVertices())))
				}
				if rng.Intn(2) == 0 {
					if err := inc.InsertObjects(DefaultCategory, batch); err != nil {
						t.Fatal(err)
					}
					for _, v := range batch {
						current[v] = true
					}
				} else {
					if err := inc.RemoveObjects(DefaultCategory, batch); err != nil {
						t.Fatal(err)
					}
					for _, v := range batch {
						delete(current, v)
					}
				}
				epoch, err := inc.Epoch(DefaultCategory)
				if err != nil {
					t.Fatal(err)
				}
				if epoch < lastEpoch {
					t.Fatalf("step %d: epoch went backwards %d -> %d", step, lastEpoch, epoch)
				}
				lastEpoch = epoch

				var verts []int32
				for v := range current {
					verts = append(verts, v)
				}
				if err := rebuilt.RegisterObjects(DefaultCategory, verts); err != nil {
					t.Fatal(err)
				}
				if n, _ := inc.NumObjects(DefaultCategory); n != len(current) {
					t.Fatalf("step %d: NumObjects %d, want %d", step, n, len(current))
				}

				q := int32(rng.Intn(g.NumVertices()))
				for _, m := range inc.Methods() {
					got, err := inc.KNN(ctx, q, 6, WithMethod(m))
					if err != nil {
						t.Fatalf("step %d %s: %v", step, m, err)
					}
					want, err := rebuilt.KNN(ctx, q, 6, WithMethod(m))
					if err != nil {
						t.Fatalf("step %d %s (rebuilt): %v", step, m, err)
					}
					if !SameResults(got, want) {
						t.Fatalf("step %d %s q=%d: incremental %s rebuilt %s",
							step, m, q, FormatResults(got), FormatResults(want))
					}
					var streamed []Result
					for r, err := range inc.KNNSeq(ctx, q, 6, WithMethod(m)) {
						if err != nil {
							t.Fatalf("step %d %s KNNSeq: %v", step, m, err)
						}
						streamed = append(streamed, r)
					}
					if !SameResults(streamed, want) {
						t.Fatalf("step %d %s q=%d: KNNSeq %s rebuilt %s",
							step, m, q, FormatResults(streamed), FormatResults(want))
					}
				}
				gotR, err := inc.Range(ctx, q, 3000)
				if err != nil {
					t.Fatal(err)
				}
				wantR, err := rebuilt.Range(ctx, q, 3000)
				if err != nil {
					t.Fatal(err)
				}
				if !SameResults(gotR, wantR) {
					t.Fatalf("step %d q=%d: Range incremental %s rebuilt %s",
						step, q, FormatResults(gotR), FormatResults(wantR))
				}
			}
		})
	}
}

// TestChurnPinnedEpochMidStream drives the epoch-pinning guarantee
// deterministically: a KNNSeq stream started before a burst of mutations
// must finish answering from the epoch it pinned at its start, even though
// the live set has since been replaced several epochs over.
func TestChurnPinnedEpochMidStream(t *testing.T) {
	db := churnDB(t, gen.NetworkSpec{Name: "c-pin", Rows: 12, Cols: 14, Seed: 43})
	g := db.Graph()
	ctx := context.Background()
	initial := gen.Uniform(g, 0.08, 44)
	if err := db.RegisterObjects(DefaultCategory, initial); err != nil {
		t.Fatal(err)
	}
	q := int32(17)
	const k = 10

	for _, m := range db.Methods() {
		want, err := db.KNN(ctx, q, k, WithMethod(m))
		if err != nil {
			t.Fatal(err)
		}

		next, stop := iter.Pull2(db.KNNSeq(ctx, q, k, WithMethod(m)))
		r, e, ok := next()
		if !ok || e != nil {
			t.Fatalf("%s: first pull failed: %v %v", m, e, ok)
		}
		got := []Result{r}

		// Mid-stream churn: remove every object of the pinned epoch and
		// insert a disjoint set, several epochs' worth.
		for _, v := range initial {
			if err := db.RemoveObjects(DefaultCategory, []int32{v}); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.InsertObjects(DefaultCategory, gen.Uniform(g, 0.03, 45)); err != nil {
			t.Fatal(err)
		}

		for {
			r, e, ok := next()
			if !ok {
				break
			}
			if e != nil {
				t.Fatalf("%s: mid-churn pull: %v", m, e)
			}
			got = append(got, r)
		}
		stop()
		if !SameResults(got, want) {
			t.Fatalf("%s: pinned stream diverged: got %s want %s",
				m, FormatResults(got), FormatResults(want))
		}

		// Restore the initial set for the next method's round.
		if err := db.RegisterObjects(DefaultCategory, initial); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentChurnAndQueries hammers mutations and queries together
// (the -race exercise): writers churn two categories while readers run
// KNN, KNNSeq, and Range on every method. Each answer must be internally
// consistent (nondecreasing distances, no duplicates) whatever epoch it
// pinned.
func TestConcurrentChurnAndQueries(t *testing.T) {
	db := churnDB(t, gen.NetworkSpec{Name: "c-conc", Rows: 12, Cols: 16, Seed: 47})
	g := db.Graph()
	for _, cat := range []string{DefaultCategory, "busy"} {
		if err := db.RegisterObjects(cat, gen.Uniform(g, 0.05, 48)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	var stopFlag atomic.Bool
	var writers, readers sync.WaitGroup

	// Writers: one per category, alternating inserts and removes until the
	// readers are done.
	for wi, cat := range []string{DefaultCategory, "busy"} {
		writers.Add(1)
		go func(cat string, seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; !stopFlag.Load(); i++ {
				v := []int32{int32(rng.Intn(g.NumVertices()))}
				var err error
				if i%2 == 0 {
					err = db.InsertObjects(cat, v)
				} else {
					err = db.RemoveObjects(cat, v)
				}
				if err != nil {
					t.Errorf("writer %s: %v", cat, err)
					return
				}
			}
		}(cat, int64(50+wi))
	}

	methods := db.Methods()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				q := int32(rng.Intn(g.NumVertices()))
				m := methods[rng.Intn(len(methods))]
				cat := []string{DefaultCategory, "busy"}[rng.Intn(2)]
				var res []Result
				var err error
				switch i % 3 {
				case 0:
					res, err = db.KNN(ctx, q, 5, WithMethod(m), WithCategory(cat))
				case 1:
					for rr, e := range db.KNNSeq(ctx, q, 5, WithMethod(m), WithCategory(cat)) {
						if e != nil {
							err = e
							break
						}
						res = append(res, rr)
					}
				default:
					res, err = db.Range(ctx, q, 2000, WithCategory(cat))
				}
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				seen := map[int32]bool{}
				for j, rr := range res {
					if j > 0 && res[j-1].Dist > rr.Dist {
						t.Errorf("reader: distances decrease at %d: %s", j, FormatResults(res))
						return
					}
					if seen[rr.Vertex] {
						t.Errorf("reader: duplicate vertex %d", rr.Vertex)
						return
					}
					seen[rr.Vertex] = true
				}
			}
		}(int64(60 + r))
	}

	readers.Wait()
	stopFlag.Store(true)
	writers.Wait()
}

// TestInsertRemoveValidation covers the mutation API's edges: typed errors,
// category auto-creation, idempotent deltas, and draining to empty.
func TestInsertRemoveValidation(t *testing.T) {
	db := churnDB(t, gen.NetworkSpec{Name: "c-val", Rows: 8, Cols: 8, Seed: 53})
	ctx := context.Background()

	if err := db.InsertObjects("", []int32{1}); !errors.Is(err, ErrBadCategory) {
		t.Fatalf("empty name: %v", err)
	}
	if err := db.InsertObjects("x", []int32{-1}); !errors.Is(err, ErrBadVertex) {
		t.Fatalf("bad vertex: %v", err)
	}
	if err := db.RemoveObjects("nope", []int32{1}); !errors.Is(err, ErrUnknownCategory) {
		t.Fatalf("unknown category: %v", err)
	}

	// InsertObjects into a fresh name creates the category (epoch 0).
	if err := db.InsertObjects("x", []int32{3, 5, 3}); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.NumObjects("x"); n != 2 {
		t.Fatalf("NumObjects after create = %d, want 2", n)
	}
	if e, _ := db.Epoch("x"); e != 0 {
		t.Fatalf("fresh category epoch = %d, want 0", e)
	}

	// Idempotent deltas do not advance the epoch.
	if err := db.InsertObjects("x", []int32{3}); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveObjects("x", []int32{60}); err != nil {
		t.Fatal(err)
	}
	if e, _ := db.Epoch("x"); e != 0 {
		t.Fatalf("no-op mutations advanced epoch to %d", e)
	}

	// Draining the category leaves it queryable and empty.
	if err := db.RemoveObjects("x", []int32{3, 5}); err != nil {
		t.Fatal(err)
	}
	if e, _ := db.Epoch("x"); e != 1 {
		t.Fatalf("drain epoch = %d, want 1", e)
	}
	for _, m := range db.Methods() {
		res, err := db.KNN(ctx, 0, 3, WithMethod(m), WithCategory("x"))
		if err != nil {
			t.Fatalf("%s on empty category: %v", m, err)
		}
		if len(res) != 0 {
			t.Fatalf("%s on empty category returned %s", m, FormatResults(res))
		}
	}

	// Stats reports live counts and epochs.
	if err := db.InsertObjects("x", []int32{9}); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Categories["x"] != 1 || st.Epochs["x"] != 2 {
		t.Fatalf("stats: count %d epoch %d", st.Categories["x"], st.Epochs["x"])
	}
}
