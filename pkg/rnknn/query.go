package rnknn

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rnknn/internal/core"
	"rnknn/internal/knn"
)

// sessionPool hands out single-goroutine query sessions of one method kind.
// Sessions hold the method's search state (distance arrays, heaps, per-
// session oracle state), so pooling them is what makes unbounded concurrent
// callers cheap: a goroutine reuses a free session or manufactures a new
// one, and returns it when the query finishes.
type sessionPool struct {
	eng  *core.Engine
	kind core.MethodKind
	pool sync.Pool
}

func newSessionPool(eng *core.Engine, kind core.MethodKind) *sessionPool {
	return &sessionPool{eng: eng, kind: kind}
}

// get returns a session rebound to b, manufacturing one when the pool is
// empty.
func (p *sessionPool) get(b *core.Binding) (core.Session, error) {
	if s, ok := p.pool.Get().(core.Session); ok {
		s.Rebind(b)
		return s, nil
	}
	return p.eng.NewSession(p.kind, b)
}

func (p *sessionPool) put(s core.Session) { p.pool.Put(s) }

// queryOpts collects per-query options.
type queryOpts struct {
	method    Method
	methodSet bool
	category  string
}

// QueryOption configures one KNN or Range call.
type QueryOption func(*queryOpts)

// WithMethod selects the method answering this query (default: the DB's
// first enabled method).
func WithMethod(m Method) QueryOption {
	return func(o *queryOpts) { o.method = m; o.methodSet = true }
}

// WithCategory selects the object category this query searches (default
// DefaultCategory).
func WithCategory(name string) QueryOption {
	return func(o *queryOpts) { o.category = name }
}

func (db *DB) applyOpts(opts []QueryOption) queryOpts {
	qo := queryOpts{method: db.methods[0], category: DefaultCategory}
	for _, o := range opts {
		o(&qo)
	}
	return qo
}

// checkQuery validates the shared query inputs and resolves the category.
func (db *DB) checkQuery(ctx context.Context, q int32, qo queryOpts) (*core.Binding, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= db.g.NumVertices() {
		return nil, fmt.Errorf("%w: query vertex %d (network has %d vertices)", ErrBadVertex, q, db.g.NumVertices())
	}
	return db.snapshot(qo.category)
}

// KNN returns the k nearest objects of the query's category to vertex q by
// network distance (fewer if the live object set is smaller than k), in
// nondecreasing distance order. It is safe for unbounded concurrent
// callers. Cancellation or expiry of ctx is checked between expansion steps
// of the interruptible scans (INE and the IER family), so long graph-wide
// scans return promptly with ctx's error.
func (db *DB) KNN(ctx context.Context, q int32, k int, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if !qo.method.valid() {
		return nil, fmt.Errorf("%w: %d", ErrUnknownMethod, int(qo.method))
	}
	if !db.enabled[qo.method] {
		return nil, fmt.Errorf("%w: %s (enabled: %v)", ErrMethodNotEnabled, qo.method, db.methods)
	}
	b, err := db.checkQuery(ctx, q, qo)
	if err != nil {
		return nil, err
	}
	sess, err := db.pools[qo.method].get(b)
	if err != nil {
		return nil, err
	}
	in, interruptible := sess.(knn.Interruptible)
	if interruptible {
		in.SetInterrupt(func() bool { return ctx.Err() != nil })
	}
	start := time.Now()
	res := sess.KNN(q, k)
	elapsed := time.Since(start)
	if interruptible {
		in.SetInterrupt(nil)
	}
	db.pools[qo.method].put(sess)
	if err := ctx.Err(); err != nil {
		// The scan may have been cut short; the partial answer is not
		// returned.
		return nil, err
	}
	db.stats.recordKNN(qo.method, elapsed)
	return res, nil
}

// Range returns every object of the query's category within network
// distance radius of vertex q, in nondecreasing distance order. Range
// queries always run incremental network expansion (the one method with a
// native range form); passing WithMethod with any other method reports
// ErrRangeMethod. Safe for unbounded concurrent callers, with the same
// context semantics as KNN.
func (db *DB) Range(ctx context.Context, q int32, radius Dist, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if radius < 0 {
		return nil, fmt.Errorf("%w: radius=%d", ErrBadRadius, radius)
	}
	if qo.methodSet && qo.method != INE {
		return nil, fmt.Errorf("%w: got %s", ErrRangeMethod, qo.method)
	}
	b, err := db.checkQuery(ctx, q, qo)
	if err != nil {
		return nil, err
	}
	sess, err := db.pools[INE].get(b)
	if err != nil {
		return nil, err
	}
	rm := sess.(knn.RangeMethod)
	in := sess.(knn.Interruptible)
	in.SetInterrupt(func() bool { return ctx.Err() != nil })
	start := time.Now()
	res := rm.Range(q, radius)
	elapsed := time.Since(start)
	in.SetInterrupt(nil)
	db.pools[INE].put(sess)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.recordRange(elapsed)
	return res, nil
}

// BruteForceKNN answers the query by a plain Dijkstra expansion over the
// category's live object set — the correctness reference every method is
// validated against (ignores WithMethod; not recorded in Stats).
func (db *DB) BruteForceKNN(q int32, k int, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	b, err := db.checkQuery(context.Background(), q, qo)
	if err != nil {
		return nil, err
	}
	return knn.BruteForce(db.g, b.Objs, q, k), nil
}

// BruteForceRange is the range-query correctness reference, mirroring
// BruteForceKNN.
func (db *DB) BruteForceRange(q int32, radius Dist, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if radius < 0 {
		return nil, fmt.Errorf("%w: radius=%d", ErrBadRadius, radius)
	}
	b, err := db.checkQuery(context.Background(), q, qo)
	if err != nil {
		return nil, err
	}
	return knn.BruteForceRange(db.g, b.Objs, q, radius), nil
}

// SameResults reports whether two result lists agree, tolerating reordering
// among tied distances (and any choice of ties at the k-th distance).
func SameResults(a, b []Result) bool { return knn.SameResults(a, b) }

// FormatResults renders results compactly ("[vertex:dist ...]") for logs.
func FormatResults(rs []Result) string { return knn.FormatResults(rs) }
