package rnknn

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rnknn/internal/core"
	"rnknn/internal/knn"
	"rnknn/internal/planner"
)

// sessionPool hands out single-goroutine query sessions of one method kind.
// Sessions hold the method's search state (distance arrays, heaps, per-
// session oracle state), so pooling them is what makes unbounded concurrent
// callers cheap: a goroutine reuses a free session or manufactures a new
// one, and returns it when the query finishes.
type sessionPool struct {
	eng  *core.Engine
	kind core.MethodKind
	pool sync.Pool
	// gets/puts count checkouts and returns; the streaming tests compare
	// them to prove early-broken KNNSeq iterations release their session.
	// (Counting manufactures instead would be nondeterministic: the race-
	// detector build of sync.Pool drops Puts at random.)
	gets atomic.Uint64
	puts atomic.Uint64
}

func newSessionPool(eng *core.Engine, kind core.MethodKind) *sessionPool {
	return &sessionPool{eng: eng, kind: kind}
}

// get returns a session rebound to b, manufacturing one when the pool is
// empty.
func (p *sessionPool) get(b *core.Binding) (core.Session, error) {
	p.gets.Add(1)
	if s, ok := p.pool.Get().(core.Session); ok {
		s.Rebind(b)
		return s, nil
	}
	return p.eng.NewSession(p.kind, b)
}

func (p *sessionPool) put(s core.Session) {
	p.puts.Add(1)
	p.pool.Put(s)
}

// queryOpts collects per-query options.
type queryOpts struct {
	method    Method
	methodSet bool
	category  string
}

// QueryOption configures one KNN or Range call.
type QueryOption func(*queryOpts)

// WithMethod selects the method answering this query (default: the DB's
// first enabled method).
func WithMethod(m Method) QueryOption {
	return func(o *queryOpts) { o.method = m; o.methodSet = true }
}

// WithCategory selects the object category this query searches (default
// DefaultCategory).
func WithCategory(name string) QueryOption {
	return func(o *queryOpts) { o.category = name }
}

func (db *DB) applyOpts(opts []QueryOption) queryOpts {
	qo := queryOpts{method: db.methods[0], category: DefaultCategory}
	for _, o := range opts {
		o(&qo)
	}
	return qo
}

// checkQuery validates the shared query inputs and resolves the category.
func (db *DB) checkQuery(ctx context.Context, q int32, qo queryOpts) (*core.Binding, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= db.g.NumVertices() {
		return nil, fmt.Errorf("%w: query vertex %d (network has %d vertices)", ErrBadVertex, q, db.g.NumVertices())
	}
	return db.snapshot(qo.category)
}

// checkKNNMethod validates a requested kNN method at the public API
// boundary: MethodAuto is deferred to the planner, anything else must be a
// known method (ErrUnknownMethod) the DB was opened with
// (ErrMethodNotEnabled) — never a silent fallback.
func (db *DB) checkKNNMethod(m Method) error {
	if m == MethodAuto {
		return nil
	}
	if !m.valid() {
		return fmt.Errorf("%w: %d", ErrUnknownMethod, int(m))
	}
	if !db.enabled[m] {
		return fmt.Errorf("%w: %s (enabled: %v)", ErrMethodNotEnabled, m, db.methods)
	}
	return nil
}

// features builds the planner's query-time signals from the live binding.
func (db *DB) features(k int, b *core.Binding) planner.Features {
	return planner.Features{K: k, NumObjects: b.Objs.Len(), NumVertices: db.g.NumVertices()}
}

// resolveMethod turns a validated request into the concrete method that
// will run: MethodAuto asks the planner to pick among the enabled methods
// for this (k, density, network) regime.
func (db *DB) resolveMethod(m Method, k int, b *core.Binding) Method {
	if m != MethodAuto {
		return m
	}
	return Method(db.plan.Choose(db.bindKinds, db.features(k, b)).Kind)
}

// Plan describes how a query would execute: the concrete method KNN would
// run and, for MethodAuto, the planner's rationale.
type Plan struct {
	// Method is the concrete method that would answer the query.
	Method Method
	// Reason is a one-line human-readable rationale.
	Reason string
}

// Explain resolves the method a KNN call with the same arguments would
// run, without running it. For MethodAuto it reports the planner's choice
// and cost rationale; for a fixed method it validates the request. The
// planner adapts to observed latency, so consecutive Explains may differ.
func (db *DB) Explain(q int32, k int, opts ...QueryOption) (Plan, error) {
	qo := db.applyOpts(opts)
	if k <= 0 {
		return Plan{}, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if err := db.checkKNNMethod(qo.method); err != nil {
		return Plan{}, err
	}
	b, err := db.checkQuery(context.Background(), q, qo)
	if err != nil {
		return Plan{}, err
	}
	if qo.method != MethodAuto {
		return Plan{Method: qo.method, Reason: "requested with WithMethod"}, nil
	}
	c := db.plan.Choose(db.bindKinds, db.features(k, b))
	return Plan{Method: Method(c.Kind), Reason: c.Reason}, nil
}

// KNN returns the k nearest objects of the query's category to vertex q by
// network distance (fewer if the live object set is smaller than k), in
// nondecreasing distance order. It is safe for unbounded concurrent
// callers. Cancellation or expiry of ctx is checked between expansion steps
// of the interruptible scans (INE and the IER family), so long graph-wide
// scans return promptly with ctx's error.
func (db *DB) KNN(ctx context.Context, q int32, k int, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if err := db.checkKNNMethod(qo.method); err != nil {
		return nil, err
	}
	b, err := db.checkQuery(ctx, q, qo)
	if err != nil {
		return nil, err
	}
	m := db.resolveMethod(qo.method, k, b)
	sess, err := db.pools[m].get(b)
	if err != nil {
		return nil, err
	}
	in, interruptible := sess.(knn.Interruptible)
	if interruptible {
		in.SetInterrupt(func() bool { return ctx.Err() != nil })
	}
	start := time.Now()
	res := sess.KNN(q, k)
	elapsed := time.Since(start)
	if interruptible {
		in.SetInterrupt(nil)
	}
	db.pools[m].put(sess)
	if err := ctx.Err(); err != nil {
		// The scan may have been cut short; the partial answer is not
		// returned.
		return nil, err
	}
	db.recordKNN(m, k, b, elapsed)
	return res, nil
}

// recordKNN lands a completed kNN query in the per-method counters and
// feeds the planner's latency EWMA for the query's regime — every query
// trains MethodAuto, not just the auto-planned ones.
func (db *DB) recordKNN(m Method, k int, b *core.Binding, elapsed time.Duration) {
	db.stats.recordKNN(m, elapsed)
	db.plan.Observe(m.kind(), db.features(k, b), elapsed)
}

// Range returns every object of the query's category within network
// distance radius of vertex q, in nondecreasing distance order. Range
// queries always run incremental network expansion (the one method with a
// native range form); passing WithMethod with any other concrete method
// reports ErrRangeMethod (an unknown one, ErrUnknownMethod), while
// MethodAuto resolves to INE. Safe for unbounded concurrent callers, with
// the same context semantics as KNN.
func (db *DB) Range(ctx context.Context, q int32, radius Dist, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if radius < 0 {
		return nil, fmt.Errorf("%w: radius=%d", ErrBadRadius, radius)
	}
	if err := db.checkRangeMethod(qo); err != nil {
		return nil, err
	}
	b, err := db.checkQuery(ctx, q, qo)
	if err != nil {
		return nil, err
	}
	sess, err := db.pools[INE].get(b)
	if err != nil {
		return nil, err
	}
	rm := sess.(knn.RangeMethod)
	in := sess.(knn.Interruptible)
	in.SetInterrupt(func() bool { return ctx.Err() != nil })
	start := time.Now()
	res := rm.Range(q, radius)
	elapsed := time.Since(start)
	in.SetInterrupt(nil)
	db.pools[INE].put(sess)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.recordRange(elapsed)
	return res, nil
}

// checkRangeMethod validates the method option of a range-style query:
// range queries run only on INE (the one method with a native range form).
// MethodAuto is accepted and resolves to INE; an unknown method value is
// ErrUnknownMethod, a known non-INE method is ErrRangeMethod.
func (db *DB) checkRangeMethod(qo queryOpts) error {
	if !qo.methodSet || qo.method == INE || qo.method == MethodAuto {
		return nil
	}
	if !qo.method.valid() {
		return fmt.Errorf("%w: %d", ErrUnknownMethod, int(qo.method))
	}
	return fmt.Errorf("%w: got %s", ErrRangeMethod, qo.method)
}

// BruteForceKNN answers the query by a plain Dijkstra expansion over the
// category's live object set — the correctness reference every method is
// validated against. A WithMethod option is validated (unknown or
// disabled methods are typed errors, not silently ignored) but the
// expansion always runs the reference scan; not recorded in Stats.
func (db *DB) BruteForceKNN(q int32, k int, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if err := db.checkKNNMethod(qo.method); err != nil {
		return nil, err
	}
	b, err := db.checkQuery(context.Background(), q, qo)
	if err != nil {
		return nil, err
	}
	return knn.BruteForce(db.g, b.Objs, q, k), nil
}

// BruteForceRange is the range-query correctness reference, mirroring
// BruteForceKNN.
func (db *DB) BruteForceRange(q int32, radius Dist, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if radius < 0 {
		return nil, fmt.Errorf("%w: radius=%d", ErrBadRadius, radius)
	}
	if err := db.checkRangeMethod(qo); err != nil {
		return nil, err
	}
	b, err := db.checkQuery(context.Background(), q, qo)
	if err != nil {
		return nil, err
	}
	return knn.BruteForceRange(db.g, b.Objs, q, radius), nil
}

// SameResults reports whether two result lists agree, tolerating reordering
// among tied distances (and any choice of ties at the k-th distance).
func SameResults(a, b []Result) bool { return knn.SameResults(a, b) }

// FormatResults renders results compactly ("[vertex:dist ...]") for logs.
func FormatResults(rs []Result) string { return knn.FormatResults(rs) }
