package rnknn

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rnknn/internal/core"
	"rnknn/internal/knn"
	"rnknn/internal/planner"
)

// pooledSession wraps one core.Session with the per-session state the DB
// layer reuses across queries: the context-cancellation closure (created
// once at manufacture, so arming the interrupt hook per query allocates
// nothing) and a worker-local result buffer for the copy-at-the-boundary
// paths (KNN, Batch).
type pooledSession struct {
	sess core.Session
	// in is the session's interrupt hook, nil when the method's scans are
	// not interruptible.
	in knn.Interruptible
	// ctx is the context check reads; set by arm, cleared by disarm.
	ctx   context.Context
	check func() bool
	// buf is scratch for queries whose results are copied into an
	// exact-size slice at the API boundary.
	buf []Result
}

func newPooledSession(s core.Session) *pooledSession {
	ps := &pooledSession{sess: s}
	ps.in, _ = s.(knn.Interruptible)
	ps.check = func() bool { return ps.ctx != nil && ps.ctx.Err() != nil }
	return ps
}

// arm installs the context-cancellation interrupt for one query; disarm
// removes it. Both are no-ops for non-interruptible methods.
func (ps *pooledSession) arm(ctx context.Context) {
	if ps.in == nil {
		return
	}
	ps.ctx = ctx
	ps.in.SetInterrupt(ps.check)
}

func (ps *pooledSession) disarm() {
	if ps.in == nil {
		return
	}
	ps.in.SetInterrupt(nil)
	ps.ctx = nil
}

// sessionPool hands out single-goroutine query sessions of one method kind.
// Sessions hold the method's search state (distance arrays, heaps, per-
// session oracle state), so pooling them is what makes unbounded concurrent
// callers cheap: a goroutine reuses a free session or manufactures a new
// one, and returns it when the query finishes.
type sessionPool struct {
	eng  *core.Engine
	kind core.MethodKind
	pool sync.Pool
	// gets/puts count checkouts and returns; the streaming tests compare
	// them to prove early-broken KNNSeq iterations release their session.
	// (Counting manufactures instead would be nondeterministic: the race-
	// detector build of sync.Pool drops Puts at random.)
	gets atomic.Uint64
	puts atomic.Uint64
}

func newSessionPool(eng *core.Engine, kind core.MethodKind) *sessionPool {
	return &sessionPool{eng: eng, kind: kind}
}

// get returns a session rebound to b, manufacturing one when the pool is
// empty.
func (p *sessionPool) get(b *core.Binding) (*pooledSession, error) {
	p.gets.Add(1)
	if ps, ok := p.pool.Get().(*pooledSession); ok {
		ps.sess.Rebind(b)
		return ps, nil
	}
	s, err := p.eng.NewSession(p.kind, b)
	if err != nil {
		return nil, err
	}
	return newPooledSession(s), nil
}

func (p *sessionPool) put(ps *pooledSession) {
	p.puts.Add(1)
	p.pool.Put(ps)
}

// queryOpts collects per-query options.
type queryOpts struct {
	method    Method
	methodSet bool
	category  string
}

// QueryOption configures one KNN or Range call. It is a plain value (not a
// closure): building and applying options never touches the heap, which
// keeps the KNNAppend/RangeAppend hot paths allocation-free.
type QueryOption struct {
	method      Method
	methodSet   bool
	category    string
	categorySet bool
}

// WithMethod selects the method answering this query (default: the DB's
// first enabled method).
func WithMethod(m Method) QueryOption {
	return QueryOption{method: m, methodSet: true}
}

// WithCategory selects the object category this query searches (default
// DefaultCategory).
func WithCategory(name string) QueryOption {
	return QueryOption{category: name, categorySet: true}
}

func (db *DB) applyOpts(opts []QueryOption) queryOpts {
	qo := queryOpts{method: db.methods[0], category: DefaultCategory}
	for _, o := range opts {
		if o.methodSet {
			qo.method = o.method
			qo.methodSet = true
		}
		if o.categorySet {
			qo.category = o.category
		}
	}
	return qo
}

// checkQuery validates the shared query inputs and resolves the category.
func (db *DB) checkQuery(ctx context.Context, q int32, qo queryOpts) (*core.Binding, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= db.g.NumVertices() {
		return nil, fmt.Errorf("%w: query vertex %d (network has %d vertices)", ErrBadVertex, q, db.g.NumVertices())
	}
	return db.snapshot(qo.category)
}

// checkKNNMethod validates a requested kNN method at the public API
// boundary: MethodAuto is deferred to the planner, anything else must be a
// known method (ErrUnknownMethod) the DB was opened with
// (ErrMethodNotEnabled) — never a silent fallback.
func (db *DB) checkKNNMethod(m Method) error {
	if m == MethodAuto {
		return nil
	}
	if !m.valid() {
		return fmt.Errorf("%w: %d", ErrUnknownMethod, int(m))
	}
	if !db.enabled[m] {
		return fmt.Errorf("%w: %s (enabled: %v)", ErrMethodNotEnabled, m, db.methods)
	}
	return nil
}

// features builds the planner's query-time signals from the live binding.
func (db *DB) features(k int, b *core.Binding) planner.Features {
	return planner.Features{K: k, NumObjects: b.Objs.Len(), NumVertices: db.g.NumVertices()}
}

// resolveMethod turns a validated request into the concrete method that
// will run: MethodAuto asks the planner to pick among the enabled methods
// for this (k, density, network) regime.
func (db *DB) resolveMethod(m Method, k int, b *core.Binding) Method {
	if m != MethodAuto {
		return m
	}
	return Method(db.plan.Choose(db.bindKinds, db.features(k, b)).Kind)
}

// Plan describes how a query would execute: the concrete method KNN would
// run and, for MethodAuto, the planner's rationale.
type Plan struct {
	// Method is the concrete method that would answer the query.
	Method Method
	// Reason is a one-line human-readable rationale.
	Reason string
}

// Explain resolves the method a KNN call with the same arguments would
// run, without running it. For MethodAuto it reports the planner's choice
// and cost rationale; for a fixed method it validates the request. The
// planner adapts to observed latency, so consecutive Explains may differ.
func (db *DB) Explain(q int32, k int, opts ...QueryOption) (Plan, error) {
	qo := db.applyOpts(opts)
	if k <= 0 {
		return Plan{}, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if err := db.checkKNNMethod(qo.method); err != nil {
		return Plan{}, err
	}
	b, err := db.checkQuery(context.Background(), q, qo)
	if err != nil {
		return Plan{}, err
	}
	if qo.method != MethodAuto {
		return Plan{Method: qo.method, Reason: "requested with WithMethod"}, nil
	}
	c := db.plan.Choose(db.bindKinds, db.features(k, b))
	return Plan{Method: Method(c.Kind), Reason: c.Reason}, nil
}

// KNN returns the k nearest objects of the query's category to vertex q by
// network distance (fewer if the live object set is smaller than k), in
// nondecreasing distance order. It is safe for unbounded concurrent
// callers. Cancellation or expiry of ctx is checked between expansion steps
// of the interruptible scans (INE and the IER family), so long graph-wide
// scans return promptly with ctx's error.
func (db *DB) KNN(ctx context.Context, q int32, k int, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if err := db.checkKNNMethod(qo.method); err != nil {
		return nil, err
	}
	b, err := db.checkQuery(ctx, q, qo)
	if err != nil {
		return nil, err
	}
	m := db.resolveMethod(qo.method, k, b)
	ps, err := db.pools[m].get(b)
	if err != nil {
		return nil, err
	}
	ps.arm(ctx)
	start := time.Now()
	// The query runs allocation-free into the session's scratch buffer;
	// the one allocation is the exact-size copy handed to the caller.
	ps.buf = ps.sess.KNNAppend(q, k, ps.buf[:0])
	elapsed := time.Since(start)
	ps.disarm()
	res := make([]Result, len(ps.buf))
	copy(res, ps.buf)
	db.pools[m].put(ps)
	if err := ctx.Err(); err != nil {
		// The scan may have been cut short; the partial answer is not
		// returned.
		return nil, err
	}
	db.recordKNN(m, k, b, elapsed)
	return res, nil
}

// KNNAppend answers the same query as KNN but appends the results to dst
// and returns the extended slice — the zero-allocation form of the public
// API: a caller reusing its buffer across queries (one buffer per
// goroutine, like any append target) pays no per-query heap allocation on
// a warm DB, because the pooled session's search state is reused and
// result storage is caller-owned. Identical validation, method resolution,
// cancellation, and Stats/planner recording; on error, dst is returned
// unextended.
func (db *DB) KNNAppend(ctx context.Context, q int32, k int, dst []Result, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if k <= 0 {
		return dst, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if err := db.checkKNNMethod(qo.method); err != nil {
		return dst, err
	}
	b, err := db.checkQuery(ctx, q, qo)
	if err != nil {
		return dst, err
	}
	m := db.resolveMethod(qo.method, k, b)
	ps, err := db.pools[m].get(b)
	if err != nil {
		return dst, err
	}
	ps.arm(ctx)
	start := time.Now()
	mark := len(dst)
	dst = ps.sess.KNNAppend(q, k, dst)
	elapsed := time.Since(start)
	ps.disarm()
	db.pools[m].put(ps)
	if err := ctx.Err(); err != nil {
		// Drop the partial answer, as KNN does.
		return dst[:mark], err
	}
	db.recordKNN(m, k, b, elapsed)
	return dst, nil
}

// recordKNN lands a completed kNN query in the per-method counters and
// feeds the planner's latency EWMA for the query's regime — every query
// trains MethodAuto, not just the auto-planned ones.
func (db *DB) recordKNN(m Method, k int, b *core.Binding, elapsed time.Duration) {
	db.stats.recordKNN(m, elapsed)
	db.plan.Observe(m.kind(), db.features(k, b), elapsed)
}

// Range returns every object of the query's category within network
// distance radius of vertex q, in nondecreasing distance order. Range
// queries always run incremental network expansion (the one method with a
// native range form); passing WithMethod with any other concrete method
// reports ErrRangeMethod (an unknown one, ErrUnknownMethod), while
// MethodAuto resolves to INE. Safe for unbounded concurrent callers, with
// the same context semantics as KNN.
func (db *DB) Range(ctx context.Context, q int32, radius Dist, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if radius < 0 {
		return nil, fmt.Errorf("%w: radius=%d", ErrBadRadius, radius)
	}
	if err := db.checkRangeMethod(qo); err != nil {
		return nil, err
	}
	b, err := db.checkQuery(ctx, q, qo)
	if err != nil {
		return nil, err
	}
	ps, err := db.pools[INE].get(b)
	if err != nil {
		return nil, err
	}
	rm := ps.sess.(knn.RangeMethod)
	ps.arm(ctx)
	start := time.Now()
	ps.buf = rm.RangeAppend(q, radius, ps.buf[:0])
	elapsed := time.Since(start)
	ps.disarm()
	res := make([]Result, len(ps.buf))
	copy(res, ps.buf)
	db.pools[INE].put(ps)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.stats.recordRange(elapsed)
	return res, nil
}

// RangeAppend answers the same query as Range but appends the results to
// dst and returns the extended slice — the zero-allocation form, mirroring
// KNNAppend. On error, dst is returned unextended.
func (db *DB) RangeAppend(ctx context.Context, q int32, radius Dist, dst []Result, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if radius < 0 {
		return dst, fmt.Errorf("%w: radius=%d", ErrBadRadius, radius)
	}
	if err := db.checkRangeMethod(qo); err != nil {
		return dst, err
	}
	b, err := db.checkQuery(ctx, q, qo)
	if err != nil {
		return dst, err
	}
	ps, err := db.pools[INE].get(b)
	if err != nil {
		return dst, err
	}
	rm := ps.sess.(knn.RangeMethod)
	ps.arm(ctx)
	start := time.Now()
	mark := len(dst)
	dst = rm.RangeAppend(q, radius, dst)
	elapsed := time.Since(start)
	ps.disarm()
	db.pools[INE].put(ps)
	if err := ctx.Err(); err != nil {
		return dst[:mark], err
	}
	db.stats.recordRange(elapsed)
	return dst, nil
}

// checkRangeMethod validates the method option of a range-style query:
// range queries run only on INE (the one method with a native range form).
// MethodAuto is accepted and resolves to INE; an unknown method value is
// ErrUnknownMethod, a known non-INE method is ErrRangeMethod.
func (db *DB) checkRangeMethod(qo queryOpts) error {
	if !qo.methodSet || qo.method == INE || qo.method == MethodAuto {
		return nil
	}
	if !qo.method.valid() {
		return fmt.Errorf("%w: %d", ErrUnknownMethod, int(qo.method))
	}
	return fmt.Errorf("%w: got %s", ErrRangeMethod, qo.method)
}

// BruteForceKNN answers the query by a plain Dijkstra expansion over the
// category's live object set — the correctness reference every method is
// validated against. A WithMethod option is validated (unknown or
// disabled methods are typed errors, not silently ignored) but the
// expansion always runs the reference scan; not recorded in Stats.
func (db *DB) BruteForceKNN(q int32, k int, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	if err := db.checkKNNMethod(qo.method); err != nil {
		return nil, err
	}
	b, err := db.checkQuery(context.Background(), q, qo)
	if err != nil {
		return nil, err
	}
	return knn.BruteForce(db.g, b.Objs, q, k), nil
}

// BruteForceRange is the range-query correctness reference, mirroring
// BruteForceKNN.
func (db *DB) BruteForceRange(q int32, radius Dist, opts ...QueryOption) ([]Result, error) {
	qo := db.applyOpts(opts)
	if radius < 0 {
		return nil, fmt.Errorf("%w: radius=%d", ErrBadRadius, radius)
	}
	if err := db.checkRangeMethod(qo); err != nil {
		return nil, err
	}
	b, err := db.checkQuery(context.Background(), q, qo)
	if err != nil {
		return nil, err
	}
	return knn.BruteForceRange(db.g, b.Objs, q, radius), nil
}

// SameResults reports whether two result lists agree, tolerating reordering
// among tied distances (and any choice of ties at the k-th distance).
func SameResults(a, b []Result) bool { return knn.SameResults(a, b) }

// FormatResults renders results compactly ("[vertex:dist ...]") for logs.
func FormatResults(rs []Result) string { return knn.FormatResults(rs) }
