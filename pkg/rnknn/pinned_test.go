package rnknn

import (
	"context"
	"testing"

	"rnknn/internal/gen"
)

// TestKNNPinned proves the epoch stamp is read from the binding the search
// ran on: quiescent queries report the live epoch and KNN-identical
// results, and the stamp tracks every set-changing mutation.
func TestKNNPinned(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "pin", Rows: 12, Cols: 14, Seed: 9})
	objs := gen.Uniform(g, 0.05, 7)
	db, err := Open(g, WithMethods(INE, Gtree), WithObjects(DefaultCategory, objs))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := int32(g.NumVertices() / 3)

	prev := uint64(0)
	for step := 0; step < 4; step++ {
		want, err := db.KNN(ctx, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, epoch, err := db.KNNPinned(ctx, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !SameResults(got, want) {
			t.Fatalf("step %d: KNNPinned %v != KNN %v", step, FormatResults(got), FormatResults(want))
		}
		live, err := db.Epoch(DefaultCategory)
		if err != nil {
			t.Fatal(err)
		}
		if epoch != live {
			t.Fatalf("step %d: pinned epoch %d, live epoch %d", step, epoch, live)
		}
		if step > 0 && live <= prev {
			t.Fatalf("step %d: live epoch %d did not advance past %d", step, live, prev)
		}
		prev = live
		// A set-changing mutation must advance the next stamp: inserting an
		// absent vertex (or removing then re-inserting a present one) bumps
		// the epoch at least once.
		v := int32((step*37 + 1) % g.NumVertices())
		if err := db.RemoveObjects(DefaultCategory, []int32{v}); err != nil {
			t.Fatal(err)
		}
		if err := db.InsertObjects(DefaultCategory, []int32{v}); err != nil {
			t.Fatal(err)
		}
	}

	// Validation errors mirror KNN.
	if _, _, err := db.KNNPinned(ctx, q, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := db.KNNPinned(ctx, -1, 5); err == nil {
		t.Fatal("bad vertex accepted")
	}
	if _, _, err := db.KNNPinned(ctx, q, 5, WithCategory("nope")); err == nil {
		t.Fatal("unknown category accepted")
	}
}
