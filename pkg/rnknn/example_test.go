package rnknn_test

import (
	"context"
	"fmt"
	"os"

	"rnknn/pkg/rnknn"
)

// exampleGraph builds a tiny 2x3 grid road network through the public
// GraphBuilder: vertex v sits at column v%3, row v/3, cells 1000 units
// apart, every edge 1000 long in both weight metrics.
//
//	0 - 1 - 2
//	|   |   |
//	3 - 4 - 5
func exampleGraph() *rnknn.Graph {
	x := []float64{0, 1000, 2000, 0, 1000, 2000}
	y := []float64{0, 0, 0, 1000, 1000, 1000}
	b := rnknn.NewGraphBuilder(6, x, y)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {0, 3}, {1, 4}, {2, 5}} {
		b.AddEdge(e[0], e[1], 1000, 1000)
	}
	return b.Build("example")
}

// ExampleOpen mirrors the README quickstart: open a DB, register an object
// category, and answer a kNN query.
func ExampleOpen() {
	g := exampleGraph()
	db, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree, rnknn.INE))
	if err != nil {
		panic(err)
	}
	if err := db.RegisterObjects(rnknn.DefaultCategory, []int32{2, 3}); err != nil {
		panic(err)
	}
	results, err := db.KNN(context.Background(), 0, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(rnknn.FormatResults(results))
	// Output: [3:1000 2:2000]
}

// ExampleDB_KNN queries a named object category with an explicitly chosen
// method and a range query alongside.
func ExampleDB_KNN() {
	g := exampleGraph()
	db, err := rnknn.Open(g,
		rnknn.WithMethods(rnknn.INE, rnknn.IERDijk),
		rnknn.WithObjects("cafes", []int32{2, 4}))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	nearest, err := db.KNN(ctx, 3, 1, rnknn.WithMethod(rnknn.IERDijk), rnknn.WithCategory("cafes"))
	if err != nil {
		panic(err)
	}
	within, err := db.Range(ctx, 3, 2000, rnknn.WithCategory("cafes"))
	if err != nil {
		panic(err)
	}
	fmt.Println("nearest:", rnknn.FormatResults(nearest))
	fmt.Println("within 2000:", rnknn.FormatResults(within))
	// Output:
	// nearest: [4:1000]
	// within 2000: [4:1000]
}

// ExampleWithIndexCache shows the save-after-build / load-before-build
// lifecycle: the first Open pays construction and writes the snapshot, the
// second loads it — observable via Stats.
func ExampleWithIndexCache() {
	dir, err := os.MkdirTemp("", "rnknn-cache")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	g := exampleGraph()
	open := func() *rnknn.DB {
		db, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree), rnknn.WithIndexCache(dir))
		if err != nil {
			panic(err)
		}
		return db
	}
	cold := open() // builds the G-tree, saves <name>-<fingerprint>.rnks
	warm := open() // loads it instead of building
	fmt.Println("cold open loaded from snapshot:", cold.Stats().Indexes["Gtree"].Loaded)
	fmt.Println("warm open loaded from snapshot:", warm.Stats().Indexes["Gtree"].Loaded)
	// Output:
	// cold open loaded from snapshot: false
	// warm open loaded from snapshot: true
}

// ExampleDB_KNNSeq streams neighbors as the expansion confirms them: the
// loop sees the first result before the search finishes, and breaking out
// abandons the rest of the scan.
func ExampleDB_KNNSeq() {
	g := exampleGraph()
	db, err := rnknn.Open(g,
		rnknn.WithMethods(rnknn.INE),
		rnknn.WithObjects(rnknn.DefaultCategory, []int32{2, 3}))
	if err != nil {
		panic(err)
	}
	for r, err := range db.KNNSeq(context.Background(), 0, 2) {
		if err != nil {
			panic(err)
		}
		fmt.Printf("vertex %d at distance %d\n", r.Vertex, r.Dist)
	}
	// Output:
	// vertex 3 at distance 1000
	// vertex 2 at distance 2000
}

// ExampleDB_InsertObjects churns an object category the incremental way: a
// taxi goes off shift and another comes on, each change deriving the next
// epoch from the last in O(delta) instead of rebuilding the object indexes,
// with the epoch counter recording how many changes the category absorbed.
func ExampleDB_InsertObjects() {
	g := exampleGraph()
	db, err := rnknn.Open(g,
		rnknn.WithMethods(rnknn.Gtree, rnknn.INE),
		rnknn.WithObjects("taxis", []int32{2, 3}))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	// Taxi at vertex 3 goes off shift; a new one appears at vertex 5.
	if err := db.RemoveObjects("taxis", []int32{3}); err != nil {
		panic(err)
	}
	if err := db.InsertObjects("taxis", []int32{5}); err != nil {
		panic(err)
	}

	nearest, err := db.KNN(ctx, 0, 2, rnknn.WithCategory("taxis"))
	if err != nil {
		panic(err)
	}
	epoch, _ := db.Epoch("taxis")
	fmt.Println("nearest:", rnknn.FormatResults(nearest))
	fmt.Println("epoch:", epoch)
	// Output:
	// nearest: [2:2000 5:3000]
	// epoch: 2
}

// ExampleDB_Monitor follows a moving query along a route: Monitor streams
// result-set deltas (enter/exit/distance-change events) instead of full
// answers, and each step is either proven still-exact by the cheap
// safe-region check (refresh "none") or re-anchored by one fresh search
// (refresh "initial"/"drift"/"epoch"/"jump").
func ExampleDB_Monitor() {
	g := exampleGraph()
	db, err := rnknn.Open(g,
		rnknn.WithMethods(rnknn.INE),
		rnknn.WithObjects(rnknn.DefaultCategory, []int32{2, 3}))
	if err != nil {
		panic(err)
	}
	for u, err := range db.Monitor(context.Background(), []int32{0, 1, 2}, 1) {
		if err != nil {
			panic(err)
		}
		fmt.Printf("step %d at vertex %d (refresh %s):", u.Step, u.Vertex, u.Refresh)
		for _, e := range u.Events {
			switch e.Kind {
			case rnknn.MonitorEnter:
				fmt.Printf(" +%d:%d", e.Object, e.Dist)
			case rnknn.MonitorExit:
				fmt.Printf(" -%d", e.Object)
			case rnknn.MonitorDistChange:
				fmt.Printf(" ~%d:%d", e.Object, e.Dist)
			}
		}
		fmt.Println()
	}
	// Output:
	// step 0 at vertex 0 (refresh initial): +3:1000
	// step 1 at vertex 1 (refresh drift): -3 +2:1000
	// step 2 at vertex 2 (refresh drift): ~2:0
}

// ExampleDB_Batch runs several queries as one unit of work: sessions are
// checked out once per worker, results come back in Add order, and
// MethodAuto lets the planner pick the method per query.
func ExampleDB_Batch() {
	g := exampleGraph()
	db, err := rnknn.Open(g,
		rnknn.WithMethods(rnknn.INE, rnknn.Gtree),
		rnknn.WithObjects(rnknn.DefaultCategory, []int32{2, 3}))
	if err != nil {
		panic(err)
	}
	results, err := db.Batch().
		AddKNN(0, 1).
		AddKNN(5, 1, rnknn.WithMethod(rnknn.MethodAuto)).
		AddRange(4, 1000).
		Run(context.Background())
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		if r.Err != nil {
			panic(r.Err)
		}
		fmt.Printf("q=%d: %s\n", r.Query, rnknn.FormatResults(r.Results))
	}
	// Output:
	// q=0: [3:1000]
	// q=5: [2:1000]
	// q=4: [3:1000]
}
