package rnknn_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"rnknn/internal/gen"
	"rnknn/pkg/rnknn"
)

// TestOpenFromSnapshotIdenticalAnswers is the public-API round-trip
// guarantee: a DB opened from a snapshot returns results identical to the DB
// that built its indexes live, for every method.
func TestOpenFromSnapshotIdenticalAnswers(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "dbsnap", Rows: 10, Cols: 12, Seed: 21})
	objs := gen.Uniform(g, 0.03, 13)
	methods := rnknn.Methods()

	built, err := rnknn.Open(g,
		rnknn.WithMethods(methods...),
		rnknn.WithObjects(rnknn.DefaultCategory, objs))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.SaveIndexes(&buf); err != nil {
		t.Fatal(err)
	}

	loaded, err := rnknn.OpenFromSnapshot(g, bytes.NewReader(buf.Bytes()),
		rnknn.WithMethods(methods...),
		rnknn.WithObjects(rnknn.DefaultCategory, objs))
	if err != nil {
		t.Fatal(err)
	}
	for name, ix := range loaded.Stats().Indexes {
		if !ix.Loaded {
			t.Fatalf("index %s rebuilt instead of loaded", name)
		}
	}

	ctx := context.Background()
	for _, m := range methods {
		for _, q := range []int32{0, int32(g.NumVertices() / 2), int32(g.NumVertices() - 1)} {
			want, err := built.KNN(ctx, q, 7, rnknn.WithMethod(m))
			if err != nil {
				t.Fatalf("%v built: %v", m, err)
			}
			got, err := loaded.KNN(ctx, q, 7, rnknn.WithMethod(m))
			if err != nil {
				t.Fatalf("%v loaded: %v", m, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v q=%d: %d vs %d results", m, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v q=%d: result %d: got %+v want %+v", m, q, i, got[i], want[i])
				}
			}
		}
	}
}

// TestWithIndexCacheSkipsRebuild is the acceptance check for the transparent
// cache: the second Open of the same graph must load every index (asserted
// via Stats) and still answer queries identically.
func TestWithIndexCacheSkipsRebuild(t *testing.T) {
	dir := t.TempDir()
	g := gen.Network(gen.NetworkSpec{Name: "cache", Rows: 9, Cols: 9, Seed: 8})
	objs := gen.Uniform(g, 0.05, 3)
	open := func() *rnknn.DB {
		db, err := rnknn.Open(g,
			rnknn.WithMethods(rnknn.Gtree, rnknn.IERPHL, rnknn.ROAD),
			rnknn.WithObjects(rnknn.DefaultCategory, objs),
			rnknn.WithIndexCache(dir))
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	first := open()
	for name, ix := range first.Stats().Indexes {
		if ix.Loaded {
			t.Fatalf("cold open: index %s marked loaded", name)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir: %v entries, err %v", len(entries), err)
	}

	second := open()
	stats := second.Stats()
	for _, name := range []string{"Gtree", "CH", "PHL", "ROAD"} {
		ix, ok := stats.Indexes[name]
		if !ok {
			t.Fatalf("warm open: index %s missing", name)
		}
		if !ix.Loaded {
			t.Fatalf("warm open: index %s was rebuilt", name)
		}
	}

	ctx := context.Background()
	q := int32(g.NumVertices() / 3)
	want, err := first.KNN(ctx, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := second.KNN(ctx, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rnknn.SameResults(got, want) {
		t.Fatalf("cache answers differ: %s vs %s", rnknn.FormatResults(got), rnknn.FormatResults(want))
	}
}

// TestWithIndexCacheGrowsSuperset asserts a warm open that enables an extra
// method loads what it can, builds the rest, and refreshes the cache file to
// the superset.
func TestWithIndexCacheGrowsSuperset(t *testing.T) {
	dir := t.TempDir()
	g := gen.Network(gen.NetworkSpec{Name: "cache2", Rows: 8, Cols: 8, Seed: 9})
	if _, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree), rnknn.WithIndexCache(dir)); err != nil {
		t.Fatal(err)
	}
	db, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree, rnknn.ROAD), rnknn.WithIndexCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	stats := db.Stats()
	if !stats.Indexes["Gtree"].Loaded {
		t.Fatal("Gtree should load from the first run's cache")
	}
	if stats.Indexes["ROAD"].Loaded {
		t.Fatal("ROAD cannot be loaded on its first appearance")
	}
	db3, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree, rnknn.ROAD), rnknn.WithIndexCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Gtree", "ROAD"} {
		if !db3.Stats().Indexes[name].Loaded {
			t.Fatalf("third open: %s not loaded from refreshed cache", name)
		}
	}
}

// TestWithIndexCacheIgnoresCorruptFile asserts a damaged cache file falls
// back to building (and gets repaired) rather than failing Open.
func TestWithIndexCacheIgnoresCorruptFile(t *testing.T) {
	dir := t.TempDir()
	g := gen.Network(gen.NetworkSpec{Name: "cache3", Rows: 8, Cols: 8, Seed: 10})
	if _, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree), rnknn.WithIndexCache(dir)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir: %v, %v", entries, err)
	}
	path := filepath.Join(dir, entries[0].Name())
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree), rnknn.WithIndexCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	if db.Stats().Indexes["Gtree"].Loaded {
		t.Fatal("corrupt cache cannot yield a loaded index")
	}
	// The rebuild must have repaired the file.
	db2, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree), rnknn.WithIndexCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !db2.Stats().Indexes["Gtree"].Loaded {
		t.Fatal("repaired cache not loaded")
	}
}

// TestOpenFromSnapshotTypedErrors covers the public error contract:
// truncated bytes and mismatched graphs surface the sentinels.
func TestOpenFromSnapshotTypedErrors(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "errs", Rows: 8, Cols: 8, Seed: 11})
	db, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.SaveIndexes(&buf); err != nil {
		t.Fatal(err)
	}

	_, err = rnknn.OpenFromSnapshot(g, bytes.NewReader(buf.Bytes()[:buf.Len()/2]), rnknn.WithMethods(rnknn.Gtree))
	if !errors.Is(err, rnknn.ErrBadSnapshot) {
		t.Fatalf("truncated: want ErrBadSnapshot, got %v", err)
	}

	other := gen.Network(gen.NetworkSpec{Name: "errs", Rows: 8, Cols: 8, Seed: 12})
	_, err = rnknn.OpenFromSnapshot(other, bytes.NewReader(buf.Bytes()), rnknn.WithMethods(rnknn.Gtree))
	if !errors.Is(err, rnknn.ErrFingerprintMismatch) {
		t.Fatalf("mismatch: want ErrFingerprintMismatch, got %v", err)
	}
}

// TestSaveIndexesFileAtomic sanity-checks the file helper end to end.
func TestSaveIndexesFileAtomic(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "atomic", Rows: 8, Cols: 8, Seed: 14})
	db, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.rnks")
	if err := db.SaveIndexesFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db2, err := rnknn.OpenFromSnapshot(g, f, rnknn.WithMethods(rnknn.Gtree))
	if err != nil {
		t.Fatal(err)
	}
	if !db2.Stats().Indexes["Gtree"].Loaded {
		t.Fatal("file snapshot not loaded")
	}
	if leftovers, _ := filepath.Glob(filepath.Join(filepath.Dir(path), "*.tmp*")); len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}
