// Partition-sharded serving: one DB per partition cell behind a thin
// router. Every shard opens the same snapshot file — with mmap, N shards
// cost one page cache, not N heaps — and holds the full graph and indexes
// but only its cell's objects, so a query plans against exact full-graph
// distances everywhere and sharding changes where objects live, never what
// a distance means. The router fans a query to the owning shard first,
// prunes the rest with per-cell geometric lower bounds, and merges:
// materialized KNN by threshold (a shard whose bound exceeds the running
// k-th distance cannot contribute), streaming KNNSeq by an exact k-way
// loser-tree merge (internal/kmerge) over the per-shard nondecreasing
// streams. Exactness argument in ARCHITECTURE.md ("Continental scale").
package rnknn

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"iter"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rnknn/internal/graph"
	"rnknn/internal/kmerge"
	"rnknn/internal/partition"
)

// ShardManifestName is the file OpenSharded reads inside a shard set
// directory; ShardSnapshotName is the single snapshot every shard maps.
const (
	ShardManifestName = "manifest.json"
	ShardSnapshotName = "index.rnks"
)

// shardManifest describes a shard set on disk: which snapshot to open,
// which methods to enable, and how the partition's DFS leaf sequence is
// cut into cells. Cells are ranges over leaf positions (partition.Tree
// LeafSeq order), which makes ownership a binary search and keeps the
// manifest O(shards) regardless of graph size.
type shardManifest struct {
	Version     int         `json:"version"`
	Graph       string      `json:"graph"`
	Fingerprint string      `json:"fingerprint"`
	Snapshot    string      `json:"snapshot"`
	Methods     []string    `json:"methods"`
	Cells       []shardCell `json:"cells"`
}

type shardCell struct {
	// LeafLo and LeafHi bound the cell's leaves in DFS order: positions
	// [LeafLo, LeafHi).
	LeafLo int32 `json:"leafLo"`
	LeafHi int32 `json:"leafHi"`
}

// shardCells cuts the partition tree's DFS leaf sequence into shards
// contiguous cells balanced by vertex count: deterministic in the tree, so
// writer and opener derive identical cells from the same snapshot.
func shardCells(pt *partition.Tree, shards int) ([]shardCell, error) {
	leaves := pt.Leaves()
	if shards <= 0 {
		return nil, fmt.Errorf("rnknn: shard count %d must be positive", shards)
	}
	if shards > len(leaves) {
		return nil, fmt.Errorf("rnknn: %d shards exceed the partition's %d leaves", shards, len(leaves))
	}
	total := 0
	for _, li := range leaves {
		total += len(pt.Nodes[li].Vertices)
	}
	cells := make([]shardCell, 0, shards)
	lo, acc := 0, 0
	for pos, li := range leaves {
		acc += len(pt.Nodes[li].Vertices)
		remainingLeaves := len(leaves) - pos - 1
		remainingCells := shards - len(cells) - 1
		// Close the cell at the balanced-weight boundary, or when the
		// leaves left are only just enough to keep later cells non-empty.
		if (acc*shards >= total*(len(cells)+1) || remainingLeaves < remainingCells+1) && remainingCells >= 0 {
			cells = append(cells, shardCell{LeafLo: int32(lo), LeafHi: int32(pos + 1)})
			lo = pos + 1
			if len(cells) == shards {
				break
			}
		}
	}
	cells[len(cells)-1].LeafHi = int32(len(leaves))
	return cells, nil
}

// SaveShardSet writes dir/index.rnks (the DB's snapshot, graph included)
// and dir/manifest.json cutting the road network into shards cells, ready
// for OpenSharded. The cells come from the same partition tree the batch
// planner uses (the G-tree's when that index is built, a standalone
// geometric partition otherwise) — decoded back from the very snapshot
// being written, so OpenSharded reconstructs them bit-identically.
func (db *DB) SaveShardSet(dir string, shards int) error {
	cells, err := shardCells(db.batchPartition(), shards)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := db.SaveIndexesFile(filepath.Join(dir, ShardSnapshotName)); err != nil {
		return err
	}
	methods := make([]string, len(db.methods))
	for i, m := range db.methods {
		methods[i] = m.String()
	}
	man := shardManifest{
		Version:     1,
		Graph:       db.g.Name,
		Fingerprint: fmt.Sprintf("%016x", db.eng.Fingerprint()),
		Snapshot:    ShardSnapshotName,
		Methods:     methods,
		Cells:       cells,
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, ShardManifestName), func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	})
}

// ShardedDB serves one road network from multiple DBs, each owning the
// objects of one partition cell. All methods are safe for concurrent use.
type ShardedDB struct {
	shards []*DB
	cells  []shardCell
	pt     *partition.Tree
	g      *graph.Graph
	// boxes[i] is cell i's vertex bounding box; with invSpeed it turns
	// point-to-box Euclidean distance into a network-distance lower bound.
	boxes    []bbox
	invSpeed float64
}

type bbox struct {
	minX, minY, maxX, maxY float64
}

func (b *bbox) add(x, y float64) {
	b.minX = math.Min(b.minX, x)
	b.minY = math.Min(b.minY, y)
	b.maxX = math.Max(b.maxX, x)
	b.maxY = math.Max(b.maxY, y)
}

// dist returns the Euclidean distance from (x, y) to the box (zero
// inside).
func (b *bbox) dist(x, y float64) float64 {
	dx := math.Max(0, math.Max(b.minX-x, x-b.maxX))
	dy := math.Max(0, math.Max(b.minY-y, y-b.maxY))
	return math.Hypot(dx, dy)
}

// OpenSharded opens the shard set written by SaveShardSet (or cmd/
// buildindex -shards): one DB per manifest cell, every one a zero-copy
// mapped open of the same snapshot file, so the shards share a single
// physical copy of graph and indexes through the page cache. Methods come
// from the manifest; opts are applied to every shard after it (so
// WithMethods in opts overrides the manifest).
func OpenSharded(dir string, opts ...Option) (*ShardedDB, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ShardManifestName))
	if err != nil {
		return nil, err
	}
	var man shardManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("rnknn: shard manifest: %w", err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("rnknn: shard manifest version %d unsupported", man.Version)
	}
	if len(man.Cells) == 0 {
		return nil, fmt.Errorf("rnknn: shard manifest has no cells")
	}
	methods := make([]Method, 0, len(man.Methods))
	for _, name := range man.Methods {
		m, err := ParseMethod(name)
		if err != nil {
			return nil, fmt.Errorf("rnknn: shard manifest: %w", err)
		}
		methods = append(methods, m)
	}
	snapPath := filepath.Join(dir, man.Snapshot)
	allOpts := append([]Option{WithMethods(methods...)}, opts...)

	s := &ShardedDB{cells: man.Cells}
	for i := 0; i < len(man.Cells); i++ {
		db, err := OpenSnapshotFile(snapPath, allOpts...)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("rnknn: opening shard %d: %w", i, err)
		}
		s.shards = append(s.shards, db)
	}
	s.g = s.shards[0].g
	s.pt = s.shards[0].batchPartition()

	leaves := s.pt.Leaves()
	last := int32(0)
	for i, c := range man.Cells {
		if c.LeafLo != last || c.LeafHi <= c.LeafLo {
			s.Close()
			return nil, fmt.Errorf("rnknn: shard manifest cell %d [%d, %d) is not contiguous", i, c.LeafLo, c.LeafHi)
		}
		last = c.LeafHi
	}
	if int(last) != len(leaves) {
		s.Close()
		return nil, fmt.Errorf("rnknn: shard manifest covers %d leaves, partition has %d", last, len(leaves))
	}

	s.boxes = make([]bbox, len(man.Cells))
	for i, c := range man.Cells {
		b := bbox{minX: math.Inf(1), minY: math.Inf(1), maxX: math.Inf(-1), maxY: math.Inf(-1)}
		for _, li := range leaves[c.LeafLo:c.LeafHi] {
			for _, v := range s.pt.Nodes[li].Vertices {
				b.add(s.g.X[v], s.g.Y[v])
			}
		}
		s.boxes[i] = b
	}
	s.invSpeed = 1 / s.g.MaxSpeed()
	return s, nil
}

// Close closes every shard (releasing the snapshot mappings). Call only
// after all queries have completed.
func (s *ShardedDB) Close() error {
	var first error
	for _, db := range s.shards {
		if db == nil {
			continue
		}
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Graph returns the shared road network.
func (s *ShardedDB) Graph() *Graph { return s.g }

// NumShards returns the number of shards.
func (s *ShardedDB) NumShards() int { return len(s.shards) }

// Shard returns shard i's DB — useful for per-shard stats or serving
// stacks; routing object mutations through it directly breaks the
// ownership invariant, use the ShardedDB methods.
func (s *ShardedDB) Shard(i int) *DB { return s.shards[i] }

// OwnerShard returns the shard whose cell contains vertex v.
func (s *ShardedDB) OwnerShard(v int32) int {
	pos := s.pt.LeafSeq[v]
	return sort.Search(len(s.cells), func(i int) bool { return s.cells[i].LeafHi > pos })
}

// ShardBound returns a lower bound on the network distance from vertex q
// to any vertex in shard i's cell: the Euclidean distance from q to the
// cell's bounding box, scaled by the graph's maximum speed (valid for
// both weight views — see graph.MaxSpeed). Zero for q's own shard.
func (s *ShardedDB) ShardBound(i int, q int32) Dist {
	d := s.boxes[i].dist(s.g.X[q], s.g.Y[q])
	return Dist(math.Floor(d * s.invSpeed))
}

// splitByOwner partitions vertices into per-shard subsets (every shard
// present, possibly empty — registering empty subsets keeps categories
// defined on every shard, so queries on a shard with no such objects get
// an empty stream rather than ErrUnknownCategory).
func (s *ShardedDB) splitByOwner(vertices []int32) ([][]int32, error) {
	n := int32(s.g.NumVertices())
	out := make([][]int32, len(s.shards))
	for _, v := range vertices {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("%w: object vertex %d (network has %d vertices)", ErrBadVertex, v, n)
		}
		o := s.OwnerShard(v)
		out[o] = append(out[o], v)
	}
	return out, nil
}

// RegisterObjects replaces the named category across all shards, each
// receiving the objects its cell owns.
func (s *ShardedDB) RegisterObjects(name string, vertices []int32) error {
	parts, err := s.splitByOwner(vertices)
	if err != nil {
		return err
	}
	return s.eachShard(func(i int, db *DB) error { return db.RegisterObjects(name, parts[i]) })
}

// InsertObjects adds objects to the named category on their owning shards
// (creating the category everywhere on first use, like DB.InsertObjects).
func (s *ShardedDB) InsertObjects(name string, vertices []int32) error {
	parts, err := s.splitByOwner(vertices)
	if err != nil {
		return err
	}
	return s.eachShard(func(i int, db *DB) error { return db.InsertObjects(name, parts[i]) })
}

// RemoveObjects removes objects from the named category on their owning
// shards; vertices not present are ignored, like DB.RemoveObjects.
func (s *ShardedDB) RemoveObjects(name string, vertices []int32) error {
	parts, err := s.splitByOwner(vertices)
	if err != nil {
		return err
	}
	return s.eachShard(func(i int, db *DB) error { return db.RemoveObjects(name, parts[i]) })
}

// eachShard runs f on every shard concurrently and returns the first
// error.
func (s *ShardedDB) eachShard(f func(i int, db *DB) error) error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, db := range s.shards {
		wg.Add(1)
		go func(i int, db *DB) {
			defer wg.Done()
			errs[i] = f(i, db)
		}(i, db)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Categories returns the registered category names (shard 0's view — the
// routed mutations keep every shard's category set identical).
func (s *ShardedDB) Categories() []string { return s.shards[0].Categories() }

// NumObjects sums the named category's objects across shards.
func (s *ShardedDB) NumObjects(name string) (int, error) {
	total := 0
	for _, db := range s.shards {
		n, err := db.NumObjects(name)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Epoch returns a composite epoch for the named category: FNV-64a over
// the per-shard epochs. It identifies a cross-shard snapshot for cache
// invalidation hints and stats; unlike a single DB's epoch it is not a
// counter. Per-shard serving stacks key their caches on their own shard's
// exact epoch.
func (s *ShardedDB) Epoch(name string) (uint64, error) {
	h := fnv.New64a()
	var buf [8]byte
	for _, db := range s.shards {
		e, err := db.Epoch(name)
		if err != nil {
			return 0, err
		}
		for i := range buf {
			buf[i] = byte(e >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64(), nil
}

// checkShardQuery validates the query vertex against the shared graph.
func (s *ShardedDB) checkShardQuery(q int32) error {
	if q < 0 || int(q) >= s.g.NumVertices() {
		return fmt.Errorf("%w: query vertex %d (network has %d vertices)", ErrBadVertex, q, s.g.NumVertices())
	}
	return nil
}

// KNN answers a k-nearest-neighbors query over the union of all shards'
// objects, exactly: the owning shard answers first, its k-th distance
// becomes the pruning threshold, and only shards whose geometric lower
// bound does not exceed it are queried (in parallel) before the k-way
// merge. Results are sorted by (distance, vertex).
func (s *ShardedDB) KNN(ctx context.Context, q int32, k int, opts ...QueryOption) ([]Result, error) {
	return s.FanKNN(ctx, q, k, func(shard int) ([]Result, error) {
		return s.shards[shard].KNN(ctx, q, k, opts...)
	})
}

// FanKNN is KNN's routing skeleton with the per-shard query pluggable:
// serving stacks pass a closure that consults their per-shard caches,
// the library path queries the shard DB directly. query is called for the
// owning shard first and then concurrently for every shard whose bound
// passes the threshold prune; each call must return that shard's exact
// top-k (or fewer if it has fewer objects) sorted by distance.
func (s *ShardedDB) FanKNN(ctx context.Context, q int32, k int, query func(shard int) ([]Result, error)) ([]Result, error) {
	if err := s.checkShardQuery(q); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadK, k)
	}
	owner := s.OwnerShard(q)
	first, err := query(owner)
	if err != nil {
		return nil, err
	}
	// threshold: no shard whose every object is farther than this can
	// change the answer. With fewer than k local results every shard must
	// be consulted.
	threshold := graph.Inf
	if len(first) >= k {
		threshold = first[k-1].Dist
	}
	type res struct {
		rs  []Result
		err error
	}
	results := make([]res, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		if i == owner || s.ShardBound(i, q) > threshold {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := query(i)
			results[i] = res{rs, err}
		}(i)
	}
	wg.Wait()
	merged := append([]Result(nil), first...)
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		merged = append(merged, results[i].rs...)
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Dist != merged[b].Dist {
			return merged[a].Dist < merged[b].Dist
		}
		return merged[a].Vertex < merged[b].Vertex
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, nil
}

// Range returns every object within radius of q across all shards,
// querying only shards whose lower bound does not exceed the radius.
// Results are sorted by (distance, vertex).
func (s *ShardedDB) Range(ctx context.Context, q int32, radius Dist, opts ...QueryOption) ([]Result, error) {
	return s.FanRange(ctx, q, radius, func(shard int) ([]Result, error) {
		return s.shards[shard].Range(ctx, q, radius, opts...)
	})
}

// FanRange is Range's routing skeleton with the per-shard query pluggable
// (see FanKNN).
func (s *ShardedDB) FanRange(ctx context.Context, q int32, radius Dist, query func(shard int) ([]Result, error)) ([]Result, error) {
	if err := s.checkShardQuery(q); err != nil {
		return nil, err
	}
	if radius < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadRadius, radius)
	}
	type res struct {
		rs  []Result
		err error
	}
	results := make([]res, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		if s.ShardBound(i, q) > radius {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := query(i)
			results[i] = res{rs, err}
		}(i)
	}
	wg.Wait()
	var merged []Result
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		merged = append(merged, results[i].rs...)
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Dist != merged[b].Dist {
			return merged[a].Dist < merged[b].Dist
		}
		return merged[a].Vertex < merged[b].Vertex
	})
	return merged, nil
}

// shardStream adapts one shard's KNNSeq to a kmerge.Source: the stream is
// opened lazily on first Next, so shards whose bound never wins the
// tournament never run a search at all.
type shardStream struct {
	open  func() (func() (Result, error, bool), func())
	bound Dist
	next  func() (Result, error, bool)
	stop  func()
	err   error
}

func (ss *shardStream) Bound() int64 { return int64(ss.bound) }

func (ss *shardStream) Next() (kmerge.Item, bool, error) {
	if ss.next == nil {
		ss.next, ss.stop = ss.open()
	}
	r, err, ok := ss.next()
	if !ok {
		return kmerge.Item{}, false, nil
	}
	if err != nil {
		return kmerge.Item{}, false, err
	}
	return kmerge.Item{V: r.Vertex, D: int64(r.Dist)}, true, nil
}

// KNNSeq streams the global k nearest neighbors in nondecreasing
// (distance, vertex) order by merging the per-shard KNNSeq streams with a
// loser tree keyed on each shard's lower bound: a shard's stream is opened
// only when its bound becomes the merge frontier, and the merge is exact
// because each per-shard stream yields exact full-graph distances in
// nondecreasing order (see ARCHITECTURE.md for the argument). Breaking
// early abandons the remaining per-shard searches.
func (s *ShardedDB) KNNSeq(ctx context.Context, q int32, k int, opts ...QueryOption) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		if err := s.checkShardQuery(q); err != nil {
			yield(Result{}, err)
			return
		}
		if k <= 0 {
			yield(Result{}, fmt.Errorf("%w: %d", ErrBadK, k))
			return
		}
		streams := make([]*shardStream, len(s.shards))
		sources := make([]kmerge.Source, len(s.shards))
		for i := range s.shards {
			db := s.shards[i]
			streams[i] = &shardStream{
				bound: s.ShardBound(i, q),
				open: func() (func() (Result, error, bool), func()) {
					return iter.Pull2(db.KNNSeq(ctx, q, k, opts...))
				},
			}
			sources[i] = streams[i]
		}
		defer func() {
			for _, ss := range streams {
				if ss.stop != nil {
					ss.stop()
				}
			}
		}()
		yielded := 0
		err := kmerge.Merge(sources, func(it kmerge.Item) bool {
			if !yield(Result{Vertex: it.V, Dist: Dist(it.D)}, nil) {
				return false
			}
			yielded++
			return yielded < k
		})
		if err != nil {
			yield(Result{}, err)
		}
	}
}
