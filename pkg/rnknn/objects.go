package rnknn

import (
	"fmt"
	"sync/atomic"

	"rnknn/internal/core"
	"rnknn/internal/knn"
)

// category is one named object set; binding holds the live immutable
// snapshot (object set plus the derived per-method object indexes) and is
// swapped atomically by RegisterObjects.
type category struct {
	binding atomic.Pointer[core.Binding]
}

// RegisterObjects installs (or atomically replaces) the named object
// category. Duplicated vertices are dropped. The category's derived object
// indexes — R-tree, occurrence list, association directory, whichever the
// enabled methods need — are built here, once per registration, and shared
// read-only by all query sessions.
//
// Replacement is safe while queries are in flight: each query snapshots the
// category's binding once at its start, so an in-flight query answers
// consistently over whichever set was live when it began, and queries
// started after RegisterObjects returns see the new set.
func (db *DB) RegisterObjects(name string, vertices []int32) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrBadCategory)
	}
	n := int32(db.g.NumVertices())
	for _, v := range vertices {
		if v < 0 || v >= n {
			return fmt.Errorf("%w: object vertex %d (network has %d vertices)", ErrBadVertex, v, n)
		}
	}
	objs := knn.NewObjectSet(db.g, vertices)
	// Building the derived indexes happens outside any lock; only the final
	// pointer swap (and, for a new name, the map insert) synchronizes.
	b := db.eng.NewBinding(objs, db.bindKinds)

	db.mu.RLock()
	cat := db.cats[name]
	db.mu.RUnlock()
	if cat == nil {
		// A fresh category must carry its binding before it becomes visible
		// in the map: a concurrent query that finds the name must never load
		// a nil binding.
		fresh := &category{}
		fresh.binding.Store(b)
		db.mu.Lock()
		if cat = db.cats[name]; cat == nil {
			db.cats[name] = fresh
			db.mu.Unlock()
			return nil
		}
		db.mu.Unlock()
	}
	cat.binding.Store(b)
	return nil
}

// snapshot resolves a category name to its live binding.
func (db *DB) snapshot(name string) (*core.Binding, error) {
	db.mu.RLock()
	cat := db.cats[name]
	db.mu.RUnlock()
	if cat == nil {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownCategory, name, db.Categories())
	}
	return cat.binding.Load(), nil
}

// NumObjects returns the number of objects currently live in the named
// category.
func (db *DB) NumObjects(name string) (int, error) {
	b, err := db.snapshot(name)
	if err != nil {
		return 0, err
	}
	return b.Objs.Len(), nil
}
