package rnknn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rnknn/internal/core"
	"rnknn/internal/knn"
	"rnknn/internal/planner"
)

// category is one named object set: a chain of immutable epochs, of which
// binding holds the live one (the object set plus the derived per-method
// object indexes). Queries pin an epoch by loading the pointer once; writers
// serialize on mu, derive the next epoch from the live one, and publish it
// with a single store.
type category struct {
	// mu serializes mutations (RegisterObjects, InsertObjects,
	// RemoveObjects) so each next epoch derives from the latest one and
	// epoch numbers advance monotonically. Readers never take it.
	mu      sync.Mutex
	binding atomic.Pointer[core.Binding]
}

// RegisterObjects installs (or atomically replaces) the named object
// category — the bulk path: the category's derived object indexes (R-tree,
// occurrence list, association directory, whichever the enabled methods
// need) are built from scratch over the full set. For a handful of changes
// to an existing category, InsertObjects and RemoveObjects update those
// same indexes incrementally instead. Duplicated vertices are dropped.
//
// Replacement is safe while queries are in flight: each query pins the
// category's epoch once at its start, so an in-flight query answers
// consistently over whichever set was live when it began, and queries
// started after RegisterObjects returns see the new set.
func (db *DB) RegisterObjects(name string, vertices []int32) error {
	if err := db.checkObjects(name, vertices); err != nil {
		return err
	}
	objs := knn.NewObjectSet(db.g, vertices)
	cat := db.category(name)
	cat.mu.Lock()
	defer cat.mu.Unlock()
	// Building the derived indexes happens outside any query's path; only
	// the final pointer swap synchronizes with readers.
	b := db.eng.NewBinding(objs, db.bindKinds)
	if cur := cat.binding.Load(); cur != nil {
		b.Epoch = cur.Epoch + 1
		db.noteDensityShift(cur, b)
	}
	cat.binding.Store(b)
	return nil
}

// InsertObjects adds vertices to the named category without rebuilding its
// derived object indexes: the next epoch is derived from the live one in
// O(delta) per enabled method (R-tree insert, occurrence-list and
// association-directory Add, a copy-on-write membership update for the
// expansion methods). A category that does not exist yet is created, so
// InsertObjects into a fresh name is equivalent to RegisterObjects.
// Vertices already present are ignored.
//
// Mutations on one category serialize with each other; queries never block
// and never observe a half-applied delta — a query either runs entirely on
// the epoch before this call or entirely on an epoch including it.
func (db *DB) InsertObjects(name string, vertices []int32) error {
	if err := db.checkObjects(name, vertices); err != nil {
		return err
	}
	cat := db.category(name)
	cat.mu.Lock()
	defer cat.mu.Unlock()
	cur := cat.binding.Load()
	if cur == nil {
		b := db.eng.NewBinding(knn.NewObjectSet(db.g, vertices), db.bindKinds)
		cat.binding.Store(b)
		return nil
	}
	b := db.eng.NextBinding(cur, vertices, nil)
	if b != cur {
		db.noteDensityShift(cur, b)
		cat.binding.Store(b)
	}
	return nil
}

// RemoveObjects deletes vertices from the named category, deriving the next
// epoch incrementally exactly like InsertObjects (the R-tree uses a lazy
// delete with a degradation-triggered repack). Vertices not in the set are
// ignored; an unknown category is ErrUnknownCategory. Removing every object
// leaves an empty category: queries on it return no results.
func (db *DB) RemoveObjects(name string, vertices []int32) error {
	if err := db.checkObjects(name, vertices); err != nil {
		return err
	}
	db.mu.RLock()
	cat := db.cats[name]
	db.mu.RUnlock()
	if cat == nil {
		return fmt.Errorf("%w: %q (registered: %v)", ErrUnknownCategory, name, db.Categories())
	}
	cat.mu.Lock()
	defer cat.mu.Unlock()
	cur := cat.binding.Load()
	if cur == nil {
		// The category is mid-creation by a concurrent first mutation that
		// has not published its first epoch yet; to this caller it does not
		// exist.
		return fmt.Errorf("%w: %q (registered: %v)", ErrUnknownCategory, name, db.Categories())
	}
	b := db.eng.NextBinding(cur, nil, vertices)
	if b != cur {
		db.noteDensityShift(cur, b)
		cat.binding.Store(b)
	}
	return nil
}

// checkObjects validates the shared mutation inputs.
func (db *DB) checkObjects(name string, vertices []int32) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrBadCategory)
	}
	n := int32(db.g.NumVertices())
	for _, v := range vertices {
		if v < 0 || v >= n {
			return fmt.Errorf("%w: object vertex %d (network has %d vertices)", ErrBadVertex, v, n)
		}
	}
	return nil
}

// category returns the named category, creating an empty one (no binding
// yet) if needed. A category only becomes visible to queries once its first
// binding is stored, but creation must happen under db.mu so two concurrent
// writers agree on one category (and one mutation lock) per name.
func (db *DB) category(name string) *category {
	db.mu.RLock()
	cat := db.cats[name]
	db.mu.RUnlock()
	if cat != nil {
		return cat
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if cat = db.cats[name]; cat == nil {
		cat = &category{}
		db.cats[name] = cat
	}
	return cat
}

// noteDensityShift feeds a mutation's live-density change into the adaptive
// planner so MethodAuto re-regimes as the set grows or shrinks (the paper's
// density axis, Figure 11). Called with the category's mutation lock held.
func (db *DB) noteDensityShift(old, next *core.Binding) {
	db.plan.NoteDensityShift(
		planner.Features{NumObjects: old.Objs.Len(), NumVertices: db.g.NumVertices()},
		planner.Features{NumObjects: next.Objs.Len(), NumVertices: db.g.NumVertices()},
	)
}

// snapshot resolves a category name to its live binding (the query-time
// epoch pin).
func (db *DB) snapshot(name string) (*core.Binding, error) {
	db.mu.RLock()
	cat := db.cats[name]
	db.mu.RUnlock()
	if cat == nil {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownCategory, name, db.Categories())
	}
	b := cat.binding.Load()
	if b == nil {
		// The category is being created by a concurrent first mutation and
		// has no published epoch yet.
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownCategory, name, db.Categories())
	}
	return b, nil
}

// NumObjects returns the number of objects currently live in the named
// category.
func (db *DB) NumObjects(name string) (int, error) {
	b, err := db.snapshot(name)
	if err != nil {
		return 0, err
	}
	return b.Objs.Len(), nil
}

// Epoch returns the named category's live epoch number: 0 after the first
// registration, incremented by every InsertObjects or RemoveObjects that
// changed the set and by every RegisterObjects replacing an existing
// category (a bulk replacement advances the epoch even if the new set is
// identical). Two queries observing the same epoch observed the same
// object set.
func (db *DB) Epoch(name string) (uint64, error) {
	b, err := db.snapshot(name)
	if err != nil {
		return 0, err
	}
	return b.Epoch, nil
}
