//go:build race

package rnknn

// raceEnabled reports whether the race detector is active in this build.
// The race-detector build of sync.Pool drops Puts at random, so pooled
// sessions are re-manufactured mid-measurement and the zero-allocation
// assertions do not hold; those tests skip themselves when this is true.
const raceEnabled = true
