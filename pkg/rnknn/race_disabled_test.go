//go:build !race

package rnknn

// raceEnabled reports whether the race detector is active in this build
// (see race_enabled_test.go).
const raceEnabled = false
