package rnknn_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"rnknn/internal/gen"
	"rnknn/pkg/rnknn"
)

// shardedPair builds one DB the ordinary way and a shard set from it, and
// opens the sharded view with the same objects routed to their owning
// cells. The monolithic DB is the oracle: a sharded answer is correct iff
// it matches the monolithic one.
func shardedPair(t *testing.T, g *rnknn.Graph, objs []int32, shards int) (*rnknn.DB, *rnknn.ShardedDB) {
	t.Helper()
	db, err := rnknn.Open(g,
		rnknn.WithMethods(rnknn.Gtree, rnknn.INE),
		rnknn.WithObjects(rnknn.DefaultCategory, objs))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := db.SaveShardSet(dir, shards); err != nil {
		t.Fatal(err)
	}
	sdb, err := rnknn.OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	if err := sdb.RegisterObjects(rnknn.DefaultCategory, objs); err != nil {
		t.Fatal(err)
	}
	return db, sdb
}

// canonical sorts results by (distance, vertex) — both the sharded merge
// and the monolithic answer are compared in this order, since methods may
// legitimately order equal-distance neighbors differently.
func canonical(rs []rnknn.Result) []rnknn.Result {
	out := append([]rnknn.Result(nil), rs...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Vertex < out[b].Vertex
	})
	return out
}

func requireSame(t *testing.T, label string, got, want []rnknn.Result) {
	t.Helper()
	if !rnknn.SameResults(got, want) {
		t.Fatalf("%s:\n got %v\nwant %v", label, got, want)
	}
}

// TestShardedMatchesMonolithic is the exactness acceptance test: across
// three differently shaped networks and several shard counts, sharded KNN,
// KNNSeq, and Range answer byte-identically (up to equal-distance ties) to
// the monolithic DB, for query vertices swept across the whole network —
// including ones whose neighborhoods straddle shard boundaries.
func TestShardedMatchesMonolithic(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		spec    gen.NetworkSpec
		density float64
		shards  int
	}{
		{gen.NetworkSpec{Name: "shA", Rows: 10, Cols: 14, Seed: 3}, 0.05, 3},
		{gen.NetworkSpec{Name: "shB", Rows: 16, Cols: 9, Seed: 8}, 0.02, 4},
		{gen.NetworkSpec{Name: "shC", Rows: 7, Cols: 7, Seed: 21}, 0.10, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s-%dshards", tc.spec.Name, tc.shards), func(t *testing.T) {
			g := gen.Network(tc.spec)
			objs := gen.Uniform(g, tc.density, 17)
			db, sdb := shardedPair(t, g, objs, tc.shards)

			n := g.NumVertices()
			// Sweep queries across the vertex range: the partition cells are
			// contiguous DFS-leaf ranges, so a dense sweep necessarily hits
			// vertices at and around every cell boundary.
			step := n/37 + 1
			for q := 0; q < n; q += step {
				for _, k := range []int{1, 5, 12} {
					want, err := db.KNN(ctx, int32(q), k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sdb.KNN(ctx, int32(q), k)
					if err != nil {
						t.Fatal(err)
					}
					requireSame(t, fmt.Sprintf("KNN q=%d k=%d", q, k), got, want)
				}
			}

			// Streaming path: the k-way merge must deliver the same set in
			// nondecreasing order.
			for q := 0; q < n; q += step * 3 {
				k := 8
				want, err := db.KNN(ctx, int32(q), k)
				if err != nil {
					t.Fatal(err)
				}
				var got []rnknn.Result
				for r, err := range sdb.KNNSeq(ctx, int32(q), k) {
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, r)
				}
				for i := 1; i < len(got); i++ {
					if got[i].Dist < got[i-1].Dist {
						t.Fatalf("KNNSeq q=%d: distances decrease at %d: %v", q, i, got)
					}
				}
				requireSame(t, fmt.Sprintf("KNNSeq q=%d", q), got, want)
			}

			// Range: identical sets within several radii.
			for q := 0; q < n; q += step * 4 {
				for _, radius := range []rnknn.Dist{0, 500, 5000, 50000} {
					want, err := db.Range(ctx, int32(q), radius)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sdb.Range(ctx, int32(q), radius)
					if err != nil {
						t.Fatal(err)
					}
					gc, wc := canonical(got), canonical(want)
					if len(gc) != len(wc) {
						t.Fatalf("Range q=%d r=%d: %d vs %d results", q, radius, len(gc), len(wc))
					}
					for i := range wc {
						if gc[i] != wc[i] {
							t.Fatalf("Range q=%d r=%d: result %d: got %+v want %+v", q, radius, i, gc[i], wc[i])
						}
					}
				}
			}
		})
	}
}

// TestShardedKExceedsShardCounts: with k larger than any single shard's
// object count (and larger than the global count), every shard must be
// consulted and the merged answer must still match the monolithic one —
// the threshold prune may not cut off shards while the result set is
// short.
func TestShardedKExceedsShardCounts(t *testing.T) {
	ctx := context.Background()
	g := gen.Network(gen.NetworkSpec{Name: "shK", Rows: 12, Cols: 12, Seed: 5})
	// A handful of objects spread across the network: ~2 per shard.
	objs := gen.Uniform(g, 8.0/float64(g.NumVertices()), 9)
	db, sdb := shardedPair(t, g, objs, 4)

	total, err := sdb.NumObjects(rnknn.DefaultCategory)
	if err != nil {
		t.Fatal(err)
	}
	if total != len(objs) {
		t.Fatalf("NumObjects %d, want %d", total, len(objs))
	}
	for _, q := range []int32{0, int32(g.NumVertices() / 2), int32(g.NumVertices() - 1)} {
		for _, k := range []int{total - 1, total, total + 10, 100} {
			if k <= 0 {
				continue
			}
			want, err := db.KNN(ctx, q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sdb.KNN(ctx, q, k)
			if err != nil {
				t.Fatal(err)
			}
			requireSame(t, fmt.Sprintf("q=%d k=%d", q, k), got, want)
			if len(got) != min(k, total) {
				t.Fatalf("q=%d k=%d: %d results, want %d", q, k, len(got), min(k, total))
			}
		}
	}
}

// TestShardedEmptyShardCategories: a category whose objects all live in
// one cell must still be queryable from every shard — empty subsets are
// registered everywhere, so a fanned query on an empty shard returns an
// empty stream, not ErrUnknownCategory.
func TestShardedEmptyShardCategories(t *testing.T) {
	ctx := context.Background()
	g := gen.Network(gen.NetworkSpec{Name: "shE", Rows: 10, Cols: 10, Seed: 2})
	objs := gen.Uniform(g, 0.04, 11)
	db, sdb := shardedPair(t, g, objs, 3)

	// All corner objects live near vertex 0 — most cells own none of them.
	corner := []int32{0, 1, 2}
	if err := db.RegisterObjects("corner", corner); err != nil {
		t.Fatal(err)
	}
	if err := sdb.RegisterObjects("corner", corner); err != nil {
		t.Fatal(err)
	}
	for _, q := range []int32{0, int32(g.NumVertices() - 1)} {
		want, err := db.KNN(ctx, q, 3, rnknn.WithCategory("corner"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sdb.KNN(ctx, q, 3, rnknn.WithCategory("corner"))
		if err != nil {
			t.Fatal(err)
		}
		requireSame(t, fmt.Sprintf("corner q=%d", q), got, want)
	}
	n, err := sdb.NumObjects("corner")
	if err != nil || n != len(corner) {
		t.Fatalf("NumObjects(corner) = %d, %v", n, err)
	}
	// Insert and remove through the sharded router, mirrored on the oracle.
	mid := int32(g.NumVertices() / 2)
	for _, dbs := range []interface {
		InsertObjects(string, []int32) error
	}{db, sdb} {
		if err := dbs.InsertObjects("corner", []int32{mid}); err != nil {
			t.Fatal(err)
		}
	}
	for _, dbs := range []interface {
		RemoveObjects(string, []int32) error
	}{db, sdb} {
		if err := dbs.RemoveObjects("corner", corner[:1]); err != nil {
			t.Fatal(err)
		}
	}
	want, err := db.KNN(ctx, mid, 4, rnknn.WithCategory("corner"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sdb.KNN(ctx, mid, 4, rnknn.WithCategory("corner"))
	if err != nil {
		t.Fatal(err)
	}
	requireSame(t, "corner after churn", got, want)
}

// TestShardedValidation pins the router's error surface.
func TestShardedValidation(t *testing.T) {
	ctx := context.Background()
	g := gen.Network(gen.NetworkSpec{Name: "shV", Rows: 6, Cols: 6, Seed: 1})
	_, sdb := shardedPair(t, g, gen.Uniform(g, 0.1, 4), 2)

	if _, err := sdb.KNN(ctx, -1, 3); err == nil {
		t.Fatal("negative query vertex accepted")
	}
	if _, err := sdb.KNN(ctx, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := sdb.Range(ctx, 0, -1); err == nil {
		t.Fatal("negative radius accepted")
	}
	if _, err := sdb.KNN(ctx, 0, 3, rnknn.WithCategory("nope")); err == nil {
		t.Fatal("unknown category accepted")
	}
	if err := sdb.RegisterObjects("bad", []int32{int32(g.NumVertices())}); err == nil {
		t.Fatal("out-of-range object accepted")
	}
}

// TestSaveShardSetBounds: shard counts the partition cannot satisfy are
// rejected up front.
func TestSaveShardSetBounds(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "shB2", Rows: 5, Cols: 5, Seed: 1})
	db, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := db.SaveShardSet(dir, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
	if err := db.SaveShardSet(dir, 1<<20); err == nil {
		t.Fatal("absurd shard count accepted")
	}
}
