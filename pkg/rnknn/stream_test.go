package rnknn

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"rnknn/internal/gen"
)

// streamGraphs are the three networks the streaming contract is checked
// on; the smallest also builds SILC so the buffered-replay fallback of the
// DisBrw pair is exercised alongside the native streamers.
var streamGraphs = []gen.NetworkSpec{
	{Name: "s-small", Rows: 8, Cols: 10, Seed: 3},
	{Name: "s-mid", Rows: 16, Cols: 20, Seed: 7},
	{Name: "s-wide", Rows: 12, Cols: 40, Seed: 11},
}

func streamDB(t *testing.T, spec gen.NetworkSpec, density float64) *DB {
	t.Helper()
	g := gen.Network(spec)
	methods := []Method{INE, IERDijk, IERCH, IERTNR, IERPHL, IERGt, Gtree, ROAD}
	if g.NumVertices() <= 200 {
		methods = append(methods, DisBrw, DisBrwOH)
	}
	db, err := Open(g,
		WithMethods(methods...),
		WithObjects(DefaultCategory, gen.Uniform(g, density, 5)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func collectSeq(t *testing.T, db *DB, q int32, k int, opts ...QueryOption) []Result {
	t.Helper()
	var out []Result
	for r, err := range db.KNNSeq(context.Background(), q, k, opts...) {
		if err != nil {
			t.Fatalf("KNNSeq yielded error: %v", err)
		}
		out = append(out, r)
	}
	return out
}

// TestKNNSeqMatchesKNN is the streaming equivalence contract: collecting a
// KNNSeq stream equals the buffered KNN answer, for every built method,
// across the three test graphs, at a k that forces multi-leaf searches.
func TestKNNSeqMatchesKNN(t *testing.T) {
	for _, spec := range streamGraphs {
		db := streamDB(t, spec, 0.03)
		ctx := context.Background()
		for _, q := range gen.QueryVertices(db.Graph(), 8, 21) {
			for _, m := range db.Methods() {
				for _, k := range []int{1, 7, 25} {
					want, err := db.KNN(ctx, q, k, WithMethod(m))
					if err != nil {
						t.Fatalf("%s/%s: %v", spec.Name, m, err)
					}
					got := collectSeq(t, db, q, k, WithMethod(m))
					if !SameResults(got, want) {
						t.Fatalf("%s/%s q=%d k=%d: stream %s != knn %s",
							spec.Name, m, q, k, FormatResults(got), FormatResults(want))
					}
				}
			}
		}
	}
}

// TestKNNSeqOrdering checks the stream's documented nondecreasing distance
// order on its own (SameResults would tolerate some reorders).
func TestKNNSeqOrdering(t *testing.T) {
	db := streamDB(t, streamGraphs[1], 0.03)
	for _, m := range db.Methods() {
		prev := Dist(-1)
		for r, err := range db.KNNSeq(context.Background(), 17, 12, WithMethod(m)) {
			if err != nil {
				t.Fatal(err)
			}
			if r.Dist < prev {
				t.Fatalf("%s: stream went backwards: %d after %d", m, r.Dist, prev)
			}
			prev = r.Dist
		}
	}
}

// TestKNNSeqEarlyBreakReleasesSession proves an early break returns the
// pooled session: repeated broken streams from one goroutine must reuse
// the one manufactured session rather than minting one per call.
func TestKNNSeqEarlyBreakReleasesSession(t *testing.T) {
	db := streamDB(t, streamGraphs[1], 0.05)
	for i := 0; i < 100; i++ {
		for _, err := range db.KNNSeq(context.Background(), int32(i%db.Graph().NumVertices()), 10, WithMethod(Gtree)) {
			if err != nil {
				t.Fatal(err)
			}
			break // abandon after the first neighbor
		}
	}
	// Every checkout must have been returned — an early break that leaks
	// its session leaves gets ahead of puts.
	gets, puts := db.pools[Gtree].gets.Load(), db.pools[Gtree].puts.Load()
	if gets != 100 || puts != gets {
		t.Fatalf("session pool gets=%d puts=%d after 100 early-broken streams; want 100/100", gets, puts)
	}
	// And the pool still serves complete queries.
	if got := collectSeq(t, db, 17, 5, WithMethod(Gtree)); len(got) != 5 {
		t.Fatalf("post-break query returned %d results", len(got))
	}
}

// TestKNNSeqEarlyBreakConcurrent hammers early breaks from many
// goroutines — under -race this proves the release path is data-race free.
func TestKNNSeqEarlyBreakConcurrent(t *testing.T) {
	db := streamDB(t, streamGraphs[1], 0.05)
	n := db.Graph().NumVertices()
	var wg sync.WaitGroup
	for w := 0; w < 2*runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				taken := 0
				for _, err := range db.KNNSeq(context.Background(), int32((w*53+i)%n), 8, WithMethod(INE)) {
					if err != nil {
						t.Error(err)
						return
					}
					if taken++; taken == 2 {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestKNNSeqContextCancelMidStream cancels after the first neighbor: the
// expansion must stop and the stream must end with ctx's error.
func TestKNNSeqContextCancelMidStream(t *testing.T) {
	db := streamDB(t, streamGraphs[1], 0.02)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []Result
	var lastErr error
	// k above the object count forces a graph-wide scan if not stopped.
	for r, err := range db.KNNSeq(ctx, 0, db.Graph().NumVertices(), WithMethod(INE)) {
		if err != nil {
			lastErr = err
			break
		}
		got = append(got, r)
		cancel()
	}
	if !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("stream ended with %v, want context.Canceled", lastErr)
	}
	if len(got) == 0 {
		t.Fatal("expected at least the pre-cancellation neighbor")
	}
}

// TestKNNSeqPreCancelled and invalid inputs: the first yielded pair
// carries the typed error and the stream ends.
func TestKNNSeqErrorYield(t *testing.T) {
	db := streamDB(t, streamGraphs[0], 0.05)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		seq  func(func(Result, error) bool)
		want error
	}{
		{"bad k", db.KNNSeq(context.Background(), 0, 0), ErrBadK},
		{"bad vertex", db.KNNSeq(context.Background(), -1, 3), ErrBadVertex},
		{"unknown method", db.KNNSeq(context.Background(), 0, 3, WithMethod(Method(42))), ErrUnknownMethod},
		{"unknown category", db.KNNSeq(context.Background(), 0, 3, WithCategory("nope")), ErrUnknownCategory},
		{"pre-cancelled", db.KNNSeq(cancelled, 0, 3), context.Canceled},
	}
	for _, c := range cases {
		pairs := 0
		var lastErr error
		for r, err := range c.seq {
			pairs++
			lastErr = err
			if err == nil {
				t.Errorf("%s: yielded a result %v, want only the error", c.name, r)
			}
		}
		if pairs != 1 || !errors.Is(lastErr, c.want) {
			t.Errorf("%s: %d pairs, err %v; want 1 pair of %v", c.name, pairs, lastErr, c.want)
		}
	}
}

// TestKNNSeqAuto streams through the planner path.
func TestKNNSeqAuto(t *testing.T) {
	db := streamDB(t, streamGraphs[1], 0.03)
	want, err := db.BruteForceKNN(33, 6)
	if err != nil {
		t.Fatal(err)
	}
	got := collectSeq(t, db, 33, 6, WithMethod(MethodAuto))
	if !SameResults(got, want) {
		t.Fatalf("auto stream %s != brute force %s", FormatResults(got), FormatResults(want))
	}
}

// TestKNNSeqRecordsStatsOnCompletion: only fully consumed streams land in
// the per-method counters.
func TestKNNSeqRecordsStatsOnCompletion(t *testing.T) {
	db := streamDB(t, streamGraphs[0], 0.05)
	for range db.KNNSeq(context.Background(), 0, 3, WithMethod(ROAD)) {
		break // abandoned: must not be counted
	}
	collectSeq(t, db, 0, 3, WithMethod(ROAD))
	if got := db.Stats().Methods["ROAD"].KNNQueries; got != 1 {
		t.Fatalf("ROAD KNNQueries = %d, want 1 (completed stream only)", got)
	}
}
