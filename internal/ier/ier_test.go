package ier_test

import (
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/ier"
	"rnknn/internal/knn"
)

func setup(t testing.TB, seed int64) (*graph.Graph, *knn.ObjectSet, []int32) {
	t.Helper()
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 18, Cols: 18, Seed: seed})
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.02, seed+1))
	queries := gen.QueryVertices(g, 30, seed+2)
	return g, objs, queries
}

func TestIERDijkMatchesBruteForce(t *testing.T) {
	g, objs, queries := setup(t, 31)
	x := ier.New("IER-Dijk", g, objs, &ier.DijkstraFactory{G: g})
	for _, q := range queries {
		for _, k := range []int{1, 5, 10} {
			got := x.KNN(q, k)
			want := knn.BruteForce(g, objs, q, k)
			if !knn.SameResults(got, want) {
				t.Fatalf("q=%d k=%d: got %s want %s", q, k,
					knn.FormatResults(got), knn.FormatResults(want))
			}
		}
	}
}

func TestIERTravelTimeLowerBound(t *testing.T) {
	g, objs, queries := setup(t, 32)
	tg := g.View(graph.TravelTime)
	x := ier.New("IER-Dijk", tg, objs, &ier.DijkstraFactory{G: tg})
	for _, q := range queries {
		got := x.KNN(q, 10)
		want := knn.BruteForce(tg, objs, q, 10)
		if !knn.SameResults(got, want) {
			t.Fatalf("time q=%d: got %s want %s", q, knn.FormatResults(got), knn.FormatResults(want))
		}
	}
}

func TestIERKExceedsObjects(t *testing.T) {
	g, _, _ := setup(t, 33)
	objs := knn.NewObjectSet(g, []int32{1, 2, 3})
	x := ier.New("IER-Dijk", g, objs, &ier.DijkstraFactory{G: g})
	got := x.KNN(9, 50)
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Dist > got[i].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestIERStatisticsPopulated(t *testing.T) {
	g, objs, queries := setup(t, 34)
	x := ier.New("IER-Dijk", g, objs, &ier.DijkstraFactory{G: g})
	_ = x.KNN(queries[0], 10)
	if x.OracleCalls < 10 {
		t.Fatalf("OracleCalls = %d, want >= k", x.OracleCalls)
	}
	if x.FalseHits < 0 || x.FalseHits > x.OracleCalls {
		t.Fatalf("FalseHits = %d out of range", x.FalseHits)
	}
}

func TestOracleFactoryAdapter(t *testing.T) {
	g, objs, queries := setup(t, 35)
	// A DistanceOracle backed by a fresh Dijkstra per call; slow but exact.
	x := ier.New("IER-oracle", g, objs, &ier.OracleFactory{Oracle: exactOracle{g}})
	for _, q := range queries[:5] {
		got := x.KNN(q, 5)
		want := knn.BruteForce(g, objs, q, 5)
		if !knn.SameResults(got, want) {
			t.Fatalf("q=%d: got %s want %s", q, knn.FormatResults(got), knn.FormatResults(want))
		}
	}
}

type exactOracle struct{ g *graph.Graph }

func (o exactOracle) Name() string { return "exact" }
func (o exactOracle) Distance(s, t int32) graph.Dist {
	return knn.BruteForce(o.g, knn.NewObjectSet(o.g, []int32{t}), s, 1)[0].Dist
}

// TestIERClusteredEvictions covers the eviction-heavy regime the stamped
// evicted set replaced a per-displacement map allocation for: clustered
// objects on a travel-time view, where Euclidean candidate order diverges
// hardest from network-distance order, so the top-k heap displaces (and
// lazily invalidates) many provisional candidates per query. Reusing one
// IER instance across all queries also proves an earlier query's evictions
// never leak into the next (the stamped set resets in O(1)).
func TestIERClusteredEvictions(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "ev", Rows: 20, Cols: 20, Seed: 77})
	tg := g.View(graph.TravelTime)
	objs := knn.NewObjectSet(tg, gen.Clustered(tg, 5, 40, 78))
	x := ier.New("IER-Dijk", tg, objs, &ier.DijkstraFactory{G: tg})
	queries := gen.QueryVertices(tg, 40, 79)
	evictions := 0
	for _, q := range queries {
		for _, k := range []int{4, 10, 25} {
			got := x.KNN(q, k)
			evictions += x.Evictions
			want := knn.BruteForce(tg, objs, q, k)
			if !knn.SameResults(got, want) {
				t.Fatalf("q=%d k=%d: got %s want %s", q, k,
					knn.FormatResults(got), knn.FormatResults(want))
			}
		}
	}
	if evictions == 0 {
		t.Fatal("workload displaced no candidates; eviction regime not reached")
	}
}
