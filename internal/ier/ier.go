// Package ier implements Incremental Euclidean Restriction (Section 3.2),
// the heuristic best-first kNN framework the paper revives (Section 5): an
// R-tree supplies candidate objects in Euclidean-lower-bound order, and any
// pluggable distance oracle (Dijkstra, CH, TNR, PHL, materialized G-tree)
// verifies their network distances.
//
// On travel-time graphs the lower bound is dE/S where S is the maximum
// "speed" dE(e)/w(e) over edges (Section 7.5); the same formula is used on
// travel-distance graphs, where S <= 1 and the bound is at least as tight
// as plain Euclidean distance.
package ier

import (
	"math"

	"rnknn/internal/geo"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/rtree"
	"rnknn/internal/scratch"
)

// IER is the IER kNN method bound to an oracle and an object set. The
// method value owns all transient query memory — the top-k and pending
// heaps, the stamped evicted set, the R-tree scan queue — so a warm query
// performs no heap allocations.
type IER struct {
	name    string
	g       *graph.Graph
	objs    *knn.ObjectSet
	rt      *rtree.Tree
	factory knn.SourceFactory
	// invSpeed = 1/S; lower bound = floor(dE * invSpeed).
	invSpeed float64

	// interrupt, when non-nil, is polled once per candidate; a true return
	// aborts the scan early.
	interrupt func() bool

	// Per-query scratch, reused across queries. cand is the top-k max-heap,
	// pending the min-heap of verified-but-unemitted results, evicted the
	// stamped set of lazily invalidated candidates (previously a per-
	// displacement map allocation), scan the suspendable R-tree search.
	cand    []knn.Result
	pending []knn.Result
	evicted *scratch.Set
	scan    rtree.Scanner
	out     []knn.Result
	collect func(knn.Result) bool

	// FalseHits counts network distance computations in the last query that
	// did not improve the candidate set (an experiment statistic).
	FalseHits int
	// OracleCalls counts network distance computations in the last query.
	OracleCalls int
	// Evictions counts top-k displacements in the last query (entries the
	// stamped evicted set lazily invalidated).
	Evictions int
}

// NewObjectTree builds the Euclidean object R-tree for objs over g — the
// decoupled object index (Section 2.2) IER scans for candidates. The tree
// may be shared read-only by any number of IER instances; object churn
// derives the next epoch's tree with rtree.Clone plus Insert/Delete rather
// than mutating one a query might be scanning.
func NewObjectTree(g *graph.Graph, objs *knn.ObjectSet) *rtree.Tree {
	verts := objs.Vertices()
	pts := make([]geo.Point, len(verts))
	for i, v := range verts {
		pts[i] = geo.Point{X: g.X[v], Y: g.Y[v]}
	}
	return rtree.New(verts, pts, 0)
}

// New builds an IER method. name is the reported method name (e.g.
// "IER-PHL"); the object R-tree is built over the object set's coordinates.
func New(name string, g *graph.Graph, objs *knn.ObjectSet, factory knn.SourceFactory) *IER {
	return NewWithTree(name, g, objs, NewObjectTree(g, objs), factory)
}

// NewWithTree builds an IER method over a prebuilt object R-tree (shared
// across query sessions; see Rebind).
func NewWithTree(name string, g *graph.Graph, objs *knn.ObjectSet, rt *rtree.Tree, factory knn.SourceFactory) *IER {
	x := &IER{
		name:     name,
		g:        g,
		objs:     objs,
		rt:       rt,
		factory:  factory,
		invSpeed: 1 / g.MaxSpeed(),
		evicted:  scratch.NewSet(g.NumVertices()),
	}
	x.collect = func(r knn.Result) bool {
		x.out = append(x.out, r)
		return true
	}
	return x
}

// Name implements knn.Method.
func (x *IER) Name() string { return x.name }

// Rebind swaps the object set and its prebuilt R-tree between queries
// (object indexes are decoupled from the road network index, Section 2.2).
func (x *IER) Rebind(objs *knn.ObjectSet, rt *rtree.Tree) {
	x.objs = objs
	x.rt = rt
}

// SetInterrupt implements knn.Interruptible.
func (x *IER) SetInterrupt(check func() bool) { x.interrupt = check }

// Tree returns the object R-tree (shared with experiments that measure the
// object index, Figure 18).
func (x *IER) Tree() *rtree.Tree { return x.rt }

// KNN implements knn.Method: the stream already emits in nondecreasing
// network distance order, so the buffered answer is a plain collect.
func (x *IER) KNN(qv int32, k int) []knn.Result {
	return x.KNNAppend(qv, k, make([]knn.Result, 0, k))
}

// KNNAppend implements knn.Method's zero-allocation form.
func (x *IER) KNNAppend(qv int32, k int, dst []knn.Result) []knn.Result {
	x.out = dst
	x.KNNStream(qv, k, x.collect)
	dst = x.out
	x.out = nil
	return dst
}

// KNNStream implements knn.Streamer and is the one search implementation
// (KNN collects it): the best-first R-tree scan with each verified
// candidate yielded as soon as it is provably final. The
// R-tree emits objects in nondecreasing Euclidean-lower-bound order, so
// every later object verifies at a network distance of at least the scan's
// current lower bound lb; a candidate already verified at distance <= lb
// can therefore never be displaced from the top k and is safe to emit.
// Candidates are emitted in nondecreasing network distance order via a
// min-heap of pending (verified, unemitted) results; a candidate evicted
// from the top-k max-heap is lazily invalidated.
func (x *IER) KNNStream(qv int32, k int, yield func(knn.Result) bool) {
	x.FalseHits = 0
	x.OracleCalls = 0
	x.Evictions = 0
	if k > x.objs.Len() {
		k = x.objs.Len()
	}
	if k == 0 {
		return
	}
	src := x.factory.NewSource(qv)
	x.scan.Start(x.rt, geo.Point{X: x.g.X[qv], Y: x.g.Y[qv]})
	x.cand = x.cand[:0]
	x.pending = x.pending[:0]
	x.evicted.Reset()
	dk := graph.Inf
	for {
		if x.interrupt != nil && x.interrupt() {
			break
		}
		nb, ok := x.scan.Next()
		if !ok {
			break
		}
		lb := graph.Dist(math.Floor(nb.Dist * x.invSpeed))
		if !x.emitPending(lb, yield) {
			return
		}
		if len(x.cand) == k && lb >= dk {
			break
		}
		d := src.DistanceTo(nb.ID)
		x.OracleCalls++
		if len(x.cand) < k {
			candPush(&x.cand, knn.Result{Vertex: nb.ID, Dist: d})
			minPush(&x.pending, knn.Result{Vertex: nb.ID, Dist: d})
			if len(x.cand) == k {
				dk = x.cand[0].Dist
			}
		} else if d < dk {
			// The popped max (the old dk) was never emitted: emission
			// requires dist <= lb, and lb < dk while the scan runs.
			old := x.cand[0]
			candReplaceTop(x.cand, knn.Result{Vertex: nb.ID, Dist: d})
			dk = x.cand[0].Dist
			x.evicted.Add(old.Vertex)
			x.Evictions++
			minPush(&x.pending, knn.Result{Vertex: nb.ID, Dist: d})
		} else {
			x.FalseHits++
		}
	}
	// Scan terminated (or was interrupted): every surviving candidate is
	// final; drain in distance order.
	x.emitPending(graph.Inf, yield)
}

// emitPending yields pending candidates with distance <= limit, skipping
// lazily invalidated (evicted) entries; false means the consumer stopped
// the stream.
func (x *IER) emitPending(limit graph.Dist, yield func(knn.Result) bool) bool {
	for len(x.pending) > 0 && x.pending[0].Dist <= limit {
		r := minPop(&x.pending)
		if x.evicted.Contains(r.Vertex) {
			continue
		}
		if !yield(r) {
			return false
		}
	}
	return true
}

var (
	_ knn.Method        = (*IER)(nil)
	_ knn.Interruptible = (*IER)(nil)
	_ knn.Streamer      = (*IER)(nil)
)

// minPush and minPop maintain a min-heap of results keyed by distance (the
// pending-emission buffer of KNNStream).
func minPush(h *[]knn.Result, r knn.Result) {
	*h = append(*h, r)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].Dist <= a[i].Dist {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func minPop(h *[]knn.Result) knn.Result {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	*h = a
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && a[r].Dist < a[l].Dist {
			c = r
		}
		if a[c].Dist >= a[i].Dist {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	return top
}

func candPush(h *[]knn.Result, r knn.Result) {
	*h = append(*h, r)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].Dist >= a[i].Dist {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func candReplaceTop(a []knn.Result, r knn.Result) {
	a[0] = r
	i := 0
	n := len(a)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if rr := l + 1; rr < n && a[rr].Dist > a[l].Dist {
			c = rr
		}
		if a[c].Dist <= a[i].Dist {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
}
