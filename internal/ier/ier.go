// Package ier implements Incremental Euclidean Restriction (Section 3.2),
// the heuristic best-first kNN framework the paper revives (Section 5): an
// R-tree supplies candidate objects in Euclidean-lower-bound order, and any
// pluggable distance oracle (Dijkstra, CH, TNR, PHL, materialized G-tree)
// verifies their network distances.
//
// On travel-time graphs the lower bound is dE/S where S is the maximum
// "speed" dE(e)/w(e) over edges (Section 7.5); the same formula is used on
// travel-distance graphs, where S <= 1 and the bound is at least as tight
// as plain Euclidean distance.
package ier

import (
	"math"
	"sort"

	"rnknn/internal/geo"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/rtree"
)

// IER is the IER kNN method bound to an oracle and an object set.
type IER struct {
	name    string
	g       *graph.Graph
	objs    *knn.ObjectSet
	rt      *rtree.Tree
	factory knn.SourceFactory
	// invSpeed = 1/S; lower bound = floor(dE * invSpeed).
	invSpeed float64

	// interrupt, when non-nil, is polled once per candidate; a true return
	// aborts the scan early.
	interrupt func() bool

	// FalseHits counts network distance computations in the last query that
	// did not improve the candidate set (an experiment statistic).
	FalseHits int
	// OracleCalls counts network distance computations in the last query.
	OracleCalls int
}

// NewObjectTree builds the Euclidean object R-tree for objs over g — the
// decoupled object index (Section 2.2) IER scans for candidates. The tree
// is immutable and may be shared by any number of IER instances.
func NewObjectTree(g *graph.Graph, objs *knn.ObjectSet) *rtree.Tree {
	verts := objs.Vertices()
	pts := make([]geo.Point, len(verts))
	for i, v := range verts {
		pts[i] = geo.Point{X: g.X[v], Y: g.Y[v]}
	}
	return rtree.New(verts, pts, 0)
}

// New builds an IER method. name is the reported method name (e.g.
// "IER-PHL"); the object R-tree is built over the object set's coordinates.
func New(name string, g *graph.Graph, objs *knn.ObjectSet, factory knn.SourceFactory) *IER {
	return NewWithTree(name, g, objs, NewObjectTree(g, objs), factory)
}

// NewWithTree builds an IER method over a prebuilt object R-tree (shared
// across query sessions; see Rebind).
func NewWithTree(name string, g *graph.Graph, objs *knn.ObjectSet, rt *rtree.Tree, factory knn.SourceFactory) *IER {
	return &IER{
		name:     name,
		g:        g,
		objs:     objs,
		rt:       rt,
		factory:  factory,
		invSpeed: 1 / g.MaxSpeed(),
	}
}

// Name implements knn.Method.
func (x *IER) Name() string { return x.name }

// Rebind swaps the object set and its prebuilt R-tree between queries
// (object indexes are decoupled from the road network index, Section 2.2).
func (x *IER) Rebind(objs *knn.ObjectSet, rt *rtree.Tree) {
	x.objs = objs
	x.rt = rt
}

// SetInterrupt implements knn.Interruptible.
func (x *IER) SetInterrupt(check func() bool) { x.interrupt = check }

// Tree returns the object R-tree (shared with experiments that measure the
// object index, Figure 18).
func (x *IER) Tree() *rtree.Tree { return x.rt }

// KNN implements knn.Method.
func (x *IER) KNN(qv int32, k int) []knn.Result {
	x.FalseHits = 0
	x.OracleCalls = 0
	if k > x.objs.Len() {
		k = x.objs.Len()
	}
	if k == 0 {
		return nil
	}
	src := x.factory.NewSource(qv)
	scan := x.rt.NewScan(geo.Point{X: x.g.X[qv], Y: x.g.Y[qv]})

	// cand is a max-heap of the current k candidates keyed by network
	// distance; cand[0] carries Dk.
	cand := make([]knn.Result, 0, k)
	dk := graph.Inf
	for {
		if x.interrupt != nil && x.interrupt() {
			break
		}
		nb, ok := scan.Next()
		if !ok {
			break
		}
		lb := graph.Dist(math.Floor(nb.Dist * x.invSpeed))
		if len(cand) == k && lb >= dk {
			// The next Euclidean NN cannot beat the current kth candidate,
			// and all later ones are even further: terminate.
			break
		}
		d := src.DistanceTo(nb.ID)
		x.OracleCalls++
		if len(cand) < k {
			candPush(&cand, knn.Result{Vertex: nb.ID, Dist: d})
			if len(cand) == k {
				dk = cand[0].Dist
			}
		} else if d < dk {
			candReplaceTop(cand, knn.Result{Vertex: nb.ID, Dist: d})
			dk = cand[0].Dist
		} else {
			x.FalseHits++
		}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i].Dist < cand[j].Dist })
	return cand
}

var (
	_ knn.Method        = (*IER)(nil)
	_ knn.Interruptible = (*IER)(nil)
)

func candPush(h *[]knn.Result, r knn.Result) {
	*h = append(*h, r)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].Dist >= a[i].Dist {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func candReplaceTop(a []knn.Result, r knn.Result) {
	a[0] = r
	i := 0
	n := len(a)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if rr := l + 1; rr < n && a[rr].Dist > a[l].Dist {
			c = rr
		}
		if a[c].Dist <= a[i].Dist {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
}
