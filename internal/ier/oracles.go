package ier

import (
	"rnknn/internal/dijkstra"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

// DijkstraFactory is the original IER oracle (Figure 4 "Dijk"): a suspended,
// resumable Dijkstra expansion per query vertex. Resumption means subsequent
// candidate distances from the same source reuse earlier expansion work.
type DijkstraFactory struct {
	G *graph.Graph
}

// Name implements knn.SourceFactory.
func (f DijkstraFactory) Name() string { return "Dijk" }

// NewSource implements knn.SourceFactory.
func (f DijkstraFactory) NewSource(s int32) knn.SourceOracle {
	return dijkstra.NewResumable(f.G, s)
}

// OracleFactory adapts any point-to-point DistanceOracle (CH, TNR, PHL) to
// the per-source interface IER consumes.
type OracleFactory struct {
	Oracle knn.DistanceOracle
}

// Name implements knn.SourceFactory.
func (f OracleFactory) Name() string { return f.Oracle.Name() }

// NewSource implements knn.SourceFactory.
func (f OracleFactory) NewSource(s int32) knn.SourceOracle {
	return boundOracle{f.Oracle, s}
}

type boundOracle struct {
	o knn.DistanceOracle
	s int32
}

func (b boundOracle) DistanceTo(t int32) graph.Dist { return b.o.Distance(b.s, t) }
