package ier

import (
	"rnknn/internal/dijkstra"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

// DijkstraFactory is the original IER oracle (Figure 4 "Dijk"): a suspended,
// resumable Dijkstra expansion per query vertex. Resumption means subsequent
// candidate distances from the same source reuse earlier expansion work, and
// the factory caches one resumable search so consecutive queries from the
// same session reuse its stamped arrays and heap backing too.
//
// A factory is single-session state (like the IER instance holding it):
// create one per session, not one shared across goroutines.
type DijkstraFactory struct {
	G *graph.Graph

	r *dijkstra.Resumable
}

// Name implements knn.SourceFactory.
func (f *DijkstraFactory) Name() string { return "Dijk" }

// NewSource implements knn.SourceFactory.
func (f *DijkstraFactory) NewSource(s int32) knn.SourceOracle {
	if f.r == nil {
		f.r = dijkstra.NewResumable(f.G, s)
	} else {
		f.r.Reset(s)
	}
	return f.r
}

// OracleFactory adapts any point-to-point DistanceOracle (CH, TNR, PHL) to
// the per-source interface IER consumes. The bound-source wrapper is cached
// on the factory, so handing out a source is allocation-free; like
// DijkstraFactory, a factory serves one session at a time.
type OracleFactory struct {
	Oracle knn.DistanceOracle

	src boundOracle
}

// Name implements knn.SourceFactory.
func (f *OracleFactory) Name() string { return f.Oracle.Name() }

// NewSource implements knn.SourceFactory.
func (f *OracleFactory) NewSource(s int32) knn.SourceOracle {
	f.src = boundOracle{f.Oracle, s}
	return &f.src
}

type boundOracle struct {
	o knn.DistanceOracle
	s int32
}

func (b *boundOracle) DistanceTo(t int32) graph.Dist { return b.o.Distance(b.s, t) }
