// Binary snapshot codec for the hub labeling: the CSR label arrays are the
// entire index. See docs/SNAPSHOT_FORMAT.md.
package phl

import (
	"io"

	"rnknn/internal/snapio"
)

// codecVersion is the PHL section layout version.
const codecVersion uint16 = 1

// WriteTo serializes the index (io.WriterTo).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	sw := snapio.NewWriter(w)
	sw.U16(codecVersion)
	sw.I32s(x.off)
	sw.I32s(x.hubs)
	sw.I32s(x.dist)
	return sw.Result()
}

// Read deserializes an index written by WriteTo for a graph of numVertices
// vertices, validating the CSR invariants.
func Read(r io.Reader, numVertices int) (*Index, error) {
	sr := snapio.NewReader(r)
	if v := sr.U16(); sr.Err() == nil && v != codecVersion {
		sr.Failf("phl codec version %d (want %d)", v, codecVersion)
	}
	x := &Index{off: sr.I32s(), hubs: sr.I32s(), dist: sr.I32s()}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	n := numVertices
	if len(x.off) != n+1 || x.off[0] != 0 || int(x.off[n]) != len(x.hubs) || len(x.hubs) != len(x.dist) {
		sr.Failf("phl label CSR is inconsistent for %d vertices", n)
		return nil, sr.Err()
	}
	for v := 0; v < n; v++ {
		if x.off[v] > x.off[v+1] {
			sr.Failf("phl offsets not monotone at %d", v)
			return nil, sr.Err()
		}
	}
	return x, nil
}
