// Binary snapshot codec for the hub labeling: the CSR label arrays are the
// entire index. Layout v2 writes the three arrays 64-byte-aligned
// (snapio raw-array layout) so a mapped snapshot aliases them with zero
// copy; v1 payloads (element-streamed) are still read. See
// docs/SNAPSHOT_FORMAT.md.
package phl

import (
	"io"

	"rnknn/internal/snapio"
)

// codecVersion is the PHL section layout version.
const codecVersion uint16 = 2

// WriteTo serializes the index (io.WriterTo).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	sw := snapio.NewWriter(w)
	sw.U16(codecVersion)
	sw.RawI32s(x.off)
	sw.RawI32s(x.hubs)
	sw.RawI32s(x.dist)
	return sw.Result()
}

// Read deserializes an index written by WriteTo for a graph of numVertices
// vertices, validating the CSR invariants. When sr aliases a mapped
// snapshot, the label arrays are views of the mapping and the per-element
// monotonicity scan is skipped (it would fault in every label page —
// mapped opens trust the snapshot; dimensions are still checked).
func Read(sr *snapio.Source, numVertices int) (*Index, error) {
	x := &Index{}
	switch v := sr.U16(); {
	case sr.Err() != nil:
	case v == 1:
		x.off, x.hubs, x.dist = sr.I32s(), sr.I32s(), sr.I32s()
	case v == codecVersion:
		x.off, x.hubs, x.dist = sr.AlignedI32s(), sr.AlignedI32s(), sr.AlignedI32s()
	default:
		sr.Failf("phl codec version %d (want 1 or %d)", v, codecVersion)
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	n := numVertices
	if len(x.off) != n+1 || x.off[0] != 0 || int(x.off[n]) != len(x.hubs) || len(x.hubs) != len(x.dist) {
		sr.Failf("phl label CSR is inconsistent for %d vertices", n)
		return nil, sr.Err()
	}
	if !sr.Aliasing() {
		for v := 0; v < n; v++ {
			if x.off[v] > x.off[v+1] {
				sr.Failf("phl offsets not monotone at %d", v)
				return nil, sr.Err()
			}
		}
	}
	return x, nil
}
