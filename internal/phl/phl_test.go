package phl_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/ch"
	"rnknn/internal/dijkstra"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/phl"
)

func testGraph(t testing.TB, seed int64, rows, cols int) *graph.Graph {
	t.Helper()
	return gen.Network(gen.NetworkSpec{Name: "t", Rows: rows, Cols: cols, Seed: seed})
}

func TestDistanceMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 91, 16, 16)
	x := phl.Build(g, nil)
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		if got, want := x.Distance(s, tv), solver.Distance(s, tv); got != want {
			t.Fatalf("d(%d,%d) = %d, want %d", s, tv, got, want)
		}
	}
}

func TestDistanceTravelTime(t *testing.T) {
	g := testGraph(t, 92, 14, 14).View(graph.TravelTime)
	x := phl.Build(g, nil)
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		if got, want := x.Distance(s, tv), solver.Distance(s, tv); got != want {
			t.Fatalf("time d(%d,%d) = %d, want %d", s, tv, got, want)
		}
	}
}

func TestSharedHierarchy(t *testing.T) {
	g := testGraph(t, 93, 10, 10)
	h := ch.Build(g)
	x := phl.Build(g, h)
	solver := dijkstra.NewSolver(g)
	for trial := int32(0); trial < 40; trial++ {
		s, tv := trial%17, (trial*7)%31
		if got, want := x.Distance(s, tv), solver.Distance(s, tv); got != want {
			t.Fatalf("d(%d,%d) = %d, want %d", s, tv, got, want)
		}
	}
}

func TestLabelStats(t *testing.T) {
	g := testGraph(t, 94, 12, 12)
	x := phl.Build(g, nil)
	avg := x.AvgLabelSize()
	if avg < 1 {
		t.Fatalf("AvgLabelSize = %v; every vertex labels itself at least", avg)
	}
	if avg > float64(g.NumVertices())/2 {
		t.Fatalf("AvgLabelSize = %v; pruning is not working", avg)
	}
	if x.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestTimeLabelsSmallerThanDistance(t *testing.T) {
	// The paper observes PHL labels shrink on travel-time graphs thanks to
	// highway hierarchies (Section 7.2 / B.2); verify the substitute
	// preserves that direction on a network large enough to have tiers.
	g := testGraph(t, 95, 24, 24)
	xd := phl.Build(g, nil)
	xt := phl.Build(g.View(graph.TravelTime), nil)
	if xt.AvgLabelSize() >= xd.AvgLabelSize()*1.25 {
		t.Fatalf("time labels (%.1f) much larger than distance labels (%.1f)",
			xt.AvgLabelSize(), xd.AvgLabelSize())
	}
}

func TestSelfDistance(t *testing.T) {
	g := testGraph(t, 96, 8, 8)
	x := phl.Build(g, nil)
	if d := x.Distance(9, 9); d != 0 {
		t.Fatalf("self distance %d", d)
	}
}
