// Package phl provides the hub-labeling distance oracle that stands in for
// Pruned Highway Labeling in the IER compositions (Section 5; see DESIGN.md
// Substitutions). Labels are built by pruned landmark labeling (Akiba et
// al.): pruned Dijkstras from vertices in importance order — here the
// contraction-hierarchy rank, which yields small labels on road networks.
// A query is a linear merge of two sorted hub lists, the same microsecond
// lookup profile as PHL; like PHL, labels are smaller on travel-time graphs
// whose hierarchies prune more aggressively (Section 7.2, Appendix B.2).
package phl

import (
	"rnknn/internal/ch"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/pqueue"
)

// Index is a built hub labeling.
type Index struct {
	// Per-vertex labels in CSR form, sorted by hub id: the label of v is
	// hubs[off[v]:off[v+1]] with distances dist[off[v]:off[v+1]]. Hub ids
	// are importance ranks (0 = most important) so merge order correlates
	// with pruning order.
	off  []int32
	hubs []int32
	dist []int32
}

// Name implements knn.DistanceOracle.
func (x *Index) Name() string { return "PHL" }

// Build constructs the labeling for g. If hierarchy is nil a contraction
// hierarchy is built internally to obtain the vertex ordering.
func Build(g *graph.Graph, hierarchy *ch.Index) *Index {
	if hierarchy == nil {
		hierarchy = ch.Build(g)
	}
	n := g.NumVertices()
	// order[i] = vertex with importance i (0 = most important).
	order := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		order[int32(n)-1-hierarchy.Rank(v)] = v
	}
	importance := make([]int32, n)
	for i, v := range order {
		importance[v] = int32(i)
	}

	// Growable per-vertex labels during construction.
	labHubs := make([][]int32, n)
	labDist := make([][]int32, n)

	// query returns the current labeled distance between u and v; labels
	// are sorted by hub id, so a merge join suffices.
	query := func(u, v int32) graph.Dist {
		hu, du := labHubs[u], labDist[u]
		hv, dv := labHubs[v], labDist[v]
		best := graph.Inf
		i, j := 0, 0
		for i < len(hu) && j < len(hv) {
			switch {
			case hu[i] == hv[j]:
				if d := graph.Dist(du[i]) + graph.Dist(dv[j]); d < best {
					best = d
				}
				i++
				j++
			case hu[i] < hv[j]:
				i++
			default:
				j++
			}
		}
		return best
	}

	dists := make([]graph.Dist, n)
	stamp := make([]uint32, n)
	var cur uint32
	q := pqueue.NewQueue(1024)
	for rank, root := range order {
		cur++
		q.Reset()
		dists[root] = 0
		stamp[root] = cur
		q.Push(root, 0)
		for !q.Empty() {
			it := q.Pop()
			v := it.ID
			d := graph.Dist(it.Key)
			if stamp[v] != cur || d > dists[v] {
				continue
			}
			// Prune: if existing labels already certify a distance <= d,
			// the root does not need to cover v (nor anything beyond it).
			if query(root, v) <= d {
				continue
			}
			labHubs[v] = append(labHubs[v], int32(rank))
			labDist[v] = append(labDist[v], int32(d))
			ts, ws := g.Neighbors(v)
			for i, t := range ts {
				nd := d + graph.Dist(ws[i])
				if stamp[t] != cur || nd < dists[t] {
					dists[t] = nd
					stamp[t] = cur
					q.Push(t, int64(nd))
				}
			}
		}
	}

	// Pack into CSR.
	x := &Index{off: make([]int32, n+1)}
	total := 0
	for v := 0; v < n; v++ {
		total += len(labHubs[v])
		x.off[v+1] = int32(total)
	}
	x.hubs = make([]int32, total)
	x.dist = make([]int32, total)
	for v := 0; v < n; v++ {
		copy(x.hubs[x.off[v]:], labHubs[v])
		copy(x.dist[x.off[v]:], labDist[v])
	}
	return x
}

// Distance implements knn.DistanceOracle by merging the two hub lists.
func (x *Index) Distance(s, t int32) graph.Dist {
	if s == t {
		return 0
	}
	i, iEnd := x.off[s], x.off[s+1]
	j, jEnd := x.off[t], x.off[t+1]
	best := graph.Inf
	for i < iEnd && j < jEnd {
		hi, hj := x.hubs[i], x.hubs[j]
		switch {
		case hi == hj:
			if d := graph.Dist(x.dist[i]) + graph.Dist(x.dist[j]); d < best {
				best = d
			}
			i++
			j++
		case hi < hj:
			i++
		default:
			j++
		}
	}
	return best
}

// AvgLabelSize returns the mean number of label entries per vertex (the
// label-size statistic behind PHL's index size, Figures 8 and 26).
func (x *Index) AvgLabelSize() float64 {
	return float64(len(x.hubs)) / float64(len(x.off)-1)
}

// SizeBytes estimates the index footprint.
func (x *Index) SizeBytes() int {
	return len(x.off)*4 + len(x.hubs)*4 + len(x.dist)*4
}

var _ knn.DistanceOracle = (*Index)(nil)
