package scratch

import (
	"testing"

	"rnknn/internal/graph"
)

func TestDists(t *testing.T) {
	d := NewDists(8)
	// Usable before any Reset: the zero stamp must not read as live.
	if got := d.Get(3); got != graph.Inf {
		t.Fatalf("fresh Get = %d, want Inf", got)
	}
	d.Set(3, 42)
	if got := d.Get(3); got != 42 {
		t.Fatalf("Get after Set = %d, want 42", got)
	}
	d.Reset()
	if got := d.Get(3); got != graph.Inf {
		t.Fatalf("Get after Reset = %d, want Inf", got)
	}
}

func TestSet(t *testing.T) {
	s := NewSet(8)
	if s.Contains(5) {
		t.Fatal("fresh set contains 5")
	}
	s.Add(5)
	if !s.Contains(5) {
		t.Fatal("set lost 5")
	}
	s.Remove(5)
	if s.Contains(5) {
		t.Fatal("Remove left 5 behind")
	}
	s.Add(5)
	s.Reset()
	if s.Contains(5) {
		t.Fatal("Reset left 5 behind")
	}
}

func TestMap32(t *testing.T) {
	m := NewMap32(8)
	if _, ok := m.Get(2); ok {
		t.Fatal("fresh map has key 2")
	}
	m.Put(2, 7)
	if v, ok := m.Get(2); !ok || v != 7 {
		t.Fatalf("Get(2) = %d, %v; want 7, true", v, ok)
	}
	m.Put(2, 9)
	if v, _ := m.Get(2); v != 9 {
		t.Fatalf("overwrite: Get(2) = %d, want 9", v)
	}
	m.Reset()
	if _, ok := m.Get(2); ok {
		t.Fatal("Reset left key 2 behind")
	}
}

// TestGenerationWrap drives the generation counter across its 32-bit wrap
// and checks that stale stamps from before the wrap are not misread as
// live entries afterwards.
func TestGenerationWrap(t *testing.T) {
	s := NewSet(4)
	s.Add(1)
	s.cur = ^uint32(0) // next Reset wraps
	// Slot 2's stamp happens to equal the post-wrap generation (1): the
	// wrap-time clear must erase it.
	s.stamp[2] = 1
	s.Reset()
	if s.cur != 1 {
		t.Fatalf("post-wrap generation = %d, want 1", s.cur)
	}
	if s.Contains(1) || s.Contains(2) {
		t.Fatal("stale pre-wrap stamps survived the wrap")
	}

	d := NewDists(4)
	d.Reset()
	d.Set(0, 5)
	d.cur = ^uint32(0)
	d.stamp[3] = 1
	d.Reset()
	if d.Get(0) != graph.Inf || d.Get(3) != graph.Inf {
		t.Fatal("stale distances survived the wrap")
	}

	m := NewMap32(4)
	m.Put(0, 1)
	m.cur = ^uint32(0)
	m.stamp[3] = 1
	m.Reset()
	if _, ok := m.Get(0); ok {
		t.Fatal("stale map entry survived the wrap")
	}
	if _, ok := m.Get(3); ok {
		t.Fatal("colliding stamp survived the wrap")
	}
}

// TestResetIsAllocationFree pins the O(1)-reset contract: steady-state
// Reset plus use performs no heap allocations.
func TestResetIsAllocationFree(t *testing.T) {
	d := NewDists(64)
	s := NewSet(64)
	m := NewMap32(64)
	allocs := testing.AllocsPerRun(100, func() {
		d.Reset()
		d.Set(7, 1)
		s.Reset()
		s.Add(7)
		m.Reset()
		m.Put(7, 7)
	})
	if allocs != 0 {
		t.Fatalf("steady-state reset allocates %v allocs/op, want 0", allocs)
	}
}
