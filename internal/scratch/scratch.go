// Package scratch provides the reusable, epoch-stamped scratch containers
// behind the zero-allocation query hot paths (the Section 6.2 lesson —
// pre-allocate working storage once, reset it in O(1) — applied uniformly).
//
// Every container pairs its payload array with a generation-stamp array:
// an entry is live only when its stamp equals the container's current
// generation, so Reset is a single counter increment instead of a clear.
// When the 32-bit generation wraps, the stamp array is cleared once — an
// O(n) event every 2^32-1 resets, amortized to nothing.
//
// Containers are not safe for concurrent use; each query session owns its
// own set.
package scratch

import "rnknn/internal/graph"

// Dists is a stamped distance array — the reusable form of the
// dist/stamp pairs the Dijkstra-style scans (INE, ROAD, the solvers)
// embed inline: reset per query by generation counter rather than by
// refilling with +Inf.
type Dists struct {
	dist  []graph.Dist
	stamp []uint32
	cur   uint32
}

// NewDists returns a stamped distance array over n slots.
func NewDists(n int) *Dists {
	return &Dists{dist: make([]graph.Dist, n), stamp: make([]uint32, n), cur: 1}
}

// Len returns the number of slots.
func (d *Dists) Len() int { return len(d.dist) }

// Reset invalidates every entry in O(1).
func (d *Dists) Reset() {
	d.cur++
	if d.cur == 0 { // wrapped: clear once, then restart at generation 1
		for i := range d.stamp {
			d.stamp[i] = 0
		}
		d.cur = 1
	}
}

// Get returns the distance of v, or graph.Inf when v has no entry this
// generation.
func (d *Dists) Get(v int32) graph.Dist {
	if d.stamp[v] != d.cur {
		return graph.Inf
	}
	return d.dist[v]
}

// Set records the distance of v for the current generation.
func (d *Dists) Set(v int32, dist graph.Dist) {
	d.dist[v] = dist
	d.stamp[v] = d.cur
}

// Set is a stamped membership set over [0, n): the "evicted"/"seen"
// container that replaces per-query map[int32]bool allocations. The zero
// generation trick makes Clear-all O(1).
type Set struct {
	stamp []uint32
	cur   uint32
}

// NewSet returns a stamped set over n slots.
func NewSet(n int) *Set {
	return &Set{stamp: make([]uint32, n), cur: 1}
}

// Len returns the number of slots.
func (s *Set) Len() int { return len(s.stamp) }

// Reset empties the set in O(1).
func (s *Set) Reset() {
	s.cur++
	if s.cur == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.cur = 1
	}
}

// Add inserts v.
func (s *Set) Add(v int32) { s.stamp[v] = s.cur }

// Remove deletes v.
func (s *Set) Remove(v int32) { s.stamp[v] = 0 }

// Contains reports whether v is in the set.
func (s *Set) Contains(v int32) bool { return s.stamp[v] == s.cur }

// Map32 is a stamped sparse int32-to-int32 map over keys in [0, n): the
// allocation-free replacement for the per-query (and per-build-step)
// map[int32]int32 position maps. Lookup and store are array indexing.
type Map32 struct {
	val   []int32
	stamp []uint32
	cur   uint32
}

// NewMap32 returns a stamped map over n key slots.
func NewMap32(n int) *Map32 {
	return &Map32{val: make([]int32, n), stamp: make([]uint32, n), cur: 1}
}

// Len returns the number of key slots.
func (m *Map32) Len() int { return len(m.val) }

// Reset empties the map in O(1).
func (m *Map32) Reset() {
	m.cur++
	if m.cur == 0 {
		for i := range m.stamp {
			m.stamp[i] = 0
		}
		m.cur = 1
	}
}

// Get returns the value stored under k and whether k is present.
func (m *Map32) Get(k int32) (int32, bool) {
	if m.stamp[k] != m.cur {
		return 0, false
	}
	return m.val[k], true
}

// Put stores v under k.
func (m *Map32) Put(k, v int32) {
	m.val[k] = v
	m.stamp[k] = m.cur
}
