package partition_test

import (
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/partition"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return gen.Network(gen.NetworkSpec{Name: "t", Rows: 20, Cols: 20, Seed: 12})
}

func TestBuildCoversAllVerticesOnce(t *testing.T) {
	g := testGraph(t)
	tr := partition.Build(g, partition.Options{Fanout: 4, MaxLeafSize: 30})
	seen := make([]int, g.NumVertices())
	for _, li := range tr.Leaves() {
		for _, v := range tr.Nodes[li].Vertices {
			seen[v]++
		}
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d in %d leaves", v, c)
		}
	}
}

func TestLeafSizeRespected(t *testing.T) {
	g := testGraph(t)
	tr := partition.Build(g, partition.Options{Fanout: 4, MaxLeafSize: 25})
	for _, li := range tr.Leaves() {
		n := len(tr.Nodes[li].Vertices)
		if n > 25 {
			t.Fatalf("leaf with %d > 25 vertices", n)
		}
		if n == 0 {
			t.Fatal("empty leaf")
		}
	}
}

func TestMaxLevelsRespected(t *testing.T) {
	g := testGraph(t)
	tr := partition.Build(g, partition.Options{Fanout: 2, MaxLevels: 3})
	if h := tr.Height(); h != 4 {
		t.Fatalf("height = %d, want 4 (levels 0..3)", h)
	}
}

func TestContainsAndPartOf(t *testing.T) {
	g := testGraph(t)
	tr := partition.Build(g, partition.Options{Fanout: 4, MaxLeafSize: 40})
	for v := int32(0); v < int32(g.NumVertices()); v += 17 {
		leaf := tr.LeafOf[v]
		if !tr.Nodes[leaf].IsLeaf() {
			t.Fatalf("LeafOf[%d] is not a leaf", v)
		}
		// v must be contained in every ancestor and in no sibling subtree.
		n := leaf
		for n != -1 {
			if !tr.Contains(n, v) {
				t.Fatalf("ancestor %d does not contain %d", n, v)
			}
			parent := tr.Nodes[n].Parent
			if parent != -1 {
				for _, sib := range tr.Nodes[parent].Children {
					if sib != n && tr.Contains(sib, v) {
						t.Fatalf("sibling %d also contains %d", sib, v)
					}
				}
			}
			n = parent
		}
		if tr.PartOf(v, 0) != 0 {
			t.Fatal("PartOf level 0 must be root")
		}
	}
}

func TestChildrenPartitionParent(t *testing.T) {
	g := testGraph(t)
	tr := partition.Build(g, partition.Options{Fanout: 4, MaxLeafSize: 40})
	for ni := range tr.Nodes {
		node := &tr.Nodes[ni]
		if node.IsLeaf() {
			continue
		}
		total := 0
		for _, c := range node.Children {
			total += len(tr.Nodes[c].Vertices)
		}
		if total != len(node.Vertices) {
			t.Fatalf("node %d: children cover %d of %d vertices", ni, total, len(node.Vertices))
		}
	}
}

func TestBalanceReasonable(t *testing.T) {
	g := testGraph(t)
	tr := partition.Build(g, partition.Options{Fanout: 4, MaxLeafSize: 40})
	root := tr.Nodes[0]
	for _, c := range root.Children {
		frac := float64(len(tr.Nodes[c].Vertices)) / float64(g.NumVertices())
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("root child holds %.2f of vertices", frac)
		}
	}
}

func TestRefinementReducesOrKeepsCut(t *testing.T) {
	g := testGraph(t)
	noRefine := partition.Build(g, partition.Options{Fanout: 4, MaxLeafSize: 40, RefinePasses: -1})
	refined := partition.Build(g, partition.Options{Fanout: 4, MaxLeafSize: 40, RefinePasses: 3})
	if refined.CutEdges(g) > noRefine.CutEdges(g) {
		t.Fatalf("refinement increased cut: %d > %d", refined.CutEdges(g), noRefine.CutEdges(g))
	}
}

func TestExtractCSR(t *testing.T) {
	g := testGraph(t)
	tr := partition.Build(g, partition.Options{Fanout: 4, MaxLeafSize: 30})
	leaf := tr.Leaves()[0]
	verts := tr.Nodes[leaf].Vertices
	off, tgt, w := partition.ExtractCSR(g, verts)
	if len(off) != len(verts)+1 {
		t.Fatal("offsets length")
	}
	// Every local edge must correspond to a real edge with matching weight.
	for li := 0; li < len(verts); li++ {
		for e := off[li]; e < off[li+1]; e++ {
			u, v := verts[li], verts[tgt[e]]
			gw, ok := g.EdgeWeightBetween(u, v)
			if !ok || gw != w[e] {
				t.Fatalf("local edge %d-%d weight %d mismatch (%d,%v)", u, v, w[e], gw, ok)
			}
		}
	}
	// Count of local directed edges must equal internal edges of the leaf.
	inLeaf := map[int32]bool{}
	for _, v := range verts {
		inLeaf[v] = true
	}
	wantEdges := int32(0)
	for _, u := range verts {
		ts, _ := g.Neighbors(u)
		for _, v := range ts {
			if inLeaf[v] {
				wantEdges++
			}
		}
	}
	if off[len(verts)] != wantEdges {
		t.Fatalf("extracted %d edges, want %d", off[len(verts)], wantEdges)
	}
}
