// Binary codec for the partition tree, embedded inside the G-tree and ROAD
// snapshot sections (both indexes are hierarchies over a Tree, and the tree
// itself is the one build product the cheap derived fields cannot be
// recomputed from). Encode always emits the raw layout (per-node arrays
// 64-byte-aligned so a mapped snapshot aliases them); Decode reads either
// layout, selected by the embedding section's codec version via raw. See
// docs/SNAPSHOT_FORMAT.md.
package partition

import (
	"rnknn/internal/snapio"
)

// Encode serializes t into w. The layout is: fanout u32, node count u32,
// then per node parent i32, level i32, leafLo i32, leafHi i32, children
// []int32, vertices []int32; then LeafOf []int32 and LeafSeq []int32. The
// variable-length arrays use the snapio raw 64-byte-aligned layout.
func Encode(t *Tree, w *snapio.Writer) {
	w.U32(uint32(t.Fanout))
	w.U32(uint32(len(t.Nodes)))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		w.U32(uint32(n.Parent))
		w.U32(uint32(n.Level))
		w.U32(uint32(n.LeafLo))
		w.U32(uint32(n.LeafHi))
		w.RawI32s(n.Children)
		w.RawI32s(n.Vertices)
	}
	w.RawI32s(t.LeafOf)
	w.RawI32s(t.LeafSeq)
}

// maxTreeNodes bounds the node count read from a snapshot so a corrupt
// prefix cannot drive a huge allocation (the deepest real hierarchies are a
// few thousand nodes).
const maxTreeNodes = 1 << 26

// Decode reads a tree written by Encode for a graph of numVertices vertices,
// validating structural invariants (indexes in range, per-vertex maps the
// right length). raw selects the 64-byte-aligned array layout (v2 G-tree and
// ROAD sections) versus the legacy element-streamed one; with an aliasing
// source the arrays are views of the mapping and the per-element range scans
// are skipped. On any inconsistency Decode records an error on r and returns
// nil.
func Decode(r *snapio.Source, numVertices int, raw bool) *Tree {
	i32s := r.I32s
	if raw {
		i32s = r.AlignedI32s
	}
	t := &Tree{Fanout: int(r.U32())}
	count := int(r.U32())
	if r.Err() != nil {
		return nil
	}
	if count <= 0 || count > maxTreeNodes {
		r.Failf("partition tree has implausible node count %d", count)
		return nil
	}
	t.Nodes = make([]Node, count)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		n.Parent = int32(r.U32())
		n.Level = int32(r.U32())
		n.LeafLo = int32(r.U32())
		n.LeafHi = int32(r.U32())
		n.Children = i32s()
		n.Vertices = i32s()
		if r.Err() != nil {
			return nil
		}
		if (i == 0) != (n.Parent == -1) {
			r.Failf("partition node %d parent %d (only the root may be -1)", i, n.Parent)
			return nil
		}
		if i > 0 && (n.Parent < 0 || int(n.Parent) >= count) {
			r.Failf("partition node %d parent %d out of range", i, n.Parent)
			return nil
		}
		for _, c := range n.Children {
			if c <= 0 || int(c) >= count {
				r.Failf("partition node %d child %d out of range", i, c)
				return nil
			}
		}
		if !r.Aliasing() {
			for _, v := range n.Vertices {
				if v < 0 || int(v) >= numVertices {
					r.Failf("partition node %d vertex %d out of range", i, v)
					return nil
				}
			}
		}
	}
	t.LeafOf = i32s()
	t.LeafSeq = i32s()
	if r.Err() != nil {
		return nil
	}
	if len(t.LeafOf) != numVertices || len(t.LeafSeq) != numVertices {
		r.Failf("partition vertex maps have %d/%d entries for %d vertices",
			len(t.LeafOf), len(t.LeafSeq), numVertices)
		return nil
	}
	if !r.Aliasing() {
		for v, li := range t.LeafOf {
			if li < 0 || int(li) >= count || !t.Nodes[li].IsLeaf() {
				r.Failf("vertex %d mapped to invalid leaf %d", v, li)
				return nil
			}
		}
	}
	return t
}
