// Package partition builds the hierarchical road-network partition consumed
// by both the G-tree and ROAD indexes. The paper uses the same multilevel
// partitioner for both methods (Section 7.2); here the multilevel scheme is
// geometric recursive bisection (road networks are planar, so median splits
// on the wider axis give balanced parts) followed by a KL-style boundary
// refinement pass that moves border vertices between sibling parts when that
// reduces the edge cut.
package partition

import (
	"sort"

	"rnknn/internal/graph"
)

// Node is one node of the partition tree: a subgraph of its parent.
type Node struct {
	Parent   int32
	Children []int32
	// Vertices is the sorted vertex set of the subgraph. It is populated
	// for every node; leaf nodes are the only ones whose sets the indexes
	// iterate in hot paths, but construction uses the others too.
	Vertices []int32
	Level    int32
	// LeafLo and LeafHi delimit the DFS leaf-sequence range covered by this
	// node's subtree; together with Tree.LeafSeq they answer "is vertex v
	// inside this subgraph" in O(1).
	LeafLo, LeafHi int32
}

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Tree is the partition hierarchy. Nodes[0] is the root (the whole graph).
type Tree struct {
	Fanout int
	Nodes  []Node
	// LeafOf maps each vertex to its leaf node index.
	LeafOf []int32
	// LeafSeq maps each vertex to the DFS order index of its leaf.
	LeafSeq []int32
}

// Contains reports whether vertex v lies in the subgraph of node n.
func (t *Tree) Contains(n int32, v int32) bool {
	seq := t.LeafSeq[v]
	return seq >= t.Nodes[n].LeafLo && seq < t.Nodes[n].LeafHi
}

// AncestorAt returns the ancestor of node n at the given level (level 0 is
// the root). If n's level is below the requested level, n itself is
// returned.
func (t *Tree) AncestorAt(n int32, level int32) int32 {
	for t.Nodes[n].Level > level {
		n = t.Nodes[n].Parent
	}
	return n
}

// PartOf returns the ancestor node of vertex v at the given level.
func (t *Tree) PartOf(v int32, level int32) int32 {
	return t.AncestorAt(t.LeafOf[v], level)
}

// Height returns the maximum node level plus one.
func (t *Tree) Height() int {
	h := int32(0)
	for i := range t.Nodes {
		if t.Nodes[i].Level > h {
			h = t.Nodes[i].Level
		}
	}
	return int(h) + 1
}

// Leaves returns the leaf node indexes in DFS order.
func (t *Tree) Leaves() []int32 {
	var out []int32
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() {
			out = append(out, int32(i))
		}
	}
	sort.Slice(out, func(a, b int) bool { return t.Nodes[out[a]].LeafLo < t.Nodes[out[b]].LeafLo })
	return out
}

// Options configures Build.
type Options struct {
	// Fanout is the number of children per internal node (paper default 4).
	Fanout int
	// MaxLeafSize stops recursion once a part has at most this many
	// vertices (G-tree's tau). Zero means "use MaxLevels only".
	MaxLeafSize int
	// MaxLevels caps the hierarchy depth (ROAD's l); the root is level 0.
	// Zero means unlimited.
	MaxLevels int
	// RefinePasses is the number of KL boundary refinement sweeps per
	// split (default 2).
	RefinePasses int
}

func (o Options) withDefaults() Options {
	if o.Fanout < 2 {
		o.Fanout = 4
	}
	if o.MaxLeafSize <= 0 && o.MaxLevels <= 0 {
		o.MaxLeafSize = 128
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 2
	}
	return o
}

// Build constructs the partition tree for g.
func Build(g *graph.Graph, opts Options) *Tree {
	opts = opts.withDefaults()
	n := g.NumVertices()
	t := &Tree{
		Fanout:  opts.Fanout,
		LeafOf:  make([]int32, n),
		LeafSeq: make([]int32, n),
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	t.Nodes = append(t.Nodes, Node{Parent: -1, Vertices: all, Level: 0})
	leafCounter := int32(0)
	b := &builder{g: g, t: t, opts: opts, part: make([]int8, n)}
	b.recurse(0, &leafCounter)
	return t
}

type builder struct {
	g    *graph.Graph
	t    *Tree
	opts Options
	// part is a scratch per-vertex label reused across splits; labels are
	// meaningful only for the vertex subset being split.
	part []int8
}

func (b *builder) recurse(ni int32, leafCounter *int32) {
	node := &b.t.Nodes[ni]
	stop := false
	if b.opts.MaxLeafSize > 0 && len(node.Vertices) <= b.opts.MaxLeafSize {
		stop = true
	}
	if b.opts.MaxLevels > 0 && int(node.Level) >= b.opts.MaxLevels {
		stop = true
	}
	if len(node.Vertices) < 2*b.opts.Fanout {
		stop = true
	}
	if stop {
		node.LeafLo = *leafCounter
		node.LeafHi = *leafCounter + 1
		for _, v := range node.Vertices {
			b.t.LeafOf[v] = ni
			b.t.LeafSeq[v] = *leafCounter
		}
		*leafCounter++
		return
	}

	parts := b.split(node.Vertices, b.opts.Fanout)
	level := node.Level + 1
	lo := *leafCounter
	var childIdx []int32
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
		b.t.Nodes = append(b.t.Nodes, Node{Parent: ni, Vertices: p, Level: level})
		childIdx = append(childIdx, int32(len(b.t.Nodes)-1))
	}
	// node pointer may be stale after append; reacquire.
	b.t.Nodes[ni].Children = childIdx
	for _, ci := range childIdx {
		b.recurse(ci, leafCounter)
	}
	b.t.Nodes[ni].LeafLo = lo
	b.t.Nodes[ni].LeafHi = *leafCounter
}

// split partitions verts into up to fanout balanced parts by repeatedly
// bisecting the largest part geometrically and refining the boundary.
func (b *builder) split(verts []int32, fanout int) [][]int32 {
	parts := [][]int32{verts}
	for len(parts) < fanout {
		// Pick the largest part to bisect next.
		bi := 0
		for i := range parts {
			if len(parts[i]) > len(parts[bi]) {
				bi = i
			}
		}
		if len(parts[bi]) < 2 {
			break
		}
		a, c := b.bisect(parts[bi])
		parts[bi] = a
		parts = append(parts, c)
	}
	return parts
}

// bisect splits verts into two halves by the median of the wider coordinate
// axis, then runs KL-style boundary refinement.
func (b *builder) bisect(verts []int32) ([]int32, []int32) {
	g := b.g
	minX, maxX := g.X[verts[0]], g.X[verts[0]]
	minY, maxY := g.Y[verts[0]], g.Y[verts[0]]
	for _, v := range verts {
		if g.X[v] < minX {
			minX = g.X[v]
		}
		if g.X[v] > maxX {
			maxX = g.X[v]
		}
		if g.Y[v] < minY {
			minY = g.Y[v]
		}
		if g.Y[v] > maxY {
			maxY = g.Y[v]
		}
	}
	byX := maxX-minX >= maxY-minY
	sorted := append([]int32(nil), verts...)
	if byX {
		sort.Slice(sorted, func(i, j int) bool { return g.X[sorted[i]] < g.X[sorted[j]] })
	} else {
		sort.Slice(sorted, func(i, j int) bool { return g.Y[sorted[i]] < g.Y[sorted[j]] })
	}
	mid := len(sorted) / 2
	for _, v := range sorted[:mid] {
		b.part[v] = 0
	}
	for _, v := range sorted[mid:] {
		b.part[v] = 1
	}
	b.refine(sorted, mid)
	var a, c []int32
	for _, v := range sorted {
		if b.part[v] == 0 {
			a = append(a, v)
		} else {
			c = append(c, v)
		}
	}
	return a, c
}

// refine performs KL-style single-vertex moves: a vertex on the boundary is
// moved to the other side when that strictly reduces the number of cut edges
// and keeps the sides within 10% of balance. Edges leaving the vert subset
// are ignored (they are cut at a higher level regardless).
func (b *builder) refine(verts []int32, mid int) {
	g := b.g
	inSet := make(map[int32]bool, len(verts))
	for _, v := range verts {
		inSet[v] = true
	}
	sizes := [2]int{mid, len(verts) - mid}
	minSize := len(verts)*2/5 - 1
	for pass := 0; pass < b.opts.RefinePasses; pass++ {
		moved := 0
		for _, v := range verts {
			ts, _ := g.Neighbors(v)
			same, other := 0, 0
			for _, t := range ts {
				if !inSet[t] {
					continue
				}
				if b.part[t] == b.part[v] {
					same++
				} else {
					other++
				}
			}
			if other > same && sizes[b.part[v]]-1 > minSize {
				sizes[b.part[v]]--
				b.part[v] ^= 1
				sizes[b.part[v]]++
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// CutEdges returns the number of undirected edges of g whose endpoints lie
// in different leaf parts (a partition quality metric used in tests).
func (t *Tree) CutEdges(g *graph.Graph) int {
	cut := 0
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		ts, _ := g.Neighbors(u)
		for _, v := range ts {
			if v > u && t.LeafOf[u] != t.LeafOf[v] {
				cut++
			}
		}
	}
	return cut
}

// ExtractCSR builds a small standalone CSR subgraph over the given sorted
// vertex subset of g, keeping only edges with both endpoints inside. It
// returns the local offsets/targets/weights (weights taken from g's active
// weights) and the local index of each input vertex (identity order).
func ExtractCSR(g *graph.Graph, verts []int32) (offsets []int32, targets []int32, weights []int32) {
	local := make(map[int32]int32, len(verts))
	for i, v := range verts {
		local[v] = int32(i)
	}
	offsets = make([]int32, len(verts)+1)
	for i, v := range verts {
		ts, _ := g.Neighbors(v)
		cnt := int32(0)
		for _, t := range ts {
			if _, ok := local[t]; ok {
				cnt++
			}
		}
		offsets[i+1] = offsets[i] + cnt
	}
	m := offsets[len(verts)]
	targets = make([]int32, m)
	weights = make([]int32, m)
	pos := int32(0)
	for _, v := range verts {
		ts, ws := g.Neighbors(v)
		for j, t := range ts {
			if li, ok := local[t]; ok {
				targets[pos] = li
				weights[pos] = ws[j]
				pos++
			}
		}
	}
	return offsets, targets, weights
}
