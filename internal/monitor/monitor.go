// Package monitor is the continuous-kNN core: the state a moving query
// session needs to keep its kNN result set provably exact while avoiding
// re-running the search at (almost) every step.
//
// A navigation client advances along a route one edge at a time and re-asks
// the same kNN question from each vertex. Most of those re-queries are
// redundant, and the Tracker makes the redundancy checkable: every
// re-expansion pins the answer at an anchor vertex together with a safe gap
// derived from the (k+1)-th neighbor, and each route step then costs one
// edge-weight addition and one comparison to decide whether the pinned set
// is still exact.
//
// # The safe-region bound
//
// Let the anchor expansion at vertex a return the k+1 nearest objects with
// distances d_1 <= ... <= d_k <= d_{k+1}, and let the query have moved to a
// vertex q with network distance delta = dist(a, q) (upper-bounded by the
// sum of traversed route edge weights, read from the graph's active weight
// view). By the triangle inequality,
//
//	for every pinned member o_i:  dist(q, o_i) <= d_i + delta <= d_k + delta
//	for every other object o:     dist(q, o)   >= d_{k+1} - delta
//
// so while 2*delta <= d_{k+1} - d_k every non-member is at least as far as
// every member, and the pinned set remains a valid kNN answer at q — any
// non-member that catches up can at best tie at the cutoff distance, and a
// tie at the k-th distance admits either choice. When the whole object set
// has at most k members the gap is unbounded: movement alone can never
// change the answer, only object churn can (which the epoch stamp catches).
//
// Between re-expansions the membership is exact but the reported distances
// are as of the last anchor; each drifts from the true value by at most
// delta. A re-expansion refreshes both and emits the resulting deltas.
//
// The Tracker holds the per-session state machine; Diff turns two pinned
// answers into the Enter/Exit/DistChange event stream the serving layer
// forwards. Neither allocates on the safe-step path.
package monitor

import (
	"fmt"

	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

// EventKind classifies one result-set delta.
type EventKind uint8

const (
	// Enter reports an object joining the result set at the stamped step.
	Enter EventKind = iota
	// Exit reports an object leaving the result set.
	Exit
	// DistChange reports a member whose distance changed across a
	// re-expansion while its membership held.
	DistChange
)

// String returns the wire name of the kind ("enter", "exit", "dist_change").
func (k EventKind) String() string {
	switch k {
	case Enter:
		return "enter"
	case Exit:
		return "exit"
	case DistChange:
		return "dist_change"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one result-set delta: an object entering, leaving, or changing
// distance. Dist is meaningful for Enter and DistChange (the network
// distance from the step's refresh anchor) and zero for Exit.
type Event struct {
	Kind   EventKind
	Object int32
	Dist   graph.Dist
}

// RefreshReason says why a step did (or did not) re-run the search.
type RefreshReason uint8

const (
	// RefreshNone: the safe-region check proved the pinned set still exact;
	// no search ran.
	RefreshNone RefreshReason = iota
	// RefreshInitial: the first step of a route has nothing pinned yet.
	RefreshInitial
	// RefreshDrift: accumulated displacement exceeded the safe gap.
	RefreshDrift
	// RefreshEpoch: the object category's epoch advanced (churn landed), so
	// the pinned answer describes a superseded object set.
	RefreshEpoch
	// RefreshJump: the route step was not along an edge, so the
	// displacement has no cheap upper bound.
	RefreshJump
)

// String returns the wire name of the reason.
func (r RefreshReason) String() string {
	switch r {
	case RefreshNone:
		return "none"
	case RefreshInitial:
		return "initial"
	case RefreshDrift:
		return "drift"
	case RefreshEpoch:
		return "epoch"
	case RefreshJump:
		return "jump"
	default:
		return fmt.Sprintf("RefreshReason(%d)", uint8(r))
	}
}

// Update is one route step's output: the step and epoch stamps, whether a
// re-expansion ran (and why), and the result-set deltas against the
// previous step. An empty Events slice means the previous step's result
// set is still the answer.
type Update struct {
	// Step indexes the route vertex this update describes (0-based).
	Step int
	// Vertex is route[Step], the query position.
	Vertex int32
	// Epoch is the object-category epoch the result set is exact for.
	Epoch uint64
	// Refresh reports whether this step re-ran the search (anything but
	// RefreshNone) or was answered by the safe-region check alone.
	Refresh RefreshReason
	// Events are the deltas versus the previous step, exits first.
	Events []Event
}

// Tracker is one continuous query's safe-region state machine. It is
// single-goroutine, like the query session whose lifetime it shares.
//
// The driving loop calls Step once per route vertex; a non-RefreshNone
// return obliges the caller to run a fresh (k+1)-expansion from that vertex
// and hand the answer to Pin before the next Step.
type Tracker struct {
	g *graph.Graph
	k int

	// pinned is the current anchored answer: up to k members with their
	// anchor distances, owned by the tracker (copied in Pin).
	pinned []knn.Result
	// gap is d_{k+1} - d_k at the anchor, or graph.Inf when the expansion
	// found at most k objects (movement can then never change the set).
	gap graph.Dist
	// drift is the accumulated route displacement since the anchor — an
	// upper bound on the network distance to it.
	drift graph.Dist
	// epoch is the object-set version the pinned answer was computed from.
	epoch uint64
	// primed reports that Pin has run at least once.
	primed bool
}

// New returns a Tracker for k-NN monitoring over g. The graph's active
// weight view is the one displacements are measured in, so a travel-time
// view monitors in travel time.
func New(g *graph.Graph, k int) *Tracker {
	return &Tracker{g: g, k: k}
}

// Step advances the query from vertex `from` to vertex `to` under the live
// category epoch and reports whether the pinned answer is still provably
// exact (RefreshNone) or why it must be recomputed. The first call (and any
// call before Pin) is always RefreshInitial. Step never mutates the pinned
// answer; on a refresh verdict the caller re-expands and Pins.
func (t *Tracker) Step(from, to int32, epoch uint64) RefreshReason {
	if !t.primed {
		return RefreshInitial
	}
	if epoch != t.epoch {
		return RefreshEpoch
	}
	if from != to {
		w, ok := edgeWeight(t.g, from, to)
		if !ok {
			return RefreshJump
		}
		t.drift += w
	}
	if t.gap != graph.Inf && 2*t.drift > t.gap {
		return RefreshDrift
	}
	return RefreshNone
}

// Pin anchors a fresh expansion: results must be the (k+1)-nearest answer
// from the current route vertex over the object set of the given epoch
// (fewer than k+1 results means the whole set was smaller). The tracker
// copies the first k results into its own storage and derives the safe gap
// from the (k+1)-th.
func (t *Tracker) Pin(results []knn.Result, epoch uint64) {
	n := len(results)
	if n > t.k {
		n = t.k
	}
	t.pinned = append(t.pinned[:0], results[:n]...)
	if len(results) > t.k {
		t.gap = results[t.k].Dist - results[t.k-1].Dist
	} else {
		// The expansion exhausted the object set: no (k+1)-th object exists,
		// so no displacement can ever promote a non-member.
		t.gap = graph.Inf
	}
	t.drift = 0
	t.epoch = epoch
	t.primed = true
}

// Results returns the pinned members with their anchor distances, in
// nondecreasing distance order. The slice is the tracker's own storage:
// valid until the next Pin, not to be mutated.
func (t *Tracker) Results() []knn.Result { return t.pinned }

// Epoch returns the epoch the pinned answer is exact for.
func (t *Tracker) Epoch() uint64 { return t.epoch }

// Drift returns the accumulated displacement upper bound since the anchor.
func (t *Tracker) Drift() graph.Dist { return t.drift }

// Gap returns the anchor's safe gap (graph.Inf when unbeatable): the pinned
// set stays provably exact while 2*Drift() <= Gap().
func (t *Tracker) Gap() graph.Dist { return t.gap }

// edgeWeight returns the weight of the edge from u to v under the graph's
// active weight view — the per-step displacement of a route move. Parallel
// edges report the minimum weight. ok is false when no such edge exists.
func edgeWeight(g *graph.Graph, u, v int32) (graph.Dist, bool) {
	targets, weights := g.Neighbors(u)
	best, ok := graph.Inf, false
	for i, t := range targets {
		if t == v && graph.Dist(weights[i]) < best {
			best, ok = graph.Dist(weights[i]), true
		}
	}
	return best, ok
}

// Diff appends the Enter/Exit/DistChange events that turn result set old
// into result set new, and returns the extended slice. Exits come first (in
// old's order), then Enters and DistChanges in new's distance order — so a
// replayer applying events in order never holds more than max(len(old),
// len(new)) members. Both inputs must be in nondecreasing distance order
// (as every method returns); sets of size up to ~100 use a linear scan, the
// regime continuous queries live in.
func Diff(old, new []knn.Result, dst []Event) []Event {
	for _, o := range old {
		if _, ok := lookup(new, o.Vertex); !ok {
			dst = append(dst, Event{Kind: Exit, Object: o.Vertex})
		}
	}
	for _, n := range new {
		if d, ok := lookup(old, n.Vertex); !ok {
			dst = append(dst, Event{Kind: Enter, Object: n.Vertex, Dist: n.Dist})
		} else if d != n.Dist {
			dst = append(dst, Event{Kind: DistChange, Object: n.Vertex, Dist: n.Dist})
		}
	}
	return dst
}

// lookup finds vertex v's distance in a small result list.
func lookup(rs []knn.Result, v int32) (graph.Dist, bool) {
	for _, r := range rs {
		if r.Vertex == v {
			return r.Dist, true
		}
	}
	return 0, false
}

// Apply replays one update's events onto a result-set map (object ->
// distance) — the reference replayer the tests and clients use. Exits must
// name present members and Enters absent ones; Apply reports the first
// violation, the "delta stream is internally consistent" check.
func Apply(state map[int32]graph.Dist, events []Event) error {
	for _, e := range events {
		_, present := state[e.Object]
		switch e.Kind {
		case Enter:
			if present {
				return fmt.Errorf("monitor: Enter(%d) but already a member", e.Object)
			}
			state[e.Object] = e.Dist
		case Exit:
			if !present {
				return fmt.Errorf("monitor: Exit(%d) but not a member", e.Object)
			}
			delete(state, e.Object)
		case DistChange:
			if !present {
				return fmt.Errorf("monitor: DistChange(%d) but not a member", e.Object)
			}
			state[e.Object] = e.Dist
		default:
			return fmt.Errorf("monitor: unknown event kind %d", e.Kind)
		}
	}
	return nil
}
