package monitor

import (
	"testing"

	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

// lineGraph is 0-1-2-3-4-5 with every edge weight 10 (both metrics):
// drift accounting is then exact multiples of 10 and the safe-region
// arithmetic is checkable by hand.
func lineGraph(t *testing.T) *graph.Graph {
	t.Helper()
	x := []float64{0, 10, 20, 30, 40, 50}
	y := make([]float64, 6)
	b := graph.NewBuilder(6, x, y)
	for v := int32(0); v < 5; v++ {
		b.AddEdge(v, v+1, 10, 10)
	}
	return b.Build("line")
}

func TestTrackerSafeRegion(t *testing.T) {
	g := lineGraph(t)
	tr := New(g, 2)

	// Nothing pinned yet: any step demands the initial expansion.
	if r := tr.Step(0, 1, 0); r != RefreshInitial {
		t.Fatalf("unprimed Step = %v, want initial", r)
	}

	// Pin a (k+1)-expansion: members {5:5, 4:20}, cutoff 100 → gap 80.
	tr.Pin([]knn.Result{{Vertex: 5, Dist: 5}, {Vertex: 4, Dist: 20}, {Vertex: 3, Dist: 100}}, 0)
	if got := tr.Results(); len(got) != 2 || got[0].Vertex != 5 || got[1].Vertex != 4 {
		t.Fatalf("pinned %v", got)
	}
	if tr.Gap() != 80 {
		t.Fatalf("gap = %d, want 80", tr.Gap())
	}

	// Standing still adds no drift.
	if r := tr.Step(0, 0, 0); r != RefreshNone || tr.Drift() != 0 {
		t.Fatalf("stay-put: %v drift %d", r, tr.Drift())
	}
	// Four edge steps accumulate drift 40: 2*40 = 80 <= gap 80 — the
	// boundary itself is still provably exact (ties are valid kNN choices).
	from := int32(0)
	for _, to := range []int32{1, 2, 3, 4} {
		if r := tr.Step(from, to, 0); r != RefreshNone {
			t.Fatalf("step %d->%d: %v (drift %d)", from, to, r, tr.Drift())
		}
		from = to
	}
	if tr.Drift() != 40 {
		t.Fatalf("drift = %d, want 40", tr.Drift())
	}
	// The fifth step pushes 2*50 > 80.
	if r := tr.Step(4, 5, 0); r != RefreshDrift {
		t.Fatalf("step past gap: %v", r)
	}

	// Re-anchor: epoch change outranks everything.
	tr.Pin([]knn.Result{{Vertex: 5, Dist: 5}, {Vertex: 4, Dist: 20}, {Vertex: 3, Dist: 100}}, 0)
	if r := tr.Step(0, 1, 7); r != RefreshEpoch {
		t.Fatalf("epoch change: %v", r)
	}
	// A non-edge move has no displacement bound.
	if r := tr.Step(0, 2, 0); r != RefreshJump {
		t.Fatalf("jump: %v", r)
	}
}

func TestTrackerExhaustedObjectSet(t *testing.T) {
	g := lineGraph(t)
	tr := New(g, 3)
	// Only 2 objects exist for k=3: no (k+1)-th neighbor, gap unbounded —
	// movement alone can never change the answer.
	tr.Pin([]knn.Result{{Vertex: 1, Dist: 10}, {Vertex: 2, Dist: 20}}, 4)
	if tr.Gap() != graph.Inf {
		t.Fatalf("gap = %d, want Inf", tr.Gap())
	}
	from := int32(0)
	for i := 0; i < 50; i++ {
		to := from + 1
		if to > 5 {
			from, to = 5, 4
		}
		if r := tr.Step(from, to, 4); r != RefreshNone {
			t.Fatalf("walk step %d: %v", i, r)
		}
		from = to
	}
	// But churn still invalidates.
	if r := tr.Step(from, from, 5); r != RefreshEpoch {
		t.Fatalf("epoch under Inf gap: %v", r)
	}
}

func TestTrackerZeroGapTies(t *testing.T) {
	g := lineGraph(t)
	tr := New(g, 1)
	// d_k == d_{k+1} (a tie at the cutoff): gap 0. Standing still is still
	// safe (2*0 <= 0), any movement is not.
	tr.Pin([]knn.Result{{Vertex: 2, Dist: 10}, {Vertex: 3, Dist: 10}}, 0)
	if r := tr.Step(0, 0, 0); r != RefreshNone {
		t.Fatalf("zero-gap stay-put: %v", r)
	}
	if r := tr.Step(0, 1, 0); r != RefreshDrift {
		t.Fatalf("zero-gap move: %v", r)
	}
}

func TestDiffAndApply(t *testing.T) {
	old := []knn.Result{{Vertex: 5, Dist: 10}, {Vertex: 4, Dist: 20}}
	new := []knn.Result{{Vertex: 4, Dist: 15}, {Vertex: 3, Dist: 30}}
	events := Diff(old, new, nil)
	want := []Event{
		{Kind: Exit, Object: 5},
		{Kind: DistChange, Object: 4, Dist: 15},
		{Kind: Enter, Object: 3, Dist: 30},
	}
	if len(events) != len(want) {
		t.Fatalf("events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, events[i], want[i])
		}
	}

	// Replaying the deltas onto old's state reconstructs new exactly.
	state := map[int32]graph.Dist{}
	if err := Apply(state, Diff(nil, old, nil)); err != nil {
		t.Fatal(err)
	}
	if err := Apply(state, events); err != nil {
		t.Fatal(err)
	}
	if len(state) != 2 || state[4] != 15 || state[3] != 30 {
		t.Fatalf("replayed state %v", state)
	}

	// Identical sets produce no events.
	if ev := Diff(new, new, nil); len(ev) != 0 {
		t.Fatalf("self-diff %v", ev)
	}

	// Apply rejects internally inconsistent streams.
	if err := Apply(state, []Event{{Kind: Enter, Object: 4}}); err == nil {
		t.Fatal("Enter of a member not rejected")
	}
	if err := Apply(state, []Event{{Kind: Exit, Object: 99}}); err == nil {
		t.Fatal("Exit of a non-member not rejected")
	}
	if err := Apply(state, []Event{{Kind: DistChange, Object: 99}}); err == nil {
		t.Fatal("DistChange of a non-member not rejected")
	}
}

func TestStringNames(t *testing.T) {
	if Enter.String() != "enter" || Exit.String() != "exit" || DistChange.String() != "dist_change" {
		t.Fatal("event kind wire names changed")
	}
	for r, s := range map[RefreshReason]string{
		RefreshNone: "none", RefreshInitial: "initial", RefreshDrift: "drift",
		RefreshEpoch: "epoch", RefreshJump: "jump",
	} {
		if r.String() != s {
			t.Fatalf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}
