// Binary snapshot codec for TNR: the transit table, per-vertex access-node
// lists, and local cones. The transit marker array is derived from the
// serialized id map; the contraction hierarchy is not duplicated — the
// caller supplies the (already loaded or built) ch.Index, mirroring how
// Build shares it. Layout v2 writes every array 64-byte-aligned (snapio
// raw-array layout) so a mapped snapshot aliases them with zero copy; v1
// payloads (element-streamed) are still read. See docs/SNAPSHOT_FORMAT.md.
package tnr

import (
	"io"

	"rnknn/internal/ch"
	"rnknn/internal/snapio"
)

// codecVersion is the TNR section layout version.
const codecVersion uint16 = 2

// WriteTo serializes the index (io.WriterTo).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	sw := snapio.NewWriter(w)
	sw.U16(codecVersion)
	sw.U32(uint32(x.numT))
	sw.RawI32s(x.transitID)
	sw.RawI64s(x.table)
	sw.RawI32s(x.accOff)
	sw.RawI32s(x.accID)
	sw.RawI64s(x.accD)
	sw.RawI32s(x.coneOff)
	sw.RawI32s(x.coneV)
	sw.RawI64s(x.coneD)
	return sw.Result()
}

// Read deserializes an index written by WriteTo over the given hierarchy
// (the same sharing Build uses), validating table and CSR dimensions. When
// sr aliases a mapped snapshot the arrays are views of the mapping and the
// per-element range scans are skipped (dimensions are still checked); the
// derived isTransit markers are rebuilt either way — they are bools, not
// part of the serialized layout.
func Read(sr *snapio.Source, hierarchy *ch.Index) (*Index, error) {
	x := &Index{hierarchy: hierarchy}
	switch v := sr.U16(); {
	case sr.Err() != nil:
	case v == 1:
		x.numT = int(sr.U32())
		x.transitID = sr.I32s()
		x.table = sr.I64s()
		x.accOff = sr.I32s()
		x.accID = sr.I32s()
		x.accD = sr.I64s()
		x.coneOff = sr.I32s()
		x.coneV = sr.I32s()
		x.coneD = sr.I64s()
	case v == codecVersion:
		x.numT = int(sr.U32())
		x.transitID = sr.AlignedI32s()
		x.table = sr.AlignedI64s()
		x.accOff = sr.AlignedI32s()
		x.accID = sr.AlignedI32s()
		x.accD = sr.AlignedI64s()
		x.coneOff = sr.AlignedI32s()
		x.coneV = sr.AlignedI32s()
		x.coneD = sr.AlignedI64s()
	default:
		sr.Failf("tnr codec version %d (want 1 or %d)", v, codecVersion)
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	n := len(x.transitID)
	m := x.numT
	switch {
	case m < 0 || m > n || len(x.table) != m*m:
		sr.Failf("tnr table is %d cells for %d transit nodes", len(x.table), m)
	case len(x.accOff) != n+1 || len(x.coneOff) != n+1:
		sr.Failf("tnr offsets have %d/%d entries for %d vertices", len(x.accOff), len(x.coneOff), n)
	case x.accOff[0] != 0 || int(x.accOff[n]) != len(x.accID) || len(x.accID) != len(x.accD):
		sr.Failf("tnr access-node CSR is inconsistent")
	case x.coneOff[0] != 0 || int(x.coneOff[n]) != len(x.coneV) || len(x.coneV) != len(x.coneD):
		sr.Failf("tnr cone CSR is inconsistent")
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	x.isTransit = make([]bool, n)
	for v, id := range x.transitID {
		if id < -1 || int(id) >= m {
			sr.Failf("tnr transit id %d out of range at vertex %d", id, v)
			return nil, sr.Err()
		}
		x.isTransit[v] = id >= 0
	}
	if !sr.Aliasing() {
		for i, id := range x.accID {
			if id < 0 || int(id) >= m {
				sr.Failf("tnr access node %d out of range at entry %d", id, i)
				return nil, sr.Err()
			}
		}
		for i, v := range x.coneV {
			if v < 0 || int(v) >= n {
				sr.Failf("tnr cone vertex %d out of range at entry %d", v, i)
				return nil, sr.Err()
			}
		}
	}
	return x, nil
}
