package tnr_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/ch"
	"rnknn/internal/dijkstra"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/tnr"
)

func testGraph(t testing.TB, seed int64, rows, cols int) *graph.Graph {
	t.Helper()
	return gen.Network(gen.NetworkSpec{Name: "t", Rows: rows, Cols: cols, Seed: seed})
}

func TestDistanceMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 101, 16, 16)
	x := tnr.Build(g, nil, tnr.Options{})
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		if got, want := x.Distance(s, tv), solver.Distance(s, tv); got != want {
			t.Fatalf("d(%d,%d) = %d, want %d", s, tv, got, want)
		}
	}
	if x.TableHits == 0 {
		t.Fatal("no query used the transit table")
	}
	if x.LocalHits == 0 {
		t.Fatal("no query used the local cones")
	}
}

func TestDistanceTravelTime(t *testing.T) {
	g := testGraph(t, 102, 14, 14).View(graph.TravelTime)
	x := tnr.Build(g, nil, tnr.Options{})
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		if got, want := x.Distance(s, tv), solver.Distance(s, tv); got != want {
			t.Fatalf("time d(%d,%d) = %d, want %d", s, tv, got, want)
		}
	}
}

func TestSharedHierarchyAndOptions(t *testing.T) {
	g := testGraph(t, 103, 12, 12)
	h := ch.Build(g)
	x := tnr.Build(g, h, tnr.Options{NumTransit: 16})
	if x.NumTransit() != 16 {
		t.Fatalf("NumTransit = %d", x.NumTransit())
	}
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		if got, want := x.Distance(s, tv), solver.Distance(s, tv); got != want {
			t.Fatalf("d(%d,%d) = %d, want %d", s, tv, got, want)
		}
	}
}

func TestTransitLargerThanGraph(t *testing.T) {
	g := testGraph(t, 104, 5, 5)
	x := tnr.Build(g, nil, tnr.Options{NumTransit: 10_000})
	if x.NumTransit() != g.NumVertices() {
		t.Fatalf("NumTransit = %d, want clamped to |V|", x.NumTransit())
	}
	solver := dijkstra.NewSolver(g)
	for s := int32(0); s < 5; s++ {
		for tv := int32(0); tv < int32(g.NumVertices()); tv += 3 {
			if got, want := x.Distance(s, tv), solver.Distance(s, tv); got != want {
				t.Fatalf("d(%d,%d) = %d, want %d", s, tv, got, want)
			}
		}
	}
}

func TestSizeBytes(t *testing.T) {
	g := testGraph(t, 105, 10, 10)
	x := tnr.Build(g, nil, tnr.Options{})
	if x.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}
