// Package tnr implements Transit Node Routing over a contraction hierarchy,
// the remaining IER oracle of Figure 4. Transit nodes are the top-ranked CH
// vertices; every vertex precomputes (a) its access nodes — the transit
// nodes met first on upward paths, with upward distances — and (b) its
// local cone — the upward search space below the transit level. A query is
// a table lookup over access-node pairs, with an exact local fallback that
// intersects the two cones (the role CH plays for local queries in the
// paper, explaining why TNR and CH coincide at high densities).
//
// Correctness: the apex (highest-ranked vertex) of the CH up-down path
// between s and t is either a transit node — covered by the access-node
// table — or its upward paths from both endpoints avoid transit nodes
// entirely (any upward predecessor outranking a transit node would itself
// be a transit node), so it appears in both local cones.
package tnr

import (
	"sort"

	"rnknn/internal/ch"
	"rnknn/internal/dijkstra"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

// Index is a built TNR index.
type Index struct {
	hierarchy *ch.Index
	// isTransit marks transit vertices.
	isTransit []bool
	// transitID maps a transit vertex to its table row, -1 otherwise.
	transitID []int32
	// table is the |T| x |T| transit distance table.
	table []graph.Dist
	numT  int
	// Per-vertex access nodes (table rows) and upward distances, and the
	// local cone (vertices sorted ascending with upward distances).
	accOff  []int32
	accID   []int32
	accD    []graph.Dist
	coneOff []int32
	coneV   []int32
	coneD   []graph.Dist

	// TableHits / LocalHits count query resolutions per kind.
	TableHits, LocalHits int
}

// Options configures Build.
type Options struct {
	// NumTransit is the transit set size (paper: grid 128; here rank-based,
	// default ~1.5*sqrt(|V|)).
	NumTransit int
}

// Build constructs TNR for g. If hierarchy is nil a CH is built internally.
func Build(g *graph.Graph, hierarchy *ch.Index, opts Options) *Index {
	if hierarchy == nil {
		hierarchy = ch.Build(g)
	}
	n := g.NumVertices()
	m := opts.NumTransit
	if m <= 0 {
		m = 24
		for m*m < 2*n { // ~1.4*sqrt(n)
			m++
		}
	}
	if m > n {
		m = n
	}
	x := &Index{
		hierarchy: hierarchy,
		isTransit: make([]bool, n),
		transitID: make([]int32, n),
		numT:      m,
	}
	transit := make([]int32, 0, m)
	for v := int32(0); v < int32(n); v++ {
		x.transitID[v] = -1
		if int(hierarchy.Rank(v)) >= n-m {
			x.isTransit[v] = true
			transit = append(transit, v)
		}
	}
	sort.Slice(transit, func(a, b int) bool { return transit[a] < transit[b] })
	for i, v := range transit {
		x.transitID[v] = int32(i)
	}

	// Transit table: one full Dijkstra per transit node (m single-source
	// searches beat m^2 point-to-point queries at this set size).
	x.table = make([]graph.Dist, m*m)
	solver := dijkstra.NewSolver(g)
	dist := make([]graph.Dist, n)
	for i := 0; i < m; i++ {
		solver.All(transit[i], dist)
		for j := 0; j < m; j++ {
			x.table[i*m+j] = dist[transit[j]]
		}
	}

	// Access nodes and local cones from pruned upward searches.
	x.accOff = make([]int32, n+1)
	x.coneOff = make([]int32, n+1)
	type pair struct {
		v int32
		d graph.Dist
	}
	for v := int32(0); v < int32(n); v++ {
		var acc, cone []pair
		hierarchy.UpwardSearch(v, func(u int32) bool { return x.isTransit[u] },
			func(u int32, d graph.Dist) {
				if x.isTransit[u] {
					acc = append(acc, pair{x.transitID[u], d})
				} else {
					cone = append(cone, pair{u, d})
				}
			})
		sort.Slice(cone, func(a, b int) bool { return cone[a].v < cone[b].v })
		for _, p := range acc {
			x.accID = append(x.accID, p.v)
			x.accD = append(x.accD, p.d)
		}
		for _, p := range cone {
			x.coneV = append(x.coneV, p.v)
			x.coneD = append(x.coneD, p.d)
		}
		x.accOff[v+1] = int32(len(x.accID))
		x.coneOff[v+1] = int32(len(x.coneV))
	}
	return x
}

// Name implements knn.DistanceOracle.
func (x *Index) Name() string { return "TNR" }

// NumTransit returns the transit set size.
func (x *Index) NumTransit() int { return x.numT }

// Distance implements knn.DistanceOracle, counting resolutions in the
// index's shared TableHits/LocalHits; not safe for concurrent use
// (concurrent callers use NewQuerier).
func (x *Index) Distance(s, t int32) graph.Dist {
	d, local, resolved := x.distance(s, t)
	if resolved {
		if local {
			x.LocalHits++
		} else {
			x.TableHits++
		}
	}
	return d
}

// Querier is a per-session view of the index with private hit counters.
// The Index tables are immutable after Build, so any number of Queriers may
// run concurrently; a single Querier is not safe for concurrent use.
type Querier struct {
	x *Index
	// TableHits / LocalHits count query resolutions per kind.
	TableHits, LocalHits int
}

// NewQuerier returns a fresh query session over the index.
func (x *Index) NewQuerier() *Querier { return &Querier{x: x} }

// Name implements knn.DistanceOracle.
func (q *Querier) Name() string { return "TNR" }

// Distance implements knn.DistanceOracle.
func (q *Querier) Distance(s, t int32) graph.Dist {
	d, local, resolved := q.x.distance(s, t)
	if resolved {
		if local {
			q.LocalHits++
		} else {
			q.TableHits++
		}
	}
	return d
}

// distance is the shared read-only query: the access-node table term merged
// with the local-cone term. local reports which term won; resolved is false
// only for the trivial s == t case.
func (x *Index) distance(s, t int32) (d graph.Dist, local, resolved bool) {
	if s == t {
		return 0, false, false
	}
	best := graph.Inf
	// Access-node table term.
	m := x.numT
	for i := x.accOff[s]; i < x.accOff[s+1]; i++ {
		ai, ad := x.accID[i], x.accD[i]
		row := x.table[int(ai)*m:]
		for j := x.accOff[t]; j < x.accOff[t+1]; j++ {
			if d := ad + row[x.accID[j]] + x.accD[j]; d < best {
				best = d
			}
		}
	}
	tableBest := best
	// Local term: merge-join the two cones.
	i, iEnd := x.coneOff[s], x.coneOff[s+1]
	j, jEnd := x.coneOff[t], x.coneOff[t+1]
	for i < iEnd && j < jEnd {
		vi, vj := x.coneV[i], x.coneV[j]
		switch {
		case vi == vj:
			if d := x.coneD[i] + x.coneD[j]; d < best {
				best = d
			}
			i++
			j++
		case vi < vj:
			i++
		default:
			j++
		}
	}
	return best, best < tableBest, true
}

// SizeBytes estimates the index footprint (table + access + cones).
func (x *Index) SizeBytes() int {
	return len(x.table)*8 + len(x.accID)*4 + len(x.accD)*8 +
		len(x.coneV)*4 + len(x.coneD)*8 + len(x.accOff)*4 + len(x.coneOff)*4
}

var _ knn.DistanceOracle = (*Index)(nil)
var _ knn.DistanceOracle = (*Querier)(nil)
