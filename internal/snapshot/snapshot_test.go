package snapshot_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/snapshot"
)

func sec(name string, data []byte) snapshot.Section {
	return snapshot.Section{Name: name, Encode: func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}}
}

func TestContainerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	secs := []snapshot.Section{
		sec("alpha", []byte("payload one")),
		sec("beta", bytes.Repeat([]byte{7}, 100_000)),
		sec("empty", nil),
	}
	if err := snapshot.Write(&buf, 0xfeed, secs); err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.Read(bytes.NewReader(buf.Bytes()), 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d sections", len(got))
	}
	if got[0].Name != "alpha" || string(got[0].Data) != "payload one" {
		t.Fatalf("section 0: %q %q", got[0].Name, got[0].Data)
	}
	if got[1].Name != "beta" || len(got[1].Data) != 100_000 {
		t.Fatalf("section 1: %q %d", got[1].Name, len(got[1].Data))
	}
	if got[2].Name != "empty" || len(got[2].Data) != 0 {
		t.Fatalf("section 2: %q %d", got[2].Name, len(got[2].Data))
	}
}

func TestFingerprintMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, 1, []snapshot.Section{sec("a", []byte("x"))}); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Read(bytes.NewReader(buf.Bytes()), 2); !errors.Is(err, snapshot.ErrFingerprintMismatch) {
		t.Fatalf("want ErrFingerprintMismatch, got %v", err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, 1, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte(nil), data...)
	copy(bad, "NOPE")
	if _, err := snapshot.Read(bytes.NewReader(bad), 1); !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[4] = 99 // version
	if _, err := snapshot.Read(bytes.NewReader(bad), 1); !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestTruncationAndChecksum(t *testing.T) {
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, 9, []snapshot.Section{sec("a", bytes.Repeat([]byte{3}, 1000))}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, 10, 25, len(data) - 1} {
		if _, err := snapshot.Read(bytes.NewReader(data[:cut]), 9); !errors.Is(err, snapshot.ErrBadSnapshot) {
			t.Fatalf("truncate %d: %v", cut, err)
		}
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)-10] ^= 0xff // inside the payload
	if _, err := snapshot.Read(bytes.NewReader(flip), 9); !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("checksum: %v", err)
	}
}

func TestDuplicateSectionRejected(t *testing.T) {
	var buf bytes.Buffer
	err := snapshot.Write(&buf, 1, []snapshot.Section{sec("a", nil), sec("a", nil)})
	if !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("want ErrBadSnapshot, got %v", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := gen.Network(gen.NetworkSpec{Name: "fp", Rows: 6, Cols: 6, Seed: 1})
	same := gen.Network(gen.NetworkSpec{Name: "fp", Rows: 6, Cols: 6, Seed: 1})
	if snapshot.Fingerprint(base) != snapshot.Fingerprint(same) {
		t.Fatal("fingerprint not deterministic")
	}
	cases := map[string]uint64{
		"other seed": snapshot.Fingerprint(gen.Network(gen.NetworkSpec{Name: "fp", Rows: 6, Cols: 6, Seed: 2})),
		"other name": snapshot.Fingerprint(gen.Network(gen.NetworkSpec{Name: "fq", Rows: 6, Cols: 6, Seed: 1})),
		"other size": snapshot.Fingerprint(gen.Network(gen.NetworkSpec{Name: "fp", Rows: 6, Cols: 7, Seed: 1})),
	}
	fp := snapshot.Fingerprint(base)
	for what, other := range cases {
		if other == fp {
			t.Fatalf("fingerprint insensitive to %s", what)
		}
	}
}
