package snapshot_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"rnknn/internal/snapshot"
)

func depSec(name string, deps []string, mappable bool, data []byte) snapshot.Section {
	return snapshot.Section{
		Name:     name,
		Deps:     deps,
		Mappable: mappable,
		Encode: func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		},
	}
}

// TestPayloadAlignment verifies the v2 core property: every payload starts
// at a 64-byte-aligned file offset, whatever the preceding sections'
// lengths, so aligned raw arrays inside a payload stay aligned in the
// mapping.
func TestPayloadAlignment(t *testing.T) {
	var buf bytes.Buffer
	secs := []snapshot.Section{
		depSec("a", nil, true, bytes.Repeat([]byte{1}, 7)), // awkward length
		depSec("b", nil, true, bytes.Repeat([]byte{2}, 129)),
		depSec("c", nil, false, nil), // empty payload
		depSec("d", nil, true, bytes.Repeat([]byte{3}, 64)),
	}
	if err := snapshot.Write(&buf, 5, secs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	fp, payloads, err := snapshot.Parse(data, true)
	if err != nil {
		t.Fatal(err)
	}
	if fp != 5 {
		t.Fatalf("fingerprint %d", fp)
	}
	if len(payloads) != 4 {
		t.Fatalf("got %d payloads", len(payloads))
	}
	for i, p := range payloads {
		if p.Mappable != secs[i].Mappable {
			t.Fatalf("payload %d (%s) mappable=%v, want %v", i, p.Name, p.Mappable, secs[i].Mappable)
		}
		if len(p.Data) == 0 {
			continue
		}
		// Parse aliases the input buffer, so the payload's file offset is
		// where its first byte sits inside data; it must be a multiple of 64.
		aligned := false
		for o := 0; o+len(p.Data) <= len(data); o += 64 {
			if &data[o] == &p.Data[0] {
				aligned = true
				break
			}
		}
		if !aligned {
			t.Fatalf("payload %d (%s) does not start at a 64-aligned offset", i, p.Name)
		}
	}
}

// TestDependencyOrdering pins the explicit section-dependency contract: a
// dependency must appear earlier in the table, and a container violating
// it (a reordered or hand-built snapshot listing TNR before the CH it
// depends on) is rejected as ErrBadSnapshot at header parse, before any
// payload is decoded.
func TestDependencyOrdering(t *testing.T) {
	// Correct order round-trips and preserves the dep metadata.
	var good bytes.Buffer
	err := snapshot.Write(&good, 1, []snapshot.Section{
		depSec("CH", nil, false, []byte("contraction")),
		depSec("TNR", []string{"CH"}, false, []byte("transit nodes")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Read(bytes.NewReader(good.Bytes()), 1); err != nil {
		t.Fatalf("valid dep order rejected: %v", err)
	}

	// Reversed order: Write preserves the order verbatim (validation is the
	// reader's job, so tests can craft bad containers), Read must reject.
	var bad bytes.Buffer
	err = snapshot.Write(&bad, 1, []snapshot.Section{
		depSec("TNR", []string{"CH"}, false, []byte("transit nodes")),
		depSec("CH", nil, false, []byte("contraction")),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = snapshot.Read(bytes.NewReader(bad.Bytes()), 1)
	if !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("want ErrBadSnapshot for TNR-before-CH, got %v", err)
	}
	if !strings.Contains(err.Error(), "depends on") {
		t.Fatalf("error should name the violated dependency: %v", err)
	}

	// A dependency on a section absent from the container is equally bad.
	var missing bytes.Buffer
	err = snapshot.Write(&missing, 1, []snapshot.Section{
		depSec("TNR", []string{"CH"}, false, []byte("x")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Read(bytes.NewReader(missing.Bytes()), 1); !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("want ErrBadSnapshot for missing dep, got %v", err)
	}
	if _, _, err := snapshot.Parse(missing.Bytes(), false); !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("Parse must enforce deps too, got %v", err)
	}
}

// TestParseVerifyToggle: verify=true catches payload corruption, while
// verify=false (the mmap path, where a CRC pass would fault in every page)
// accepts it — trusting the file is the documented trade.
func TestParseVerifyToggle(t *testing.T) {
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, 3, []snapshot.Section{depSec("a", nil, true, bytes.Repeat([]byte{9}, 512))}); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)-5] ^= 0xff
	if _, _, err := snapshot.Parse(data, true); !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("verified Parse must catch corruption, got %v", err)
	}
	if _, payloads, err := snapshot.Parse(data, false); err != nil || len(payloads) != 1 {
		t.Fatalf("unverified Parse: %v (%d payloads)", err, len(payloads))
	}
}

// TestMappableFlagRoundTrip: the flag survives Write -> Parse and is false
// for sections that did not opt in.
func TestMappableFlagRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	err := snapshot.Write(&buf, 2, []snapshot.Section{
		depSec("flat", nil, true, []byte("aligned arrays")),
		depSec("stream", nil, false, []byte("bit-packed")),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, payloads, err := snapshot.Parse(buf.Bytes(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !payloads[0].Mappable || payloads[1].Mappable {
		t.Fatalf("mappable flags: %v %v", payloads[0].Mappable, payloads[1].Mappable)
	}
}
