// Package snapshot frames the versioned, self-describing container that
// persists built road-network indexes (see docs/SNAPSHOT_FORMAT.md for the
// byte-level specification and the compatibility policy).
//
// A snapshot is: magic "RNKS", a format version, the fingerprint of the
// graph the indexes were built over, a section table (name, payload length,
// CRC-32C), and the section payloads. Sections are encoded in parallel
// across CPU cores at write time and checksum-verified in parallel at read
// time; the payload bytes themselves are each index's own WriteTo encoding.
//
// The container knows nothing about index internals: callers (core.Engine)
// map section names to codecs. Unknown section names are preserved for the
// caller, which may skip them — that is what lets future snapshots add new
// index kinds without a format-version bump.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"sync"

	"rnknn/internal/graph"
)

// Magic starts every snapshot file.
const Magic = "RNKS"

// Version is the container format version this package writes and the only
// one it reads.
const Version = 1

// maxSections bounds the section table so a corrupt count cannot drive a
// huge allocation.
const maxSections = 64

var (
	// ErrBadSnapshot reports a snapshot that is not parseable: wrong magic,
	// unsupported version, truncated data, a checksum mismatch, or a section
	// payload its codec rejects.
	ErrBadSnapshot = errors.New("snapshot: malformed or corrupt snapshot")
	// ErrFingerprintMismatch reports a structurally valid snapshot whose
	// indexes were built over a different graph than the one being loaded.
	ErrFingerprintMismatch = errors.New("snapshot: graph fingerprint mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Fingerprint hashes everything an index build depends on — name, active
// weight kind, topology, both weight arrays, and vertex coordinates — so a
// snapshot can only be loaded against the graph it was built from. FNV-64a
// over the little-endian encoding of each array.
func Fingerprint(g *graph.Graph) uint64 {
	h := fnv.New64a()
	// Batch the element encodings through one buffer: a h.Write per element
	// would cost an interface call per 4 bytes on multi-million-edge graphs.
	buf := make([]byte, 0, 1<<16)
	flushAt := func(headroom int) {
		if len(buf)+headroom > cap(buf) {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	u64 := func(v uint64) {
		flushAt(8)
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	buf = append(buf, "rnknn-graph-fingerprint-v1"...)
	buf = append(buf, g.Name...)
	u64(uint64(g.Kind))
	u64(uint64(g.NumVertices()))
	u64(uint64(g.NumEdges()))
	for _, arr := range [][]int32{g.Offsets, g.Targets, g.DistW, g.TimeW} {
		for _, v := range arr {
			flushAt(4)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	for _, arr := range [][]float64{g.X, g.Y} {
		for _, v := range arr {
			u64(math.Float64bits(v))
		}
	}
	h.Write(buf)
	return h.Sum64()
}

// Section is one named payload to write: Encode streams the index's bytes.
type Section struct {
	Name   string
	Encode func(w io.Writer) error
}

// Payload is one named section read back from a snapshot, checksum-verified.
type Payload struct {
	Name string
	Data []byte
}

// Write encodes every section (in parallel, one goroutine per section — the
// Go scheduler spreads them across cores) and frames them into w with the
// graph fingerprint. Section names must be unique, non-empty, and at most
// 255 bytes.
func Write(w io.Writer, fingerprint uint64, sections []Section) error {
	if len(sections) > maxSections {
		return fmt.Errorf("%w: %d sections exceeds the limit of %d", ErrBadSnapshot, len(sections), maxSections)
	}
	seen := map[string]bool{}
	for _, s := range sections {
		if s.Name == "" || len(s.Name) > 255 || seen[s.Name] {
			return fmt.Errorf("%w: invalid or duplicate section name %q", ErrBadSnapshot, s.Name)
		}
		seen[s.Name] = true
	}

	bufs := make([]bytes.Buffer, len(sections))
	errs := make([]error, len(sections))
	var wg sync.WaitGroup
	for i, s := range sections {
		wg.Add(1)
		go func(i int, s Section) {
			defer wg.Done()
			errs[i] = s.Encode(&bufs[i])
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("snapshot: encoding section %s: %w", sections[i].Name, err)
		}
	}

	var hdr bytes.Buffer
	hdr.WriteString(Magic)
	le := binary.LittleEndian
	var scratch [8]byte
	u32 := func(v uint32) { le.PutUint32(scratch[:4], v); hdr.Write(scratch[:4]) }
	u64 := func(v uint64) { le.PutUint64(scratch[:], v); hdr.Write(scratch[:]) }
	u32(Version)
	u64(fingerprint)
	u32(uint32(len(sections)))
	for i, s := range sections {
		hdr.WriteByte(byte(len(s.Name)))
		hdr.WriteString(s.Name)
		u64(uint64(bufs[i].Len()))
		u32(crc32.Checksum(bufs[i].Bytes(), castagnoli))
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	for i := range bufs {
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// readPayload reads one section payload of the declared size in bounded
// chunks, so a corrupt size field in the (unchecksummed) section table costs
// at most one chunk of over-allocation before the truncated stream surfaces
// as ErrBadSnapshot — never an OOM-sized make.
func readPayload(r io.Reader, name string, size uint64) ([]byte, error) {
	if size > 1<<40 {
		return nil, fmt.Errorf("%w: implausible section size %d", ErrBadSnapshot, size)
	}
	const chunk = 1 << 22 // 4 MiB
	data := make([]byte, 0, min(size, chunk))
	for remaining := size; remaining > 0; {
		step := min(remaining, chunk)
		off := len(data)
		data = append(data, make([]byte, step)...)
		if _, err := io.ReadFull(r, data[off:]); err != nil {
			return nil, fmt.Errorf("%w: truncated section %s: %v", ErrBadSnapshot, name, err)
		}
		remaining -= step
	}
	return data, nil
}

// Read parses a snapshot, rejects it unless its fingerprint equals
// fingerprint, and returns the sections with checksums verified (in
// parallel). Section payloads are fully materialized in memory — they decode
// into in-memory indexes anyway.
func Read(r io.Reader, fingerprint uint64) ([]Payload, error) {
	var hdr [4 + 4 + 8 + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadSnapshot, err)
	}
	if string(hdr[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, hdr[:4])
	}
	le := binary.LittleEndian
	if v := le.Uint32(hdr[4:8]); v != Version {
		return nil, fmt.Errorf("%w: unsupported format version %d (want %d)", ErrBadSnapshot, v, Version)
	}
	if fp := le.Uint64(hdr[8:16]); fp != fingerprint {
		return nil, fmt.Errorf("%w: snapshot %016x vs graph %016x", ErrFingerprintMismatch, fp, fingerprint)
	}
	count := int(le.Uint32(hdr[16:20]))
	if count < 0 || count > maxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrBadSnapshot, count)
	}

	type entry struct {
		name string
		size uint64
		crc  uint32
	}
	entries := make([]entry, count)
	var scratch [8]byte
	for i := range entries {
		if _, err := io.ReadFull(r, scratch[:1]); err != nil {
			return nil, fmt.Errorf("%w: short section table: %v", ErrBadSnapshot, err)
		}
		name := make([]byte, scratch[0])
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("%w: short section table: %v", ErrBadSnapshot, err)
		}
		if _, err := io.ReadFull(r, scratch[:8]); err != nil {
			return nil, fmt.Errorf("%w: short section table: %v", ErrBadSnapshot, err)
		}
		entries[i].name = string(name)
		entries[i].size = le.Uint64(scratch[:8])
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return nil, fmt.Errorf("%w: short section table: %v", ErrBadSnapshot, err)
		}
		entries[i].crc = le.Uint32(scratch[:4])
	}

	payloads := make([]Payload, count)
	for i, e := range entries {
		data, err := readPayload(r, e.name, e.size)
		if err != nil {
			return nil, err
		}
		payloads[i] = Payload{Name: e.name, Data: data}
	}

	// Verify checksums in parallel, one goroutine per section.
	errs := make([]error, count)
	var wg sync.WaitGroup
	for i := range payloads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if crc32.Checksum(payloads[i].Data, castagnoli) != entries[i].crc {
				errs[i] = fmt.Errorf("%w: checksum mismatch in section %s", ErrBadSnapshot, payloads[i].Name)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return payloads, nil
}
