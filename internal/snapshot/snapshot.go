// Package snapshot frames the versioned, self-describing container that
// persists built road-network indexes (see docs/SNAPSHOT_FORMAT.md for the
// byte-level specification and the compatibility policy).
//
// A snapshot is: magic "RNKS", a format version, the fingerprint of the
// graph the indexes were built over, a section table (name, declared
// dependencies, flags, absolute payload offset, payload length, CRC-32C),
// and the section payloads, each starting on a 64-byte-aligned file
// offset. Sections are encoded in parallel across CPU cores at write time
// and checksum-verified in parallel at read time; the payload bytes
// themselves are each index's own WriteTo encoding.
//
// Because every payload starts 64-byte aligned, a payload whose codec
// emits its arrays with Writer.Align64 padding has those arrays 64-byte
// aligned in the file — which is what lets Parse hand out payload views of
// an mmap'ed snapshot that internal codecs alias as typed slices with zero
// copy (sections flagged Mappable). Format v1 (no alignment, no
// dependency declarations) is still read transparently.
//
// The container knows nothing about index internals: callers (core.Engine)
// map section names to codecs. Unknown section names are preserved for the
// caller, which may skip them — that is what lets future snapshots add new
// index kinds without a format-version bump. A section's declared
// dependencies, however, are validated here: each must name a section that
// appears earlier in the table, so cross-section decode ordering (TNR
// needs CH's hierarchy) is a checked property of the file rather than a
// writer convention.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"sync"

	"rnknn/internal/graph"
)

// Magic starts every snapshot file.
const Magic = "RNKS"

// Version is the container format version this package writes. Read and
// Parse also accept VersionV1 snapshots (written by older binaries).
const Version = 2

// VersionV1 is the original container format: no payload alignment, no
// dependency declarations, no mappable flag.
const VersionV1 = 1

// maxSections bounds the section table so a corrupt count cannot drive a
// huge allocation.
const maxSections = 64

// FlagMappable marks a section whose payload uses the aligned raw-array
// layout (snapio Writer.Raw*), safe to alias from an mmap'ed file.
const FlagMappable = uint32(1 << 0)

var (
	// ErrBadSnapshot reports a snapshot that is not parseable: wrong magic,
	// unsupported version, truncated data, a checksum mismatch, a section
	// dependency that is missing or out of order, or a section payload its
	// codec rejects.
	ErrBadSnapshot = errors.New("snapshot: malformed or corrupt snapshot")
	// ErrFingerprintMismatch reports a structurally valid snapshot whose
	// indexes were built over a different graph than the one being loaded.
	ErrFingerprintMismatch = errors.New("snapshot: graph fingerprint mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Fingerprint hashes everything an index build depends on — name, active
// weight kind, topology, both weight arrays, and vertex coordinates — so a
// snapshot can only be loaded against the graph it was built from. FNV-64a
// over the little-endian encoding of each array.
func Fingerprint(g *graph.Graph) uint64 {
	h := fnv.New64a()
	// Batch the element encodings through one buffer: a h.Write per element
	// would cost an interface call per 4 bytes on multi-million-edge graphs.
	buf := make([]byte, 0, 1<<16)
	flushAt := func(headroom int) {
		if len(buf)+headroom > cap(buf) {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	u64 := func(v uint64) {
		flushAt(8)
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	buf = append(buf, "rnknn-graph-fingerprint-v1"...)
	buf = append(buf, g.Name...)
	u64(uint64(g.Kind))
	u64(uint64(g.NumVertices()))
	u64(uint64(g.NumEdges()))
	for _, arr := range [][]int32{g.Offsets, g.Targets, g.DistW, g.TimeW} {
		for _, v := range arr {
			flushAt(4)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	for _, arr := range [][]float64{g.X, g.Y} {
		for _, v := range arr {
			u64(math.Float64bits(v))
		}
	}
	h.Write(buf)
	return h.Sum64()
}

// Section is one named payload to write: Encode streams the index's bytes.
// Deps names sections this one needs decoded first; Write records them in
// the table and readers enforce that each appears earlier. Mappable marks
// payloads laid out with aligned raw arrays (safe to alias when mapped).
type Section struct {
	Name     string
	Encode   func(w io.Writer) error
	Deps     []string
	Mappable bool
}

// Payload is one named section read back from a snapshot. Read verifies
// checksums; Parse leaves verification to the caller's choice (an mmap'ed
// open skips it — checksumming would fault in every page). Data aliases
// the parsed buffer when Parse produced it.
type Payload struct {
	Name     string
	Data     []byte
	Mappable bool
}

// align64 rounds n up to the next multiple of 64.
func align64(n uint64) uint64 { return (n + 63) &^ 63 }

// Write encodes every section (in parallel, one goroutine per section — the
// Go scheduler spreads them across cores) and frames them into w with the
// graph fingerprint. Section names must be unique, non-empty, and at most
// 255 bytes. Section order is preserved verbatim — including a Deps order
// violation, which readers reject; callers are responsible for appending
// dependencies before dependents.
func Write(w io.Writer, fingerprint uint64, sections []Section) error {
	if len(sections) > maxSections {
		return fmt.Errorf("%w: %d sections exceeds the limit of %d", ErrBadSnapshot, len(sections), maxSections)
	}
	seen := map[string]bool{}
	for _, s := range sections {
		if s.Name == "" || len(s.Name) > 255 || seen[s.Name] {
			return fmt.Errorf("%w: invalid or duplicate section name %q", ErrBadSnapshot, s.Name)
		}
		seen[s.Name] = true
		if len(s.Deps) > 255 {
			return fmt.Errorf("%w: section %q declares %d dependencies", ErrBadSnapshot, s.Name, len(s.Deps))
		}
		for _, d := range s.Deps {
			if d == "" || len(d) > 255 {
				return fmt.Errorf("%w: section %q has invalid dependency name %q", ErrBadSnapshot, s.Name, d)
			}
		}
	}

	bufs := make([]bytes.Buffer, len(sections))
	errs := make([]error, len(sections))
	var wg sync.WaitGroup
	for i, s := range sections {
		wg.Add(1)
		go func(i int, s Section) {
			defer wg.Done()
			errs[i] = s.Encode(&bufs[i])
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("snapshot: encoding section %s: %w", sections[i].Name, err)
		}
	}

	// The header size is known exactly up front, so payload offsets can be
	// assigned before anything is written: each payload starts at the next
	// 64-byte boundary after its predecessor (or after the header).
	headerLen := uint64(4 + 4 + 8 + 4)
	for _, s := range sections {
		headerLen += 1 + uint64(len(s.Name)) + 1
		for _, d := range s.Deps {
			headerLen += 1 + uint64(len(d))
		}
		headerLen += 4 + 8 + 8 + 4 // flags, offset, length, crc
	}
	offsets := make([]uint64, len(sections))
	pos := headerLen
	for i := range sections {
		pos = align64(pos)
		offsets[i] = pos
		pos += uint64(bufs[i].Len())
	}

	var hdr bytes.Buffer
	hdr.WriteString(Magic)
	le := binary.LittleEndian
	var scratch [8]byte
	u32 := func(v uint32) { le.PutUint32(scratch[:4], v); hdr.Write(scratch[:4]) }
	u64 := func(v uint64) { le.PutUint64(scratch[:], v); hdr.Write(scratch[:]) }
	u32(Version)
	u64(fingerprint)
	u32(uint32(len(sections)))
	for i, s := range sections {
		hdr.WriteByte(byte(len(s.Name)))
		hdr.WriteString(s.Name)
		hdr.WriteByte(byte(len(s.Deps)))
		for _, d := range s.Deps {
			hdr.WriteByte(byte(len(d)))
			hdr.WriteString(d)
		}
		var flags uint32
		if s.Mappable {
			flags |= FlagMappable
		}
		u32(flags)
		u64(offsets[i])
		u64(uint64(bufs[i].Len()))
		u32(crc32.Checksum(bufs[i].Bytes(), castagnoli))
	}
	if uint64(hdr.Len()) != headerLen {
		return fmt.Errorf("snapshot: internal error: header is %d bytes, computed %d", hdr.Len(), headerLen)
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	var pad [64]byte
	written := headerLen
	for i := range bufs {
		if offsets[i] > written {
			if _, err := w.Write(pad[:offsets[i]-written]); err != nil {
				return err
			}
			written = offsets[i]
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
		written += uint64(bufs[i].Len())
	}
	return nil
}

// tableEntry is one parsed section-table row; offsets are absolute file
// offsets (synthesized for v1 snapshots, whose payloads are contiguous).
type tableEntry struct {
	name     string
	deps     []string
	mappable bool
	off      uint64
	size     uint64
	crc      uint32
}

// countingReader tracks how many bytes have been consumed, giving
// readHeader the header length for synthesizing v1 offsets.
type countingReader struct {
	r io.Reader
	n uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += uint64(n)
	return n, err
}

// readHeader parses the fixed header and section table from r (both format
// versions) and returns the fingerprint, the entries with absolute payload
// offsets, and the header length in bytes. Dependencies are validated
// here: each must name a section earlier in the table.
func readHeader(rr io.Reader) (fp uint64, entries []tableEntry, headerLen uint64, err error) {
	r := &countingReader{r: rr}
	var hdr [4 + 4 + 8 + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: short header: %v", ErrBadSnapshot, err)
	}
	if string(hdr[:4]) != Magic {
		return 0, nil, 0, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, hdr[:4])
	}
	le := binary.LittleEndian
	version := le.Uint32(hdr[4:8])
	if version != VersionV1 && version != Version {
		return 0, nil, 0, fmt.Errorf("%w: unsupported format version %d (want %d or %d)", ErrBadSnapshot, version, VersionV1, Version)
	}
	fp = le.Uint64(hdr[8:16])
	count := int(le.Uint32(hdr[16:20]))
	if count < 0 || count > maxSections {
		return 0, nil, 0, fmt.Errorf("%w: implausible section count %d", ErrBadSnapshot, count)
	}

	var scratch [8]byte
	readN := func(n int) ([]byte, error) {
		if _, err := io.ReadFull(r, scratch[:n]); err != nil {
			return nil, fmt.Errorf("%w: short section table: %v", ErrBadSnapshot, err)
		}
		return scratch[:n], nil
	}
	readName := func() (string, error) {
		b, err := readN(1)
		if err != nil {
			return "", err
		}
		name := make([]byte, b[0])
		if _, err := io.ReadFull(r, name); err != nil {
			return "", fmt.Errorf("%w: short section table: %v", ErrBadSnapshot, err)
		}
		return string(name), nil
	}

	entries = make([]tableEntry, count)
	position := make(map[string]int, count)
	for i := range entries {
		e := &entries[i]
		if e.name, err = readName(); err != nil {
			return 0, nil, 0, err
		}
		if e.name == "" {
			return 0, nil, 0, fmt.Errorf("%w: empty section name at entry %d", ErrBadSnapshot, i)
		}
		if _, dup := position[e.name]; dup {
			return 0, nil, 0, fmt.Errorf("%w: duplicate section %q", ErrBadSnapshot, e.name)
		}
		if version >= Version {
			b, err := readN(1)
			if err != nil {
				return 0, nil, 0, err
			}
			ndeps := int(b[0])
			for d := 0; d < ndeps; d++ {
				dep, err := readName()
				if err != nil {
					return 0, nil, 0, err
				}
				if _, ok := position[dep]; !ok {
					return 0, nil, 0, fmt.Errorf("%w: section %q depends on %q, which does not appear earlier in the table", ErrBadSnapshot, e.name, dep)
				}
				e.deps = append(e.deps, dep)
			}
			if b, err = readN(4); err != nil {
				return 0, nil, 0, err
			}
			e.mappable = le.Uint32(b)&FlagMappable != 0
			if b, err = readN(8); err != nil {
				return 0, nil, 0, err
			}
			e.off = le.Uint64(b)
		}
		b, err := readN(8)
		if err != nil {
			return 0, nil, 0, err
		}
		e.size = le.Uint64(b)
		if e.size > 1<<40 {
			return 0, nil, 0, fmt.Errorf("%w: implausible section size %d", ErrBadSnapshot, e.size)
		}
		if b, err = readN(4); err != nil {
			return 0, nil, 0, err
		}
		e.crc = le.Uint32(b)
		position[e.name] = i
	}
	headerLen = r.n

	if version == VersionV1 {
		// v1 payloads are contiguous, in table order, immediately after the
		// header; synthesize the absolute offsets v2 records explicitly.
		pos := headerLen
		for i := range entries {
			entries[i].off = pos
			pos += entries[i].size
		}
	} else {
		pos := headerLen
		for i := range entries {
			e := &entries[i]
			if e.off < pos || e.off > 1<<40 {
				return 0, nil, 0, fmt.Errorf("%w: section %q offset %d overlaps preceding data", ErrBadSnapshot, e.name, e.off)
			}
			pos = e.off + e.size
		}
	}
	return fp, entries, headerLen, nil
}

// readPayload reads one section payload of the declared size in bounded
// chunks, so a corrupt size field in the (unchecksummed) section table costs
// at most one chunk of over-allocation before the truncated stream surfaces
// as ErrBadSnapshot — never an OOM-sized make.
func readPayload(r io.Reader, name string, size uint64) ([]byte, error) {
	const chunk = 1 << 22 // 4 MiB
	data := make([]byte, 0, min(size, chunk))
	for remaining := size; remaining > 0; {
		step := min(remaining, chunk)
		off := len(data)
		data = append(data, make([]byte, step)...)
		if _, err := io.ReadFull(r, data[off:]); err != nil {
			return nil, fmt.Errorf("%w: truncated section %s: %v", ErrBadSnapshot, name, err)
		}
		remaining -= step
	}
	return data, nil
}

// verifyCRCs checks every payload's checksum in parallel, one goroutine
// per section.
func verifyCRCs(payloads []Payload, entries []tableEntry) error {
	errs := make([]error, len(payloads))
	var wg sync.WaitGroup
	for i := range payloads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if crc32.Checksum(payloads[i].Data, castagnoli) != entries[i].crc {
				errs[i] = fmt.Errorf("%w: checksum mismatch in section %s", ErrBadSnapshot, payloads[i].Name)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Read parses a snapshot, rejects it unless its fingerprint equals
// fingerprint, and returns the sections with checksums verified (in
// parallel). Section payloads are fully materialized in memory — they
// decode into in-memory indexes anyway. For zero-copy access to an
// mmap'ed snapshot, use Parse instead.
func Read(r io.Reader, fingerprint uint64) ([]Payload, error) {
	fp, entries, headerLen, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if fp != fingerprint {
		return nil, fmt.Errorf("%w: snapshot %016x vs graph %016x", ErrFingerprintMismatch, fp, fingerprint)
	}
	payloads := make([]Payload, len(entries))
	pos := headerLen
	for i, e := range entries {
		if e.off > pos {
			// Alignment padding between sections (v2).
			if _, err := io.CopyN(io.Discard, r, int64(e.off-pos)); err != nil {
				return nil, fmt.Errorf("%w: truncated padding before section %s: %v", ErrBadSnapshot, e.name, err)
			}
			pos = e.off
		}
		data, err := readPayload(r, e.name, e.size)
		if err != nil {
			return nil, err
		}
		payloads[i] = Payload{Name: e.name, Data: data, Mappable: e.mappable}
		pos += e.size
	}
	if err := verifyCRCs(payloads, entries); err != nil {
		return nil, err
	}
	return payloads, nil
}

// Parse reads a snapshot already materialized (or mapped) as one byte
// slice and returns its fingerprint and sections, with each payload a view
// of data — no copies. With verify set, checksums are validated (in
// parallel) as Read does; a caller opening an mmap'ed snapshot passes
// false, since checksumming would fault in every page and defeat the
// O(page-faults) warm start — mapped opens trust the file.
func Parse(data []byte, verify bool) (uint64, []Payload, error) {
	fp, entries, _, err := readHeader(bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	payloads := make([]Payload, len(entries))
	for i, e := range entries {
		if e.off+e.size > uint64(len(data)) {
			return 0, nil, fmt.Errorf("%w: section %s [%d, %d) exceeds snapshot size %d", ErrBadSnapshot, e.name, e.off, e.off+e.size, len(data))
		}
		payloads[i] = Payload{Name: e.name, Data: data[e.off : e.off+e.size], Mappable: e.mappable}
	}
	if verify {
		if err := verifyCRCs(payloads, entries); err != nil {
			return 0, nil, err
		}
	}
	return fp, payloads, nil
}
