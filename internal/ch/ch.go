// Package ch implements Contraction Hierarchies (Geisberger et al.), one of
// the fast shortest-path techniques the paper composes with IER (Section 5,
// Figure 4). Vertices are contracted in importance order (lazy edge-
// difference heuristic with witness searches); queries run a bidirectional
// Dijkstra over upward edges only.
package ch

import (
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/pqueue"
)

// Index is a built contraction hierarchy.
type Index struct {
	g *graph.Graph
	// rank[v] is v's contraction order (higher = more important).
	rank []int32
	// Upward adjacency in CSR form: for every (original or shortcut) edge
	// {u,v}, the lower-ranked endpoint points to the higher-ranked one.
	upOff []int32
	upTo  []int32
	upW   []int32
	// Shortcuts counts the shortcut edges added during preprocessing.
	Shortcuts int

	// def is the searcher Distance delegates to; concurrent callers create
	// their own with NewSearcher.
	def *Searcher

	// Reusable upward-search state (separate from query state so index
	// construction helpers do not disturb in-flight queries).
	distU  []graph.Dist
	stampU []uint32
	curU   uint32
	qu     *pqueue.Queue
}

// Searcher holds the bidirectional-Dijkstra state of one query session over
// an Index. The Index itself is immutable after Build, so any number of
// Searchers may query it concurrently; a single Searcher is not safe for
// concurrent use.
type Searcher struct {
	x              *Index
	distF, distB   []graph.Dist
	stampF, stampB []uint32
	cur            uint32
	qf, qb         *pqueue.Queue
}

// NewSearcher returns a fresh query session over the index.
func (x *Index) NewSearcher() *Searcher {
	n := len(x.rank)
	return &Searcher{
		x:      x,
		distF:  make([]graph.Dist, n),
		distB:  make([]graph.Dist, n),
		stampF: make([]uint32, n),
		stampB: make([]uint32, n),
		qf:     pqueue.NewQueue(256),
		qb:     pqueue.NewQueue(256),
	}
}

// Name implements knn.DistanceOracle.
func (s *Searcher) Name() string { return "CH" }

// Name implements knn.DistanceOracle.
func (x *Index) Name() string { return "CH" }

// Rank returns the contraction rank of v (higher contracted later; used by
// TNR to pick transit nodes).
func (x *Index) Rank(v int32) int32 { return x.rank[v] }

// dynEdge is a working-graph edge during contraction.
type dynEdge struct {
	to int32
	w  int32
}

// Build contracts g into a hierarchy.
func Build(g *graph.Graph) *Index {
	n := g.NumVertices()
	x := &Index{g: g, rank: make([]int32, n)}

	// Mutable working graph: remaining adjacency among uncontracted
	// vertices, starting from the original edges.
	adj := make([][]dynEdge, n)
	for v := int32(0); v < int32(n); v++ {
		ts, ws := g.Neighbors(v)
		adj[v] = make([]dynEdge, len(ts))
		for i := range ts {
			adj[v][i] = dynEdge{ts[i], ws[i]}
		}
	}
	contracted := make([]bool, n)
	deleted := make([]int16, n) // contracted neighbors heuristic term

	// allEdges accumulates original + shortcut edges for the upward graph.
	type fullEdge struct {
		u, v int32
		w    int32
	}
	var all []fullEdge
	for v := int32(0); v < int32(n); v++ {
		ts, ws := g.Neighbors(v)
		for i, t := range ts {
			if t > v {
				all = append(all, fullEdge{v, t, ws[i]})
			}
		}
	}

	ws := newWitnessSearch(n)
	simulate := func(v int32) (added int) {
		return ws.shortcutsNeeded(adj, contracted, v, nil)
	}
	prio := func(v int32) int64 {
		return int64(simulate(v)-len(remaining(adj[v], contracted)))*4 + int64(deleted[v])
	}

	q := pqueue.NewQueue(n)
	for v := int32(0); v < int32(n); v++ {
		q.Push(v, prio(v))
	}
	next := int32(0)
	for !q.Empty() {
		it := q.Pop()
		v := it.ID
		if contracted[v] {
			continue
		}
		// Lazy update: re-evaluate; if no longer minimal, requeue.
		p := prio(v)
		if !q.Empty() && p > q.MinKey() {
			q.Push(v, p)
			continue
		}
		// Contract v: add needed shortcuts among uncontracted neighbors.
		var shortcuts [][3]int32
		ws.shortcutsNeeded(adj, contracted, v, func(u, t, w int32) {
			shortcuts = append(shortcuts, [3]int32{u, t, w})
		})
		for _, sc := range shortcuts {
			u, t, w := sc[0], sc[1], sc[2]
			adj[u] = upsertEdge(adj[u], t, w)
			adj[t] = upsertEdge(adj[t], u, w)
			all = append(all, fullEdge{u, t, w})
			x.Shortcuts++
		}
		contracted[v] = true
		x.rank[v] = next
		next++
		for _, e := range adj[v] {
			if !contracted[e.to] {
				deleted[e.to]++
			}
		}
	}

	// Build the upward CSR: edge endpoints point from lower to higher rank.
	deg := make([]int32, n+1)
	for _, e := range all {
		lo := e.u
		if x.rank[e.v] < x.rank[e.u] {
			lo = e.v
		}
		deg[lo+1]++
	}
	for i := 1; i <= n; i++ {
		deg[i] += deg[i-1]
	}
	x.upOff = deg
	m := int(x.upOff[n])
	x.upTo = make([]int32, m)
	x.upW = make([]int32, m)
	pos := make([]int32, n)
	copy(pos, x.upOff[:n])
	for _, e := range all {
		lo, hi := e.u, e.v
		if x.rank[hi] < x.rank[lo] {
			lo, hi = hi, lo
		}
		x.upTo[pos[lo]] = hi
		x.upW[pos[lo]] = e.w
		pos[lo]++
	}

	x.def = x.NewSearcher()
	x.distU = make([]graph.Dist, n)
	x.stampU = make([]uint32, n)
	x.qu = pqueue.NewQueue(256)
	return x
}

func remaining(es []dynEdge, contracted []bool) []dynEdge {
	out := es[:0:0]
	for _, e := range es {
		if !contracted[e.to] {
			out = append(out, e)
		}
	}
	return out
}

func upsertEdge(es []dynEdge, to, w int32) []dynEdge {
	for i := range es {
		if es[i].to == to {
			if w < es[i].w {
				es[i].w = w
			}
			return es
		}
	}
	return append(es, dynEdge{to, w})
}

// witnessSearch is a bounded Dijkstra used to decide whether a shortcut
// u -> t through the contracted vertex v is necessary.
type witnessSearch struct {
	dist  []graph.Dist
	stamp []uint32
	cur   uint32
	q     *pqueue.Queue
}

func newWitnessSearch(n int) *witnessSearch {
	return &witnessSearch{
		dist:  make([]graph.Dist, n),
		stamp: make([]uint32, n),
		q:     pqueue.NewQueue(256),
	}
}

// witnessSettleLimit bounds each witness search; a lower limit adds more
// (harmless) shortcuts but speeds preprocessing.
const witnessSettleLimit = 60

// shortcutsNeeded counts (and via emit, reports) the shortcuts required to
// contract v: for every pair of uncontracted neighbors (u, t) with path
// u-v-t of weight w, a shortcut is needed unless a witness path of weight
// <= w exists in the remaining graph avoiding v.
func (ws *witnessSearch) shortcutsNeeded(adj [][]dynEdge, contracted []bool, v int32, emit func(u, t, w int32)) int {
	var nbrs []dynEdge
	for _, e := range adj[v] {
		if !contracted[e.to] {
			nbrs = append(nbrs, e)
		}
	}
	count := 0
	for i, eu := range nbrs {
		// One witness Dijkstra from u bounded by the largest via weight.
		var maxVia graph.Dist
		for j, et := range nbrs {
			if j == i {
				continue
			}
			if via := graph.Dist(eu.w) + graph.Dist(et.w); via > maxVia {
				maxVia = via
			}
		}
		if maxVia == 0 {
			continue
		}
		ws.run(adj, contracted, eu.to, v, maxVia)
		for j, et := range nbrs {
			if j <= i {
				continue // each unordered pair once
			}
			via := graph.Dist(eu.w) + graph.Dist(et.w)
			if ws.distOf(et.to) > via {
				count++
				if emit != nil {
					emit(eu.to, et.to, int32(via))
				}
			}
		}
	}
	return count
}

func (ws *witnessSearch) distOf(v int32) graph.Dist {
	if ws.stamp[v] != ws.cur {
		return graph.Inf
	}
	return ws.dist[v]
}

func (ws *witnessSearch) run(adj [][]dynEdge, contracted []bool, src, avoid int32, limit graph.Dist) {
	ws.cur++
	if ws.cur == 0 {
		for i := range ws.stamp {
			ws.stamp[i] = 0
		}
		ws.cur = 1
	}
	ws.q.Reset()
	ws.dist[src] = 0
	ws.stamp[src] = ws.cur
	ws.q.Push(src, 0)
	settled := 0
	for !ws.q.Empty() && settled < witnessSettleLimit {
		it := ws.q.Pop()
		u := it.ID
		d := graph.Dist(it.Key)
		if d > ws.distOf(u) {
			continue
		}
		if d > limit {
			break
		}
		settled++
		for _, e := range adj[u] {
			if e.to == avoid || contracted[e.to] {
				continue
			}
			nd := d + graph.Dist(e.w)
			if nd < ws.distOf(e.to) {
				ws.dist[e.to] = nd
				ws.stamp[e.to] = ws.cur
				ws.q.Push(e.to, int64(nd))
			}
		}
	}
}

// Distance implements knn.DistanceOracle via the index's default searcher;
// it is not safe for concurrent use (concurrent callers use NewSearcher).
func (x *Index) Distance(s, t int32) graph.Dist { return x.def.Distance(s, t) }

// Distance implements knn.DistanceOracle: a bidirectional upward Dijkstra.
func (sr *Searcher) Distance(s, t int32) graph.Dist {
	if s == t {
		return 0
	}
	x := sr.x
	sr.cur++
	if sr.cur == 0 {
		for i := range sr.stampF {
			sr.stampF[i] = 0
			sr.stampB[i] = 0
		}
		sr.cur = 1
	}
	sr.qf.Reset()
	sr.qb.Reset()
	sr.setF(s, 0)
	sr.setB(t, 0)
	sr.qf.Push(s, 0)
	sr.qb.Push(t, 0)
	best := graph.Inf
	for !sr.qf.Empty() || !sr.qb.Empty() {
		if min := graph.Dist(sr.qf.MinKey()); !sr.qf.Empty() && min < best {
			it := sr.qf.Pop()
			v := it.ID
			d := graph.Dist(it.Key)
			if d == sr.fOf(v) {
				if bd := sr.bOf(v); bd != graph.Inf && d+bd < best {
					best = d + bd
				}
				for e := x.upOff[v]; e < x.upOff[v+1]; e++ {
					u := x.upTo[e]
					if nd := d + graph.Dist(x.upW[e]); nd < sr.fOf(u) {
						sr.setF(u, nd)
						sr.qf.Push(u, int64(nd))
					}
				}
			}
		} else if !sr.qf.Empty() {
			sr.qf.Reset()
		}
		if min := graph.Dist(sr.qb.MinKey()); !sr.qb.Empty() && min < best {
			it := sr.qb.Pop()
			v := it.ID
			d := graph.Dist(it.Key)
			if d == sr.bOf(v) {
				if fd := sr.fOf(v); fd != graph.Inf && d+fd < best {
					best = d + fd
				}
				for e := x.upOff[v]; e < x.upOff[v+1]; e++ {
					u := x.upTo[e]
					if nd := d + graph.Dist(x.upW[e]); nd < sr.bOf(u) {
						sr.setB(u, nd)
						sr.qb.Push(u, int64(nd))
					}
				}
			}
		} else if !sr.qb.Empty() {
			sr.qb.Reset()
		}
	}
	return best
}

func (sr *Searcher) setF(v int32, d graph.Dist) { sr.distF[v] = d; sr.stampF[v] = sr.cur }
func (sr *Searcher) setB(v int32, d graph.Dist) { sr.distB[v] = d; sr.stampB[v] = sr.cur }

func (sr *Searcher) fOf(v int32) graph.Dist {
	if sr.stampF[v] != sr.cur {
		return graph.Inf
	}
	return sr.distF[v]
}

func (sr *Searcher) bOf(v int32) graph.Dist {
	if sr.stampB[v] != sr.cur {
		return graph.Inf
	}
	return sr.distB[v]
}

// UpwardSearch runs a full upward Dijkstra from s, invoking visit for every
// settled vertex with its upward distance. When pruneAt returns true for a
// settled vertex, its edges are not relaxed (the vertex is reported but the
// search does not continue through it). TNR uses this for access-node and
// local-cone computation.
func (x *Index) UpwardSearch(s int32, pruneAt func(v int32) bool, visit func(v int32, d graph.Dist)) {
	x.curU++
	if x.curU == 0 {
		for i := range x.stampU {
			x.stampU[i] = 0
		}
		x.curU = 1
	}
	uOf := func(v int32) graph.Dist {
		if x.stampU[v] != x.curU {
			return graph.Inf
		}
		return x.distU[v]
	}
	x.qu.Reset()
	x.distU[s] = 0
	x.stampU[s] = x.curU
	x.qu.Push(s, 0)
	for !x.qu.Empty() {
		it := x.qu.Pop()
		v := it.ID
		d := graph.Dist(it.Key)
		if d > uOf(v) {
			continue
		}
		visit(v, d)
		if pruneAt != nil && pruneAt(v) {
			continue
		}
		for e := x.upOff[v]; e < x.upOff[v+1]; e++ {
			u := x.upTo[e]
			nd := d + graph.Dist(x.upW[e])
			if nd < uOf(u) {
				x.distU[u] = nd
				x.stampU[u] = x.curU
				x.qu.Push(u, int64(nd))
			}
		}
	}
}

// SizeBytes estimates the index footprint.
func (x *Index) SizeBytes() int {
	return len(x.rank)*4 + len(x.upOff)*4 + len(x.upTo)*4 + len(x.upW)*4
}

var _ knn.DistanceOracle = (*Index)(nil)
var _ knn.DistanceOracle = (*Searcher)(nil)
