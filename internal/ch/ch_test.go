package ch_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/ch"
	"rnknn/internal/dijkstra"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
)

func testGraph(t testing.TB, seed int64, rows, cols int) *graph.Graph {
	t.Helper()
	return gen.Network(gen.NetworkSpec{Name: "t", Rows: rows, Cols: cols, Seed: seed})
}

func TestDistanceMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 81, 16, 16)
	x := ch.Build(g)
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		if got, want := x.Distance(s, tv), solver.Distance(s, tv); got != want {
			t.Fatalf("d(%d,%d) = %d, want %d", s, tv, got, want)
		}
	}
}

func TestDistanceTravelTime(t *testing.T) {
	g := testGraph(t, 82, 14, 14).View(graph.TravelTime)
	x := ch.Build(g)
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		if got, want := x.Distance(s, tv), solver.Distance(s, tv); got != want {
			t.Fatalf("time d(%d,%d) = %d, want %d", s, tv, got, want)
		}
	}
}

func TestSelfDistanceZero(t *testing.T) {
	g := testGraph(t, 83, 8, 8)
	x := ch.Build(g)
	for _, v := range []int32{0, 7, 30} {
		if d := x.Distance(v, v); d != 0 {
			t.Fatalf("d(%d,%d) = %d", v, v, d)
		}
	}
}

func TestRanksArePermutation(t *testing.T) {
	g := testGraph(t, 84, 10, 10)
	x := ch.Build(g)
	seen := make([]bool, g.NumVertices())
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		r := x.Rank(v)
		if r < 0 || int(r) >= g.NumVertices() || seen[r] {
			t.Fatalf("rank %d of %d invalid", r, v)
		}
		seen[r] = true
	}
}

func TestUpwardSearchVisitsSource(t *testing.T) {
	g := testGraph(t, 85, 10, 10)
	x := ch.Build(g)
	visited := map[int32]graph.Dist{}
	x.UpwardSearch(5, nil, func(v int32, d graph.Dist) { visited[v] = d })
	if d, ok := visited[5]; !ok || d != 0 {
		t.Fatalf("source not visited with 0: %v %v", d, ok)
	}
	// Upward distances over-approximate true distances.
	solver := dijkstra.NewSolver(g)
	for v, d := range visited {
		if want := solver.Distance(5, v); d < want {
			t.Fatalf("upward dist %d below true %d for %d", d, want, v)
		}
	}
}

func TestUpwardSearchPrune(t *testing.T) {
	g := testGraph(t, 86, 10, 10)
	x := ch.Build(g)
	full, pruned := 0, 0
	x.UpwardSearch(3, nil, func(int32, graph.Dist) { full++ })
	x.UpwardSearch(3, func(v int32) bool { return v != 3 }, func(int32, graph.Dist) { pruned++ })
	if pruned > full {
		t.Fatalf("pruned search visited more: %d > %d", pruned, full)
	}
	if pruned < 1 {
		t.Fatal("pruned search must still visit the source")
	}
}

func TestShortcutsReported(t *testing.T) {
	g := testGraph(t, 87, 12, 12)
	x := ch.Build(g)
	if x.Shortcuts <= 0 {
		t.Fatal("expected shortcuts on a grid network")
	}
	if x.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}
