// Binary snapshot codec for the contraction hierarchy: the rank permutation
// and the upward CSR (original + shortcut edges) — everything the witness
// searches of Build exist to produce. See docs/SNAPSHOT_FORMAT.md.
package ch

import (
	"io"

	"rnknn/internal/graph"
	"rnknn/internal/pqueue"
	"rnknn/internal/snapio"
)

// codecVersion is the CH section layout version.
const codecVersion uint16 = 1

// WriteTo serializes the index (io.WriterTo).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	sw := snapio.NewWriter(w)
	sw.U16(codecVersion)
	sw.U32(uint32(x.Shortcuts))
	sw.I32s(x.rank)
	sw.I32s(x.upOff)
	sw.I32s(x.upTo)
	sw.I32s(x.upW)
	return sw.Result()
}

// Read deserializes an index written by WriteTo and re-arms the query-time
// scratch state, validating CSR invariants against g.
func Read(r io.Reader, g *graph.Graph) (*Index, error) {
	sr := snapio.NewReader(r)
	if v := sr.U16(); sr.Err() == nil && v != codecVersion {
		sr.Failf("ch codec version %d (want %d)", v, codecVersion)
	}
	x := &Index{
		g:         g,
		Shortcuts: int(sr.U32()),
		rank:      sr.I32s(),
		upOff:     sr.I32s(),
		upTo:      sr.I32s(),
		upW:       sr.I32s(),
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	n := g.NumVertices()
	switch {
	case len(x.rank) != n:
		sr.Failf("ch rank has %d entries for %d vertices", len(x.rank), n)
	case len(x.upOff) != n+1 || x.upOff[0] != 0 || int(x.upOff[n]) != len(x.upTo) || len(x.upTo) != len(x.upW):
		sr.Failf("ch upward CSR is inconsistent")
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	for v := 0; v < n; v++ {
		if x.rank[v] < 0 || int(x.rank[v]) >= n {
			sr.Failf("ch rank[%d]=%d out of range", v, x.rank[v])
			return nil, sr.Err()
		}
		if x.upOff[v] > x.upOff[v+1] {
			sr.Failf("ch upward offsets not monotone at %d", v)
			return nil, sr.Err()
		}
	}
	for i, t := range x.upTo {
		if t < 0 || int(t) >= n {
			sr.Failf("ch upward target %d out of range at edge %d", t, i)
			return nil, sr.Err()
		}
	}
	x.def = x.NewSearcher()
	x.distU = make([]graph.Dist, n)
	x.stampU = make([]uint32, n)
	x.qu = pqueue.NewQueue(256)
	return x, nil
}
