// Binary snapshot codec for the contraction hierarchy: the rank permutation
// and the upward CSR (original + shortcut edges) — everything the witness
// searches of Build exist to produce. Layout v2 writes the four arrays
// 64-byte-aligned (snapio raw-array layout) so a mapped snapshot aliases
// them with zero copy; v1 payloads (element-streamed) are still read. See
// docs/SNAPSHOT_FORMAT.md.
package ch

import (
	"io"

	"rnknn/internal/graph"
	"rnknn/internal/pqueue"
	"rnknn/internal/snapio"
)

// codecVersion is the CH section layout version.
const codecVersion uint16 = 2

// WriteTo serializes the index (io.WriterTo).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	sw := snapio.NewWriter(w)
	sw.U16(codecVersion)
	sw.U32(uint32(x.Shortcuts))
	sw.RawI32s(x.rank)
	sw.RawI32s(x.upOff)
	sw.RawI32s(x.upTo)
	sw.RawI32s(x.upW)
	return sw.Result()
}

// Read deserializes an index written by WriteTo and re-arms the query-time
// scratch state, validating CSR invariants against g. When sr aliases a
// mapped snapshot the arrays are views of the mapping and the per-element
// validation scans are skipped (they would fault in every page — mapped
// opens trust the snapshot; dimensions are still checked).
func Read(sr *snapio.Source, g *graph.Graph) (*Index, error) {
	x := &Index{g: g}
	switch v := sr.U16(); {
	case sr.Err() != nil:
	case v == 1:
		x.Shortcuts = int(sr.U32())
		x.rank, x.upOff, x.upTo, x.upW = sr.I32s(), sr.I32s(), sr.I32s(), sr.I32s()
	case v == codecVersion:
		x.Shortcuts = int(sr.U32())
		x.rank, x.upOff, x.upTo, x.upW = sr.AlignedI32s(), sr.AlignedI32s(), sr.AlignedI32s(), sr.AlignedI32s()
	default:
		sr.Failf("ch codec version %d (want 1 or %d)", v, codecVersion)
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	n := g.NumVertices()
	switch {
	case len(x.rank) != n:
		sr.Failf("ch rank has %d entries for %d vertices", len(x.rank), n)
	case len(x.upOff) != n+1 || x.upOff[0] != 0 || int(x.upOff[n]) != len(x.upTo) || len(x.upTo) != len(x.upW):
		sr.Failf("ch upward CSR is inconsistent")
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	if !sr.Aliasing() {
		for v := 0; v < n; v++ {
			if x.rank[v] < 0 || int(x.rank[v]) >= n {
				sr.Failf("ch rank[%d]=%d out of range", v, x.rank[v])
				return nil, sr.Err()
			}
			if x.upOff[v] > x.upOff[v+1] {
				sr.Failf("ch upward offsets not monotone at %d", v)
				return nil, sr.Err()
			}
		}
		for i, t := range x.upTo {
			if t < 0 || int(t) >= n {
				sr.Failf("ch upward target %d out of range at edge %d", t, i)
				return nil, sr.Err()
			}
		}
	}
	x.def = x.NewSearcher()
	x.distU = make([]graph.Dist, n)
	x.stampU = make([]uint32, n)
	x.qu = pqueue.NewQueue(256)
	return x, nil
}
