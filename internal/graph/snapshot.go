// Snapshot-section codec for the graph itself: the CSR arrays, both weight
// views, and the coordinates, written 64-byte-aligned (snapio raw-array
// layout) so a mapped snapshot serves the graph with zero copy — the
// decoded Graph's slices alias the mapping. This is what makes a snapshot
// self-contained: a process can open one file and get graph plus indexes
// without re-reading the network from its original source.
//
// This is a different artifact from the standalone .rnkn graph file
// (io.go): that format is a transport for graphs alone, fully validated on
// read; this section lives inside an index snapshot whose container
// already binds it to a fingerprint, and its aliased decode deliberately
// skips the O(V+E) deep validation that would fault in every page.
package graph

import (
	"io"

	"rnknn/internal/snapio"
)

// snapCodecVersion is the Graph section layout version.
const snapCodecVersion uint16 = 1

// WriteSnapshot serializes g as a mappable snapshot section.
func (g *Graph) WriteSnapshot(w io.Writer) (int64, error) {
	sw := snapio.NewWriter(w)
	sw.U16(snapCodecVersion)
	sw.String(g.Name)
	sw.U8(uint8(g.Kind))
	sw.U32(uint32(g.NumVertices()))
	sw.U32(uint32(g.NumEdges()))
	sw.RawI32s(g.Offsets)
	sw.RawI32s(g.Targets)
	sw.RawI32s(g.DistW)
	sw.RawI32s(g.TimeW)
	sw.RawF64s(g.X)
	sw.RawF64s(g.Y)
	return sw.Result()
}

// ReadSnapshot deserializes a graph written by WriteSnapshot. Dimension
// checks always run; the per-edge structural scan (monotone offsets,
// targets in range) runs only when sr is not aliasing a mapped snapshot —
// mapped opens trust the file and touch pages on first use instead.
func ReadSnapshot(sr *snapio.Source) (*Graph, error) {
	if v := sr.U16(); sr.Err() == nil && v != snapCodecVersion {
		sr.Failf("graph codec version %d (want %d)", v, snapCodecVersion)
	}
	g := &Graph{Name: sr.String(), Kind: WeightKind(sr.U8())}
	n := int(sr.U32())
	m := int(sr.U32())
	g.Offsets = sr.AlignedI32s()
	g.Targets = sr.AlignedI32s()
	g.DistW = sr.AlignedI32s()
	g.TimeW = sr.AlignedI32s()
	g.X = sr.AlignedF64s()
	g.Y = sr.AlignedF64s()
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	switch g.Kind {
	case TravelDistance:
		g.W = g.DistW
	case TravelTime:
		g.W = g.TimeW
	default:
		sr.Failf("graph weight kind %d unknown", g.Kind)
		return nil, sr.Err()
	}
	switch {
	case n <= 0 || m < 0:
		sr.Failf("graph has %d vertices, %d edges", n, m)
	case len(g.Offsets) != n+1 || g.Offsets[0] != 0 || int(g.Offsets[n]) != m:
		sr.Failf("graph offsets are inconsistent for %d vertices, %d edges", n, m)
	case len(g.Targets) != m || len(g.DistW) != m || len(g.TimeW) != m:
		sr.Failf("graph edge arrays disagree with %d edges", m)
	case len(g.X) != n || len(g.Y) != n:
		sr.Failf("graph coordinates have %d/%d entries for %d vertices", len(g.X), len(g.Y), n)
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	if !sr.Aliasing() {
		for v := 0; v < n; v++ {
			if g.Offsets[v] > g.Offsets[v+1] {
				sr.Failf("graph offsets not monotone at %d", v)
				return nil, sr.Err()
			}
		}
		for i, t := range g.Targets {
			if t < 0 || int(t) >= n {
				sr.Failf("graph target %d out of range at edge %d", t, i)
				return nil, sr.Err()
			}
		}
	}
	return g, nil
}
