package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization of road networks, so generated datasets can be saved
// once and shared between experiment runs and tools.
//
// Format (little endian): magic "RNKN", version u32, name length u32 + name
// bytes, |V| u32, |directed edges| u32, then Offsets, Targets, DistW, TimeW
// as raw int32 arrays and X, Y as raw float64 arrays.

const ioMagic = "RNKN"
const ioVersion = 1

// Write serializes g to w.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ioMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU32 := func(v uint32) error { return binary.Write(bw, le, v) }
	if err := writeU32(ioVersion); err != nil {
		return err
	}
	if err := writeU32(uint32(len(g.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(g.Name); err != nil {
		return err
	}
	if err := writeU32(uint32(g.NumVertices())); err != nil {
		return err
	}
	if err := writeU32(uint32(g.NumEdges())); err != nil {
		return err
	}
	for _, arr := range [][]int32{g.Offsets, g.Targets, g.DistW, g.TimeW} {
		if err := binary.Write(bw, le, arr); err != nil {
			return err
		}
	}
	for _, arr := range [][]float64{g.X, g.Y} {
		if err := binary.Write(bw, le, arr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a graph written by WriteTo and validates its structure.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != ioMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	le := binary.LittleEndian
	var version uint32
	if err := binary.Read(br, le, &version); err != nil {
		return nil, err
	}
	if version != ioVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	var nameLen uint32
	if err := binary.Read(br, le, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("graph: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var nv, ne uint32
	if err := binary.Read(br, le, &nv); err != nil {
		return nil, err
	}
	if err := binary.Read(br, le, &ne); err != nil {
		return nil, err
	}
	if nv > math.MaxInt32 || ne > math.MaxInt32 {
		return nil, fmt.Errorf("graph: counts out of range: %d/%d", nv, ne)
	}
	g := &Graph{
		Name:    string(name),
		Offsets: make([]int32, nv+1),
		Targets: make([]int32, ne),
		DistW:   make([]int32, ne),
		TimeW:   make([]int32, ne),
		X:       make([]float64, nv),
		Y:       make([]float64, nv),
	}
	for _, arr := range [][]int32{g.Offsets, g.Targets, g.DistW, g.TimeW} {
		if err := binary.Read(br, le, arr); err != nil {
			return nil, err
		}
	}
	for _, arr := range [][]float64{g.X, g.Y} {
		if err := binary.Read(br, le, arr); err != nil {
			return nil, err
		}
	}
	g.W = g.DistW
	g.Kind = TravelDistance
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: loaded graph invalid: %w", err)
	}
	return g, nil
}
