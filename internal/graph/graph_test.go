package graph

import (
	"math"
	"testing"
)

// buildTriangle returns a 4-vertex graph: 0-1-2 path plus edge 0-2 and
// pendant 2-3.
func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	x := []float64{0, 10, 20, 30}
	y := []float64{0, 0, 0, 0}
	b := NewBuilder(4, x, y)
	b.AddEdge(0, 1, 10, 5)
	b.AddEdge(1, 2, 10, 5)
	b.AddEdge(0, 2, 25, 9)
	b.AddEdge(2, 3, 10, 5)
	return b.Build("tri")
}

func TestBuilderBasics(t *testing.T) {
	g := buildTriangle(t)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 8 {
		t.Fatalf("NumEdges = %d, want 8 directed entries", g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(2) != 3 || g.Degree(3) != 1 {
		t.Fatalf("unexpected degrees: %d %d %d", g.Degree(0), g.Degree(2), g.Degree(3))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	g := buildTriangle(t)
	w, ok := g.EdgeWeightBetween(0, 2)
	if !ok || w != 25 {
		t.Fatalf("EdgeWeightBetween(0,2) = %d,%v", w, ok)
	}
	w2, ok2 := g.EdgeWeightBetween(2, 0)
	if !ok2 || w2 != w {
		t.Fatalf("asymmetric weight %d vs %d", w, w2)
	}
	if _, ok := g.EdgeWeightBetween(0, 3); ok {
		t.Fatal("phantom edge 0-3")
	}
}

func TestViewSwitchesWeights(t *testing.T) {
	g := buildTriangle(t)
	tv := g.View(TravelTime)
	wd, _ := g.EdgeWeightBetween(0, 1)
	wt, _ := tv.EdgeWeightBetween(0, 1)
	if wd != 10 || wt != 5 {
		t.Fatalf("weights: dist=%d time=%d", wd, wt)
	}
	if tv.Kind != TravelTime || g.Kind != TravelDistance {
		t.Fatal("View must not mutate the receiver")
	}
	// Topology shared.
	if tv.NumEdges() != g.NumEdges() {
		t.Fatal("view changed topology")
	}
}

func TestEuclidAndLB(t *testing.T) {
	g := buildTriangle(t)
	if d := g.Euclid(0, 2); math.Abs(d-20) > 1e-9 {
		t.Fatalf("Euclid(0,2) = %v", d)
	}
	if lb := g.EuclidLB(0, 2); lb != 20 {
		t.Fatalf("EuclidLB = %d", lb)
	}
}

func TestMaxSpeed(t *testing.T) {
	g := buildTriangle(t)
	// Distance kind: edge 0-1 has dE=10,w=10 -> ratio 1; edge 0-2 dE=20,w=25
	// -> 0.8. Max is 1.
	if s := g.MaxSpeed(); math.Abs(s-1.0) > 1e-9 {
		t.Fatalf("MaxSpeed dist = %v", s)
	}
	tv := g.View(TravelTime)
	// Time kind: edge 0-1 dE=10,w=5 -> 2; 0-2: 20/9=2.22; 1-2: 10/5=2.
	if s := tv.MaxSpeed(); math.Abs(s-20.0/9.0) > 1e-9 {
		t.Fatalf("MaxSpeed time = %v", s)
	}
}

func TestDuplicateEdgesKeepMin(t *testing.T) {
	x := []float64{0, 1}
	y := []float64{0, 0}
	b := NewBuilder(2, x, y)
	b.AddEdge(0, 1, 10, 10)
	b.AddEdge(1, 0, 7, 12)
	g := b.Build("dup")
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want deduplicated 2", g.NumEdges())
	}
	w, _ := g.EdgeWeightBetween(0, 1)
	if w != 7 {
		t.Fatalf("dedup kept %d, want min 7", w)
	}
	tw, _ := g.View(TravelTime).EdgeWeightBetween(0, 1)
	if tw != 10 {
		t.Fatalf("dedup kept time %d, want min 10", tw)
	}
}

func TestValidateRejectsDisconnected(t *testing.T) {
	x := []float64{0, 1, 10, 11}
	y := []float64{0, 0, 0, 0}
	b := NewBuilder(4, x, y)
	b.AddEdge(0, 1, 2, 2)
	b.AddEdge(2, 3, 2, 2)
	g := b.Build("disc")
	if g.Connected() {
		t.Fatal("graph should be disconnected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should reject disconnected graph")
	}
}

func TestDegreeHistogramAndChains(t *testing.T) {
	g := buildTriangle(t)
	hist := g.DegreeHistogram()
	// degrees: v0=2 v1=2 v2=3 v3=1
	if hist[1] != 1 || hist[2] != 2 || hist[3] != 1 {
		t.Fatalf("hist = %v", hist)
	}
	if f := g.ChainFraction(); math.Abs(f-0.75) > 1e-9 {
		t.Fatalf("ChainFraction = %v", f)
	}
}
