// Package graph provides the in-memory road-network representation shared by
// every index and query algorithm in this repository.
//
// The layout follows the paper's main-memory guidance (Section 6.2, choice 3):
// all adjacency lists are packed into a single edge array (Targets/weights)
// indexed by a per-vertex offset array, so that expanding a vertex touches
// contiguous memory.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a network distance: a sum of non-negative edge weights.
type Dist = int64

// Inf is a sentinel distance larger than any real path length. It is small
// enough that Inf+weight does not overflow.
const Inf Dist = math.MaxInt64 / 4

// WeightKind selects which edge-weight metric a view of the graph exposes.
type WeightKind uint8

const (
	// TravelDistance weights approximate physical edge lengths; they are
	// guaranteed by the generator to upper-bound the Euclidean distance
	// between the endpoints, so Euclidean distance is a valid lower bound.
	TravelDistance WeightKind = iota
	// TravelTime weights approximate traversal times; Euclidean distance is
	// only a lower bound after scaling by the maximum speed (Section 7.5).
	TravelTime
)

func (k WeightKind) String() string {
	switch k {
	case TravelDistance:
		return "distance"
	case TravelTime:
		return "time"
	default:
		return fmt.Sprintf("WeightKind(%d)", uint8(k))
	}
}

// Graph is a connected undirected road network in CSR (compressed sparse row)
// form. Vertices are dense integers in [0, NumVertices). Every undirected
// edge {u,v} is stored twice, once in each direction, with identical weights.
//
// W is the active weight array selected by View; algorithms read W only, so a
// single topology serves both travel-distance and travel-time experiments.
type Graph struct {
	Name string

	// Offsets has length NumVertices()+1; the adjacency list of vertex v is
	// Targets[Offsets[v]:Offsets[v+1]] with weights W[Offsets[v]:Offsets[v+1]].
	Offsets []int32
	Targets []int32

	// W is the active per-edge weight array (aliases DistW or TimeW).
	W []int32
	// DistW and TimeW are the travel-distance and travel-time weights.
	DistW []int32
	TimeW []int32

	// X, Y are planar vertex coordinates in the same units as DistW, so that
	// Euclid(u,v) <= DistW edge weights along any path.
	X, Y []float64

	// Kind records which weight array W aliases.
	Kind WeightKind
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the number of directed edge entries (twice the number of
// undirected edges).
func (g *Graph) NumEdges() int { return len(g.Targets) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int { return int(g.Offsets[v+1] - g.Offsets[v]) }

// Neighbors returns the adjacency slice of v: parallel target and weight
// slices. The slices alias the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int32) (targets []int32, weights []int32) {
	lo, hi := g.Offsets[v], g.Offsets[v+1]
	return g.Targets[lo:hi], g.W[lo:hi]
}

// View returns a shallow copy of g whose active weights W alias the array for
// kind. The topology, coordinates and underlying weight arrays are shared.
func (g *Graph) View(kind WeightKind) *Graph {
	out := *g
	out.Kind = kind
	switch kind {
	case TravelTime:
		out.W = g.TimeW
	default:
		out.W = g.DistW
	}
	return &out
}

// Euclid returns the Euclidean distance between vertices u and v in the same
// units as travel-distance weights.
func (g *Graph) Euclid(u, v int32) float64 {
	dx := g.X[u] - g.X[v]
	dy := g.Y[u] - g.Y[v]
	return math.Sqrt(dx*dx + dy*dy)
}

// EuclidLB returns a Dist that is guaranteed not to exceed the true Euclidean
// distance between u and v (floor of the float value), suitable as a network
// distance lower bound on travel-distance graphs.
func (g *Graph) EuclidLB(u, v int32) Dist {
	return Dist(math.Floor(g.Euclid(u, v)))
}

// MaxSpeed returns S = max over edges of dE(u,v)/w(u,v) for the active weight
// kind (Section 7.5). Dividing a Euclidean distance by S yields a lower bound
// on network distance for any positive weight metric. Edges of weight zero
// are impossible (weights are validated positive).
func (g *Graph) MaxSpeed() float64 {
	s := 0.0
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		ts, ws := g.Neighbors(u)
		for i, v := range ts {
			if v < u {
				continue // each undirected edge once
			}
			if r := g.Euclid(u, v) / float64(ws[i]); r > s {
				s = r
			}
		}
	}
	if s == 0 {
		s = 1
	}
	return s
}

// EdgeWeightBetween returns the weight of the edge {u,v} under the active
// weights and whether such an edge exists.
func (g *Graph) EdgeWeightBetween(u, v int32) (int32, bool) {
	ts, ws := g.Neighbors(u)
	for i, t := range ts {
		if t == v {
			return ws[i], true
		}
	}
	return 0, false
}

// Validate checks structural invariants: sorted offsets, targets in range,
// positive weights, symmetry of the undirected representation, and that
// travel-distance weights upper-bound Euclidean lengths. It is intended for
// tests and data-loading paths, not hot loops.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n <= 0 {
		return fmt.Errorf("graph has no vertices")
	}
	if len(g.Offsets) != n+1 || g.Offsets[0] != 0 || int(g.Offsets[n]) != len(g.Targets) {
		return fmt.Errorf("malformed offsets")
	}
	if len(g.DistW) != len(g.Targets) || len(g.TimeW) != len(g.Targets) {
		return fmt.Errorf("weight arrays do not match edge count")
	}
	if len(g.X) != n || len(g.Y) != n {
		return fmt.Errorf("coordinate arrays do not match vertex count")
	}
	type key struct{ u, v int32 }
	seen := make(map[key]int32, len(g.Targets))
	for u := int32(0); u < int32(n); u++ {
		if g.Offsets[u] > g.Offsets[u+1] {
			return fmt.Errorf("offsets not monotone at %d", u)
		}
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			v := g.Targets[i]
			if v < 0 || int(v) >= n {
				return fmt.Errorf("target out of range: %d", v)
			}
			if v == u {
				return fmt.Errorf("self loop at %d", u)
			}
			if g.DistW[i] <= 0 || g.TimeW[i] <= 0 {
				return fmt.Errorf("non-positive weight on edge %d->%d", u, v)
			}
			if float64(g.DistW[i]) < g.Euclid(u, v)-1e-6 {
				return fmt.Errorf("distance weight below Euclidean on %d->%d", u, v)
			}
			seen[key{u, v}] = g.DistW[i]
		}
	}
	for k, w := range seen {
		if w2, ok := seen[key{k.v, k.u}]; !ok || w2 != w {
			return fmt.Errorf("asymmetric edge %d<->%d", k.u, k.v)
		}
	}
	if !g.Connected() {
		return fmt.Errorf("graph is not connected")
	}
	return nil
}

// Connected reports whether the graph is a single connected component.
func (g *Graph) Connected() bool {
	n := g.NumVertices()
	if n == 0 {
		return false
	}
	visited := make([]bool, n)
	stack := []int32{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ts, _ := g.Neighbors(v)
		for _, t := range ts {
			if !visited[t] {
				visited[t] = true
				count++
				stack = append(stack, t)
			}
		}
	}
	return count == n
}

// DegreeHistogram returns counts of vertices by degree (index = degree).
func (g *Graph) DegreeHistogram() []int {
	var hist []int
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		d := g.Degree(v)
		for len(hist) <= d {
			hist = append(hist, 0)
		}
		hist[d]++
	}
	return hist
}

// ChainFraction returns the fraction of vertices with degree <= 2, the
// population exploited by the SILC chain optimisation (Appendix A.1.2).
func (g *Graph) ChainFraction() float64 {
	c := 0
	n := g.NumVertices()
	for v := int32(0); v < int32(n); v++ {
		if g.Degree(v) <= 2 {
			c++
		}
	}
	return float64(c) / float64(n)
}

// Builder accumulates undirected edges and produces a Graph in CSR form.
type Builder struct {
	n     int
	x, y  []float64
	edges []builderEdge
}

type builderEdge struct {
	u, v int32
	dw   int32
	tw   int32
}

// NewBuilder creates a builder for n vertices with the given coordinates.
func NewBuilder(n int, x, y []float64) *Builder {
	if len(x) != n || len(y) != n {
		panic("graph: coordinate arrays must have length n")
	}
	return &Builder{n: n, x: x, y: y}
}

// AddEdge records the undirected edge {u,v} with travel-distance weight dw
// and travel-time weight tw. Duplicate edges are ignored at Build time,
// keeping the smaller weight.
func (b *Builder) AddEdge(u, v int32, dw, tw int32) {
	if u == v {
		return
	}
	if dw <= 0 {
		dw = 1
	}
	if tw <= 0 {
		tw = 1
	}
	b.edges = append(b.edges, builderEdge{u, v, dw, tw})
}

// Build assembles the CSR graph with active travel-distance weights.
func (b *Builder) Build(name string) *Graph {
	// Deduplicate on the normalized (min,max) pair keeping minimum weights.
	for i := range b.edges {
		if b.edges[i].u > b.edges[i].v {
			b.edges[i].u, b.edges[i].v = b.edges[i].v, b.edges[i].u
		}
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	dedup := b.edges[:0]
	for _, e := range b.edges {
		if len(dedup) > 0 {
			last := &dedup[len(dedup)-1]
			if last.u == e.u && last.v == e.v {
				if e.dw < last.dw {
					last.dw = e.dw
				}
				if e.tw < last.tw {
					last.tw = e.tw
				}
				continue
			}
		}
		dedup = append(dedup, e)
	}
	b.edges = dedup

	deg := make([]int32, b.n+1)
	for _, e := range b.edges {
		deg[e.u+1]++
		deg[e.v+1]++
	}
	for i := 1; i <= b.n; i++ {
		deg[i] += deg[i-1]
	}
	offsets := deg
	m := int(offsets[b.n])
	targets := make([]int32, m)
	dw := make([]int32, m)
	tw := make([]int32, m)
	pos := make([]int32, b.n)
	copy(pos, offsets[:b.n])
	put := func(u, v, d, t int32) {
		p := pos[u]
		targets[p] = v
		dw[p] = d
		tw[p] = t
		pos[u] = p + 1
	}
	for _, e := range b.edges {
		put(e.u, e.v, e.dw, e.tw)
		put(e.v, e.u, e.dw, e.tw)
	}
	g := &Graph{
		Name:    name,
		Offsets: offsets,
		Targets: targets,
		DistW:   dw,
		TimeW:   tw,
		X:       b.x,
		Y:       b.y,
		Kind:    TravelDistance,
	}
	g.W = g.DistW
	return g
}
