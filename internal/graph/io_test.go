package graph_test

import (
	"bytes"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/graph"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "roundtrip", Rows: 12, Cols: 12, Seed: 171})
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, err := graph.Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g2.Name != g.Name || g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("metadata mismatch")
	}
	for i := range g.Targets {
		if g.Targets[i] != g2.Targets[i] || g.DistW[i] != g2.DistW[i] || g.TimeW[i] != g2.TimeW[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.X[v] != g2.X[v] || g.Y[v] != g2.Y[v] {
			t.Fatalf("coordinate %d mismatch", v)
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "x", Rows: 8, Cols: 8, Seed: 172})
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte("XXXX"), good[4:]...)
	if _, err := graph.Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted bad magic")
	}
	// Truncated stream.
	if _, err := graph.Read(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("accepted truncation")
	}
	// Corrupt a weight to zero: Validate must reject non-positive weights.
	cp := append([]byte(nil), good...)
	// Weights live after header+offsets+targets; flip a chunk to zeros.
	for i := len(cp) / 2; i < len(cp)/2+64 && i < len(cp); i++ {
		cp[i] = 0
	}
	if _, err := graph.Read(bytes.NewReader(cp)); err == nil {
		t.Fatal("accepted corrupted body")
	}
}

func TestReadEmptyInput(t *testing.T) {
	if _, err := graph.Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
}
