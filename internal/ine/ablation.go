package ine

import (
	"rnknn/internal/bitset"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/pqueue"
)

// Variant selects one rung of the Figure 7 implementation ladder. Each rung
// keeps the previous rung's choices and improves one more.
type Variant int

const (
	// FirstCut: per-vertex adjacency objects, decrease-key indexed heap.
	FirstCut Variant = iota
	// PQueue: binary heap without decrease-key (duplicates allowed).
	PQueue
	// Settled: the rung that historically introduced the bit-array settled
	// container. All rungs now share the main INE path's bit-array (the
	// Section 6.2 recommendation), so this rung is timing-equivalent to
	// PQueue; it is kept so Figure 7's ladder labels still resolve.
	Settled
	// CSRGraph: single packed edge array (this equals the production INE).
	CSRGraph
)

func (v Variant) String() string {
	switch v {
	case FirstCut:
		return "1st Cut"
	case PQueue:
		return "PQueue"
	case Settled:
		return "Settled"
	case CSRGraph:
		return "Graph"
	}
	return "?"
}

// adjEntry is a naive adjacency record for the pre-CSR variants.
type adjEntry struct {
	to int32
	w  int32
}

// vertexObj models the "array of node objects, each containing an adjacency
// list array" representation the paper starts from.
type vertexObj struct {
	adj []adjEntry
}

// Ablation is an INE implementation parameterized by Variant; it exists to
// reproduce Figure 7 and is intentionally not optimized further.
type Ablation struct {
	variant Variant
	g       *graph.Graph
	objs    *knn.ObjectSet
	naive   []vertexObj
	settled *bitset.Set
}

// NewAblation builds the variant's data structures over g.
func NewAblation(g *graph.Graph, objs *knn.ObjectSet, v Variant) *Ablation {
	a := &Ablation{variant: v, g: g, objs: objs}
	if v < CSRGraph {
		a.naive = make([]vertexObj, g.NumVertices())
		for u := int32(0); u < int32(g.NumVertices()); u++ {
			ts, ws := g.Neighbors(u)
			adj := make([]adjEntry, len(ts))
			for i := range ts {
				adj[i] = adjEntry{ts[i], ws[i]}
			}
			a.naive[u].adj = adj
		}
	}
	a.settled = bitset.New(g.NumVertices())
	return a
}

// Name implements knn.Method.
func (a *Ablation) Name() string { return "INE-" + a.variant.String() }

// KNN implements knn.Method.
func (a *Ablation) KNN(qv int32, k int) []knn.Result {
	if a.variant == FirstCut {
		return a.knnDecreaseKey(qv, k)
	}
	return a.knnDuplicates(qv, k)
}

// KNNAppend implements knn.Method. The ablation rungs deliberately keep
// their per-query allocations (that overhead is part of what Figure 7
// measures), so this is a copy of the buffered answer, not a zero-alloc
// path.
func (a *Ablation) KNNAppend(qv int32, k int, dst []knn.Result) []knn.Result {
	return append(dst, a.KNN(qv, k)...)
}

// knnDecreaseKey is the first-cut variant: indexed heap with decrease-key
// over per-vertex adjacency objects. The settled container is the shared
// bit-array (see Variant).
func (a *Ablation) knnDecreaseKey(qv int32, k int) []knn.Result {
	q := pqueue.NewIndexedQueue(256)
	a.settled.Reset()
	out := make([]knn.Result, 0, k)
	q.PushOrDecrease(qv, 0)
	for !q.Empty() && len(out) < k {
		it := q.Pop()
		v := it.ID
		a.settled.Set(v)
		d := graph.Dist(it.Key)
		if a.objs.Contains(v) {
			out = append(out, knn.Result{Vertex: v, Dist: d})
			if len(out) == k {
				break
			}
		}
		for _, e := range a.naive[v].adj {
			if a.settled.Get(e.to) {
				continue
			}
			q.PushOrDecrease(e.to, int64(d)+int64(e.w))
		}
	}
	return out
}

// knnDuplicates covers the PQueue, Settled and CSRGraph rungs: a duplicate-
// tolerant heap and the shared bit-array settled container, with the graph
// layout depending on the variant.
func (a *Ablation) knnDuplicates(qv int32, k int) []knn.Result {
	q := pqueue.NewQueue(256)
	a.settled.Reset()
	useCSR := a.variant >= CSRGraph

	out := make([]knn.Result, 0, k)
	q.Push(qv, 0)
	for !q.Empty() && len(out) < k {
		it := q.Pop()
		v := it.ID
		if a.settled.Get(v) {
			continue
		}
		a.settled.Set(v)
		d := graph.Dist(it.Key)
		if a.objs.Contains(v) {
			out = append(out, knn.Result{Vertex: v, Dist: d})
			if len(out) == k {
				break
			}
		}
		if useCSR {
			ts, ws := a.g.Neighbors(v)
			for i, t := range ts {
				if a.settled.Get(t) {
					continue
				}
				q.Push(t, int64(d)+int64(ws[i]))
			}
		} else {
			for _, e := range a.naive[v].adj {
				if a.settled.Get(e.to) {
					continue
				}
				q.Push(e.to, int64(d)+int64(e.w))
			}
		}
	}
	return out
}
