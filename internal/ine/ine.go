// Package ine implements Incremental Network Expansion (Section 3.1), the
// Dijkstra-derived baseline kNN method, in the optimised main-memory form
// the paper arrives at in Section 6.2: CSR graph, binary heap without
// decrease-key, bit-array settled container.
//
// The deliberately degraded variants of ablation.go reproduce the Figure 7
// implementation ladder (1st Cut -> PQueue -> Settled -> Graph).
package ine

import (
	"rnknn/internal/bitset"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/pqueue"
)

// INE answers kNN queries by incremental network expansion from the query
// vertex. Not safe for concurrent use.
type INE struct {
	g       *graph.Graph
	objs    *knn.ObjectSet
	dist    []graph.Dist
	stamp   []uint32
	cur     uint32
	settled *bitset.Set
	q       *pqueue.Queue

	// interrupt, when non-nil, is polled every interruptStride settled
	// vertices; a true return aborts the scan early.
	interrupt func() bool

	// out and collect implement the allocation-free KNNAppend: collect is
	// a collector closure bound once at construction, so the append-into-
	// caller-buffer path creates no per-query closure.
	out     []knn.Result
	collect func(knn.Result) bool

	// grp is the shared-expansion batch scratch (see group.go), created on
	// the first KNNGroupAppend so single-query sessions stay lean.
	grp *groupState

	// VisitedVertices counts vertices settled by the last query (an
	// experiment statistic).
	VisitedVertices int
}

// interruptStride is how many settled vertices pass between interrupt
// polls: frequent enough to bound cancellation latency on graph-wide scans,
// rare enough to stay off the per-vertex hot path.
const interruptStride = 256

// New returns an INE method over g and the object set.
func New(g *graph.Graph, objs *knn.ObjectSet) *INE {
	n := g.NumVertices()
	x := &INE{
		g:       g,
		objs:    objs,
		dist:    make([]graph.Dist, n),
		stamp:   make([]uint32, n),
		settled: bitset.New(n),
		q:       pqueue.NewQueue(1024),
	}
	x.collect = func(r knn.Result) bool {
		x.out = append(x.out, r)
		return true
	}
	return x
}

// Name implements knn.Method.
func (x *INE) Name() string { return "INE" }

// SetObjects swaps the object set (object indexes are decoupled from the
// road network index, Section 2.2).
func (x *INE) SetObjects(objs *knn.ObjectSet) { x.objs = objs }

// SetInterrupt implements knn.Interruptible.
func (x *INE) SetInterrupt(check func() bool) { x.interrupt = check }

// KNN implements knn.Method.
func (x *INE) KNN(qv int32, k int) []knn.Result {
	return x.KNNAppend(qv, k, make([]knn.Result, 0, k))
}

// KNNAppend implements knn.Method: the zero-allocation query form (the
// caller owns dst, the session owns everything else).
func (x *INE) KNNAppend(qv int32, k int, dst []knn.Result) []knn.Result {
	x.out = dst
	x.KNNStream(qv, k, x.collect)
	dst = x.out
	x.out = nil
	return dst
}

// KNNStream implements knn.Streamer. Expansion settles vertices in
// nondecreasing distance order, so every object is final the moment it is
// settled — INE is the naturally incremental method: the first neighbor is
// yielded long before the k-th is found, and a false return from yield
// abandons the rest of the expansion.
func (x *INE) KNNStream(qv int32, k int, yield func(knn.Result) bool) {
	x.cur++
	if x.cur == 0 {
		for i := range x.stamp {
			x.stamp[i] = 0
		}
		x.cur = 1
	}
	// The per-query bit-array reset is the pre-allocation overhead the
	// paper discusses (Section 6.2, choice 2): proportionally expensive for
	// small search spaces, a large win for big ones.
	x.settled.Reset()
	x.q.Reset()
	x.VisitedVertices = 0

	found := 0
	x.dist[qv] = 0
	x.stamp[qv] = x.cur
	x.q.Push(qv, 0)
	for !x.q.Empty() && found < k {
		it := x.q.Pop()
		v := it.ID
		if x.settled.Get(v) {
			continue
		}
		x.settled.Set(v)
		x.VisitedVertices++
		if x.interrupt != nil && x.VisitedVertices%interruptStride == 0 && x.interrupt() {
			break
		}
		d := graph.Dist(it.Key)
		if x.objs.Contains(v) {
			found++
			if !yield(knn.Result{Vertex: v, Dist: d}) {
				break
			}
			if found == k {
				break
			}
		}
		ts, ws := x.g.Neighbors(v)
		for i, t := range ts {
			if x.settled.Get(t) {
				continue
			}
			nd := d + graph.Dist(ws[i])
			if x.stamp[t] != x.cur || nd < x.dist[t] {
				x.dist[t] = nd
				x.stamp[t] = x.cur
				x.q.Push(t, int64(nd))
			}
		}
	}
}

// Range returns every object within network distance radius of qv, in
// nondecreasing distance order — the range-query companion of KNN, using
// the same expansion machinery.
func (x *INE) Range(qv int32, radius graph.Dist) []knn.Result {
	return x.RangeAppend(qv, radius, nil)
}

// RangeAppend implements knn.RangeMethod's caller-owned-buffer form.
func (x *INE) RangeAppend(qv int32, radius graph.Dist, dst []knn.Result) []knn.Result {
	x.cur++
	if x.cur == 0 {
		for i := range x.stamp {
			x.stamp[i] = 0
		}
		x.cur = 1
	}
	x.settled.Reset()
	x.q.Reset()
	x.VisitedVertices = 0

	out := dst
	x.dist[qv] = 0
	x.stamp[qv] = x.cur
	x.q.Push(qv, 0)
	for !x.q.Empty() {
		it := x.q.Pop()
		v := it.ID
		if x.settled.Get(v) {
			continue
		}
		d := graph.Dist(it.Key)
		if d > radius {
			break
		}
		x.settled.Set(v)
		x.VisitedVertices++
		if x.interrupt != nil && x.VisitedVertices%interruptStride == 0 && x.interrupt() {
			break
		}
		if x.objs.Contains(v) {
			out = append(out, knn.Result{Vertex: v, Dist: d})
		}
		ts, ws := x.g.Neighbors(v)
		for i, t := range ts {
			if x.settled.Get(t) {
				continue
			}
			nd := d + graph.Dist(ws[i])
			if nd <= radius && (x.stamp[t] != x.cur || nd < x.dist[t]) {
				x.dist[t] = nd
				x.stamp[t] = x.cur
				x.q.Push(t, int64(nd))
			}
		}
	}
	return out
}

var (
	_ knn.Method        = (*INE)(nil)
	_ knn.RangeMethod   = (*INE)(nil)
	_ knn.Interruptible = (*INE)(nil)
	_ knn.Streamer      = (*INE)(nil)
)
