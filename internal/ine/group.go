package ine

import (
	"rnknn/internal/dijkstra"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

// Shared-expansion batch execution: a group of spatially-clustered kNN
// queries runs as ONE multi-source frontier (dijkstra.MultiSource) that
// settles each vertex once and feeds every member's result collector,
// instead of len(qs) independent INE expansions over nearly the same
// region. Each member keeps its own k-th-distance bound; the frontier stops
// once the queue minimum exceeds every member's bound, which preserves
// per-member exactness (see the MultiSource exactness argument).
//
// All group state below is arena-backed and reused across calls, so a warm
// shared batch allocates nothing.

// groupState is the per-session scratch of the shared expansion.
type groupState struct {
	ms *dijkstra.MultiSource

	qs  []knn.GroupQuery
	src []int32

	// Per-member k-bounded max-heaps. off[u] is member u's arena base; both
	// the bound heap (distances only, maintained during expansion) and the
	// final selection heap (vertex+distance pairs) use the same layout.
	off  []int32
	size []int32
	bnd  []graph.Dist
	res  []knn.Result

	// objs lists settled object vertices (final labels are read back from
	// the frontier after the expansion terminates).
	objs []int32

	// mb holds each member's live pruning bound (its k-th tentative object
	// distance, Inf until k candidates exist), exported to the frontier as
	// MultiSource.Bounds so each member's wave stops expanding at its own
	// k-th-distance bound.
	mb []graph.Dist

	// bound is the current global stop bound: the max over member bounds,
	// Inf until every member has k candidates.
	bound graph.Dist

	// settle is the MultiSource callback, bound once so warm group queries
	// create no per-call closure.
	settle func(v int32, labels []graph.Dist) graph.Dist
}

// GroupStats reports the last shared group expansion: vertices settled once
// for the whole group, and label-correcting re-settles (the exactness
// price, near zero for tight clusters).
type GroupStats struct {
	SettledVertices int
	Relabeled       int
}

// LastGroupStats returns statistics of the last KNNGroupAppend.
func (x *INE) LastGroupStats() GroupStats {
	if x.grp == nil || x.grp.ms == nil {
		return GroupStats{}
	}
	return GroupStats{SettledVertices: x.grp.ms.SettledVertices, Relabeled: x.grp.ms.Relabeled}
}

// KNNGroupAppend implements knn.BatchMethod: one shared expansion answers
// every member of the group exactly.
func (x *INE) KNNGroupAppend(qs []knn.GroupQuery, dst [][]knn.Result) {
	if len(qs) == 0 {
		return
	}
	if len(qs) == 1 {
		dst[0] = x.KNNAppend(qs[0].Q, qs[0].K, dst[0])
		return
	}
	g := x.grp
	if g == nil {
		g = &groupState{ms: dijkstra.NewMultiSource(x.g)}
		g.settle = func(v int32, labels []graph.Dist) graph.Dist {
			return x.groupSettle(v, labels)
		}
		x.grp = g
	}
	m := len(qs)
	g.qs = append(g.qs[:0], qs...)
	g.src = g.src[:0]
	total := 0
	for _, q := range qs {
		g.src = append(g.src, q.Q)
		total += q.K
	}
	if cap(g.off) < m+1 {
		g.off = make([]int32, m+1)
		g.size = make([]int32, m)
	}
	g.off = g.off[:m+1]
	g.size = g.size[:m]
	g.off[0] = 0
	for u, q := range qs {
		g.off[u+1] = g.off[u] + int32(q.K)
		g.size[u] = 0
	}
	if cap(g.bnd) < total {
		g.bnd = make([]graph.Dist, total)
		g.res = make([]knn.Result, total)
	}
	g.bnd = g.bnd[:total]
	g.res = g.res[:total]
	if cap(g.mb) < m {
		g.mb = make([]graph.Dist, m)
	}
	g.mb = g.mb[:m]
	for u := range g.mb {
		g.mb[u] = graph.Inf
	}
	g.objs = g.objs[:0]
	g.bound = graph.Inf

	g.ms.Interrupt = x.interrupt
	g.ms.Bounds = g.mb
	g.ms.Expand(g.src, g.settle)
	x.VisitedVertices = g.ms.SettledVertices

	// The expansion is over: labels at or below each member's bound are
	// final. Select each member's k nearest among the settled objects from
	// the final labels — tentative distances seen mid-expansion may have
	// improved since, so the selection must re-read them.
	for u := range qs {
		dst[u] = g.selectMember(u, dst[u])
	}
}

// groupSettle is the frontier callback: track settled objects and maintain
// each member's k-th-distance bound, returning the group's stop bound.
func (x *INE) groupSettle(v int32, labels []graph.Dist) graph.Dist {
	g := x.grp
	if !x.objs.Contains(v) {
		return g.bound
	}
	g.objs = append(g.objs, v)
	changed := false
	for u := range g.qs {
		d := labels[u]
		if d >= graph.Inf || g.qs[u].K <= 0 {
			continue
		}
		k := int32(g.qs[u].K)
		h := g.bnd[g.off[u]:g.off[u+1]]
		n := g.size[u]
		switch {
		case n < k:
			heapPushDist(h, int(n), d)
			g.size[u] = n + 1
			if n+1 == k {
				g.mb[u] = h[0]
			}
			changed = true
		case d < h[0]:
			heapReplaceDist(h, int(n), d)
			g.mb[u] = h[0]
			changed = true
		}
	}
	if changed {
		// Recompute the stop bound: Inf while any member is short of k
		// candidates, else the worst member's k-th tentative distance.
		b := graph.Dist(0)
		for u := range g.qs {
			if g.size[u] < int32(g.qs[u].K) {
				return graph.Inf
			}
			if top := g.bnd[g.off[u]]; top > b {
				b = top
			}
		}
		g.bound = b
	}
	return g.bound
}

// selectMember picks member u's k smallest final object distances,
// tie-broken by vertex id, and appends them in ascending order.
func (g *groupState) selectMember(u int, dst []knn.Result) []knn.Result {
	k := g.qs[u].K
	if k <= 0 {
		return dst
	}
	h := g.res[g.off[u]:g.off[u+1]]
	n := 0
	for _, v := range g.objs {
		d := g.ms.Label(v, u)
		if d >= graph.Inf {
			continue
		}
		r := knn.Result{Vertex: v, Dist: d}
		switch {
		case n < k:
			heapPushRes(h, n, r)
			n++
		case resultLess(r, h[0]):
			heapReplaceRes(h, n, r)
		}
	}
	base := len(dst)
	dst = append(dst, h[:n]...)
	for i := n - 1; i >= 0; i-- {
		dst[base+i] = h[0]
		heapPopRes(h, i+1)
	}
	return dst
}

// resultLess orders results by (distance, vertex): the deterministic total
// order the shared path reports ties in.
func resultLess(a, b knn.Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Vertex < b.Vertex
}

// Max-heap over distances (member bound heaps). h[0] is the largest of the
// first n entries.

func heapPushDist(h []graph.Dist, n int, d graph.Dist) {
	h[n] = d
	for i := n; i > 0; {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func heapReplaceDist(h []graph.Dist, n int, d graph.Dist) {
	h[0] = d
	siftDownDist(h, 0, n)
}

func siftDownDist(h []graph.Dist, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && h[r] > h[l] {
			big = r
		}
		if h[i] >= h[big] {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// Max-heap over results ordered by resultLess (final selection heaps).

func heapPushRes(h []knn.Result, n int, r knn.Result) {
	h[n] = r
	for i := n; i > 0; {
		p := (i - 1) / 2
		if !resultLess(h[p], h[i]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func heapReplaceRes(h []knn.Result, n int, r knn.Result) {
	h[0] = r
	siftDownRes(h, 0, n)
}

// heapPopRes removes the maximum of h[:n] (moving the last entry to the
// root and sifting down over n-1 entries).
func heapPopRes(h []knn.Result, n int) {
	h[0] = h[n-1]
	siftDownRes(h, 0, n-1)
}

func siftDownRes(h []knn.Result, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && resultLess(h[l], h[r]) {
			big = r
		}
		if !resultLess(h[i], h[big]) {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

var _ knn.BatchMethod = (*INE)(nil)
