package ine_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/ine"
	"rnknn/internal/knn"
)

func TestGroupMatchesSingleQueries(t *testing.T) {
	g, objs, queries := setup(t, 61)
	x := ine.New(g, objs)
	single := ine.New(g, objs)
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(7)
		qs := make([]knn.GroupQuery, m)
		base := queries[rng.Intn(len(queries))]
		for u := range qs {
			// Nearby vertex ids are nearby on the generated grid: a
			// clustered group, the intended workload.
			v := base + int32(rng.Intn(9))
			if v >= int32(g.NumVertices()) {
				v = base
			}
			qs[u] = knn.GroupQuery{Q: v, K: 1 + rng.Intn(8)}
		}
		dst := make([][]knn.Result, m)
		x.KNNGroupAppend(qs, dst)
		for u, q := range qs {
			want := single.KNN(q.Q, q.K)
			if !knn.SameResults(dst[u], want) {
				t.Fatalf("trial %d member %d (q=%d k=%d): group %s single %s",
					trial, u, q.Q, q.K, knn.FormatResults(dst[u]), knn.FormatResults(want))
			}
		}
	}
}

func TestGroupScatteredMembersStillExact(t *testing.T) {
	// Correctness must not depend on members being clustered.
	g, objs, queries := setup(t, 63)
	x := ine.New(g, objs)
	qs := []knn.GroupQuery{
		{Q: queries[0], K: 5},
		{Q: queries[len(queries)/2], K: 3},
		{Q: queries[len(queries)-1], K: 7},
	}
	dst := make([][]knn.Result, len(qs))
	x.KNNGroupAppend(qs, dst)
	for u, q := range qs {
		want := knn.BruteForce(g, objs, q.Q, q.K)
		if !knn.SameResults(dst[u], want) {
			t.Fatalf("member %d: group %s brute %s", u,
				knn.FormatResults(dst[u]), knn.FormatResults(want))
		}
	}
}

func TestGroupDuplicateMembers(t *testing.T) {
	g, objs, queries := setup(t, 64)
	x := ine.New(g, objs)
	q := queries[0]
	qs := []knn.GroupQuery{{Q: q, K: 4}, {Q: q, K: 4}, {Q: q, K: 2}}
	dst := make([][]knn.Result, len(qs))
	x.KNNGroupAppend(qs, dst)
	for u, gq := range qs {
		want := knn.BruteForce(g, objs, q, gq.K)
		if !knn.SameResults(dst[u], want) {
			t.Fatalf("dup member %d: %s want %s", u,
				knn.FormatResults(dst[u]), knn.FormatResults(want))
		}
	}
}

func TestGroupWarmAllocFree(t *testing.T) {
	g, objs, queries := setup(t, 65)
	x := ine.New(g, objs)
	qs := []knn.GroupQuery{
		{Q: queries[0], K: 8},
		{Q: queries[0] + 1, K: 8},
		{Q: queries[0] + 2, K: 8},
		{Q: queries[0] + 3, K: 8},
	}
	dst := make([][]knn.Result, len(qs))
	for u := range dst {
		dst[u] = make([]knn.Result, 0, 16)
	}
	// Warm up: arenas grow to steady state.
	for i := 0; i < 3; i++ {
		for u := range dst {
			dst[u] = dst[u][:0]
		}
		x.KNNGroupAppend(qs, dst)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for u := range dst {
			dst[u] = dst[u][:0]
		}
		x.KNNGroupAppend(qs, dst)
	})
	if allocs != 0 {
		t.Fatalf("warm KNNGroupAppend allocates: %v allocs/run", allocs)
	}
}

func BenchmarkGroupVsSingles(b *testing.B) {
	g, objs, queries := setup(b, 66)
	x := ine.New(g, objs)
	const m, k = 8, 10
	qs := make([]knn.GroupQuery, m)
	for u := range qs {
		qs[u] = knn.GroupQuery{Q: queries[0] + int32(u), K: k}
	}
	dst := make([][]knn.Result, m)
	for u := range dst {
		dst[u] = make([]knn.Result, 0, k)
	}
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for u := range dst {
				dst[u] = dst[u][:0]
			}
			x.KNNGroupAppend(qs, dst)
		}
	})
	b.Run("singles", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for u := range dst {
				dst[u] = x.KNNAppend(qs[u].Q, qs[u].K, dst[u][:0])
			}
		}
	})
}
