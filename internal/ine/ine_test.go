package ine_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/ine"
	"rnknn/internal/knn"
)

func setup(t testing.TB, seed int64) (*graph.Graph, *knn.ObjectSet, []int32) {
	t.Helper()
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 18, Cols: 18, Seed: seed})
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.02, seed+1))
	queries := gen.QueryVertices(g, 40, seed+2)
	return g, objs, queries
}

func TestINEMatchesBruteForce(t *testing.T) {
	g, objs, queries := setup(t, 21)
	x := ine.New(g, objs)
	for _, q := range queries {
		for _, k := range []int{1, 5, 10} {
			got := x.KNN(q, k)
			want := knn.BruteForce(g, objs, q, k)
			if !knn.SameResults(got, want) {
				t.Fatalf("q=%d k=%d: got %s want %s", q, k,
					knn.FormatResults(got), knn.FormatResults(want))
			}
		}
	}
}

func TestINEOnTravelTime(t *testing.T) {
	g, objs, queries := setup(t, 22)
	tg := g.View(graph.TravelTime)
	x := ine.New(tg, objs)
	for _, q := range queries[:10] {
		got := x.KNN(q, 5)
		want := knn.BruteForce(tg, objs, q, 5)
		if !knn.SameResults(got, want) {
			t.Fatalf("time q=%d: got %s want %s", q, knn.FormatResults(got), knn.FormatResults(want))
		}
	}
}

func TestINEQueryOnObjectVertex(t *testing.T) {
	g, objs, _ := setup(t, 23)
	x := ine.New(g, objs)
	q := objs.Vertices()[0]
	got := x.KNN(q, 3)
	if len(got) == 0 || got[0].Vertex != q || got[0].Dist != 0 {
		t.Fatalf("query on object: %s", knn.FormatResults(got))
	}
}

func TestINEKLargerThanObjects(t *testing.T) {
	g, _, _ := setup(t, 24)
	small := knn.NewObjectSet(g, []int32{3, 9})
	x := ine.New(g, small)
	got := x.KNN(0, 10)
	if len(got) != 2 {
		t.Fatalf("got %d results, want all 2 objects", len(got))
	}
}

func TestINESetObjectsSwaps(t *testing.T) {
	g, objs, queries := setup(t, 25)
	x := ine.New(g, objs)
	_ = x.KNN(queries[0], 5)
	objs2 := knn.NewObjectSet(g, gen.Uniform(g, 0.05, 99))
	x.SetObjects(objs2)
	got := x.KNN(queries[0], 5)
	want := knn.BruteForce(g, objs2, queries[0], 5)
	if !knn.SameResults(got, want) {
		t.Fatal("SetObjects did not take effect")
	}
}

func TestINEVisitedVerticesCounted(t *testing.T) {
	g, objs, queries := setup(t, 26)
	x := ine.New(g, objs)
	_ = x.KNN(queries[0], 10)
	if x.VisitedVertices <= 0 || x.VisitedVertices > g.NumVertices() {
		t.Fatalf("VisitedVertices = %d", x.VisitedVertices)
	}
}

func TestAblationVariantsAllCorrect(t *testing.T) {
	g, objs, queries := setup(t, 27)
	rng := rand.New(rand.NewSource(5))
	for _, v := range []ine.Variant{ine.FirstCut, ine.PQueue, ine.Settled, ine.CSRGraph} {
		a := ine.NewAblation(g, objs, v)
		for trial := 0; trial < 10; trial++ {
			q := queries[rng.Intn(len(queries))]
			k := 1 + rng.Intn(10)
			got := a.KNN(q, k)
			want := knn.BruteForce(g, objs, q, k)
			if !knn.SameResults(got, want) {
				t.Fatalf("%s q=%d k=%d: got %s want %s", a.Name(), q, k,
					knn.FormatResults(got), knn.FormatResults(want))
			}
		}
	}
}
