package ine_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/graph"
	"rnknn/internal/ine"
	"rnknn/internal/knn"
)

func TestRangeMatchesBruteForce(t *testing.T) {
	g, objs, queries := setup(t, 161)
	x := ine.New(g, objs)
	rng := rand.New(rand.NewSource(3))
	for _, q := range queries[:15] {
		radius := graph.Dist(1000 + rng.Intn(50000))
		got := x.Range(q, radius)
		want := knn.BruteForceRange(g, objs, q, radius)
		if len(got) != len(want) {
			t.Fatalf("q=%d r=%d: got %d results, want %d", q, radius, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("q=%d r=%d i=%d: dist %d want %d", q, radius, i, got[i].Dist, want[i].Dist)
			}
			if got[i].Dist > radius {
				t.Fatalf("result beyond radius: %d > %d", got[i].Dist, radius)
			}
		}
	}
}

func TestRangeZeroRadius(t *testing.T) {
	g, objs, _ := setup(t, 162)
	x := ine.New(g, objs)
	q := objs.Vertices()[0]
	got := x.Range(q, 0)
	if len(got) != 1 || got[0].Vertex != q {
		t.Fatalf("zero radius on object: %s", knn.FormatResults(got))
	}
	nonObj := int32(-1)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if !objs.Contains(v) {
			nonObj = v
			break
		}
	}
	if got := x.Range(nonObj, 0); len(got) != 0 {
		t.Fatalf("zero radius on non-object returned %s", knn.FormatResults(got))
	}
}

func TestRangeCoversWholeGraph(t *testing.T) {
	g, objs, _ := setup(t, 163)
	x := ine.New(g, objs)
	got := x.Range(0, graph.Inf/2)
	if len(got) != objs.Len() {
		t.Fatalf("unbounded range found %d of %d objects", len(got), objs.Len())
	}
}
