package gtree

import (
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/pqueue"
)

// Source is a per-source materialized distance oracle over a G-tree (the
// MGtree of Section 5): border-distance arrays computed while walking the
// hierarchy are cached, so repeated queries from the same source — exactly
// IER's access pattern — reuse earlier assembly work. It also implements
// the suspendable same-leaf search.
//
// A Source is reusable: Reset retargets it to a new source vertex in O(1)
// by bumping the generation stamp of its border-distance cache, so a query
// session can keep one Source for its lifetime and never allocate on the
// query path. The cache is one flat arena indexed by precomputed per-node
// offsets (node ni's distances live at flat[off[ni]:off[ni+1]]) — the
// former per-node map of freshly made slices, flattened.
type Source struct {
	idx   *Index
	q     int32
	leafQ int32

	// Stamped border-distance cache: node ni's slice is materialized for
	// this generation when stamp[ni] == cur.
	off   []int32
	flat  []graph.Dist
	stamp []uint32
	cur   uint32
	// idxBuf is scratch for the crossing-step source-side index list.
	idxBuf []int32

	local      leafScan
	localReady bool

	// PathCost counts border-to-border additions performed so far (the
	// "path cost" statistic of Figure 9b).
	PathCost int
}

// NewSource starts a materialized oracle from source vertex q.
func (x *Index) NewSource(q int32) *Source {
	s := &Source{}
	s.Reset(x, q)
	return s
}

// Reset retargets the source to vertex q over x, invalidating the cached
// border distances in O(1) via the generation counter. The arena is
// (re)allocated only when the source is bound to a different index.
func (s *Source) Reset(x *Index, q int32) {
	if s.idx != x {
		s.idx = x
		n := len(x.nodes)
		s.off = make([]int32, n+1)
		for ni := 0; ni < n; ni++ {
			s.off[ni+1] = s.off[ni] + int32(len(x.nodes[ni].borders))
		}
		s.flat = make([]graph.Dist, s.off[n])
		s.stamp = make([]uint32, n)
		s.cur = 0
	}
	s.cur++
	if s.cur == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.cur = 1
	}
	s.q = q
	s.leafQ = x.PT.LeafOf[q]
	s.localReady = false
	s.PathCost = 0
}

// leafLocal returns the suspendable same-leaf scan, starting it on first
// use per source vertex.
func (s *Source) leafLocal() *leafScan {
	if !s.localReady {
		s.local.start(s.idx, s.q)
		s.localReady = true
	}
	return &s.local
}

// Factory adapts the index to knn.SourceFactory for IER composition,
// caching one reusable Source per factory (a factory serves one session).
type Factory struct {
	Idx *Index

	src Source
}

// Name implements knn.SourceFactory.
func (f *Factory) Name() string { return "MGtree" }

// NewSource implements knn.SourceFactory.
func (f *Factory) NewSource(s int32) knn.SourceOracle {
	f.src.Reset(f.Idx, s)
	return &f.src
}

// DistanceTo returns the exact network distance from the source to t.
func (s *Source) DistanceTo(t int32) graph.Dist {
	if t == s.q {
		return 0
	}
	x := s.idx
	leafT := x.PT.LeafOf[t]
	if leafT == s.leafQ {
		return s.leafLocal().distanceTo(t)
	}
	db := s.BorderDists(leafT)
	ln := &x.nodes[leafT]
	pos := x.posInLeaf[t]
	best := graph.Inf
	for bi := range ln.borders {
		w := x.matAt(leafT, int32(bi), pos)
		if w >= inf32 {
			continue
		}
		if d := db[bi] + graph.Dist(w); d < best {
			best = d
		}
	}
	s.PathCost += len(ln.borders)
	return best
}

// BorderDists returns the materialized global distances from the source to
// the borders of tree node ni, computing (and caching) them on demand. The
// returned slice aliases the source's arena and is valid until the next
// Reset.
func (s *Source) BorderDists(ni int32) []graph.Dist {
	out := s.flat[s.off[ni]:s.off[ni+1]]
	if s.stamp[ni] == s.cur {
		return out
	}
	x := s.idx
	pt := x.PT
	switch {
	case ni == s.leafQ:
		// Base case: the refined leaf matrix columns at q are global.
		ln := &x.nodes[ni]
		pos := x.posInLeaf[s.q]
		for bi := range ln.borders {
			out[bi] = dist64(x.matAt(ni, int32(bi), pos))
		}
	case pt.Contains(ni, s.q):
		// Up step: combine the on-path child's border distances with this
		// node's matrix restricted to (child block) x (own borders).
		child := s.onPathChild(ni)
		cd := s.BorderDists(child)
		n := &x.nodes[ni]
		base := n.childOff[childIndex(pt, ni, child)]
		for j := range out {
			out[j] = graph.Inf
		}
		if x.layout == ArrayLayout {
			// Row-contiguous pass: iterate each child border's matrix row
			// once (the Section 6.1 spatial-locality access pattern).
			for i := range cd {
				if cd[i] == graph.Inf {
					continue
				}
				row := n.mat[(base+int32(i))*n.stride:]
				for j := range out {
					w := row[n.ownIdx[j]]
					if w >= inf32 {
						continue
					}
					if d := cd[i] + graph.Dist(w); d < out[j] {
						out[j] = d
					}
				}
			}
		} else {
			for j := range n.borders {
				oj := n.ownIdx[j]
				for i := range cd {
					if cd[i] == graph.Inf {
						continue
					}
					w := x.matAt(ni, base+int32(i), oj)
					if w >= inf32 {
						continue
					}
					if d := cd[i] + graph.Dist(w); d < out[j] {
						out[j] = d
					}
				}
			}
		}
		s.PathCost += len(cd) * len(out)
	default:
		// Crossing or down step within the parent.
		parent := pt.Nodes[ni].Parent
		pn := &x.nodes[parent]
		myBase := pn.childOff[childIndex(pt, parent, ni)]
		nb := len(x.nodes[ni].borders)
		var fromD []graph.Dist
		var fromIdx []int32
		if pt.Contains(parent, s.q) {
			// Crossing at the LCA: source side is the on-path child.
			side := s.onPathChild(parent)
			fromD = s.BorderDists(side)
			sideBase := pn.childOff[childIndex(pt, parent, side)]
			fromIdx = s.idxBuf[:0]
			for i := range fromD {
				fromIdx = append(fromIdx, sideBase+int32(i))
			}
			s.idxBuf = fromIdx
		} else {
			// Pure down step: from the parent's own borders.
			fromD = s.BorderDists(parent)
			fromIdx = pn.ownIdx
		}
		for j := 0; j < nb; j++ {
			out[j] = graph.Inf
		}
		if x.layout == ArrayLayout {
			for i := range fromD {
				if fromD[i] == graph.Inf {
					continue
				}
				row := pn.mat[fromIdx[i]*pn.stride+myBase:]
				for j := 0; j < nb; j++ {
					w := row[j]
					if w >= inf32 {
						continue
					}
					if d := fromD[i] + graph.Dist(w); d < out[j] {
						out[j] = d
					}
				}
			}
		} else {
			for j := 0; j < nb; j++ {
				col := myBase + int32(j)
				for i := range fromD {
					if fromD[i] == graph.Inf {
						continue
					}
					w := x.matAt(parent, fromIdx[i], col)
					if w >= inf32 {
						continue
					}
					if d := fromD[i] + graph.Dist(w); d < out[j] {
						out[j] = d
					}
				}
			}
		}
		s.PathCost += len(fromD) * nb
	}
	s.stamp[ni] = s.cur
	return out
}

// onPathChild returns the child of ancestor ni that contains the source.
func (s *Source) onPathChild(ni int32) int32 {
	pt := s.idx.PT
	for _, c := range pt.Nodes[ni].Children {
		if pt.Contains(c, s.q) {
			return c
		}
	}
	panic("gtree: no on-path child")
}

// MinBorderDist returns the minimum distance from the source to any border
// of node ni (the node lower bound used by the kNN algorithm), or Inf when
// ni has no borders (the root).
func (s *Source) MinBorderDist(ni int32) graph.Dist {
	db := s.BorderDists(ni)
	best := graph.Inf
	for _, d := range db {
		if d < best {
			best = d
		}
	}
	return best
}

func dist64(w int32) graph.Dist {
	if w >= inf32 {
		return graph.Inf
	}
	return graph.Dist(w)
}

// leafScan is the suspendable Dijkstra search within the source's leaf,
// augmented with the leaf's (global) border-to-border clique so that paths
// leaving and re-entering the leaf are accounted for. It settles leaf
// vertices in nondecreasing global distance order. The scan is reusable:
// start retargets it to a new source, growing the per-leaf arrays to the
// largest leaf seen so far and reusing them afterwards.
type leafScan struct {
	x     *Index
	leaf  int32
	verts []int32
	off   []int32
	tgt   []int32
	w     []int32
	dist  []graph.Dist
	done  []bool
	q     *pqueue.Queue
}

func (ls *leafScan) start(x *Index, q int32) {
	leaf := x.PT.LeafOf[q]
	verts := x.PT.Nodes[leaf].Vertices
	ls.x = x
	ls.leaf = leaf
	ls.verts = verts
	ls.off, ls.tgt, ls.w = x.leafOff[leaf], x.leafTgt[leaf], x.leafW[leaf]
	n := len(verts)
	if cap(ls.dist) < n {
		ls.dist = make([]graph.Dist, n)
		ls.done = make([]bool, n)
	}
	ls.dist = ls.dist[:n]
	ls.done = ls.done[:n]
	for i := range ls.dist {
		ls.dist[i] = graph.Inf
		ls.done[i] = false
	}
	if ls.q == nil {
		ls.q = pqueue.NewQueue(n)
	}
	ls.q.Reset()
	src := x.posInLeaf[q]
	ls.dist[src] = 0
	ls.q.Push(src, 0)
}

// next settles and returns the next leaf-local vertex, or ok=false.
func (ls *leafScan) next() (local int32, d graph.Dist, ok bool) {
	n := &ls.x.nodes[ls.leaf]
	for !ls.q.Empty() {
		it := ls.q.Pop()
		v := it.ID
		if ls.done[v] {
			continue
		}
		ls.done[v] = true
		dv := graph.Dist(it.Key)
		// Relax leaf-internal edges.
		for e := ls.off[v]; e < ls.off[v+1]; e++ {
			t := ls.tgt[e]
			if ls.done[t] {
				continue
			}
			if nd := dv + graph.Dist(ls.w[e]); nd < ls.dist[t] {
				ls.dist[t] = nd
				ls.q.Push(t, int64(nd))
			}
		}
		// If v is a border, relax all other borders through the global
		// border-to-border clique (Algorithm 4, RelaxLeafVertex).
		if bi := borderIndexOf(n, v); bi >= 0 {
			for bj := range n.borders {
				t := n.ownIdx[bj]
				if ls.done[t] {
					continue
				}
				w := n.matAt(int32(bi), t)
				if w >= inf32 {
					continue
				}
				if nd := dv + graph.Dist(w); nd < ls.dist[t] {
					ls.dist[t] = nd
					ls.q.Push(t, int64(nd))
				}
			}
		}
		return v, dv, true
	}
	return 0, 0, false
}

// distanceTo resumes the scan until the target vertex (which must lie in the
// leaf) is settled.
func (ls *leafScan) distanceTo(t int32) graph.Dist {
	lt := ls.x.posInLeaf[t]
	if ls.done[lt] {
		return ls.dist[lt]
	}
	for {
		v, d, ok := ls.next()
		if !ok {
			return graph.Inf
		}
		if v == lt {
			return d
		}
	}
}

// CountingFactory is a SourceFactory that accumulates the path cost of
// every source it hands out, for the IER-Gt statistic of Figure 9(b).
type CountingFactory struct {
	idx   *Index
	total int64
	last  *Source
}

// NewCountingFactory wraps idx.
func NewCountingFactory(idx *Index) *CountingFactory { return &CountingFactory{idx: idx} }

// Name implements knn.SourceFactory.
func (f *CountingFactory) Name() string { return "MGtree" }

// NewSource implements knn.SourceFactory.
func (f *CountingFactory) NewSource(s int32) knn.SourceOracle {
	f.flush()
	f.last = f.idx.NewSource(s)
	return f.last
}

func (f *CountingFactory) flush() {
	if f.last != nil {
		f.total += int64(f.last.PathCost)
		f.last = nil
	}
}

// TotalPathCost returns the accumulated border-to-border additions.
func (f *CountingFactory) TotalPathCost() int64 {
	f.flush()
	return f.total
}
