package gtree

// This file implements the Section 6.1 case study: the same G-tree distance
// matrices accessed through three storage layouts — the production flat
// array (excellent spatial locality), Go's builtin map (playing the role of
// the paper's chained-hashing STL unordered_map: the "obvious" library
// choice), and a custom open-addressing table with quadratic probing (the
// Google dense_hash_map analogue). SetMatrixLayout switches the layout used
// by query-time assembly; index construction always uses the arrays.

// MatrixLayout selects the distance-matrix storage accessed at query time.
type MatrixLayout int

const (
	// ArrayLayout is the production flat 1-D array (Figure 5).
	ArrayLayout MatrixLayout = iota
	// BuiltinMapLayout routes lookups through Go's builtin map.
	BuiltinMapLayout
	// OpenAddrLayout routes lookups through a quadratic-probing table.
	OpenAddrLayout
)

func (l MatrixLayout) String() string {
	switch l {
	case ArrayLayout:
		return "Array"
	case BuiltinMapLayout:
		return "Chained Hashing"
	case OpenAddrLayout:
		return "Quad. Probing"
	}
	return "?"
}

func matKey(ni, i, j int32) uint64 {
	return uint64(ni)<<40 | uint64(uint32(i))<<20 | uint64(uint32(j))
}

// SetMatrixLayout switches the layout used by matAt. Hash layouts are built
// lazily from the arrays on first use.
func (x *Index) SetMatrixLayout(l MatrixLayout) {
	x.layout = l
	switch l {
	case BuiltinMapLayout:
		if x.builtinMap == nil {
			m := make(map[uint64]int32)
			x.forEachCell(func(ni, i, j, w int32) { m[matKey(ni, i, j)] = w })
			x.builtinMap = m
		}
	case OpenAddrLayout:
		if x.openAddr == nil {
			total := 0
			x.forEachCell(func(ni, i, j, w int32) { total++ })
			t := newOpenTable(total)
			x.forEachCell(func(ni, i, j, w int32) { t.put(matKey(ni, i, j), w) })
			x.openAddr = t
		}
	}
}

// Layout returns the active matrix layout.
func (x *Index) Layout() MatrixLayout { return x.layout }

func (x *Index) forEachCell(f func(ni, i, j, w int32)) {
	for ni := range x.nodes {
		n := &x.nodes[ni]
		if n.stride == 0 {
			continue
		}
		rows := int32(len(n.mat)) / n.stride
		for i := int32(0); i < rows; i++ {
			for j := int32(0); j < n.stride; j++ {
				f(int32(ni), i, j, n.mat[i*n.stride+j])
			}
		}
	}
}

// matAt is the query-time matrix accessor honoring the active layout.
func (x *Index) matAt(ni, i, j int32) int32 {
	switch x.layout {
	case BuiltinMapLayout:
		return x.builtinMap[matKey(ni, i, j)]
	case OpenAddrLayout:
		return x.openAddr.get(matKey(ni, i, j))
	default:
		n := &x.nodes[ni]
		return n.mat[i*n.stride+j]
	}
}

// openTable is a quadratic-probing open-addressing hash table mapping
// packed matrix coordinates to distances.
type openTable struct {
	keys []uint64
	vals []int32
	used []bool
	mask uint64
}

func newOpenTable(n int) *openTable {
	size := 16
	for size < n*2 {
		size *= 2
	}
	return &openTable{
		keys: make([]uint64, size),
		vals: make([]int32, size),
		used: make([]bool, size),
		mask: uint64(size - 1),
	}
}

func hash64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

func (t *openTable) put(k uint64, v int32) {
	i := hash64(k) & t.mask
	for step := uint64(1); ; step++ {
		if !t.used[i] {
			t.used[i] = true
			t.keys[i] = k
			t.vals[i] = v
			return
		}
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
		i = (i + step) & t.mask // quadratic probing via triangular steps
	}
}

func (t *openTable) get(k uint64) int32 {
	i := hash64(k) & t.mask
	for step := uint64(1); ; step++ {
		if !t.used[i] {
			return inf32
		}
		if t.keys[i] == k {
			return t.vals[i]
		}
		i = (i + step) & t.mask
	}
}
