package gtree_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/dijkstra"
	"rnknn/internal/gen"
	"rnknn/internal/gtree"
	"rnknn/internal/knn"
)

func TestMatrixLayoutsAgree(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 14, Cols: 14, Seed: 111})
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 32})
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.02, 1))
	ol := idx.NewOccurrenceList(objs)
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(3))
	layouts := []gtree.MatrixLayout{gtree.ArrayLayout, gtree.BuiltinMapLayout, gtree.OpenAddrLayout}
	for trial := 0; trial < 10; trial++ {
		q := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		want := solver.Distance(q, tv)
		wantKNN := knn.BruteForce(g, objs, q, 5)
		for _, l := range layouts {
			idx.SetMatrixLayout(l)
			if got := idx.NewSource(q).DistanceTo(tv); got != want {
				t.Fatalf("%v: d(%d,%d)=%d want %d", l, q, tv, got, want)
			}
			m := gtree.NewKNN(idx, ol)
			if got := m.KNN(q, 5); !knn.SameResults(got, wantKNN) {
				t.Fatalf("%v kNN mismatch: %s vs %s", l, knn.FormatResults(got), knn.FormatResults(wantKNN))
			}
		}
	}
	idx.SetMatrixLayout(gtree.ArrayLayout)
	if idx.Layout() != gtree.ArrayLayout {
		t.Fatal("Layout not restored")
	}
}

func TestLayoutStrings(t *testing.T) {
	if gtree.ArrayLayout.String() != "Array" ||
		gtree.BuiltinMapLayout.String() != "Chained Hashing" ||
		gtree.OpenAddrLayout.String() != "Quad. Probing" {
		t.Fatal("layout names changed; experiment tables depend on them")
	}
}
