// Binary snapshot codec for the G-tree. Only the expensive build products
// are persisted — the partition tree and the per-node distance matrices;
// positions, leaf CSRs, border lists, and the internal-node layout are
// recomputed on load by the same deterministic passes Build runs (they are
// linear in the graph, versus the Dijkstra cascades behind the matrices).
// See docs/SNAPSHOT_FORMAT.md.
package gtree

import (
	"io"

	"rnknn/internal/graph"
	"rnknn/internal/partition"
	"rnknn/internal/snapio"
)

// codecVersion is the G-tree section layout version.
const codecVersion uint16 = 1

// WriteTo serializes the index (io.WriterTo).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	sw := snapio.NewWriter(w)
	sw.U16(codecVersion)
	sw.U32(uint32(x.Tau))
	partition.Encode(x.PT, sw)
	sw.U32(uint32(len(x.nodes)))
	for i := range x.nodes {
		sw.U32(uint32(x.nodes[i].stride))
		sw.I32s(x.nodes[i].mat)
	}
	return sw.Result()
}

// Read deserializes an index written by WriteTo, rebuilding the derived
// fields over g. The matrices are validated against the dimensions the
// recomputed layout implies, so a snapshot for a different graph (or a
// corrupt one) fails instead of producing wrong distances.
func Read(r io.Reader, g *graph.Graph) (*Index, error) {
	sr := snapio.NewReader(r)
	if v := sr.U16(); sr.Err() == nil && v != codecVersion {
		sr.Failf("gtree codec version %d (want %d)", v, codecVersion)
	}
	tau := int(sr.U32())
	pt := partition.Decode(sr, g.NumVertices())
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	x := &Index{G: g, PT: pt, Tau: tau}
	x.nodes = make([]node, len(pt.Nodes))
	x.computePositions()
	x.extractLeafCSRs()
	x.computeBorders()
	x.layoutInternalNodes()

	if count := int(sr.U32()); sr.Err() == nil && count != len(x.nodes) {
		sr.Failf("gtree snapshot has %d nodes, partition has %d", count, len(x.nodes))
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	for ni := range x.nodes {
		n := &x.nodes[ni]
		n.stride = int32(sr.U32())
		n.mat = sr.I32s()
		if sr.Err() != nil {
			return nil, sr.Err()
		}
		var wantStride, wantLen int
		if pt.Nodes[ni].IsLeaf() {
			wantStride = len(pt.Nodes[ni].Vertices)
			wantLen = len(n.borders) * wantStride
		} else {
			wantStride = len(n.childBorders)
			wantLen = wantStride * wantStride
		}
		if int(n.stride) != wantStride || len(n.mat) != wantLen {
			sr.Failf("gtree node %d matrix is %dx%d cells, want stride %d with %d cells",
				ni, n.stride, len(n.mat), wantStride, wantLen)
			return nil, sr.Err()
		}
	}
	return x, nil
}
