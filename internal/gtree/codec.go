// Binary snapshot codec for the G-tree. Layout v2 persists the partition
// tree, the per-node distance matrices, and every derived query-time array
// (positions, leaf CSRs, border lists, internal-node layout) as raw
// 64-byte-aligned arrays: ragged per-node data is concatenated behind an
// offset table, so a mapped snapshot aliases the whole index with zero copy
// and zero recomputation — open cost is pages touched, not graph size. v1
// payloads (partition + element-streamed matrices only) are still read, by
// rerunning the deterministic derivation passes Build uses. See
// docs/SNAPSHOT_FORMAT.md.
package gtree

import (
	"io"

	"rnknn/internal/graph"
	"rnknn/internal/partition"
	"rnknn/internal/snapio"
)

// codecVersion is the G-tree section layout version.
const codecVersion uint16 = 2

// writeRagged writes n variable-length arrays as one offset table (n+1
// entries) plus their concatenation, both in the raw aligned layout.
func writeRagged(sw *snapio.Writer, items [][]int32) {
	off := make([]int32, len(items)+1)
	total := 0
	for i, it := range items {
		total += len(it)
		off[i+1] = int32(total)
	}
	data := make([]int32, 0, total)
	for _, it := range items {
		data = append(data, it...)
	}
	sw.RawI32s(off)
	sw.RawI32s(data)
}

// readRagged reads an array group written by writeRagged, returning the
// per-item views (subslices of the concatenation — aliased views of the
// mapping when sr aliases). want is the expected item count.
func readRagged(sr *snapio.Source, want int, what string) [][]int32 {
	off := sr.AlignedI32s()
	data := sr.AlignedI32s()
	if sr.Err() != nil {
		return nil
	}
	if len(off) != want+1 || off[0] != 0 || int(off[want]) != len(data) {
		sr.Failf("gtree %s offsets are inconsistent (%d entries for %d items)", what, len(off), want)
		return nil
	}
	items := make([][]int32, want)
	for i := 0; i < want; i++ {
		lo, hi := off[i], off[i+1]
		if lo > hi || int(hi) > len(data) {
			sr.Failf("gtree %s item %d spans [%d, %d)", what, i, lo, hi)
			return nil
		}
		items[i] = data[lo:hi:hi]
	}
	return items
}

// WriteTo serializes the index (io.WriterTo).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	sw := snapio.NewWriter(w)
	sw.U16(codecVersion)
	sw.U32(uint32(x.Tau))
	partition.Encode(x.PT, sw)

	n := len(x.nodes)
	sw.RawI32s(x.posInLeaf)
	collect := func(f func(i int) []int32) [][]int32 {
		items := make([][]int32, n)
		for i := range items {
			items[i] = f(i)
		}
		return items
	}
	writeRagged(sw, collect(func(i int) []int32 { return x.nodes[i].borders }))
	writeRagged(sw, collect(func(i int) []int32 { return x.nodes[i].childBorders }))
	writeRagged(sw, collect(func(i int) []int32 { return x.nodes[i].childOff }))
	writeRagged(sw, collect(func(i int) []int32 { return x.nodes[i].ownIdx }))
	writeRagged(sw, x.leafOff)
	writeRagged(sw, x.leafTgt)
	writeRagged(sw, x.leafW)

	strides := make([]int32, n)
	total := 0
	for i := range x.nodes {
		strides[i] = x.nodes[i].stride
		total += len(x.nodes[i].mat)
	}
	mats := make([]int32, 0, total)
	for i := range x.nodes {
		mats = append(mats, x.nodes[i].mat...)
	}
	sw.RawI32s(strides)
	sw.RawI32s(mats)
	return sw.Result()
}

// Read deserializes an index written by WriteTo. v2 payloads install every
// derived array as views of the payload (zero recomputation; aliased views
// of the mapping when sr aliases); v1 payloads rerun the derivation passes.
// The matrices are validated against the dimensions the layout implies —
// pure arithmetic on the side tables, no matrix pages touched — so a
// snapshot for a different graph (or a corrupt one) fails instead of
// producing wrong distances.
func Read(sr *snapio.Source, g *graph.Graph) (*Index, error) {
	version := sr.U16()
	if sr.Err() == nil && version != 1 && version != codecVersion {
		sr.Failf("gtree codec version %d (want 1 or %d)", version, codecVersion)
	}
	tau := int(sr.U32())
	pt := partition.Decode(sr, g.NumVertices(), version != 1)
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	x := &Index{G: g, PT: pt, Tau: tau}
	x.nodes = make([]node, len(pt.Nodes))
	n := len(x.nodes)

	if version == 1 {
		x.computePositions()
		x.extractLeafCSRs()
		x.computeBorders()
		x.layoutInternalNodes()
		if count := int(sr.U32()); sr.Err() == nil && count != n {
			sr.Failf("gtree snapshot has %d nodes, partition has %d", count, n)
		}
		if sr.Err() != nil {
			return nil, sr.Err()
		}
		for ni := range x.nodes {
			x.nodes[ni].stride = int32(sr.U32())
			x.nodes[ni].mat = sr.I32s()
			if sr.Err() != nil {
				return nil, sr.Err()
			}
		}
		return x, x.validateDims(sr)
	}

	x.posInLeaf = sr.AlignedI32s()
	if sr.Err() == nil && len(x.posInLeaf) != g.NumVertices() {
		sr.Failf("gtree posInLeaf has %d entries for %d vertices", len(x.posInLeaf), g.NumVertices())
	}
	borders := readRagged(sr, n, "border")
	childBorders := readRagged(sr, n, "childBorders")
	childOff := readRagged(sr, n, "childOff")
	ownIdx := readRagged(sr, n, "ownIdx")
	x.leafOff = readRagged(sr, n, "leafOff")
	x.leafTgt = readRagged(sr, n, "leafTgt")
	x.leafW = readRagged(sr, n, "leafW")
	strides := sr.AlignedI32s()
	mats := sr.AlignedI32s()
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	for ni := range x.nodes {
		nd := &x.nodes[ni]
		nd.borders = borders[ni]
		nd.childBorders = childBorders[ni]
		nd.childOff = childOff[ni]
		nd.ownIdx = ownIdx[ni]
	}
	if len(strides) != n {
		sr.Failf("gtree snapshot has %d strides, partition has %d nodes", len(strides), n)
		return nil, sr.Err()
	}
	pos := 0
	for ni := range x.nodes {
		nd := &x.nodes[ni]
		nd.stride = strides[ni]
		var cells int
		if pt.Nodes[ni].IsLeaf() {
			cells = len(nd.borders) * int(nd.stride)
		} else {
			cells = int(nd.stride) * int(nd.stride)
		}
		if nd.stride < 0 || pos+cells > len(mats) {
			sr.Failf("gtree node %d matrix [%d, %d) exceeds %d cells", ni, pos, pos+cells, len(mats))
			return nil, sr.Err()
		}
		nd.mat = mats[pos : pos+cells : pos+cells]
		pos += cells
	}
	if pos != len(mats) {
		sr.Failf("gtree matrix heap has %d cells, nodes imply %d", len(mats), pos)
		return nil, sr.Err()
	}
	return x, x.validateDims(sr)
}

// validateDims cross-checks every node's stride and matrix size against the
// dimensions its border and layout arrays imply.
func (x *Index) validateDims(sr *snapio.Source) error {
	pt := x.PT
	for ni := range x.nodes {
		n := &x.nodes[ni]
		var wantStride, wantLen int
		if pt.Nodes[ni].IsLeaf() {
			wantStride = len(pt.Nodes[ni].Vertices)
			wantLen = len(n.borders) * wantStride
		} else {
			wantStride = len(n.childBorders)
			wantLen = wantStride * wantStride
		}
		if int(n.stride) != wantStride || len(n.mat) != wantLen {
			sr.Failf("gtree node %d matrix is %dx%d cells, want stride %d with %d cells",
				ni, n.stride, len(n.mat), wantStride, wantLen)
			return sr.Err()
		}
	}
	return nil
}
