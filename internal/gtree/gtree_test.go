package gtree_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/dijkstra"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/gtree"
	"rnknn/internal/knn"
)

func testGraph(t testing.TB, seed int64, rows, cols int) *graph.Graph {
	t.Helper()
	return gen.Network(gen.NetworkSpec{Name: "t", Rows: rows, Cols: cols, Seed: seed})
}

func TestSourceDistanceMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 41, 16, 16)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 32})
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	for trial := 0; trial < 25; trial++ {
		s := int32(rng.Intn(n))
		src := idx.NewSource(s)
		// Repeated targets from one source exercise materialization.
		for i := 0; i < 20; i++ {
			tv := int32(rng.Intn(n))
			got := src.DistanceTo(tv)
			want := solver.Distance(s, tv)
			if got != want {
				t.Fatalf("d(%d,%d) = %d, want %d", s, tv, got, want)
			}
		}
	}
}

func TestSourceSameLeafDistances(t *testing.T) {
	g := testGraph(t, 42, 14, 14)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 40})
	solver := dijkstra.NewSolver(g)
	// Pick a source and query every vertex of its own leaf.
	s := int32(7)
	src := idx.NewSource(s)
	leaf := idx.PT.LeafOf[s]
	for _, tv := range idx.PT.Nodes[leaf].Vertices {
		got := src.DistanceTo(tv)
		want := solver.Distance(s, tv)
		if got != want {
			t.Fatalf("same-leaf d(%d,%d) = %d, want %d", s, tv, got, want)
		}
	}
}

func TestSourceMaterializationCheaper(t *testing.T) {
	g := testGraph(t, 43, 16, 16)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 32})
	// Distances to many targets in one far leaf: the second query from the
	// same source must add less path cost than the first.
	src := idx.NewSource(0)
	far := int32(g.NumVertices() - 1)
	_ = src.DistanceTo(far)
	c1 := src.PathCost
	_ = src.DistanceTo(far - 1) // likely same or nearby leaf: reuse
	c2 := src.PathCost - c1
	if c2 >= c1 {
		t.Fatalf("materialization did not reduce path cost: first=%d second=%d", c1, c2)
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	g := testGraph(t, 44, 18, 18)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 32})
	rng := rand.New(rand.NewSource(2))
	for _, density := range []float64{0.003, 0.02, 0.2} {
		objs := knn.NewObjectSet(g, gen.Uniform(g, density, 77))
		ol := idx.NewOccurrenceList(objs)
		m := gtree.NewKNN(idx, ol)
		for trial := 0; trial < 20; trial++ {
			q := int32(rng.Intn(g.NumVertices()))
			for _, k := range []int{1, 5, 10} {
				got := m.KNN(q, k)
				want := knn.BruteForce(g, objs, q, k)
				if !knn.SameResults(got, want) {
					t.Fatalf("d=%v q=%d k=%d: got %s want %s", density, q, k,
						knn.FormatResults(got), knn.FormatResults(want))
				}
			}
		}
	}
}

func TestKNNOriginalLeafAlsoCorrect(t *testing.T) {
	g := testGraph(t, 45, 16, 16)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 48})
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.1, 9))
	ol := idx.NewOccurrenceList(objs)
	m := gtree.NewKNN(idx, ol)
	m.ImprovedLeaf = false
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		q := int32(rng.Intn(g.NumVertices()))
		got := m.KNN(q, 5)
		want := knn.BruteForce(g, objs, q, 5)
		if !knn.SameResults(got, want) {
			t.Fatalf("q=%d: got %s want %s", q, knn.FormatResults(got), knn.FormatResults(want))
		}
	}
}

func TestKNNTravelTime(t *testing.T) {
	g := testGraph(t, 46, 16, 16).View(graph.TravelTime)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 32})
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.01, 5))
	ol := idx.NewOccurrenceList(objs)
	m := gtree.NewKNN(idx, ol)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		q := int32(rng.Intn(g.NumVertices()))
		got := m.KNN(q, 10)
		want := knn.BruteForce(g, objs, q, 10)
		if !knn.SameResults(got, want) {
			t.Fatalf("q=%d: got %s want %s", q, knn.FormatResults(got), knn.FormatResults(want))
		}
	}
}

func TestKNNQueryOnObject(t *testing.T) {
	g := testGraph(t, 47, 12, 12)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 24})
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.05, 6))
	m := gtree.NewKNN(idx, idx.NewOccurrenceList(objs))
	q := objs.Vertices()[3]
	got := m.KNN(q, 1)
	if len(got) != 1 || got[0].Vertex != q || got[0].Dist != 0 {
		t.Fatalf("query on object: %s", knn.FormatResults(got))
	}
}

func TestKNNMoreThanAvailable(t *testing.T) {
	g := testGraph(t, 48, 12, 12)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 24})
	objs := knn.NewObjectSet(g, []int32{2, 40, 90})
	m := gtree.NewKNN(idx, idx.NewOccurrenceList(objs))
	got := m.KNN(5, 10)
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
}

func TestOccurrenceListCounts(t *testing.T) {
	g := testGraph(t, 49, 12, 12)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 24})
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.05, 7))
	ol := idx.NewOccurrenceList(objs)
	if int(ol.Count(0)) != objs.Len() {
		t.Fatalf("root count %d, want %d", ol.Count(0), objs.Len())
	}
	// Every object must be in exactly one leaf list.
	total := 0
	for ni := 0; ni < idx.NumNodes(); ni++ {
		total += len(ol.LeafObjects(int32(ni)))
	}
	if total != objs.Len() {
		t.Fatalf("leaf lists hold %d, want %d", total, objs.Len())
	}
	if ol.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestFactoryAsIEROracle(t *testing.T) {
	g := testGraph(t, 50, 14, 14)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 32})
	f := &gtree.Factory{Idx: idx}
	if f.Name() != "MGtree" {
		t.Fatalf("factory name %q", f.Name())
	}
	solver := dijkstra.NewSolver(g)
	src := f.NewSource(12)
	for _, tv := range []int32{0, 33, 77, 120} {
		if got, want := src.DistanceTo(tv), solver.Distance(12, tv); got != want {
			t.Fatalf("oracle d(12,%d) = %d, want %d", tv, got, want)
		}
	}
}

func TestIndexSizeBytesPositiveAndGrows(t *testing.T) {
	small := gtree.Build(testGraph(t, 51, 10, 10), gtree.Options{Fanout: 4, Tau: 32})
	large := gtree.Build(testGraph(t, 51, 20, 20), gtree.Options{Fanout: 4, Tau: 32})
	if small.SizeBytes() <= 0 || large.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("sizes: small=%d large=%d", small.SizeBytes(), large.SizeBytes())
	}
}

func TestTinyGraphSingleLeaf(t *testing.T) {
	// Graph smaller than tau: the tree is a single leaf (the root).
	g := testGraph(t, 52, 4, 4)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 4096})
	objs := knn.NewObjectSet(g, []int32{1, 5, 9})
	m := gtree.NewKNN(idx, idx.NewOccurrenceList(objs))
	got := m.KNN(0, 2)
	want := knn.BruteForce(g, objs, 0, 2)
	if !knn.SameResults(got, want) {
		t.Fatalf("single leaf: got %s want %s", knn.FormatResults(got), knn.FormatResults(want))
	}
}
