package gtree_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/gtree"
	"rnknn/internal/knn"
)

// TestOccurrenceListUpdates drives a random Add/Remove workload against the
// occurrence list and checks every intermediate state against a rebuilt
// index and brute force.
func TestOccurrenceListUpdates(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 14, Cols: 14, Seed: 141})
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 32})
	rng := rand.New(rand.NewSource(1))

	current := map[int32]bool{}
	initial := gen.Uniform(g, 0.01, 5)
	for _, v := range initial {
		current[v] = true
	}
	ol := idx.NewOccurrenceList(knn.NewObjectSet(g, initial))
	m := gtree.NewKNN(idx, ol)

	for step := 0; step < 60; step++ {
		v := int32(rng.Intn(g.NumVertices()))
		if current[v] {
			if !ol.Remove(idx, v) {
				t.Fatalf("Remove(%d) reported absent but present", v)
			}
			delete(current, v)
		} else {
			ol.Add(idx, v)
			current[v] = true
		}
		if step%5 != 0 {
			continue
		}
		var verts []int32
		for u := range current {
			verts = append(verts, u)
		}
		objs := knn.NewObjectSet(g, verts)
		q := int32(rng.Intn(g.NumVertices()))
		got := m.KNN(q, 5)
		want := knn.BruteForce(g, objs, q, 5)
		if !knn.SameResults(got, want) {
			t.Fatalf("step %d q=%d: got %s want %s", step, q,
				knn.FormatResults(got), knn.FormatResults(want))
		}
		// Counts must equal a fresh build's counts at every node.
		fresh := idx.NewOccurrenceList(objs)
		for ni := 0; ni < idx.NumNodes(); ni++ {
			if ol.Count(int32(ni)) != fresh.Count(int32(ni)) {
				t.Fatalf("step %d node %d: count %d != fresh %d", step, ni,
					ol.Count(int32(ni)), fresh.Count(int32(ni)))
			}
		}
	}
}

func TestOccurrenceListAddIdempotent(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 8, Cols: 8, Seed: 142})
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 16})
	ol := idx.NewOccurrenceList(knn.NewObjectSet(g, []int32{3}))
	ol.Add(idx, 3)
	ol.Add(idx, 3)
	if ol.Count(0) != 1 {
		t.Fatalf("double Add inflated count to %d", ol.Count(0))
	}
	if ol.Remove(idx, 99) {
		t.Fatal("Remove of absent vertex reported true")
	}
}
