package gtree_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/gtree"
	"rnknn/internal/knn"
)

// groupFixture builds an index plus a kNN method pair (shared-path subject,
// single-path reference) over a random object set.
func groupFixture(t testing.TB, seed int64) (*gtree.Index, *knn.ObjectSet, *gtree.KNN, *gtree.KNN) {
	t.Helper()
	g := testGraph(t, seed, 20, 20)
	idx := gtree.Build(g, gtree.Options{Fanout: 4, Tau: 40})
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.03, seed+1))
	ol := idx.NewOccurrenceList(objs)
	return idx, objs, gtree.NewKNN(idx, ol), gtree.NewKNN(idx, ol)
}

func TestGroupMatchesSingleQueries(t *testing.T) {
	idx, _, x, single := groupFixture(t, 71)
	rng := rand.New(rand.NewSource(72))
	pt := idx.PT
	// For each trial pick one leaf and group random members inside it: the
	// shared GroupSource path.
	leaves := make([]int32, 0)
	for ni := range pt.Nodes {
		if pt.Nodes[ni].IsLeaf() && len(pt.Nodes[ni].Vertices) >= 4 {
			leaves = append(leaves, int32(ni))
		}
	}
	for trial := 0; trial < 25; trial++ {
		verts := pt.Nodes[leaves[rng.Intn(len(leaves))]].Vertices
		m := 2 + rng.Intn(6)
		qs := make([]knn.GroupQuery, m)
		for u := range qs {
			qs[u] = knn.GroupQuery{Q: verts[rng.Intn(len(verts))], K: 1 + rng.Intn(10)}
		}
		dst := make([][]knn.Result, m)
		x.KNNGroupAppend(qs, dst)
		for u, q := range qs {
			want := single.KNN(q.Q, q.K)
			if !knn.SameResults(dst[u], want) {
				t.Fatalf("trial %d member %d (q=%d k=%d): group %s single %s",
					trial, u, q.Q, q.K, knn.FormatResults(dst[u]), knn.FormatResults(want))
			}
		}
	}
}

func TestGroupCrossLeafFallsBack(t *testing.T) {
	idx, objs, x, _ := groupFixture(t, 73)
	_ = objs
	pt := idx.PT
	// Two members from different leaves: must still be exact (the method
	// falls back to independent queries).
	var a, b int32 = -1, -1
	for v := int32(1); int(v) < len(pt.LeafOf); v++ {
		if pt.LeafOf[v] != pt.LeafOf[0] {
			a, b = 0, v
			break
		}
	}
	if b < 0 {
		t.Skip("degenerate partition")
	}
	qs := []knn.GroupQuery{{Q: a, K: 6}, {Q: b, K: 4}}
	dst := make([][]knn.Result, len(qs))
	x.KNNGroupAppend(qs, dst)
	for u, q := range qs {
		want := x.KNN(q.Q, q.K)
		if !knn.SameResults(dst[u], want) {
			t.Fatalf("member %d: group %s single %s", u,
				knn.FormatResults(dst[u]), knn.FormatResults(want))
		}
	}
}

func TestGroupWarmAllocFree(t *testing.T) {
	idx, _, x, _ := groupFixture(t, 74)
	pt := idx.PT
	var verts []int32
	for ni := range pt.Nodes {
		if pt.Nodes[ni].IsLeaf() && len(pt.Nodes[ni].Vertices) >= 4 {
			verts = pt.Nodes[ni].Vertices
			break
		}
	}
	qs := make([]knn.GroupQuery, 4)
	for u := range qs {
		qs[u] = knn.GroupQuery{Q: verts[u], K: 8}
	}
	dst := make([][]knn.Result, len(qs))
	for u := range dst {
		dst[u] = make([]knn.Result, 0, 16)
	}
	for i := 0; i < 3; i++ {
		for u := range dst {
			dst[u] = dst[u][:0]
		}
		x.KNNGroupAppend(qs, dst)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for u := range dst {
			dst[u] = dst[u][:0]
		}
		x.KNNGroupAppend(qs, dst)
	})
	if allocs != 0 {
		t.Fatalf("warm KNNGroupAppend allocates: %v allocs/run", allocs)
	}
}
