package gtree

import (
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/pqueue"
)

// Shared-expansion batch execution for G-tree: a group of kNN queries from
// the same partition leaf shares one GroupSource — a vector-labeled variant
// of Source whose border-distance assembly walks each touched tree node's
// matrix ONCE and propagates every member's distance vector through it,
// instead of len(qs) independent traversals of the same matrices. Each
// member then runs its own Algorithm 3 loop (its own queue, its own
// termination bound) against the shared cache, so per-member answers are
// identical to the single-query path: the distances read out of the group
// cache are the same exact border distances Source would compute.
//
// All group state is arena-backed and reused across calls, so a warm shared
// batch allocates nothing.

// GroupSource materializes border distances for a group of same-leaf source
// vertices. Node ni's block holds len(borders)*m distances; entry
// (border j, member u) lives at block[j*m+u], keeping the member loop — the
// innermost, shared-traversal loop — contiguous.
//
// Unlike Source, whose arena spans every tree node up front, the group arena
// grows lazily per touched node: a group query touches O(depth·fanout)
// nodes, and pre-sizing |borders|·m for the whole tree would waste memory
// for large groups.
type GroupSource struct {
	idx   *Index
	qs    []int32
	m     int
	q0    int32
	leafQ int32

	// Stamped lazy arena: node ni's block starts at slotOff[ni] when
	// stamp[ni] == cur.
	slotOff []int32
	stamp   []uint32
	cur     uint32
	flat    []graph.Dist
	// idxBuf is scratch for the crossing-step source-side index list.
	idxBuf []int32

	// PathCost counts border-to-border additions, shared traversals counted
	// once per member component (comparable to Source.PathCost summed).
	PathCost int
}

// Reset retargets the group source to members qs (which must share one
// partition leaf) over x. The caller keeps qs alive for the lifetime of the
// reset; the slice is not copied.
func (s *GroupSource) Reset(x *Index, qs []int32) {
	if s.idx != x {
		s.idx = x
		n := len(x.nodes)
		s.slotOff = make([]int32, n)
		s.stamp = make([]uint32, n)
		s.cur = 0
	}
	s.cur++
	if s.cur == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.cur = 1
	}
	s.qs = qs
	s.m = len(qs)
	s.q0 = qs[0]
	s.leafQ = x.PT.LeafOf[qs[0]]
	s.flat = s.flat[:0]
	s.PathCost = 0
}

// alloc carves node ni's block out of the arena, growing it as needed, and
// marks the node materialized. The block is initialized to Inf. Any slice
// into the arena taken before alloc may be stale afterwards (growth moves
// the backing array); callers re-slice via slotOff after allocating.
func (s *GroupSource) alloc(ni, nb int32) []graph.Dist {
	m := int32(s.m)
	base := int32(len(s.flat))
	need := int(base + nb*m)
	if cap(s.flat) < need {
		grown := make([]graph.Dist, len(s.flat), need+need/2+256)
		copy(grown, s.flat)
		s.flat = grown
	}
	s.flat = s.flat[:need]
	out := s.flat[base:need]
	for i := range out {
		out[i] = graph.Inf
	}
	s.slotOff[ni] = base
	s.stamp[ni] = s.cur
	return out
}

// block returns node ni's materialized border-distance block (one traversal
// of ni's matrix serves all m members), computing it on demand. The returned
// slice aliases the arena and is valid until the next block call (growth may
// move it) — callers consume it immediately.
func (s *GroupSource) block(ni int32) []graph.Dist {
	m := int32(s.m)
	nb := int32(len(s.idx.nodes[ni].borders))
	if s.stamp[ni] == s.cur {
		base := s.slotOff[ni]
		return s.flat[base : base+nb*m]
	}
	x := s.idx
	pt := x.PT
	switch {
	case ni == s.leafQ:
		// Base case: the refined leaf matrix columns at each member are
		// global (same as Source, once per member column).
		out := s.alloc(ni, nb)
		for bi := int32(0); bi < nb; bi++ {
			row := out[bi*m : bi*m+m]
			for u, qv := range s.qs {
				row[u] = dist64(x.matAt(ni, bi, x.posInLeaf[qv]))
			}
		}
		return out
	case pt.Contains(ni, s.q0):
		// Up step: one pass over this node's matrix propagates every
		// member's vector from the on-path child's block.
		child := s.onPathChild(ni)
		s.block(child)
		out := s.alloc(ni, nb)
		nbc := int32(len(x.nodes[child].borders))
		cd := s.flat[s.slotOff[child] : s.slotOff[child]+nbc*m]
		n := &x.nodes[ni]
		base := n.childOff[childIndex(pt, ni, child)]
		if x.layout == ArrayLayout {
			for i := int32(0); i < nbc; i++ {
				cdi := cd[i*m : i*m+m]
				row := n.mat[(base+i)*n.stride:]
				for j := int32(0); j < nb; j++ {
					w := row[n.ownIdx[j]]
					if w >= inf32 {
						continue
					}
					wd := graph.Dist(w)
					oj := out[j*m : j*m+m]
					for u := int32(0); u < m; u++ {
						if cdi[u] == graph.Inf {
							continue
						}
						if d := cdi[u] + wd; d < oj[u] {
							oj[u] = d
						}
					}
				}
			}
		} else {
			for j := int32(0); j < nb; j++ {
				oj := out[j*m : j*m+m]
				col := n.ownIdx[j]
				for i := int32(0); i < nbc; i++ {
					w := x.matAt(ni, base+i, col)
					if w >= inf32 {
						continue
					}
					wd := graph.Dist(w)
					cdi := cd[i*m : i*m+m]
					for u := int32(0); u < m; u++ {
						if cdi[u] == graph.Inf {
							continue
						}
						if d := cdi[u] + wd; d < oj[u] {
							oj[u] = d
						}
					}
				}
			}
		}
		s.PathCost += int(nbc) * int(nb) * s.m
		return out
	default:
		// Crossing or down step within the parent, one matrix pass for all
		// members.
		parent := pt.Nodes[ni].Parent
		pn := &x.nodes[parent]
		myBase := pn.childOff[childIndex(pt, parent, ni)]
		var fromOff, nfrom int32
		var fromIdx []int32
		if pt.Contains(parent, s.q0) {
			// Crossing at the LCA: source side is the on-path child.
			side := s.onPathChild(parent)
			s.block(side)
			fromOff = s.slotOff[side]
			nfrom = int32(len(x.nodes[side].borders))
			sideBase := pn.childOff[childIndex(pt, parent, side)]
			fromIdx = s.idxBuf[:0]
			for i := int32(0); i < nfrom; i++ {
				fromIdx = append(fromIdx, sideBase+i)
			}
			s.idxBuf = fromIdx
		} else {
			// Pure down step: from the parent's own borders.
			s.block(parent)
			fromOff = s.slotOff[parent]
			nfrom = int32(len(pn.borders))
			fromIdx = pn.ownIdx
		}
		out := s.alloc(ni, nb)
		fromD := s.flat[fromOff : fromOff+nfrom*m]
		if x.layout == ArrayLayout {
			for i := int32(0); i < nfrom; i++ {
				fdi := fromD[i*m : i*m+m]
				row := pn.mat[fromIdx[i]*pn.stride+myBase:]
				for j := int32(0); j < nb; j++ {
					w := row[j]
					if w >= inf32 {
						continue
					}
					wd := graph.Dist(w)
					oj := out[j*m : j*m+m]
					for u := int32(0); u < m; u++ {
						if fdi[u] == graph.Inf {
							continue
						}
						if d := fdi[u] + wd; d < oj[u] {
							oj[u] = d
						}
					}
				}
			}
		} else {
			for j := int32(0); j < nb; j++ {
				oj := out[j*m : j*m+m]
				col := myBase + j
				for i := int32(0); i < nfrom; i++ {
					w := x.matAt(parent, fromIdx[i], col)
					if w >= inf32 {
						continue
					}
					wd := graph.Dist(w)
					fdi := fromD[i*m : i*m+m]
					for u := int32(0); u < m; u++ {
						if fdi[u] == graph.Inf {
							continue
						}
						if d := fdi[u] + wd; d < oj[u] {
							oj[u] = d
						}
					}
				}
			}
		}
		s.PathCost += int(nfrom) * int(nb) * s.m
		return out
	}
}

// onPathChild returns the child of ancestor ni containing the group (all
// members share a leaf, so containment of any member decides).
func (s *GroupSource) onPathChild(ni int32) int32 {
	pt := s.idx.PT
	for _, c := range pt.Nodes[ni].Children {
		if pt.Contains(c, s.q0) {
			return c
		}
	}
	panic("gtree: no on-path child")
}

// MinBorderDist returns member u's minimum distance to any border of node
// ni, or Inf when ni has no borders (the root).
func (s *GroupSource) MinBorderDist(ni int32, u int) graph.Dist {
	db := s.block(ni)
	best := graph.Inf
	for j := u; j < len(db); j += s.m {
		if db[j] < best {
			best = db[j]
		}
	}
	return best
}

// groupScratch is KNN's per-session shared-batch scratch.
type groupScratch struct {
	gs   GroupSource
	scan leafScan // per-member Algorithm 4 scan, restarted per member
	src  []int32
}

// KNNGroupAppend implements knn.BatchMethod: members sharing the source
// leaf run their Algorithm 3 loops against one GroupSource; anything else
// falls back to independent queries (the contract does not require members
// to be clustered, only rewards it).
func (x *KNN) KNNGroupAppend(qs []knn.GroupQuery, dst [][]knn.Result) {
	if len(qs) == 0 {
		return
	}
	pt := x.idx.PT
	leaf := pt.LeafOf[qs[0].Q]
	shared := len(qs) > 1 && x.ImprovedLeaf
	for _, q := range qs[1:] {
		if pt.LeafOf[q.Q] != leaf {
			shared = false
			break
		}
	}
	if !shared {
		for i, q := range qs {
			dst[i] = x.KNNAppend(q.Q, q.K, dst[i])
		}
		return
	}
	g := x.grp
	if g == nil {
		g = &groupScratch{}
		x.grp = g
	}
	g.src = g.src[:0]
	for _, q := range qs {
		g.src = append(g.src, q.Q)
	}
	g.gs.Reset(x.idx, g.src)
	for u, q := range qs {
		x.out = dst[u]
		x.knnGroupMember(&g.gs, u, q.Q, q.K, x.collect)
		dst[u] = x.out
	}
	x.out = nil
	x.PathCost = g.gs.PathCost
}

// knnGroupMember is member u's Algorithm 3 loop over the shared source: the
// same queue discipline as KNNStream, with every border-distance read served
// by the group cache.
func (x *KNN) knnGroupMember(gs *GroupSource, u int, qv int32, k int, yield func(knn.Result) bool) {
	idx := x.idx
	pt := idx.PT
	q := x.q
	q.Reset()
	found := 0
	stopped := false

	leafQ := gs.leafQ
	if x.ol.Count(leafQ) > 0 {
		x.grp.scan.start(idx, qv)
		found, stopped = x.leafSearchScan(&x.grp.scan, leafQ, k, q, yield)
	}

	const root = int32(0)
	tn := leafQ
	tmin := graph.Inf
	if tn != root {
		tmin = gs.MinBorderDist(tn, u)
	}

	for !stopped && found < k && (!q.Empty() || tn != root) {
		if q.Empty() {
			tn, tmin = x.advanceTGroup(gs, u, q, tn)
		}
		if q.Empty() {
			continue
		}
		it := q.Pop()
		d := graph.Dist(it.Key)
		if d > tmin {
			tn, tmin = x.advanceTGroup(gs, u, q, tn)
			q.Push(it.ID, it.Key)
			continue
		}
		if !isNodeID(it.ID) {
			found++
			if !yield(knn.Result{Vertex: it.ID, Dist: d}) {
				stopped = true
			}
			continue
		}
		ni := decodeNode(it.ID)
		if pt.Nodes[ni].IsLeaf() {
			x.enqueueLeafObjectsGroup(gs, u, ni, q)
		} else {
			for _, c := range x.ol.Children(ni) {
				q.Push(encodeNode(c), int64(gs.MinBorderDist(c, u)))
			}
		}
	}
}

// advanceTGroup is advanceT against the group cache.
func (x *KNN) advanceTGroup(gs *GroupSource, u int, q *pqueue.Queue, tn int32) (int32, graph.Dist) {
	idx := x.idx
	pt := idx.PT
	prev := tn
	tn = pt.Nodes[tn].Parent
	tmin := graph.Inf
	if tn != 0 && len(idx.nodes[tn].borders) > 0 {
		tmin = gs.MinBorderDist(tn, u)
	}
	for _, c := range x.ol.Children(tn) {
		if c == prev {
			continue
		}
		q.Push(encodeNode(c), int64(gs.MinBorderDist(c, u)))
	}
	return tn, tmin
}

// enqueueLeafObjectsGroup is enqueueLeafObjects reading member u's column of
// the group cache.
func (x *KNN) enqueueLeafObjectsGroup(gs *GroupSource, u int, ni int32, q *pqueue.Queue) {
	idx := x.idx
	db := gs.block(ni)
	m := gs.m
	ln := &idx.nodes[ni]
	for _, o := range x.ol.LeafObjects(ni) {
		pos := idx.posInLeaf[o]
		best := graph.Inf
		for bi := range ln.borders {
			d := db[bi*m+u]
			if d == graph.Inf {
				continue
			}
			w := idx.matAt(ni, int32(bi), pos)
			if w >= inf32 {
				continue
			}
			if dd := d + graph.Dist(w); dd < best {
				best = dd
			}
		}
		gs.PathCost += len(ln.borders)
		if best < graph.Inf {
			q.Push(o, int64(best))
		}
	}
}

var _ knn.BatchMethod = (*KNN)(nil)
