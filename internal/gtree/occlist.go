package gtree

import (
	"rnknn/internal/knn"
)

// OccurrenceList is G-tree's decoupled object index (Section 3.5): for every
// tree node, the children that contain objects, and for every leaf, the
// object vertices it contains. It is built once per object set and passed
// to the kNN algorithm, mirroring how the paper separates object index
// construction from querying (Section 7.4, Appendix A.2).
type OccurrenceList struct {
	// childOcc[n] lists the children of node n containing >= 1 object.
	childOcc [][]int32
	// leafObjs[n] lists object vertices in leaf n (sorted), nil otherwise.
	leafObjs [][]int32
	// count[n] is the number of objects in node n's subgraph.
	count []int32
}

// NewOccurrenceList builds the occurrence list for objs over the index.
func (x *Index) NewOccurrenceList(objs *knn.ObjectSet) *OccurrenceList {
	ol := &OccurrenceList{
		childOcc: make([][]int32, len(x.nodes)),
		leafObjs: make([][]int32, len(x.nodes)),
		count:    make([]int32, len(x.nodes)),
	}
	pt := x.PT
	for _, v := range objs.Vertices() {
		leaf := pt.LeafOf[v]
		ol.leafObjs[leaf] = append(ol.leafObjs[leaf], v)
		// Propagate counts bottom-up.
		for n := leaf; n != -1; n = pt.Nodes[n].Parent {
			ol.count[n]++
		}
	}
	for ni := range pt.Nodes {
		if pt.Nodes[ni].IsLeaf() {
			continue
		}
		for _, c := range pt.Nodes[ni].Children {
			if ol.count[c] > 0 {
				ol.childOcc[ni] = append(ol.childOcc[ni], c)
			}
		}
	}
	return ol
}

// HasObjects reports whether node ni's subgraph contains any object.
func (ol *OccurrenceList) HasObjects(ni int32) bool { return ol.count[ni] > 0 }

// Count returns the number of objects under node ni.
func (ol *OccurrenceList) Count(ni int32) int32 { return ol.count[ni] }

// Children returns the children of node ni containing objects.
func (ol *OccurrenceList) Children(ni int32) []int32 { return ol.childOcc[ni] }

// LeafObjects returns the objects in leaf ni.
func (ol *OccurrenceList) LeafObjects(ni int32) []int32 { return ol.leafObjs[ni] }

// Add registers a new object vertex, updating leaf lists, counts and child
// occurrences along its ancestor chain. The paper's decoupled-index design
// makes this cheap compared to re-indexing the road network (Section 2.2);
// Add is O(tree height + leaf objects).
func (ol *OccurrenceList) Add(x *Index, v int32) {
	pt := x.PT
	leaf := pt.LeafOf[v]
	for _, o := range ol.leafObjs[leaf] {
		if o == v {
			return // already present
		}
	}
	ol.leafObjs[leaf] = append(ol.leafObjs[leaf], v)
	for n := leaf; n != -1; n = pt.Nodes[n].Parent {
		ol.count[n]++
		parent := pt.Nodes[n].Parent
		if parent != -1 && ol.count[n] == 1 {
			ol.childOcc[parent] = append(ol.childOcc[parent], n)
		}
	}
}

// Remove deletes an object vertex, reversing Add. It reports whether the
// vertex was present.
func (ol *OccurrenceList) Remove(x *Index, v int32) bool {
	pt := x.PT
	leaf := pt.LeafOf[v]
	objs := ol.leafObjs[leaf]
	found := -1
	for i, o := range objs {
		if o == v {
			found = i
			break
		}
	}
	if found < 0 {
		return false
	}
	ol.leafObjs[leaf] = append(objs[:found], objs[found+1:]...)
	for n := leaf; n != -1; n = pt.Nodes[n].Parent {
		ol.count[n]--
		parent := pt.Nodes[n].Parent
		if parent != -1 && ol.count[n] == 0 {
			occ := ol.childOcc[parent]
			for i, c := range occ {
				if c == n {
					ol.childOcc[parent] = append(occ[:i], occ[i+1:]...)
					break
				}
			}
		}
	}
	return true
}

// SizeBytes estimates the occurrence list's memory footprint (the object
// index cost of Figure 18).
func (ol *OccurrenceList) SizeBytes() int {
	total := len(ol.count) * 4
	for i := range ol.childOcc {
		total += len(ol.childOcc[i]) * 4
		total += len(ol.leafObjs[i]) * 4
	}
	return total
}
