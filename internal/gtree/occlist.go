package gtree

import (
	"rnknn/internal/bitset"
	"rnknn/internal/knn"
)

// OccurrenceList is G-tree's decoupled object index (Section 3.5): for every
// tree node, the children that contain objects, and for every leaf, the
// object vertices it contains. It is built once per object set and passed
// to the kNN algorithm, mirroring how the paper separates object index
// construction from querying (Section 7.4, Appendix A.2).
//
// The list is a dynamic maintainer: Add and Remove update it in O(tree
// height + leaf objects) instead of rebuilding, and Clone derives an
// independent copy whose mutations never alter the original (Add/Remove
// replace the per-node object and child slices copy-on-write) — the
// per-method maintainer contract of the epoch-versioned object store.
type OccurrenceList struct {
	// childOcc[n] lists the children of node n containing >= 1 object.
	childOcc [][]int32
	// leafObjs[n] lists object vertices in leaf n (sorted), nil otherwise.
	leafObjs [][]int32
	// count[n] is the number of objects in node n's subgraph.
	count []int32
	// member marks object vertices: the O(1) membership test the Algorithm 4
	// leaf search uses in place of a per-query hash set.
	member *bitset.Set
}

// NewOccurrenceList builds the occurrence list for objs over the index.
func (x *Index) NewOccurrenceList(objs *knn.ObjectSet) *OccurrenceList {
	ol := &OccurrenceList{
		childOcc: make([][]int32, len(x.nodes)),
		leafObjs: make([][]int32, len(x.nodes)),
		count:    make([]int32, len(x.nodes)),
		member:   bitset.New(len(x.PT.LeafOf)),
	}
	pt := x.PT
	for _, v := range objs.Vertices() {
		ol.member.Set(v)
		leaf := pt.LeafOf[v]
		ol.leafObjs[leaf] = append(ol.leafObjs[leaf], v)
		// Propagate counts bottom-up.
		for n := leaf; n != -1; n = pt.Nodes[n].Parent {
			ol.count[n]++
		}
	}
	for ni := range pt.Nodes {
		if pt.Nodes[ni].IsLeaf() {
			continue
		}
		for _, c := range pt.Nodes[ni].Children {
			if ol.count[c] > 0 {
				ol.childOcc[ni] = append(ol.childOcc[ni], c)
			}
		}
	}
	return ol
}

// Clone returns an independent copy: the fixed-size arrays are memcpys, the
// per-node slices are shared until an Add or Remove on either copy replaces
// them. Mutating the clone never changes what a reader of the original
// observes, which is what lets each object-store epoch derive its list from
// the previous epoch in O(delta).
func (ol *OccurrenceList) Clone() *OccurrenceList {
	return &OccurrenceList{
		childOcc: append([][]int32(nil), ol.childOcc...),
		leafObjs: append([][]int32(nil), ol.leafObjs...),
		count:    append([]int32(nil), ol.count...),
		member:   ol.member.Clone(),
	}
}

// HasObjects reports whether node ni's subgraph contains any object.
func (ol *OccurrenceList) HasObjects(ni int32) bool { return ol.count[ni] > 0 }

// Count returns the number of objects under node ni.
func (ol *OccurrenceList) Count(ni int32) int32 { return ol.count[ni] }

// Children returns the children of node ni containing objects.
func (ol *OccurrenceList) Children(ni int32) []int32 { return ol.childOcc[ni] }

// LeafObjects returns the objects in leaf ni.
func (ol *OccurrenceList) LeafObjects(ni int32) []int32 { return ol.leafObjs[ni] }

// IsObject reports whether v is an object vertex.
func (ol *OccurrenceList) IsObject(v int32) bool { return ol.member.Get(v) }

// Add registers a new object vertex, updating leaf lists, counts and child
// occurrences along its ancestor chain. The paper's decoupled-index design
// makes this cheap compared to re-indexing the road network (Section 2.2);
// Add is O(tree height + leaf objects).
func (ol *OccurrenceList) Add(x *Index, v int32) {
	if ol.member.Get(v) {
		return // already present
	}
	ol.member.Set(v)
	pt := x.PT
	leaf := pt.LeafOf[v]
	ol.leafObjs[leaf] = cowAppend(ol.leafObjs[leaf], v)
	for n := leaf; n != -1; n = pt.Nodes[n].Parent {
		ol.count[n]++
		parent := pt.Nodes[n].Parent
		if parent != -1 && ol.count[n] == 1 {
			ol.childOcc[parent] = cowAppend(ol.childOcc[parent], n)
		}
	}
}

// Remove deletes an object vertex, reversing Add. It reports whether the
// vertex was present.
func (ol *OccurrenceList) Remove(x *Index, v int32) bool {
	if !ol.member.Get(v) {
		return false
	}
	ol.member.Clear(v)
	pt := x.PT
	leaf := pt.LeafOf[v]
	ol.leafObjs[leaf] = cowDelete(ol.leafObjs[leaf], v)
	for n := leaf; n != -1; n = pt.Nodes[n].Parent {
		ol.count[n]--
		parent := pt.Nodes[n].Parent
		if parent != -1 && ol.count[n] == 0 {
			ol.childOcc[parent] = cowDelete(ol.childOcc[parent], n)
		}
	}
	return true
}

// cowAppend and cowDelete replace a per-node slice instead of mutating it
// in place, so a Clone sharing the slice keeps its view — required for
// epoch sharing, and cheap because the slices are leaf- or fanout-sized.
func cowAppend(s []int32, v int32) []int32 {
	out := make([]int32, len(s)+1)
	copy(out, s)
	out[len(s)] = v
	return out
}

func cowDelete(s []int32, v int32) []int32 {
	out := make([]int32, 0, len(s)-1)
	for _, e := range s {
		if e != v {
			out = append(out, e)
		}
	}
	return out
}

// SizeBytes estimates the occurrence list's memory footprint (the object
// index cost of Figure 18).
func (ol *OccurrenceList) SizeBytes() int {
	total := len(ol.count)*4 + ol.member.Capacity()/8
	for i := range ol.childOcc {
		total += len(ol.childOcc[i]) * 4
		total += len(ol.leafObjs[i]) * 4
	}
	return total
}
