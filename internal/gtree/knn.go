package gtree

import (
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/pqueue"
)

// KNN is the G-tree kNN algorithm (Algorithm 3) bound to an occurrence
// list. With ImprovedLeaf (the default) the source-leaf search follows
// Algorithm 4 (Appendix A.2.1), stopping after k settled leaf objects; the
// original behaviour — exhausting all leaf objects and checking both path
// types for each — is kept for the Figure 22 comparison.
//
// The method value owns its transient query memory — the Algorithm 3
// queue and a reusable materialized Source (stamped border-distance cache,
// suspendable leaf scan) — so a warm ImprovedLeaf query performs no heap
// allocations.
type KNN struct {
	idx *Index
	ol  *OccurrenceList
	// ImprovedLeaf selects the Algorithm 4 leaf search (default true).
	ImprovedLeaf bool

	src     Source
	q       *pqueue.Queue
	out     []knn.Result
	collect func(knn.Result) bool

	// grp is the shared-expansion batch scratch (see group.go), created on
	// the first KNNGroupAppend so single-query sessions stay lean.
	grp *groupScratch

	// PathCost reports the border-to-border additions of the last query
	// (Figure 9b).
	PathCost int
}

// NewKNN returns the G-tree kNN method. The occurrence list is the decoupled
// object index; swap it with SetObjects for a different object set.
func NewKNN(idx *Index, ol *OccurrenceList) *KNN {
	x := &KNN{idx: idx, ol: ol, ImprovedLeaf: true, q: pqueue.NewQueue(64)}
	x.collect = func(r knn.Result) bool {
		x.out = append(x.out, r)
		return true
	}
	return x
}

// Name implements knn.Method.
func (x *KNN) Name() string {
	if x.ImprovedLeaf {
		return "Gtree"
	}
	return "Gtree-OrigLeaf"
}

// SetObjects swaps the occurrence list.
func (x *KNN) SetObjects(ol *OccurrenceList) { x.ol = ol }

// queue ids: vertices are encoded as themselves (>= 0), tree nodes as
// -(node+1).
func encodeNode(ni int32) int32 { return -(ni + 1) }
func decodeNode(id int32) int32 { return -id - 1 }
func isNodeID(id int32) bool    { return id < 0 }

// KNN implements knn.Method.
func (x *KNN) KNN(qv int32, k int) []knn.Result {
	return x.KNNAppend(qv, k, make([]knn.Result, 0, k))
}

// KNNAppend implements knn.Method's zero-allocation form.
func (x *KNN) KNNAppend(qv int32, k int, dst []knn.Result) []knn.Result {
	x.out = dst
	x.KNNStream(qv, k, x.collect)
	dst = x.out
	x.out = nil
	return dst
}

// KNNStream implements knn.Streamer. The Algorithm 3 queue pops vertices
// in nondecreasing exact network distance, and the Algorithm 4 leaf search
// settles its pre-border objects in the same global order (every path out
// of the source leaf crosses a border, so nothing outside can be closer),
// which makes every appended result final at append time: it is yielded
// immediately instead of buffered. A false return from yield abandons the
// remaining search.
func (x *KNN) KNNStream(qv int32, k int, yield func(knn.Result) bool) {
	idx := x.idx
	pt := idx.PT
	x.src.Reset(idx, qv)
	src := &x.src
	q := x.q
	q.Reset()
	found := 0
	stopped := false

	leafQ := pt.LeafOf[qv]
	if x.ol.Count(leafQ) > 0 {
		if x.ImprovedLeaf {
			found, stopped = x.leafSearchScan(src.leafLocal(), src.leafQ, k, q, yield)
		} else {
			x.leafSearchOriginal(src, qv, q)
		}
	}

	const root = int32(0)
	tn := leafQ
	tmin := graph.Inf
	if tn != root {
		tmin = src.MinBorderDist(tn)
	}

	for !stopped && found < k && (!q.Empty() || tn != root) {
		if q.Empty() {
			tn, tmin = x.advanceT(src, q, tn)
		}
		if q.Empty() {
			continue
		}
		it := q.Pop()
		d := graph.Dist(it.Key)
		if d > tmin {
			tn, tmin = x.advanceT(src, q, tn)
			q.Push(it.ID, it.Key)
			continue
		}
		if !isNodeID(it.ID) {
			found++
			if !yield(knn.Result{Vertex: it.ID, Dist: d}) {
				stopped = true
			}
			continue
		}
		ni := decodeNode(it.ID)
		if pt.Nodes[ni].IsLeaf() {
			x.enqueueLeafObjects(src, ni, q)
		} else {
			for _, c := range x.ol.Children(ni) {
				q.Push(encodeNode(c), int64(src.MinBorderDist(c)))
			}
		}
	}
	x.PathCost = src.PathCost
}

// advanceT climbs the active subtree pointer one level (the UpdateT step of
// Algorithm 3): enqueue the occupied siblings of the previous subtree and
// return the new (node, min-border-distance) bound.
func (x *KNN) advanceT(src *Source, q *pqueue.Queue, tn int32) (int32, graph.Dist) {
	idx := x.idx
	pt := idx.PT
	prev := tn
	tn = pt.Nodes[tn].Parent
	tmin := graph.Inf
	if tn != 0 && len(idx.nodes[tn].borders) > 0 {
		tmin = src.MinBorderDist(tn)
	}
	for _, c := range x.ol.Children(tn) {
		if c == prev {
			continue
		}
		q.Push(encodeNode(c), int64(src.MinBorderDist(c)))
	}
	return tn, tmin
}

// enqueueLeafObjects inserts every object of leaf ni with its exact network
// distance assembled through the leaf's borders.
func (x *KNN) enqueueLeafObjects(src *Source, ni int32, q *pqueue.Queue) {
	idx := x.idx
	db := src.BorderDists(ni)
	ln := &idx.nodes[ni]
	for _, o := range x.ol.LeafObjects(ni) {
		pos := idx.posInLeaf[o]
		best := graph.Inf
		for bi := range ln.borders {
			if db[bi] == graph.Inf {
				continue
			}
			w := idx.matAt(ni, int32(bi), pos)
			if w >= inf32 {
				continue
			}
			if d := db[bi] + graph.Dist(w); d < best {
				best = d
			}
		}
		src.PathCost += len(ln.borders)
		if best < graph.Inf {
			q.Push(o, int64(best))
		}
	}
}

// leafSearchScan is Algorithm 4: a Dijkstra inside the source leaf,
// augmented with the global border clique. Objects settled before any
// border are immediate results (yielded right away); objects settled
// afterwards are enqueued into the main queue with their exact distances.
// The search stops after k settled leaf objects, or when the stream
// consumer stops (stopped=true). found counts the results yielded. The scan
// parameter lets shared-batch members run the same search over their own
// restarted scan (see group.go).
func (x *KNN) leafSearchScan(ls *leafScan, leaf int32, k int, q *pqueue.Queue, yield func(knn.Result) bool) (found int, stopped bool) {
	n := &x.idx.nodes[leaf]
	borderFound := false
	targets := 0
	for targets < k {
		v, d, ok := ls.next()
		if !ok {
			break
		}
		if !borderFound && borderIndexOf(n, v) >= 0 {
			borderFound = true
		}
		// Membership comes from the occurrence list's vertex bitset (shared
		// with the binding's object set) instead of a hash set allocated per
		// query — the Section 6.2 container discipline applied to the leaf
		// search hot path.
		gv := x.idx.PT.Nodes[leaf].Vertices[v]
		if x.ol.IsObject(gv) {
			targets++
			if !borderFound {
				found++
				if !yield(knn.Result{Vertex: gv, Dist: d}) {
					return found, true
				}
			} else {
				q.Push(gv, int64(d))
			}
		}
	}
	return found, false
}

// leafSearchOriginal reproduces the pre-improvement behaviour: exhaust the
// leaf (settle every leaf object regardless of k), compute for each object
// both the within-leaf distance and the through-borders distance, and
// enqueue all of them.
func (x *KNN) leafSearchOriginal(src *Source, qv int32, q *pqueue.Queue) {
	idx := x.idx
	leaf := src.leafQ
	objs := x.ol.LeafObjects(leaf)
	// Within-leaf-only Dijkstra (no border clique): path type (a).
	inside := leafOnlyDistances(idx, leaf, qv)
	// Global distances to borders: used for path type (b).
	db := src.BorderDists(leaf)
	ln := &idx.nodes[leaf]
	for _, o := range objs {
		pos := idx.posInLeaf[o]
		best := inside[pos]
		for bi := range ln.borders {
			if db[bi] == graph.Inf {
				continue
			}
			w := idx.matAt(leaf, int32(bi), pos)
			if w >= inf32 {
				continue
			}
			if d := db[bi] + graph.Dist(w); d < best {
				best = d
			}
		}
		src.PathCost += len(ln.borders)
		if best < graph.Inf {
			q.Push(o, int64(best))
		}
	}
}

var (
	_ knn.Method   = (*KNN)(nil)
	_ knn.Streamer = (*KNN)(nil)
)

// leafOnlyDistances runs a plain Dijkstra constrained to the leaf subgraph
// (no border clique), the "type (a)" paths of Appendix A.2.1.
func leafOnlyDistances(idx *Index, leaf, qv int32) []graph.Dist {
	verts := idx.PT.Nodes[leaf].Vertices
	off, tgt, w := idx.leafOff[leaf], idx.leafTgt[leaf], idx.leafW[leaf]
	dist := make([]graph.Dist, len(verts))
	for i := range dist {
		dist[i] = graph.Inf
	}
	q := pqueue.NewQueue(len(verts))
	srcPos := idx.posInLeaf[qv]
	dist[srcPos] = 0
	q.Push(srcPos, 0)
	for !q.Empty() {
		it := q.Pop()
		v := it.ID
		d := graph.Dist(it.Key)
		if d > dist[v] {
			continue
		}
		for e := off[v]; e < off[v+1]; e++ {
			t := tgt[e]
			if nd := d + graph.Dist(w[e]); nd < dist[t] {
				dist[t] = nd
				q.Push(t, int64(nd))
			}
		}
	}
	return dist
}
