// Package gtree implements the G-tree index (Section 3.5): a hierarchy of
// subgraphs over the shared partition tree, with border-to-border distance
// matrices stored as flat arrays grouped by child (the cache-friendly layout
// of Section 6.1), an assembly-based distance oracle with per-source
// materialization (the MGtree of Section 5), the kNN algorithm of Algorithm
// 3 with the improved leaf search of Algorithm 4 (Appendix A.2.1), and the
// Occurrence List object index.
//
// Distance matrices are built in two phases: a bottom-up pass computes
// distances constrained to each node's subgraph (leaves by Dijkstra on the
// leaf subgraph, internal nodes by Dijkstra over the border graph assembled
// from child matrices plus cut edges), and a top-down pass refines every
// matrix to global network distances by injecting the parent's already
// global border-to-border distances. Global matrices make LCA-based
// assembly exact for arbitrary partitions.
package gtree

import (
	"math"

	"rnknn/internal/graph"
	"rnknn/internal/partition"
	"rnknn/internal/pqueue"
)

// inf32 is the matrix sentinel for "no path" (matrices store int32 cells to
// maximize cache density, Section 6.1).
const inf32 int32 = math.MaxInt32 / 4

// Index is a built G-tree.
type Index struct {
	G  *graph.Graph
	PT *partition.Tree
	// Tau is the leaf capacity the index was built with.
	Tau int

	nodes []node
	// posInLeaf[v] is the index of v within its leaf's vertex list.
	posInLeaf []int32
	// Per-leaf local CSR subgraphs, extracted once at build time and shared
	// by leaf matrix construction and the per-query leaf searches.
	leafOff [][]int32
	leafTgt [][]int32
	leafW   [][]int32

	// Query-time matrix layout (Section 6.1 ablation; see ablation.go).
	layout     MatrixLayout
	builtinMap map[uint64]int32
	openAddr   *openTable
}

type node struct {
	// borders are the node's border vertices (vertices with an edge leaving
	// the node's subgraph), sorted ascending. Empty for the root.
	borders []int32
	// For internal nodes: childBorders is the concatenation of the
	// children's border lists in child order; childOff[i] is the start of
	// child i's block; ownIdx are the positions of this node's own borders
	// within childBorders. mat is the |childBorders| x |childBorders|
	// row-major distance matrix.
	//
	// For leaf nodes: mat is |borders| x |vertices| row-major, with columns
	// ordered as the partition leaf's vertex list; ownIdx are the positions
	// of the borders within that vertex list.
	childBorders []int32
	childOff     []int32
	ownIdx       []int32
	mat          []int32
	stride       int32
}

func (n *node) matAt(i, j int32) int32 { return n.mat[i*n.stride+j] }

// Options configures Build.
type Options struct {
	// Fanout is the partition fanout (paper default 4).
	Fanout int
	// Tau is the leaf capacity (paper: 64..512 depending on network size).
	Tau int
}

func (o Options) withDefaults(g *graph.Graph) Options {
	if o.Fanout < 2 {
		o.Fanout = 4
	}
	if o.Tau <= 0 {
		// Scale tau with network size roughly as the paper does.
		n := g.NumVertices()
		switch {
		case n <= 2_000:
			o.Tau = 64
		case n <= 10_000:
			o.Tau = 128
		case n <= 70_000:
			o.Tau = 256
		default:
			o.Tau = 512
		}
	}
	return o
}

// Build constructs a G-tree over g.
func Build(g *graph.Graph, opts Options) *Index {
	opts = opts.withDefaults(g)
	pt := partition.Build(g, partition.Options{Fanout: opts.Fanout, MaxLeafSize: opts.Tau})
	return BuildOnPartition(g, pt, opts.Tau)
}

// BuildOnPartition constructs a G-tree over a pre-built partition tree (the
// experiments share one partition between G-tree and ROAD, Section 7.2).
func BuildOnPartition(g *graph.Graph, pt *partition.Tree, tau int) *Index {
	idx := &Index{G: g, PT: pt, Tau: tau}
	idx.nodes = make([]node, len(pt.Nodes))
	idx.computePositions()
	idx.extractLeafCSRs()
	idx.computeBorders()
	idx.layoutInternalNodes()
	idx.buildLeafMatrices(nil)
	idx.buildInternalMatrices()
	idx.refineTopDown()
	return idx
}

func (x *Index) computePositions() {
	x.posInLeaf = make([]int32, x.G.NumVertices())
	for _, li := range x.PT.Leaves() {
		for i, v := range x.PT.Nodes[li].Vertices {
			x.posInLeaf[v] = int32(i)
		}
	}
}

// extractLeafCSRs caches the local CSR of every leaf subgraph.
func (x *Index) extractLeafCSRs() {
	n := len(x.PT.Nodes)
	x.leafOff = make([][]int32, n)
	x.leafTgt = make([][]int32, n)
	x.leafW = make([][]int32, n)
	for _, li := range x.PT.Leaves() {
		off, tgt, w := partition.ExtractCSR(x.G, x.PT.Nodes[li].Vertices)
		x.leafOff[li], x.leafTgt[li], x.leafW[li] = off, tgt, w
	}
}

// computeBorders marks, for every node N and vertex u in N, u as a border of
// N when u has a neighbor outside N. A vertex with an external neighbor v is
// a border of every ancestor of its leaf that does not contain v.
func (x *Index) computeBorders() {
	pt := x.PT
	isBorder := make([]map[int32]bool, len(pt.Nodes))
	for u := int32(0); u < int32(x.G.NumVertices()); u++ {
		ts, _ := x.G.Neighbors(u)
		leafU := pt.LeafOf[u]
		for _, v := range ts {
			if pt.LeafOf[v] == leafU {
				continue
			}
			n := leafU
			for n != -1 && !pt.Contains(n, v) {
				if isBorder[n] == nil {
					isBorder[n] = make(map[int32]bool)
				}
				isBorder[n][u] = true
				n = pt.Nodes[n].Parent
			}
		}
	}
	for ni := range x.nodes {
		m := isBorder[ni]
		if len(m) == 0 {
			continue
		}
		bs := make([]int32, 0, len(m))
		for v := range m {
			bs = append(bs, v)
		}
		sortInt32(bs)
		x.nodes[ni].borders = bs
	}
}

func (x *Index) layoutInternalNodes() {
	pt := x.PT
	for ni := range x.nodes {
		p := &pt.Nodes[ni]
		if p.IsLeaf() {
			// Leaf ownIdx: position of each border within the vertex list.
			n := &x.nodes[ni]
			n.ownIdx = make([]int32, len(n.borders))
			for i, b := range n.borders {
				n.ownIdx[i] = x.posInLeaf[b]
			}
			continue
		}
		n := &x.nodes[ni]
		n.childOff = make([]int32, len(p.Children)+1)
		for ci, c := range p.Children {
			n.childOff[ci+1] = n.childOff[ci] + int32(len(x.nodes[c].borders))
			n.childBorders = append(n.childBorders, x.nodes[c].borders...)
		}
		// Own borders are child borders too; locate each in childBorders.
		pos := make(map[int32]int32, len(n.childBorders))
		for i, v := range n.childBorders {
			if _, ok := pos[v]; !ok {
				pos[v] = int32(i)
			}
		}
		n.ownIdx = make([]int32, len(n.borders))
		for i, b := range n.borders {
			n.ownIdx[i] = pos[b]
		}
	}
}

// buildLeafMatrices computes each leaf's border-to-vertex matrix with
// Dijkstra constrained to the leaf subgraph. If extra is non-nil,
// extra(leafID) returns an additional border-to-border clique (global
// distances from the parent) injected into the search; this is the top-down
// refinement pass.
func (x *Index) buildLeafMatrices(extra func(ni int32) []int32) {
	for _, li := range x.PT.Leaves() {
		x.buildLeafMatrix(li, extra)
	}
}

func (x *Index) buildLeafMatrix(li int32, extra func(ni int32) []int32) {
	pt := x.PT
	verts := pt.Nodes[li].Vertices
	n := &x.nodes[li]
	nb := len(n.borders)
	nv := len(verts)
	n.stride = int32(nv)
	if n.mat == nil {
		n.mat = make([]int32, nb*nv)
	}
	off, tgt, w := x.leafOff[li], x.leafTgt[li], x.leafW[li]
	var clique []int32
	if extra != nil {
		clique = extra(li) // nb x nb global border distances, or nil
	}
	dist := make([]graph.Dist, nv)
	q := pqueue.NewQueue(nv)
	for bi := 0; bi < nb; bi++ {
		src := x.posInLeaf[n.borders[bi]]
		for i := range dist {
			dist[i] = graph.Inf
		}
		q.Reset()
		dist[src] = 0
		q.Push(src, 0)
		for !q.Empty() {
			it := q.Pop()
			v := it.ID
			d := graph.Dist(it.Key)
			if d > dist[v] {
				continue
			}
			for e := off[v]; e < off[v+1]; e++ {
				t := tgt[e]
				if nd := d + graph.Dist(w[e]); nd < dist[t] {
					dist[t] = nd
					q.Push(t, int64(nd))
				}
			}
			// Border clique relaxation (refinement pass only).
			if clique != nil {
				if vi := borderIndexOf(n, v); vi >= 0 {
					for bj := 0; bj < nb; bj++ {
						cw := clique[vi*nb+bj]
						if cw >= inf32 {
							continue
						}
						t := n.ownIdx[bj]
						if nd := d + graph.Dist(cw); nd < dist[t] {
							dist[t] = nd
							q.Push(t, int64(nd))
						}
					}
				}
			}
		}
		row := n.mat[bi*nv : (bi+1)*nv]
		for j := 0; j < nv; j++ {
			row[j] = clamp32(dist[j])
		}
	}
}

// borderIndexOf returns the border index of the leaf-local vertex position
// v, or -1 when v is not a border. Leaves have few borders; linear scan.
func borderIndexOf(n *node, v int32) int {
	for i, p := range n.ownIdx {
		if p == v {
			return i
		}
	}
	return -1
}

// buildInternalMatrices computes internal-node matrices bottom-up over the
// border graph of each node's children.
func (x *Index) buildInternalMatrices() {
	order := x.nodesByLevelDesc()
	for _, ni := range order {
		if !x.PT.Nodes[ni].IsLeaf() {
			x.buildInternalMatrix(ni, nil)
		}
	}
}

// buildInternalMatrix runs Dijkstra over node ni's border graph. extra, if
// non-nil, is a |borders|^2 clique of global distances between ni's own
// borders (from the parent) for the refinement pass.
func (x *Index) buildInternalMatrix(ni int32, extra []int32) {
	pt := x.PT
	n := &x.nodes[ni]
	cb := n.childBorders
	ncb := len(cb)
	n.stride = int32(ncb)
	if n.mat == nil {
		n.mat = make([]int32, ncb*ncb)
	}
	pos := make(map[int32]int32, ncb)
	for i, v := range cb {
		pos[v] = int32(i)
	}
	// Border graph adjacency: child cliques + cut edges + optional own
	// clique. Built as flat slices.
	type arc struct {
		to int32
		w  int32
	}
	adj := make([][]arc, ncb)
	children := pt.Nodes[ni].Children
	for ci, c := range children {
		cn := &x.nodes[c]
		base := n.childOff[ci]
		nb := len(cn.borders)
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				if i == j {
					continue
				}
				var w int32
				if pt.Nodes[c].IsLeaf() {
					w = cn.matAt(int32(i), cn.ownIdx[j])
				} else {
					w = cn.matAt(cn.ownIdx[i], cn.ownIdx[j])
				}
				if w < inf32 {
					adj[base+int32(i)] = append(adj[base+int32(i)], arc{base + int32(j), w})
				}
			}
		}
	}
	// Cut edges between children of ni: edge (u,v), both inside ni, in
	// different children. Endpoints are borders of their children, hence in
	// cb. A vertex may appear in several child blocks only if it were
	// shared, which vertex partitioning forbids, so pos is unambiguous.
	for _, u := range cb {
		ui := pos[u]
		ts, ws := x.G.Neighbors(u)
		for i, v := range ts {
			if vi, ok := pos[v]; ok && pt.PartOf(u, pt.Nodes[ni].Level+1) != pt.PartOf(v, pt.Nodes[ni].Level+1) {
				adj[ui] = append(adj[ui], arc{vi, ws[i]})
			}
		}
	}
	if extra != nil {
		nb := len(n.borders)
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				if i == j || extra[i*nb+j] >= inf32 {
					continue
				}
				adj[n.ownIdx[i]] = append(adj[n.ownIdx[i]], arc{n.ownIdx[j], extra[i*nb+j]})
			}
		}
	}

	dist := make([]graph.Dist, ncb)
	q := pqueue.NewQueue(ncb)
	for src := 0; src < ncb; src++ {
		for i := range dist {
			dist[i] = graph.Inf
		}
		q.Reset()
		dist[src] = 0
		q.Push(int32(src), 0)
		for !q.Empty() {
			it := q.Pop()
			v := it.ID
			d := graph.Dist(it.Key)
			if d > dist[v] {
				continue
			}
			for _, a := range adj[v] {
				if nd := d + graph.Dist(a.w); nd < dist[a.to] {
					dist[a.to] = nd
					q.Push(a.to, int64(nd))
				}
			}
		}
		row := n.mat[src*ncb : (src+1)*ncb]
		for j := 0; j < ncb; j++ {
			row[j] = clamp32(dist[j])
		}
	}
}

// refineTopDown upgrades every matrix from subgraph-constrained to global
// distances, level by level from the root (whose matrix is already global).
func (x *Index) refineTopDown() {
	order := x.nodesByLevelAsc()
	for _, ni := range order {
		parent := x.PT.Nodes[ni].Parent
		if parent == -1 {
			continue // root is already global
		}
		clique := x.globalBorderClique(ni)
		if x.PT.Nodes[ni].IsLeaf() {
			x.buildLeafMatrix(ni, func(int32) []int32 { return clique })
		} else {
			x.buildInternalMatrix(ni, clique)
		}
	}
}

// globalBorderClique extracts the |B|^2 global distances between node ni's
// own borders from its parent's (already refined) matrix. Node ni's borders
// form a contiguous block of the parent's childBorders.
func (x *Index) globalBorderClique(ni int32) []int32 {
	pt := x.PT
	parent := pt.Nodes[ni].Parent
	pn := &x.nodes[parent]
	ci := childIndex(pt, parent, ni)
	base := pn.childOff[ci]
	nb := len(x.nodes[ni].borders)
	out := make([]int32, nb*nb)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			out[i*nb+j] = pn.matAt(base+int32(i), base+int32(j))
		}
	}
	return out
}

func childIndex(pt *partition.Tree, parent, child int32) int {
	for i, c := range pt.Nodes[parent].Children {
		if c == child {
			return i
		}
	}
	panic("gtree: child not found under parent")
}

func (x *Index) nodesByLevelDesc() []int32 {
	return x.nodesSorted(func(a, b int32) bool {
		return x.PT.Nodes[a].Level > x.PT.Nodes[b].Level
	})
}

func (x *Index) nodesByLevelAsc() []int32 {
	return x.nodesSorted(func(a, b int32) bool {
		return x.PT.Nodes[a].Level < x.PT.Nodes[b].Level
	})
}

func (x *Index) nodesSorted(less func(a, b int32) bool) []int32 {
	out := make([]int32, len(x.nodes))
	for i := range out {
		out[i] = int32(i)
	}
	// Stable insertion-friendly sort; node count is modest.
	sortInt32Func(out, less)
	return out
}

// SizeBytes estimates the index memory footprint (matrices dominate).
func (x *Index) SizeBytes() int {
	total := len(x.posInLeaf) * 4
	for i := range x.nodes {
		n := &x.nodes[i]
		total += 4 * (len(n.borders) + len(n.childBorders) + len(n.childOff) + len(n.ownIdx) + len(n.mat))
	}
	return total
}

// Borders returns the border vertices of tree node ni (tests and stats).
func (x *Index) Borders(ni int32) []int32 { return x.nodes[ni].borders }

// NumNodes returns the number of tree nodes.
func (x *Index) NumNodes() int { return len(x.nodes) }

func clamp32(d graph.Dist) int32 {
	if d >= graph.Dist(inf32) {
		return inf32
	}
	return int32(d)
}

func sortInt32(a []int32) {
	sortInt32Func(a, func(x, y int32) bool { return x < y })
}

func sortInt32Func(a []int32, less func(x, y int32) bool) {
	// Simple binary-insertion-friendly quicksort via sort.Slice equivalent;
	// implemented inline to avoid reflect overhead on hot build paths.
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 12 {
			p := a[(lo+hi)/2]
			i, j := lo, hi-1
			for i <= j {
				for less(a[i], p) {
					i++
				}
				for less(p, a[j]) {
					j--
				}
				if i <= j {
					a[i], a[j] = a[j], a[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j+1)
				lo = i
			} else {
				qs(i, hi)
				hi = j + 1
			}
		}
		for i := lo + 1; i < hi; i++ {
			for j := i; j > lo && less(a[j], a[j-1]); j-- {
				a[j], a[j-1] = a[j-1], a[j]
			}
		}
	}
	qs(0, len(a))
}
