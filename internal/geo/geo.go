// Package geo provides planar geometry helpers shared by the R-tree, the
// SILC quadtrees and the object generators: Euclidean distances, axis-aligned
// rectangles with point/rect distance queries, and Morton (Z-order) codes.
package geo

import "math"

// Point is a planar point.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Rect is an axis-aligned rectangle, inclusive of its boundary.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns an inverted rectangle suitable as the identity for Expand.
func EmptyRect() Rect {
	return Rect{math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)}
}

// Expand grows r to include p.
func (r Rect) Expand(p Point) Rect {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if s.MinX < r.MinX {
		r.MinX = s.MinX
	}
	if s.MinY < r.MinY {
		r.MinY = s.MinY
	}
	if s.MaxX > r.MaxX {
		r.MaxX = s.MaxX
	}
	if s.MaxY > r.MaxY {
		r.MaxY = s.MaxY
	}
	return r
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// MinDist returns the minimum Euclidean distance from p to any point of r
// (zero if p is inside r).
func (r Rect) MinDist(p Point) float64 {
	dx := 0.0
	if p.X < r.MinX {
		dx = r.MinX - p.X
	} else if p.X > r.MaxX {
		dx = p.X - r.MaxX
	}
	dy := 0.0
	if p.Y < r.MinY {
		dy = r.MinY - p.Y
	} else if p.Y > r.MaxY {
		dy = p.Y - r.MaxY
	}
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDist returns the maximum Euclidean distance from p to any point of r.
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Sqrt(dx*dx + dy*dy)
}

// MortonBits is the per-axis resolution of Morton codes produced by Encode.
const MortonBits = 16

// MortonGrid quantizes points of a bounding rectangle onto a 2^MortonBits
// square grid and interleaves the cell coordinates into Z-order codes.
type MortonGrid struct {
	origin Point
	scale  float64 // grid cells per coordinate unit
}

// NewMortonGrid returns a grid covering r.
func NewMortonGrid(r Rect) MortonGrid {
	w := r.MaxX - r.MinX
	h := r.MaxY - r.MinY
	side := math.Max(w, h)
	if side <= 0 {
		side = 1
	}
	cells := float64(uint32(1) << MortonBits)
	return MortonGrid{origin: Point{r.MinX, r.MinY}, scale: (cells - 1) / side}
}

// Cell returns the quantized grid cell of p.
func (g MortonGrid) Cell(p Point) (uint32, uint32) {
	cx := uint32(math.Max(0, (p.X-g.origin.X)*g.scale))
	cy := uint32(math.Max(0, (p.Y-g.origin.Y)*g.scale))
	max := uint32(1)<<MortonBits - 1
	if cx > max {
		cx = max
	}
	if cy > max {
		cy = max
	}
	return cx, cy
}

// Encode returns the Morton code of p: the bit-interleaving of its grid cell.
func (g MortonGrid) Encode(p Point) uint64 {
	cx, cy := g.Cell(p)
	return Interleave(cx, cy)
}

// Interleave spreads the low MortonBits bits of x into even positions and y
// into odd positions.
func Interleave(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

func spread(v uint32) uint64 {
	x := uint64(v) & 0xffffffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}
