package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectExpandUnionContains(t *testing.T) {
	r := EmptyRect()
	r = r.Expand(Point{1, 2})
	r = r.Expand(Point{-3, 5})
	if r.MinX != -3 || r.MaxX != 1 || r.MinY != 2 || r.MaxY != 5 {
		t.Fatalf("rect = %+v", r)
	}
	if !r.Contains(Point{0, 3}) || r.Contains(Point{2, 3}) {
		t.Fatal("Contains wrong")
	}
	u := r.Union(Rect{0, 0, 10, 1})
	if u.MinY != 0 || u.MaxX != 10 {
		t.Fatalf("union = %+v", u)
	}
}

func TestMinMaxDist(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if d := r.MinDist(Point{5, 5}); d != 0 {
		t.Fatalf("inside MinDist = %v", d)
	}
	if d := r.MinDist(Point{13, 14}); math.Abs(d-5) > 1e-9 {
		t.Fatalf("corner MinDist = %v", d)
	}
	if d := r.MaxDist(Point{0, 0}); math.Abs(d-math.Sqrt(200)) > 1e-9 {
		t.Fatalf("MaxDist = %v", d)
	}
}

func TestMinDistLowerBoundsPointDistProperty(t *testing.T) {
	f := func(px, py, ax, ay, bx, by, qx, qy float64) bool {
		for _, v := range []float64{px, py, ax, ay, bx, by, qx, qy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true // skip degenerate inputs
			}
		}
		r := EmptyRect().Expand(Point{ax, ay}).Expand(Point{bx, by})
		// Any point inside the rect is at least MinDist from q.
		in := Point{math.Min(math.Max(px, r.MinX), r.MaxX), math.Min(math.Max(py, r.MinY), r.MaxY)}
		q := Point{qx, qy}
		return r.MinDist(q) <= q.Dist(in)+1e-6 && r.MaxDist(q) >= q.Dist(in)-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMortonOrderingLocality(t *testing.T) {
	g := NewMortonGrid(Rect{0, 0, 100, 100})
	// Interleave correctness on a couple of known cells.
	if Interleave(0, 0) != 0 {
		t.Fatal("Interleave(0,0)")
	}
	if Interleave(1, 0) != 1 || Interleave(0, 1) != 2 || Interleave(1, 1) != 3 {
		t.Fatalf("Interleave small cells: %d %d %d", Interleave(1, 0), Interleave(0, 1), Interleave(1, 1))
	}
	// Same point, same code; clamped at borders.
	a := g.Encode(Point{50, 50})
	b := g.Encode(Point{50, 50})
	if a != b {
		t.Fatal("Encode not deterministic")
	}
	c := g.Encode(Point{1e9, 1e9})
	d := g.Encode(Point{100, 100})
	if c != d {
		t.Fatal("Encode should clamp out-of-range points")
	}
}

func TestMortonCellQuantization(t *testing.T) {
	g := NewMortonGrid(Rect{0, 0, 10, 10})
	cx0, cy0 := g.Cell(Point{0, 0})
	if cx0 != 0 || cy0 != 0 {
		t.Fatalf("origin cell = %d,%d", cx0, cy0)
	}
	cx1, cy1 := g.Cell(Point{10, 10})
	max := uint32(1)<<MortonBits - 1
	if cx1 != max || cy1 != max {
		t.Fatalf("far corner cell = %d,%d want %d", cx1, cy1, max)
	}
}
