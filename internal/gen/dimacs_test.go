package gen_test

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"rnknn/internal/gen"
)

// A tiny DIMACS pair: a 5-vertex path plus a chord, arcs in both
// directions as real DIMACS files have, with comment lines interleaved.
const testGr = `c tiny test graph
p sp 5 12
a 1 2 10
a 2 1 10
a 2 3 12
a 3 2 12
a 3 4 9
a 4 3 9
a 4 5 14
a 5 4 14
a 1 3 25
a 3 1 25
a 2 4 20
a 4 2 20
`

const testCo = `c coordinates
p aux sp co 5
v 1 0 0
v 2 1000 0
v 3 2000 500
v 4 3000 0
v 5 4000 0
`

func TestReadDIMACS(t *testing.T) {
	g, err := gen.ReadDIMACS(strings.NewReader(testGr), strings.NewReader(testCo), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "tiny" {
		t.Fatalf("name %q", g.Name)
	}
	if g.NumVertices() != 5 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	if g.NumEdges()/2 != 6 {
		t.Fatalf("|E| = %d, want 6 undirected", g.NumEdges()/2)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The coordinate scaling must preserve relative geometry: vertex 3 sits
	// above the line through the others.
	if !(g.Y[2] > g.Y[0] && g.Y[2] > g.Y[4]) {
		t.Fatalf("geometry distorted: Y = %v", g.Y)
	}
	// Every edge keeps Euclid <= weight (the Validate invariant) with a
	// positive max speed for the shard lower bounds.
	if s := g.MaxSpeed(); s <= 0 {
		t.Fatalf("MaxSpeed = %v", s)
	}
}

func TestReadDIMACSGzip(t *testing.T) {
	gz := func(s string) *bytes.Reader {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write([]byte(s))
		zw.Close()
		return bytes.NewReader(buf.Bytes())
	}
	g, err := gen.ReadDIMACS(gz(testGr), gz(testCo), "tinygz")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges()/2 != 6 {
		t.Fatalf("|V|=%d |E|=%d", g.NumVertices(), g.NumEdges()/2)
	}
}

// TestReadDIMACSDisconnected: an extract with an unreachable island keeps
// only the largest component, renumbered densely.
func TestReadDIMACSDisconnected(t *testing.T) {
	gr := `p sp 6 6
a 1 2 10
a 2 1 10
a 2 3 10
a 3 2 10
a 5 6 10
a 6 5 10
`
	co := `p aux sp co 6
v 1 0 0
v 2 10 0
v 3 20 0
v 4 500 500
v 5 30 0
v 6 40 0
`
	g, err := gen.ReadDIMACS(strings.NewReader(gr), strings.NewReader(co), "disc")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges()/2 != 2 {
		t.Fatalf("largest component |V|=%d |E|=%d, want 3/2", g.NumVertices(), g.NumEdges()/2)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []struct{ gr, co string }{
		{"a 1 2 3\n", testCo},                    // arc before problem line
		{"p sp 5 1\na 1 9 3\n", testCo},          // vertex out of range
		{"p sp 4 0\n", testCo},                   // vertex count mismatch
		{testGr, "v 1 0 0\n"},                    // coords before problem line
		{"p sp 5 0\n", testCo},                   // no arcs
		{"p xx 5 1\na 1 2 3\n", testCo},          // wrong problem type
		{"p sp 5 1\na 1 2 notanumber\n", testCo}, // bad weight
	}
	for i, tc := range cases {
		if _, err := gen.ReadDIMACS(strings.NewReader(tc.gr), strings.NewReader(tc.co), "bad"); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}
