// Package gen generates the synthetic road networks and object sets used by
// the experiment harness. It substitutes for the paper's DIMACS road
// networks and OpenStreetMap POI extracts (see DESIGN.md, Substitutions):
// the networks are planar, connected, perturbed grids with a highway tier
// (so travel-time graphs exhibit the hierarchy PHL/CH/TNR exploit) and a
// configurable fraction of degree-2 chain vertices (matching the degree
// statistics the paper reports).
package gen

import (
	"math"
	"math/rand"

	"rnknn/internal/graph"
)

// NetworkSpec parameterizes a synthetic road network.
type NetworkSpec struct {
	Name string
	// Rows and Cols give the underlying grid before subdivision.
	Rows, Cols int
	// Spacing is the grid cell size in coordinate units (default 1000).
	Spacing float64
	// Jitter is the fraction of Spacing by which vertex positions are
	// perturbed (default 0.3).
	Jitter float64
	// ExtraEdgeProb is the probability of keeping each non-spanning-tree
	// grid edge (default 0.55), controlling how grid-like the network is.
	ExtraEdgeProb float64
	// ChainSubdivide is the probability that an edge is subdivided into a
	// degree-2 chain (default 0.35, yielding roughly the paper's ~30%
	// degree<=2 vertices). ChainLen is the number of interior vertices each
	// subdivided edge receives (default 1..2 random; set >0 to fix).
	ChainSubdivide float64
	ChainLen       int
	// HighwayEvery marks every n-th grid row/column as a highway with
	// higher speed (default 8). Zero disables highways.
	HighwayEvery int
	// Seed makes generation deterministic.
	Seed int64
}

func (s NetworkSpec) withDefaults() NetworkSpec {
	if s.Spacing == 0 {
		s.Spacing = 1000
	}
	if s.Jitter == 0 {
		s.Jitter = 0.3
	}
	if s.ExtraEdgeProb == 0 {
		s.ExtraEdgeProb = 0.55
	}
	if s.ChainSubdivide == 0 {
		s.ChainSubdivide = 0.35
	}
	if s.HighwayEvery == 0 {
		s.HighwayEvery = 8
	}
	return s
}

// Speed tiers for travel-time weights. Travel time = distance / speed, so a
// higher tier means proportionally smaller time weights; highways therefore
// attract shortest travel-time paths, giving the graph the "prominent
// hierarchy" the paper observes on travel-time networks (Section 7.2, B.1).
const (
	speedLocal    = 1.0
	speedArterial = 2.0
	speedHighway  = 4.5
	// timeScale keeps integer time weights well resolved.
	timeScale = 4.0
)

// Network generates a connected road network per spec. The produced graph's
// travel-distance weights always upper-bound the Euclidean distance between
// endpoints, so Euclidean distance is a valid kNN lower bound, as on real
// travel-distance road networks.
func Network(spec NetworkSpec) *graph.Graph {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	rows, cols := spec.Rows, spec.Cols
	n := rows * cols
	x := make([]float64, 0, n*2)
	y := make([]float64, 0, n*2)
	vid := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			jx := (rng.Float64()*2 - 1) * spec.Jitter * spec.Spacing
			jy := (rng.Float64()*2 - 1) * spec.Jitter * spec.Spacing
			x = append(x, float64(c)*spec.Spacing+jx)
			y = append(y, float64(r)*spec.Spacing+jy)
		}
	}

	type cand struct {
		u, v  int32
		speed float64
	}
	var cands []cand
	speedOf := func(r1, c1, r2, c2 int) float64 {
		he := spec.HighwayEvery
		if he > 0 {
			if r1 == r2 && r1%he == 0 {
				return speedHighway
			}
			if c1 == c2 && c1%he == 0 {
				return speedHighway
			}
			if r1 == r2 && r1%(he/2+1) == 0 {
				return speedArterial
			}
			if c1 == c2 && c1%(he/2+1) == 0 {
				return speedArterial
			}
		}
		return speedLocal
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				cands = append(cands, cand{vid(r, c), vid(r, c+1), speedOf(r, c, r, c+1)})
			}
			if r+1 < rows {
				cands = append(cands, cand{vid(r, c), vid(r+1, c), speedOf(r, c, r+1, c)})
			}
			// Occasional diagonals break up the pure grid structure.
			if r+1 < rows && c+1 < cols && rng.Float64() < 0.08 {
				cands = append(cands, cand{vid(r, c), vid(r+1, c+1), speedLocal})
			}
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	// Spanning tree via union-find guarantees connectivity; extra edges are
	// kept with ExtraEdgeProb.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	type edge struct {
		u, v  int32
		speed float64
	}
	var kept []edge
	for _, e := range cands {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			kept = append(kept, edge{e.u, e.v, e.speed})
		} else if e.speed > speedLocal || rng.Float64() < spec.ExtraEdgeProb {
			// Highways and arterials are always kept so they form long
			// continuous corridors.
			kept = append(kept, edge{e.u, e.v, e.speed})
		}
	}

	// Subdivide a fraction of local edges into degree-2 chains.
	type finalEdge struct {
		u, v  int32
		speed float64
	}
	var finals []finalEdge
	addVertex := func(px, py float64) int32 {
		x = append(x, px)
		y = append(y, py)
		return int32(len(x) - 1)
	}
	for _, e := range kept {
		segs := 1
		if rng.Float64() < spec.ChainSubdivide {
			if spec.ChainLen > 0 {
				segs = spec.ChainLen + 1
			} else {
				segs = 2 + rng.Intn(2)
			}
		}
		if segs == 1 {
			finals = append(finals, finalEdge{e.u, e.v, e.speed})
			continue
		}
		prev := e.u
		for s := 1; s < segs; s++ {
			t := float64(s) / float64(segs)
			// Interpolate with a small perpendicular wiggle so chains model
			// road curvature; the wiggle keeps weights above Euclidean.
			px := x[e.u] + (x[e.v]-x[e.u])*t
			py := y[e.u] + (y[e.v]-y[e.u])*t
			wig := spec.Spacing * 0.05 * (rng.Float64()*2 - 1)
			mid := addVertex(px+wig, py-wig)
			finals = append(finals, finalEdge{prev, mid, e.speed})
			prev = mid
		}
		finals = append(finals, finalEdge{prev, e.v, e.speed})
	}

	b := graph.NewBuilder(len(x), x, y)
	for _, e := range finals {
		de := math.Hypot(x[e.u]-x[e.v], y[e.u]-y[e.v])
		detour := 1.0 + 0.25*rng.Float64()
		dw := int32(math.Ceil(de * detour))
		if dw < 1 {
			dw = 1
		}
		tw := int32(math.Max(1, math.Round(float64(dw)*timeScale/e.speed)))
		b.AddEdge(e.u, e.v, dw, tw)
	}
	return b.Build(spec.Name)
}

// HighwayNetwork generates a network in which ~95% of vertices have degree 2,
// modelling the NA-HWY highway-only dataset of Appendix A.1.2 (Figure 20):
// a sparse grid whose every edge is subdivided into a long chain.
func HighwayNetwork(name string, rows, cols int, seed int64) *graph.Graph {
	return Network(NetworkSpec{
		Name:           name,
		Rows:           rows,
		Cols:           cols,
		Spacing:        12000,
		ExtraEdgeProb:  0.25,
		ChainSubdivide: 1.0,
		ChainLen:       18,
		HighwayEvery:   4,
		Seed:           seed,
	})
}

// Ladder returns the standard dataset ladder used by the experiment harness,
// a scaled-down analogue of the paper's Table 1 (names keep the paper's
// regional mnemonics). Index i grows |V| roughly 2x per step.
func Ladder() []NetworkSpec {
	mk := func(name string, rows, cols int, seed int64) NetworkSpec {
		return NetworkSpec{Name: name, Rows: rows, Cols: cols, Seed: seed}
	}
	return []NetworkSpec{
		mk("DE", 24, 30, 1),   // ~1k grid -> ~1.3k vertices after chains
		mk("VT", 34, 42, 2),   // ~2k
		mk("ME", 48, 60, 3),   // ~4k
		mk("CO", 68, 84, 4),   // ~8k
		mk("NW", 96, 120, 5),  // ~16k (default medium network)
		mk("CA", 136, 168, 6), // ~32k
		mk("E", 192, 240, 7),  // ~64k
		mk("US", 272, 340, 8), // ~128k (default large network)
	}
}

// LadderSpec returns the spec with the given name from Ladder, or false.
func LadderSpec(name string) (NetworkSpec, bool) {
	for _, s := range Ladder() {
		if s.Name == name {
			return s, true
		}
	}
	return NetworkSpec{}, false
}
