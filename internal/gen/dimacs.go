// DIMACS import: the 9th DIMACS Implementation Challenge road networks
// (USA-road-d.*) are the de-facto continental-scale benchmark graphs — the
// paper's experiments run on their subgraphs — and this reader turns a
// .gr/.co pair into a validated rnknn graph. cmd/gendata -dimacs-gr/-co
// drives it; cmd/README.md documents where to download the files.
package gen

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"rnknn/internal/graph"
)

// ReadDIMACS parses a DIMACS shortest-path graph (.gr: "p sp n m" then
// "a u v w" arc lines, 1-based) and its coordinate file (.co: "v id x y"
// lines) into a graph named name. Both readers may be gzip-compressed
// (detected by magic). The pair of directed arcs DIMACS uses per road
// segment collapses to one undirected edge (keeping the smaller weight if
// they disagree); the arc weight serves as both the travel-distance and
// travel-time view.
//
// Two fixups bridge the format gap to this library's invariants:
//
//   - Coordinates are scaled uniformly so every edge's Euclidean length is
//     at most its weight (graph.Validate requires it — Euclidean distance
//     must lower-bound network distance). A uniform scale preserves the
//     geometry's shape, so spatial index quality is unaffected.
//   - If the graph is not connected, the largest connected component is
//     extracted with vertex ids remapped densely (DIMACS files are usually
//     connected; trimmed regional extracts sometimes are not).
func ReadDIMACS(gr, co io.Reader, name string) (*graph.Graph, error) {
	x, y, err := readCoords(co)
	if err != nil {
		return nil, fmt.Errorf("dimacs .co: %w", err)
	}
	g, err := readArcs(gr, x, y, name)
	if err != nil {
		return nil, fmt.Errorf("dimacs .gr: %w", err)
	}
	g = largestComponent(g)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dimacs: imported graph invalid: %w", err)
	}
	return g, nil
}

// maybeGunzip wraps r in a gzip reader when it starts with the gzip magic.
func maybeGunzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic, err := br.Peek(2)
	if err == nil && len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, err
		}
		return zr, nil
	}
	return br, nil
}

// readCoords parses the .co file: "p aux sp co N" sizes the arrays,
// "v id x y" lines fill them (1-based ids).
func readCoords(r io.Reader) (x, y []float64, err error) {
	rr, err := maybeGunzip(r)
	if err != nil {
		return nil, nil, err
	}
	sc := bufio.NewScanner(rr)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		switch line[0] {
		case 'c':
			continue
		case 'p':
			f := strings.Fields(line)
			n, err := strconv.Atoi(f[len(f)-1])
			if err != nil || n <= 0 {
				return nil, nil, fmt.Errorf("bad problem line %q", line)
			}
			x = make([]float64, n)
			y = make([]float64, n)
		case 'v':
			if x == nil {
				return nil, nil, fmt.Errorf("vertex line before problem line")
			}
			f := strings.Fields(line)
			if len(f) != 4 {
				return nil, nil, fmt.Errorf("bad vertex line %q", line)
			}
			id, err1 := strconv.Atoi(f[1])
			vx, err2 := strconv.ParseFloat(f[2], 64)
			vy, err3 := strconv.ParseFloat(f[3], 64)
			if err1 != nil || err2 != nil || err3 != nil || id < 1 || id > len(x) {
				return nil, nil, fmt.Errorf("bad vertex line %q", line)
			}
			x[id-1], y[id-1] = vx, vy
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if x == nil {
		return nil, nil, fmt.Errorf("no problem line")
	}
	return x, y, nil
}

// readArcs parses the .gr file against the coordinate arrays, scales the
// coordinates so Euclidean lengths lower-bound the weights, and builds the
// undirected CSR graph.
func readArcs(r io.Reader, x, y []float64, name string) (*graph.Graph, error) {
	rr, err := maybeGunzip(r)
	if err != nil {
		return nil, err
	}
	type arc struct {
		u, v int32
		w    int32
	}
	var arcs []arc
	n := 0
	sc := bufio.NewScanner(rr)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		switch line[0] {
		case 'c':
			continue
		case 'p':
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "sp" {
				return nil, fmt.Errorf("bad problem line %q (want \"p sp n m\")", line)
			}
			var err error
			if n, err = strconv.Atoi(f[2]); err != nil || n <= 0 {
				return nil, fmt.Errorf("bad problem line %q", line)
			}
			if n != len(x) {
				return nil, fmt.Errorf("graph has %d vertices, coordinate file has %d", n, len(x))
			}
		case 'a':
			if n == 0 {
				return nil, fmt.Errorf("arc line before problem line")
			}
			f := strings.Fields(line)
			if len(f) != 4 {
				return nil, fmt.Errorf("bad arc line %q", line)
			}
			u, err1 := strconv.Atoi(f[1])
			v, err2 := strconv.Atoi(f[2])
			w, err3 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || err3 != nil ||
				u < 1 || u > n || v < 1 || v > n || w < 0 || w > math.MaxInt32 {
				return nil, fmt.Errorf("bad arc line %q", line)
			}
			if w == 0 {
				w = 1 // zero-weight arcs exist in some extracts; weights must be positive
			}
			arcs = append(arcs, arc{int32(u - 1), int32(v - 1), int32(w)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("no problem line")
	}
	if len(arcs) == 0 {
		return nil, fmt.Errorf("no arcs")
	}

	// Scale coordinates by f = min(weight / euclid) so every edge satisfies
	// the Euclidean-lower-bound invariant with the tightest uniform fit
	// (a margin absorbs float rounding; zero-length and self arcs impose no
	// constraint).
	f := math.Inf(1)
	for _, a := range arcs {
		if a.u == a.v {
			continue
		}
		e := math.Hypot(x[a.u]-x[a.v], y[a.u]-y[a.v])
		if e > 0 {
			f = math.Min(f, float64(a.w)/e)
		}
	}
	if !math.IsInf(f, 1) && f > 0 {
		f *= 1 - 1e-9
		for i := range x {
			x[i] *= f
			y[i] *= f
		}
	}

	b := graph.NewBuilder(n, x, y)
	for _, a := range arcs {
		b.AddEdge(a.u, a.v, a.w, a.w)
	}
	return b.Build(name), nil
}

// largestComponent returns g if connected, otherwise the subgraph induced
// by its largest connected component with vertices renumbered densely in
// ascending original id.
func largestComponent(g *graph.Graph) *graph.Graph {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var sizes []int
	queue := make([]int32, 0, n)
	for s := int32(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(len(sizes))
		comp[s] = id
		queue = append(queue[:0], s)
		size := 0
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				if v := g.Targets[i]; comp[v] < 0 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	if len(sizes) == 1 {
		return g
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	remap := make([]int32, n)
	var x, y []float64
	next := int32(0)
	for v := 0; v < n; v++ {
		if comp[v] == int32(best) {
			remap[v] = next
			next++
			x = append(x, g.X[v])
			y = append(y, g.Y[v])
		} else {
			remap[v] = -1
		}
	}
	b := graph.NewBuilder(int(next), x, y)
	for u := int32(0); int(u) < n; u++ {
		if remap[u] < 0 {
			continue
		}
		for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
			if v := g.Targets[i]; u < v {
				b.AddEdge(remap[u], remap[v], g.DistW[i], g.TimeW[i])
			}
		}
	}
	return b.Build(g.Name)
}
