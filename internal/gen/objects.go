package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rnknn/internal/dijkstra"
	"rnknn/internal/graph"
)

// Uniform returns a uniformly random object set of the given density
// (|O| = max(1, density*|V|)) as a sorted vertex list (Section 4.2).
func Uniform(g *graph.Graph, density float64, seed int64) []int32 {
	n := g.NumVertices()
	count := objCount(n, density)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	objs := make([]int32, count)
	for i := 0; i < count; i++ {
		objs[i] = int32(perm[i])
	}
	sortObjs(objs)
	return objs
}

// Clustered returns a clustered object set (Section 4.2): numClusters
// uniformly random central vertices, each expanded outwards (BFS over the
// road network) collecting up to maxClusterSize nearby vertices.
func Clustered(g *graph.Graph, numClusters, maxClusterSize int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	if numClusters > n {
		numClusters = n
	}
	perm := rng.Perm(n)
	member := make(map[int32]bool, numClusters*maxClusterSize)
	for c := 0; c < numClusters; c++ {
		center := int32(perm[c])
		size := 1
		if maxClusterSize > 1 {
			size += rng.Intn(maxClusterSize)
		}
		// BFS outward from the center.
		frontier := []int32{center}
		seen := map[int32]bool{center: true}
		taken := 0
		for len(frontier) > 0 && taken < size {
			v := frontier[0]
			frontier = frontier[1:]
			if !member[v] {
				member[v] = true
				taken++
			}
			ts, _ := g.Neighbors(v)
			for _, t := range ts {
				if !seen[t] {
					seen[t] = true
					frontier = append(frontier, t)
				}
			}
		}
	}
	objs := make([]int32, 0, len(member))
	for v := range member {
		objs = append(objs, v)
	}
	sortObjs(objs)
	return objs
}

// MinDistResult holds the minimum-object-distance experiment inputs
// (Section 4.2): object sets R_1..R_m with exponentially increasing minimum
// network distance from the network centre, and query vertices closer to the
// centre than any R_i object.
type MinDistResult struct {
	Center  int32
	Dmax    graph.Dist
	Sets    [][]int32 // Sets[i-1] = R_i
	Queries []int32
}

// MinObjDist builds the minimum-object-distance sets: R_i contains objCount
// objects whose network distance from the centre vertex is at least
// Dmax/2^(m-i+1), plus query vertices within [0, Dmax/2^m) of the centre.
func MinObjDist(g *graph.Graph, density float64, m, numQueries int, seed int64) MinDistResult {
	n := g.NumVertices()
	count := objCount(n, density)
	rng := rand.New(rand.NewSource(seed))

	center := centralVertex(g)
	solver := dijkstra.NewSolver(g)
	dist := make([]graph.Dist, n)
	solver.All(center, dist)
	dmax := graph.Dist(0)
	for _, d := range dist {
		if d != graph.Inf && d > dmax {
			dmax = d
		}
	}
	res := MinDistResult{Center: center, Dmax: dmax}

	for i := 1; i <= m; i++ {
		min := dmax / (1 << uint(m-i+1))
		var pool []int32
		for v := 0; v < n; v++ {
			if dist[v] != graph.Inf && dist[v] >= min {
				pool = append(pool, int32(v))
			}
		}
		set := samplePool(pool, count, rng)
		sortObjs(set)
		res.Sets = append(res.Sets, set)
	}

	qmax := dmax / (1 << uint(m))
	var qpool []int32
	for v := 0; v < n; v++ {
		if dist[v] < qmax {
			qpool = append(qpool, int32(v))
		}
	}
	if len(qpool) == 0 {
		qpool = []int32{center}
	}
	res.Queries = samplePool(qpool, numQueries, rng)
	return res
}

// centralVertex returns the vertex nearest the Euclidean centre of the
// network's bounding box.
func centralVertex(g *graph.Graph) int32 {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		minX = math.Min(minX, g.X[v])
		minY = math.Min(minY, g.Y[v])
		maxX = math.Max(maxX, g.X[v])
		maxY = math.Max(maxY, g.Y[v])
	}
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	best := int32(0)
	bestD := math.Inf(1)
	for v := 0; v < n; v++ {
		d := math.Hypot(g.X[v]-cx, g.Y[v]-cy)
		if d < bestD {
			bestD = d
			best = int32(v)
		}
	}
	return best
}

func samplePool(pool []int32, count int, rng *rand.Rand) []int32 {
	if count >= len(pool) {
		out := make([]int32, len(pool))
		copy(out, pool)
		return out
	}
	idx := rng.Perm(len(pool))[:count]
	out := make([]int32, count)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// POISet is a named object set mirroring one row of the paper's Table 2.
type POISet struct {
	Name      string
	Density   float64
	Clustered bool
	Vertices  []int32
}

// POICategories generates the eight real-world POI categories of Table 2 as
// synthetic sets with the paper's densities and spatial character (schools
// and civic POIs roughly uniform; parks, fast food and hotels clustered).
// Sets are ordered by decreasing size, as in Figure 13.
func POICategories(g *graph.Graph, seed int64) []POISet {
	n := g.NumVertices()
	cats := []POISet{
		{Name: "School", Density: 0.007},
		{Name: "Park", Density: 0.003, Clustered: true},
		{Name: "FastFood", Density: 0.001, Clustered: true},
		{Name: "Post", Density: 0.001},
		{Name: "Hospital", Density: 0.0005},
		{Name: "Hotel", Density: 0.0004, Clustered: true},
		{Name: "University", Density: 0.0002},
		{Name: "Court", Density: 0.00009},
	}
	for i := range cats {
		s := seed + int64(i)*7919
		count := objCount(n, cats[i].Density)
		if cats[i].Clustered {
			// Clusters of up to 5, enough clusters to reach the density.
			clusters := (count + 2) / 3
			if clusters < 1 {
				clusters = 1
			}
			objs := Clustered(g, clusters, 5, s)
			if len(objs) > count {
				rng := rand.New(rand.NewSource(s))
				objs = samplePool(objs, count, rng)
				sortObjs(objs)
			}
			cats[i].Vertices = objs
		} else {
			cats[i].Vertices = Uniform(g, cats[i].Density, s)
		}
	}
	return cats
}

// QueryVertices returns numQueries uniformly random query vertices.
func QueryVertices(g *graph.Graph, numQueries int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, numQueries)
	n := g.NumVertices()
	for i := range out {
		out[i] = int32(rng.Intn(n))
	}
	return out
}

func objCount(n int, density float64) int {
	count := int(density * float64(n))
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	return count
}

func sortObjs(objs []int32) {
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
}

// Describe returns a one-line summary of an object set, for dataset tables.
func Describe(name string, g *graph.Graph, objs []int32) string {
	return fmt.Sprintf("%-10s |O|=%-7d density=%.5f", name, len(objs), float64(len(objs))/float64(g.NumVertices()))
}
