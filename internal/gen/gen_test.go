package gen

import (
	"testing"

	"rnknn/internal/graph"
)

func TestNetworkValidAndConnected(t *testing.T) {
	g := Network(NetworkSpec{Name: "t", Rows: 15, Cols: 15, Seed: 3})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() < 15*15 {
		t.Fatalf("vertices = %d, want >= grid size", g.NumVertices())
	}
}

func TestNetworkDeterministic(t *testing.T) {
	a := Network(NetworkSpec{Name: "t", Rows: 10, Cols: 10, Seed: 9})
	b := Network(NetworkSpec{Name: "t", Rows: 10, Cols: 10, Seed: 9})
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different networks")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] || a.DistW[i] != b.DistW[i] {
			t.Fatal("same seed produced different edges")
		}
	}
	c := Network(NetworkSpec{Name: "t", Rows: 10, Cols: 10, Seed: 10})
	same := c.NumEdges() == a.NumEdges()
	if same {
		for i := range a.Targets {
			if a.Targets[i] != c.Targets[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical networks")
	}
}

func TestNetworkChainFraction(t *testing.T) {
	g := Network(NetworkSpec{Name: "t", Rows: 30, Cols: 30, Seed: 4})
	f := g.ChainFraction()
	if f < 0.15 || f > 0.75 {
		t.Fatalf("chain fraction %v outside road-network-like range", f)
	}
}

func TestHighwayNetworkMostlyChains(t *testing.T) {
	g := HighwayNetwork("hwy", 6, 6, 2)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if f := g.ChainFraction(); f < 0.9 {
		t.Fatalf("highway network chain fraction %v, want >= 0.9", f)
	}
}

func TestTravelTimeFasterOnHighways(t *testing.T) {
	g := Network(NetworkSpec{Name: "t", Rows: 20, Cols: 20, Seed: 5})
	// Travel-time view must have strictly positive weights and a MaxSpeed
	// larger than the distance view's (highways exist).
	tv := g.View(graph.TravelTime)
	if tv.MaxSpeed() <= g.MaxSpeed() {
		t.Fatalf("time MaxSpeed %v not above distance MaxSpeed %v", tv.MaxSpeed(), g.MaxSpeed())
	}
}

func TestUniformObjects(t *testing.T) {
	g := Network(NetworkSpec{Name: "t", Rows: 20, Cols: 20, Seed: 6})
	objs := Uniform(g, 0.01, 1)
	want := int(0.01 * float64(g.NumVertices()))
	if len(objs) != want {
		t.Fatalf("|O| = %d, want %d", len(objs), want)
	}
	seen := map[int32]bool{}
	for i, v := range objs {
		if v < 0 || int(v) >= g.NumVertices() {
			t.Fatalf("object out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate object %d", v)
		}
		seen[v] = true
		if i > 0 && objs[i-1] >= v {
			t.Fatal("objects not sorted")
		}
	}
	if len(Uniform(g, 0, 1)) != 1 {
		t.Fatal("density 0 should still give one object")
	}
}

func TestClusteredObjects(t *testing.T) {
	g := Network(NetworkSpec{Name: "t", Rows: 20, Cols: 20, Seed: 7})
	objs := Clustered(g, 10, 5, 2)
	if len(objs) < 10 {
		t.Fatalf("|O| = %d, want >= numClusters", len(objs))
	}
	if len(objs) > 10*5 {
		t.Fatalf("|O| = %d exceeds clusters*maxSize", len(objs))
	}
}

func TestMinObjDistSets(t *testing.T) {
	g := Network(NetworkSpec{Name: "t", Rows: 16, Cols: 16, Seed: 8})
	m := 4
	res := MinObjDist(g, 0.05, m, 20, 3)
	if len(res.Sets) != m {
		t.Fatalf("sets = %d, want %d", len(res.Sets), m)
	}
	if res.Dmax <= 0 {
		t.Fatal("Dmax must be positive")
	}
	// Verify the distance floors via an independent Dijkstra.
	dist := ssspRef(g, res.Center)
	for i, set := range res.Sets {
		min := res.Dmax / (1 << uint(m-i))
		for _, v := range set {
			if dist[v] < min {
				t.Fatalf("R%d object %d at distance %d below floor %d", i+1, v, dist[v], min)
			}
		}
	}
	qmax := res.Dmax / (1 << uint(m))
	for _, q := range res.Queries {
		if dist[q] >= qmax {
			t.Fatalf("query %d at distance %d not near centre", q, dist[q])
		}
	}
}

func ssspRef(g *graph.Graph, src int32) []graph.Dist {
	n := g.NumVertices()
	d := make([]graph.Dist, n)
	for i := range d {
		d[i] = graph.Inf
	}
	d[src] = 0
	for {
		changed := false
		for u := int32(0); u < int32(n); u++ {
			if d[u] == graph.Inf {
				continue
			}
			ts, ws := g.Neighbors(u)
			for i, v := range ts {
				if nd := d[u] + graph.Dist(ws[i]); nd < d[v] {
					d[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			return d
		}
	}
}

func TestPOICategories(t *testing.T) {
	g := Network(NetworkSpec{Name: "t", Rows: 40, Cols: 40, Seed: 9})
	cats := POICategories(g, 11)
	if len(cats) != 8 {
		t.Fatalf("categories = %d, want 8", len(cats))
	}
	for i, c := range cats {
		if len(c.Vertices) == 0 {
			t.Fatalf("%s empty", c.Name)
		}
		if i > 0 && len(c.Vertices) > len(cats[i-1].Vertices) {
			t.Fatalf("categories not ordered by decreasing size: %s", c.Name)
		}
	}
	if cats[0].Name != "School" || cats[7].Name != "Court" {
		t.Fatalf("unexpected category order: %s..%s", cats[0].Name, cats[7].Name)
	}
}

func TestLadder(t *testing.T) {
	specs := Ladder()
	if len(specs) < 6 {
		t.Fatalf("ladder too short: %d", len(specs))
	}
	prev := 0
	for _, s := range specs {
		size := s.Rows * s.Cols
		if size <= prev {
			t.Fatalf("ladder not increasing at %s", s.Name)
		}
		prev = size
	}
	if _, ok := LadderSpec("NW"); !ok {
		t.Fatal("LadderSpec(NW) missing")
	}
	if _, ok := LadderSpec("nope"); ok {
		t.Fatal("LadderSpec should reject unknown names")
	}
}
