package exp_test

import (
	"strings"
	"testing"

	"rnknn/internal/exp"
)

// smallCfg shrinks every harness network so the full experiment set runs in
// seconds. The point of these tests is that every experiment executes and
// produces well-formed tables, not the measurements themselves.
var smallCfg = exp.Config{Queries: 4, Scale: 0.012, Seed: 7}

func TestEveryExperimentRuns(t *testing.T) {
	ids := exp.IDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range ids {
		tables, err := exp.Run(id, smallCfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		for _, tab := range tables {
			if tab.ID == "" || tab.Title == "" {
				t.Fatalf("%s: table missing id/title", id)
			}
			if len(tab.Header) < 2 || len(tab.Rows) == 0 {
				t.Fatalf("%s/%s: degenerate table", id, tab.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Fatalf("%s/%s: row width %d != header %d (%v)", id, tab.ID, len(row), len(tab.Header), row)
				}
			}
			s := tab.String()
			if !strings.Contains(s, tab.ID) {
				t.Fatalf("%s: rendering lost the id", id)
			}
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := exp.Run("nope", smallCfg); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestTitlesCoverIDs(t *testing.T) {
	titles := exp.Titles()
	for _, id := range exp.IDs() {
		if titles[id] == "" {
			t.Fatalf("missing title for %s", id)
		}
	}
}
