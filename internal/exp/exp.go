// Package exp is the experiment harness: one entry point per table and
// figure of the paper's evaluation (Section 7 and Appendices A-B), each
// regenerating the corresponding rows/series over the synthetic dataset
// ladder (see DESIGN.md for the experiment index and substitutions).
//
// Networks, engines and indexes are cached process-wide so a full run
// builds each index once, as the paper's scripts do.
package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

// Config scales the harness.
type Config struct {
	// Queries per measurement cell (default 100).
	Queries int
	// Seed for workload generation (default 42).
	Seed int64
	// Scale shrinks the harness networks (grid rows/cols multiplied by
	// sqrt(Scale)); 1.0 is the standard harness, tests use ~0.05.
	Scale float64
	// MaxDisBrwVertices caps the networks on which the SILC index is built
	// (default 25000), mirroring the paper's "first 5 datasets" limit.
	MaxDisBrwVertices int
}

func (c Config) withDefaults() Config {
	if c.Queries <= 0 {
		c.Queries = 100
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.MaxDisBrwVertices <= 0 {
		c.MaxDisBrwVertices = 25_000
	}
	return c
}

// Table is one experiment output: a titled grid whose first column labels
// the series (usually a method) and whose remaining columns are the
// parameter sweep.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// experiment is a registered experiment function.
type experiment struct {
	id    string
	title string
	run   func(h *Harness) []*Table
}

var registry []experiment

func register(id, title string, run func(h *Harness) []*Table) {
	registry = append(registry, experiment{id, title, run})
}

// IDs lists the registered experiment ids in registration order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Titles maps experiment ids to their titles.
func Titles() map[string]string {
	out := make(map[string]string, len(registry))
	for _, e := range registry {
		out[e.id] = e.title
	}
	return out
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) ([]*Table, error) {
	for _, e := range registry {
		if e.id == id {
			return e.run(NewHarness(cfg)), nil
		}
	}
	return nil, fmt.Errorf("exp: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
}

// Harness carries the configuration plus process-wide caches of generated
// networks and built engines.
type Harness struct {
	cfg Config
}

// NewHarness returns a harness for cfg.
func NewHarness(cfg Config) *Harness { return &Harness{cfg: cfg.withDefaults()} }

// Cfg returns the harness configuration.
func (h *Harness) Cfg() Config { return h.cfg }

var (
	cacheMu sync.Mutex
	netsC   = map[string]*graph.Graph{}
	engC    = map[string]*core.Engine{}
)

// ResetCaches drops all cached networks and engines (tests).
func ResetCaches() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	netsC = map[string]*graph.Graph{}
	engC = map[string]*core.Engine{}
}

// Network returns the harness network with the given ladder name, scaled by
// the configuration.
func (h *Harness) Network(name string) *graph.Graph {
	spec, ok := gen.LadderSpec(name)
	if !ok {
		panic("exp: unknown network " + name)
	}
	return h.network(spec)
}

// HighwayNetwork returns the ~95% degree-2 network of Figure 20.
func (h *Harness) HighwayNetwork() *graph.Graph {
	key := fmt.Sprintf("HWY/%v", h.cfg.Scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := netsC[key]; ok {
		return g
	}
	rows, cols := h.scaled(7), h.scaled(7)
	g := gen.HighwayNetwork("HWY", rows, cols, 99)
	netsC[key] = g
	return g
}

func (h *Harness) scaled(dim int) int {
	out := int(float64(dim) * math.Sqrt(h.cfg.Scale))
	if out < 5 {
		out = 5
	}
	return out
}

func (h *Harness) network(spec gen.NetworkSpec) *graph.Graph {
	key := fmt.Sprintf("%s/%v", spec.Name, h.cfg.Scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := netsC[key]; ok {
		return g
	}
	spec.Rows = h.scaled(spec.Rows)
	spec.Cols = h.scaled(spec.Cols)
	g := gen.Network(spec)
	netsC[key] = g
	return g
}

// Engine returns the cached engine for the named network under the given
// weight kind.
func (h *Harness) Engine(name string, kind graph.WeightKind) *core.Engine {
	g := h.Network(name).View(kind)
	key := fmt.Sprintf("%s/%v/%v", name, kind, h.cfg.Scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if e, ok := engC[key]; ok {
		return e
	}
	e := core.New(g)
	engC[key] = e
	return e
}

// EngineFor returns an engine for an arbitrary (non-ladder) graph, cached
// by the graph's name.
func (h *Harness) EngineFor(g *graph.Graph) *core.Engine {
	key := fmt.Sprintf("custom/%s/%v/%v", g.Name, g.Kind, h.cfg.Scale)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if e, ok := engC[key]; ok {
		return e
	}
	e := core.New(g)
	engC[key] = e
	return e
}

// Medium and Large are the default networks (the paper's NW and US roles);
// SILCNet is the largest network the harness builds SILC on.
const (
	Medium = "NW"
	Large  = "E"
)

// DisBrwAllowed reports whether the harness builds SILC for the network.
func (h *Harness) DisBrwAllowed(name string) bool {
	return h.Network(name).NumVertices() <= h.cfg.MaxDisBrwVertices
}

// Queries returns the query workload for a network.
func (h *Harness) Queries(name string) []int32 {
	return gen.QueryVertices(h.Network(name), h.cfg.Queries, h.cfg.Seed+1000)
}

// UniformObjects returns a cached-free uniform object set of the given
// density on the named network.
func (h *Harness) UniformObjects(name string, density float64) *knn.ObjectSet {
	g := h.Network(name)
	return knn.NewObjectSet(g, gen.Uniform(g, density, h.cfg.Seed+int64(density*1e7)))
}

// Measure runs the workload and returns mean microseconds per query.
func Measure(m knn.Method, queries []int32, k int) float64 {
	// Warm up caches and lazily allocated state.
	for i := 0; i < 2 && i < len(queries); i++ {
		m.KNN(queries[i], k)
	}
	start := time.Now()
	for _, q := range queries {
		m.KNN(q, k)
	}
	return float64(time.Since(start).Microseconds()) / float64(len(queries))
}

// DefaultK and DefaultDensity are the paper's defaults (Table 4).
const (
	DefaultK       = 10
	DefaultDensity = 0.001
)

// Ks and Densities are the paper's sweep values (Table 4).
var (
	Ks        = []int{1, 5, 10, 25, 50}
	Densities = []float64{0.0001, 0.001, 0.01, 0.1, 1}
)

// DistMethods returns the method kinds compared on travel-distance networks
// (DisBrw included only where SILC is built, as in the paper).
func (h *Harness) DistMethods(name string) []core.MethodKind {
	kinds := []core.MethodKind{core.INE, core.ROAD, core.Gtree, core.IERGt, core.IERPHL}
	if h.DisBrwAllowed(name) {
		kinds = append(kinds, core.DisBrw)
	}
	return kinds
}

// TimeMethods returns the method kinds compared on travel-time networks
// (no DisBrw, Section B).
func (h *Harness) TimeMethods() []core.MethodKind {
	return []core.MethodKind{core.INE, core.ROAD, core.Gtree, core.IERGt, core.IERPHL}
}

// fmtUS formats a microsecond measurement.
func fmtUS(us float64) string {
	switch {
	case us >= 1000:
		return fmt.Sprintf("%.0f", us)
	case us >= 10:
		return fmt.Sprintf("%.1f", us)
	default:
		return fmt.Sprintf("%.2f", us)
	}
}

// fmtBytes formats a size in a human unit.
func fmtBytes(b int) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// rankRow converts measurements to dense ranks (1 = fastest), used by the
// Table 5 reproduction.
func rankRow(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	ranks := make([]int, len(vals))
	rank := 0
	var prev float64
	for pos, i := range idx {
		if pos == 0 || vals[i] > prev*1.10 { // within 10% of the previous
			rank = pos + 1 // value counts as a tie
		}
		ranks[i] = rank
		prev = vals[i]
	}
	return ranks
}
