package exp

import (
	"fmt"
	"time"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/geo"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/rtree"
)

// buildAll forces construction of every index the comparison uses on the
// network (respecting the SILC cap) and returns the engine.
func (h *Harness) buildAll(net string, wk graph.WeightKind, withSILC bool) *core.Engine {
	e := h.Engine(net, wk)
	e.GtreeIndex()
	e.ROADIndex()
	e.CHIndex()
	e.PHLIndex()
	e.TNRIndex()
	if withSILC && h.DisBrwAllowed(net) {
		e.SILCIndex()
	}
	return e
}

func init() {
	register("table1", "road network datasets (Table 1 analogue)", func(h *Harness) []*Table {
		t := &Table{ID: "table1", Title: "synthetic dataset ladder",
			Header: []string{"name", "|V|", "|E|", "deg<=2 frac", "connected"}}
		for _, spec := range gen.Ladder() {
			g := h.network(spec)
			t.Rows = append(t.Rows, []string{
				spec.Name,
				fmt.Sprint(g.NumVertices()),
				fmt.Sprint(g.NumEdges() / 2),
				fmt.Sprintf("%.2f", g.ChainFraction()),
				fmt.Sprint(g.Connected()),
			})
		}
		return []*Table{t}
	})

	register("table2", "real-world object sets (Table 2 analogue)", func(h *Harness) []*Table {
		var out []*Table
		for _, net := range []string{Medium, Large} {
			g := h.Network(net)
			t := &Table{ID: "table2-" + net, Title: "POI categories on " + net,
				Header: []string{"category", "size", "density", "clustered"}}
			for _, c := range gen.POICategories(g, h.cfg.Seed+5) {
				t.Rows = append(t.Rows, []string{
					c.Name,
					fmt.Sprint(len(c.Vertices)),
					fmt.Sprintf("%.5f", float64(len(c.Vertices))/float64(g.NumVertices())),
					fmt.Sprint(c.Clustered),
				})
			}
			out = append(out, t)
		}
		return out
	})

	register("fig8", "road network index size and construction time vs |V| (distance weights)", func(h *Harness) []*Table {
		return h.buildTables("fig8", graph.TravelDistance, true)
	})

	register("fig26", "road network index size and construction time vs |V| (travel time)", func(h *Harness) []*Table {
		return h.buildTables("fig26", graph.TravelTime, false)
	})

	register("fig18", "object index size and build time vs density ("+Large+")", func(h *Harness) []*Table {
		net := Large
		g := h.Network(net)
		e := h.Engine(net, graph.TravelDistance)
		gt := e.GtreeIndex()
		rd := e.ROADIndex()

		ts := &Table{ID: "fig18a", Title: "object index size vs density", Header: []string{"index"}}
		tt := &Table{ID: "fig18b", Title: "object index build time vs density", Header: []string{"index"}}
		for _, d := range Densities {
			ts.Header = append(ts.Header, fmt.Sprintf("d=%g", d))
			tt.Header = append(tt.Header, fmt.Sprintf("d=%g", d))
		}
		sizeRows := [][]string{{"INE (object set)"}, {"G-tree occ. list"}, {"ROAD assoc. dir"}, {"IER/DB R-tree"}}
		timeRows := [][]string{{"G-tree occ. list"}, {"ROAD assoc. dir"}, {"IER/DB R-tree"}}
		for _, d := range Densities {
			verts := gen.Uniform(g, d, h.cfg.Seed+int64(d*1e7))
			objs := knn.NewObjectSet(g, verts)
			sizeRows[0] = append(sizeRows[0], fmtBytes(objs.SizeBytes()))

			start := time.Now()
			ol := gt.NewOccurrenceList(objs)
			timeRows[0] = append(timeRows[0], fmtDur(time.Since(start)))
			sizeRows[1] = append(sizeRows[1], fmtBytes(ol.SizeBytes()))

			start = time.Now()
			ad := rd.NewAssociationDirectory(objs)
			timeRows[1] = append(timeRows[1], fmtDur(time.Since(start)))
			sizeRows[2] = append(sizeRows[2], fmtBytes(ad.SizeBytes()))

			start = time.Now()
			pts := make([]geo.Point, len(verts))
			for i, v := range verts {
				pts[i] = geo.Point{X: g.X[v], Y: g.Y[v]}
			}
			rt := rtree.New(verts, pts, 0)
			timeRows[2] = append(timeRows[2], fmtDur(time.Since(start)))
			sizeRows[3] = append(sizeRows[3], fmtBytes(rt.SizeBytes()))
		}
		ts.Rows = sizeRows
		tt.Rows = timeRows
		return []*Table{ts, tt}
	})
}

// buildTables produces the Figure 8 / Figure 26 pair: index sizes and
// construction times over the ladder.
func (h *Harness) buildTables(id string, wk graph.WeightKind, withSILC bool) []*Table {
	nets := h.ladder()
	names := []string{"Graph(INE)", "Gtree", "ROAD", "CH", "PHL", "TNR"}
	if withSILC {
		names = append(names, "DisBrw(SILC)")
	}
	ts := &Table{ID: id + "-size", Title: "index size (" + wk.String() + " weights)", Header: []string{"index"}}
	tt := &Table{ID: id + "-time", Title: "construction time (" + wk.String() + " weights)", Header: []string{"index"}}
	for _, net := range nets {
		label := fmt.Sprintf("%s(%d)", net, h.Network(net).NumVertices())
		ts.Header = append(ts.Header, label)
		tt.Header = append(tt.Header, label)
	}
	sizes := map[string][]string{}
	times := map[string][]string{}
	for _, n := range names {
		sizes[n] = []string{n}
		times[n] = []string{n}
	}
	for _, net := range nets {
		e := h.buildAll(net, wk, withSILC)
		cell := func(name string, kind core.MethodKind, buildName string) {
			sizes[name] = append(sizes[name], fmtBytes(e.IndexSize(kind)))
			if buildName == "" {
				times[name] = append(times[name], "-")
				return
			}
			times[name] = append(times[name], fmtDur(e.BuildTimes[buildName]))
		}
		cell("Graph(INE)", core.INE, "")
		cell("Gtree", core.Gtree, "Gtree")
		cell("ROAD", core.ROAD, "ROAD")
		cell("CH", core.IERCH, "CH")
		cell("PHL", core.IERPHL, "PHL")
		cell("TNR", core.IERTNR, "TNR")
		if withSILC {
			if h.DisBrwAllowed(net) {
				cell("DisBrw(SILC)", core.DisBrw, "SILC")
			} else {
				sizes["DisBrw(SILC)"] = append(sizes["DisBrw(SILC)"], "-")
				times["DisBrw(SILC)"] = append(times["DisBrw(SILC)"], "-")
			}
		}
	}
	for _, n := range names {
		ts.Rows = append(ts.Rows, sizes[n])
		tt.Rows = append(tt.Rows, times[n])
	}
	return []*Table{ts, tt}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dus", d.Microseconds())
	}
}
