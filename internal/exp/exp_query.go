package exp

import (
	"fmt"
	"runtime"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/gtree"
	"rnknn/internal/ier"
	"rnknn/internal/ine"
	"rnknn/internal/knn"
	"rnknn/internal/road"
	"rnknn/internal/silc"
)

func (h *Harness) mustMethod(e *core.Engine, kind core.MethodKind, objs *knn.ObjectSet) knn.Method {
	m, err := e.NewMethod(kind, objs)
	if err != nil {
		panic(err)
	}
	return m
}

// kSweep measures each method kind across k values at fixed density.
func (h *Harness) kSweep(id, title, net string, wk graph.WeightKind, kinds []core.MethodKind, density float64, ks []int) *Table {
	e := h.Engine(net, wk)
	objs := h.UniformObjects(net, density)
	queries := h.Queries(net)
	t := &Table{ID: id, Title: title, Header: []string{"method"}}
	for _, k := range ks {
		t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
	}
	for _, kind := range kinds {
		row := []string{kind.String()}
		m := h.mustMethod(e, kind, objs)
		for _, k := range ks {
			row = append(row, fmtUS(Measure(m, queries, k)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// densitySweep measures each method kind across densities at fixed k.
func (h *Harness) densitySweep(id, title, net string, wk graph.WeightKind, kinds []core.MethodKind, k int, densities []float64) *Table {
	e := h.Engine(net, wk)
	queries := h.Queries(net)
	t := &Table{ID: id, Title: title, Header: []string{"method"}}
	for _, d := range densities {
		t.Header = append(t.Header, fmt.Sprintf("d=%g", d))
	}
	rows := make(map[core.MethodKind][]string)
	for _, kind := range kinds {
		rows[kind] = []string{kind.String()}
	}
	for _, d := range densities {
		objs := h.UniformObjects(net, d)
		for _, kind := range kinds {
			m := h.mustMethod(e, kind, objs)
			rows[kind] = append(rows[kind], fmtUS(Measure(m, queries, k)))
		}
	}
	for _, kind := range kinds {
		t.Rows = append(t.Rows, rows[kind])
	}
	return t
}

// sizeSweep measures each method kind across the ladder at the defaults.
func (h *Harness) sizeSweep(id, title string, wk graph.WeightKind, nets []string, kinds func(net string) []core.MethodKind) *Table {
	t := &Table{ID: id, Title: title, Header: []string{"method"}}
	for _, net := range nets {
		t.Header = append(t.Header, fmt.Sprintf("%s(%d)", net, h.Network(net).NumVertices()))
	}
	rows := map[string][]string{}
	var order []string
	for ni, net := range nets {
		e := h.Engine(net, wk)
		objs := h.UniformObjects(net, DefaultDensity)
		queries := h.Queries(net)
		for _, kind := range kinds(net) {
			name := kind.String()
			if _, ok := rows[name]; !ok {
				rows[name] = []string{name}
				order = append(order, name)
			}
			for len(rows[name]) < 1+ni {
				rows[name] = append(rows[name], "-")
			}
			m := h.mustMethod(e, kind, objs)
			rows[name] = append(rows[name], fmtUS(Measure(m, queries, DefaultK)))
		}
	}
	for _, name := range order {
		r := rows[name]
		for len(r) < len(t.Header) {
			r = append(r, "-")
		}
		t.Rows = append(t.Rows, r)
	}
	return t
}

// ladder returns the harness ladder for build/size/scalability experiments.
func (h *Harness) ladder() []string { return []string{"DE", "VT", "ME", "CO", "NW", "CA"} }

func init() {
	register("fig4", "IER oracle variants (distance weights, "+Medium+", uniform objects)", func(h *Harness) []*Table {
		kinds := []core.MethodKind{core.IERDijk, core.IERGt, core.IERPHL, core.IERTNR, core.IERCH}
		return []*Table{
			h.kSweep("fig4a", "IER variants: varying k (d=0.001)", Medium, graph.TravelDistance, kinds, DefaultDensity, Ks),
			h.densitySweep("fig4b", "IER variants: varying density (k=10)", Medium, graph.TravelDistance, kinds, DefaultK, Densities),
		}
	})

	register("fig6", "G-tree distance-matrix layout ablation + Table 3 substitute ("+Medium+")", func(h *Harness) []*Table {
		e := h.Engine(Medium, graph.TravelDistance)
		idx := e.GtreeIndex()
		defer idx.SetMatrixLayout(gtree.ArrayLayout)
		queries := h.Queries(Medium)
		layouts := []gtree.MatrixLayout{gtree.BuiltinMapLayout, gtree.OpenAddrLayout, gtree.ArrayLayout}

		ta := &Table{ID: "fig6a", Title: "matrix layouts: varying k (d=0.001)", Header: []string{"layout"}}
		for _, k := range Ks {
			ta.Header = append(ta.Header, fmt.Sprintf("k=%d", k))
		}
		objs := h.UniformObjects(Medium, DefaultDensity)
		ol := idx.NewOccurrenceList(objs)
		for _, l := range layouts {
			idx.SetMatrixLayout(l)
			m := gtree.NewKNN(idx, ol)
			row := []string{l.String()}
			for _, k := range Ks {
				row = append(row, fmtUS(Measure(m, queries, k)))
			}
			ta.Rows = append(ta.Rows, row)
		}

		tb := &Table{ID: "fig6b", Title: "matrix layouts: varying density (k=10)", Header: []string{"layout"}}
		for _, d := range Densities {
			tb.Header = append(tb.Header, fmt.Sprintf("d=%g", d))
		}
		for _, l := range layouts {
			idx.SetMatrixLayout(l)
			row := []string{l.String()}
			for _, d := range Densities {
				m := gtree.NewKNN(idx, idx.NewOccurrenceList(h.UniformObjects(Medium, d)))
				row = append(row, fmtUS(Measure(m, queries, DefaultK)))
			}
			tb.Rows = append(tb.Rows, row)
		}

		// Table 3 substitute: Go cannot read CPU cache counters in-process;
		// report time and allocation counters for the same workload.
		tc := &Table{ID: "table3", Title: "layout profile substitute (time and allocs; see DESIGN.md)",
			Header: []string{"layout", "us/query", "allocs/query", "alloc B/query"}}
		for _, l := range layouts {
			idx.SetMatrixLayout(l)
			m := gtree.NewKNN(idx, ol)
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			us := Measure(m, queries, DefaultK)
			runtime.ReadMemStats(&after)
			n := float64(len(queries) + 2)
			tc.Rows = append(tc.Rows, []string{
				l.String(), fmtUS(us),
				fmt.Sprintf("%.0f", float64(after.Mallocs-before.Mallocs)/n),
				fmt.Sprintf("%.0f", float64(after.TotalAlloc-before.TotalAlloc)/n),
			})
		}
		return []*Table{ta, tb, tc}
	})

	register("fig7", "INE implementation ladder ("+Medium+")", func(h *Harness) []*Table {
		g := h.Network(Medium)
		queries := h.Queries(Medium)
		variants := []ine.Variant{ine.FirstCut, ine.PQueue, ine.Settled, ine.CSRGraph}

		ta := &Table{ID: "fig7a", Title: "INE ladder: varying k (d=0.001)", Header: []string{"variant"}}
		for _, k := range Ks {
			ta.Header = append(ta.Header, fmt.Sprintf("k=%d", k))
		}
		objs := h.UniformObjects(Medium, DefaultDensity)
		for _, v := range variants {
			m := ine.NewAblation(g, objs, v)
			row := []string{v.String()}
			for _, k := range Ks {
				row = append(row, fmtUS(Measure(m, queries, k)))
			}
			ta.Rows = append(ta.Rows, row)
		}

		tb := &Table{ID: "fig7b", Title: "INE ladder: varying density (k=10)", Header: []string{"variant"}}
		for _, d := range Densities {
			tb.Header = append(tb.Header, fmt.Sprintf("d=%g", d))
		}
		for _, v := range variants {
			row := []string{v.String()}
			for _, d := range Densities {
				m := ine.NewAblation(g, h.UniformObjects(Medium, d), v)
				row = append(row, fmtUS(Measure(m, queries, DefaultK)))
			}
			tb.Rows = append(tb.Rows, row)
		}
		return []*Table{ta, tb}
	})

	register("fig9", "query time and method statistics vs network size (d=0.001, k=10)", func(h *Harness) []*Table {
		ta := h.sizeSweep("fig9a", "query time vs |V| (distance weights)", graph.TravelDistance, h.ladder(), h.DistMethods)

		tb := &Table{ID: "fig9b", Title: "G-tree path cost, IER-Gt path cost, ROAD vertices bypassed",
			Header: []string{"network", "|V|", "Gtree path cost", "IER-Gt path cost", "ROAD bypassed"}}
		for _, net := range h.ladder() {
			e := h.Engine(net, graph.TravelDistance)
			objs := h.UniformObjects(net, DefaultDensity)
			queries := h.Queries(net)

			gm := h.mustMethod(e, core.Gtree, objs).(*gtree.KNN)
			gtCost := 0
			for _, q := range queries {
				gm.KNN(q, DefaultK)
				gtCost += gm.PathCost
			}

			ig := gtree.NewCountingFactory(e.GtreeIndex())
			ierM := ier.New("IER-Gt", e.G, objs, ig)
			for _, q := range queries {
				ierM.KNN(q, DefaultK)
			}

			rm := h.mustMethod(e, core.ROAD, objs).(*road.KNN)
			byp := 0
			for _, q := range queries {
				rm.KNN(q, DefaultK)
				byp += rm.VerticesBypassed
			}

			n := len(queries)
			tb.Rows = append(tb.Rows, []string{
				net, fmt.Sprint(e.G.NumVertices()),
				fmt.Sprint(gtCost / n), fmt.Sprint(int(ig.TotalPathCost()) / n), fmt.Sprint(byp / n),
			})
		}
		return []*Table{ta, tb}
	})

	register("fig10", "varying k (d=0.001, uniform objects)", func(h *Harness) []*Table {
		return []*Table{
			h.kSweep("fig10a", "varying k on "+Medium, Medium, graph.TravelDistance, h.DistMethods(Medium), DefaultDensity, Ks),
			h.kSweep("fig10b", "varying k on "+Large, Large, graph.TravelDistance, h.DistMethods(Large), DefaultDensity, Ks),
		}
	})

	register("fig11", "varying density (k=10, uniform objects)", func(h *Harness) []*Table {
		return []*Table{
			h.densitySweep("fig11a", "varying density on "+Medium, Medium, graph.TravelDistance, h.DistMethods(Medium), DefaultK, Densities),
			h.densitySweep("fig11b", "varying density on "+Large, Large, graph.TravelDistance, h.DistMethods(Large), DefaultK, Densities),
		}
	})

	register("fig12", "clustered objects ("+Medium+")", func(h *Harness) []*Table {
		g := h.Network(Medium)
		e := h.Engine(Medium, graph.TravelDistance)
		queries := h.Queries(Medium)
		kinds := h.DistMethods(Medium)

		counts := []int{1, 10, 100, 1000}
		ta := &Table{ID: "fig12a", Title: "varying number of clusters (cluster size <= 5, k=10)", Header: []string{"method"}}
		for _, c := range counts {
			ta.Header = append(ta.Header, fmt.Sprintf("|C|=%d", c))
		}
		rows := map[core.MethodKind][]string{}
		for _, kind := range kinds {
			rows[kind] = []string{kind.String()}
		}
		for _, c := range counts {
			objs := knn.NewObjectSet(g, gen.Clustered(g, c, 5, h.cfg.Seed+int64(c)))
			for _, kind := range kinds {
				m := h.mustMethod(e, kind, objs)
				rows[kind] = append(rows[kind], fmtUS(Measure(m, queries, DefaultK)))
			}
		}
		for _, kind := range kinds {
			ta.Rows = append(ta.Rows, rows[kind])
		}

		// Varying k at |C| = 0.001*|V| clusters.
		nc := g.NumVertices() / 1000
		if nc < 1 {
			nc = 1
		}
		objs := knn.NewObjectSet(g, gen.Clustered(g, nc, 5, h.cfg.Seed+7))
		tb := &Table{ID: "fig12b", Title: fmt.Sprintf("varying k (|C|=%d clusters)", nc), Header: []string{"method"}}
		for _, k := range Ks {
			tb.Header = append(tb.Header, fmt.Sprintf("k=%d", k))
		}
		for _, kind := range kinds {
			m := h.mustMethod(e, kind, objs)
			row := []string{kind.String()}
			for _, k := range Ks {
				row = append(row, fmtUS(Measure(m, queries, k)))
			}
			tb.Rows = append(tb.Rows, row)
		}
		return []*Table{ta, tb}
	})

	register("fig13", "real-world POI categories (k=10)", func(h *Harness) []*Table {
		return []*Table{
			h.poiTable("fig13a", Medium, graph.TravelDistance, h.DistMethods(Medium)),
			h.poiTable("fig13b", Large, graph.TravelDistance, h.DistMethods(Large)),
		}
	})

	register("fig14", "minimum object distance sets (d=0.001, k=10, distance weights)", func(h *Harness) []*Table {
		return []*Table{
			h.minDistTable("fig14a", Medium, graph.TravelDistance, h.DistMethods(Medium), 6),
			h.minDistTable("fig14b", Large, graph.TravelDistance, h.DistMethods(Large), 8),
		}
	})

	register("fig15", "varying k for real POIs ("+Medium+", distance weights)", func(h *Harness) []*Table {
		return []*Table{
			h.poiKTable("fig15a", Medium, graph.TravelDistance, "Hospital"),
			h.poiKTable("fig15b", Medium, graph.TravelDistance, "FastFood"),
		}
	})

	register("fig16", "original settings d=0.01 (CO-scale network)", func(h *Harness) []*Table {
		return []*Table{
			h.kSweep("fig16a", "varying k on CO (d=0.01)", "CO", graph.TravelDistance, h.DistMethods("CO"), 0.01, Ks),
			h.sizeSweepAtDensity("fig16b", "varying |V| (d=0.01, k=10)", graph.TravelDistance, 0.01),
		}
	})

	register("fig19", "DisBrw Object Hierarchy vs DB-ENN (ME-scale network)", func(h *Harness) []*Table {
		net := "ME"
		e := h.Engine(net, graph.TravelDistance)
		queries := h.Queries(net)
		build := func(objs *knn.ObjectSet) []knn.Method {
			return []knn.Method{
				h.mustMethod(e, core.DisBrwOH, objs),
				h.mustMethod(e, core.DisBrw, objs),
			}
		}
		ta := &Table{ID: "fig19a", Title: "varying k (d=0.001)", Header: []string{"variant"}}
		for _, k := range Ks {
			ta.Header = append(ta.Header, fmt.Sprintf("k=%d", k))
		}
		for _, m := range build(h.UniformObjects(net, DefaultDensity)) {
			row := []string{m.Name()}
			for _, k := range Ks {
				row = append(row, fmtUS(Measure(m, queries, k)))
			}
			ta.Rows = append(ta.Rows, row)
		}
		tb := &Table{ID: "fig19b", Title: "varying density (k=10)", Header: []string{"variant"}}
		for _, d := range Densities {
			tb.Header = append(tb.Header, fmt.Sprintf("d=%g", d))
		}
		rows := [][]string{{"DisBrw-OH"}, {"DisBrw"}}
		for _, d := range Densities {
			for i, m := range build(h.UniformObjects(net, d)) {
				rows[i] = append(rows[i], fmtUS(Measure(m, queries, DefaultK)))
			}
		}
		tb.Rows = rows
		return []*Table{ta, tb}
	})

	register("fig20", "degree-2 chain optimisation (DB-ENN on HWY and ME networks)", func(h *Harness) []*Table {
		var out []*Table
		for _, tc := range []struct {
			id string
			g  *graph.Graph
		}{
			{"fig20", h.HighwayNetwork()},
			{"fig21", h.Network("ME")},
		} {
			e := h.EngineFor(tc.g)
			idx := e.SILCIndex()
			objs := knn.NewObjectSet(tc.g, gen.Uniform(tc.g, DefaultDensity, h.cfg.Seed))
			queries := gen.QueryVertices(tc.g, h.cfg.Queries, h.cfg.Seed+3)
			m := silc.NewDBENN(idx, objs)
			t := &Table{
				ID: tc.id,
				Title: fmt.Sprintf("chain optimisation on %s (%.0f%% deg<=2): varying k",
					tc.g.Name, tc.g.ChainFraction()*100),
				Header: []string{"variant"},
			}
			for _, k := range Ks {
				t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
			}
			for _, on := range []bool{false, true} {
				idx.ChainOptimization = on
				name := "DisBrw"
				if on {
					name = "OptDisBrw"
				}
				row := []string{name}
				for _, k := range Ks {
					row = append(row, fmtUS(Measure(m, queries, k)))
				}
				t.Rows = append(t.Rows, row)
			}
			idx.ChainOptimization = true
			out = append(out, t)
		}
		return out
	})

	register("fig22", "improved G-tree leaf search (varying density, k=1 and k=10)", func(h *Harness) []*Table {
		var out []*Table
		for _, net := range []string{Medium, Large} {
			e := h.Engine(net, graph.TravelDistance)
			idx := e.GtreeIndex()
			queries := h.Queries(net)
			t := &Table{ID: "fig22-" + net, Title: "leaf search before/after on " + net, Header: []string{"variant"}}
			for _, d := range Densities {
				t.Header = append(t.Header, fmt.Sprintf("d=%g", d))
			}
			for _, k := range []int{1, 10} {
				for _, improved := range []bool{false, true} {
					label := fmt.Sprintf("k=%d ", k)
					if improved {
						label += "(Aft)"
					} else {
						label += "(Bef)"
					}
					row := []string{label}
					for _, d := range Densities {
						m := gtree.NewKNN(idx, idx.NewOccurrenceList(h.UniformObjects(net, d)))
						m.ImprovedLeaf = improved
						row = append(row, fmtUS(Measure(m, queries, k)))
					}
					t.Rows = append(t.Rows, row)
				}
			}
			out = append(out, t)
		}
		return out
	})

	register("table5", "ranking of algorithms under different criteria", func(h *Harness) []*Table {
		kinds := []core.MethodKind{core.INE, core.Gtree, core.ROAD, core.IERPHL, core.DisBrw}
		t := &Table{ID: "table5", Title: "dense ranks, 1 = best (DisBrw only where SILC fits)",
			Header: []string{"criteria"}}
		for _, k := range kinds {
			t.Header = append(t.Header, k.String())
		}
		criteria := []struct {
			name string
			net  string
			k    int
			d    float64
		}{
			{"Default", Medium, DefaultK, DefaultDensity},
			{"Small k", Medium, 1, DefaultDensity},
			{"Large k", Medium, 50, DefaultDensity},
			{"Low density", Medium, DefaultK, 0.0001},
			{"High density", Medium, DefaultK, 0.1},
			{"Small network", "ME", DefaultK, DefaultDensity},
			{"Large network", Large, DefaultK, DefaultDensity},
		}
		for _, c := range criteria {
			e := h.Engine(c.net, graph.TravelDistance)
			objs := h.UniformObjects(c.net, c.d)
			queries := h.Queries(c.net)
			var vals []float64
			var present []int
			for i, kind := range kinds {
				if kind == core.DisBrw && !h.DisBrwAllowed(c.net) {
					continue
				}
				m := h.mustMethod(e, kind, objs)
				vals = append(vals, Measure(m, queries, c.k))
				present = append(present, i)
			}
			ranks := rankRow(vals)
			row := make([]string, len(kinds)+1)
			row[0] = c.name
			for i := range row[1:] {
				row[i+1] = "N/A"
			}
			for j, i := range present {
				row[i+1] = fmt.Sprint(ranks[j])
			}
			t.Rows = append(t.Rows, row)
		}
		return []*Table{t}
	})
}

// poiTable measures every method over the eight POI categories.
func (h *Harness) poiTable(id, net string, wk graph.WeightKind, kinds []core.MethodKind) *Table {
	g := h.Network(net).View(wk)
	e := h.Engine(net, wk)
	queries := h.Queries(net)
	cats := gen.POICategories(g, h.cfg.Seed+5)
	t := &Table{ID: id, Title: "POI categories on " + net + " (" + wk.String() + ")", Header: []string{"method"}}
	for _, c := range cats {
		t.Header = append(t.Header, c.Name)
	}
	for _, kind := range kinds {
		row := []string{kind.String()}
		for _, c := range cats {
			objs := knn.NewObjectSet(g, c.Vertices)
			m := h.mustMethod(e, kind, objs)
			row = append(row, fmtUS(Measure(m, queries, DefaultK)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// poiKTable measures every method over k for one POI category.
func (h *Harness) poiKTable(id, net string, wk graph.WeightKind, category string) *Table {
	g := h.Network(net).View(wk)
	e := h.Engine(net, wk)
	queries := h.Queries(net)
	var objs *knn.ObjectSet
	for _, c := range gen.POICategories(g, h.cfg.Seed+5) {
		if c.Name == category {
			objs = knn.NewObjectSet(g, c.Vertices)
		}
	}
	kinds := h.DistMethods(net)
	if wk == graph.TravelTime {
		kinds = h.TimeMethods()
	}
	t := &Table{ID: id, Title: category + " on " + net + " (" + wk.String() + ")", Header: []string{"method"}}
	for _, k := range Ks {
		t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
	}
	for _, kind := range kinds {
		m := h.mustMethod(e, kind, objs)
		row := []string{kind.String()}
		for _, k := range Ks {
			row = append(row, fmtUS(Measure(m, queries, k)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// minDistTable measures every method over the R_i minimum-distance sets.
func (h *Harness) minDistTable(id, net string, wk graph.WeightKind, kinds []core.MethodKind, m int) *Table {
	g := h.Network(net).View(wk)
	e := h.Engine(net, wk)
	res := gen.MinObjDist(g, DefaultDensity, m, h.cfg.Queries, h.cfg.Seed+11)
	t := &Table{ID: id, Title: fmt.Sprintf("min object distance on %s (%s, m=%d)", net, wk, m), Header: []string{"method"}}
	for i := 1; i <= m; i++ {
		t.Header = append(t.Header, fmt.Sprintf("R%d", i))
	}
	for _, kind := range kinds {
		row := []string{kind.String()}
		for _, set := range res.Sets {
			objs := knn.NewObjectSet(g, set)
			meth := h.mustMethod(e, kind, objs)
			row = append(row, fmtUS(Measure(meth, res.Queries, DefaultK)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// sizeSweepAtDensity is sizeSweep at a non-default density (Figure 16b).
func (h *Harness) sizeSweepAtDensity(id, title string, wk graph.WeightKind, density float64) *Table {
	t := &Table{ID: id, Title: title, Header: []string{"method"}}
	nets := h.ladder()
	for _, net := range nets {
		t.Header = append(t.Header, fmt.Sprintf("%s(%d)", net, h.Network(net).NumVertices()))
	}
	kindSet := h.DistMethods(nets[0])
	for _, kind := range kindSet {
		row := []string{kind.String()}
		for _, net := range nets {
			if kind == core.DisBrw && !h.DisBrwAllowed(net) {
				row = append(row, "-")
				continue
			}
			e := h.Engine(net, wk)
			objs := h.UniformObjects(net, density)
			m := h.mustMethod(e, kind, objs)
			row = append(row, fmtUS(Measure(m, h.Queries(net), DefaultK)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
