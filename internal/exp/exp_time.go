package exp

import (
	"fmt"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

func init() {
	register("fig17", "travel-time query performance on "+Large+" (k, density, |V|, min obj dist)", func(h *Harness) []*Table {
		kinds := h.TimeMethods()
		out := []*Table{
			h.kSweep("fig17a", "travel time: varying k on "+Large, Large, graph.TravelTime, kinds, DefaultDensity, Ks),
			h.densitySweep("fig17b", "travel time: varying density on "+Large, Large, graph.TravelTime, kinds, DefaultK, Densities),
			h.sizeSweep("fig17c", "travel time: varying |V|", graph.TravelTime, h.ladder(),
				func(string) []core.MethodKind { return kinds }),
			h.minDistTable("fig17d", Large, graph.TravelTime, kinds, 8),
		}
		return out
	})

	register("fig23", "IER oracle variants on travel time ("+Medium+")", func(h *Harness) []*Table {
		kinds := []core.MethodKind{core.IERDijk, core.IERGt, core.IERPHL, core.IERTNR, core.IERCH}
		return []*Table{
			h.kSweep("fig23a", "travel time IER variants: varying k", Medium, graph.TravelTime, kinds, DefaultDensity, Ks),
			h.densitySweep("fig23b", "travel time IER variants: varying density", Medium, graph.TravelTime, kinds, DefaultK, Densities),
			h.sizeSweep("fig23c", "travel time IER variants: varying |V|", graph.TravelTime, h.ladder(),
				func(string) []core.MethodKind { return kinds }),
		}
	})

	register("fig24", "travel-time query performance on "+Medium+" (k, density, min dist, clusters)", func(h *Harness) []*Table {
		kinds := h.TimeMethods()
		g := h.Network(Medium).View(graph.TravelTime)
		e := h.Engine(Medium, graph.TravelTime)
		queries := h.Queries(Medium)

		counts := []int{1, 10, 100, 1000}
		tc := &Table{ID: "fig24d", Title: "travel time: varying number of clusters (k=10)", Header: []string{"method"}}
		for _, c := range counts {
			tc.Header = append(tc.Header, fmt.Sprintf("|C|=%d", c))
		}
		rows := map[core.MethodKind][]string{}
		for _, kind := range kinds {
			rows[kind] = []string{kind.String()}
		}
		for _, c := range counts {
			objs := knn.NewObjectSet(g, gen.Clustered(g, c, 5, h.cfg.Seed+int64(c)))
			for _, kind := range kinds {
				m := h.mustMethod(e, kind, objs)
				rows[kind] = append(rows[kind], fmtUS(Measure(m, queries, DefaultK)))
			}
		}
		for _, kind := range kinds {
			tc.Rows = append(tc.Rows, rows[kind])
		}

		return []*Table{
			h.kSweep("fig24a", "travel time: varying k on "+Medium, Medium, graph.TravelTime, kinds, DefaultDensity, Ks),
			h.densitySweep("fig24b", "travel time: varying density on "+Medium, Medium, graph.TravelTime, kinds, DefaultK, Densities),
			h.minDistTable("fig24c", Medium, graph.TravelTime, kinds, 6),
			tc,
		}
	})

	register("fig25", "travel-time real-world POIs (sets; varying k)", func(h *Harness) []*Table {
		return []*Table{
			h.poiTable("fig25a", Medium, graph.TravelTime, h.TimeMethods()),
			h.poiTable("fig25b", Large, graph.TravelTime, h.TimeMethods()),
			h.poiKTable("fig27a", Medium, graph.TravelTime, "Hospital"),
			h.poiKTable("fig27b", Medium, graph.TravelTime, "FastFood"),
		}
	})
}
