// Package bitset provides the bit-array settled-vertex container recommended
// by the paper for expansion-based searches (Section 6.2, choice 2): one bit
// per road-network vertex, allocated per query, occupying 32x less space
// than an int array and far less than a hash set.
package bitset

// Set is a fixed-capacity bit set over [0, n).
type Set struct {
	words []uint64
}

// New returns a Set able to hold n bits, all clear.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64)}
}

// Set marks bit i.
func (s *Set) Set(i int32) {
	s.words[uint32(i)>>6] |= 1 << (uint32(i) & 63)
}

// Get reports whether bit i is marked.
func (s *Set) Get(i int32) bool {
	return s.words[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0
}

// Clear unmarks bit i.
func (s *Set) Clear(i int32) {
	s.words[uint32(i)>>6] &^= 1 << (uint32(i) & 63)
}

// Clone returns an independent copy of the set. The copy is one memcpy of
// the word array, which is what makes copy-on-write epoch derivation cheap
// for the object-membership and Rnet-occupancy bitsets: mutating the clone
// never touches memory a reader of the original can observe.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...)}
}

// Reset clears all bits, retaining capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += popcount(w)
	}
	return c
}

// Capacity returns the number of bits the set can hold.
func (s *Set) Capacity() int { return len(s.words) * 64 }

func popcount(x uint64) int {
	// Hacker's Delight bit-twiddling population count; avoids math/bits only
	// for no reason, so use the simple loop-free version.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}
