package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	s := New(130)
	for _, i := range []int32{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 7 {
		t.Fatalf("Clear failed: get=%v count=%d", s.Get(64), s.Count())
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestCapacityRounding(t *testing.T) {
	if c := New(1).Capacity(); c != 64 {
		t.Fatalf("Capacity(1) = %d", c)
	}
	if c := New(64).Capacity(); c != 64 {
		t.Fatalf("Capacity(64) = %d", c)
	}
	if c := New(65).Capacity(); c != 128 {
		t.Fatalf("Capacity(65) = %d", c)
	}
}

func TestCountMatchesModelProperty(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		model := map[uint16]bool{}
		for _, i := range idx {
			s.Set(int32(i))
			model[i] = true
		}
		if s.Count() != len(model) {
			return false
		}
		for i := range model {
			if !s.Get(int32(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	s := New(200)
	s.Set(3)
	s.Set(180)
	c := s.Clone()
	c.Clear(3)
	c.Set(99)
	if !s.Get(3) || s.Get(99) {
		t.Fatal("mutating the clone changed the original")
	}
	if c.Get(3) || !c.Get(99) || !c.Get(180) {
		t.Fatal("clone lost or gained the wrong bits")
	}
	if s.Count() != 2 || c.Count() != 2 {
		t.Fatalf("counts: original %d clone %d", s.Count(), c.Count())
	}
}
