// Package snapio provides the little-endian binary primitives shared by the
// index snapshot codecs (internal/snapshot and the per-index WriteTo/Read
// pairs): an error-sticky Writer that counts bytes, and a Reader that bounds
// every slice allocation by the bytes actually remaining in its source, so a
// corrupt length prefix fails cleanly instead of attempting a huge
// allocation.
//
// All multi-byte values are little endian. Slices are encoded as a uint32
// element count followed by the raw elements; strings as a uint32 byte count
// followed by the bytes; bools as one byte (0 or 1).
package snapio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether the running machine stores multi-byte
// integers little endian — the precondition for writing raw array bytes
// verbatim and for aliasing mapped snapshot bytes as typed slices.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// HostLittleEndian reports whether the running machine is little endian.
// Codecs with array-of-struct payloads use it to pick between writing the
// struct bytes verbatim and a field-wise little-endian fallback.
func HostLittleEndian() bool { return hostLittleEndian }

// ErrCorrupt reports a structurally invalid or truncated byte stream. Codec
// decode errors wrap it (and internal/snapshot folds it into ErrBadSnapshot).
var ErrCorrupt = errors.New("snapio: corrupt data")

// Writer serializes primitives to an io.Writer. The first write error
// sticks; check Result once at the end.
type Writer struct {
	w   io.Writer
	buf []byte
	n   int64
	err error
}

const writerChunk = 1 << 16

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, writerChunk)}
}

func (w *Writer) flushIfFull() {
	if len(w.buf) >= writerChunk {
		w.Flush()
	}
}

// Flush writes any buffered bytes through to the underlying writer.
func (w *Writer) Flush() {
	if w.err != nil || len(w.buf) == 0 {
		w.buf = w.buf[:0]
		return
	}
	_, err := w.w.Write(w.buf)
	if err != nil {
		w.err = err
	}
	w.n += int64(len(w.buf))
	w.buf = w.buf[:0]
}

// Result flushes and returns the total byte count and the first error.
func (w *Writer) Result() (int64, error) {
	w.Flush()
	return w.n, w.err
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf = append(w.buf, v)
	w.flushIfFull()
}

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	b := uint8(0)
	if v {
		b = 1
	}
	w.U8(b)
}

// U16 writes a uint16.
func (w *Writer) U16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
	w.flushIfFull()
}

// U32 writes a uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
	w.flushIfFull()
}

// U64 writes a uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	w.flushIfFull()
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
	w.flushIfFull()
}

// I32s writes a length-prefixed []int32.
func (w *Writer) I32s(vs []int32) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(v))
		w.flushIfFull()
	}
}

// I64s writes a length-prefixed []int64.
func (w *Writer) I64s(vs []int64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v))
		w.flushIfFull()
	}
}

// F32s writes a length-prefixed []float32 (IEEE-754 bits).
func (w *Writer) F32s(vs []float32) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, math.Float32bits(v))
		w.flushIfFull()
	}
}

// Offset returns the number of bytes written so far, including buffered
// bytes not yet flushed. Codecs use it to compute alignment padding
// relative to the start of their payload.
func (w *Writer) Offset() int64 { return w.n + int64(len(w.buf)) }

// Align64 pads with zero bytes to the next 64-byte boundary (relative to
// the start of the stream). Raw array writers call it so the element bytes
// land 64-byte-aligned when the payload itself starts on a 64-byte file
// offset — the contract the mmap loader's aliased reads depend on.
func (w *Writer) Align64() {
	pad := int((-w.Offset()) & 63)
	for i := 0; i < pad; i++ {
		w.buf = append(w.buf, 0)
	}
	w.flushIfFull()
}

// RawBytes writes b verbatim. Large slices bypass the chunk buffer.
func (w *Writer) RawBytes(b []byte) {
	if w.err != nil {
		return
	}
	if len(b) < writerChunk {
		w.buf = append(w.buf, b...)
		w.flushIfFull()
		return
	}
	w.Flush()
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = err
		return
	}
	w.n += int64(len(b))
}

// RawI32s writes a uint32 count, pads to a 64-byte boundary, then the raw
// little-endian element bytes — the layout Source.AlignedI32s maps without
// copying.
func (w *Writer) RawI32s(vs []int32) {
	w.U32(uint32(len(vs)))
	w.Align64()
	if hostLittleEndian && len(vs) > 0 {
		w.RawBytes(unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), len(vs)*4))
		return
	}
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(v))
		w.flushIfFull()
	}
}

// RawI64s writes a uint32 count, 64-byte padding, then raw little-endian
// int64 elements (see RawI32s).
func (w *Writer) RawI64s(vs []int64) {
	w.U32(uint32(len(vs)))
	w.Align64()
	if hostLittleEndian && len(vs) > 0 {
		w.RawBytes(unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), len(vs)*8))
		return
	}
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v))
		w.flushIfFull()
	}
}

// RawF32s writes a uint32 count, 64-byte padding, then raw little-endian
// float32 elements (see RawI32s).
func (w *Writer) RawF32s(vs []float32) {
	w.U32(uint32(len(vs)))
	w.Align64()
	if hostLittleEndian && len(vs) > 0 {
		w.RawBytes(unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), len(vs)*4))
		return
	}
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, math.Float32bits(v))
		w.flushIfFull()
	}
}

// RawF64s writes a uint32 count, 64-byte padding, then raw little-endian
// float64 elements (see RawI32s).
func (w *Writer) RawF64s(vs []float64) {
	w.U32(uint32(len(vs)))
	w.Align64()
	if hostLittleEndian && len(vs) > 0 {
		w.RawBytes(unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), len(vs)*8))
		return
	}
	for _, v := range vs {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
		w.flushIfFull()
	}
}

// lenReader is implemented by in-memory readers (bytes.Reader) that know how
// many bytes remain; Reader uses it to bound allocations.
type lenReader interface{ Len() int }

// Reader deserializes primitives written by Writer. The first error sticks
// and subsequent reads return zero values; check Err at the end.
type Reader struct {
	r   io.Reader
	lr  lenReader // nil when the source length is unknown
	err error
	scr []byte // scratch for multi-byte reads
}

// NewReader returns a Reader over r. When r knows its remaining length
// (bytes.Reader, strings.Reader), slice length prefixes are validated
// against it before allocating.
func NewReader(r io.Reader) *Reader {
	rd := &Reader{r: r, scr: make([]byte, 8)}
	if lr, ok := r.(lenReader); ok {
		rd.lr = lr
	}
	return rd
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Failf records a corruption error (used by codecs for semantic checks).
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (r *Reader) read(n int) []byte {
	if r.err != nil {
		return nil
	}
	b := r.scr[:n]
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return nil
	}
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.read(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a uint16.
func (r *Reader) U16() uint16 {
	b := r.read(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.read(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.read(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// count reads a slice length prefix and validates that elemSize*count bytes
// can still follow.
func (r *Reader) count(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if r.lr != nil && n*elemSize > r.lr.Len() {
		r.Failf("length prefix %d exceeds remaining %d bytes", n, r.lr.Len())
		return 0
	}
	return n
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return ""
	}
	return string(b)
}

// bulk reads n*elemSize raw bytes into a fresh buffer.
func (r *Reader) bulk(n, elemSize int) []byte {
	b := make([]byte, n*elemSize)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return nil
	}
	return b
}

// I32s reads a length-prefixed []int32.
func (r *Reader) I32s() []int32 {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	b := r.bulk(n, 4)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// I64s reads a length-prefixed []int64.
func (r *Reader) I64s() []int64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	b := r.bulk(n, 8)
	if b == nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// F32s reads a length-prefixed []float32.
func (r *Reader) F32s() []float32 {
	n := r.count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	b := r.bulk(n, 4)
	if b == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}
