package snapio_test

import (
	"bytes"
	"testing"

	"rnknn/internal/snapio"
)

// buildRawStream writes a mixed scalar/raw-array payload the way index
// codecs do, returning the encoded bytes.
func buildRawStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := snapio.NewWriter(&buf)
	w.U16(2)
	w.Bool(true)
	w.RawI32s([]int32{5, -1, 7, 1 << 30})
	w.String("tag")
	w.RawF64s([]float64{0.5, -3.25})
	w.RawI64s([]int64{1, 2, 3})
	w.U32(99)
	w.Flush()
	if _, err := w.Result(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkStream(t *testing.T, s *snapio.Source) {
	t.Helper()
	if v := s.U16(); v != 2 {
		t.Fatalf("U16 = %d", v)
	}
	if !s.Bool() {
		t.Fatal("Bool = false")
	}
	i32s := s.AlignedI32s()
	if len(i32s) != 4 || i32s[0] != 5 || i32s[1] != -1 || i32s[3] != 1<<30 {
		t.Fatalf("AlignedI32s = %v", i32s)
	}
	if v := s.String(); v != "tag" {
		t.Fatalf("String = %q", v)
	}
	f64s := s.AlignedF64s()
	if len(f64s) != 2 || f64s[0] != 0.5 || f64s[1] != -3.25 {
		t.Fatalf("AlignedF64s = %v", f64s)
	}
	i64s := s.AlignedI64s()
	if len(i64s) != 3 || i64s[2] != 3 {
		t.Fatalf("AlignedI64s = %v", i64s)
	}
	if v := s.U32(); v != 99 {
		t.Fatalf("U32 = %d", v)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if s.Remaining() != 0 {
		t.Fatalf("%d bytes left over", s.Remaining())
	}
}

// TestSourceCopyMode decodes the raw-array layout with aliasing off: every
// array is a private copy, and the values round-trip on any host.
func TestSourceCopyMode(t *testing.T) {
	checkStream(t, snapio.NewSource(buildRawStream(t), false))
}

// TestSourceAliasMode decodes with aliasing on: the same values come back,
// and on a little-endian host with aligned backing the arrays are views of
// the input buffer — writing through the decoded slice is visible to a
// second decode of the same bytes, proving zero-copy.
func TestSourceAliasMode(t *testing.T) {
	data := buildRawStream(t)
	s := snapio.NewSource(data, true)
	checkStream(t, s)

	if !snapio.HostLittleEndian() {
		t.Skip("alias views require a little-endian host")
	}
	s2 := snapio.NewSource(data, true)
	if !s2.Aliasing() {
		t.Fatal("Aliasing() = false on LE host")
	}
	s2.U16()
	s2.Bool()
	i32s := s2.AlignedI32s()
	old := i32s[0]
	i32s[0] = old + 1
	s3 := snapio.NewSource(data, true)
	s3.U16()
	s3.Bool()
	if again := s3.AlignedI32s(); again[0] != old+1 {
		t.Fatalf("aliased write not visible: %d want %d", again[0], old+1)
	}
	i32s[0] = old
}

// TestSourceTruncation: a cut-off stream fails with an error instead of
// panicking, wherever the cut lands.
func TestSourceTruncation(t *testing.T) {
	data := buildRawStream(t)
	for cut := 0; cut < len(data); cut += 7 {
		s := snapio.NewSource(data[:cut], false)
		s.U16()
		s.Bool()
		s.AlignedI32s()
		_ = s.String()
		s.AlignedF64s()
		s.AlignedI64s()
		s.U32()
		if s.Err() == nil {
			t.Fatalf("cut=%d: no error", cut)
		}
	}
}

// TestSourceCountOverflow: a length prefix implying more bytes than the
// buffer holds errors out instead of allocating.
func TestSourceCountOverflow(t *testing.T) {
	var buf bytes.Buffer
	w := snapio.NewWriter(&buf)
	w.U32(0xffff_ffff) // absurd element count
	w.Flush()
	if _, err := w.Result(); err != nil {
		t.Fatal(err)
	}
	s := snapio.NewSource(buf.Bytes(), false)
	if out := s.AlignedI32s(); s.Err() == nil || out != nil {
		t.Fatalf("overflow accepted: %v", s.Err())
	}
}

// TestWriterOffsetAlign64 pins the writer-side alignment bookkeeping the
// raw layout depends on: Offset counts through buffered and flushed bytes,
// and Align64 lands on 64-byte boundaries.
func TestWriterOffsetAlign64(t *testing.T) {
	var buf bytes.Buffer
	w := snapio.NewWriter(&buf)
	w.U8(1)
	if w.Offset() != 1 {
		t.Fatalf("Offset = %d", w.Offset())
	}
	w.Align64()
	if w.Offset() != 64 {
		t.Fatalf("Offset after Align64 = %d", w.Offset())
	}
	w.RawBytes(bytes.Repeat([]byte{7}, 100))
	w.Align64()
	if w.Offset() != 192 {
		t.Fatalf("Offset = %d, want 192", w.Offset())
	}
	w.Flush()
	if _, err := w.Result(); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != w.Offset() {
		t.Fatalf("buffer %d bytes, offset %d", buf.Len(), w.Offset())
	}
}
