package snapio_test

import (
	"bytes"
	"errors"
	"testing"

	"rnknn/internal/snapio"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := snapio.NewWriter(&buf)
	w.U8(200)
	w.Bool(true)
	w.Bool(false)
	w.U16(65_000)
	w.U32(4_000_000_000)
	w.U64(1 << 60)
	w.String("hello")
	w.String("")
	w.I32s([]int32{-1, 0, 1 << 30})
	w.I32s(nil)
	w.I64s([]int64{-5, 1 << 50})
	w.F32s([]float32{1.5, -0.25})
	if n, err := w.Result(); err != nil || n != int64(buf.Len()) {
		t.Fatalf("result n=%d err=%v buf=%d", n, err, buf.Len())
	}

	r := snapio.NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.U8(); got != 200 {
		t.Fatalf("U8 %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool")
	}
	if got := r.U16(); got != 65_000 {
		t.Fatalf("U16 %d", got)
	}
	if got := r.U32(); got != 4_000_000_000 {
		t.Fatalf("U32 %d", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Fatalf("U64 %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("String %q", got)
	}
	if got := r.I32s(); len(got) != 3 || got[0] != -1 || got[2] != 1<<30 {
		t.Fatalf("I32s %v", got)
	}
	if got := r.I32s(); got != nil {
		t.Fatalf("empty I32s %v", got)
	}
	if got := r.I64s(); len(got) != 2 || got[1] != 1<<50 {
		t.Fatalf("I64s %v", got)
	}
	if got := r.F32s(); len(got) != 2 || got[0] != 1.5 || got[1] != -0.25 {
		t.Fatalf("F32s %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestBogusLengthPrefix asserts a huge length prefix fails with ErrCorrupt
// instead of attempting the allocation (the reader knows how many bytes
// remain).
func TestBogusLengthPrefix(t *testing.T) {
	var buf bytes.Buffer
	w := snapio.NewWriter(&buf)
	w.U32(1 << 31) // length prefix promising 2^31 int32s
	if _, err := w.Result(); err != nil {
		t.Fatal(err)
	}
	r := snapio.NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.I32s(); got != nil {
		t.Fatalf("got %d elements", len(got))
	}
	if !errors.Is(r.Err(), snapio.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", r.Err())
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := snapio.NewWriter(&buf)
	w.I32s([]int32{1, 2, 3, 4})
	if _, err := w.Result(); err != nil {
		t.Fatal(err)
	}
	r := snapio.NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()-2]))
	_ = r.I32s()
	if !errors.Is(r.Err(), snapio.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", r.Err())
	}
}

func TestErrorSticks(t *testing.T) {
	r := snapio.NewReader(bytes.NewReader(nil))
	_ = r.U32()
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	_ = r.U64()
	if r.Err() != first {
		t.Fatal("error did not stick")
	}
}
