// Source: a byte-slice decoder for snapshot payloads. It mirrors Reader's
// streaming primitives but additionally understands the aligned raw-array
// layout of the format-v2 mappable sections (Writer.RawI32s and friends):
// a uint32 count, zero padding to the next 64-byte boundary, then raw
// little-endian element bytes. In alias mode the Aligned* reads return
// slices whose backing array IS the source bytes — zero copy, so decoding
// a section mapped from disk touches only the header pages — and in copy
// mode (big-endian hosts, misaligned data, or callers that want private
// memory) they fall back to the same copy-decode the streaming reads use.
//
// Aliased slices are views of a read-only mapping when the source came
// from internal/mapped: writing to them faults. Treat every decoded index
// as immutable, which they already are.
package snapio

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Source decodes primitives from an in-memory byte slice. The first error
// sticks and subsequent reads return zero values; check Err at the end.
type Source struct {
	data  []byte
	off   int
	alias bool
	err   error
}

// NewSource returns a Source over data. When alias is true (and the host
// is little endian), Aligned* reads return slices aliasing data instead of
// copying; data must then outlive everything decoded from it.
func NewSource(data []byte, alias bool) *Source {
	return &Source{data: data, alias: alias && hostLittleEndian}
}

// Err returns the first error encountered, if any.
func (s *Source) Err() error { return s.err }

// Aliasing reports whether Aligned* reads may return views of the source
// bytes (alias mode requested and host is little endian).
func (s *Source) Aliasing() bool { return s.alias }

// Remaining returns the number of undecoded bytes.
func (s *Source) Remaining() int { return len(s.data) - s.off }

// Failf records a corruption error (used by codecs for semantic checks).
func (s *Source) Failf(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// take consumes n bytes, failing on truncation.
func (s *Source) take(n int) []byte {
	if s.err != nil {
		return nil
	}
	if n < 0 || len(s.data)-s.off < n {
		s.Failf("need %d bytes at offset %d, have %d", n, s.off, len(s.data)-s.off)
		return nil
	}
	b := s.data[s.off : s.off+n]
	s.off += n
	return b
}

// U8 reads one byte.
func (s *Source) U8() uint8 {
	b := s.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool.
func (s *Source) Bool() bool { return s.U8() != 0 }

// U16 reads a uint16.
func (s *Source) U16() uint16 {
	b := s.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a uint32.
func (s *Source) U32() uint32 {
	b := s.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (s *Source) U64() uint64 {
	b := s.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// count reads a slice length prefix and validates that elemSize*count
// bytes can still follow (padding aside).
func (s *Source) count(elemSize int) int {
	n := int(s.U32())
	if s.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(s.Remaining()) {
		s.Failf("length prefix %d exceeds remaining %d bytes", n, s.Remaining())
		return 0
	}
	return n
}

// String reads a length-prefixed string.
func (s *Source) String() string {
	n := s.count(1)
	if s.err != nil || n == 0 {
		return ""
	}
	return string(s.take(n))
}

// I32s reads a length-prefixed []int32 written by Writer.I32s.
func (s *Source) I32s() []int32 {
	n := s.count(4)
	if s.err != nil || n == 0 {
		return nil
	}
	b := s.take(n * 4)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// I64s reads a length-prefixed []int64 written by Writer.I64s.
func (s *Source) I64s() []int64 {
	n := s.count(8)
	if s.err != nil || n == 0 {
		return nil
	}
	b := s.take(n * 8)
	if b == nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// F32s reads a length-prefixed []float32 written by Writer.F32s.
func (s *Source) F32s() []float32 {
	n := s.count(4)
	if s.err != nil || n == 0 {
		return nil
	}
	b := s.take(n * 4)
	if b == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// align64 skips padding up to the next 64-byte boundary of the stream.
func (s *Source) align64() {
	if s.err != nil {
		return
	}
	pad := (-s.off) & 63
	s.take(pad)
}

// aligned reports whether p is aligned for loads of the given alignment.
func aligned(b []byte, align uintptr) bool {
	return uintptr(unsafe.Pointer(&b[0]))%align == 0
}

// AlignedRaw reads an array written as count + 64-byte padding + raw
// little-endian elements of elemSize bytes, returning the element count
// and the raw bytes. In alias mode (and when the bytes satisfy elemAlign)
// the returned slice is a view of the source; aliased reports which.
// Codecs with array-of-struct payloads use this directly; typed arrays use
// the AlignedI32s-style wrappers.
func (s *Source) AlignedRaw(elemSize int, elemAlign uintptr) (n int, b []byte, aliased bool) {
	n = s.count(elemSize)
	s.align64()
	if s.err != nil || n == 0 {
		return 0, nil, false
	}
	b = s.take(n * elemSize)
	if b == nil {
		return 0, nil, false
	}
	return n, b, s.alias && aligned(b, elemAlign)
}

// AlignedI32s reads a []int32 written by Writer.RawI32s, aliasing the
// source bytes when possible (see Source).
func (s *Source) AlignedI32s() []int32 {
	n, b, ok := s.AlignedRaw(4, 4)
	if n == 0 {
		return nil
	}
	if ok {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// AlignedI64s reads a []int64 written by Writer.RawI64s.
func (s *Source) AlignedI64s() []int64 {
	n, b, ok := s.AlignedRaw(8, 8)
	if n == 0 {
		return nil
	}
	if ok {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// AlignedF32s reads a []float32 written by Writer.RawF32s.
func (s *Source) AlignedF32s() []float32 {
	n, b, ok := s.AlignedRaw(4, 4)
	if n == 0 {
		return nil
	}
	if ok {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// AlignedF64s reads a []float64 written by Writer.RawF64s.
func (s *Source) AlignedF64s() []float64 {
	n, b, ok := s.AlignedRaw(8, 8)
	if n == 0 {
		return nil
	}
	if ok {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}
