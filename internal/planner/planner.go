// Package planner picks a kNN method per query. The paper's central
// experimental finding is that no single method dominates: INE wins when
// objects are dense (the expansion finds k objects before it grows large,
// Section 7.3 / Figure 11), the IER family and G-tree win at low density
// and large k (Figures 10-11), and the crossovers are governed by k, the
// object density, and the network size, with IER-PHL the overall winner
// where its index fits (Table 5). The planner encodes that regime table as
// a static cost model and refines it online with per-method latency EWMAs,
// bucketed by (k, density) regime, observed from completed queries.
//
// A Planner is safe for concurrent use: observations and choices touch
// only atomics.
package planner

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"rnknn/internal/core"
)

// Features are the query-time signals the cost model is keyed on.
type Features struct {
	// K is the number of neighbors requested.
	K int
	// NumObjects is the live size of the queried object category.
	NumObjects int
	// NumVertices is the road network size.
	NumVertices int
}

// Density is the object density |O|/|V| — the paper's primary regime axis
// (Section 7.3). Clamped away from zero so cost ratios stay finite.
func (f Features) Density() float64 {
	if f.NumVertices <= 0 {
		return 1
	}
	d := float64(f.NumObjects) / float64(f.NumVertices)
	if d < 1e-9 {
		d = 1e-9
	}
	if d > 1 {
		d = 1
	}
	return d
}

// Regime buckets: k by log2 (paper varies k in powers, Figure 10), density
// by decade (Figure 11's axis). Observations land in one (method, k,
// density) cell so a latency learned at k=1, D=0.1 never shadows k=640,
// D=0.0001.
const (
	numKBuckets = 9
	numDBuckets = 6
)

func kBucket(k int) int {
	b := 0
	for k > 1 && b < numKBuckets-1 {
		k >>= 1
		b++
	}
	return b
}

func dBucket(d float64) int {
	// >=0.1 → 0, >=0.01 → 1, ..., >=1e-5 → 4, below → 5.
	b := 0
	for th := 0.1; d < th && b < numDBuckets-1; th /= 10 {
		b++
	}
	return b
}

// numKinds mirrors internal/core's method-kind count.
var numKinds = len(core.Kinds())

// Planner is the adaptive method planner.
type Planner struct {
	// ewma[kind][kb][db] is the smoothed observed latency in nanoseconds
	// for one (method, regime) cell; zero means no observation yet. The
	// read-modify-write is intentionally lossy under contention (both
	// halves are atomic; a lost update only slows EWMA convergence).
	ewma [][numKBuckets][numDBuckets]atomic.Int64
}

// New returns a Planner with no observations: choices start from the
// static regime table.
func New() *Planner {
	return &Planner{ewma: make([][numKBuckets][numDBuckets]atomic.Int64, numKinds)}
}

// ewmaShift is the EWMA smoothing factor 1/2^3: new = old + (sample-old)/8.
const ewmaShift = 3

// Observe folds one completed query's latency into the (kind, regime)
// cell. Call it for every completed kNN query, whatever chose the method —
// fixed-method traffic trains the planner too.
func (p *Planner) Observe(kind core.MethodKind, f Features, d time.Duration) {
	if int(kind) < 0 || int(kind) >= numKinds || d < 0 {
		return
	}
	cell := &p.ewma[kind][kBucket(f.K)][dBucket(f.Density())]
	old := cell.Load()
	if old == 0 {
		cell.Store(int64(d))
		return
	}
	cell.Store(old + (int64(d)-old)>>ewmaShift)
}

// NoteDensityShift tells the planner a category's live object count moved
// from oldF to newF (an object-churn mutation: InsertObjects,
// RemoveObjects, or a bulk re-registration). Within one density decade the
// shift cannot change any Choose outcome and this is a no-op. When the
// shift crosses into a different density bucket — the regime axis the
// paper's Figure 11 sweeps — the latency EWMAs stored for that bucket were
// learned whenever traffic last ran at that density, possibly long ago and
// over a very different object composition, so the planner forgets that
// density column and falls back to the paper-seeded static model until
// fresh post-churn traffic retrains it. Reports whether a regime boundary
// was crossed. Safe for concurrent use.
func (p *Planner) NoteDensityShift(oldF, newF Features) bool {
	nb := dBucket(newF.Density())
	if dBucket(oldF.Density()) == nb {
		return false
	}
	for kind := range p.ewma {
		for kb := 0; kb < numKBuckets; kb++ {
			p.ewma[kind][kb][nb].Store(0)
		}
	}
	return true
}

// observed returns the cell's EWMA in nanoseconds, or 0 when the regime
// has no observations for this kind.
func (p *Planner) observed(kind core.MethodKind, f Features) int64 {
	if int(kind) < 0 || int(kind) >= numKinds {
		return 0
	}
	return p.ewma[kind][kBucket(f.K)][dBucket(f.Density())].Load()
}

// Static cost model: expected query nanoseconds per method, seeded from
// the paper's findings. The constants are coarse priors — what matters is
// that they reproduce the regime crossovers (INE at high density, IER/
// G-tree at low density and large k) so the first queries of an unseen
// regime are sensible; EWMAs take over as traffic arrives.
const (
	// settleNanos is the cost of settling one vertex in a Dijkstra-style
	// expansion (INE's unit, Section 6.2's optimized form).
	settleNanos = 60
	// candidateFactor approximates IER's verified candidates per result
	// (Euclidean ordering is a good but not perfect proxy, Section 3.2).
	candidateFactor = 2.5
)

// expansionCost estimates an INE-style expansion: settling ~k/D vertices
// finds k objects under uniform density, capped at the whole network
// (Section 7.3 — this is exactly why INE degrades as density falls).
func expansionCost(f Features) float64 {
	settled := 1.2 * float64(f.K) / f.Density()
	if n := float64(f.NumVertices); settled > n {
		settled = n
	}
	return settleNanos * settled
}

// oracleNanos estimates one point-to-point distance computation for each
// IER oracle (Section 5's hierarchy: PHL microseconds and nearly flat in
// |V|; TNR close behind; CH a bidirectional search growing with |V|;
// MGtree assembly along the partition tree).
func oracleNanos(kind core.MethodKind, n float64) float64 {
	logn := math.Log2(math.Max(n, 2))
	switch kind {
	case core.IERPHL:
		return 1500
	case core.IERTNR:
		return 2500
	case core.IERCH:
		return 600 * logn
	case core.IERGt:
		return 350 * logn
	}
	return 0
}

// staticCost is the prior for one (kind, features) pair, in nanoseconds.
func staticCost(kind core.MethodKind, f Features) float64 {
	n := float64(f.NumVertices)
	k := float64(f.K)
	logn := math.Log2(math.Max(n, 2))
	switch kind {
	case core.INE:
		return expansionCost(f)
	case core.IERDijk:
		// One resumable Dijkstra serves every candidate, so the cost is an
		// expansion out to the k-th object's radius — INE-shaped, plus the
		// R-tree scan overhead that rarely pays off for Dijkstra (Fig. 4).
		return 1.3 * expansionCost(f)
	case core.IERCH, core.IERTNR, core.IERPHL, core.IERGt:
		return candidateFactor * k * oracleNanos(kind, n)
	case core.Gtree:
		// Leaf Dijkstra plus ~k border-matrix assemblies up the partition
		// tree (Algorithm 3/4); trails IER-PHL across the paper's k range
		// (Figure 10) but beats every expansion at low density.
		return 15000 + 250*k*logn
	case core.ROAD:
		// Same hierarchy as G-tree but consistently slower in the paper's
		// runs (Figures 10-11): shortcut descent per settled vertex.
		return 3 * (15000 + 250*k*logn)
	case core.DisBrw, core.DisBrwOH:
		// Quadratic index restricted to small networks; quickly dominated
		// elsewhere (Figure 19).
		return 20000 + 5000*k + n*10
	}
	return math.Inf(1)
}

// Choice is one planning decision: the selected method and a short
// human-readable rationale (surfaced by pkg/rnknn's Explain).
type Choice struct {
	Kind core.MethodKind
	// Cost is the estimated or observed latency the choice was based on.
	Cost time.Duration
	// Observed reports whether Cost came from the regime's latency EWMA
	// (true) or the static paper-seeded model (false).
	Observed bool
	// Reason is a one-line rationale for logs and Explain output.
	Reason string
}

// Choose picks the cheapest enabled method for the query's regime:
// observed EWMA latency where this (method, k, density) cell has traffic,
// the static regime model where it does not. Panics only if enabled is
// empty (callers always have at least one method).
func (p *Planner) Choose(enabled []core.MethodKind, f Features) Choice {
	best := Choice{Kind: enabled[0], Cost: time.Duration(math.MaxInt64)}
	for _, kind := range enabled {
		var c Choice
		if obs := p.observed(kind, f); obs > 0 {
			c = Choice{Kind: kind, Cost: time.Duration(obs), Observed: true}
		} else {
			c = Choice{Kind: kind, Cost: time.Duration(staticCost(kind, f))}
		}
		// Strict < keeps the earlier (caller-preferred) method on ties.
		if c.Cost < best.Cost {
			best = c
		}
	}
	src := "regime model"
	if best.Observed {
		src = "observed EWMA"
	}
	best.Reason = fmt.Sprintf("auto: %s estimated at %v by %s (k=%d, density=%.2g, |V|=%d)",
		best.Kind, best.Cost.Round(time.Microsecond), src, f.K, f.Density(), f.NumVertices)
	return best
}
