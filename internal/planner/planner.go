// Package planner picks a kNN method per query. The paper's central
// experimental finding is that no single method dominates: INE wins when
// objects are dense (the expansion finds k objects before it grows large,
// Section 7.3 / Figure 11), the IER family and G-tree win at low density
// and large k (Figures 10-11), and the crossovers are governed by k, the
// object density, and the network size, with IER-PHL the overall winner
// where its index fits (Table 5). The planner encodes that regime table as
// a cost model — coefficients fitted offline from accumulated benchmark
// runs where available (see Model and cmd/fitcost), hand-seeded paper
// priors where not — and refines it online with per-method latency EWMAs,
// bucketed by (k, density) regime, observed from completed queries.
//
// The same cost surface drives batch execution: ChooseBatch decides whether
// a group of clustered queries should run as one shared multi-source
// expansion or fan out as independent queries.
//
// A Planner is safe for concurrent use: observations, choices and model
// swaps touch only atomics.
package planner

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"rnknn/internal/core"
)

// Features are the query-time signals the cost model is keyed on.
type Features struct {
	// K is the number of neighbors requested.
	K int
	// NumObjects is the live size of the queried object category.
	NumObjects int
	// NumVertices is the road network size.
	NumVertices int
}

// Density is the object density |O|/|V| — the paper's primary regime axis
// (Section 7.3). Clamped away from zero so cost ratios stay finite.
func (f Features) Density() float64 {
	if f.NumVertices <= 0 {
		return 1
	}
	d := float64(f.NumObjects) / float64(f.NumVertices)
	if d < 1e-9 {
		d = 1e-9
	}
	if d > 1 {
		d = 1
	}
	return d
}

// Regime buckets: k by log2 (paper varies k in powers, Figure 10), density
// by decade (Figure 11's axis). Observations land in one (method, k,
// density) cell so a latency learned at k=1, D=0.1 never shadows k=640,
// D=0.0001.
const (
	numKBuckets = 9
	numDBuckets = 6
)

func kBucket(k int) int {
	b := 0
	for k > 1 && b < numKBuckets-1 {
		k >>= 1
		b++
	}
	return b
}

func dBucket(d float64) int {
	// >=0.1 → 0, >=0.01 → 1, ..., >=1e-5 → 4, below → 5.
	b := 0
	for th := 0.1; d < th && b < numDBuckets-1; th /= 10 {
		b++
	}
	return b
}

// numKinds mirrors internal/core's method-kind count.
var numKinds = len(core.Kinds())

// Planner is the adaptive method planner.
type Planner struct {
	// ewma[kind][kb][db] is the smoothed observed latency in nanoseconds
	// for one (method, regime) cell; zero means no observation yet. The
	// read-modify-write is intentionally lossy under contention (both
	// halves are atomic; a lost update only slows EWMA convergence).
	ewma [][numKBuckets][numDBuckets]atomic.Int64

	// model is the live cost prior (DefaultModel unless SetModel swapped in
	// another fit).
	model atomic.Pointer[Model]
	// staleNeighbors is set by SetModel: the static priors the EWMAs were
	// once compared against have changed, so the next density-decade
	// crossing also forgets the neighboring decades (see NoteDensityShift).
	staleNeighbors atomic.Bool
}

// New returns a Planner with no observations: choices start from
// DefaultModel (the checked-in fitted cost table, or the paper-seeded
// priors where no fit exists).
func New() *Planner {
	p := &Planner{ewma: make([][numKBuckets][numDBuckets]atomic.Int64, numKinds)}
	p.model.Store(DefaultModel)
	return p
}

// Model returns the live cost model.
func (p *Planner) Model() *Model { return p.model.Load() }

// SetModel swaps the cost prior (nil restores the hand-seeded paper
// priors). Existing latency EWMAs are kept — they are measurements, not
// priors — but the swap marks every density decade's static baseline as
// changed, so the next churn-driven regime crossing also resets the decades
// adjacent to the crossed one (their EWMAs were trained against the old
// prior's crossovers; see NoteDensityShift). Safe for concurrent use.
func (p *Planner) SetModel(m *Model) {
	if m == nil {
		m = seedModel()
	}
	p.model.Store(m)
	p.staleNeighbors.Store(true)
}

// ewmaShift is the EWMA smoothing factor 1/2^3: new = old + (sample-old)/8.
const ewmaShift = 3

// Observe folds one completed query's latency into the (kind, regime)
// cell. Call it for every completed kNN query, whatever chose the method —
// fixed-method traffic trains the planner too. (Shared-expansion batch
// members are the exception: their amortized per-member latency is not a
// single-query latency and must not train these cells.)
func (p *Planner) Observe(kind core.MethodKind, f Features, d time.Duration) {
	if int(kind) < 0 || int(kind) >= numKinds || d < 0 {
		return
	}
	cell := &p.ewma[kind][kBucket(f.K)][dBucket(f.Density())]
	old := cell.Load()
	if old == 0 {
		cell.Store(int64(d))
		return
	}
	cell.Store(old + (int64(d)-old)>>ewmaShift)
}

// resetDecade forgets every (kind, k) EWMA of one density decade.
func (p *Planner) resetDecade(db int) {
	for kind := range p.ewma {
		for kb := 0; kb < numKBuckets; kb++ {
			p.ewma[kind][kb][db].Store(0)
		}
	}
}

// NoteDensityShift tells the planner a category's live object count moved
// from oldF to newF (an object-churn mutation: InsertObjects,
// RemoveObjects, or a bulk re-registration). Within one density decade the
// shift cannot change any Choose outcome and this is a no-op. When the
// shift crosses into a different density bucket — the regime axis the
// paper's Figure 11 sweeps — the latency EWMAs stored for that bucket were
// learned whenever traffic last ran at that density, possibly long ago and
// over a very different object composition, so the planner forgets that
// density column and falls back to the model until fresh post-churn traffic
// retrains it. If a SetModel reload has changed the static priors since the
// last crossing, the decades adjacent to the crossed one are forgotten too:
// their stored EWMAs only ever mattered relative to the old model's
// crossovers, and the boundary regimes are where a reload moves decisions.
// Reports whether a regime boundary was crossed. Safe for concurrent use.
func (p *Planner) NoteDensityShift(oldF, newF Features) bool {
	nb := dBucket(newF.Density())
	if dBucket(oldF.Density()) == nb {
		return false
	}
	p.resetDecade(nb)
	if p.staleNeighbors.Swap(false) {
		if nb > 0 {
			p.resetDecade(nb - 1)
		}
		if nb < numDBuckets-1 {
			p.resetDecade(nb + 1)
		}
	}
	return true
}

// observed returns the cell's EWMA in nanoseconds, or 0 when the regime
// has no observations for this kind.
func (p *Planner) observed(kind core.MethodKind, f Features) int64 {
	if int(kind) < 0 || int(kind) >= numKinds {
		return 0
	}
	return p.ewma[kind][kBucket(f.K)][dBucket(f.Density())].Load()
}

// Choice is one planning decision: the selected method and a short
// human-readable rationale (surfaced by pkg/rnknn's Explain).
type Choice struct {
	Kind core.MethodKind
	// Cost is the estimated or observed latency the choice was based on.
	Cost time.Duration
	// Observed reports whether Cost came from the regime's latency EWMA
	// (true) or the static cost model (false).
	Observed bool
	// Reason is a one-line rationale for logs and Explain output.
	Reason string
}

// Choose picks the cheapest enabled method for the query's regime:
// observed EWMA latency where this (method, k, density) cell has traffic,
// the cost model where it does not. Panics only if enabled is empty
// (callers always have at least one method).
func (p *Planner) Choose(enabled []core.MethodKind, f Features) Choice {
	m := p.model.Load()
	best := Choice{Kind: enabled[0], Cost: time.Duration(math.MaxInt64)}
	for _, kind := range enabled {
		var c Choice
		if obs := p.observed(kind, f); obs > 0 {
			c = Choice{Kind: kind, Cost: time.Duration(obs), Observed: true}
		} else {
			c = Choice{Kind: kind, Cost: time.Duration(m.Cost(kind, f))}
		}
		// Strict < keeps the earlier (caller-preferred) method on ties.
		if c.Cost < best.Cost {
			best = c
		}
	}
	src := m.source()
	if best.Observed {
		src = "observed EWMA"
	}
	best.Reason = fmt.Sprintf("auto: %s estimated at %v by %s (k=%d, density=%.2g, |V|=%d)",
		best.Kind, best.Cost.Round(time.Microsecond), src, f.K, f.Density(), f.NumVertices)
	return best
}

// BatchChoice is one batch-group execution decision (see ChooseBatch).
type BatchChoice struct {
	// Shared reports whether the group should run as one shared expansion
	// (true) or fan out as independent queries (false).
	Shared bool
	// SingleCost is the one-query latency estimate the decision used.
	SingleCost time.Duration
	// GroupCost is the estimated total for the chosen execution.
	GroupCost time.Duration
	// Reason is a one-line rationale for Batch.Explain.
	Reason string
}

// ChooseBatch decides how a batch group of size clustered queries of one
// method kind should execute: as one shared multi-source expansion or as
// independent fanned-out queries. The decision rides on the single-query
// estimate for the group's regime (observed EWMA when the cell has traffic,
// the model otherwise): sharing pays exactly when individual queries are
// expensive — large search regions overlap heavily inside one partition
// leaf, so the frontier's work is paid once for the whole group — and loses
// when queries are cheap, where the multi-source frontier's per-vertex
// width tax exceeds the savings. The crossover itself is a model
// coefficient (Model.SharedMinSingleNanos), measured alongside the fitted
// table.
func (p *Planner) ChooseBatch(kind core.MethodKind, f Features, size int) BatchChoice {
	m := p.model.Load()
	single := float64(m.Cost(kind, f))
	src := m.source()
	if obs := p.observed(kind, f); obs > 0 {
		single = float64(obs)
		src = "observed EWMA"
	}
	bc := BatchChoice{SingleCost: time.Duration(single)}
	fanout := single * float64(size)
	if size < 2 {
		bc.GroupCost = time.Duration(fanout)
		bc.Reason = "fan-out: group too small to share"
		return bc
	}
	if single < m.SharedMinSingleNanos {
		bc.GroupCost = time.Duration(fanout)
		bc.Reason = fmt.Sprintf("fan-out: %s single-query estimate %v below %v sharing crossover by %s",
			kind, bc.SingleCost.Round(time.Microsecond),
			time.Duration(m.SharedMinSingleNanos).Round(time.Microsecond), src)
		return bc
	}
	bc.Shared = true
	bc.GroupCost = time.Duration(m.SharedCost(single, size))
	bc.Reason = fmt.Sprintf("shared expansion: %d×%s at %v/query ≥ %v sharing crossover by %s, group estimate %v vs %v fanned out",
		size, kind, bc.SingleCost.Round(time.Microsecond),
		time.Duration(m.SharedMinSingleNanos).Round(time.Microsecond), src,
		bc.GroupCost.Round(time.Microsecond), time.Duration(fanout).Round(time.Microsecond))
	return bc
}
