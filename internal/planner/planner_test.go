package planner

import (
	"sync"
	"testing"
	"time"

	"rnknn/internal/core"
)

// TestStaticRegimeTable pins the paper-seeded crossovers: INE at high
// density, the fast-oracle IER family at low density and large k, with
// G-tree beating INE at low density when no fast oracle is enabled. The
// checked-in DefaultModel is fitted to one machine's measurements and may
// legitimately place crossovers elsewhere, so the test pins the planner to
// the seed model — the paper's Table 5 priors — explicitly.
func TestStaticRegimeTable(t *testing.T) {
	p := New()
	p.SetModel(nil) // nil reverts to the hand-seeded paper priors
	const n = 100000
	cases := []struct {
		name    string
		enabled []core.MethodKind
		f       Features
		want    core.MethodKind
	}{
		{"high density small k -> INE",
			[]core.MethodKind{core.INE, core.IERPHL, core.Gtree},
			Features{K: 5, NumObjects: n / 10, NumVertices: n}, core.INE},
		{"low density large k -> IER-PHL",
			[]core.MethodKind{core.INE, core.IERPHL, core.Gtree},
			Features{K: 100, NumObjects: n / 10000, NumVertices: n}, core.IERPHL},
		{"low density no fast oracle -> Gtree over INE",
			[]core.MethodKind{core.INE, core.Gtree},
			Features{K: 10, NumObjects: n / 10000, NumVertices: n}, core.Gtree},
		{"high density with only IER variants -> cheapest oracle",
			[]core.MethodKind{core.IERCH, core.IERPHL},
			Features{K: 10, NumObjects: n / 10, NumVertices: n}, core.IERPHL},
	}
	for _, c := range cases {
		got := p.Choose(c.enabled, c.f)
		if got.Kind != c.want {
			t.Errorf("%s: chose %v (%s), want %v", c.name, got.Kind, got.Reason, c.want)
		}
		if got.Observed {
			t.Errorf("%s: fresh planner reported an observed cost", c.name)
		}
		if got.Reason == "" {
			t.Errorf("%s: empty reason", c.name)
		}
	}
}

// TestObservedLatencyOverridesModel feeds latencies that contradict the
// static model and checks the EWMA wins within its regime bucket — and
// only there.
func TestObservedLatencyOverridesModel(t *testing.T) {
	p := New()
	enabled := []core.MethodKind{core.INE, core.Gtree}
	// High-density regime: the static model picks INE.
	dense := Features{K: 4, NumObjects: 5000, NumVertices: 50000}
	if got := p.Choose(enabled, dense); got.Kind != core.INE {
		t.Fatalf("precondition: static choice = %v, want INE", got.Kind)
	}
	// Observe INE being pathologically slow and Gtree fast, in this regime.
	for i := 0; i < 20; i++ {
		p.Observe(core.INE, dense, 80*time.Millisecond)
		p.Observe(core.Gtree, dense, 100*time.Microsecond)
	}
	got := p.Choose(enabled, dense)
	if got.Kind != core.Gtree || !got.Observed {
		t.Fatalf("after observations: chose %v (observed=%v), want Gtree from EWMA", got.Kind, got.Observed)
	}
	// A different (k, density) bucket is untouched: static model again.
	sparse := Features{K: 512, NumObjects: 5, NumVertices: 50000}
	if got := p.Choose(enabled, sparse); got.Observed {
		t.Fatalf("sparse regime should be unobserved, got %s", got.Reason)
	}
}

// TestEWMAConverges checks the smoothing actually tracks a shifted latency
// rather than sticking at the first sample.
func TestEWMAConverges(t *testing.T) {
	p := New()
	f := Features{K: 8, NumObjects: 100, NumVertices: 10000}
	p.Observe(core.Gtree, f, 10*time.Millisecond)
	for i := 0; i < 200; i++ {
		p.Observe(core.Gtree, f, 1*time.Millisecond)
	}
	got := time.Duration(p.observed(core.Gtree, f))
	if got > 2*time.Millisecond || got < 500*time.Microsecond {
		t.Fatalf("EWMA after shift = %v, want ~1ms", got)
	}
}

func TestBuckets(t *testing.T) {
	if kBucket(1) != 0 || kBucket(2) != 1 || kBucket(640) >= numKBuckets {
		t.Fatalf("k buckets: %d %d %d", kBucket(1), kBucket(2), kBucket(640))
	}
	if kBucket(1<<20) != numKBuckets-1 {
		t.Fatalf("huge k must clamp, got %d", kBucket(1<<20))
	}
	if dBucket(0.5) != 0 || dBucket(0.01) != 1 || dBucket(1e-9) != numDBuckets-1 {
		t.Fatalf("density buckets: %d %d %d", dBucket(0.5), dBucket(0.01), dBucket(1e-9))
	}
	f := Features{K: 3, NumObjects: 0, NumVertices: 100}
	if d := f.Density(); d <= 0 {
		t.Fatalf("empty category density must clamp positive, got %g", d)
	}
}

// TestConcurrentObserveChoose is a race-detector exercise: Observe and
// Choose from many goroutines must be data-race free.
func TestConcurrentObserveChoose(t *testing.T) {
	p := New()
	enabled := []core.MethodKind{core.INE, core.IERPHL, core.Gtree}
	f := Features{K: 10, NumObjects: 50, NumVertices: 20000}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Observe(enabled[i%len(enabled)], f, time.Duration(i)*time.Microsecond)
				_ = p.Choose(enabled, f)
			}
		}(w)
	}
	wg.Wait()
}

// TestNoteDensityShiftReRegimes drives the object-churn hook: a density
// shift across a decade boundary must forget the crossed-into regime's
// observations (falling back to the static model), while a within-bucket
// shift must leave them alone.
func TestNoteDensityShiftReRegimes(t *testing.T) {
	p := New()
	enabled := []core.MethodKind{core.INE, core.Gtree}
	nv := 100000
	sparse := Features{K: 10, NumObjects: 100, NumVertices: nv}  // density 1e-3
	dense := Features{K: 10, NumObjects: 20000, NumVertices: nv} // density 0.2

	// Train the sparse regime with a fake observation that makes INE look
	// unrealistically fast there (statically Gtree wins at this density).
	for i := 0; i < 50; i++ {
		p.Observe(core.INE, sparse, 1*time.Microsecond)
	}
	if c := p.Choose(enabled, sparse); c.Kind != core.INE || !c.Observed {
		t.Fatalf("trained choice = %+v, want observed INE", c)
	}

	// A within-bucket shift (100 -> 150 objects stays in the 1e-3 decade)
	// must not invalidate anything.
	if p.NoteDensityShift(sparse, Features{K: 10, NumObjects: 150, NumVertices: nv}) {
		t.Fatal("within-bucket shift reported a regime crossing")
	}
	if c := p.Choose(enabled, sparse); !c.Observed {
		t.Fatal("within-bucket shift dropped the regime's observations")
	}

	// Churn the set dense -> sparse: crossing into the sparse bucket must
	// forget its stale EWMAs, so the static model (Gtree here) takes over.
	if !p.NoteDensityShift(dense, sparse) {
		t.Fatal("decade crossing not reported")
	}
	c := p.Choose(enabled, sparse)
	if c.Observed {
		t.Fatalf("crossed-into regime still using stale EWMA: %+v", c)
	}
	if c.Kind != core.Gtree {
		t.Fatalf("static model at density 1e-3 chose %v, want Gtree", c.Kind)
	}
}

// TestSetModelResetsNeighborDecades drives the model-reload staleness rule:
// after SetModel swaps the static prior, the next density-decade crossing
// must forget not just the crossed-into decade but its neighbors too —
// their EWMAs were trained against the old prior's crossovers. Crossings
// with no intervening reload keep resetting only the crossed decade.
func TestSetModelResetsNeighborDecades(t *testing.T) {
	p := New()
	enabled := []core.MethodKind{core.INE, core.Gtree}
	nv := 100000
	// Three adjacent density decades: 1e-2, 1e-3, 1e-4.
	mid := Features{K: 10, NumObjects: 100, NumVertices: nv}
	up := Features{K: 10, NumObjects: 1000, NumVertices: nv}
	down := Features{K: 10, NumObjects: 10, NumVertices: nv}
	for _, f := range []Features{mid, up, down} {
		for i := 0; i < 50; i++ {
			p.Observe(core.INE, f, 1*time.Microsecond)
		}
	}

	// Without a model reload, crossing into mid's decade keeps the
	// neighbors' observations.
	if !p.NoteDensityShift(Features{K: 10, NumObjects: nv / 5, NumVertices: nv}, mid) {
		t.Fatal("decade crossing not reported")
	}
	if c := p.Choose(enabled, up); !c.Observed {
		t.Fatal("plain crossing dropped a neighboring decade's observations")
	}
	if c := p.Choose(enabled, down); !c.Observed {
		t.Fatal("plain crossing dropped a neighboring decade's observations")
	}

	// Retrain mid, reload the model, cross again: now the neighbors must be
	// forgotten too.
	for i := 0; i < 50; i++ {
		p.Observe(core.INE, mid, 1*time.Microsecond)
	}
	m := SeedModel()
	m.Fitted = true
	m.Provenance = "test fit"
	p.SetModel(m)
	if !p.NoteDensityShift(Features{K: 10, NumObjects: nv / 5, NumVertices: nv}, mid) {
		t.Fatal("decade crossing not reported")
	}
	for _, f := range []Features{mid, up, down} {
		if c := p.Choose(enabled, f); c.Observed {
			t.Fatalf("post-reload crossing kept stale EWMA at density %.2g: %s", f.Density(), c.Reason)
		}
	}

	// The staleness flag is one-shot: the next crossing is back to the
	// narrow reset.
	for i := 0; i < 50; i++ {
		p.Observe(core.INE, up, 1*time.Microsecond)
	}
	if !p.NoteDensityShift(mid, down) {
		t.Fatal("decade crossing not reported")
	}
	if c := p.Choose(enabled, up); !c.Observed {
		t.Fatal("second crossing after reload was not narrow again")
	}
}

// TestChooseBatch pins the shared-expansion decision surface: expensive
// single queries (sparse regime) share, cheap ones (dense regime) fan out,
// and a group of one never shares.
func TestChooseBatch(t *testing.T) {
	p := New()
	nv := 110000
	sparse := Features{K: 10, NumObjects: 110, NumVertices: nv}  // ~1e-3: slow INE
	dense := Features{K: 10, NumObjects: 11000, NumVertices: nv} // 0.1: fast INE

	if bc := p.ChooseBatch(core.INE, sparse, 64); !bc.Shared {
		t.Fatalf("sparse 64-group must share, got %s", bc.Reason)
	} else if bc.GroupCost <= 0 || bc.SingleCost <= 0 || bc.Reason == "" {
		t.Fatalf("incomplete shared choice: %+v", bc)
	}
	if bc := p.ChooseBatch(core.INE, dense, 64); bc.Shared {
		t.Fatalf("dense 64-group must fan out, got %s", bc.Reason)
	}
	if bc := p.ChooseBatch(core.INE, sparse, 1); bc.Shared {
		t.Fatalf("singleton group must fan out, got %s", bc.Reason)
	}

	// An observed EWMA overrides the model's single-query estimate: train
	// the dense cell to look pathologically slow and sharing flips on.
	for i := 0; i < 50; i++ {
		p.Observe(core.INE, dense, 5*time.Millisecond)
	}
	if bc := p.ChooseBatch(core.INE, dense, 64); !bc.Shared {
		t.Fatalf("observed-slow dense group must share, got %s", bc.Reason)
	}
}
