// Package road implements ROAD — Route Overlay and Association Directory
// (Section 3.4): an Rnet hierarchy over the shared partitioner with
// precomputed border-to-border shortcuts, and an INE-style expansion that
// bypasses Rnets containing no objects by relaxing their shortcuts instead
// of exploring their interiors (Algorithms 5 and 6).
//
// Shortcuts of an Rnet store distances constrained to that Rnet's subgraph,
// computed bottom-up: leaf Rnets by Dijkstra on their subgraphs, inner
// Rnets over the border graph assembled from child shortcut cliques plus
// cut edges. Constrained distances suffice for correctness because the
// expansion itself stitches together path segments that leave and re-enter
// an Rnet through its borders.
//
// The Appendix A.3 improvement — not re-inserting shortcut targets that are
// already settled — is applied.
package road

import (
	"rnknn/internal/bitset"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/partition"
	"rnknn/internal/pqueue"
	"rnknn/internal/scratch"
)

const inf32 int32 = 1 << 30

// Index is a built ROAD index (the Route Overlay: partition hierarchy plus
// the global shortcut array).
type Index struct {
	G  *graph.Graph
	PT *partition.Tree
	// Levels is the hierarchy depth the index was built with.
	Levels int

	// Per partition-tree node: sorted borders, and a |B|x|B| row-major
	// shortcut matrix laid out in one global array (Section 6.2, choice 3):
	// shortcut row of border i of node n starts at matOff[n] + i*|B|.
	borders [][]int32
	shorts  []int32
	matOff  []int32

	// Route Overlay: for each vertex, the Rnets it borders with its border
	// index, ordered from the highest (shallowest) level down, packed in
	// CSR form. This is the per-vertex "shortcut tree" access path.
	roOff  []int32
	roRnet []int32
	roBi   []int32
}

// Options configures Build.
type Options struct {
	// Fanout is the partition fanout (paper default 4).
	Fanout int
	// Levels is the Rnet hierarchy depth l (paper: 7..11 by network size).
	// Zero derives it from the network size targeting ~16-vertex leaves.
	Levels int
}

func (o Options) withDefaults(g *graph.Graph) Options {
	if o.Fanout < 2 {
		o.Fanout = 4
	}
	if o.Levels <= 0 {
		n := g.NumVertices()
		o.Levels = 1
		for size := float64(n); size > 16 && o.Levels < 14; size /= float64(o.Fanout) {
			o.Levels++
		}
	}
	return o
}

// Build constructs the ROAD index for g.
func Build(g *graph.Graph, opts Options) *Index {
	opts = opts.withDefaults(g)
	pt := partition.Build(g, partition.Options{Fanout: opts.Fanout, MaxLevels: opts.Levels})
	return BuildOnPartition(g, pt, opts.Levels)
}

// BuildOnPartition constructs ROAD over a pre-built partition tree.
func BuildOnPartition(g *graph.Graph, pt *partition.Tree, levels int) *Index {
	x := &Index{G: g, PT: pt, Levels: levels}
	x.computeBorders()
	x.computeShortcuts()
	x.buildRouteOverlay()
	return x
}

// buildRouteOverlay packs, per vertex, the (Rnet, border index) pairs where
// the vertex is a border, ordered by level ascending (chain Rnets are
// nested, so this is "highest first").
func (x *Index) buildRouteOverlay() {
	n := x.G.NumVertices()
	type entry struct {
		rnet int32
		bi   int32
	}
	per := make([][]entry, n)
	// Walk nodes in level-ascending order so per-vertex lists come out
	// highest-level-first without sorting.
	order := make([]int32, len(x.PT.Nodes))
	for i := range order {
		order[i] = int32(i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && x.PT.Nodes[order[j]].Level < x.PT.Nodes[order[j-1]].Level; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, ni := range order {
		for bi, v := range x.borders[ni] {
			per[v] = append(per[v], entry{ni, int32(bi)})
		}
	}
	x.roOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		x.roOff[v+1] = x.roOff[v] + int32(len(per[v]))
	}
	total := x.roOff[n]
	x.roRnet = make([]int32, total)
	x.roBi = make([]int32, total)
	for v := 0; v < n; v++ {
		base := x.roOff[v]
		for i, e := range per[v] {
			x.roRnet[base+int32(i)] = e.rnet
			x.roBi[base+int32(i)] = e.bi
		}
	}
}

func (x *Index) computeBorders() {
	pt := x.PT
	// Vertices are scanned in ascending order, so each node's border list
	// is built already sorted; duplicates (one per outgoing cross edge)
	// arrive adjacently and are dropped with a last-element check — no
	// per-node hash set, no sort (the Section 6.2 container discipline
	// applied to the build path).
	x.borders = make([][]int32, len(pt.Nodes))
	for u := int32(0); u < int32(x.G.NumVertices()); u++ {
		ts, _ := x.G.Neighbors(u)
		leafU := pt.LeafOf[u]
		for _, v := range ts {
			if pt.LeafOf[v] == leafU {
				continue
			}
			n := leafU
			for n != -1 && !pt.Contains(n, v) {
				if bs := x.borders[n]; len(bs) == 0 || bs[len(bs)-1] != u {
					x.borders[n] = append(x.borders[n], u)
				}
				n = pt.Nodes[n].Parent
			}
		}
	}
}

// borderIndex returns v's index within node ni's border list, or -1.
func (x *Index) borderIndex(ni, v int32) int32 {
	bs := x.borders[ni]
	lo, hi := 0, len(bs)
	for lo < hi {
		mid := (lo + hi) / 2
		if bs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(bs) && bs[lo] == v {
		return int32(lo)
	}
	return -1
}

// computeShortcuts fills the global shortcut array bottom-up.
func (x *Index) computeShortcuts() {
	pt := x.PT
	// Allocate matrix offsets.
	x.matOff = make([]int32, len(pt.Nodes)+1)
	for ni := range pt.Nodes {
		b := len(x.borders[ni])
		x.matOff[ni+1] = x.matOff[ni] + int32(b*b)
	}
	x.shorts = make([]int32, x.matOff[len(pt.Nodes)])

	// Bottom-up by level.
	order := make([]int32, len(pt.Nodes))
	for i := range order {
		order[i] = int32(i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && pt.Nodes[order[j]].Level > pt.Nodes[order[j-1]].Level; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	// One stamped position map serves every node's shortcut computation
	// (reset per node in O(1)) — the former per-node map[int32]int32
	// allocations.
	pos := scratch.NewMap32(x.G.NumVertices())
	for _, ni := range order {
		if pt.Nodes[ni].IsLeaf() {
			x.leafShortcuts(ni, pos)
		} else {
			x.innerShortcuts(ni, pos)
		}
	}
}

// Shortcut returns the within-Rnet distance from border index bi to border
// index bj of node ni.
func (x *Index) Shortcut(ni, bi, bj int32) graph.Dist {
	nb := int32(len(x.borders[ni]))
	w := x.shorts[x.matOff[ni]+bi*nb+bj]
	if w >= inf32 {
		return graph.Inf
	}
	return graph.Dist(w)
}

func (x *Index) setShortcut(ni, bi, bj int32, d graph.Dist) {
	nb := int32(len(x.borders[ni]))
	w := inf32
	if d < graph.Dist(inf32) {
		w = int32(d)
	}
	x.shorts[x.matOff[ni]+bi*nb+bj] = w
}

func (x *Index) leafShortcuts(ni int32, pos *scratch.Map32) {
	pt := x.PT
	verts := pt.Nodes[ni].Vertices
	bs := x.borders[ni]
	if len(bs) == 0 {
		return
	}
	off, tgt, w := partition.ExtractCSR(x.G, verts)
	pos.Reset()
	for i, v := range verts {
		pos.Put(v, int32(i))
	}
	dist := make([]graph.Dist, len(verts))
	q := pqueue.NewQueue(len(verts))
	for bi, b := range bs {
		for i := range dist {
			dist[i] = graph.Inf
		}
		q.Reset()
		src, _ := pos.Get(b)
		dist[src] = 0
		q.Push(src, 0)
		for !q.Empty() {
			it := q.Pop()
			v := it.ID
			d := graph.Dist(it.Key)
			if d > dist[v] {
				continue
			}
			for e := off[v]; e < off[v+1]; e++ {
				t := tgt[e]
				if nd := d + graph.Dist(w[e]); nd < dist[t] {
					dist[t] = nd
					q.Push(t, int64(nd))
				}
			}
		}
		for bj, b2 := range bs {
			p, _ := pos.Get(b2)
			x.setShortcut(ni, int32(bi), int32(bj), dist[p])
		}
	}
}

func (x *Index) innerShortcuts(ni int32, pos *scratch.Map32) {
	pt := x.PT
	children := pt.Nodes[ni].Children
	// Border graph vertices: union of child borders.
	var cb []int32
	pos.Reset()
	for _, c := range children {
		for _, b := range x.borders[c] {
			if _, ok := pos.Get(b); !ok {
				pos.Put(b, int32(len(cb)))
				cb = append(cb, b)
			}
		}
	}
	type arc struct {
		to int32
		w  int32
	}
	adj := make([][]arc, len(cb))
	for _, c := range children {
		bs := x.borders[c]
		nb := int32(len(bs))
		for i := int32(0); i < nb; i++ {
			pi, _ := pos.Get(bs[i])
			for j := int32(0); j < nb; j++ {
				if i == j {
					continue
				}
				w := x.shorts[x.matOff[c]+i*nb+j]
				if w < inf32 {
					pj, _ := pos.Get(bs[j])
					adj[pi] = append(adj[pi], arc{pj, w})
				}
			}
		}
	}
	childLevel := pt.Nodes[ni].Level + 1
	for _, u := range cb {
		ui, _ := pos.Get(u)
		ts, ws := x.G.Neighbors(u)
		for i, v := range ts {
			vi, ok := pos.Get(v)
			if !ok {
				continue
			}
			if pt.PartOf(u, childLevel) != pt.PartOf(v, childLevel) {
				adj[ui] = append(adj[ui], arc{vi, ws[i]})
			}
		}
	}
	bs := x.borders[ni]
	dist := make([]graph.Dist, len(cb))
	q := pqueue.NewQueue(len(cb))
	for bi, b := range bs {
		for i := range dist {
			dist[i] = graph.Inf
		}
		q.Reset()
		src, _ := pos.Get(b) // every border of ni is a border of some child
		dist[src] = 0
		q.Push(src, 0)
		for !q.Empty() {
			it := q.Pop()
			v := it.ID
			d := graph.Dist(it.Key)
			if d > dist[v] {
				continue
			}
			for _, a := range adj[v] {
				if nd := d + graph.Dist(a.w); nd < dist[a.to] {
					dist[a.to] = nd
					q.Push(a.to, int64(nd))
				}
			}
		}
		for bj, b2 := range bs {
			p, _ := pos.Get(b2)
			x.setShortcut(ni, int32(bi), int32(bj), dist[p])
		}
	}
}

// SizeBytes estimates the index footprint (shortcut array dominates).
func (x *Index) SizeBytes() int {
	total := len(x.shorts)*4 + len(x.matOff)*4
	for _, b := range x.borders {
		total += len(b) * 4
	}
	return total
}

// AssociationDirectory is ROAD's decoupled object index: one bit per Rnet
// recording whether the Rnet's subgraph contains any object (Section 3.4,
// Figure 18 measures its size and build time), plus the per-Rnet object
// counts that make removals O(hierarchy depth) and a vertex-membership
// bitset for the per-settle IsObject test.
//
// The directory is a dynamic maintainer (the frequently-changing object
// sets of Section 2.2, e.g. parking spaces): Add and Remove adjust the
// counts along one ancestor chain instead of rebuilding, and Clone derives
// an independent copy in three memcpys so an epoch-versioned object store
// can carry the next epoch's directory while queries still read the
// previous one.
type AssociationDirectory struct {
	member *bitset.Set // object vertices
	has    *bitset.Set // Rnet occupancy (count > 0), the Algorithm 5 test
	count  []int32     // objects per Rnet
	n      int         // live object count
}

// NewAssociationDirectory builds the directory for objs.
func (x *Index) NewAssociationDirectory(objs *knn.ObjectSet) *AssociationDirectory {
	ad := &AssociationDirectory{
		member: bitset.New(len(x.PT.LeafOf)),
		has:    bitset.New(len(x.PT.Nodes)),
		count:  make([]int32, len(x.PT.Nodes)),
	}
	for _, v := range objs.Vertices() {
		ad.addLocked(x, v)
	}
	return ad
}

// addLocked is Add without the membership guard (build-time fast path over
// a deduplicated ObjectSet).
func (ad *AssociationDirectory) addLocked(x *Index, v int32) {
	ad.member.Set(v)
	ad.n++
	for n := x.PT.LeafOf[v]; n != -1; n = x.PT.Nodes[n].Parent {
		ad.count[n]++
		ad.has.Set(n)
	}
}

// Clone returns an independent copy of the directory; mutating the clone
// never changes what a reader of the original observes.
func (ad *AssociationDirectory) Clone() *AssociationDirectory {
	return &AssociationDirectory{
		member: ad.member.Clone(),
		has:    ad.has.Clone(),
		count:  append([]int32(nil), ad.count...),
		n:      ad.n,
	}
}

// HasObjects reports whether Rnet ni contains any object.
func (ad *AssociationDirectory) HasObjects(ni int32) bool { return ad.has.Get(ni) }

// IsObject reports whether v is an object vertex.
func (ad *AssociationDirectory) IsObject(v int32) bool { return ad.member.Get(v) }

// Len returns the number of object vertices in the directory.
func (ad *AssociationDirectory) Len() int { return ad.n }

// SizeBytes estimates the directory's footprint including object storage.
func (ad *AssociationDirectory) SizeBytes() int {
	return ad.member.Capacity()/8 + ad.has.Capacity()/8 + len(ad.count)*4
}

// Add registers a new object vertex at query time without rebuilding: the
// counts and occupancy bits along the vertex's ancestor chain are the only
// state touched.
func (ad *AssociationDirectory) Add(x *Index, v int32) {
	if ad.member.Get(v) {
		return
	}
	ad.addLocked(x, v)
}

// Remove deletes an object vertex, decrementing the counts along its
// ancestor chain and clearing the occupancy bit of every Rnet the removal
// empties. Reports whether the vertex was present.
func (ad *AssociationDirectory) Remove(x *Index, v int32) bool {
	if !ad.member.Get(v) {
		return false
	}
	ad.member.Clear(v)
	ad.n--
	for n := x.PT.LeafOf[v]; n != -1; n = x.PT.Nodes[n].Parent {
		ad.count[n]--
		if ad.count[n] == 0 {
			ad.has.Clear(n)
		}
	}
	return true
}

// KNN is the ROAD kNN algorithm (Algorithm 5) bound to an association
// directory. Not safe for concurrent use. All transient search state lives
// on the method value, so a warm query performs no heap allocations.
type KNN struct {
	idx     *Index
	ad      *AssociationDirectory
	settled *bitset.Set
	q       *pqueue.Queue
	dist    []graph.Dist
	stamp   []uint32
	cur     uint32
	// qAnc[level] is the ancestor Rnet of the query leaf at that level,
	// used to reject bypassing any Rnet containing the query in O(1).
	qAnc []int32

	out     []knn.Result
	collect func(knn.Result) bool

	// VerticesBypassed counts, for the last query, the total size of the
	// Rnets bypassed via shortcuts (Figure 9b).
	VerticesBypassed int
}

// NewKNN returns the ROAD kNN method.
func NewKNN(idx *Index, ad *AssociationDirectory) *KNN {
	x := &KNN{
		idx:     idx,
		ad:      ad,
		settled: bitset.New(idx.G.NumVertices()),
		q:       pqueue.NewQueue(1024),
		dist:    make([]graph.Dist, idx.G.NumVertices()),
		stamp:   make([]uint32, idx.G.NumVertices()),
		qAnc:    make([]int32, idx.Levels+1),
	}
	x.collect = func(r knn.Result) bool {
		x.out = append(x.out, r)
		return true
	}
	return x
}

// Name implements knn.Method.
func (x *KNN) Name() string { return "ROAD" }

// SetObjects swaps the association directory.
func (x *KNN) SetObjects(ad *AssociationDirectory) { x.ad = ad }

// KNN implements knn.Method.
func (x *KNN) KNN(qv int32, k int) []knn.Result {
	return x.KNNAppend(qv, k, make([]knn.Result, 0, k))
}

// KNNAppend implements knn.Method's zero-allocation form.
func (x *KNN) KNNAppend(qv int32, k int, dst []knn.Result) []knn.Result {
	x.out = dst
	x.KNNStream(qv, k, x.collect)
	dst = x.out
	x.out = nil
	return dst
}

// KNNStream implements knn.Streamer: the Rnet-bypassing expansion settles
// vertices in nondecreasing distance order, so objects are final (and
// yielded) at settle time; a false return from yield abandons the rest of
// the expansion.
func (x *KNN) KNNStream(qv int32, k int, yield func(knn.Result) bool) {
	idx := x.idx
	pt := idx.PT
	x.settled.Reset()
	x.q.Reset()
	x.VerticesBypassed = 0
	x.cur++
	if x.cur == 0 {
		for i := range x.stamp {
			x.stamp[i] = 0
		}
		x.cur = 1
	}
	found := 0

	leafQ := pt.LeafOf[qv]
	for i := range x.qAnc {
		x.qAnc[i] = -1
	}
	for n := leafQ; n != -1; n = pt.Nodes[n].Parent {
		x.qAnc[pt.Nodes[n].Level] = n
	}
	x.dist[qv] = 0
	x.stamp[qv] = x.cur
	x.q.Push(qv, 0)
	for !x.q.Empty() && found < k {
		it := x.q.Pop()
		v := it.ID
		if x.settled.Get(v) {
			continue
		}
		x.settled.Set(v)
		d := graph.Dist(it.Key)
		if x.ad.IsObject(v) {
			found++
			if !yield(knn.Result{Vertex: v, Dist: d}) {
				break
			}
			if found == k {
				break
			}
		}
		x.relaxShortcuts(v, d, qv, leafQ)
	}
}

var (
	_ knn.Method   = (*KNN)(nil)
	_ knn.Streamer = (*KNN)(nil)
)

// relaxShortcuts walks v's Route Overlay entries from the highest level
// down (Algorithm 6's shortcut-tree descent): the first object-less Rnet
// that v borders and that does not contain the query is bypassed via its
// shortcuts; with no such Rnet, v's ordinary edges are relaxed.
func (x *KNN) relaxShortcuts(v int32, d graph.Dist, qv, leafQ int32) {
	idx := x.idx
	pt := idx.PT
	if pt.LeafOf[v] == leafQ {
		x.relaxEdges(v, d, -1)
		return
	}
	for e := idx.roOff[v]; e < idx.roOff[v+1]; e++ {
		r := idx.roRnet[e]
		lvl := pt.Nodes[r].Level
		if int(lvl) < len(x.qAnc) && x.qAnc[lvl] == r {
			continue // Rnet contains the query; cannot bypass
		}
		if !x.ad.HasObjects(r) {
			x.bypass(r, idx.roBi[e], v, d)
			return
		}
	}
	x.relaxEdges(v, d, -1)
}

// bypass relaxes the shortcuts from border bi of Rnet r plus v's ordinary
// edges that leave r.
func (x *KNN) bypass(r, bi, v int32, d graph.Dist) {
	idx := x.idx
	bs := idx.borders[r]
	nb := int32(len(bs))
	base := idx.matOff[r] + bi*nb
	for bj := int32(0); bj < nb; bj++ {
		t := bs[bj]
		// A.3 improvement: skip already-settled borders.
		if t == v || x.settled.Get(t) {
			continue
		}
		w := idx.shorts[base+bj]
		if w >= inf32 {
			continue
		}
		x.push(t, d+graph.Dist(w))
	}
	x.relaxEdges(v, d, r)
	x.VerticesBypassed += len(idx.PT.Nodes[r].Vertices)
}

// relaxEdges relaxes v's ordinary edges; when skipInside >= 0, edges whose
// target lies inside that Rnet are skipped (they are covered by shortcuts).
func (x *KNN) relaxEdges(v int32, d graph.Dist, skipInside int32) {
	g := x.idx.G
	pt := x.idx.PT
	ts, ws := g.Neighbors(v)
	for i, t := range ts {
		if x.settled.Get(t) {
			continue
		}
		if skipInside >= 0 && pt.Contains(skipInside, t) {
			continue
		}
		x.push(t, d+graph.Dist(ws[i]))
	}
}

// push enqueues t at distance nd unless a better tentative distance is
// already known (the same duplicate suppression INE uses).
func (x *KNN) push(t int32, nd graph.Dist) {
	if x.stamp[t] == x.cur && x.dist[t] <= nd {
		return
	}
	x.dist[t] = nd
	x.stamp[t] = x.cur
	x.q.Push(t, int64(nd))
}

// BordersOf returns the border vertices of Rnet ni (tests and statistics).
func (x *Index) BordersOf(ni int32) []int32 { return x.borders[ni] }
