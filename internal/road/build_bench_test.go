package road_test

import (
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/road"
)

// BenchmarkBuild measures ROAD index construction (the Figure 18 build-time
// surface) on a mid-size grid network — the satellite target of the
// map-free border/position bookkeeping.
func BenchmarkBuild(b *testing.B) {
	g := gen.Network(gen.NetworkSpec{Name: "bench", Rows: 120, Cols: 140, Seed: 7})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		road.Build(g, road.Options{})
	}
}
