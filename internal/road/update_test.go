package road_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/knn"
	"rnknn/internal/road"
)

// TestAssociationDirectoryUpdates drives random Add/Remove operations and
// validates kNN answers against brute force over the evolving set.
func TestAssociationDirectoryUpdates(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 14, Cols: 14, Seed: 151})
	idx := road.Build(g, road.Options{Fanout: 4, Levels: 4})
	rng := rand.New(rand.NewSource(2))

	current := map[int32]bool{}
	initial := gen.Uniform(g, 0.01, 6)
	for _, v := range initial {
		current[v] = true
	}
	ad := idx.NewAssociationDirectory(knn.NewObjectSet(g, initial))
	m := road.NewKNN(idx, ad)

	for step := 0; step < 50; step++ {
		v := int32(rng.Intn(g.NumVertices()))
		if current[v] {
			if !ad.Remove(idx, v) {
				t.Fatalf("Remove(%d) failed", v)
			}
			delete(current, v)
		} else {
			ad.Add(idx, v)
			current[v] = true
		}
		if step%5 != 0 {
			continue
		}
		var verts []int32
		for u := range current {
			verts = append(verts, u)
		}
		objs := knn.NewObjectSet(g, verts)
		q := int32(rng.Intn(g.NumVertices()))
		got := m.KNN(q, 5)
		want := knn.BruteForce(g, objs, q, 5)
		if !knn.SameResults(got, want) {
			t.Fatalf("step %d q=%d: got %s want %s", step, q,
				knn.FormatResults(got), knn.FormatResults(want))
		}
	}
}

func TestAssociationDirectoryAddRemoveCycle(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 8, Cols: 8, Seed: 152})
	idx := road.Build(g, road.Options{Fanout: 4, Levels: 3})
	ad := idx.NewAssociationDirectory(knn.NewObjectSet(g, []int32{5}))
	if !ad.IsObject(5) {
		t.Fatal("initial object missing")
	}
	ad.Add(idx, 9)
	if !ad.IsObject(9) {
		t.Fatal("added object missing")
	}
	if !ad.Remove(idx, 5) || ad.IsObject(5) {
		t.Fatal("base object not removed")
	}
	if !ad.Remove(idx, 9) || ad.IsObject(9) {
		t.Fatal("extra object not removed")
	}
	// Directory must now be empty everywhere.
	for ni := range idx.PT.Nodes {
		if ad.HasObjects(int32(ni)) {
			t.Fatalf("node %d still marked occupied", ni)
		}
	}
	// Re-adding a removed base object works.
	ad.Add(idx, 5)
	if !ad.IsObject(5) || !ad.HasObjects(0) {
		t.Fatal("re-add failed")
	}
}
