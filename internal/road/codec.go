// Binary snapshot codec for ROAD. Persists the partition tree and the
// global shortcut array (the Dijkstra-heavy build products); border lists,
// matrix offsets, and the Route Overlay are recomputed on load by the same
// deterministic linear passes Build runs. Layout v2 uses the snapio raw
// 64-byte-aligned arrays so a mapped snapshot aliases the tree and the
// shortcut array with zero copy; v1 payloads (element-streamed) are still
// read. See docs/SNAPSHOT_FORMAT.md.
package road

import (
	"io"

	"rnknn/internal/graph"
	"rnknn/internal/partition"
	"rnknn/internal/snapio"
)

// codecVersion is the ROAD section layout version.
const codecVersion uint16 = 2

// WriteTo serializes the index (io.WriterTo).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	sw := snapio.NewWriter(w)
	sw.U16(codecVersion)
	sw.U32(uint32(x.Levels))
	partition.Encode(x.PT, sw)
	sw.RawI32s(x.shorts)
	return sw.Result()
}

// Read deserializes an index written by WriteTo, rebuilding borders, matrix
// offsets, and the Route Overlay over g and validating the shortcut array
// length against them.
func Read(sr *snapio.Source, g *graph.Graph) (*Index, error) {
	version := sr.U16()
	if sr.Err() == nil && version != 1 && version != codecVersion {
		sr.Failf("road codec version %d (want 1 or %d)", version, codecVersion)
	}
	levels := int(sr.U32())
	pt := partition.Decode(sr, g.NumVertices(), version != 1)
	var shorts []int32
	if version == 1 {
		shorts = sr.I32s()
	} else {
		shorts = sr.AlignedI32s()
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	x := &Index{G: g, PT: pt, Levels: levels, shorts: shorts}
	x.computeBorders()
	x.matOff = make([]int32, len(pt.Nodes)+1)
	for ni := range pt.Nodes {
		b := len(x.borders[ni])
		x.matOff[ni+1] = x.matOff[ni] + int32(b*b)
	}
	if len(shorts) != int(x.matOff[len(pt.Nodes)]) {
		sr.Failf("road shortcut array has %d cells, borders imply %d",
			len(shorts), x.matOff[len(pt.Nodes)])
		return nil, sr.Err()
	}
	x.buildRouteOverlay()
	return x, nil
}
