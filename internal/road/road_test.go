package road_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/dijkstra"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/road"
)

func testGraph(t testing.TB, seed int64, rows, cols int) *graph.Graph {
	t.Helper()
	return gen.Network(gen.NetworkSpec{Name: "t", Rows: rows, Cols: cols, Seed: seed})
}

func TestShortcutsAreWithinRnetDistances(t *testing.T) {
	g := testGraph(t, 61, 14, 14)
	idx := road.Build(g, road.Options{Fanout: 4, Levels: 3})
	solver := dijkstra.NewSolver(g)
	// Root shortcuts are empty (no borders); level-1 node shortcuts must be
	// >= the global distance (they are constrained to the Rnet) and
	// realizable, i.e. not below global shortest path.
	pt := idx.PT
	for _, ni := range pt.Nodes[0].Children {
		bs := idxBorders(idx, ni)
		for i := int32(0); i < int32(len(bs)); i++ {
			for j := int32(0); j < int32(len(bs)); j++ {
				s := idx.Shortcut(ni, i, j)
				if i == j {
					if s != 0 {
						t.Fatalf("self shortcut = %d", s)
					}
					continue
				}
				if s == graph.Inf {
					continue
				}
				global := solver.Distance(bs[i], bs[j])
				if s < global {
					t.Fatalf("shortcut %d->%d = %d below global %d", bs[i], bs[j], s, global)
				}
			}
		}
	}
}

func idxBorders(idx *road.Index, ni int32) []int32 {
	return idx.BordersOf(ni)
}

func TestKNNMatchesBruteForce(t *testing.T) {
	g := testGraph(t, 62, 18, 18)
	idx := road.Build(g, road.Options{Fanout: 4, Levels: 4})
	rng := rand.New(rand.NewSource(5))
	for _, density := range []float64{0.003, 0.02, 0.2} {
		objs := knn.NewObjectSet(g, gen.Uniform(g, density, 88))
		ad := idx.NewAssociationDirectory(objs)
		m := road.NewKNN(idx, ad)
		for trial := 0; trial < 20; trial++ {
			q := int32(rng.Intn(g.NumVertices()))
			for _, k := range []int{1, 5, 10} {
				got := m.KNN(q, k)
				want := knn.BruteForce(g, objs, q, k)
				if !knn.SameResults(got, want) {
					t.Fatalf("d=%v q=%d k=%d: got %s want %s", density, q, k,
						knn.FormatResults(got), knn.FormatResults(want))
				}
			}
		}
	}
}

func TestKNNTravelTime(t *testing.T) {
	g := testGraph(t, 63, 16, 16).View(graph.TravelTime)
	idx := road.Build(g, road.Options{Fanout: 4, Levels: 4})
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.01, 9))
	m := road.NewKNN(idx, idx.NewAssociationDirectory(objs))
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		q := int32(rng.Intn(g.NumVertices()))
		got := m.KNN(q, 10)
		want := knn.BruteForce(g, objs, q, 10)
		if !knn.SameResults(got, want) {
			t.Fatalf("q=%d: got %s want %s", q, knn.FormatResults(got), knn.FormatResults(want))
		}
	}
}

func TestKNNSparseObjectsFarQuery(t *testing.T) {
	// Sparse objects force long expansions where bypassing matters most.
	g := testGraph(t, 64, 20, 20)
	idx := road.Build(g, road.Options{Fanout: 4, Levels: 5})
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.002, 10))
	m := road.NewKNN(idx, idx.NewAssociationDirectory(objs))
	for _, q := range []int32{0, int32(g.NumVertices() / 2), int32(g.NumVertices() - 1)} {
		got := m.KNN(q, 3)
		want := knn.BruteForce(g, objs, q, 3)
		if !knn.SameResults(got, want) {
			t.Fatalf("q=%d: got %s want %s", q, knn.FormatResults(got), knn.FormatResults(want))
		}
	}
	if m.VerticesBypassed <= 0 {
		t.Fatal("expected some bypassing on sparse objects")
	}
}

func TestAssociationDirectory(t *testing.T) {
	g := testGraph(t, 65, 12, 12)
	idx := road.Build(g, road.Options{Fanout: 4, Levels: 3})
	objs := knn.NewObjectSet(g, []int32{5})
	ad := idx.NewAssociationDirectory(objs)
	if !ad.IsObject(5) || ad.IsObject(6) {
		t.Fatal("IsObject wrong")
	}
	// Exactly the ancestor chain of vertex 5's leaf must have objects.
	pt := idx.PT
	onChain := map[int32]bool{}
	for n := pt.LeafOf[5]; n != -1; n = pt.Nodes[n].Parent {
		onChain[n] = true
	}
	for ni := range pt.Nodes {
		if ad.HasObjects(int32(ni)) != onChain[int32(ni)] {
			t.Fatalf("HasObjects(%d) = %v, want %v", ni, ad.HasObjects(int32(ni)), onChain[int32(ni)])
		}
	}
	if ad.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestKNNMoreThanAvailable(t *testing.T) {
	g := testGraph(t, 66, 10, 10)
	idx := road.Build(g, road.Options{Fanout: 4, Levels: 3})
	objs := knn.NewObjectSet(g, []int32{3, 7})
	m := road.NewKNN(idx, idx.NewAssociationDirectory(objs))
	got := m.KNN(0, 10)
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
}

func TestDefaultLevelsScaleWithSize(t *testing.T) {
	small := road.Build(testGraph(t, 67, 8, 8), road.Options{})
	big := road.Build(testGraph(t, 67, 24, 24), road.Options{})
	if big.Levels <= small.Levels {
		t.Fatalf("levels: small=%d big=%d", small.Levels, big.Levels)
	}
	if small.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}
