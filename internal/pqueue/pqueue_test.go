package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueOrdering(t *testing.T) {
	q := NewQueue(4)
	keys := []int64{5, 3, 9, 1, 7, 3}
	for i, k := range keys {
		q.Push(int32(i), k)
	}
	var got []int64
	for !q.Empty() {
		got = append(got, q.Pop().Key)
	}
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestQueuePropertySorted(t *testing.T) {
	f := func(keys []int16) bool {
		q := NewQueue(0)
		for i, k := range keys {
			q.Push(int32(i), int64(k))
		}
		prev := int64(-1 << 62)
		for !q.Empty() {
			it := q.Pop()
			if it.Key < prev {
				return false
			}
			prev = it.Key
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueueMinKeyAndReset(t *testing.T) {
	q := NewQueue(0)
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("new queue not empty")
	}
	q.Push(1, 10)
	q.Push(2, 4)
	if q.MinKey() != 4 {
		t.Fatalf("MinKey = %d", q.MinKey())
	}
	q.Reset()
	if !q.Empty() {
		t.Fatal("Reset did not empty queue")
	}
}

func TestMaxQueueOrdering(t *testing.T) {
	q := &MaxQueue{}
	for i, k := range []int64{2, 8, 5, 8, 1} {
		q.Push(int32(i), k)
	}
	var got []int64
	for q.Len() > 0 {
		got = append(got, q.Pop().Key)
	}
	want := []int64{8, 8, 5, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("max pop order %v", got)
		}
	}
}

func TestMaxQueueRemove(t *testing.T) {
	q := &MaxQueue{}
	for i := int32(0); i < 20; i++ {
		q.Push(i, int64(i*7%13))
	}
	if !q.Remove(5) {
		t.Fatal("Remove(5) failed")
	}
	if q.Remove(5) {
		t.Fatal("Remove(5) should fail twice")
	}
	prev := int64(1 << 62)
	for q.Len() > 0 {
		it := q.Pop()
		if it.ID == 5 {
			t.Fatal("removed ID popped")
		}
		if it.Key > prev {
			t.Fatalf("heap order violated after Remove")
		}
		prev = it.Key
	}
}

func TestIndexedQueueDecreaseKey(t *testing.T) {
	q := NewIndexedQueue(0)
	q.PushOrDecrease(1, 10)
	q.PushOrDecrease(2, 20)
	if !q.PushOrDecrease(2, 5) {
		t.Fatal("decrease to 5 should succeed")
	}
	if q.PushOrDecrease(2, 7) {
		t.Fatal("increase to 7 should be a no-op")
	}
	it := q.Pop()
	if it.ID != 2 || it.Key != 5 {
		t.Fatalf("pop = %+v, want {2 5}", it)
	}
	it = q.Pop()
	if it.ID != 1 || it.Key != 10 {
		t.Fatalf("pop = %+v, want {1 10}", it)
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestIndexedQueueRandomAgainstQueue(t *testing.T) {
	// With unique ids and monotone insertion, IndexedQueue and a sort give
	// the same order.
	rng := rand.New(rand.NewSource(42))
	q := NewIndexedQueue(0)
	keys := make([]int64, 300)
	for i := range keys {
		keys[i] = int64(rng.Intn(1000))
		q.PushOrDecrease(int32(i), keys[i])
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, want := range sorted {
		if got := q.Pop().Key; got != want {
			t.Fatalf("pop key %d, want %d", got, want)
		}
	}
}
