// Package pqueue provides the binary-heap priority queues used by every
// method in this repository.
//
// The primary queue (Queue) follows the paper's main-memory guidance
// (Section 6.2, choice 1): it does not support decrease-key. Stale duplicate
// entries are allowed and filtered by the caller against its settled
// container, which on degree-bounded road networks is cheaper than
// maintaining a position index for key updates. An IndexedQueue with
// decrease-key is provided for the ablation benchmark.
package pqueue

// Item is a heap entry: an identifier ordered by Key.
type Item struct {
	ID  int32
	Key int64
}

// Queue is a binary min-heap of Items without decrease-key. The zero value
// is an empty queue ready to use.
type Queue struct {
	a []Item
}

// NewQueue returns a queue with capacity hint n.
func NewQueue(n int) *Queue { return &Queue{a: make([]Item, 0, n)} }

// Len returns the number of entries, counting duplicates.
func (q *Queue) Len() int { return len(q.a) }

// Reset empties the queue, retaining capacity.
func (q *Queue) Reset() { q.a = q.a[:0] }

// Push inserts id with the given key.
func (q *Queue) Push(id int32, key int64) {
	q.a = append(q.a, Item{id, key})
	q.up(len(q.a) - 1)
}

// Pop removes and returns the minimum-key item. It panics on an empty queue.
func (q *Queue) Pop() Item {
	top := q.a[0]
	last := len(q.a) - 1
	q.a[0] = q.a[last]
	q.a = q.a[:last]
	if last > 0 {
		q.down(0)
	}
	return top
}

// MinKey returns the smallest key without removing it, or max int64 if empty.
func (q *Queue) MinKey() int64 {
	if len(q.a) == 0 {
		return int64(^uint64(0) >> 1)
	}
	return q.a[0].Key
}

// Empty reports whether the queue has no entries.
func (q *Queue) Empty() bool { return len(q.a) == 0 }

func (q *Queue) up(i int) {
	item := q.a[i]
	for i > 0 {
		parent := (i - 1) / 2
		if q.a[parent].Key <= item.Key {
			break
		}
		q.a[i] = q.a[parent]
		i = parent
	}
	q.a[i] = item
}

func (q *Queue) down(i int) {
	item := q.a[i]
	n := len(q.a)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && q.a[r].Key < q.a[l].Key {
			c = r
		}
		if q.a[c].Key >= item.Key {
			break
		}
		q.a[i] = q.a[c]
		i = c
	}
	q.a[i] = item
}

// MaxQueue is a binary max-heap of Items, used for the candidate list L in
// Distance Browsing (largest upper bound at the top). The zero value is
// ready to use.
type MaxQueue struct {
	a []Item
}

// Len returns the number of entries.
func (q *MaxQueue) Len() int { return len(q.a) }

// Reset empties the queue, retaining capacity.
func (q *MaxQueue) Reset() { q.a = q.a[:0] }

// Push inserts id with the given key.
func (q *MaxQueue) Push(id int32, key int64) {
	q.a = append(q.a, Item{id, key})
	i := len(q.a) - 1
	item := q.a[i]
	for i > 0 {
		parent := (i - 1) / 2
		if q.a[parent].Key >= item.Key {
			break
		}
		q.a[i] = q.a[parent]
		i = parent
	}
	q.a[i] = item
}

// Pop removes and returns the maximum-key item. It panics on an empty queue.
func (q *MaxQueue) Pop() Item {
	top := q.a[0]
	last := len(q.a) - 1
	q.a[0] = q.a[last]
	q.a = q.a[:last]
	n := len(q.a)
	i := 0
	if n > 0 {
		item := q.a[0]
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			c := l
			if r := l + 1; r < n && q.a[r].Key > q.a[l].Key {
				c = r
			}
			if q.a[c].Key <= item.Key {
				break
			}
			q.a[i] = q.a[c]
			i = c
		}
		q.a[i] = item
	}
	return top
}

// MaxKey returns the largest key without removing it, or min int64 if empty.
func (q *MaxQueue) MaxKey() int64 {
	if len(q.a) == 0 {
		return -int64(^uint64(0)>>1) - 1
	}
	return q.a[0].Key
}

// Items returns the underlying entries in heap (not sorted) order. The slice
// aliases internal storage.
func (q *MaxQueue) Items() []Item { return q.a }

// Remove deletes the first entry with the given id, if present, and reports
// whether one was removed. It is O(n) and used only where Distance Browsing
// must delete a candidate from L.
func (q *MaxQueue) Remove(id int32) bool {
	for i := range q.a {
		if q.a[i].ID == id {
			last := len(q.a) - 1
			q.a[i] = q.a[last]
			q.a = q.a[:last]
			if i < len(q.a) {
				q.fix(i)
			}
			return true
		}
	}
	return false
}

func (q *MaxQueue) fix(i int) {
	// Sift up then down to restore heap order at i.
	item := q.a[i]
	j := i
	for j > 0 {
		parent := (j - 1) / 2
		if q.a[parent].Key >= item.Key {
			break
		}
		q.a[j] = q.a[parent]
		j = parent
	}
	q.a[j] = item
	n := len(q.a)
	i = j
	item = q.a[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && q.a[r].Key > q.a[l].Key {
			c = r
		}
		if q.a[c].Key <= item.Key {
			break
		}
		q.a[i] = q.a[c]
		i = c
	}
	q.a[i] = item
}

// IndexedQueue is a binary min-heap with decrease-key, keyed by vertex id.
// It exists to quantify the cost the paper attributes to decrease-key
// bookkeeping (Figure 7, "PQueue"); the production algorithms use Queue.
type IndexedQueue struct {
	a   []Item
	pos map[int32]int
}

// NewIndexedQueue returns an indexed queue with capacity hint n.
func NewIndexedQueue(n int) *IndexedQueue {
	return &IndexedQueue{a: make([]Item, 0, n), pos: make(map[int32]int, n)}
}

// Len returns the number of entries.
func (q *IndexedQueue) Len() int { return len(q.a) }

// Empty reports whether the queue has no entries.
func (q *IndexedQueue) Empty() bool { return len(q.a) == 0 }

// PushOrDecrease inserts id with key, or lowers its key if already present
// with a larger key. It reports whether the queue changed.
func (q *IndexedQueue) PushOrDecrease(id int32, key int64) bool {
	if i, ok := q.pos[id]; ok {
		if q.a[i].Key <= key {
			return false
		}
		q.a[i].Key = key
		q.up(i)
		return true
	}
	q.a = append(q.a, Item{id, key})
	q.pos[id] = len(q.a) - 1
	q.up(len(q.a) - 1)
	return true
}

// Pop removes and returns the minimum-key item.
func (q *IndexedQueue) Pop() Item {
	top := q.a[0]
	last := len(q.a) - 1
	q.swap(0, last)
	q.a = q.a[:last]
	delete(q.pos, top.ID)
	if last > 0 {
		q.down(0)
	}
	return top
}

func (q *IndexedQueue) swap(i, j int) {
	q.a[i], q.a[j] = q.a[j], q.a[i]
	q.pos[q.a[i].ID] = i
	q.pos[q.a[j].ID] = j
}

func (q *IndexedQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.a[parent].Key <= q.a[i].Key {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *IndexedQueue) down(i int) {
	n := len(q.a)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && q.a[r].Key < q.a[l].Key {
			c = r
		}
		if q.a[c].Key >= q.a[i].Key {
			break
		}
		q.swap(i, c)
		i = c
	}
}
