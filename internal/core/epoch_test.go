package core

import (
	"math/rand"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/knn"
)

// TestNextBindingMatchesBulkRebuild chains NextBinding through a random
// Insert/Remove workload and checks, at every epoch and for every method
// kind, that a session bound to the incrementally derived binding answers
// exactly like one bound to a bulk NewBinding of the same set — the
// churn-equivalence property at the core layer.
func TestNextBindingMatchesBulkRebuild(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 12, Cols: 12, Seed: 91})
	e := New(g)
	kinds := []MethodKind{INE, IERDijk, Gtree, ROAD, DisBrw, DisBrwOH}
	rng := rand.New(rand.NewSource(92))

	current := map[int32]bool{}
	initial := gen.Uniform(g, 0.05, 7)
	for _, v := range initial {
		current[v] = true
	}
	b := e.NewBinding(knn.NewObjectSet(g, initial), kinds)

	for step := 0; step < 40; step++ {
		var add, remove []int32
		for i := 0; i < 1+rng.Intn(3); i++ {
			v := int32(rng.Intn(g.NumVertices()))
			if current[v] {
				remove = append(remove, v)
				delete(current, v)
			} else {
				add = append(add, v)
				current[v] = true
			}
		}
		prev := b
		b = e.NextBinding(b, add, remove)
		if b == prev {
			t.Fatalf("step %d: non-empty delta returned the same binding", step)
		}
		if b.Epoch != prev.Epoch+1 {
			t.Fatalf("step %d: epoch %d after %d", step, b.Epoch, prev.Epoch)
		}

		var verts []int32
		for v := range current {
			verts = append(verts, v)
		}
		fresh := e.NewBinding(knn.NewObjectSet(g, verts), kinds)
		if b.Objs.Len() != fresh.Objs.Len() {
			t.Fatalf("step %d: %d objects, fresh has %d", step, b.Objs.Len(), fresh.Objs.Len())
		}
		q := int32(rng.Intn(g.NumVertices()))
		for _, kind := range kinds {
			inc, err := e.NewSession(kind, b)
			if err != nil {
				t.Fatal(err)
			}
			bulk, err := e.NewSession(kind, fresh)
			if err != nil {
				t.Fatal(err)
			}
			got := inc.KNN(q, 4)
			want := bulk.KNN(q, 4)
			if !knn.SameResults(got, want) {
				t.Fatalf("step %d %v q=%d: incremental %s bulk %s", step, kind, q,
					knn.FormatResults(got), knn.FormatResults(want))
			}
		}
	}
}

// TestNextBindingPinnedEpochUnchanged mutates through several epochs and
// checks the first epoch still answers from its original object set.
func TestNextBindingPinnedEpochUnchanged(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 10, Cols: 10, Seed: 93})
	e := New(g)
	kinds := []MethodKind{INE, IERDijk, Gtree, ROAD}
	initial := gen.Uniform(g, 0.1, 8)
	objs0 := knn.NewObjectSet(g, initial)
	b0 := e.NewBinding(objs0, kinds)

	q := int32(42)
	var before [][]knn.Result
	for _, kind := range kinds {
		s, err := e.NewSession(kind, b0)
		if err != nil {
			t.Fatal(err)
		}
		before = append(before, s.KNN(q, 5))
	}

	// Churn hard: remove every original object, add a disjoint set.
	b := b0
	for _, v := range objs0.Vertices() {
		b = e.NextBinding(b, []int32{(v + 1) % int32(g.NumVertices())}, []int32{v})
	}
	if b.Epoch == 0 {
		t.Fatal("churn did not advance the epoch")
	}

	for i, kind := range kinds {
		s, err := e.NewSession(kind, b0)
		if err != nil {
			t.Fatal(err)
		}
		after := s.KNN(q, 5)
		if !knn.SameResults(before[i], after) {
			t.Fatalf("%v: pinned epoch changed: %s -> %s", kind,
				knn.FormatResults(before[i]), knn.FormatResults(after))
		}
	}

	// The no-op delta returns the same binding.
	if e.NextBinding(b, nil, nil) != b {
		t.Fatal("empty delta produced a new epoch")
	}
}
