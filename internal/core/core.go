// Package core is the library's engine room: an Engine that owns a road
// network, lazily builds each road-network index exactly once (recording
// build time and size), and manufactures kNN methods — any of the paper's
// five algorithms, with IER composable over any distance oracle — bound to
// interchangeable object sets (the decoupled-index design of Section 2.2).
//
// The public, concurrency-safe entry point to the library is pkg/rnknn: its
// DB facade pools the query sessions manufactured here (NewSession) and
// multiplexes concurrent callers over one Engine. Use core directly only
// from the experiment harness and other single-goroutine internal code:
//
//	g := gen.Network(gen.NetworkSpec{Name: "city", Rows: 96, Cols: 120, Seed: 1})
//	e := core.New(g)
//	hospitals := knn.NewObjectSet(g, hospitalVertices)
//	m, _ := e.NewMethod(core.IERPHL, hospitals)
//	results := m.KNN(query, 10)
//
// Index construction is serialized by an internal mutex, so concurrent
// sessions may trigger lazy builds safely; the methods returned by
// NewMethod and the sessions returned by NewSession are each
// single-goroutine objects.
package core

import (
	"fmt"
	"sync"
	"time"

	"rnknn/internal/ch"
	"rnknn/internal/graph"
	"rnknn/internal/gtree"
	"rnknn/internal/ier"
	"rnknn/internal/ine"
	"rnknn/internal/knn"
	"rnknn/internal/phl"
	"rnknn/internal/road"
	"rnknn/internal/silc"
	"rnknn/internal/tnr"
)

// MethodKind identifies a kNN method configuration.
type MethodKind int

const (
	// INE is Incremental Network Expansion (Section 3.1).
	INE MethodKind = iota
	// IERDijk is IER with a resumable Dijkstra oracle (the original IER).
	IERDijk
	// IERCH is IER with a Contraction Hierarchies oracle.
	IERCH
	// IERTNR is IER with a Transit Node Routing oracle.
	IERTNR
	// IERPHL is IER with the hub-labeling (PHL) oracle.
	IERPHL
	// IERGt is IER with the materialized G-tree oracle (MGtree).
	IERGt
	// Gtree is the G-tree kNN algorithm (Section 3.5, Algorithm 3).
	Gtree
	// ROAD is Route Overlay and Association Directory (Section 3.4).
	ROAD
	// DisBrw is Distance Browsing in its DB-ENN form (Appendix A.1.1).
	DisBrw
	// DisBrwOH is Distance Browsing with the original Object Hierarchy.
	DisBrwOH
	numKinds
)

// Kinds lists every method kind in display order.
func Kinds() []MethodKind {
	return []MethodKind{INE, IERDijk, IERCH, IERTNR, IERPHL, IERGt, Gtree, ROAD, DisBrw, DisBrwOH}
}

func (k MethodKind) String() string {
	switch k {
	case INE:
		return "INE"
	case IERDijk:
		return "IER-Dijk"
	case IERCH:
		return "IER-CH"
	case IERTNR:
		return "IER-TNR"
	case IERPHL:
		return "IER-PHL"
	case IERGt:
		return "IER-Gt"
	case Gtree:
		return "Gtree"
	case ROAD:
		return "ROAD"
	case DisBrw:
		return "DisBrw"
	case DisBrwOH:
		return "DisBrw-OH"
	}
	return fmt.Sprintf("MethodKind(%d)", int(k))
}

// Options tunes index construction; zero values use the defaults each index
// derives from the network size (matching the paper's parameter choices).
type Options struct {
	GtreeFanout int
	GtreeTau    int
	RoadFanout  int
	RoadLevels  int
	NumTransit  int
	// SILCParallelism bounds the SILC build workers.
	SILCParallelism int
}

// Engine owns one road network and its lazily built indexes.
type Engine struct {
	G    *graph.Graph
	Opts Options

	// mu serializes lazy index construction (and guards BuildTimes), so
	// concurrent query sessions may trigger first-use builds safely. The
	// built indexes themselves are immutable and read lock-free.
	mu   sync.Mutex
	gt   *gtree.Index
	rd   *road.Index
	sc   *silc.Index
	chx  *ch.Index
	phlx *phl.Index
	tnrx *tnr.Index

	// BuildTimes records the wall-clock construction time of each index by
	// name ("Gtree", "ROAD", "SILC", "CH", "PHL", "TNR") — or, for indexes
	// installed by LoadIndexes, the snapshot decode time. Read it only
	// after the builds of interest have completed (single-goroutine
	// harness code); concurrent readers use BuiltIndexes.
	BuildTimes map[string]time.Duration

	// loaded marks indexes that came from a snapshot (LoadIndexes) rather
	// than being constructed; guarded by mu, surfaced via IndexInfo.Loaded.
	loaded map[string]bool

	// fp memoizes the graph fingerprint (see Fingerprint).
	fpOnce sync.Once
	fp     uint64
}

// New creates an engine over g with default options.
func New(g *graph.Graph) *Engine {
	return &Engine{G: g, BuildTimes: map[string]time.Duration{}}
}

func (e *Engine) timed(name string, f func()) {
	start := time.Now()
	f()
	e.BuildTimes[name] = time.Since(start)
}

// GtreeIndex returns the engine's G-tree, building it on first use.
func (e *Engine) GtreeIndex() *gtree.Index {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gtreeLocked()
}

func (e *Engine) gtreeLocked() *gtree.Index {
	if e.gt == nil {
		e.timed("Gtree", func() {
			e.gt = gtree.Build(e.G, gtree.Options{Fanout: e.Opts.GtreeFanout, Tau: e.Opts.GtreeTau})
		})
	}
	return e.gt
}

// ROADIndex returns the engine's ROAD index, building it on first use.
func (e *Engine) ROADIndex() *road.Index {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rd == nil {
		e.timed("ROAD", func() {
			e.rd = road.Build(e.G, road.Options{Fanout: e.Opts.RoadFanout, Levels: e.Opts.RoadLevels})
		})
	}
	return e.rd
}

// SILCIndex returns the engine's SILC index, building it on first use.
// Beware the O(|V|^2 log |V|) build; the paper limits SILC to the smaller
// networks and so does the experiment harness.
func (e *Engine) SILCIndex() *silc.Index {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sc == nil {
		e.timed("SILC", func() {
			e.sc = silc.Build(e.G, silc.Options{Parallelism: e.Opts.SILCParallelism})
		})
	}
	return e.sc
}

// CHIndex returns the engine's contraction hierarchy, building it on first
// use.
func (e *Engine) CHIndex() *ch.Index {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.chLocked()
}

func (e *Engine) chLocked() *ch.Index {
	if e.chx == nil {
		e.timed("CH", func() { e.chx = ch.Build(e.G) })
	}
	return e.chx
}

// PHLIndex returns the engine's hub labeling, building it on first use (the
// contraction hierarchy is shared with CHIndex).
func (e *Engine) PHLIndex() *phl.Index {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.phlx == nil {
		hierarchy := e.chLocked()
		e.timed("PHL", func() { e.phlx = phl.Build(e.G, hierarchy) })
	}
	return e.phlx
}

// TNRIndex returns the engine's transit-node index, building it on first
// use (the contraction hierarchy is shared with CHIndex).
func (e *Engine) TNRIndex() *tnr.Index {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tnrx == nil {
		hierarchy := e.chLocked()
		e.timed("TNR", func() {
			e.tnrx = tnr.Build(e.G, hierarchy, tnr.Options{NumTransit: e.Opts.NumTransit})
		})
	}
	return e.tnrx
}

// EnsureIndex builds the road-network index a method kind depends on, if
// any (pkg/rnknn calls this at Open so queries never pay construction).
func (e *Engine) EnsureIndex(kind MethodKind) {
	switch kind {
	case IERCH:
		e.CHIndex()
	case IERTNR:
		e.TNRIndex()
	case IERPHL:
		e.PHLIndex()
	case IERGt, Gtree:
		e.GtreeIndex()
	case ROAD:
		e.ROADIndex()
	case DisBrw, DisBrwOH:
		e.SILCIndex()
	}
}

// IndexInfo describes one built road-network index for stats reporting.
type IndexInfo struct {
	// BuildTime is the construction time, or the snapshot decode time when
	// Loaded is true.
	BuildTime time.Duration
	SizeBytes int
	// Loaded reports that the index was installed by LoadIndexes instead of
	// being built.
	Loaded bool
}

// BuiltIndexes reports every index built so far by name — the observability
// hook behind pkg/rnknn's DB.Stats. Safe for concurrent use.
func (e *Engine) BuiltIndexes() map[string]IndexInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := map[string]IndexInfo{}
	if e.gt != nil {
		out["Gtree"] = IndexInfo{e.BuildTimes["Gtree"], e.gt.SizeBytes(), e.loaded["Gtree"]}
	}
	if e.rd != nil {
		out["ROAD"] = IndexInfo{e.BuildTimes["ROAD"], e.rd.SizeBytes(), e.loaded["ROAD"]}
	}
	if e.sc != nil {
		out["SILC"] = IndexInfo{e.BuildTimes["SILC"], e.sc.SizeBytes(), e.loaded["SILC"]}
	}
	if e.chx != nil {
		out["CH"] = IndexInfo{e.BuildTimes["CH"], e.chx.SizeBytes(), e.loaded["CH"]}
	}
	if e.phlx != nil {
		out["PHL"] = IndexInfo{e.BuildTimes["PHL"], e.phlx.SizeBytes(), e.loaded["PHL"]}
	}
	if e.tnrx != nil {
		out["TNR"] = IndexInfo{e.BuildTimes["TNR"], e.tnrx.SizeBytes(), e.loaded["TNR"]}
	}
	return out
}

// NewMethod builds a kNN method of the given kind over the object set,
// constructing the required road-network index (once) and the method's
// decoupled object index.
func (e *Engine) NewMethod(kind MethodKind, objs *knn.ObjectSet) (knn.Method, error) {
	switch kind {
	case INE:
		return ine.New(e.G, objs), nil
	case IERDijk:
		return ier.New("IER-Dijk", e.G, objs, &ier.DijkstraFactory{G: e.G}), nil
	case IERCH:
		return ier.New("IER-CH", e.G, objs, &ier.OracleFactory{Oracle: e.CHIndex()}), nil
	case IERTNR:
		return ier.New("IER-TNR", e.G, objs, &ier.OracleFactory{Oracle: e.TNRIndex()}), nil
	case IERPHL:
		return ier.New("IER-PHL", e.G, objs, &ier.OracleFactory{Oracle: e.PHLIndex()}), nil
	case IERGt:
		return ier.New("IER-Gt", e.G, objs, &gtree.Factory{Idx: e.GtreeIndex()}), nil
	case Gtree:
		idx := e.GtreeIndex()
		return gtree.NewKNN(idx, idx.NewOccurrenceList(objs)), nil
	case ROAD:
		idx := e.ROADIndex()
		return road.NewKNN(idx, idx.NewAssociationDirectory(objs)), nil
	case DisBrw:
		return silc.NewDBENN(e.SILCIndex(), objs), nil
	case DisBrwOH:
		idx := e.SILCIndex()
		return silc.NewDisBrw(idx, idx.NewObjectHierarchy(objs, 0)), nil
	default:
		return nil, fmt.Errorf("core: unknown method kind %v", kind)
	}
}

// IndexSize returns the built size in bytes of the road-network index a
// method kind depends on (the graph itself for INE and IER-Dijk, mirroring
// the paper's "INE uses only the original graph" baseline in Figure 8).
func (e *Engine) IndexSize(kind MethodKind) int {
	switch kind {
	case INE, IERDijk:
		return graphSizeBytes(e.G)
	case IERCH:
		return e.CHIndex().SizeBytes()
	case IERTNR:
		return e.TNRIndex().SizeBytes()
	case IERPHL:
		return e.PHLIndex().SizeBytes()
	case IERGt, Gtree:
		return e.GtreeIndex().SizeBytes()
	case ROAD:
		return e.ROADIndex().SizeBytes()
	case DisBrw, DisBrwOH:
		return e.SILCIndex().SizeBytes()
	}
	return 0
}

func graphSizeBytes(g *graph.Graph) int {
	return len(g.Offsets)*4 + len(g.Targets)*4 + len(g.DistW)*4 + len(g.TimeW)*4 + len(g.X)*16
}
