package core_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/snapshot"
)

// snapshotGraphs returns the three networks every round-trip property is
// checked on: two different topologies plus a travel-time view (whose
// indexes — and fingerprint — differ from the distance view of the same
// grid).
func snapshotGraphs() []*graph.Graph {
	a := gen.Network(gen.NetworkSpec{Name: "snapA", Rows: 10, Cols: 14, Seed: 31})
	b := gen.Network(gen.NetworkSpec{Name: "snapB", Rows: 14, Cols: 9, Seed: 77})
	c := gen.Network(gen.NetworkSpec{Name: "snapC", Rows: 12, Cols: 12, Seed: 5}).View(graph.TravelTime)
	return []*graph.Graph{a, b, c}
}

func buildAll(e *core.Engine) {
	for _, kind := range core.Kinds() {
		e.EnsureIndex(kind)
	}
}

// TestSnapshotRoundTripAllMethods is the round-trip property test: for every
// graph and every method kind, an engine warm-started from a snapshot must
// return results identical (vertex and distance) to the engine that built
// its indexes live.
func TestSnapshotRoundTripAllMethods(t *testing.T) {
	for _, g := range snapshotGraphs() {
		built := core.New(g)
		buildAll(built)

		var buf bytes.Buffer
		if err := built.SaveIndexes(&buf); err != nil {
			t.Fatalf("%s: save: %v", g.Name, err)
		}
		loaded := core.New(g)
		if err := loaded.LoadIndexes(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("%s: load: %v", g.Name, err)
		}
		for name, info := range loaded.BuiltIndexes() {
			if !info.Loaded {
				t.Fatalf("%s: index %s not marked loaded", g.Name, name)
			}
		}
		if len(loaded.BuiltIndexes()) != len(built.BuiltIndexes()) {
			t.Fatalf("%s: loaded %d indexes, built %d", g.Name,
				len(loaded.BuiltIndexes()), len(built.BuiltIndexes()))
		}

		objs := knn.NewObjectSet(g, gen.Uniform(g, 0.03, 11))
		rng := rand.New(rand.NewSource(2))
		queries := make([]int32, 6)
		for i := range queries {
			queries[i] = int32(rng.Intn(g.NumVertices()))
		}
		for _, kind := range core.Kinds() {
			mBuilt, err := built.NewMethod(kind, objs)
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			mLoaded, err := loaded.NewMethod(kind, objs)
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			for _, q := range queries {
				for _, k := range []int{1, 5, 12} {
					want := mBuilt.KNN(q, k)
					got := mLoaded.KNN(q, k)
					if len(got) != len(want) {
						t.Fatalf("%s %v q=%d k=%d: %d vs %d results", g.Name, kind, q, k, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s %v q=%d k=%d: result %d differs: got %+v want %+v\nall got %s\nall want %s",
								g.Name, kind, q, k, i, got[i], want[i],
								knn.FormatResults(got), knn.FormatResults(want))
						}
					}
				}
			}
		}
	}
}

// TestSnapshotLoadDoesNotRebuild asserts a loaded index satisfies the lazy
// getters without reconstruction.
func TestSnapshotLoadDoesNotRebuild(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "snapD", Rows: 8, Cols: 8, Seed: 3})
	built := core.New(g)
	built.EnsureIndex(core.Gtree)
	built.EnsureIndex(core.IERPHL)
	var buf bytes.Buffer
	if err := built.SaveIndexes(&buf); err != nil {
		t.Fatal(err)
	}

	loaded := core.New(g)
	if err := loaded.LoadIndexes(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	gt := loaded.GtreeIndex()
	if loaded.GtreeIndex() != gt {
		t.Fatal("G-tree rebuilt after load")
	}
	info := loaded.BuiltIndexes()
	for _, name := range []string{"Gtree", "CH", "PHL"} {
		ix, ok := info[name]
		if !ok || !ix.Loaded {
			t.Fatalf("index %s missing or not loaded: %+v", name, info)
		}
	}
	// An index absent from the snapshot still lazy-builds.
	if loaded.ROADIndex() == nil {
		t.Fatal("ROAD did not build")
	}
	if loaded.BuiltIndexes()["ROAD"].Loaded {
		t.Fatal("freshly built ROAD marked loaded")
	}
}

// TestSnapshotGraphMismatchRejected asserts a snapshot saved over one graph
// refuses to load against another.
func TestSnapshotGraphMismatchRejected(t *testing.T) {
	g1 := gen.Network(gen.NetworkSpec{Name: "snapE", Rows: 8, Cols: 8, Seed: 4})
	g2 := gen.Network(gen.NetworkSpec{Name: "snapE", Rows: 8, Cols: 8, Seed: 5})
	e1 := core.New(g1)
	e1.EnsureIndex(core.Gtree)
	var buf bytes.Buffer
	if err := e1.SaveIndexes(&buf); err != nil {
		t.Fatal(err)
	}
	e2 := core.New(g2)
	err := e2.LoadIndexes(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, snapshot.ErrFingerprintMismatch) {
		t.Fatalf("want ErrFingerprintMismatch, got %v", err)
	}
	// The weight view is part of the fingerprint too.
	e3 := core.New(g1.View(graph.TravelTime))
	if err := e3.LoadIndexes(bytes.NewReader(buf.Bytes())); !errors.Is(err, snapshot.ErrFingerprintMismatch) {
		t.Fatalf("want ErrFingerprintMismatch for weight view, got %v", err)
	}
}

// TestSnapshotCorruptionRejected flips or truncates bytes across the whole
// file and asserts the typed error (never a panic, never silent success).
func TestSnapshotCorruptionRejected(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "snapF", Rows: 8, Cols: 8, Seed: 6})
	e := core.New(g)
	e.EnsureIndex(core.Gtree)
	e.EnsureIndex(core.IERTNR)
	var buf bytes.Buffer
	if err := e.SaveIndexes(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for _, cut := range []int{1, len(data) / 3, len(data) - 1} {
		err := core.New(g).LoadIndexes(bytes.NewReader(data[:cut]))
		if !errors.Is(err, snapshot.ErrBadSnapshot) {
			t.Fatalf("truncate at %d: want ErrBadSnapshot, got %v", cut, err)
		}
	}
	// Flip one byte at several positions; any error must be the typed
	// sentinel family (fingerprint bytes yield the mismatch error instead).
	for pos := 0; pos < len(data); pos += len(data)/13 + 1 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		err := core.New(g).LoadIndexes(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flip at %d: corruption not detected", pos)
		}
		if !errors.Is(err, snapshot.ErrBadSnapshot) && !errors.Is(err, snapshot.ErrFingerprintMismatch) {
			t.Fatalf("flip at %d: untyped error %v", pos, err)
		}
	}
}

// TestSnapshotTNRWithoutCHRejected asserts the dependency check: a TNR
// section cannot be installed without a hierarchy to hang it on.
func TestSnapshotTNRWithoutCHRejected(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "snapG", Rows: 8, Cols: 8, Seed: 7})
	e := core.New(g)
	e.EnsureIndex(core.IERTNR)
	var buf bytes.Buffer
	if err := e.SaveIndexes(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-frame the container keeping only the TNR section.
	payloads, err := snapshot.Read(bytes.NewReader(buf.Bytes()), snapshot.Fingerprint(g))
	if err != nil {
		t.Fatal(err)
	}
	var secs []snapshot.Section
	for _, p := range payloads {
		if p.Name != "TNR" {
			continue
		}
		data := p.Data
		secs = append(secs, snapshot.Section{Name: p.Name, Encode: func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		}})
	}
	if len(secs) != 1 {
		t.Fatalf("expected a TNR section, got %d", len(secs))
	}
	var tnrOnly bytes.Buffer
	if err := snapshot.Write(&tnrOnly, snapshot.Fingerprint(g), secs); err != nil {
		t.Fatal(err)
	}
	if err := core.New(g).LoadIndexes(bytes.NewReader(tnrOnly.Bytes())); !errors.Is(err, snapshot.ErrBadSnapshot) {
		t.Fatalf("want ErrBadSnapshot for TNR without CH, got %v", err)
	}
}
