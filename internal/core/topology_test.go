package core_test

import (
	"math"
	"math/rand"
	"testing"

	"rnknn/internal/core"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

// Adversarial topologies: a pure cycle (every vertex degree 2 — the chain
// optimisation's extreme), a line (degree 1 endpoints), a star (one hub),
// and a dumbbell (two blobs joined by a long chain — remote queries).

func ringGraph(n int) *graph.Graph {
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		x[i] = 1000 * math.Cos(a)
		y[i] = 1000 * math.Sin(a)
	}
	b := graph.NewBuilder(n, x, y)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		d := int32(math.Ceil(math.Hypot(x[i]-x[j], y[i]-y[j]))) + 1
		b.AddEdge(int32(i), int32(j), d, d)
	}
	return b.Build("ring")
}

func lineGraph(n int) *graph.Graph {
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * 50
	}
	b := graph.NewBuilder(n, x, y)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1), 55, 20)
	}
	return b.Build("line")
}

func starGraph(n int) *graph.Graph {
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 1; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n-1)
		x[i] = 500 * math.Cos(a)
		y[i] = 500 * math.Sin(a)
	}
	b := graph.NewBuilder(n, x, y)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i), 520, 130)
	}
	return b.Build("star")
}

func dumbbellGraph(side, chain int) *graph.Graph {
	n := 2*side + chain
	x := make([]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < side; i++ {
		x[i] = rng.Float64() * 300
		y[i] = rng.Float64() * 300
		x[side+chain+i] = 20000 + rng.Float64()*300
		y[side+chain+i] = rng.Float64() * 300
	}
	for i := 0; i < chain; i++ {
		x[side+i] = 400 + float64(i+1)*19000/float64(chain+1)
		y[side+i] = 150
	}
	b := graph.NewBuilder(n, x, y)
	add := func(u, v int) {
		d := int32(math.Ceil(math.Hypot(x[u]-x[v], y[u]-y[v]))) + 1
		b.AddEdge(int32(u), int32(v), d, d/2+1)
	}
	// Dense-ish blobs: each vertex linked to the next two.
	for i := 0; i+1 < side; i++ {
		add(i, i+1)
		if i+2 < side {
			add(i, i+2)
		}
		add(side+chain+i, side+chain+i+1)
		if i+2 < side {
			add(side+chain+i, side+chain+i+2)
		}
	}
	// Chain joining the blobs.
	add(side-1, side)
	for i := 0; i+1 < chain; i++ {
		add(side+i, side+i+1)
	}
	add(side+chain-1, side+chain)
	return b.Build("dumbbell")
}

func TestAllMethodsOnAdversarialTopologies(t *testing.T) {
	graphs := []*graph.Graph{
		ringGraph(60),
		lineGraph(80),
		starGraph(40),
		dumbbellGraph(30, 40),
	}
	rng := rand.New(rand.NewSource(4))
	for _, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", g.Name, err)
		}
		e := core.New(g)
		n := g.NumVertices()
		// A handful of objects spread over the topology.
		var verts []int32
		for i := 0; i < 6; i++ {
			verts = append(verts, int32(rng.Intn(n)))
		}
		objs := knn.NewObjectSet(g, verts)
		for _, kind := range core.Kinds() {
			m, err := e.NewMethod(kind, objs)
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Name, kind, err)
			}
			for trial := 0; trial < 8; trial++ {
				q := int32(rng.Intn(n))
				k := 1 + rng.Intn(6)
				got := m.KNN(q, k)
				want := knn.BruteForce(g, objs, q, k)
				if !knn.SameResults(got, want) {
					t.Fatalf("%s/%v q=%d k=%d: got %s want %s", g.Name, kind, q, k,
						knn.FormatResults(got), knn.FormatResults(want))
				}
			}
		}
	}
}

func TestTwoVertexGraph(t *testing.T) {
	b := graph.NewBuilder(2, []float64{0, 10}, []float64{0, 0})
	b.AddEdge(0, 1, 12, 5)
	g := b.Build("pair")
	e := core.New(g)
	objs := knn.NewObjectSet(g, []int32{1})
	for _, kind := range core.Kinds() {
		m, err := e.NewMethod(kind, objs)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got := m.KNN(0, 1)
		if len(got) != 1 || got[0].Vertex != 1 || got[0].Dist != 12 {
			t.Fatalf("%v: got %s", kind, knn.FormatResults(got))
		}
	}
}
