// Index persistence for the engine: SaveIndexes writes every built index
// into one snapshot container, LoadIndexes installs indexes decoded from a
// snapshot so the lazy-build getters find them already present. Decoding
// runs in parallel across sections (CH first — TNR shares the hierarchy),
// and BuiltIndexes distinguishes loaded from built entries so callers can
// verify a warm start skipped construction.
package core

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"rnknn/internal/ch"
	"rnknn/internal/gtree"
	"rnknn/internal/phl"
	"rnknn/internal/road"
	"rnknn/internal/silc"
	"rnknn/internal/snapshot"
	"rnknn/internal/tnr"
)

// newPayloadReader wraps a section payload so codec readers can bound their
// allocations by the bytes actually present (snapio detects Len).
func newPayloadReader(data []byte) *bytes.Reader { return bytes.NewReader(data) }

// Fingerprint returns the snapshot fingerprint of the engine's graph,
// computed once — it walks every graph array, which is worth amortizing
// across the save/load/cache-path calls of one Open.
func (e *Engine) Fingerprint() uint64 {
	e.fpOnce.Do(func() { e.fp = snapshot.Fingerprint(e.G) })
	return e.fp
}

// Section names in the snapshot container, matching the BuildTimes keys.
const (
	secGtree = "Gtree"
	secROAD  = "ROAD"
	secSILC  = "SILC"
	secCH    = "CH"
	secPHL   = "PHL"
	secTNR   = "TNR"
)

// SaveIndexes writes every index built so far as one snapshot. Indexes are
// immutable once built, so encoding proceeds outside the engine lock and
// concurrent queries keep running. Saving an engine with no built indexes
// writes a valid, empty snapshot.
func (e *Engine) SaveIndexes(w io.Writer) error {
	e.mu.Lock()
	gt, rd, sc, chx, phlx, tnrx := e.gt, e.rd, e.sc, e.chx, e.phlx, e.tnrx
	e.mu.Unlock()

	var secs []snapshot.Section
	add := func(name string, wt io.WriterTo) {
		secs = append(secs, snapshot.Section{Name: name, Encode: func(w io.Writer) error {
			_, err := wt.WriteTo(w)
			return err
		}})
	}
	if gt != nil {
		add(secGtree, gt)
	}
	if rd != nil {
		add(secROAD, rd)
	}
	if sc != nil {
		add(secSILC, sc)
	}
	if chx != nil {
		add(secCH, chx)
	}
	if phlx != nil {
		add(secPHL, phlx)
	}
	if tnrx != nil {
		add(secTNR, tnrx)
	}
	return snapshot.Write(w, e.Fingerprint(), secs)
}

// LoadIndexes reads a snapshot written by SaveIndexes and installs every
// index it contains that the engine has not already built, so the lazy
// getters (and EnsureIndex) treat them as present. The snapshot must carry
// the fingerprint of the engine's graph (ErrFingerprintMismatch otherwise);
// corrupt containers or payloads surface ErrBadSnapshot. Sections decode in
// parallel across CPU cores; unknown section names are skipped (that is how
// old binaries read snapshots that carry indexes added later). BuildTimes
// records the decode time of each loaded index, and BuiltIndexes marks it
// Loaded.
func (e *Engine) LoadIndexes(r io.Reader) error {
	payloads, err := snapshot.Read(r, e.Fingerprint())
	if err != nil {
		return err
	}
	byName := make(map[string][]byte, len(payloads))
	for _, p := range payloads {
		byName[p.Name] = p.Data
	}

	// CH decodes first: TNR shares the hierarchy object, and an engine that
	// already built one reuses it.
	e.mu.Lock()
	chx := e.chx
	e.mu.Unlock()
	var chTime time.Duration
	chLoaded := false
	if data, ok := byName[secCH]; ok && chx == nil {
		start := time.Now()
		chx, err = ch.Read(newPayloadReader(data), e.G)
		if err != nil {
			return fmt.Errorf("%w: section %s: %v", snapshot.ErrBadSnapshot, secCH, err)
		}
		chTime, chLoaded = time.Since(start), true
	}
	if _, ok := byName[secTNR]; ok && chx == nil {
		return fmt.Errorf("%w: snapshot has a TNR section but no CH section to share its hierarchy", snapshot.ErrBadSnapshot)
	}

	// Remaining sections decode in parallel, one goroutine per section.
	type result struct {
		name string
		idx  any
		took time.Duration
		err  error
	}
	decoders := map[string]func(data []byte) (any, error){
		secGtree: func(d []byte) (any, error) { return gtree.Read(newPayloadReader(d), e.G) },
		secROAD:  func(d []byte) (any, error) { return road.Read(newPayloadReader(d), e.G) },
		secSILC:  func(d []byte) (any, error) { return silc.Read(newPayloadReader(d), e.G) },
		secPHL:   func(d []byte) (any, error) { return phl.Read(newPayloadReader(d), e.G.NumVertices()) },
		secTNR:   func(d []byte) (any, error) { return tnr.Read(newPayloadReader(d), chx) },
	}
	results := make(chan result, len(byName))
	launched := 0
	for name, decode := range decoders {
		data, ok := byName[name]
		if !ok {
			continue
		}
		launched++
		go func(name string, decode func([]byte) (any, error), data []byte) {
			start := time.Now()
			idx, err := decode(data)
			results <- result{name: name, idx: idx, took: time.Since(start), err: err}
		}(name, decode, data)
	}
	decoded := make(map[string]result, launched)
	for i := 0; i < launched; i++ {
		res := <-results
		if res.err != nil {
			err = fmt.Errorf("%w: section %s: %v", snapshot.ErrBadSnapshot, res.name, res.err)
		}
		decoded[res.name] = res
	}
	if err != nil {
		return err
	}

	// Install atomically: only indexes the engine has not built yet.
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.loaded == nil {
		e.loaded = map[string]bool{}
	}
	if chLoaded && e.chx == nil {
		e.chx = chx
		e.BuildTimes[secCH] = chTime
		e.loaded[secCH] = true
	}
	if res, ok := decoded[secGtree]; ok && e.gt == nil {
		e.gt = res.idx.(*gtree.Index)
		e.BuildTimes[secGtree] = res.took
		e.loaded[secGtree] = true
	}
	if res, ok := decoded[secROAD]; ok && e.rd == nil {
		e.rd = res.idx.(*road.Index)
		e.BuildTimes[secROAD] = res.took
		e.loaded[secROAD] = true
	}
	if res, ok := decoded[secSILC]; ok && e.sc == nil {
		e.sc = res.idx.(*silc.Index)
		e.BuildTimes[secSILC] = res.took
		e.loaded[secSILC] = true
	}
	if res, ok := decoded[secPHL]; ok && e.phlx == nil {
		e.phlx = res.idx.(*phl.Index)
		e.BuildTimes[secPHL] = res.took
		e.loaded[secPHL] = true
	}
	if res, ok := decoded[secTNR]; ok && e.tnrx == nil {
		e.tnrx = res.idx.(*tnr.Index)
		e.BuildTimes[secTNR] = res.took
		e.loaded[secTNR] = true
	}
	return nil
}
