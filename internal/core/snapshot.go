// Index persistence for the engine: SaveIndexes writes every built index
// (and the graph itself) into one snapshot container, LoadIndexes installs
// indexes decoded from a snapshot so the lazy-build getters find them
// already present. Decoding runs in parallel across sections (CH first —
// TNR shares the hierarchy, a dependency the v2 container records
// explicitly), and BuiltIndexes distinguishes loaded from built entries so
// callers can verify a warm start skipped construction. LoadIndexesData is
// the zero-copy path: over an mmap'ed snapshot the mappable sections
// decode into structs whose slices alias the mapping.
package core

import (
	"fmt"
	"io"
	"time"

	"rnknn/internal/ch"
	"rnknn/internal/graph"
	"rnknn/internal/gtree"
	"rnknn/internal/phl"
	"rnknn/internal/road"
	"rnknn/internal/silc"
	"rnknn/internal/snapio"
	"rnknn/internal/snapshot"
	"rnknn/internal/tnr"
)

// Fingerprint returns the snapshot fingerprint of the engine's graph,
// computed once — it walks every graph array, which is worth amortizing
// across the save/load/cache-path calls of one Open.
func (e *Engine) Fingerprint() uint64 {
	e.fpOnce.Do(func() { e.fp = snapshot.Fingerprint(e.G) })
	return e.fp
}

// SeedFingerprint installs fp as the engine's fingerprint without
// computing it from the graph. The self-contained mapped open uses it: the
// graph there is a view of the snapshot being opened, so recomputing the
// fingerprint would fault in every graph page just to compare the file
// with itself. No-op if the fingerprint was already computed or seeded.
func (e *Engine) SeedFingerprint(fp uint64) {
	e.fpOnce.Do(func() { e.fp = fp })
}

// Section names in the snapshot container, matching the BuildTimes keys
// (SecGraph carries the road network itself, not an index).
const (
	SecGraph = "Graph"
	secGtree = "Gtree"
	secROAD  = "ROAD"
	secSILC  = "SILC"
	secCH    = "CH"
	secPHL   = "PHL"
	secTNR   = "TNR"
)

// SaveIndexes writes the graph and every index built so far as one
// snapshot. Indexes are immutable once built, so encoding proceeds outside
// the engine lock and concurrent queries keep running. Saving an engine
// with no built indexes writes a valid snapshot carrying just the graph.
func (e *Engine) SaveIndexes(w io.Writer) error {
	e.mu.Lock()
	gt, rd, sc, chx, phlx, tnrx := e.gt, e.rd, e.sc, e.chx, e.phlx, e.tnrx
	e.mu.Unlock()

	var secs []snapshot.Section
	add := func(name string, mappable bool, deps []string, wt io.WriterTo) {
		secs = append(secs, snapshot.Section{
			Name:     name,
			Mappable: mappable,
			Deps:     deps,
			Encode: func(w io.Writer) error {
				_, err := wt.WriteTo(w)
				return err
			},
		})
	}
	secs = append(secs, snapshot.Section{
		Name:     SecGraph,
		Mappable: true,
		Encode: func(w io.Writer) error {
			_, err := e.G.WriteSnapshot(w)
			return err
		},
	})
	if gt != nil {
		add(secGtree, true, nil, gt)
	}
	if rd != nil {
		add(secROAD, true, nil, rd)
	}
	if sc != nil {
		add(secSILC, true, nil, sc)
	}
	if chx != nil {
		add(secCH, true, nil, chx)
	}
	if phlx != nil {
		add(secPHL, true, nil, phlx)
	}
	if tnrx != nil {
		// TNR decodes against the contraction hierarchy; the container
		// records the dependency so readers reject a table that lists TNR
		// before (or without) CH instead of trusting writer convention.
		add(secTNR, true, []string{secCH}, tnrx)
	}
	return snapshot.Write(w, e.Fingerprint(), secs)
}

// LoadIndexes reads a snapshot written by SaveIndexes and installs every
// index it contains that the engine has not already built, so the lazy
// getters (and EnsureIndex) treat them as present. The snapshot must carry
// the fingerprint of the engine's graph (ErrFingerprintMismatch otherwise);
// corrupt containers or payloads surface ErrBadSnapshot. Sections decode in
// parallel across CPU cores; unknown section names are skipped (that is how
// old binaries read snapshots that carry indexes added later). BuildTimes
// records the decode time of each loaded index, and BuiltIndexes marks it
// Loaded.
func (e *Engine) LoadIndexes(r io.Reader) error {
	payloads, err := snapshot.Read(r, e.Fingerprint())
	if err != nil {
		return err
	}
	return e.installPayloads(payloads, false)
}

// LoadIndexesData is LoadIndexes over a snapshot already materialized (or
// mapped) as one byte slice. With alias set, mappable sections decode into
// indexes whose slices are views of data — data must then stay valid (and
// unmodified) for the life of the engine — and checksum verification is
// skipped along with the per-element validation scans: a mapped open's
// cost is O(pages touched), and verifying would touch them all. Pass
// alias=false for private decoding with full verification.
func (e *Engine) LoadIndexesData(data []byte, alias bool) error {
	fp, payloads, err := snapshot.Parse(data, !alias)
	if err != nil {
		return err
	}
	if want := e.Fingerprint(); fp != want {
		return fmt.Errorf("%w: snapshot %016x vs graph %016x", snapshot.ErrFingerprintMismatch, fp, want)
	}
	return e.installPayloads(payloads, alias)
}

// LoadGraphData decodes the Graph section of a snapshot and returns it
// with the container fingerprint, without touching index sections. The
// self-contained open (rnknn.OpenSnapshotFile) uses it to bootstrap: the
// returned graph seeds a new engine, whose SeedFingerprint takes the
// returned fingerprint on trust (see that method). Alias semantics match
// LoadIndexesData.
func LoadGraphData(data []byte, alias bool) (*graph.Graph, uint64, error) {
	fp, payloads, err := snapshot.Parse(data, !alias)
	if err != nil {
		return nil, 0, err
	}
	for _, p := range payloads {
		if p.Name != SecGraph {
			continue
		}
		g, err := graph.ReadSnapshot(snapio.NewSource(p.Data, alias && p.Mappable))
		if err != nil {
			return nil, 0, fmt.Errorf("%w: section %s: %v", snapshot.ErrBadSnapshot, SecGraph, err)
		}
		return g, fp, nil
	}
	return nil, 0, fmt.Errorf("%w: snapshot has no %s section (written by an older binary?)", snapshot.ErrBadSnapshot, SecGraph)
}

// installPayloads decodes the index sections and installs whatever the
// engine has not already built. alias propagates to mappable sections'
// codecs (see LoadIndexesData).
func (e *Engine) installPayloads(payloads []snapshot.Payload, alias bool) error {
	byName := make(map[string]snapshot.Payload, len(payloads))
	for _, p := range payloads {
		byName[p.Name] = p
	}
	src := func(p snapshot.Payload) *snapio.Source {
		return snapio.NewSource(p.Data, alias && p.Mappable)
	}

	// CH decodes first: TNR shares the hierarchy object, and an engine that
	// already built one reuses it. (The v2 container validates the declared
	// CH-before-TNR table ordering at parse time; the check below also
	// covers v1 snapshots, which had no way to declare it.)
	e.mu.Lock()
	chx := e.chx
	e.mu.Unlock()
	var chTime time.Duration
	chLoaded := false
	var err error
	if p, ok := byName[secCH]; ok && chx == nil {
		start := time.Now()
		chx, err = ch.Read(src(p), e.G)
		if err != nil {
			return fmt.Errorf("%w: section %s: %v", snapshot.ErrBadSnapshot, secCH, err)
		}
		chTime, chLoaded = time.Since(start), true
	}
	if _, ok := byName[secTNR]; ok && chx == nil {
		return fmt.Errorf("%w: snapshot has a TNR section but no CH section to share its hierarchy", snapshot.ErrBadSnapshot)
	}

	// Remaining sections decode in parallel, one goroutine per section.
	type result struct {
		name string
		idx  any
		took time.Duration
		err  error
	}
	decoders := map[string]func(p snapshot.Payload) (any, error){
		secGtree: func(p snapshot.Payload) (any, error) { return gtree.Read(src(p), e.G) },
		secROAD:  func(p snapshot.Payload) (any, error) { return road.Read(src(p), e.G) },
		secSILC:  func(p snapshot.Payload) (any, error) { return silc.Read(src(p), e.G) },
		secPHL:   func(p snapshot.Payload) (any, error) { return phl.Read(src(p), e.G.NumVertices()) },
		secTNR:   func(p snapshot.Payload) (any, error) { return tnr.Read(src(p), chx) },
	}
	results := make(chan result, len(byName))
	launched := 0
	for name, decode := range decoders {
		p, ok := byName[name]
		if !ok {
			continue
		}
		launched++
		go func(name string, decode func(snapshot.Payload) (any, error), p snapshot.Payload) {
			start := time.Now()
			idx, err := decode(p)
			results <- result{name: name, idx: idx, took: time.Since(start), err: err}
		}(name, decode, p)
	}
	decoded := make(map[string]result, launched)
	for i := 0; i < launched; i++ {
		res := <-results
		if res.err != nil {
			err = fmt.Errorf("%w: section %s: %v", snapshot.ErrBadSnapshot, res.name, res.err)
		}
		decoded[res.name] = res
	}
	if err != nil {
		return err
	}

	// Install atomically: only indexes the engine has not built yet.
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.loaded == nil {
		e.loaded = map[string]bool{}
	}
	if chLoaded && e.chx == nil {
		e.chx = chx
		e.BuildTimes[secCH] = chTime
		e.loaded[secCH] = true
	}
	if res, ok := decoded[secGtree]; ok && e.gt == nil {
		e.gt = res.idx.(*gtree.Index)
		e.BuildTimes[secGtree] = res.took
		e.loaded[secGtree] = true
	}
	if res, ok := decoded[secROAD]; ok && e.rd == nil {
		e.rd = res.idx.(*road.Index)
		e.BuildTimes[secROAD] = res.took
		e.loaded[secROAD] = true
	}
	if res, ok := decoded[secSILC]; ok && e.sc == nil {
		e.sc = res.idx.(*silc.Index)
		e.BuildTimes[secSILC] = res.took
		e.loaded[secSILC] = true
	}
	if res, ok := decoded[secPHL]; ok && e.phlx == nil {
		e.phlx = res.idx.(*phl.Index)
		e.BuildTimes[secPHL] = res.took
		e.loaded[secPHL] = true
	}
	if res, ok := decoded[secTNR]; ok && e.tnrx == nil {
		e.tnrx = res.idx.(*tnr.Index)
		e.BuildTimes[secTNR] = res.took
		e.loaded[secTNR] = true
	}
	return nil
}
