package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rnknn/internal/core"
	"rnknn/internal/dijkstra"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

// Property: on a random small network with a random object set, every
// method kind returns the brute-force answer for random (q, k).
func TestPropertyAllMethodsExact(t *testing.T) {
	f := func(seed int64, qSel, kSel uint8, density uint8) bool {
		rows := 8 + int(uint16(seed)%6)
		g := gen.Network(gen.NetworkSpec{Name: "p", Rows: rows, Cols: rows + 2, Seed: seed})
		d := 0.005 + float64(density%40)/200 // 0.005 .. 0.2
		objs := knn.NewObjectSet(g, gen.Uniform(g, d, seed+1))
		q := int32(int(qSel) % g.NumVertices())
		k := 1 + int(kSel)%8
		want := knn.BruteForce(g, objs, q, k)
		e := core.New(g)
		for _, kind := range core.Kinds() {
			m, err := e.NewMethod(kind, objs)
			if err != nil {
				return false
			}
			if !knn.SameResults(m.KNN(q, k), want) {
				t.Logf("%v failed on seed=%d q=%d k=%d d=%v", kind, seed, q, k, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: all distance oracles agree with Dijkstra on random pairs, for
// both weight kinds.
func TestPropertyOraclesExact(t *testing.T) {
	f := func(seed int64, timeWeights bool) bool {
		g := gen.Network(gen.NetworkSpec{Name: "p", Rows: 10, Cols: 12, Seed: seed})
		if timeWeights {
			g = g.View(graph.TravelTime)
		}
		e := core.New(g)
		oracles := []knn.DistanceOracle{e.CHIndex(), e.PHLIndex(), e.TNRIndex()}
		solver := dijkstra.NewSolver(g)
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			s := int32(rng.Intn(g.NumVertices()))
			tv := int32(rng.Intn(g.NumVertices()))
			want := solver.Distance(s, tv)
			for _, o := range oracles {
				if o.Distance(s, tv) != want {
					t.Logf("%s failed on seed=%d s=%d t=%d", o.Name(), seed, s, tv)
					return false
				}
			}
			// The materialized G-tree oracle too.
			if e.GtreeIndex().NewSource(s).DistanceTo(tv) != want {
				t.Logf("MGtree failed on seed=%d s=%d t=%d", seed, s, tv)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: kNN results are monotone in k — the (k)-NN answer is a prefix
// of the (k+5)-NN answer by distance sequence.
func TestPropertyKNNMonotoneInK(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "p", Rows: 12, Cols: 12, Seed: 181})
	e := core.New(g)
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.05, 3))
	f := func(qSel uint16, kSel uint8) bool {
		q := int32(int(qSel) % g.NumVertices())
		k := 1 + int(kSel)%6
		for _, kind := range []core.MethodKind{core.Gtree, core.ROAD, core.IERPHL, core.DisBrw} {
			m, err := e.NewMethod(kind, objs)
			if err != nil {
				return false
			}
			small := m.KNN(q, k)
			big := m.KNN(q, k+5)
			if len(big) < len(small) {
				return false
			}
			for i := range small {
				if small[i].Dist != big[i].Dist {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: results never report a distance below the Euclidean lower bound
// (on travel-distance weights) and are sorted.
func TestPropertyResultInvariants(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "p", Rows: 12, Cols: 12, Seed: 182})
	e := core.New(g)
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.02, 4))
	f := func(qSel uint16) bool {
		q := int32(int(qSel) % g.NumVertices())
		for _, kind := range core.Kinds() {
			m, err := e.NewMethod(kind, objs)
			if err != nil {
				return false
			}
			rs := m.KNN(q, 5)
			prev := graph.Dist(-1)
			for _, r := range rs {
				if r.Dist < prev {
					return false
				}
				prev = r.Dist
				if r.Dist < g.EuclidLB(q, r.Vertex) {
					return false
				}
				if !objs.Contains(r.Vertex) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
