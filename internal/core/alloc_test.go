package core_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/knn"
)

// TestWarmSessionKNNZeroAllocs is the Issue 5 acceptance gate: on a warm
// query session, a steady-state KNNAppend into a caller-owned buffer must
// perform zero heap allocations for every built method — the transient
// search state (heaps, stamped distance arrays, evicted sets, oracle
// sources) all lives on the session and is reset in O(1) per query.
//
// Every kind is measured, including the two SILC variants and the IER
// oracles beyond the required set (INE, IER-PHL, IER-CH, Gtree, ROAD,
// DisBrw).
func TestWarmSessionKNNZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every index")
	}
	g := gen.Network(gen.NetworkSpec{Name: "alloc", Rows: 24, Cols: 24, Seed: 404})
	e := core.New(g)
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.05, 11))

	rng := rand.New(rand.NewSource(2))
	warm := make([]int32, 16)
	for i := range warm {
		warm[i] = int32(rng.Intn(g.NumVertices()))
	}
	const k = 8

	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			b := e.NewBinding(objs, []core.MethodKind{kind})
			sess, err := e.NewSession(kind, b)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]knn.Result, 0, k)
			// Warm the session: first queries may grow heaps, stamp arrays
			// and arenas to their steady-state footprint.
			for _, q := range warm {
				buf = sess.KNNAppend(q, k, buf[:0])
			}
			q := warm[0]
			allocs := testing.AllocsPerRun(50, func() {
				buf = sess.KNNAppend(q, k, buf[:0])
			})
			if allocs != 0 {
				t.Errorf("%s: warm KNNAppend allocates %v allocs/op, want 0", kind, allocs)
			}
			if len(buf) != k {
				t.Fatalf("%s: got %d results, want %d", kind, len(buf), k)
			}
		})
	}
}

// TestWarmSessionRangeZeroAllocs pins the same property for the native
// range query (INE's RangeAppend).
func TestWarmSessionRangeZeroAllocs(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "alloc-r", Rows: 20, Cols: 20, Seed: 405})
	e := core.New(g)
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.05, 12))
	b := e.NewBinding(objs, []core.MethodKind{core.INE})
	sess, err := e.NewSession(core.INE, b)
	if err != nil {
		t.Fatal(err)
	}
	rm := sess.(knn.RangeMethod)
	var buf []knn.Result
	for i := 0; i < 8; i++ {
		buf = rm.RangeAppend(int32(i*17), 5000, buf[:0])
	}
	allocs := testing.AllocsPerRun(50, func() {
		buf = rm.RangeAppend(137, 5000, buf[:0])
	})
	if allocs != 0 {
		t.Errorf("warm RangeAppend allocates %v allocs/op, want 0", allocs)
	}
}
