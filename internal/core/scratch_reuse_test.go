package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

// reuseGraphs are the three networks the dirty-scratch property is checked
// on; the smallest also builds SILC so the DisBrw pair's candidate
// machinery is exercised.
var reuseGraphs = []gen.NetworkSpec{
	{Name: "r-small", Rows: 8, Cols: 10, Seed: 61},
	{Name: "r-mid", Rows: 14, Cols: 18, Seed: 67},
	{Name: "r-wide", Rows: 10, Cols: 32, Seed: 71},
}

// TestDirtyScratchReuse pins the correctness half of the scratch-arena
// contract: a session whose stamped scratch has been dirtied by 200
// consecutive mixed queries (KNN, streamed KNN with deliberate early
// breaks, Range) of varying k and query vertex answers every query
// byte-identically to a session manufactured fresh for that one query.
// Early-broken streams are the nastiest case — they abandon a scan midway
// and leave heaps, stamped sets, and pending buffers mid-state for the
// next query's O(1) reset to neutralize.
func TestDirtyScratchReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every index on three graphs")
	}
	for _, spec := range reuseGraphs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := gen.Network(spec)
			e := core.New(g)
			objs := knn.NewObjectSet(g, gen.Uniform(g, 0.06, int64(spec.Seed)+1))
			kinds := []core.MethodKind{core.INE, core.IERDijk, core.IERCH, core.IERTNR,
				core.IERPHL, core.IERGt, core.Gtree, core.ROAD}
			if g.NumVertices() <= 200 {
				kinds = append(kinds, core.DisBrw, core.DisBrwOH)
			}
			for _, kind := range kinds {
				kind := kind
				t.Run(kind.String(), func(t *testing.T) {
					b := e.NewBinding(objs, []core.MethodKind{kind})
					warm, err := e.NewSession(kind, b)
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(int64(spec.Seed)))
					for i := 0; i < 200; i++ {
						fresh, err := e.NewSession(kind, b)
						if err != nil {
							t.Fatal(err)
						}
						q := int32(rng.Intn(g.NumVertices()))
						k := 1 + rng.Intn(12)
						var got, want []knn.Result
						var op string
						switch i % 3 {
						case 0:
							op = fmt.Sprintf("KNN(q=%d,k=%d)", q, k)
							got = warm.KNNAppend(q, k, nil)
							want = fresh.KNNAppend(q, k, nil)
						case 1:
							// Streamed, breaking early on some iterations to
							// abandon the scan with scratch mid-state.
							stop := k
							if i%5 == 0 && k > 1 {
								stop = k / 2
							}
							op = fmt.Sprintf("KNNSeq(q=%d,k=%d,stop=%d)", q, k, stop)
							got = collectStream(warm, q, k, stop)
							want = collectStream(fresh, q, k, stop)
						case 2:
							rm, ok := warm.(knn.RangeMethod)
							if !ok {
								op = fmt.Sprintf("KNN(q=%d,k=%d)", q, k)
								got = warm.KNNAppend(q, k, nil)
								want = fresh.KNNAppend(q, k, nil)
								break
							}
							radius := graph.Dist(1000 + rng.Intn(8000))
							op = fmt.Sprintf("Range(q=%d,r=%d)", q, radius)
							got = rm.RangeAppend(q, radius, nil)
							want = fresh.(knn.RangeMethod).RangeAppend(q, radius, nil)
						}
						if !identicalResults(got, want) {
							t.Fatalf("step %d %s: reused session diverged:\n got %s\nwant %s",
								i, op, knn.FormatResults(got), knn.FormatResults(want))
						}
					}
				})
			}
		})
	}
}

// collectStream gathers at most stop results from a streamed kNN query,
// returning false from yield (an early consumer break) once reached.
func collectStream(s core.Session, q int32, k, stop int) []knn.Result {
	var out []knn.Result
	knn.StreamKNN(s, q, k, func(r knn.Result) bool {
		out = append(out, r)
		return len(out) < stop
	})
	return out
}

// identicalResults demands byte-identical answers — same vertices in the
// same order, not just SameResults' tie-tolerant agreement: a fresh and a
// reused session run the identical deterministic search, so any divergence
// (even among ties) means dirty scratch leaked into the query.
func identicalResults(a, b []knn.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
