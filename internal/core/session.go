package core

import (
	"fmt"

	"rnknn/internal/geo"
	"rnknn/internal/gtree"
	"rnknn/internal/ier"
	"rnknn/internal/ine"
	"rnknn/internal/knn"
	"rnknn/internal/road"
	"rnknn/internal/rtree"
	"rnknn/internal/silc"
)

// Binding bundles an object set with the derived object indexes the method
// kinds need (the decoupled-index design of Section 2.2): the Euclidean
// R-tree for the IER family and DisBrw, the G-tree occurrence list, the
// ROAD association directory, and the SILC object hierarchy. A Binding is
// one immutable epoch of an object category: safe for concurrent use by any
// number of query sessions, never mutated after publication. Mutating the
// object set means deriving the next epoch with NextBinding (incremental,
// O(delta)) or building a fresh epoch 0 with NewBinding (bulk), then
// rebinding sessions to it; queries in flight keep the Binding they
// snapshotted and stay consistent.
type Binding struct {
	Objs *knn.ObjectSet
	// Epoch is the binding's version within its category: 0 for a bulk
	// build, predecessor+1 for each NextBinding derivation.
	Epoch uint64

	rt *rtree.Tree
	ol *gtree.OccurrenceList
	ad *road.AssociationDirectory
	oh *silc.ObjectHierarchy
}

// NewBinding builds the derived object indexes required by kinds over objs
// — epoch 0 of a category, the bulk registration path. Kinds whose
// road-network index has not been built yet trigger the build (serialized
// by the engine mutex).
func (e *Engine) NewBinding(objs *knn.ObjectSet, kinds []MethodKind) *Binding {
	b := &Binding{Objs: objs}
	for _, k := range kinds {
		switch k {
		case IERDijk, IERCH, IERTNR, IERPHL, IERGt, DisBrw:
			if b.rt == nil {
				b.rt = ier.NewObjectTree(e.G, objs)
			}
		case Gtree:
			if b.ol == nil {
				b.ol = e.GtreeIndex().NewOccurrenceList(objs)
			}
		case ROAD:
			if b.ad == nil {
				b.ad = e.ROADIndex().NewAssociationDirectory(objs)
			}
		case DisBrwOH:
			if b.oh == nil {
				b.oh = e.SILCIndex().NewObjectHierarchy(objs, 0)
			}
		}
	}
	return b
}

// NextBinding derives the next epoch of cur: cur's object set minus remove
// plus add, with every derived object index updated incrementally from
// cur's — copy-on-write clones mutated by the per-method maintainers
// (R-tree Insert/Delete, occurrence-list and association-directory
// Add/Remove) in O(delta) element work, never an O(set) reconstruction.
// The one exception is the SILC object hierarchy (DisBrwOH), which has no
// incremental maintainer and is rebuilt from the new set.
//
// cur is never mutated: queries pinned to it keep answering from their
// epoch. Vertices already present in add and absent in remove are ignored.
// When the effective delta is empty, cur itself is returned (no new epoch).
func (e *Engine) NextBinding(cur *Binding, add, remove []int32) *Binding {
	objs, added, removed := cur.Objs.WithDelta(add, remove)
	if len(added) == 0 && len(removed) == 0 {
		return cur
	}
	// Which derived indexes to maintain follows from which ones cur
	// carries, so the new epoch serves exactly the kinds the old one did.
	b := &Binding{Objs: objs, Epoch: cur.Epoch + 1}
	if cur.rt != nil {
		rt := cur.rt.Clone()
		for _, v := range removed {
			rt.Delete(v, geo.Point{X: e.G.X[v], Y: e.G.Y[v]})
		}
		for _, v := range added {
			rt.Insert(v, geo.Point{X: e.G.X[v], Y: e.G.Y[v]})
		}
		b.rt = rt
	}
	if cur.ol != nil {
		idx := e.GtreeIndex()
		ol := cur.ol.Clone()
		for _, v := range removed {
			ol.Remove(idx, v)
		}
		for _, v := range added {
			ol.Add(idx, v)
		}
		b.ol = ol
	}
	if cur.ad != nil {
		idx := e.ROADIndex()
		ad := cur.ad.Clone()
		for _, v := range removed {
			ad.Remove(idx, v)
		}
		for _, v := range added {
			ad.Add(idx, v)
		}
		b.ad = ad
	}
	if cur.oh != nil {
		b.oh = e.SILCIndex().NewObjectHierarchy(objs, 0)
	}
	return b
}

// Session is a single-goroutine query session: a knn.Method whose object
// binding can be swapped between queries. pkg/rnknn pools sessions per
// method kind and rebinds each one to the live Binding snapshot before
// every query, which is what makes object-set swaps safe while queries are
// in flight.
type Session interface {
	knn.Method
	// Rebind points the session at b's object set and derived indexes. It
	// must only be called between queries.
	Rebind(b *Binding)
}

// NewSession manufactures a fresh query session of the given kind bound to
// b. Sessions carry their own search state (and, for IER-CH and IER-TNR,
// their own per-session oracle state), so sessions of any mix of kinds may
// run concurrently as long as each individual session stays on one
// goroutine.
func (e *Engine) NewSession(kind MethodKind, b *Binding) (Session, error) {
	switch kind {
	case INE:
		return ineSession{ine.New(e.G, b.Objs)}, nil
	case IERDijk:
		return &ierSession{ier.NewWithTree("IER-Dijk", e.G, b.Objs, b.rt, &ier.DijkstraFactory{G: e.G})}, nil
	case IERCH:
		// Each session owns a CH searcher: the bidirectional Dijkstra state
		// is per-session, the hierarchy itself is shared.
		return &ierSession{ier.NewWithTree("IER-CH", e.G, b.Objs, b.rt, &ier.OracleFactory{Oracle: e.CHIndex().NewSearcher()})}, nil
	case IERTNR:
		return &ierSession{ier.NewWithTree("IER-TNR", e.G, b.Objs, b.rt, &ier.OracleFactory{Oracle: e.TNRIndex().NewQuerier()})}, nil
	case IERPHL:
		return &ierSession{ier.NewWithTree("IER-PHL", e.G, b.Objs, b.rt, &ier.OracleFactory{Oracle: e.PHLIndex()})}, nil
	case IERGt:
		return &ierSession{ier.NewWithTree("IER-Gt", e.G, b.Objs, b.rt, &gtree.Factory{Idx: e.GtreeIndex()})}, nil
	case Gtree:
		return gtreeSession{gtree.NewKNN(e.GtreeIndex(), b.ol)}, nil
	case ROAD:
		return roadSession{road.NewKNN(e.ROADIndex(), b.ad)}, nil
	case DisBrw:
		return dbennSession{silc.NewDBENNWithTree(e.SILCIndex(), b.Objs, b.rt)}, nil
	case DisBrwOH:
		return disbrwSession{silc.NewDisBrw(e.SILCIndex(), b.oh)}, nil
	default:
		return nil, fmt.Errorf("core: unknown method kind %v", kind)
	}
}

// The session wrappers embed the concrete methods (promoting KNN, Name,
// Range and SetInterrupt where available) and adapt Rebind to each method's
// own object-swap hook.

type ineSession struct{ *ine.INE }

func (s ineSession) Rebind(b *Binding) { s.INE.SetObjects(b.Objs) }

type ierSession struct{ *ier.IER }

func (s *ierSession) Rebind(b *Binding) { s.IER.Rebind(b.Objs, b.rt) }

// gtreeSession and roadSession cannot embed their methods (the embedded
// type name KNN would shadow the KNN method), so they delegate explicitly
// (including the incremental-scan hook KNNStream).
type gtreeSession struct{ m *gtree.KNN }

func (s gtreeSession) Name() string                    { return s.m.Name() }
func (s gtreeSession) KNN(q int32, k int) []knn.Result { return s.m.KNN(q, k) }
func (s gtreeSession) KNNAppend(q int32, k int, dst []knn.Result) []knn.Result {
	return s.m.KNNAppend(q, k, dst)
}
func (s gtreeSession) Rebind(b *Binding) { s.m.SetObjects(b.ol) }
func (s gtreeSession) KNNStream(q int32, k int, yield func(knn.Result) bool) {
	s.m.KNNStream(q, k, yield)
}
func (s gtreeSession) KNNGroupAppend(qs []knn.GroupQuery, dst [][]knn.Result) {
	s.m.KNNGroupAppend(qs, dst)
}

type roadSession struct{ m *road.KNN }

func (s roadSession) Name() string                    { return s.m.Name() }
func (s roadSession) KNN(q int32, k int) []knn.Result { return s.m.KNN(q, k) }
func (s roadSession) KNNAppend(q int32, k int, dst []knn.Result) []knn.Result {
	return s.m.KNNAppend(q, k, dst)
}
func (s roadSession) Rebind(b *Binding) { s.m.SetObjects(b.ad) }
func (s roadSession) KNNStream(q int32, k int, yield func(knn.Result) bool) {
	s.m.KNNStream(q, k, yield)
}

type dbennSession struct{ *silc.DBENN }

func (s dbennSession) Rebind(b *Binding) { s.DBENN.Rebind(b.Objs, b.rt) }

type disbrwSession struct{ *silc.DisBrw }

func (s disbrwSession) Rebind(b *Binding) { s.DisBrw.SetObjects(b.oh) }

var (
	_ knn.RangeMethod   = ineSession{}
	_ knn.Interruptible = ineSession{}
	_ knn.Interruptible = (*ierSession)(nil)
	// The incremental-result hook behind pkg/rnknn's KNNSeq: INE and IER
	// stream through the promoted KNNStream of their embedded methods,
	// G-tree and ROAD through explicit delegates; the SILC sessions have no
	// incremental hook and fall back to knn.StreamKNN's buffered replay.
	_ knn.Streamer = ineSession{}
	_ knn.Streamer = (*ierSession)(nil)
	_ knn.Streamer = gtreeSession{}
	_ knn.Streamer = roadSession{}
	// Shared-expansion batch execution: INE through the promoted
	// KNNGroupAppend, G-tree through an explicit delegate.
	_ knn.BatchMethod = ineSession{}
	_ knn.BatchMethod = gtreeSession{}
)
