package core_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

func TestAllMethodsAgreeWithBruteForce(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 16, Cols: 16, Seed: 121})
	e := core.New(g)
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.02, 9))
	rng := rand.New(rand.NewSource(1))
	queries := make([]int32, 8)
	for i := range queries {
		queries[i] = int32(rng.Intn(g.NumVertices()))
	}
	for _, kind := range core.Kinds() {
		m, err := e.NewMethod(kind, objs)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, q := range queries {
			got := m.KNN(q, 5)
			want := knn.BruteForce(g, objs, q, 5)
			if !knn.SameResults(got, want) {
				t.Fatalf("%v q=%d: got %s want %s", kind, q,
					knn.FormatResults(got), knn.FormatResults(want))
			}
		}
	}
}

func TestIndexesBuiltOnceAndTimed(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 12, Cols: 12, Seed: 122})
	e := core.New(g)
	a := e.GtreeIndex()
	b := e.GtreeIndex()
	if a != b {
		t.Fatal("G-tree rebuilt on second access")
	}
	if _, ok := e.BuildTimes["Gtree"]; !ok {
		t.Fatal("build time not recorded")
	}
	// CH shared between PHL and TNR.
	_ = e.PHLIndex()
	chx := e.CHIndex()
	_ = e.TNRIndex()
	if e.CHIndex() != chx {
		t.Fatal("CH rebuilt")
	}
}

func TestIndexSizesPositive(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 10, Cols: 10, Seed: 123})
	e := core.New(g)
	for _, kind := range core.Kinds() {
		objs := knn.NewObjectSet(g, []int32{1, 2, 3})
		if _, err := e.NewMethod(kind, objs); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if s := e.IndexSize(kind); s <= 0 {
			t.Fatalf("%v size %d", kind, s)
		}
	}
}

func TestTravelTimeEngine(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 14, Cols: 14, Seed: 124}).View(graph.TravelTime)
	e := core.New(g)
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.01, 2))
	// The travel-time comparison set (the paper excludes DisBrw there).
	kinds := []core.MethodKind{core.INE, core.IERDijk, core.IERCH, core.IERTNR, core.IERPHL, core.IERGt, core.Gtree, core.ROAD}
	rng := rand.New(rand.NewSource(2))
	for _, kind := range kinds {
		m, err := e.NewMethod(kind, objs)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for trial := 0; trial < 5; trial++ {
			q := int32(rng.Intn(g.NumVertices()))
			got := m.KNN(q, 10)
			want := knn.BruteForce(g, objs, q, 10)
			if !knn.SameResults(got, want) {
				t.Fatalf("%v q=%d: got %s want %s", kind, q,
					knn.FormatResults(got), knn.FormatResults(want))
			}
		}
	}
}

func TestMethodNames(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 8, Cols: 8, Seed: 125})
	e := core.New(g)
	objs := knn.NewObjectSet(g, []int32{5})
	for _, kind := range core.Kinds() {
		m, err := e.NewMethod(kind, objs)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() == "" {
			t.Fatalf("%v has empty name", kind)
		}
	}
}
