package silc_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/dijkstra"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/silc"
)

func testIndex(t testing.TB, seed int64, rows, cols int) (*graph.Graph, *silc.Index) {
	t.Helper()
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: rows, Cols: cols, Seed: seed})
	return g, silc.Build(g, silc.Options{Parallelism: 2})
}

func TestPathIsShortestPath(t *testing.T) {
	g, x := testIndex(t, 71, 12, 12)
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		path := x.Path(s, tv)
		if path[0] != s || path[len(path)-1] != tv {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		// Sum of edge weights along the path must equal d(s,t).
		total := graph.Dist(0)
		for i := 1; i < len(path); i++ {
			w, ok := g.EdgeWeightBetween(path[i-1], path[i])
			if !ok {
				t.Fatalf("path uses non-edge %d-%d", path[i-1], path[i])
			}
			total += graph.Dist(w)
		}
		if want := solver.Distance(s, tv); total != want {
			t.Fatalf("path length %d, want %d", total, want)
		}
	}
}

func TestRefinerBoundsAndConvergence(t *testing.T) {
	g, x := testIndex(t, 72, 12, 12)
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		want := solver.Distance(s, tv)
		r := x.NewRefiner(s, tv)
		steps := 0
		for !r.Exact() {
			lb, ub := r.Bounds()
			if lb > want || ub < want {
				t.Fatalf("interval [%d,%d] excludes true distance %d", lb, ub, want)
			}
			r.Step()
			if steps++; steps > g.NumVertices() {
				t.Fatal("refinement did not converge")
			}
		}
		if got := r.RefineExact(); got != want {
			t.Fatalf("converged to %d, want %d", got, want)
		}
	}
}

func TestRefinerSelf(t *testing.T) {
	_, x := testIndex(t, 73, 8, 8)
	r := x.NewRefiner(5, 5)
	if !r.Exact() || r.RefineExact() != 0 {
		t.Fatal("self refinement should be exact zero")
	}
}

func TestChainOptimizationEquivalent(t *testing.T) {
	// High-chain network: forced moves must not change results but must
	// reduce lookups.
	g := gen.HighwayNetwork("hwy", 5, 5, 3)
	x := silc.Build(g, silc.Options{Parallelism: 2})
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(4))
	lookupsOn, lookupsOff := 0, 0
	for trial := 0; trial < 20; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		want := solver.Distance(s, tv)

		x.ChainOptimization = true
		rOn := x.NewRefiner(s, tv)
		if got := rOn.RefineExact(); got != want {
			t.Fatalf("chain-opt distance %d, want %d", got, want)
		}
		lookupsOn += rOn.Lookups

		x.ChainOptimization = false
		rOff := x.NewRefiner(s, tv)
		if got := rOff.RefineExact(); got != want {
			t.Fatalf("no-chain distance %d, want %d", got, want)
		}
		lookupsOff += rOff.Lookups
	}
	x.ChainOptimization = true
	if lookupsOn*2 > lookupsOff {
		t.Fatalf("chain optimisation saved too little: on=%d off=%d", lookupsOn, lookupsOff)
	}
}

func TestLambdaRangeCoversPairRatios(t *testing.T) {
	g, x := testIndex(t, 74, 10, 10)
	solver := dijkstra.NewSolver(g)
	s := int32(3)
	// Over the full rank range, lambda must bound every vertex's ratio.
	lamLo, lamHi, scanned := x.LambdaRange(s, 0, int32(g.NumVertices()-1))
	if scanned <= 0 {
		t.Fatal("no blocks scanned")
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if v == s {
			continue
		}
		de := g.Euclid(s, v)
		if de < 1e-9 {
			continue
		}
		ratio := float64(solver.Distance(s, v)) / de
		if ratio < lamLo-1e-6 || ratio > lamHi+1e-6 {
			t.Fatalf("ratio %v outside lambda range [%v,%v]", ratio, lamLo, lamHi)
		}
	}
}

func TestDBENNMatchesBruteForce(t *testing.T) {
	g, x := testIndex(t, 75, 14, 14)
	rng := rand.New(rand.NewSource(5))
	for _, density := range []float64{0.01, 0.05, 0.3} {
		objs := knn.NewObjectSet(g, gen.Uniform(g, density, 55))
		m := silc.NewDBENN(x, objs)
		for trial := 0; trial < 15; trial++ {
			q := int32(rng.Intn(g.NumVertices()))
			for _, k := range []int{1, 5, 10} {
				got := m.KNN(q, k)
				want := knn.BruteForce(g, objs, q, k)
				if !knn.SameResults(got, want) {
					t.Fatalf("d=%v q=%d k=%d: got %s want %s", density, q, k,
						knn.FormatResults(got), knn.FormatResults(want))
				}
			}
		}
	}
}

func TestDisBrwOHMatchesBruteForce(t *testing.T) {
	g, x := testIndex(t, 76, 14, 14)
	rng := rand.New(rand.NewSource(6))
	for _, density := range []float64{0.02, 0.2} {
		objs := knn.NewObjectSet(g, gen.Uniform(g, density, 66))
		// Small leaf cap to force hierarchy traversal.
		oh := x.NewObjectHierarchy(objs, 4)
		m := silc.NewDisBrw(x, oh)
		for trial := 0; trial < 15; trial++ {
			q := int32(rng.Intn(g.NumVertices()))
			for _, k := range []int{1, 5, 10} {
				got := m.KNN(q, k)
				want := knn.BruteForce(g, objs, q, k)
				if !knn.SameResults(got, want) {
					t.Fatalf("d=%v q=%d k=%d: got %s want %s", density, q, k,
						knn.FormatResults(got), knn.FormatResults(want))
				}
			}
		}
		if m.ScannedBlocks <= 0 {
			t.Fatal("OH variant scanned no blocks")
		}
	}
}

func TestDBENNClusteredObjects(t *testing.T) {
	g, x := testIndex(t, 77, 14, 14)
	objs := knn.NewObjectSet(g, gen.Clustered(g, 6, 5, 8))
	m := silc.NewDBENN(x, objs)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		q := int32(rng.Intn(g.NumVertices()))
		got := m.KNN(q, 5)
		want := knn.BruteForce(g, objs, q, 5)
		if !knn.SameResults(got, want) {
			t.Fatalf("q=%d: got %s want %s", q, knn.FormatResults(got), knn.FormatResults(want))
		}
	}
}

func TestKNNMoreThanAvailable(t *testing.T) {
	g, x := testIndex(t, 78, 8, 8)
	objs := knn.NewObjectSet(g, []int32{1, 9, 17})
	m := silc.NewDBENN(x, objs)
	if got := m.KNN(0, 10); len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	oh := x.NewObjectHierarchy(objs, 2)
	m2 := silc.NewDisBrw(x, oh)
	if got := m2.KNN(0, 10); len(got) != 3 {
		t.Fatalf("OH: got %d results, want 3", len(got))
	}
}

func TestIndexStats(t *testing.T) {
	g, x := testIndex(t, 79, 10, 10)
	if x.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
	avg := x.AvgBlocks()
	if avg < 1 || avg > float64(g.NumVertices()) {
		t.Fatalf("AvgBlocks = %v out of range", avg)
	}
	if x.Rank(0) < 0 || int(x.Rank(0)) >= g.NumVertices() {
		t.Fatal("Rank out of range")
	}
}

func TestFirstMoveAgreesWithDistances(t *testing.T) {
	g, x := testIndex(t, 80, 10, 10)
	solver := dijkstra.NewSolver(g)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		tv := int32(rng.Intn(g.NumVertices()))
		if s == tv {
			if x.FirstMove(s, tv) != s {
				t.Fatal("FirstMove(s,s) != s")
			}
			continue
		}
		f := x.FirstMove(s, tv)
		w, ok := g.EdgeWeightBetween(s, f)
		if !ok {
			t.Fatalf("first move %d not adjacent to %d", f, s)
		}
		if graph.Dist(w)+solver.Distance(f, tv) != solver.Distance(s, tv) {
			t.Fatalf("first move %d not on a shortest path %d->%d", f, s, tv)
		}
	}
}
