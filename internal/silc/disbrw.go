package silc

import (
	"math"
	"sort"

	"rnknn/internal/geo"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/internal/pqueue"
	"rnknn/internal/rtree"
	"rnknn/internal/scratch"
)

// candidates is the shared Distance Browsing machinery: per-object interval
// refiners, the global lower-bound queue Q, the max-heap candidate list L
// capped at k (Dk = largest candidate upper bound once |L| = k), and the
// corrected bookkeeping of Appendix A.1 (delete-before-refine, inclusive
// re-insert, tie refinement).
//
// The state is reusable: the refiners live in an arena indexed by a
// stamped per-vertex table (the former map[int32]*Refiner), membership in
// L is a stamped set, and both heaps retain their backing arrays — reset
// is O(1) and a warm query allocates nothing.
type candidates struct {
	x  *Index
	q  int32
	k  int
	dk graph.Dist
	// queue of objects (and, for the Object Hierarchy variant, nodes
	// encoded as -(id+1)) keyed by lower bound.
	queue *pqueue.Queue
	l     *pqueue.MaxQueue
	// refiners is the arena; ref maps an object vertex to its slot in it.
	// Arena pointers are only held within one step, never across an
	// addRefiner (growth may move the backing array).
	refiners []Refiner
	ref      *scratch.Map32
	inL      *scratch.Set
}

// init sizes the stamped tables for x's graph; call once per owner.
func (c *candidates) init(x *Index) {
	n := x.G.NumVertices()
	c.x = x
	c.queue = pqueue.NewQueue(64)
	c.l = &pqueue.MaxQueue{}
	c.ref = scratch.NewMap32(n)
	c.inL = scratch.NewSet(n)
}

// reset retargets the machinery to a new (q, k) in O(1).
func (c *candidates) reset(q int32, k int) {
	c.q = q
	c.k = k
	c.dk = graph.Inf
	c.queue.Reset()
	c.l.Reset()
	c.refiners = c.refiners[:0]
	c.ref.Reset()
	c.inL.Reset()
}

// refinerOf returns o's refiner, or nil when o has not been encountered
// this query.
func (c *candidates) refinerOf(o int32) *Refiner {
	i, ok := c.ref.Get(o)
	if !ok {
		return nil
	}
	return &c.refiners[i]
}

// addRefiner allocates o's refiner from the arena and initializes it.
func (c *candidates) addRefiner(o int32) *Refiner {
	i := len(c.refiners)
	if i < cap(c.refiners) {
		c.refiners = c.refiners[:i+1]
	} else {
		c.refiners = append(c.refiners, Refiner{})
	}
	c.ref.Put(o, int32(i))
	r := &c.refiners[i]
	r.Init(c.x, c.q, o)
	return r
}

// updateL implements UpdateL of Algorithm 1: insert the candidate, trim L
// to k entries, and tighten Dk. Dk only ever decreases. An evicted
// candidate is re-queued (if it can still win) so that a previously
// "implicitly dropped" object is never lost.
func (c *candidates) updateL(o int32, ub graph.Dist) {
	c.l.Push(o, int64(ub))
	c.inL.Add(o)
	if c.l.Len() >= c.k {
		if c.l.Len() > c.k {
			ev := c.l.Pop()
			c.inL.Remove(ev.ID)
			if r := c.refinerOf(ev.ID); r != nil && ev.ID != o {
				if lb, _ := r.Bounds(); lb < c.dk {
					c.queue.Push(ev.ID, int64(lb))
				}
			}
		}
		if front := graph.Dist(c.l.MaxKey()); front < c.dk {
			c.dk = front
		}
	}
}

// processCandidate admits a newly encountered object: compute its initial
// interval (one Morton-list lookup) and file it under Q and L as its bounds
// allow (ProcessCandidate of Algorithm 2 / lines 19-26 of Algorithm 1).
func (c *candidates) processCandidate(o int32) {
	if _, seen := c.ref.Get(o); seen {
		return
	}
	r := c.addRefiner(o)
	lb, ub := r.Bounds()
	if lb < c.dk {
		c.queue.Push(o, int64(lb))
	}
	if ub < c.dk {
		c.updateL(o, ub)
	}
}

// handleObject processes a dequeued object per lines 9-16 of Algorithm 1.
// extraFront is a lower bound on the distance of objects not yet in the
// queue (the suspended Euclidean scan's Front(E) in Algorithm 2; Inf when
// every pending object is queued).
func (c *candidates) handleObject(o int32, extraFront graph.Dist) {
	r := c.refinerOf(o)
	lb, ub := r.Bounds()
	front := graph.Dist(c.queue.MinKey())
	if extraFront < front {
		front = extraFront
	}
	// Refine when the interval may still matter for ordering (lines 9-16,
	// with the Appendix A.1 tie correction). The third clause guards the
	// drop: an object that is neither filed in L nor safely below Dk must
	// keep refining, or a true neighbor could be lost (the edge case the
	// paper's line-6 termination otherwise prevents).
	if ub > front || (ub == front && ub != lb) || (!c.inL.Contains(o) && ub > c.dk) {
		if ub <= c.dk && c.inL.Contains(o) {
			c.l.Remove(o)
			c.inL.Remove(o)
		}
		r.Step()
		lb, ub = r.Bounds()
		if ub <= c.dk {
			c.updateL(o, ub)
		}
		if lb <= c.dk {
			c.queue.Push(o, int64(lb))
		}
	}
	// Else: implicitly dropped — its upper bound is at or below every
	// remaining lower bound, so no remaining object can beat it. File it in
	// L if a tighter earlier Dk kept it out.
	if !c.inL.Contains(o) && ub <= c.dk {
		c.updateL(o, ub)
	}
}

// resultsAppend drains L into dst in ascending distance order, refining any
// unconverged candidate to its exact distance so callers receive true
// network distances (the algorithm's membership is unchanged; see Appendix
// A.1 discussion). The appended segment is insertion-sorted in place — L
// holds at most k entries and arrives near-sorted, and avoiding sort.Slice
// keeps the path allocation-free.
func (c *candidates) resultsAppend(dst []knn.Result) []knn.Result {
	base := len(dst)
	for _, it := range c.l.Items() {
		d := c.refinerOf(it.ID).RefineExact()
		dst = append(dst, knn.Result{Vertex: it.ID, Dist: d})
	}
	seg := dst[base:]
	for i := 1; i < len(seg); i++ {
		for j := i; j > 0 && seg[j].Dist < seg[j-1].Dist; j-- {
			seg[j], seg[j-1] = seg[j-1], seg[j]
		}
	}
	if len(seg) > c.k {
		dst = dst[:base+c.k]
	}
	return dst
}

// DBENN is the Distance Browsing variant of Appendix A.1.1 (Algorithm 2):
// candidates arrive from a suspendable Euclidean NN scan over an object
// R-tree instead of from an Object Hierarchy. It assumes travel-distance
// weights (Euclidean distance lower-bounds network distance), as DisBrw
// does throughout the paper.
type DBENN struct {
	x    *Index
	objs *knn.ObjectSet
	rt   *rtree.Tree

	// Reusable per-session search state: the Distance Browsing candidate
	// machinery and the suspendable Euclidean scan.
	c    candidates
	scan rtree.Scanner
}

// NewDBENN builds the method; the object R-tree is the decoupled object
// index (shared shape with IER, Section 7.4).
func NewDBENN(x *Index, objs *knn.ObjectSet) *DBENN {
	verts := objs.Vertices()
	pts := make([]geo.Point, len(verts))
	for i, v := range verts {
		pts[i] = geo.Point{X: x.G.X[v], Y: x.G.Y[v]}
	}
	return NewDBENNWithTree(x, objs, rtree.New(verts, pts, 0))
}

// NewDBENNWithTree builds the method over a prebuilt object R-tree (shared
// read-only across query sessions; see Rebind — object churn swaps in a
// cloned-and-updated tree rather than mutating this one).
func NewDBENNWithTree(x *Index, objs *knn.ObjectSet, rt *rtree.Tree) *DBENN {
	m := &DBENN{x: x, objs: objs, rt: rt}
	m.c.init(x)
	return m
}

// Name implements knn.Method.
func (m *DBENN) Name() string { return "DisBrw" }

// Rebind swaps the object set and its prebuilt R-tree between queries.
func (m *DBENN) Rebind(objs *knn.ObjectSet, rt *rtree.Tree) {
	m.objs = objs
	m.rt = rt
}

// KNN implements knn.Method.
func (m *DBENN) KNN(qv int32, k int) []knn.Result {
	return m.KNNAppend(qv, k, make([]knn.Result, 0, k))
}

// KNNAppend implements knn.Method's zero-allocation form.
func (m *DBENN) KNNAppend(qv int32, k int, dst []knn.Result) []knn.Result {
	if k > m.objs.Len() {
		k = m.objs.Len()
	}
	if k == 0 {
		return dst
	}
	c := &m.c
	c.reset(qv, k)
	scan := &m.scan
	scan.Start(m.rt, geo.Point{X: m.x.G.X[qv], Y: m.x.G.Y[qv]})
	// Seed with the k Euclidean nearest neighbors, then suspend the scan.
	for i := 0; i < k; i++ {
		nb, ok := scan.Next()
		if !ok {
			break
		}
		c.processCandidate(nb.ID)
	}
	scanOpen := true
	for {
		peek := graph.Inf
		if scanOpen {
			p := scan.PeekDist()
			if math.IsInf(p, 1) {
				scanOpen = false
			} else {
				peek = graph.Dist(math.Floor(p))
				if peek >= c.dk {
					// No further Euclidean NN can beat the kth candidate.
					scanOpen = false
					peek = graph.Inf
				}
			}
		}
		if scanOpen && peek < graph.Dist(c.queue.MinKey()) {
			nb, ok := scan.Next()
			if !ok {
				scanOpen = false
				continue
			}
			c.processCandidate(nb.ID)
			continue
		}
		if c.queue.Empty() {
			if !scanOpen {
				break
			}
			continue
		}
		it := c.queue.Pop()
		o := it.ID
		lb := graph.Dist(it.Key)
		if r := c.refinerOf(o); graph.Dist(r.lb) != lb {
			continue // stale entry superseded by a refinement
		}
		if lb >= c.dk && c.l.Len() >= k {
			break // everything remaining is at least Dk away
		}
		c.handleObject(o, peek)
	}
	return c.resultsAppend(dst)
}

// DisBrw is the Object Hierarchy form of Distance Browsing (Algorithm 1):
// the queue additionally holds hierarchy nodes whose distance intervals are
// derived from the region's Euclidean extent and the lambda range of the
// SILC blocks it intersects.
type DisBrw struct {
	x  *Index
	oh *ObjectHierarchy

	// c is the reusable Distance Browsing candidate machinery.
	c candidates

	// ScannedBlocks counts SILC blocks scanned for node intervals in the
	// last query (the Object Hierarchy overhead of Appendix A.1.1).
	ScannedBlocks int
}

// NewDisBrw builds the method over an Object Hierarchy.
func NewDisBrw(x *Index, oh *ObjectHierarchy) *DisBrw {
	m := &DisBrw{x: x, oh: oh}
	m.c.init(x)
	return m
}

// Name implements knn.Method.
func (m *DisBrw) Name() string { return "DisBrw-OH" }

// SetObjects swaps the Object Hierarchy (the decoupled object index).
func (m *DisBrw) SetObjects(oh *ObjectHierarchy) { m.oh = oh }

// KNN implements knn.Method.
func (m *DisBrw) KNN(qv int32, k int) []knn.Result {
	return m.KNNAppend(qv, k, make([]knn.Result, 0, k))
}

// KNNAppend implements knn.Method's zero-allocation form.
func (m *DisBrw) KNNAppend(qv int32, k int, dst []knn.Result) []knn.Result {
	if k > len(m.oh.objs) {
		k = len(m.oh.objs)
	}
	if k == 0 {
		return dst
	}
	m.ScannedBlocks = 0
	c := &m.c
	c.reset(qv, k)
	qpt := geo.Point{X: m.x.G.X[qv], Y: m.x.G.Y[qv]}
	c.queue.Push(encodeOH(0), 0)

	for !c.queue.Empty() {
		it := c.queue.Pop()
		lb := graph.Dist(it.Key)
		if lb >= c.dk && c.l.Len() >= k {
			break
		}
		if !isOHNode(it.ID) {
			o := it.ID
			if r := c.refinerOf(o); graph.Dist(r.lb) != lb {
				continue
			}
			c.handleObject(o, graph.Inf)
			continue
		}
		ni := decodeOH(it.ID)
		node := &m.oh.nodes[ni]
		if node.isLeaf() {
			for _, o := range m.oh.objs[node.lo:node.hi] {
				// Cheap O(1) Euclidean prune before any interval work
				// (the Appendix A.1 insert-pruning improvement).
				if elb := m.x.G.EuclidLB(qv, o); graph.Dist(elb) >= c.dk {
					continue
				}
				c.processCandidate(o)
			}
			continue
		}
		for _, ch := range node.children {
			cn := &m.oh.nodes[ch]
			clb, cub, scanned := m.nodeInterval(qv, qpt, cn)
			m.ScannedBlocks += scanned
			if clb < c.dk {
				c.queue.Push(encodeOH(ch), int64(clb))
			}
			// Upper bounds for nodes holding >= k objects tighten Dk early
			// (the Appendix A.1 node upper-bound improvement).
			if int(cn.hi-cn.lo) >= k && cub < c.dk {
				c.dk = cub
			}
		}
	}
	return c.resultsAppend(dst)
}

// nodeInterval bounds the network distance from q to any object of node cn:
// Euclidean min/max to the node's bounding rectangle scaled by the lambda
// range of the SILC blocks covering the node's Morton rank span.
func (m *DisBrw) nodeInterval(qv int32, qpt geo.Point, cn *ohNode) (lb, ub graph.Dist, scanned int) {
	lamLo, lamHi, scanned := m.x.LambdaRange(qv, cn.loRank, cn.hiRank)
	dmin := cn.rect.MinDist(qpt)
	dmax := cn.rect.MaxDist(qpt)
	lb = graph.Dist(math.Floor(dmin * lamLo))
	ub = graph.Dist(math.Ceil(dmax * lamHi))
	if ub > graph.Inf {
		ub = graph.Inf
	}
	return lb, ub, scanned
}

func encodeOH(ni int32) int32 { return -(ni + 1) }
func decodeOH(id int32) int32 { return -id - 1 }
func isOHNode(id int32) bool  { return id < 0 }

// ObjectHierarchy is the quadtree-like hierarchy over an object set used by
// Algorithm 1: objects sorted by Morton rank, recursively split into four
// contiguous runs, each node carrying its exact bounding rectangle, object
// range and Morton rank span.
type ObjectHierarchy struct {
	objs  []int32 // object vertices sorted by Morton rank
	nodes []ohNode
}

type ohNode struct {
	lo, hi         int32 // object range [lo, hi)
	loRank, hiRank int32 // Morton rank span of the range
	rect           geo.Rect
	children       []int32
}

func (n *ohNode) isLeaf() bool { return len(n.children) == 0 }

// DefaultOHLeafCap is the Object Hierarchy leaf capacity; the paper found
// shallow hierarchies with ~500-object leaves performed best overall.
const DefaultOHLeafCap = 500

// NewObjectHierarchy builds the hierarchy for objs (leafCap 0 means
// DefaultOHLeafCap).
func (x *Index) NewObjectHierarchy(objs *knn.ObjectSet, leafCap int) *ObjectHierarchy {
	if leafCap <= 0 {
		leafCap = DefaultOHLeafCap
	}
	verts := append([]int32(nil), objs.Vertices()...)
	sort.Slice(verts, func(a, b int) bool { return x.rank[verts[a]] < x.rank[verts[b]] })
	oh := &ObjectHierarchy{objs: verts}
	var build func(lo, hi int32) int32
	build = func(lo, hi int32) int32 {
		n := ohNode{lo: lo, hi: hi, rect: geo.EmptyRect()}
		n.loRank = x.rank[verts[lo]]
		n.hiRank = x.rank[verts[hi-1]]
		for _, v := range verts[lo:hi] {
			n.rect = n.rect.Expand(geo.Point{X: x.G.X[v], Y: x.G.Y[v]})
		}
		id := int32(len(oh.nodes))
		oh.nodes = append(oh.nodes, n)
		if int(hi-lo) > leafCap {
			quarter := (hi - lo + 3) / 4
			var children []int32
			for s := lo; s < hi; s += quarter {
				e := s + quarter
				if e > hi {
					e = hi
				}
				children = append(children, build(s, e))
			}
			oh.nodes[id].children = children
		}
		return id
	}
	if len(verts) > 0 {
		build(0, int32(len(verts)))
	}
	return oh
}

// SizeBytes estimates the hierarchy's footprint.
func (oh *ObjectHierarchy) SizeBytes() int {
	total := len(oh.objs) * 4
	total += len(oh.nodes) * (4*4 + 4*8)
	for i := range oh.nodes {
		total += len(oh.nodes[i].children) * 4
	}
	return total
}
