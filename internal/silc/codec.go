// Binary snapshot codec for SILC — the index whose O(|V|^2 log |V|) build
// makes persistence pay off most. Persists the Morton permutation and every
// source's Morton list (block starts, first moves, and the conservative
// lambda bounds as raw IEEE-754 bits, so reloaded intervals are bit-identical
// to the built ones); the degree-2 chain marks are recomputed from the
// graph. See docs/SNAPSHOT_FORMAT.md.
package silc

import (
	"io"

	"rnknn/internal/graph"
	"rnknn/internal/snapio"
)

// codecVersion is the SILC section layout version.
const codecVersion uint16 = 1

// WriteTo serializes the index (io.WriterTo).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	sw := snapio.NewWriter(w)
	sw.U16(codecVersion)
	sw.Bool(x.ChainOptimization)
	sw.I32s(x.rank)
	sw.I32s(x.byRank)
	// Morton lists as one CSR: per-source offsets, then the block fields as
	// parallel flat arrays.
	n := len(x.trees)
	off := make([]int32, n+1)
	total := 0
	for s, tree := range x.trees {
		total += len(tree)
		off[s+1] = int32(total)
	}
	starts := make([]int32, 0, total)
	firsts := make([]int32, 0, total)
	lamLo := make([]float32, 0, total)
	lamHi := make([]float32, 0, total)
	for _, tree := range x.trees {
		for _, b := range tree {
			starts = append(starts, b.start)
			firsts = append(firsts, b.first)
			lamLo = append(lamLo, b.lamLo)
			lamHi = append(lamHi, b.lamHi)
		}
	}
	sw.I32s(off)
	sw.I32s(starts)
	sw.I32s(firsts)
	sw.F32s(lamLo)
	sw.F32s(lamHi)
	return sw.Result()
}

// Read deserializes an index written by WriteTo over g, validating the
// permutation and CSR dimensions and recomputing the chain marks.
func Read(r io.Reader, g *graph.Graph) (*Index, error) {
	sr := snapio.NewReader(r)
	if v := sr.U16(); sr.Err() == nil && v != codecVersion {
		sr.Failf("silc codec version %d (want %d)", v, codecVersion)
	}
	chainOpt := sr.Bool()
	rank := sr.I32s()
	byRank := sr.I32s()
	off := sr.I32s()
	starts := sr.I32s()
	firsts := sr.I32s()
	lamLo := sr.F32s()
	lamHi := sr.F32s()
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	n := g.NumVertices()
	total := len(starts)
	switch {
	case len(rank) != n || len(byRank) != n:
		sr.Failf("silc permutation has %d/%d entries for %d vertices", len(rank), len(byRank), n)
	case len(off) != n+1 || off[0] != 0 || int(off[n]) != total:
		sr.Failf("silc Morton-list CSR is inconsistent")
	case len(firsts) != total || len(lamLo) != total || len(lamHi) != total:
		sr.Failf("silc block arrays disagree on length")
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	for v := 0; v < n; v++ {
		if rank[v] < 0 || int(rank[v]) >= n || byRank[rank[v]] != int32(v) {
			sr.Failf("silc Morton permutation is not a bijection at vertex %d", v)
			return nil, sr.Err()
		}
	}
	x := &Index{
		G:                 g,
		rank:              rank,
		byRank:            byRank,
		trees:             make([][]block, n),
		isChain:           make([]bool, n),
		ChainOptimization: chainOpt,
	}
	for v := int32(0); v < int32(n); v++ {
		x.isChain[v] = g.Degree(v) <= 2
	}
	blocks := make([]block, total)
	for i := range blocks {
		if firsts[i] < 0 || int(firsts[i]) >= n {
			sr.Failf("silc first move %d out of range at block %d", firsts[i], i)
			return nil, sr.Err()
		}
		blocks[i] = block{start: starts[i], first: firsts[i], lamLo: lamLo[i], lamHi: lamHi[i]}
	}
	for s := 0; s < n; s++ {
		lo, hi := off[s], off[s+1]
		if lo > hi {
			sr.Failf("silc Morton-list offsets not monotone at %d", s)
			return nil, sr.Err()
		}
		tree := blocks[lo:hi:hi]
		if len(tree) == 0 || tree[0].start != 0 {
			sr.Failf("silc source %d has an empty or misaligned Morton list", s)
			return nil, sr.Err()
		}
		for i := range tree {
			if i > 0 && tree[i].start <= tree[i-1].start {
				sr.Failf("silc source %d block starts not increasing", s)
				return nil, sr.Err()
			}
			if tree[i].start < 0 || int(tree[i].start) >= n {
				sr.Failf("silc source %d block start out of range", s)
				return nil, sr.Err()
			}
		}
		x.trees[s] = tree
	}
	return x, nil
}
