// Binary snapshot codec for SILC — the index whose O(|V|^2 log |V|) build
// makes persistence pay off most. Persists the Morton permutation and every
// source's Morton list (block starts, first moves, and the conservative
// lambda bounds as raw IEEE-754 bits, so reloaded intervals are bit-identical
// to the built ones); the degree-2 chain marks are recomputed from the
// graph. Layout v2 writes the permutation and CSR 64-byte-aligned and the
// blocks as one aligned array-of-structs — exactly the in-memory []block
// layout on little-endian hosts — so a mapped snapshot aliases the entire
// Morton-list heap with zero copy; v1 payloads (parallel flat arrays) are
// still read. See docs/SNAPSHOT_FORMAT.md.
package silc

import (
	"encoding/binary"
	"io"
	"math"
	"unsafe"

	"rnknn/internal/graph"
	"rnknn/internal/snapio"
)

// codecVersion is the SILC section layout version.
const codecVersion uint16 = 2

// blockSize is the wire size of one block: start i32, first i32, lamLo
// f32, lamHi f32, little endian — which the compile-time asserts below pin
// to the in-memory struct layout so the aliased AoS read is sound.
const blockSize = 16

var (
	_ [blockSize - unsafe.Sizeof(block{})]byte
	_ [unsafe.Sizeof(block{}) - blockSize]byte
)

// WriteTo serializes the index (io.WriterTo).
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	sw := snapio.NewWriter(w)
	sw.U16(codecVersion)
	sw.Bool(x.ChainOptimization)
	sw.RawI32s(x.rank)
	sw.RawI32s(x.byRank)
	// Morton lists as one CSR: per-source offsets, then the blocks
	// flattened into a single aligned array-of-structs.
	n := len(x.trees)
	off := make([]int32, n+1)
	total := 0
	for s, tree := range x.trees {
		total += len(tree)
		off[s+1] = int32(total)
	}
	blocks := make([]block, 0, total)
	for _, tree := range x.trees {
		blocks = append(blocks, tree...)
	}
	sw.RawI32s(off)
	sw.U32(uint32(total))
	sw.Align64()
	writeBlocks(sw, blocks)
	return sw.Result()
}

// writeBlocks emits the raw little-endian AoS bytes: verbatim on
// little-endian hosts, field-wise elsewhere (identical bytes either way).
func writeBlocks(sw *snapio.Writer, blocks []block) {
	if snapio.HostLittleEndian() {
		if len(blocks) > 0 {
			sw.RawBytes(unsafe.Slice((*byte)(unsafe.Pointer(&blocks[0])), len(blocks)*blockSize))
		}
		return
	}
	var scratch [blockSize]byte
	for i := range blocks {
		b := &blocks[i]
		binary.LittleEndian.PutUint32(scratch[0:], uint32(b.start))
		binary.LittleEndian.PutUint32(scratch[4:], uint32(b.first))
		binary.LittleEndian.PutUint32(scratch[8:], math.Float32bits(b.lamLo))
		binary.LittleEndian.PutUint32(scratch[12:], math.Float32bits(b.lamHi))
		sw.RawBytes(scratch[:])
	}
}

// Read deserializes an index written by WriteTo over g, validating the
// permutation and CSR dimensions and recomputing the chain marks. When sr
// aliases a mapped snapshot, the block heap and permutation arrays are
// views of the mapping and the per-element scans (permutation bijection,
// Morton-list monotonicity) are skipped — they would fault in every page;
// mapped opens trust the snapshot. Dimension checks always run.
func Read(sr *snapio.Source, g *graph.Graph) (*Index, error) {
	version := sr.U16()
	if sr.Err() == nil && version != 1 && version != codecVersion {
		sr.Failf("silc codec version %d (want 1 or %d)", version, codecVersion)
	}
	chainOpt := sr.Bool()
	var rank, byRank, off []int32
	var blocks []block
	if version == 1 {
		rank = sr.I32s()
		byRank = sr.I32s()
		off = sr.I32s()
		starts := sr.I32s()
		firsts := sr.I32s()
		lamLo := sr.F32s()
		lamHi := sr.F32s()
		if sr.Err() != nil {
			return nil, sr.Err()
		}
		if len(firsts) != len(starts) || len(lamLo) != len(starts) || len(lamHi) != len(starts) {
			sr.Failf("silc block arrays disagree on length")
			return nil, sr.Err()
		}
		blocks = make([]block, len(starts))
		for i := range blocks {
			blocks[i] = block{start: starts[i], first: firsts[i], lamLo: lamLo[i], lamHi: lamHi[i]}
		}
	} else {
		rank = sr.AlignedI32s()
		byRank = sr.AlignedI32s()
		off = sr.AlignedI32s()
		n, raw, aliased := sr.AlignedRaw(blockSize, 4)
		if sr.Err() != nil {
			return nil, sr.Err()
		}
		switch {
		case n == 0:
		case aliased:
			blocks = unsafe.Slice((*block)(unsafe.Pointer(&raw[0])), n)
		default:
			blocks = make([]block, n)
			for i := range blocks {
				b := raw[i*blockSize:]
				blocks[i] = block{
					start: int32(binary.LittleEndian.Uint32(b[0:])),
					first: int32(binary.LittleEndian.Uint32(b[4:])),
					lamLo: math.Float32frombits(binary.LittleEndian.Uint32(b[8:])),
					lamHi: math.Float32frombits(binary.LittleEndian.Uint32(b[12:])),
				}
			}
		}
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	n := g.NumVertices()
	total := len(blocks)
	switch {
	case len(rank) != n || len(byRank) != n:
		sr.Failf("silc permutation has %d/%d entries for %d vertices", len(rank), len(byRank), n)
	case len(off) != n+1 || off[0] != 0 || int(off[n]) != total:
		sr.Failf("silc Morton-list CSR is inconsistent")
	}
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	deep := !sr.Aliasing()
	if deep {
		for v := 0; v < n; v++ {
			if rank[v] < 0 || int(rank[v]) >= n || byRank[rank[v]] != int32(v) {
				sr.Failf("silc Morton permutation is not a bijection at vertex %d", v)
				return nil, sr.Err()
			}
		}
	}
	x := &Index{
		G:                 g,
		rank:              rank,
		byRank:            byRank,
		trees:             make([][]block, n),
		isChain:           make([]bool, n),
		ChainOptimization: chainOpt,
	}
	for v := int32(0); v < int32(n); v++ {
		x.isChain[v] = g.Degree(v) <= 2
	}
	if deep {
		for i := range blocks {
			if blocks[i].first < 0 || int(blocks[i].first) >= n {
				sr.Failf("silc first move %d out of range at block %d", blocks[i].first, i)
				return nil, sr.Err()
			}
		}
	}
	for s := 0; s < n; s++ {
		lo, hi := off[s], off[s+1]
		if lo > hi || lo < 0 || int(hi) > total {
			sr.Failf("silc Morton-list offsets not monotone at %d", s)
			return nil, sr.Err()
		}
		tree := blocks[lo:hi:hi]
		if len(tree) == 0 {
			sr.Failf("silc source %d has an empty Morton list", s)
			return nil, sr.Err()
		}
		if deep {
			if tree[0].start != 0 {
				sr.Failf("silc source %d has a misaligned Morton list", s)
				return nil, sr.Err()
			}
			for i := range tree {
				if i > 0 && tree[i].start <= tree[i-1].start {
					sr.Failf("silc source %d block starts not increasing", s)
					return nil, sr.Err()
				}
				if tree[i].start < 0 || int(tree[i].start) >= n {
					sr.Failf("silc source %d block start out of range", s)
					return nil, sr.Err()
				}
			}
		}
		x.trees[s] = tree
	}
	return x, nil
}
