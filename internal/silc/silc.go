// Package silc implements the SILC index (Section 3.3) and the Distance
// Browsing kNN algorithms built on it: the Object Hierarchy form of
// Algorithm 1 and the Euclidean-NN DB-ENN form of Algorithm 2 (Appendix
// A.1.1), including the degree-2 chain refinement optimisation of Appendix
// A.1.2.
//
// For every source vertex s, SILC precomputes the first vertex on the
// shortest path from s to every target ("coloring"), compressed by grouping
// targets that are contiguous in Morton (Z-order) and share the same first
// move — the "Morton List" the paper binary-searches. Each block also
// stores lambda-/lambda+ — the minimum and maximum ratio of network to
// Euclidean distance over its targets — from which a distance interval
// [dE*lambda-, dE*lambda+] is derived and iteratively refined by stepping
// along the shortest path.
package silc

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"rnknn/internal/dijkstra"
	"rnknn/internal/geo"
	"rnknn/internal/graph"
)

// block is one entry of a source's Morton list: the run of Morton-ordered
// vertices starting at rank start share the same shortest-path first move.
type block struct {
	start int32 // first Morton rank covered by this block
	first int32 // first vertex on the shortest path to any target in it
	lamLo float32
	lamHi float32
}

// Index is a built SILC index.
type Index struct {
	G *graph.Graph
	// rank[v] is v's position in the global Morton order; byRank is the
	// inverse permutation.
	rank   []int32
	byRank []int32
	// trees[s] is the Morton list of source s, sorted by block start.
	trees [][]block
	// isChain[v] marks vertices of degree <= 2 (Appendix A.1.2).
	isChain []bool
	// ChainOptimization enables forced moves along degree-2 chains during
	// refinement, skipping Morton-list lookups (OptDisBrw). Default true.
	ChainOptimization bool
}

// Options configures Build.
type Options struct {
	// Parallelism bounds the number of concurrent per-source computations
	// (the build parallelizes trivially, Section 7.2). 0 means NumCPU.
	Parallelism int
}

// Build constructs the SILC index: one Dijkstra plus Morton-list
// compression per vertex. Pre-processing is O(|V|^2 log |V|); intended for
// the smaller networks, as in the paper.
func Build(g *graph.Graph, opts Options) *Index {
	n := g.NumVertices()
	x := &Index{
		G:                 g,
		rank:              make([]int32, n),
		byRank:            make([]int32, n),
		trees:             make([][]block, n),
		isChain:           make([]bool, n),
		ChainOptimization: true,
	}
	for v := int32(0); v < int32(n); v++ {
		x.isChain[v] = g.Degree(v) <= 2
	}

	// Morton order over jittered coordinates; ties broken by vertex id.
	r := geo.EmptyRect()
	for v := 0; v < n; v++ {
		r = r.Expand(geo.Point{X: g.X[v], Y: g.Y[v]})
	}
	grid := geo.NewMortonGrid(r)
	codes := make([]uint64, n)
	for v := 0; v < n; v++ {
		codes[v] = grid.Encode(geo.Point{X: g.X[v], Y: g.Y[v]})
	}
	for i := range x.byRank {
		x.byRank[i] = int32(i)
	}
	sort.Slice(x.byRank, func(a, b int) bool {
		va, vb := x.byRank[a], x.byRank[b]
		if codes[va] != codes[vb] {
			return codes[va] < codes[vb]
		}
		return va < vb
	})
	for i, v := range x.byRank {
		x.rank[v] = int32(i)
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var wg sync.WaitGroup
	next := make(chan int32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			solver := dijkstra.NewSolver(g)
			dist := make([]graph.Dist, n)
			fm := make([]int32, n)
			for s := range next {
				x.trees[s] = buildMortonList(g, x.byRank, s, solver, dist, fm)
			}
		}()
	}
	for s := int32(0); s < int32(n); s++ {
		next <- s
	}
	close(next)
	wg.Wait()
	return x
}

func buildMortonList(g *graph.Graph, byRank []int32, s int32, solver *dijkstra.Solver, dist []graph.Dist, fm []int32) []block {
	solver.AllWithFirstMove(s, dist, fm)
	var list []block
	n := len(byRank)
	i := 0
	for i < n {
		v := byRank[i]
		first := fm[v]
		lo, hi := float32(math.MaxFloat32), float32(0)
		j := i
		for j < n && fm[byRank[j]] == first {
			t := byRank[j]
			if t != s {
				de := g.Euclid(s, t)
				var ratio float64
				if de < 1e-9 {
					ratio = 1e12
				} else {
					ratio = float64(dist[t]) / de
				}
				// Round conservatively so the stored bounds stay valid.
				if r32 := nextDown(ratio); r32 < lo {
					lo = r32
				}
				if r32 := nextUp(ratio); r32 > hi {
					hi = r32
				}
			}
			j++
		}
		if lo > hi { // block contained only s itself
			lo, hi = 1, 1
		}
		list = append(list, block{start: int32(i), first: first, lamLo: lo, lamHi: hi})
		i = j
	}
	return list
}

func nextDown(r float64) float32 {
	f := float32(r)
	if float64(f) > r {
		f = math.Nextafter32(f, 0)
	}
	return f
}

func nextUp(r float64) float32 {
	f := float32(r)
	if float64(f) < r {
		f = math.Nextafter32(f, float32(math.MaxFloat32))
	}
	return f
}

// blockOf returns the Morton-list block of source s covering target rank.
func (x *Index) blockOf(s int32, rank int32) *block {
	tree := x.trees[s]
	lo, hi := 0, len(tree)
	for lo < hi {
		mid := (lo + hi) / 2
		if tree[mid].start <= rank {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &tree[lo-1]
}

// FirstMove returns the first vertex after s on a shortest path from s to
// t. FirstMove(s, s) returns s.
func (x *Index) FirstMove(s, t int32) int32 {
	if s == t {
		return s
	}
	return x.blockOf(s, x.rank[t]).first
}

// LambdaRange returns the lambda-/lambda+ pair of the block of source s
// covering the Morton rank range [loRank, hiRank] (used by the Object
// Hierarchy to bound whole regions; Appendix A.1.1 notes the scan cost).
// ScannedBlocks reports how many blocks the scan touched.
func (x *Index) LambdaRange(s int32, loRank, hiRank int32) (lamLo, lamHi float64, scannedBlocks int) {
	tree := x.trees[s]
	// First block covering loRank.
	lo, hi := 0, len(tree)
	for lo < hi {
		mid := (lo + hi) / 2
		if tree[mid].start <= loRank {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	lamLo, lamHi = math.MaxFloat64, 0
	for ; i < len(tree) && (i == lo-1 || tree[i].start <= hiRank); i++ {
		if float64(tree[i].lamLo) < lamLo {
			lamLo = float64(tree[i].lamLo)
		}
		if float64(tree[i].lamHi) > lamHi {
			lamHi = float64(tree[i].lamHi)
		}
		scannedBlocks++
	}
	return lamLo, lamHi, scannedBlocks
}

// Path computes the full shortest path from s to t by iterated first moves
// (O(m log |V|) for an m-edge path, Section 3.3).
func (x *Index) Path(s, t int32) []int32 {
	path := []int32{s}
	v := s
	for v != t {
		v = x.FirstMove(v, t)
		path = append(path, v)
	}
	return path
}

// SizeBytes estimates the index footprint (Morton lists dominate; the
// paper's O(|V|^1.5) growth shows up as blocks-per-source).
func (x *Index) SizeBytes() int {
	total := len(x.rank)*8 + len(x.isChain)
	for _, t := range x.trees {
		total += len(t) * 16
	}
	return total
}

// AvgBlocks returns the average Morton-list length per source.
func (x *Index) AvgBlocks() float64 {
	total := 0
	for _, t := range x.trees {
		total += len(t)
	}
	return float64(total) / float64(len(x.trees))
}

// Rank exposes the Morton rank of v (used by the Object Hierarchy).
func (x *Index) Rank(v int32) int32 { return x.rank[v] }

// Refiner tracks the distance interval of one (query, target) pair and
// tightens it one shortest-path step at a time (Section 3.3). Lookups are
// skipped along degree-2 chains when ChainOptimization is on.
type Refiner struct {
	x      *Index
	t      int32
	prev   int32
	vn     int32
	d      graph.Dist // distance from the query to vn
	lb, ub graph.Dist
	// Lookups counts Morton-list lookups performed (the chain optimisation
	// statistic of Figures 20/21).
	Lookups int
}

// NewRefiner starts a refinement of d(q, t) with the initial interval from
// q's Morton list.
func (x *Index) NewRefiner(q, t int32) *Refiner {
	r := &Refiner{}
	r.Init(x, q, t)
	return r
}

// Init (re)starts r as a refinement of d(q, t) — the in-place form that
// lets Distance Browsing keep its refiners in a reusable arena instead of
// allocating one per candidate object.
func (r *Refiner) Init(x *Index, q, t int32) {
	*r = Refiner{x: x, t: t, prev: -1, vn: q}
	if q == t {
		return // lb = ub = 0
	}
	r.setInterval()
}

// Bounds returns the current [lower, upper] interval.
func (r *Refiner) Bounds() (lb, ub graph.Dist) { return r.lb, r.ub }

// Exact reports whether the interval has converged (vn reached t).
func (r *Refiner) Exact() bool { return r.lb == r.ub }

func (r *Refiner) setInterval() {
	x := r.x
	b := x.blockOf(r.vn, x.rank[r.t])
	r.Lookups++
	de := x.G.Euclid(r.vn, r.t)
	r.lb = r.d + graph.Dist(math.Floor(de*float64(b.lamLo)))
	r.ub = r.d + graph.Dist(math.Ceil(de*float64(b.lamHi)))
	if r.ub < r.lb {
		r.ub = r.lb
	}
}

// Step advances one vertex along the shortest path (following forced moves
// along chains without lookups) and recomputes the interval.
func (r *Refiner) Step() {
	if r.Exact() {
		return
	}
	x := r.x
	g := x.G
	for {
		var next int32 = -1
		if x.ChainOptimization && x.isChain[r.vn] {
			next = r.forcedMove()
		}
		if next == -1 {
			next = x.blockOf(r.vn, x.rank[r.t]).first
			r.Lookups++
		}
		w, _ := g.EdgeWeightBetween(r.vn, next)
		r.d += graph.Dist(w)
		r.prev = r.vn
		r.vn = next
		if r.vn == r.t {
			r.lb, r.ub = r.d, r.d
			return
		}
		// Keep consuming forced chain moves in the same Step; each one
		// saves an O(log |V|) lookup (the "jump" of Appendix A.1.2).
		if !(x.ChainOptimization && x.isChain[r.vn] && r.forcedMove() != -1) {
			break
		}
	}
	r.setInterval()
}

// forcedMove returns the unique continuation at a degree<=2 vertex, or -1
// when the move is ambiguous (no previous vertex at a degree-2 vertex).
func (r *Refiner) forcedMove() int32 {
	g := r.x.G
	ts, _ := g.Neighbors(r.vn)
	switch len(ts) {
	case 1:
		if ts[0] != r.prev {
			return ts[0]
		}
	case 2:
		if r.prev == ts[0] {
			return ts[1]
		}
		if r.prev == ts[1] {
			return ts[0]
		}
	}
	return -1
}

// RefineExact runs refinement to convergence and returns the exact network
// distance d(q, t).
func (r *Refiner) RefineExact() graph.Dist {
	for !r.Exact() {
		r.Step()
	}
	return r.lb
}
