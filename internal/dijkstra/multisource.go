package dijkstra

import (
	"math/bits"

	"rnknn/internal/graph"
	"rnknn/internal/pqueue"
)

// MultiSource is a shared expansion frontier for a group of nearby source
// vertices: one priority-queue sweep labels every reached vertex with a
// distance vector (one component per source) instead of running one
// Dijkstra per source. Each vertex's adjacency is scanned once per settle
// and the relaxation updates all components together, which is what makes a
// clustered group cheaper than independent expansions: the heap traffic and
// the memory traffic over the graph are paid once for the whole group.
//
// Exactness. The queue is keyed by the minimum component, so the sweep is a
// plain multi-source Dijkstra on the min label — a vertex's minimum
// component is final at its first pop. Non-minimum components may still
// improve afterwards (a path serving a farther source can arrive through
// vertices with larger min keys), so the frontier is label-correcting: any
// later improvement re-queues the vertex and its out-edges are relaxed
// again. Labels read after Expand returns are exact shortest distances.
// Early termination stays exact too: every queued entry's components are
// bounded below by its key, and keys only grow along relaxations, so once
// the queue minimum exceeds the caller's bound no label at or below the
// bound can change — see Expand.
//
// All state is arena-backed and stamped, so a warm MultiSource expands
// without heap allocations. Not safe for concurrent use.
type MultiSource struct {
	g     *graph.Graph
	width int

	// slot[v], valid when stamp[v] == cur, is v's index into the touched
	// list and the labels arena.
	slot  []int32
	stamp []uint32
	cur   uint32

	// labels holds the distance vectors: touched vertex i's components live
	// at labels[i*width : (i+1)*width].
	labels []graph.Dist
	// touched lists the labeled vertices in first-label order.
	touched []int32
	// pending[i] marks touched vertex i as queued with its current minimum;
	// popped[i] marks its first settle (the onSettle callback already ran).
	pending []bool
	popped  []bool
	// dirty[i] is the set of components of touched vertex i improved since
	// its last propagation: a pop relaxes only those, so the total
	// relaxation work stays proportional to the per-source Dijkstra work
	// instead of width times the pop count. This is what caps group width
	// at MaxWidth.
	dirty []uint64
	// minv[i] caches the minimum component of touched vertex i (labels only
	// decrease, so it is maintained incrementally and never rescanned).
	minv []graph.Dist

	q *pqueue.Queue

	// Interrupt, when non-nil, is polled every interruptStride settles; a
	// true return abandons the expansion (labels are then partial).
	Interrupt func() bool

	// Bounds, when non-nil, holds one live pruning bound per source: a
	// relaxation of component u producing a value above Bounds[u] is
	// skipped. A vertex whose distance from source u exceeds the bound
	// cannot lie on a shortest path to anything source u still cares about
	// (suffixes are nonnegative), so each member's wave expands only over
	// its own region instead of the widest member's — the per-member
	// termination rule of the single-query search, applied per component.
	// The caller may tighten entries during onSettle; labels for component
	// u are then exact wherever they are at or below the final Bounds[u].
	Bounds []graph.Dist

	// SettledVertices counts first settles of the last Expand (an
	// experiment statistic mirroring INE.VisitedVertices).
	SettledVertices int
	// Relabeled counts label-correcting re-settles of the last Expand —
	// the price of exactness, near zero for tightly clustered sources.
	Relabeled int
}

// interruptStride matches INE's cancellation-poll cadence.
const interruptStride = 256

// MaxWidth is the largest group one Expand accepts: the improved-component
// sets are single machine words. Callers split larger groups.
const MaxWidth = 64

// NewMultiSource returns a frontier over g.
func NewMultiSource(g *graph.Graph) *MultiSource {
	return &MultiSource{
		g:     g,
		slot:  make([]int32, g.NumVertices()),
		stamp: make([]uint32, g.NumVertices()),
		q:     pqueue.NewQueue(1024),
	}
}

// Expand runs the shared frontier from sources. onSettle is called exactly
// once per reached vertex, at its first pop, with the vertex and its current
// label vector (component u is the tentative distance from sources[u]; Inf
// when that source has not reached v yet). The callback returns the caller's
// current pruning bound: once the queue minimum exceeds it, every label at
// or below the bound is final and the expansion stops. Return graph.Inf for
// no bound.
//
// After Expand returns, Label reports exact distances for every vertex whose
// final distance from the relevant source is at or below the bound in force
// at termination (all reached vertices when unbounded).
func (ms *MultiSource) Expand(sources []int32, onSettle func(v int32, labels []graph.Dist) graph.Dist) {
	w := len(sources)
	if w == 0 {
		return
	}
	if w > MaxWidth {
		panic("dijkstra: MultiSource group wider than MaxWidth")
	}
	ms.width = w
	ms.cur++
	if ms.cur == 0 {
		for i := range ms.stamp {
			ms.stamp[i] = 0
		}
		ms.cur = 1
	}
	ms.touched = ms.touched[:0]
	ms.labels = ms.labels[:0]
	ms.q.Reset()
	ms.SettledVertices = 0
	ms.Relabeled = 0

	for u, s := range sources {
		sl := ms.touch(s)
		ms.labels[int(sl)*w+u] = 0
		ms.dirty[sl] |= 1 << uint(u)
		ms.minv[sl] = 0
		if !ms.pending[sl] {
			ms.pending[sl] = true
			ms.q.Push(s, 0)
		}
	}

	full := uint64(1)<<uint(w) - 1
	if w == 64 {
		full = ^uint64(0)
	}
	bound := graph.Inf
	polls := 0
	for !ms.q.Empty() {
		it := ms.q.Pop()
		v := it.ID
		sl := ms.slot[v] // touched by construction: only labeled vertices are queued
		if !ms.pending[sl] {
			continue // stale duplicate
		}
		// The newest entry for v carries its current minimum, and pops come
		// in key order, so it.Key is v's minimum component (see type doc).
		if it.Key > int64(bound) {
			break
		}
		ms.pending[sl] = false
		lv := ms.labels[int(sl)*w : int(sl)*w+w]
		if !ms.popped[sl] {
			ms.popped[sl] = true
			ms.SettledVertices++
			if b := onSettle(v, lv); b < bound {
				bound = b
			}
			polls++
			if ms.Interrupt != nil && polls%interruptStride == 0 && ms.Interrupt() {
				return
			}
		} else {
			ms.Relabeled++
		}
		// Propagate only the components improved since v's last
		// propagation; the rest already pushed their current values.
		prop := ms.dirty[sl]
		ms.dirty[sl] = 0
		if prop == 0 {
			continue
		}
		ts, ws := ms.g.Neighbors(v)
		for i, t := range ts {
			wt := graph.Dist(ws[i])
			tl := ms.touch(t)
			lt := ms.labels[int(tl)*w : int(tl)*w+w]
			var imp uint64
			if prop == full {
				// Dense fast path: most pops at a settle front propagate
				// every component; a straight loop beats bit scanning.
				for u := 0; u < w; u++ {
					nd := lv[u] + wt
					if nd >= lt[u] || (ms.Bounds != nil && nd > ms.Bounds[u]) {
						continue
					}
					lt[u] = nd
					imp |= 1 << uint(u)
					if nd < ms.minv[tl] {
						ms.minv[tl] = nd
					}
				}
			} else {
				for mk := prop; mk != 0; mk &= mk - 1 {
					u := bits.TrailingZeros64(mk)
					nd := lv[u] + wt
					if nd >= lt[u] || (ms.Bounds != nil && nd > ms.Bounds[u]) {
						continue
					}
					lt[u] = nd
					imp |= 1 << uint(u)
					if nd < ms.minv[tl] {
						ms.minv[tl] = nd
					}
				}
			}
			if imp == 0 {
				continue
			}
			ms.dirty[tl] |= imp
			// Skip the push when even the minimum cannot matter anymore:
			// components only grow along future relaxations. The dirty bits
			// stay set, so a later push propagates these improvements too.
			if ms.minv[tl] <= bound {
				ms.pending[tl] = true
				ms.q.Push(t, int64(ms.minv[tl]))
			}
		}
	}
}

// touch is ensure plus arena growth for the per-slot state.
func (ms *MultiSource) touch(v int32) int32 {
	if ms.stamp[v] == ms.cur {
		return ms.slot[v]
	}
	sl := int32(len(ms.touched))
	ms.slot[v] = sl
	ms.stamp[v] = ms.cur
	ms.touched = append(ms.touched, v)
	base := len(ms.labels)
	need := base + ms.width
	if cap(ms.labels) < need {
		grown := make([]graph.Dist, base, need+need/2+64*ms.width)
		copy(grown, ms.labels)
		ms.labels = grown
	}
	ms.labels = ms.labels[:need]
	for i := base; i < need; i++ {
		ms.labels[i] = graph.Inf
	}
	if int(sl) < len(ms.pending) {
		ms.pending[sl] = false
		ms.popped[sl] = false
		ms.dirty[sl] = 0
		ms.minv[sl] = graph.Inf
	} else {
		ms.pending = append(ms.pending, false)
		ms.popped = append(ms.popped, false)
		ms.dirty = append(ms.dirty, 0)
		ms.minv = append(ms.minv, graph.Inf)
	}
	return sl
}

// Label returns the final distance from sources[u] (of the last Expand) to
// v, or graph.Inf when that source never reached v.
func (ms *MultiSource) Label(v int32, u int) graph.Dist {
	if ms.stamp[v] != ms.cur {
		return graph.Inf
	}
	return ms.labels[int(ms.slot[v])*ms.width+u]
}

// Settled returns the vertices labeled by the last Expand, in first-label
// order; the slice is valid until the next Expand.
func (ms *MultiSource) Settled() []int32 { return ms.touched }
