package dijkstra_test

import (
	"math/rand"
	"testing"

	"rnknn/internal/dijkstra"
	"rnknn/internal/gen"
	"rnknn/internal/graph"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 12, Cols: 14, Seed: 7})
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	return g
}

// bellmanFord is an independent reference implementation.
func bellmanFord(g *graph.Graph, src int32) []graph.Dist {
	n := g.NumVertices()
	d := make([]graph.Dist, n)
	for i := range d {
		d[i] = graph.Inf
	}
	d[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := int32(0); u < int32(n); u++ {
			if d[u] == graph.Inf {
				continue
			}
			ts, ws := g.Neighbors(u)
			for i, v := range ts {
				if nd := d[u] + graph.Dist(ws[i]); nd < d[v] {
					d[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return d
}

func TestAllMatchesBellmanFord(t *testing.T) {
	g := testGraph(t)
	s := dijkstra.NewSolver(g)
	dist := make([]graph.Dist, g.NumVertices())
	for _, src := range []int32{0, 5, int32(g.NumVertices() - 1)} {
		s.All(src, dist)
		want := bellmanFord(g, src)
		for v := range want {
			if dist[v] != want[v] {
				t.Fatalf("src=%d v=%d: got %d want %d", src, v, dist[v], want[v])
			}
		}
	}
}

func TestDistancePointToPoint(t *testing.T) {
	g := testGraph(t)
	s := dijkstra.NewSolver(g)
	want := bellmanFord(g, 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		dst := int32(rng.Intn(g.NumVertices()))
		if got := s.Distance(3, dst); got != want[dst] {
			t.Fatalf("Distance(3,%d) = %d, want %d", dst, got, want[dst])
		}
	}
	if s.Distance(7, 7) != 0 {
		t.Fatal("self distance must be 0")
	}
}

func TestDistancesTo(t *testing.T) {
	g := testGraph(t)
	s := dijkstra.NewSolver(g)
	want := bellmanFord(g, 11)
	targets := []int32{0, 11, 50, 99, 120}
	got := s.DistancesTo(11, targets)
	for i, tg := range targets {
		if got[i] != want[tg] {
			t.Fatalf("DistancesTo[%d] = %d, want %d", tg, got[i], want[tg])
		}
	}
}

func TestSolverReuseAcrossSearches(t *testing.T) {
	g := testGraph(t)
	s := dijkstra.NewSolver(g)
	d1 := s.Distance(0, 10)
	_ = s.Distance(40, 80)
	d2 := s.Distance(0, 10)
	if d1 != d2 {
		t.Fatalf("reused solver diverged: %d vs %d", d1, d2)
	}
}

func TestAllWithFirstMove(t *testing.T) {
	g := testGraph(t)
	s := dijkstra.NewSolver(g)
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	fm := make([]int32, n)
	src := int32(17)
	s.AllWithFirstMove(src, dist, fm)
	want := bellmanFord(g, src)
	adj := map[int32]bool{}
	ts, ws := g.Neighbors(src)
	adjW := map[int32]graph.Dist{}
	for i, v := range ts {
		adj[v] = true
		adjW[v] = graph.Dist(ws[i])
	}
	for v := 0; v < n; v++ {
		if dist[v] != want[v] {
			t.Fatalf("dist mismatch at %d", v)
		}
		if int32(v) == src {
			if fm[v] != src {
				t.Fatalf("firstMove[src] = %d", fm[v])
			}
			continue
		}
		f := fm[v]
		if !adj[f] {
			t.Fatalf("first move %d of %d is not adjacent to src", f, v)
		}
		// The first move must be consistent: d(src,v) = w(src,f) + d(f,v).
		df := bellmanFord(g, f)
		if adjW[f]+df[v] != want[v] {
			t.Fatalf("first move %d for %d not on a shortest path", f, v)
		}
	}
}

func TestResumableMonotoneAndComplete(t *testing.T) {
	g := testGraph(t)
	r := dijkstra.NewResumable(g, 0)
	want := bellmanFord(g, 0)
	prev := graph.Dist(-1)
	seen := 0
	for {
		v, d, ok := r.Next()
		if !ok {
			break
		}
		if d < prev {
			t.Fatal("settled distances not monotone")
		}
		prev = d
		if want[v] != d {
			t.Fatalf("resumable dist %d for %d, want %d", d, v, want[v])
		}
		seen++
	}
	if seen != g.NumVertices() {
		t.Fatalf("settled %d of %d vertices", seen, g.NumVertices())
	}
}

func TestResumableDistanceTo(t *testing.T) {
	g := testGraph(t)
	want := bellmanFord(g, 5)
	r := dijkstra.NewResumable(g, 5)
	// Query out of order; each answer must still be exact.
	for _, v := range []int32{100, 3, 100, 60, 5} {
		if got := r.DistanceTo(v); got != want[v] {
			t.Fatalf("DistanceTo(%d) = %d, want %d", v, got, want[v])
		}
	}
}
