// Package dijkstra implements the Dijkstra searches used both as the
// baseline distance oracle (IER-Dijk, Figure 4) and as the construction
// workhorse for the SILC, G-tree and ROAD indexes.
//
// A Solver owns reusable per-search state (distance array with version
// stamping, settled bit set, duplicate-tolerant binary heap) so repeated
// searches over the same graph allocate nothing.
package dijkstra

import (
	"rnknn/internal/bitset"
	"rnknn/internal/graph"
	"rnknn/internal/pqueue"
)

// Solver runs Dijkstra searches over a fixed graph with reusable state.
// It is not safe for concurrent use; create one Solver per goroutine.
type Solver struct {
	g       *graph.Graph
	dist    []graph.Dist
	stamp   []uint32
	cur     uint32
	settled *bitset.Set
	q       *pqueue.Queue
}

// NewSolver returns a Solver for g (using g's active weight kind).
func NewSolver(g *graph.Graph) *Solver {
	n := g.NumVertices()
	return &Solver{
		g:       g,
		dist:    make([]graph.Dist, n),
		stamp:   make([]uint32, n),
		settled: bitset.New(n),
		q:       pqueue.NewQueue(1024),
	}
}

// Graph returns the solver's graph.
func (s *Solver) Graph() *graph.Graph { return s.g }

func (s *Solver) begin(src int32) {
	s.cur++
	if s.cur == 0 { // stamp wrapped; reset everything once
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.cur = 1
	}
	s.settled.Reset()
	s.q.Reset()
	s.setDist(src, 0)
	s.q.Push(src, 0)
}

func (s *Solver) setDist(v int32, d graph.Dist) {
	s.dist[v] = d
	s.stamp[v] = s.cur
}

func (s *Solver) distOf(v int32) graph.Dist {
	if s.stamp[v] != s.cur {
		return graph.Inf
	}
	return s.dist[v]
}

// Distance returns d(src, dst), terminating as soon as dst is settled.
func (s *Solver) Distance(src, dst int32) graph.Dist {
	if src == dst {
		return 0
	}
	s.begin(src)
	for !s.q.Empty() {
		it := s.q.Pop()
		v := it.ID
		if s.settled.Get(v) {
			continue
		}
		s.settled.Set(v)
		if v == dst {
			return graph.Dist(it.Key)
		}
		s.relax(v, graph.Dist(it.Key))
	}
	return graph.Inf
}

func (s *Solver) relax(v int32, dv graph.Dist) {
	ts, ws := s.g.Neighbors(v)
	for i, t := range ts {
		if s.settled.Get(t) {
			continue
		}
		nd := dv + graph.Dist(ws[i])
		if nd < s.distOf(t) {
			s.setDist(t, nd)
			s.q.Push(t, int64(nd))
		}
	}
}

// DistancesTo returns d(src, t) for each target, terminating once every
// target is settled. Unreachable targets get graph.Inf.
func (s *Solver) DistancesTo(src int32, targets []int32) []graph.Dist {
	out := make([]graph.Dist, len(targets))
	for i := range out {
		out[i] = graph.Inf
	}
	remaining := 0
	want := make(map[int32][]int, len(targets))
	for i, t := range targets {
		if t == src {
			out[i] = 0
			continue
		}
		want[t] = append(want[t], i)
		remaining++
	}
	if remaining == 0 {
		return out
	}
	s.begin(src)
	for !s.q.Empty() && remaining > 0 {
		it := s.q.Pop()
		v := it.ID
		if s.settled.Get(v) {
			continue
		}
		s.settled.Set(v)
		if idxs, ok := want[v]; ok {
			for _, i := range idxs {
				out[i] = graph.Dist(it.Key)
			}
			remaining -= len(idxs)
		}
		s.relax(v, graph.Dist(it.Key))
	}
	return out
}

// All computes the full single-source shortest-path distances from src into
// out, which must have length |V|. Unreachable vertices get graph.Inf.
func (s *Solver) All(src int32, out []graph.Dist) {
	for i := range out {
		out[i] = graph.Inf
	}
	s.begin(src)
	for !s.q.Empty() {
		it := s.q.Pop()
		v := it.ID
		if s.settled.Get(v) {
			continue
		}
		s.settled.Set(v)
		out[v] = graph.Dist(it.Key)
		s.relax(v, graph.Dist(it.Key))
	}
}

// AllWithFirstMove computes full SSSP from src, additionally recording for
// every reached vertex t the first vertex after src on a shortest path from
// src to t (the SILC "color", Section 3.3). firstMove[src] is set to src.
// Both slices must have length |V|.
func (s *Solver) AllWithFirstMove(src int32, out []graph.Dist, firstMove []int32) {
	for i := range out {
		out[i] = graph.Inf
		firstMove[i] = -1
	}
	s.begin(src)
	firstMove[src] = src
	// fm tracks the tentative first move for queued vertices.
	fm := firstMove
	for !s.q.Empty() {
		it := s.q.Pop()
		v := it.ID
		if s.settled.Get(v) {
			continue
		}
		s.settled.Set(v)
		dv := graph.Dist(it.Key)
		out[v] = dv
		ts, ws := s.g.Neighbors(v)
		for i, t := range ts {
			if s.settled.Get(t) {
				continue
			}
			nd := dv + graph.Dist(ws[i])
			if nd < s.distOf(t) {
				s.setDist(t, nd)
				s.q.Push(t, int64(nd))
				if v == src {
					fm[t] = t
				} else {
					fm[t] = fm[v]
				}
			}
		}
	}
}

// Resumable is a suspendable Dijkstra expansion from a fixed source: callers
// pull settled vertices in nondecreasing distance order via Next, which is
// how IER-Dijk amortizes repeated network-distance computations from the
// same query vertex. The zero value is unusable; call NewResumable.
type Resumable struct {
	s    *Solver
	done bool
}

// NewResumable starts a resumable expansion from src.
func NewResumable(g *graph.Graph, src int32) *Resumable {
	r := &Resumable{s: NewSolver(g)}
	r.s.begin(src)
	return r
}

// Reset restarts the expansion from a new source, reusing the solver's
// stamped arrays and heap backing — repeated resumable searches from one
// session allocate nothing.
func (r *Resumable) Reset(src int32) {
	r.done = false
	r.s.begin(src)
}

// Next returns the next settled vertex and its distance, or ok=false when
// the graph is exhausted.
func (r *Resumable) Next() (v int32, d graph.Dist, ok bool) {
	if r.done {
		return 0, 0, false
	}
	s := r.s
	for !s.q.Empty() {
		it := s.q.Pop()
		u := it.ID
		if s.settled.Get(u) {
			continue
		}
		s.settled.Set(u)
		s.relax(u, graph.Dist(it.Key))
		return u, graph.Dist(it.Key), true
	}
	r.done = true
	return 0, 0, false
}

// DistanceTo returns the settled distance to v if already settled, else
// advances the expansion until v is settled or the graph is exhausted.
func (r *Resumable) DistanceTo(v int32) graph.Dist {
	s := r.s
	if s.settled.Get(v) {
		return s.dist[v] // settled implies stamped in this search
	}
	for {
		u, d, ok := r.Next()
		if !ok {
			return graph.Inf
		}
		if u == v {
			return d
		}
	}
}

// SettledCount returns how many vertices have been settled so far.
func (r *Resumable) SettledCount() int { return r.s.settled.Count() }
