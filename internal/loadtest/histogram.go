package loadtest

import (
	"math/bits"
	"sync"
	"time"
)

// Histogram records durations into HDR-style buckets: one power-of-two
// magnitude per row, subdivided into 32 linear sub-buckets, covering 1µs
// to ~4398s with a worst-case quantile error of ~3% — the standard
// trade-off for latency reporting, where the shape of the tail matters and
// exact nanoseconds do not. Safe for concurrent Record from any number of
// request goroutines.
type Histogram struct {
	mu      sync.Mutex
	buckets [numMagnitudes * subBuckets]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

const (
	// Durations are bucketed in microseconds; sub-microsecond samples land
	// in the first bucket.
	numMagnitudes = 32
	subBuckets    = 32
	subShiftBits  = 5 // log2(subBuckets)
)

// bucketIndex maps a duration in microseconds to its bucket.
func bucketIndex(us uint64) int {
	if us < subBuckets {
		return int(us)
	}
	mag := bits.Len64(us) - subShiftBits // row: top 5 bits are the sub-bucket
	sub := us >> uint(mag-1) & (subBuckets - 1)
	idx := mag*subBuckets + int(sub)
	if idx >= numMagnitudes*subBuckets {
		return numMagnitudes*subBuckets - 1
	}
	return idx
}

// bucketValue returns a representative duration (the bucket's lower bound)
// in microseconds.
func bucketValue(idx int) uint64 {
	mag := idx / subBuckets
	sub := uint64(idx % subBuckets)
	if mag == 0 {
		return sub
	}
	return (subBuckets + sub) << uint(mag-1)
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := bucketIndex(uint64(d / time.Microsecond))
	h.mu.Lock()
	h.buckets[idx]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean sample, 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (q in [0,1]) as the lower bound of the
// bucket holding that rank, 0 when empty. Quantile(0.5) is the median.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count-1))
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if c > 0 && seen > rank {
			return time.Duration(bucketValue(i)) * time.Microsecond
		}
	}
	return h.max
}
