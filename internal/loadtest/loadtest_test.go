package loadtest

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestZipfDistribution checks the sampler's empirical frequencies against
// the analytic law for the exponents loadgen exposes — including s = 1.0,
// which math/rand's Zipf cannot generate.
func TestZipfDistribution(t *testing.T) {
	const n, draws = 64, 200000
	for _, s := range []float64{0, 0.5, 1.0, 1.5} {
		z := NewZipf(rand.New(rand.NewSource(1)), s, n)
		if z.N() != n {
			t.Fatalf("s=%g: N=%d, want %d", s, z.N(), n)
		}
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Sample()]++
		}
		total := 0.0
		for i := 0; i < n; i++ {
			total += 1.0 / math.Pow(float64(i+1), s)
		}
		// The head ranks have enough mass for a tight relative check.
		for rank := 0; rank < 4; rank++ {
			want := 1.0 / math.Pow(float64(rank+1), s) / total
			got := float64(counts[rank]) / draws
			if math.Abs(got-want) > 0.15*want+0.002 {
				t.Errorf("s=%g rank %d: frequency %.4f, want %.4f", s, rank, got, want)
			}
		}
		// Skew ordering: rank 0 must dominate the tail for s > 0.
		if s > 0 && counts[0] <= counts[n-1] {
			t.Errorf("s=%g: rank 0 count %d not above rank %d count %d", s, counts[0], n-1, counts[n-1])
		}
	}
}

// TestZipfDegenerate covers the n <= 1 guard.
func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(1)), 1.0, 0)
	for i := 0; i < 10; i++ {
		if got := z.Sample(); got != 0 {
			t.Fatalf("Sample()=%d on single-rank sampler", got)
		}
	}
}

// TestHistogramQuantiles records a known distribution and checks the
// quantiles land within the documented ~3% bucket resolution.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..10000 microseconds, once each: quantile q is ~q*10000µs.
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 10000 {
		t.Fatalf("Count=%d", h.Count())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 5000 * time.Microsecond},
		{0.99, 9900 * time.Microsecond},
		{0.999, 9990 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		lo := time.Duration(float64(tc.want) * 0.94)
		if got < lo || got > tc.want {
			t.Errorf("Quantile(%g)=%v, want in [%v, %v]", tc.q, got, lo, tc.want)
		}
	}
	if h.Max() != 10000*time.Microsecond {
		t.Errorf("Max=%v", h.Max())
	}
	mean := h.Mean()
	if mean < 4900*time.Microsecond || mean > 5100*time.Microsecond {
		t.Errorf("Mean=%v, want ~5000µs", mean)
	}
}

// TestHistogramEdges covers empty, zero/negative samples, and monotone
// bucket boundaries.
func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(0)
	h.Record(-time.Second)
	h.Record(500 * time.Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("Count=%d", h.Count())
	}
	if h.Quantile(1) != 0 {
		t.Fatalf("all sub-µs samples: p100=%v", h.Quantile(1))
	}
	// Bucket values are nondecreasing and bucketIndex inverts onto a bucket
	// whose lower bound does not exceed the sample.
	prev := uint64(0)
	for idx := 0; idx < numMagnitudes*subBuckets; idx++ {
		v := bucketValue(idx)
		if v < prev {
			t.Fatalf("bucketValue(%d)=%d < bucketValue(%d)=%d", idx, v, idx-1, prev)
		}
		prev = v
	}
	for _, us := range []uint64{0, 1, 31, 32, 33, 63, 64, 1000, 1 << 20, 1 << 40} {
		idx := bucketIndex(us)
		if lb := bucketValue(idx); lb > us {
			t.Errorf("bucketIndex(%d)=%d has lower bound %d > sample", us, idx, lb)
		}
	}
}
