// Package loadtest holds the measurement primitives cmd/loadgen is built
// from: a Zipf sampler that (unlike math/rand's, which requires s > 1)
// supports the whole exponent range including the classic s = 1.0 web-
// traffic skew, and an HDR-style log-bucketed latency histogram with
// quantile extraction.
package loadtest

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. s = 0 is uniform; s = 1 is the canonical heavy-tailed
// request skew. Sampling is inverse-CDF over a precomputed cumulative
// table (O(n) setup, O(log n) per sample), which is what permits any
// s >= 0. Not safe for concurrent use; give each goroutine its own.
type Zipf struct {
	rng *rand.Rand
	cum []float64
}

// NewZipf builds a sampler over n ranks with exponent s using rng.
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{rng: rng, cum: cum}
}

// Sample draws one rank in [0, n).
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}

// N returns the rank-space size.
func (z *Zipf) N() int { return len(z.cum) }
