// Package cliutil holds the flag-handling conventions shared by the cmd/
// binaries, so the usage behavior documented in cmd/README.md lives in one
// place.
package cliutil

import (
	"flag"
	"fmt"
	"os"
)

// UsageExit prints the formatted error followed by the flag defaults (and
// trailer, when non-empty, as a final line), then exits with status 2 —
// flag's own usage convention. Every cmd/ binary routes invalid flag values
// through it.
func UsageExit(trailer, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n\n", args...)
	fmt.Fprintf(os.Stderr, "usage of %s:\n", os.Args[0])
	flag.PrintDefaults()
	if trailer != "" {
		fmt.Fprintln(os.Stderr, "\n"+trailer)
	}
	os.Exit(2)
}
