package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rnknn/internal/geo"
)

func randomPoints(n int, seed int64) ([]int32, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int32, n)
	pts := make([]geo.Point, n)
	for i := range ids {
		ids[i] = int32(i)
		pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return ids, pts
}

func bruteKNN(pts []geo.Point, q geo.Point, k int) []float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = q.Dist(p)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	ids, pts := randomPoints(500, 1)
	tr := New(ids, pts, 8)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		q := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		k := 1 + rng.Intn(20)
		got := tr.KNearest(q, k)
		want := bruteKNN(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d results", k, len(got))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("k=%d i=%d: got %v want %v", k, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestScannerMonotoneExhaustive(t *testing.T) {
	ids, pts := randomPoints(300, 3)
	tr := New(ids, pts, 0)
	s := tr.NewScan(geo.Point{X: 500, Y: 500})
	prev := -1.0
	count := 0
	seen := map[int32]bool{}
	for {
		n, ok := s.Next()
		if !ok {
			break
		}
		if n.Dist < prev {
			t.Fatal("scan distances not monotone")
		}
		prev = n.Dist
		if seen[n.ID] {
			t.Fatalf("duplicate id %d", n.ID)
		}
		seen[n.ID] = true
		count++
	}
	if count != 300 {
		t.Fatalf("scan returned %d of 300", count)
	}
}

func TestScannerSuspendResume(t *testing.T) {
	ids, pts := randomPoints(200, 4)
	tr := New(ids, pts, 0)
	q := geo.Point{X: 10, Y: 10}
	s := tr.NewScan(q)
	var first []Neighbor
	for i := 0; i < 5; i++ {
		n, _ := s.Next()
		first = append(first, n)
	}
	// PeekDist lower-bounds the next result.
	peek := s.PeekDist()
	n6, _ := s.Next()
	if n6.Dist+1e-12 < peek {
		t.Fatalf("PeekDist %v above next %v", peek, n6.Dist)
	}
	// All returned so far must equal a fresh scan's prefix.
	fresh := tr.KNearest(q, 6)
	for i := range first {
		if fresh[i].Dist != first[i].Dist {
			t.Fatal("suspended scan diverged from fresh scan")
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	tr := New(nil, nil, 0)
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	if got := tr.KNearest(geo.Point{}, 3); len(got) != 0 {
		t.Fatal("empty tree returned results")
	}
	tr1 := New([]int32{42}, []geo.Point{{X: 1, Y: 2}}, 0)
	got := tr1.KNearest(geo.Point{X: 1, Y: 2}, 5)
	if len(got) != 1 || got[0].ID != 42 || got[0].Dist != 0 {
		t.Fatalf("single tree: %+v", got)
	}
}

func TestSizeBytesGrows(t *testing.T) {
	ids, pts := randomPoints(1000, 5)
	big := New(ids, pts, 0)
	small := New(ids[:10], pts[:10], 0)
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatal("SizeBytes not monotone in tree size")
	}
}

func TestFirstNeighborNearestProperty(t *testing.T) {
	f := func(seed int64, qx, qy uint16) bool {
		n := 50 + int(seed%100+100)%100
		ids, pts := randomPoints(n, seed)
		tr := New(ids, pts, 4)
		q := geo.Point{X: float64(qx % 1000), Y: float64(qy % 1000)}
		got := tr.KNearest(q, 1)
		want := bruteKNN(pts, q, 1)
		return len(got) == 1 && math.Abs(got[0].Dist-want[0]) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// --- dynamic-update tests ---

// TestInsertDeleteMatchesBruteForce churns a tree through random inserts and
// deletes, checking KNearest against brute force over the live set after
// every step (including across degradation-triggered STR rebuilds).
func TestInsertDeleteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids, pts := randomPoints(200, 8)
	tr := New(ids[:100], pts[:100], 8)
	live := map[int32]geo.Point{}
	for i := 0; i < 100; i++ {
		live[ids[i]] = pts[i]
	}
	next := 100
	for step := 0; step < 500; step++ {
		canInsert := next < 200
		if canInsert && (len(live) == 0 || rng.Intn(2) == 0) {
			tr.Insert(ids[next], pts[next])
			live[ids[next]] = pts[next]
			next++
		} else if len(live) > 0 {
			// Delete a random live entry.
			var victim int32 = -1
			for id := range live {
				victim = id
				break
			}
			if !tr.Delete(victim, live[victim]) {
				t.Fatalf("step %d: Delete(%d) reported absent", step, victim)
			}
			delete(live, victim)
		} else {
			break // inserts exhausted and tree drained
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: Len %d != live %d", step, tr.Len(), len(live))
		}
		if step%7 != 0 {
			continue
		}
		q := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		k := 1 + rng.Intn(8)
		got := tr.KNearest(q, k)
		var ds []float64
		for _, p := range live {
			ds = append(ds, q.Dist(p))
		}
		sort.Float64s(ds)
		if k > len(ds) {
			k = len(ds)
		}
		if len(got) != k {
			t.Fatalf("step %d: got %d results want %d", step, len(got), k)
		}
		for i := range got {
			if math.Abs(got[i].Dist-ds[i]) > 1e-9 {
				t.Fatalf("step %d k=%d i=%d: got %v want %v", step, k, i, got[i].Dist, ds[i])
			}
		}
	}
}

// TestDeleteAbsent covers the miss paths: unknown id, wrong point, empty
// tree.
func TestDeleteAbsent(t *testing.T) {
	ids, pts := randomPoints(50, 9)
	tr := New(ids, pts, 4)
	if tr.Delete(999, geo.Point{X: 1, Y: 1}) {
		t.Fatal("Delete of unknown id reported true")
	}
	if tr.Len() != 50 {
		t.Fatal("failed Delete changed Len")
	}
	empty := New(nil, nil, 0)
	if empty.Delete(0, geo.Point{}) {
		t.Fatal("Delete on empty tree reported true")
	}
	empty.Insert(7, geo.Point{X: 3, Y: 4})
	if empty.Len() != 1 || empty.KNearest(geo.Point{X: 3, Y: 4}, 1)[0].ID != 7 {
		t.Fatal("Insert into empty tree failed")
	}
}

// TestInsertGrowsFromEmpty builds a tree purely by Insert and checks it
// against a bulk-loaded twin.
func TestInsertGrowsFromEmpty(t *testing.T) {
	ids, pts := randomPoints(300, 10)
	tr := New(nil, nil, 8)
	for i := range ids {
		tr.Insert(ids[i], pts[i])
	}
	bulk := New(ids, pts, 8)
	q := geo.Point{X: 123, Y: 456}
	a, b := tr.KNearest(q, 20), bulk.KNearest(q, 20)
	if len(a) != len(b) {
		t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			t.Fatalf("i=%d: insert-built %v bulk %v", i, a[i].Dist, b[i].Dist)
		}
	}
}

// TestCloneIsolation mutates a clone heavily and verifies the original
// answers exactly as before — the copy-on-write guarantee epochs rely on.
func TestCloneIsolation(t *testing.T) {
	ids, pts := randomPoints(400, 11)
	tr := New(ids, pts, 8)
	q := geo.Point{X: 500, Y: 500}
	before := tr.KNearest(q, 400)

	c := tr.Clone()
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		c.Delete(ids[i], pts[i])
	}
	for i := 0; i < 300; i++ {
		c.Insert(int32(1000+i), geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
	}
	if c.Len() != 400-200+300 {
		t.Fatalf("clone Len %d", c.Len())
	}

	after := tr.KNearest(q, 400)
	if len(after) != len(before) || tr.Len() != 400 {
		t.Fatalf("original changed size: %d results, Len %d", len(after), tr.Len())
	}
	for i := range after {
		if after[i].ID != before[i].ID || after[i].Dist != before[i].Dist {
			t.Fatalf("original changed at %d: %+v vs %+v", i, after[i], before[i])
		}
	}
}

// TestRebuildTriggers checks that sustained churn eventually repacks the
// tree and that answers stay exact across the repack.
func TestRebuildTriggers(t *testing.T) {
	ids, pts := randomPoints(256, 13)
	tr := New(ids, pts, 8)
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 2000; i++ {
		j := rng.Intn(256)
		tr.Delete(ids[j], pts[j])
		tr.Insert(ids[j], pts[j])
	}
	if tr.Rebuilds() == 0 {
		t.Fatal("2000 update pairs triggered no STR rebuild")
	}
	q := geo.Point{X: 700, Y: 300}
	got := tr.KNearest(q, 5)
	want := bruteKNN(pts, q, 5)
	for i := range got {
		if math.Abs(got[i].Dist-want[i]) > 1e-9 {
			t.Fatalf("post-rebuild i=%d: got %v want %v", i, got[i].Dist, want[i])
		}
	}
}
