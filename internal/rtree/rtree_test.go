package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rnknn/internal/geo"
)

func randomPoints(n int, seed int64) ([]int32, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int32, n)
	pts := make([]geo.Point, n)
	for i := range ids {
		ids[i] = int32(i)
		pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return ids, pts
}

func bruteKNN(pts []geo.Point, q geo.Point, k int) []float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = q.Dist(p)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	ids, pts := randomPoints(500, 1)
	tr := New(ids, pts, 8)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		q := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		k := 1 + rng.Intn(20)
		got := tr.KNearest(q, k)
		want := bruteKNN(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d results", k, len(got))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("k=%d i=%d: got %v want %v", k, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestScannerMonotoneExhaustive(t *testing.T) {
	ids, pts := randomPoints(300, 3)
	tr := New(ids, pts, 0)
	s := tr.NewScan(geo.Point{X: 500, Y: 500})
	prev := -1.0
	count := 0
	seen := map[int32]bool{}
	for {
		n, ok := s.Next()
		if !ok {
			break
		}
		if n.Dist < prev {
			t.Fatal("scan distances not monotone")
		}
		prev = n.Dist
		if seen[n.ID] {
			t.Fatalf("duplicate id %d", n.ID)
		}
		seen[n.ID] = true
		count++
	}
	if count != 300 {
		t.Fatalf("scan returned %d of 300", count)
	}
}

func TestScannerSuspendResume(t *testing.T) {
	ids, pts := randomPoints(200, 4)
	tr := New(ids, pts, 0)
	q := geo.Point{X: 10, Y: 10}
	s := tr.NewScan(q)
	var first []Neighbor
	for i := 0; i < 5; i++ {
		n, _ := s.Next()
		first = append(first, n)
	}
	// PeekDist lower-bounds the next result.
	peek := s.PeekDist()
	n6, _ := s.Next()
	if n6.Dist+1e-12 < peek {
		t.Fatalf("PeekDist %v above next %v", peek, n6.Dist)
	}
	// All returned so far must equal a fresh scan's prefix.
	fresh := tr.KNearest(q, 6)
	for i := range first {
		if fresh[i].Dist != first[i].Dist {
			t.Fatal("suspended scan diverged from fresh scan")
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	tr := New(nil, nil, 0)
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	if got := tr.KNearest(geo.Point{}, 3); len(got) != 0 {
		t.Fatal("empty tree returned results")
	}
	tr1 := New([]int32{42}, []geo.Point{{X: 1, Y: 2}}, 0)
	got := tr1.KNearest(geo.Point{X: 1, Y: 2}, 5)
	if len(got) != 1 || got[0].ID != 42 || got[0].Dist != 0 {
		t.Fatalf("single tree: %+v", got)
	}
}

func TestSizeBytesGrows(t *testing.T) {
	ids, pts := randomPoints(1000, 5)
	big := New(ids, pts, 0)
	small := New(ids[:10], pts[:10], 0)
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatal("SizeBytes not monotone in tree size")
	}
}

func TestFirstNeighborNearestProperty(t *testing.T) {
	f := func(seed int64, qx, qy uint16) bool {
		n := 50 + int(seed%100+100)%100
		ids, pts := randomPoints(n, seed)
		tr := New(ids, pts, 4)
		q := geo.Point{X: float64(qx % 1000), Y: float64(qy % 1000)}
		got := tr.KNearest(q, 1)
		want := bruteKNN(pts, q, 1)
		return len(got) == 1 && math.Abs(got[0].Dist-want[0]) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
