// Package rtree implements an in-memory R-tree over road-network vertices,
// bulk-loaded with Sort-Tile-Recursive packing. It supports the suspendable
// incremental Euclidean nearest-neighbor search that drives IER (Section
// 3.2) and the DB-ENN variant of Distance Browsing (Appendix A.1.1), and it
// doubles as the object index whose size and build time Figure 18 measures.
package rtree

import (
	"math"
	"sort"

	"rnknn/internal/geo"
)

// DefaultNodeCap is the default R-tree node capacity. The paper tuned node
// capacity for best Euclidean kNN performance (Section 7.4).
const DefaultNodeCap = 16

// Tree is an immutable STR-packed R-tree over a set of points, each carrying
// a user identifier (the road-network vertex of an object).
type Tree struct {
	nodeCap int
	rootIdx int32
	nodes   []node
	// Leaf entries, STR-ordered.
	ids []int32
	pts []geo.Point
}

type node struct {
	rect geo.Rect
	// If leaf, [start,end) indexes ids/pts; else [start,end) indexes nodes.
	start, end int32
	leaf       bool
}

// New bulk-loads an R-tree from parallel id/point slices using STR packing
// with the given node capacity (0 means DefaultNodeCap).
func New(ids []int32, pts []geo.Point, nodeCap int) *Tree {
	if len(ids) != len(pts) {
		panic("rtree: ids and pts length mismatch")
	}
	if nodeCap <= 1 {
		nodeCap = DefaultNodeCap
	}
	t := &Tree{nodeCap: nodeCap}
	t.ids = append([]int32(nil), ids...)
	t.pts = append([]geo.Point(nil), pts...)
	if len(t.ids) == 0 {
		return t
	}
	strSort(t.ids, t.pts, nodeCap)

	// Build leaf level.
	var level []int32 // node indexes of the current level
	for start := 0; start < len(t.ids); start += nodeCap {
		end := start + nodeCap
		if end > len(t.ids) {
			end = len(t.ids)
		}
		r := geo.EmptyRect()
		for _, p := range t.pts[start:end] {
			r = r.Expand(p)
		}
		t.nodes = append(t.nodes, node{rect: r, start: int32(start), end: int32(end), leaf: true})
		level = append(level, int32(len(t.nodes)-1))
	}
	// Build internal levels until a single root remains. Children of one
	// parent are contiguous because STR already ordered the leaves.
	for len(level) > 1 {
		var next []int32
		for start := 0; start < len(level); start += nodeCap {
			end := start + nodeCap
			if end > len(level) {
				end = len(level)
			}
			r := geo.EmptyRect()
			for _, ni := range level[start:end] {
				r = r.Union(t.nodes[ni].rect)
			}
			t.nodes = append(t.nodes, node{rect: r, start: level[start], end: level[end-1] + 1, leaf: false})
			next = append(next, int32(len(t.nodes)-1))
		}
		level = next
	}
	t.rootIdx = level[0]
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.ids) }

// SizeBytes estimates the in-memory footprint of the tree.
func (t *Tree) SizeBytes() int {
	return len(t.nodes)*int(nodeBytes) + len(t.ids)*4 + len(t.pts)*16
}

const nodeBytes = 4*8 + 2*4 + 4 // rect + start/end + leaf padding

// strSort orders the points by Sort-Tile-Recursive: sort by x, partition
// into vertical slabs of sqrt(n/cap) tiles, sort each slab by y.
func strSort(ids []int32, pts []geo.Point, cap int) {
	n := len(ids)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pts[idx[a]].X < pts[idx[b]].X })
	leaves := (n + cap - 1) / cap
	slabs := int(math.Ceil(math.Sqrt(float64(leaves))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (n + slabs - 1) / slabs
	for s := 0; s < n; s += slabSize {
		e := s + slabSize
		if e > n {
			e = n
		}
		sub := idx[s:e]
		sort.Slice(sub, func(a, b int) bool { return pts[sub[a]].Y < pts[sub[b]].Y })
	}
	outIDs := make([]int32, n)
	outPts := make([]geo.Point, n)
	for i, j := range idx {
		outIDs[i] = ids[j]
		outPts[i] = pts[j]
	}
	copy(ids, outIDs)
	copy(pts, outPts)
}

// Neighbor is one result of a Euclidean nearest-neighbor scan.
type Neighbor struct {
	ID   int32
	Pt   geo.Point
	Dist float64
}

// scanItem is an entry of the scan's priority queue, holding either an
// R-tree node (node >= 0) or a leaf point entry (node == -1, ent set).
type scanItem struct {
	key  float64
	node int32 // -1 for a point entry
	ent  int32
}

// Scanner is a suspendable best-first incremental nearest-neighbor search
// (Hjaltason & Samet). Next returns neighbors in nondecreasing Euclidean
// distance; the scan retains its priority queue between calls, which is the
// property IER's candidate loop relies on.
type Scanner struct {
	t     *Tree
	from  geo.Point
	items []scanItem
}

// NewScan starts an incremental Euclidean NN scan from p.
func (t *Tree) NewScan(p geo.Point) *Scanner {
	s := &Scanner{t: t, from: p}
	if len(t.nodes) > 0 {
		s.push(scanItem{key: t.nodes[t.rootIdx].rect.MinDist(p), node: t.rootIdx, ent: -1})
	}
	return s
}

// PeekDist returns the lower bound on the distance of the next neighbor, or
// +Inf when the scan is exhausted. The bound is exact when the head of the
// queue is a point.
func (s *Scanner) PeekDist() float64 {
	if len(s.items) == 0 {
		return math.Inf(1)
	}
	return s.items[0].key
}

// Next returns the next nearest neighbor, or ok=false when exhausted.
func (s *Scanner) Next() (Neighbor, bool) {
	t := s.t
	for len(s.items) > 0 {
		it := s.pop()
		if it.node < 0 {
			return Neighbor{ID: t.ids[it.ent], Pt: t.pts[it.ent], Dist: it.key}, true
		}
		n := t.nodes[it.node]
		if n.leaf {
			for e := n.start; e < n.end; e++ {
				s.push(scanItem{key: s.from.Dist(t.pts[e]), node: -1, ent: e})
			}
		} else {
			for c := n.start; c < n.end; c++ {
				s.push(scanItem{key: t.nodes[c].rect.MinDist(s.from), node: c, ent: -1})
			}
		}
	}
	return Neighbor{}, false
}

// KNearest returns the k Euclidean nearest neighbors of p (fewer if the tree
// holds fewer points).
func (t *Tree) KNearest(p geo.Point, k int) []Neighbor {
	s := t.NewScan(p)
	out := make([]Neighbor, 0, k)
	for len(out) < k {
		n, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, n)
	}
	return out
}

func (s *Scanner) push(it scanItem) {
	s.items = append(s.items, it)
	i := len(s.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.items[parent].key <= s.items[i].key {
			break
		}
		s.items[i], s.items[parent] = s.items[parent], s.items[i]
		i = parent
	}
}

func (s *Scanner) pop() scanItem {
	top := s.items[0]
	last := len(s.items) - 1
	s.items[0] = s.items[last]
	s.items = s.items[:last]
	n := len(s.items)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && s.items[r].key < s.items[l].key {
			c = r
		}
		if s.items[c].key >= s.items[i].key {
			break
		}
		s.items[i], s.items[c] = s.items[c], s.items[i]
		i = c
	}
	return top
}
