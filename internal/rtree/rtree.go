// Package rtree implements an in-memory R-tree over road-network vertices,
// bulk-loaded with Sort-Tile-Recursive packing. It supports the suspendable
// incremental Euclidean nearest-neighbor search that drives IER (Section
// 3.2) and the DB-ENN variant of Distance Browsing (Appendix A.1.1), and it
// doubles as the object index whose size and build time Figure 18 measures.
//
// The tree is dynamic: Insert adds an entry with the classic choose-subtree
// plus node-split descent, Delete removes one lazily (no re-insertion, no
// MBR shrinking), and once enough updates have accumulated relative to the
// live entry count the tree repacks itself with STR — so query quality
// returns to bulk-loaded form no matter how long the churn ran. Clone
// derives an independent copy in one memcpy of the node array; every
// structural mutation copies the bounded per-node slices before writing
// (copy-on-write), which is what lets an epoch-versioned object store share
// all untouched nodes between the old and new epoch.
package rtree

import (
	"math"
	"sort"

	"rnknn/internal/geo"
)

// DefaultNodeCap is the default R-tree node capacity. The paper tuned node
// capacity for best Euclidean kNN performance (Section 7.4).
const DefaultNodeCap = 16

// Rebuild trigger: once the updates applied since the last STR pack reach
// both rebuildMinOps and half the live entry count, the next update repacks
// the whole tree. Half the set is far beyond any realistic degradation
// point, but the precise constant matters little: what matters is that the
// amortized repack cost per update stays O(log n) while quality is bounded.
const (
	rebuildMinOps  = 64
	rebuildDivisor = 2
)

// Tree is an R-tree over a set of points, each carrying a user identifier
// (the road-network vertex of an object). New bulk-loads with STR; Insert
// and Delete update it in place. Readers (scans) and writers must not run
// concurrently on the same Tree — epoch-sharing callers mutate only fresh
// Clones.
type Tree struct {
	nodeCap int
	root    int32 // -1 when the tree is empty
	nodes   []node
	count   int // live entries
	dirty   int // updates since the last STR pack
	// rebuilds counts degradation-triggered STR repacks (observability).
	rebuilds int
}

// node is one R-tree node. Leaves carry entries (ids/pts), internal nodes
// carry child node indexes; both slices are bounded by nodeCap+1 and are
// replaced wholesale on mutation (copy-on-write), never appended in place.
type node struct {
	rect     geo.Rect
	leaf     bool
	children []int32
	ids      []int32
	pts      []geo.Point
}

// New bulk-loads an R-tree from parallel id/point slices using STR packing
// with the given node capacity (0 means DefaultNodeCap).
func New(ids []int32, pts []geo.Point, nodeCap int) *Tree {
	if len(ids) != len(pts) {
		panic("rtree: ids and pts length mismatch")
	}
	if nodeCap <= 1 {
		nodeCap = DefaultNodeCap
	}
	t := &Tree{nodeCap: nodeCap, root: -1}
	t.bulkLoad(append([]int32(nil), ids...), append([]geo.Point(nil), pts...))
	return t
}

// bulkLoad STR-packs the given entries into t, replacing any existing
// structure. It takes ownership of ids and pts.
func (t *Tree) bulkLoad(ids []int32, pts []geo.Point) {
	t.nodes = nil
	t.root = -1
	t.count = len(ids)
	t.dirty = 0
	if len(ids) == 0 {
		return
	}
	strSort(ids, pts, t.nodeCap)

	// Build leaf level. Sub-slicing with a capacity clamp keeps the packed
	// backing arrays shared until a mutation copies a node's slice out.
	var level []int32 // node indexes of the current level
	for start := 0; start < len(ids); start += t.nodeCap {
		end := start + t.nodeCap
		if end > len(ids) {
			end = len(ids)
		}
		r := geo.EmptyRect()
		for _, p := range pts[start:end] {
			r = r.Expand(p)
		}
		t.nodes = append(t.nodes, node{
			rect: r,
			leaf: true,
			ids:  ids[start:end:end],
			pts:  pts[start:end:end],
		})
		level = append(level, int32(len(t.nodes)-1))
	}
	// Build internal levels until a single root remains.
	for len(level) > 1 {
		var next []int32
		for start := 0; start < len(level); start += t.nodeCap {
			end := start + t.nodeCap
			if end > len(level) {
				end = len(level)
			}
			r := geo.EmptyRect()
			for _, ni := range level[start:end] {
				r = r.Union(t.nodes[ni].rect)
			}
			t.nodes = append(t.nodes, node{
				rect:     r,
				children: level[start:end:end],
			})
			next = append(next, int32(len(t.nodes)-1))
		}
		level = next
	}
	t.root = level[0]
}

// Len returns the number of live (non-deleted) entries.
func (t *Tree) Len() int { return t.count }

// Rebuilds reports how many degradation-triggered STR repacks the tree has
// performed.
func (t *Tree) Rebuilds() int { return t.rebuilds }

// Clone returns an independent copy of the tree: one memcpy of the node
// array, with every per-node entry and child slice shared until a mutation
// copies it out. Mutating the clone never changes what a reader of the
// original observes, which is the property the epoch-versioned object store
// relies on (each epoch's tree is a Clone of the previous epoch's).
func (t *Tree) Clone() *Tree {
	c := *t
	c.nodes = append([]node(nil), t.nodes...)
	return &c
}

// SizeBytes estimates the in-memory footprint of the tree.
func (t *Tree) SizeBytes() int {
	total := len(t.nodes) * nodeBytes
	for i := range t.nodes {
		n := &t.nodes[i]
		total += len(n.children)*4 + len(n.ids)*4 + len(n.pts)*16
	}
	return total
}

// nodeBytes is the fixed per-node overhead: rect + leaf flag + three slice
// headers.
const nodeBytes = 4*8 + 8 + 3*24

// Insert adds one entry. Entry ids need not be unique for the tree itself,
// but Delete matches by id, so callers (object indexes keyed by vertex)
// keep them unique. Amortized cost is O(log n) choose-subtree work plus
// O(nodeCap) copying; occasionally an STR repack runs when accumulated
// updates degrade the packing (see Rebuilds).
func (t *Tree) Insert(id int32, pt geo.Point) {
	if t.root < 0 {
		t.nodes = append(t.nodes, node{
			rect: geo.EmptyRect().Expand(pt),
			leaf: true,
			ids:  []int32{id},
			pts:  []geo.Point{pt},
		})
		t.root = int32(len(t.nodes) - 1)
		t.count++
		return
	}
	sib := t.insert(t.root, id, pt)
	if sib >= 0 {
		// Root split: a new root adopts the old root and its sibling.
		r := t.nodes[t.root].rect.Union(t.nodes[sib].rect)
		t.nodes = append(t.nodes, node{rect: r, children: []int32{t.root, sib}})
		t.root = int32(len(t.nodes) - 1)
	}
	t.count++
	t.dirty++
	t.maybeRebuild()
}

// insert descends to the best leaf, growing rects on the way down, and
// returns the index of a split-off sibling (-1 if no split propagates).
func (t *Tree) insert(ni, id int32, pt geo.Point) int32 {
	t.nodes[ni].rect = t.nodes[ni].rect.Expand(pt)
	if t.nodes[ni].leaf {
		n := &t.nodes[ni]
		n.ids = cowAppend32(n.ids, id)
		n.pts = cowAppendPt(n.pts, pt)
		if len(n.ids) > t.nodeCap {
			return t.splitLeaf(ni)
		}
		return -1
	}
	ci := chooseChild(t.nodes, t.nodes[ni].children, pt)
	sib := t.insert(t.nodes[ni].children[ci], id, pt)
	if sib >= 0 {
		// Re-take the node after the recursive call: splits append to
		// t.nodes, which may have moved the backing array.
		n := &t.nodes[ni]
		n.children = cowAppend32(n.children, sib)
		if len(n.children) > t.nodeCap {
			return t.splitInternal(ni)
		}
	}
	return -1
}

// chooseChild picks the child whose rect needs the least area enlargement
// to cover pt, breaking ties by smaller area (Guttman's criterion).
func chooseChild(nodes []node, children []int32, pt geo.Point) int {
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i, c := range children {
		r := nodes[c].rect
		a := area(r)
		enl := area(r.Expand(pt)) - a
		if enl < bestEnl || (enl == bestEnl && a < bestArea) {
			best, bestEnl, bestArea = i, enl, a
		}
	}
	return best
}

func area(r geo.Rect) float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// splitLeaf splits an overflowing leaf along its longer axis at the entry
// median, keeps the lower half in place and returns the new sibling's index.
func (t *Tree) splitLeaf(ni int32) int32 {
	n := &t.nodes[ni]
	ids := append([]int32(nil), n.ids...)
	pts := append([]geo.Point(nil), n.pts...)
	byY := n.rect.MaxY-n.rect.MinY > n.rect.MaxX-n.rect.MinX
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if byY {
			return pts[order[a]].Y < pts[order[b]].Y
		}
		return pts[order[a]].X < pts[order[b]].X
	})
	mid := len(order) / 2
	lowIDs, lowPts, lowRect := pickEntries(ids, pts, order[:mid])
	highIDs, highPts, highRect := pickEntries(ids, pts, order[mid:])

	t.nodes = append(t.nodes, node{rect: highRect, leaf: true, ids: highIDs, pts: highPts})
	n = &t.nodes[ni] // the append above may have moved the array
	n.ids, n.pts, n.rect = lowIDs, lowPts, lowRect
	return int32(len(t.nodes) - 1)
}

func pickEntries(ids []int32, pts []geo.Point, order []int) ([]int32, []geo.Point, geo.Rect) {
	outIDs := make([]int32, len(order))
	outPts := make([]geo.Point, len(order))
	r := geo.EmptyRect()
	for i, j := range order {
		outIDs[i] = ids[j]
		outPts[i] = pts[j]
		r = r.Expand(pts[j])
	}
	return outIDs, outPts, r
}

// splitInternal splits an overflowing internal node by child-rect centers
// along the node's longer axis, mirroring splitLeaf.
func (t *Tree) splitInternal(ni int32) int32 {
	n := &t.nodes[ni]
	children := append([]int32(nil), n.children...)
	byY := n.rect.MaxY-n.rect.MinY > n.rect.MaxX-n.rect.MinX
	sort.Slice(children, func(a, b int) bool {
		ra, rb := t.nodes[children[a]].rect, t.nodes[children[b]].rect
		if byY {
			return ra.MinY+ra.MaxY < rb.MinY+rb.MaxY
		}
		return ra.MinX+ra.MaxX < rb.MinX+rb.MaxX
	})
	mid := len(children) / 2
	low := children[:mid:mid]
	high := children[mid:]
	lowRect, highRect := geo.EmptyRect(), geo.EmptyRect()
	for _, c := range low {
		lowRect = lowRect.Union(t.nodes[c].rect)
	}
	for _, c := range high {
		highRect = highRect.Union(t.nodes[c].rect)
	}
	t.nodes = append(t.nodes, node{rect: highRect, children: high})
	n = &t.nodes[ni]
	n.children, n.rect = low, lowRect
	return int32(len(t.nodes) - 1)
}

// Delete removes the entry with the given id, where pt is the point the id
// was inserted with (deletion descends only subtrees whose rect covers pt).
// The removal is lazy in the R-tree sense: no re-insertion, no MBR
// shrinking, underfull nodes stay — degradation is bounded by the periodic
// STR repack instead. Reports whether the entry was present.
func (t *Tree) Delete(id int32, pt geo.Point) bool {
	if t.root < 0 || !t.delete(t.root, id, pt) {
		return false
	}
	t.count--
	t.dirty++
	t.maybeRebuild()
	return true
}

func (t *Tree) delete(ni, id int32, pt geo.Point) bool {
	n := &t.nodes[ni]
	if !n.rect.Contains(pt) {
		return false
	}
	if n.leaf {
		for i, eid := range n.ids {
			if eid == id {
				n.ids = cowRemove32(n.ids, i)
				n.pts = cowRemovePt(n.pts, i)
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if t.delete(c, id, pt) {
			return true
		}
	}
	return false
}

// maybeRebuild repacks the tree with STR once accumulated updates pass the
// degradation threshold, restoring bulk-loaded query quality.
func (t *Tree) maybeRebuild() {
	if t.dirty < rebuildMinOps || t.dirty*rebuildDivisor < t.count {
		return
	}
	ids := make([]int32, 0, t.count)
	pts := make([]geo.Point, 0, t.count)
	for i := range t.nodes {
		if t.nodes[i].leaf {
			ids = append(ids, t.nodes[i].ids...)
			pts = append(pts, t.nodes[i].pts...)
		}
	}
	t.bulkLoad(ids, pts)
	t.rebuilds++
}

// cowAppend32 and friends implement the copy-before-write discipline every
// node mutation follows: the source slice (possibly shared with a cloned
// epoch) is never written, a fresh bounded slice replaces it. Nodes hold at
// most nodeCap+1 entries, so each copy is O(nodeCap).
func cowAppend32(s []int32, v int32) []int32 {
	out := make([]int32, len(s)+1)
	copy(out, s)
	out[len(s)] = v
	return out
}

func cowAppendPt(s []geo.Point, v geo.Point) []geo.Point {
	out := make([]geo.Point, len(s)+1)
	copy(out, s)
	out[len(s)] = v
	return out
}

func cowRemove32(s []int32, i int) []int32 {
	out := make([]int32, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

func cowRemovePt(s []geo.Point, i int) []geo.Point {
	out := make([]geo.Point, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

// strSort orders the points by Sort-Tile-Recursive: sort by x, partition
// into vertical slabs of sqrt(n/cap) tiles, sort each slab by y.
func strSort(ids []int32, pts []geo.Point, cap int) {
	n := len(ids)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pts[idx[a]].X < pts[idx[b]].X })
	leaves := (n + cap - 1) / cap
	slabs := int(math.Ceil(math.Sqrt(float64(leaves))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (n + slabs - 1) / slabs
	for s := 0; s < n; s += slabSize {
		e := s + slabSize
		if e > n {
			e = n
		}
		sub := idx[s:e]
		sort.Slice(sub, func(a, b int) bool { return pts[sub[a]].Y < pts[sub[b]].Y })
	}
	outIDs := make([]int32, n)
	outPts := make([]geo.Point, n)
	for i, j := range idx {
		outIDs[i] = ids[j]
		outPts[i] = pts[j]
	}
	copy(ids, outIDs)
	copy(pts, outPts)
}

// Neighbor is one result of a Euclidean nearest-neighbor scan.
type Neighbor struct {
	ID   int32
	Pt   geo.Point
	Dist float64
}

// scanItem is an entry of the scan's priority queue, holding either an
// R-tree node (node >= 0) or a point entry (node == -1, id/pt set).
type scanItem struct {
	key  float64
	node int32 // -1 for a point entry
	id   int32
	pt   geo.Point
}

// Scanner is a suspendable best-first incremental nearest-neighbor search
// (Hjaltason & Samet). Next returns neighbors in nondecreasing Euclidean
// distance; the scan retains its priority queue between calls, which is the
// property IER's candidate loop relies on. A Scanner reads the Tree it was
// created from and must not outlive concurrent mutations of that same Tree
// value; epoch-sharing callers scan a pinned Clone that is never mutated.
type Scanner struct {
	t     *Tree
	from  geo.Point
	items []scanItem
}

// NewScan starts an incremental Euclidean NN scan from p.
func (t *Tree) NewScan(p geo.Point) *Scanner {
	s := &Scanner{}
	s.Start(t, p)
	return s
}

// Start (re)initializes s as a scan of t from p, retaining the queue's
// backing array — the reuse hook that lets a query session keep one
// Scanner for its lifetime instead of allocating one per query.
func (s *Scanner) Start(t *Tree, p geo.Point) {
	s.t = t
	s.from = p
	s.items = s.items[:0]
	if t.root >= 0 {
		s.push(scanItem{key: t.nodes[t.root].rect.MinDist(p), node: t.root})
	}
}

// PeekDist returns the lower bound on the distance of the next neighbor, or
// +Inf when the scan is exhausted. The bound is exact when the head of the
// queue is a point.
func (s *Scanner) PeekDist() float64 {
	if len(s.items) == 0 {
		return math.Inf(1)
	}
	return s.items[0].key
}

// Next returns the next nearest neighbor, or ok=false when exhausted.
func (s *Scanner) Next() (Neighbor, bool) {
	t := s.t
	for len(s.items) > 0 {
		it := s.pop()
		if it.node < 0 {
			return Neighbor{ID: it.id, Pt: it.pt, Dist: it.key}, true
		}
		n := &t.nodes[it.node]
		if n.leaf {
			for i, p := range n.pts {
				s.push(scanItem{key: s.from.Dist(p), node: -1, id: n.ids[i], pt: p})
			}
		} else {
			for _, c := range n.children {
				s.push(scanItem{key: t.nodes[c].rect.MinDist(s.from), node: c})
			}
		}
	}
	return Neighbor{}, false
}

// KNearest returns the k Euclidean nearest neighbors of p (fewer if the tree
// holds fewer points).
func (t *Tree) KNearest(p geo.Point, k int) []Neighbor {
	s := t.NewScan(p)
	out := make([]Neighbor, 0, k)
	for len(out) < k {
		n, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, n)
	}
	return out
}

func (s *Scanner) push(it scanItem) {
	s.items = append(s.items, it)
	i := len(s.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.items[parent].key <= s.items[i].key {
			break
		}
		s.items[i], s.items[parent] = s.items[parent], s.items[i]
		i = parent
	}
}

func (s *Scanner) pop() scanItem {
	top := s.items[0]
	last := len(s.items) - 1
	s.items[0] = s.items[last]
	s.items = s.items[:last]
	n := len(s.items)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && s.items[r].key < s.items[l].key {
			c = r
		}
		if s.items[c].key >= s.items[i].key {
			break
		}
		s.items[i], s.items[c] = s.items[c], s.items[i]
		i = c
	}
	return top
}
