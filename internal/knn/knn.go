// Package knn defines the shared vocabulary of the kNN methods: results,
// object sets, the method interface that all five algorithms implement, the
// distance-oracle interfaces IER composes with, and a brute-force reference
// used to validate every method.
package knn

import (
	"fmt"
	"sort"

	"rnknn/internal/bitset"
	"rnknn/internal/dijkstra"
	"rnknn/internal/graph"
)

// Result is one kNN answer: an object vertex and its network distance from
// the query vertex. Methods return results in nondecreasing distance order.
type Result struct {
	Vertex int32
	Dist   graph.Dist
}

// Method is a kNN query algorithm bound to a road network index and an
// object set. Implementations are not safe for concurrent use.
//
// KNNAppend is the primary query form: result storage is caller-owned, so
// a caller reusing its buffer across queries pays no per-query allocation
// — every method keeps its transient search state (heaps, distance arrays,
// stamped sets) on the method value and resets it in O(1) per query, which
// makes a warm KNNAppend allocation-free. KNN is the convenience form that
// allocates a fresh slice.
type Method interface {
	// Name identifies the method in experiment output (e.g. "INE",
	// "IER-PHL", "Gtree").
	Name() string
	// KNN returns the k nearest objects to query vertex q by network
	// distance, fewer if the object set is smaller than k.
	KNN(q int32, k int) []Result
	// KNNAppend appends the same answer to dst and returns the extended
	// slice. Steady-state calls with sufficient capacity do not allocate.
	KNNAppend(q int32, k int, dst []Result) []Result
}

// RangeMethod is implemented by methods that answer range queries natively:
// every object within network distance radius of q, in nondecreasing
// distance order. RangeAppend is the caller-owned-buffer form, mirroring
// Method.KNNAppend.
type RangeMethod interface {
	Range(q int32, radius graph.Dist) []Result
	RangeAppend(q int32, radius graph.Dist, dst []Result) []Result
}

// Interruptible is implemented by methods whose scans can abort early: the
// installed check is polled periodically during expansion, and a true
// return stops the scan, which returns whatever it has found so far.
// pkg/rnknn installs context-cancellation checks through this hook; a nil
// check disables polling.
type Interruptible interface {
	SetInterrupt(check func() bool)
}

// Streamer is implemented by methods that can report each confirmed
// neighbor as it is finalized, instead of buffering all k results.
// Neighbors are yielded in nondecreasing distance order; a false return
// from yield stops the search immediately (the remaining expansion is
// skipped). Collecting a full stream into a slice yields exactly KNN's
// answer.
//
// The expansion-based methods (INE, ROAD) yield at settle time; G-tree
// yields each queue pop confirmed below the active bound; IER yields a
// verified candidate as soon as the R-tree scan's Euclidean lower bound
// proves no later object can displace it.
type Streamer interface {
	KNNStream(q int32, k int, yield func(Result) bool)
}

// StreamKNN streams the kNN answer of any method: natively when m
// implements Streamer, otherwise by running the buffered KNN and replaying
// its slice (the fallback for methods, like the SILC pair, whose search
// has no incremental hook).
func StreamKNN(m Method, q int32, k int, yield func(Result) bool) {
	if s, ok := m.(Streamer); ok {
		s.KNNStream(q, k, yield)
		return
	}
	for _, r := range m.KNN(q, k) {
		if !yield(r) {
			return
		}
	}
}

// GroupQuery is one member of a shared-expansion group: a kNN query that
// executes together with spatially-clustered companions.
type GroupQuery struct {
	Q int32
	K int
}

// BatchMethod is implemented by methods that can answer a group of
// spatially-clustered kNN queries through one shared computation instead of
// len(qs) independent searches. Exactness is preserved per member: query i's
// answer is identical (up to tie order at the k-th distance, the SameResults
// standard) to KNNAppend(qs[i].Q, qs[i].K, dst[i]).
//
// KNNGroupAppend appends query i's results to dst[i] and stores the
// extended slice back into dst[i]; len(dst) must equal len(qs). Like
// KNNAppend, steady-state calls with sufficient capacity in every dst slice
// and a warm method value do not allocate. Group members are expected to be
// close together (the caller groups by partition leaf cell); correctness
// does not depend on it, only the speedup does.
type BatchMethod interface {
	Method
	KNNGroupAppend(qs []GroupQuery, dst [][]Result)
}

// DistanceOracle answers point-to-point network distance queries; IER can
// be composed with any of these (Section 5).
type DistanceOracle interface {
	Name() string
	Distance(s, t int32) graph.Dist
}

// SourceOracle answers repeated distance queries from one fixed source.
// Oracles that can materialize per-source state (MGtree's assembled border
// distances, a suspended Dijkstra) implement SourceFactory to expose it;
// IER prefers this form.
type SourceOracle interface {
	DistanceTo(t int32) graph.Dist
}

// SourceFactory creates per-source oracles.
type SourceFactory interface {
	Name() string
	NewSource(s int32) SourceOracle
}

// ObjectSet is an immutable set of object vertices with O(1) membership.
type ObjectSet struct {
	verts  []int32
	member *bitset.Set
}

// NewObjectSet builds an ObjectSet over vertices of g. The input need not be
// sorted; duplicates are dropped.
func NewObjectSet(g *graph.Graph, vertices []int32) *ObjectSet {
	member := bitset.New(g.NumVertices())
	verts := make([]int32, 0, len(vertices))
	for _, v := range vertices {
		if !member.Get(v) {
			member.Set(v)
			verts = append(verts, v)
		}
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	return &ObjectSet{verts: verts, member: member}
}

// WithDelta returns a new ObjectSet equal to o minus removes plus adds,
// leaving o untouched — the persistent-update form behind epoch-versioned
// object churn: any reader holding o keeps a consistent view while the next
// epoch is derived. Removals are applied before insertions. The returned
// added/removed slices are the effective delta: vertices actually inserted
// (absent before, deduplicated) and actually deleted (present before) —
// exactly the per-element work the derived object indexes must replay.
//
// Cost is one memcpy of the membership words and one pass over the vertex
// slice plus O(|delta| log |delta|); no index is rebuilt and nothing the
// original set references is mutated.
func (o *ObjectSet) WithDelta(add, remove []int32) (next *ObjectSet, added, removed []int32) {
	member := o.member.Clone()
	for _, v := range remove {
		if member.Get(v) {
			member.Clear(v)
			removed = append(removed, v)
		}
	}
	for _, v := range add {
		if !member.Get(v) {
			member.Set(v)
			added = append(added, v)
		}
	}
	// Rebuild the sorted vertex slice: survivors of the old slice merged
	// with the sorted effective additions.
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	verts := make([]int32, 0, len(o.verts)-len(removed)+len(added))
	ai := 0
	for _, v := range o.verts {
		for ai < len(added) && added[ai] < v {
			verts = append(verts, added[ai])
			ai++
		}
		if ai < len(added) && added[ai] == v {
			// v was removed and re-added in this same delta; emit it once.
			ai++
		}
		if member.Get(v) {
			verts = append(verts, v)
		}
	}
	verts = append(verts, added[ai:]...)
	return &ObjectSet{verts: verts, member: member}, added, removed
}

// Contains reports whether v is an object.
func (o *ObjectSet) Contains(v int32) bool { return o.member.Get(v) }

// Len returns the number of objects.
func (o *ObjectSet) Len() int { return len(o.verts) }

// Vertices returns the sorted object vertices; the slice must not be
// modified.
func (o *ObjectSet) Vertices() []int32 { return o.verts }

// SizeBytes estimates the in-memory footprint of the set (the lower-bound
// object storage cost INE pays, Figure 18).
func (o *ObjectSet) SizeBytes() int { return len(o.verts)*4 + o.member.Capacity()/8 }

// BruteForce computes the exact kNN answer by a full Dijkstra expansion that
// stops after k objects are settled. It is the correctness reference for all
// methods.
func BruteForce(g *graph.Graph, objs *ObjectSet, q int32, k int) []Result {
	r := dijkstra.NewResumable(g, q)
	out := make([]Result, 0, k)
	for len(out) < k {
		v, d, ok := r.Next()
		if !ok {
			break
		}
		if objs.Contains(v) {
			out = append(out, Result{v, d})
		}
	}
	return out
}

// SameResults reports whether two result lists agree: identical distance
// sequences, and identical vertices wherever distances are unique. It
// tolerates tie reordering among equal distances.
func SameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Dist != b[i].Dist {
			return false
		}
	}
	// Group by distance and compare vertex sets per group. The group at the
	// k-th (last) distance is exempt: when several objects tie at the cutoff
	// distance, any choice among them is a correct kNN answer.
	i := 0
	for i < len(a) {
		j := i + 1
		for j < len(a) && a[j].Dist == a[i].Dist {
			j++
		}
		if j < len(a) && !sameVertexSet(a[i:j], b[i:j]) {
			return false
		}
		i = j
	}
	return true
}

func sameVertexSet(a, b []Result) bool {
	if len(a) == 1 {
		return a[0].Vertex == b[0].Vertex
	}
	seen := make(map[int32]int, len(a))
	for _, r := range a {
		seen[r.Vertex]++
	}
	for _, r := range b {
		seen[r.Vertex]--
	}
	for _, c := range seen {
		if c != 0 {
			return false
		}
	}
	return true
}

// FormatResults renders results compactly for logs and examples.
func FormatResults(rs []Result) string {
	s := "["
	for i, r := range rs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%d", r.Vertex, r.Dist)
	}
	return s + "]"
}

// BruteForceRange computes the exact set of objects within network distance
// radius of q, in nondecreasing distance order (the range-query reference).
func BruteForceRange(g *graph.Graph, objs *ObjectSet, q int32, radius graph.Dist) []Result {
	r := dijkstra.NewResumable(g, q)
	var out []Result
	for {
		v, d, ok := r.Next()
		if !ok || d > radius {
			break
		}
		if objs.Contains(v) {
			out = append(out, Result{v, d})
		}
	}
	return out
}
