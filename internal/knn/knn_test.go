package knn_test

import (
	"strings"
	"testing"
	"testing/quick"

	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return gen.Network(gen.NetworkSpec{Name: "t", Rows: 12, Cols: 12, Seed: 131})
}

func TestObjectSetBasics(t *testing.T) {
	g := testGraph(t)
	objs := knn.NewObjectSet(g, []int32{9, 3, 3, 7})
	if objs.Len() != 3 {
		t.Fatalf("Len = %d, want deduplicated 3", objs.Len())
	}
	vs := objs.Vertices()
	if vs[0] != 3 || vs[1] != 7 || vs[2] != 9 {
		t.Fatalf("Vertices = %v, want sorted", vs)
	}
	if !objs.Contains(7) || objs.Contains(8) {
		t.Fatal("Contains wrong")
	}
	if objs.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestBruteForceOrderedAndComplete(t *testing.T) {
	g := testGraph(t)
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.05, 1))
	res := knn.BruteForce(g, objs, 0, 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Dist > res[i].Dist {
			t.Fatal("results not ordered")
		}
	}
	// k beyond |O| returns all objects.
	small := knn.NewObjectSet(g, []int32{1, 2})
	if got := knn.BruteForce(g, small, 0, 9); len(got) != 2 {
		t.Fatalf("got %d, want 2", len(got))
	}
}

func TestSameResultsExactMatch(t *testing.T) {
	a := []knn.Result{{1, 10}, {2, 20}}
	b := []knn.Result{{1, 10}, {2, 20}}
	if !knn.SameResults(a, b) {
		t.Fatal("identical results must match")
	}
	if knn.SameResults(a, b[:1]) {
		t.Fatal("length mismatch must fail")
	}
	if knn.SameResults(a, []knn.Result{{1, 10}, {2, 21}}) {
		t.Fatal("distance mismatch must fail")
	}
}

func TestSameResultsTieReordering(t *testing.T) {
	a := []knn.Result{{1, 10}, {2, 10}, {3, 20}}
	b := []knn.Result{{2, 10}, {1, 10}, {3, 20}}
	if !knn.SameResults(a, b) {
		t.Fatal("tie reordering within a group must match")
	}
	// A different vertex in a non-final tie group must fail.
	c := []knn.Result{{1, 10}, {9, 10}, {3, 20}}
	if knn.SameResults(a, c) {
		t.Fatal("different vertex in non-final group must fail")
	}
	// The final (kth) group is exempt: any choice among equal distances.
	d := []knn.Result{{1, 10}, {2, 10}, {99, 20}}
	if !knn.SameResults(a, d) {
		t.Fatal("final-group tie substitution must match")
	}
}

func TestSameResultsReflexiveProperty(t *testing.T) {
	f := func(dists []uint16) bool {
		rs := make([]knn.Result, len(dists))
		prev := graph.Dist(0)
		for i, d := range dists {
			prev += graph.Dist(d % 100)
			rs[i] = knn.Result{Vertex: int32(i), Dist: prev}
		}
		return knn.SameResults(rs, rs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatResults(t *testing.T) {
	s := knn.FormatResults([]knn.Result{{5, 100}, {7, 200}})
	if !strings.Contains(s, "5:100") || !strings.Contains(s, "7:200") {
		t.Fatalf("format %q", s)
	}
	if knn.FormatResults(nil) != "[]" {
		t.Fatal("empty format")
	}
}
