package knn_test

import (
	"strings"
	"testing"
	"testing/quick"

	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return gen.Network(gen.NetworkSpec{Name: "t", Rows: 12, Cols: 12, Seed: 131})
}

func TestObjectSetBasics(t *testing.T) {
	g := testGraph(t)
	objs := knn.NewObjectSet(g, []int32{9, 3, 3, 7})
	if objs.Len() != 3 {
		t.Fatalf("Len = %d, want deduplicated 3", objs.Len())
	}
	vs := objs.Vertices()
	if vs[0] != 3 || vs[1] != 7 || vs[2] != 9 {
		t.Fatalf("Vertices = %v, want sorted", vs)
	}
	if !objs.Contains(7) || objs.Contains(8) {
		t.Fatal("Contains wrong")
	}
	if objs.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestBruteForceOrderedAndComplete(t *testing.T) {
	g := testGraph(t)
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.05, 1))
	res := knn.BruteForce(g, objs, 0, 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Dist > res[i].Dist {
			t.Fatal("results not ordered")
		}
	}
	// k beyond |O| returns all objects.
	small := knn.NewObjectSet(g, []int32{1, 2})
	if got := knn.BruteForce(g, small, 0, 9); len(got) != 2 {
		t.Fatalf("got %d, want 2", len(got))
	}
}

func TestSameResultsExactMatch(t *testing.T) {
	a := []knn.Result{{1, 10}, {2, 20}}
	b := []knn.Result{{1, 10}, {2, 20}}
	if !knn.SameResults(a, b) {
		t.Fatal("identical results must match")
	}
	if knn.SameResults(a, b[:1]) {
		t.Fatal("length mismatch must fail")
	}
	if knn.SameResults(a, []knn.Result{{1, 10}, {2, 21}}) {
		t.Fatal("distance mismatch must fail")
	}
}

func TestSameResultsTieReordering(t *testing.T) {
	a := []knn.Result{{1, 10}, {2, 10}, {3, 20}}
	b := []knn.Result{{2, 10}, {1, 10}, {3, 20}}
	if !knn.SameResults(a, b) {
		t.Fatal("tie reordering within a group must match")
	}
	// A different vertex in a non-final tie group must fail.
	c := []knn.Result{{1, 10}, {9, 10}, {3, 20}}
	if knn.SameResults(a, c) {
		t.Fatal("different vertex in non-final group must fail")
	}
	// The final (kth) group is exempt: any choice among equal distances.
	d := []knn.Result{{1, 10}, {2, 10}, {99, 20}}
	if !knn.SameResults(a, d) {
		t.Fatal("final-group tie substitution must match")
	}
}

func TestSameResultsReflexiveProperty(t *testing.T) {
	f := func(dists []uint16) bool {
		rs := make([]knn.Result, len(dists))
		prev := graph.Dist(0)
		for i, d := range dists {
			prev += graph.Dist(d % 100)
			rs[i] = knn.Result{Vertex: int32(i), Dist: prev}
		}
		return knn.SameResults(rs, rs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatResults(t *testing.T) {
	s := knn.FormatResults([]knn.Result{{5, 100}, {7, 200}})
	if !strings.Contains(s, "5:100") || !strings.Contains(s, "7:200") {
		t.Fatalf("format %q", s)
	}
	if knn.FormatResults(nil) != "[]" {
		t.Fatal("empty format")
	}
}

// TestObjectSetWithDelta checks the persistent-update form: the derived set
// must equal a from-scratch build, the original must be untouched, and the
// returned effective deltas must reflect only real changes.
func TestObjectSetWithDelta(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "t", Rows: 8, Cols: 8, Seed: 61})
	base := knn.NewObjectSet(g, []int32{2, 5, 9, 30})

	next, added, removed := base.WithDelta([]int32{7, 5, 7, 11}, []int32{9, 99})
	if want := []int32{7, 11}; !int32sEqual(added, want) {
		t.Fatalf("added = %v, want %v", added, want)
	}
	if want := []int32{9}; !int32sEqual(removed, want) {
		t.Fatalf("removed = %v, want %v", removed, want)
	}
	fresh := knn.NewObjectSet(g, []int32{2, 5, 30, 7, 11})
	if !int32sEqual(next.Vertices(), fresh.Vertices()) {
		t.Fatalf("next = %v, fresh = %v", next.Vertices(), fresh.Vertices())
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if next.Contains(v) != fresh.Contains(v) {
			t.Fatalf("membership mismatch at %d", v)
		}
	}
	// The original is untouched.
	if !int32sEqual(base.Vertices(), []int32{2, 5, 9, 30}) || !base.Contains(9) || base.Contains(7) {
		t.Fatalf("base mutated: %v", base.Vertices())
	}

	// Remove-and-re-add in one delta keeps the vertex exactly once.
	rr, added, removed := base.WithDelta([]int32{5}, []int32{5})
	if len(added) != 1 || len(removed) != 1 {
		t.Fatalf("re-add deltas: added %v removed %v", added, removed)
	}
	if !int32sEqual(rr.Vertices(), base.Vertices()) {
		t.Fatalf("re-add changed the set: %v", rr.Vertices())
	}

	// Empty effective delta.
	same, added, removed := base.WithDelta([]int32{2}, []int32{50})
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("no-op deltas: added %v removed %v", added, removed)
	}
	if !int32sEqual(same.Vertices(), base.Vertices()) {
		t.Fatal("no-op delta changed the set")
	}
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
