// Package kmerge merges k nondecreasing streams into one nondecreasing
// stream with a loser tree, deferring the opening of any stream whose
// lower bound shows it cannot yet contribute.
//
// Each Source promises (1) items come out in nondecreasing D and (2) no
// item will ever have D below Bound(). An unopened source participates in
// the tournament keyed by its bound; it is pulled for the first time only
// when that bound becomes the tournament minimum — that is, when every
// already-pulled item is at least as far. Those two promises make the
// merge exact: when an item wins the tournament, every other source's
// pending item or bound is >= its D, so nothing smaller can appear later.
// This is what makes a sharded kNN scan exact without querying every
// shard: shards whose geometric lower bound stays above the k-th result
// distance are never opened at all.
//
// The tournament is a classic loser tree (the structure behind k-way
// external merge sort): internal nodes remember the loser of their match,
// so replaying after the winner advances costs one comparison per level —
// O(log k) per emitted item, independent of how the streams interleave.
package kmerge

import (
	"math"
)

// Item is one merged element: an identifier and its sort key.
type Item struct {
	V int32
	D int64
}

// Source is one nondecreasing stream with a lower bound on everything it
// will ever yield.
type Source interface {
	// Bound returns a value no item from this source will go below. It is
	// consulted once, before the source's first Next call; a source whose
	// bound never becomes the tournament minimum is never opened.
	Bound() int64
	// Next yields the source's next item in nondecreasing D order; ok
	// false means the source is exhausted. The first Next call may be
	// expensive (it typically opens the underlying stream).
	Next() (item Item, ok bool, err error)
}

// leaf states in the tournament.
const (
	statePending = iota // key is the source's bound; Next not yet called
	stateItem           // key is an item waiting to be emitted
	stateDone           // source exhausted; key is +inf
)

// Merge runs the tournament, calling yield for each item in globally
// nondecreasing (D, V) order until every source is exhausted or yield
// returns false. An error from any Next aborts the merge.
func Merge(sources []Source, yield func(Item) bool) error {
	k := len(sources)
	switch k {
	case 0:
		return nil
	case 1:
		// Degenerate tournament: drain directly.
		for {
			it, ok, err := sources[0].Next()
			if err != nil {
				return err
			}
			if !ok || !yield(it) {
				return nil
			}
		}
	}

	// Leaf keys: (d, v, state). Pending leaves key on the bound with v =
	// MinInt32 so a bound ties ahead of an equal-distance item — the
	// stream gets opened before the item is emitted, in case it holds an
	// item of exactly that distance.
	d := make([]int64, k)
	v := make([]int32, k)
	state := make([]uint8, k)
	for i, s := range sources {
		d[i] = s.Bound()
		v[i] = math.MinInt32
		state[i] = statePending
	}
	less := func(a, b int) bool {
		if d[a] != d[b] {
			return d[a] < d[b]
		}
		if v[a] != v[b] {
			return v[a] < v[b]
		}
		return a < b
	}

	// Loser tree over a heap-shaped complete binary tree: internal nodes
	// 1..k-1, leaf i at node k+i. ls[n] is the loser of the match at n;
	// the overall winner propagates to the caller of build.
	ls := make([]int, k)
	var build func(node int) int
	build = func(node int) int {
		if node >= k {
			return node - k
		}
		l := build(2 * node)
		r := build(2*node + 1)
		if less(l, r) {
			ls[node] = r
			return l
		}
		ls[node] = l
		return r
	}
	winner := build(1)

	// replay re-runs the matches on the winner's path after its key
	// changed: one comparison per level.
	replay := func(leaf int) {
		w := leaf
		for node := (k + leaf) / 2; node >= 1; node /= 2 {
			if less(ls[node], w) {
				w, ls[node] = ls[node], w
			}
		}
		winner = w
	}

	advance := func(leaf int) error {
		it, ok, err := sources[leaf].Next()
		if err != nil {
			return err
		}
		if !ok {
			state[leaf] = stateDone
			d[leaf] = math.MaxInt64
			v[leaf] = math.MaxInt32
		} else {
			state[leaf] = stateItem
			d[leaf] = it.D
			v[leaf] = it.V
		}
		replay(leaf)
		return nil
	}

	for {
		w := winner
		switch state[w] {
		case stateDone:
			// The winner is exhausted, so every source is.
			return nil
		case statePending:
			if err := advance(w); err != nil {
				return err
			}
		case stateItem:
			if !yield(Item{V: v[w], D: d[w]}) {
				return nil
			}
			if err := advance(w); err != nil {
				return err
			}
		}
	}
}
