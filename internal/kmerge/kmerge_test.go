package kmerge_test

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"rnknn/internal/kmerge"
)

// sliceSource yields a fixed nondecreasing item list; it records whether
// it was ever opened so tests can assert bound-based pruning.
type sliceSource struct {
	bound  int64
	items  []kmerge.Item
	pos    int
	opened bool
	err    error
}

func (s *sliceSource) Bound() int64 { return s.bound }

func (s *sliceSource) Next() (kmerge.Item, bool, error) {
	s.opened = true
	if s.err != nil {
		return kmerge.Item{}, false, s.err
	}
	if s.pos >= len(s.items) {
		return kmerge.Item{}, false, nil
	}
	it := s.items[s.pos]
	s.pos++
	return it, true, nil
}

func collect(t *testing.T, sources []kmerge.Source, limit int) []kmerge.Item {
	t.Helper()
	var out []kmerge.Item
	err := kmerge.Merge(sources, func(it kmerge.Item) bool {
		out = append(out, it)
		return limit <= 0 || len(out) < limit
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func ordered(items []kmerge.Item) bool {
	return sort.SliceIsSorted(items, func(a, b int) bool {
		if items[a].D != items[b].D {
			return items[a].D < items[b].D
		}
		return items[a].V < items[b].V
	})
}

func TestMergeBasic(t *testing.T) {
	srcs := []kmerge.Source{
		&sliceSource{bound: 0, items: []kmerge.Item{{V: 1, D: 1}, {V: 4, D: 4}, {V: 7, D: 7}}},
		&sliceSource{bound: 0, items: []kmerge.Item{{V: 2, D: 2}, {V: 5, D: 5}}},
		&sliceSource{bound: 0, items: []kmerge.Item{{V: 3, D: 3}, {V: 6, D: 6}, {V: 8, D: 8}}},
	}
	got := collect(t, srcs, 0)
	if len(got) != 8 {
		t.Fatalf("got %d items", len(got))
	}
	for i, it := range got {
		if it.D != int64(i+1) {
			t.Fatalf("item %d: %+v", i, it)
		}
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	if got := collect(t, nil, 0); len(got) != 0 {
		t.Fatalf("k=0: %v", got)
	}
	one := []kmerge.Source{&sliceSource{items: []kmerge.Item{{V: 1, D: 5}, {V: 2, D: 9}}}}
	got := collect(t, one, 0)
	if len(got) != 2 || got[0].D != 5 || got[1].D != 9 {
		t.Fatalf("k=1: %v", got)
	}
	empty := []kmerge.Source{&sliceSource{}, &sliceSource{}, &sliceSource{}}
	if got := collect(t, empty, 0); len(got) != 0 {
		t.Fatalf("all empty: %v", got)
	}
}

// TestBoundDefersOpening is the pruning contract: a source whose bound
// stays above every emitted item is never opened (its Next is never
// called) when the consumer stops early — the property that lets a
// sharded scan skip far-away shards entirely.
func TestBoundDefersOpening(t *testing.T) {
	near := &sliceSource{bound: 0, items: []kmerge.Item{{V: 1, D: 1}, {V: 2, D: 2}, {V: 3, D: 3}}}
	far := &sliceSource{bound: 100, items: []kmerge.Item{{V: 9, D: 150}}}
	got := collect(t, []kmerge.Source{near, far}, 3)
	if len(got) != 3 || got[2].D != 3 {
		t.Fatalf("got %v", got)
	}
	if far.opened {
		t.Fatal("far source was opened despite its bound exceeding every emitted item")
	}
}

// TestBoundOpensBeforeEqualItem: a pending bound ties ahead of an item at
// the same distance, so a source holding an item exactly at its bound is
// opened before that distance is emitted — otherwise the merge could emit
// an item and later discover an equal-distance item it should have
// interleaved by vertex id.
func TestBoundOpensBeforeEqualItem(t *testing.T) {
	a := &sliceSource{bound: 0, items: []kmerge.Item{{V: 5, D: 10}}}
	b := &sliceSource{bound: 10, items: []kmerge.Item{{V: 1, D: 10}}}
	got := collect(t, []kmerge.Source{a, b}, 0)
	if len(got) != 2 || got[0].V != 1 || got[1].V != 5 {
		t.Fatalf("equal-distance order: %v", got)
	}
}

func TestMergeErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	srcs := []kmerge.Source{
		&sliceSource{items: []kmerge.Item{{V: 1, D: 1}}},
		&sliceSource{err: boom},
	}
	err := kmerge.Merge(srcs, func(kmerge.Item) bool { return true })
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestMergeEarlyStop(t *testing.T) {
	srcs := []kmerge.Source{
		&sliceSource{items: []kmerge.Item{{V: 1, D: 1}, {V: 3, D: 3}}},
		&sliceSource{items: []kmerge.Item{{V: 2, D: 2}, {V: 4, D: 4}}},
	}
	got := collect(t, srcs, 2)
	if len(got) != 2 || got[1].D != 2 {
		t.Fatalf("got %v", got)
	}
}

// TestMergeRandomized cross-checks the loser tree against sort on many
// random stream configurations, including equal distances across sources
// and bounds at varying tightness.
func TestMergeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(9)
		var srcs []kmerge.Source
		var all []kmerge.Item
		for i := 0; i < k; i++ {
			n := rng.Intn(20)
			items := make([]kmerge.Item, n)
			d := int64(rng.Intn(10))
			for j := range items {
				d += int64(rng.Intn(4)) // repeats allowed
				items[j] = kmerge.Item{V: int32(rng.Intn(1000)), D: d}
			}
			sort.Slice(items, func(a, b int) bool {
				if items[a].D != items[b].D {
					return items[a].D < items[b].D
				}
				return items[a].V < items[b].V
			})
			bound := int64(0)
			if n > 0 && rng.Intn(2) == 0 {
				bound = items[0].D - int64(rng.Intn(3)) // tight-ish lower bound
			}
			srcs = append(srcs, &sliceSource{bound: bound, items: items})
			all = append(all, items...)
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].D != all[b].D {
				return all[a].D < all[b].D
			}
			return all[a].V < all[b].V
		})
		got := collect(t, srcs, 0)
		if len(got) != len(all) {
			t.Fatalf("trial %d: %d items, want %d", trial, len(got), len(all))
		}
		if !ordered(got) {
			t.Fatalf("trial %d: output not ordered: %v", trial, got)
		}
		// Same multiset with nondecreasing D; V order within equal D may
		// differ only when duplicates span sources with identical (D, V) —
		// compare exact sequences, which the (D, V, leaf) tie-break makes
		// deterministic up to identical pairs.
		for i := range all {
			if got[i].D != all[i].D {
				t.Fatalf("trial %d item %d: got %+v want %+v", trial, i, got[i], all[i])
			}
		}
	}
}
