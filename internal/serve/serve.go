// Package serve is the network serving layer over rnknn.DB: the HTTP/JSON
// front end cmd/rnknnd mounts, turning the in-process query library into a
// service that survives heavy traffic by shedding load in three layers,
// cheapest first:
//
//	request ──► admission ──► result cache ──► coalescer ──► session pools
//	             (429 when     (hit: no          (follower:    (db.KNNPinned)
//	              saturated)    session runs)     wait, share)
//
// Admission is a no-queue counting semaphore: a saturated server answers
// 429 immediately instead of building a backlog. The result cache is a
// sharded LRU keyed on (vertex, k, category, epoch) — the epoch comes from
// the dynamic object store's versioning, so object churn invalidates every
// affected entry exactly and for free: mutation advances the epoch, lookup
// keys computed from the live epoch can no longer reach entries stamped
// with the old one, and the orphaned entries age out of the LRU. There are
// no TTLs and no invalidation messages, and a cached answer can never be
// stale: an entry stamped with epoch E is only ever served to a reader that
// observed epoch E. The coalescer is a single-flight layer under the cache:
// identical concurrent misses run one search and share its answer.
//
// Both /knn and /range ride the cache (kNN entries carry radius -1, range
// entries k 0, so the key spaces are disjoint); /monitor streams one
// db.Monitor session as Server-Sent Events, holding a single admission
// slot for the session's lifetime and bypassing the cache (deltas are
// per-session state — see monitor.go). /batch rides the same layers
// member-wise — per-member cache lookups, misses claiming the same
// coalescer map as the singles — and then executes its leaders as ONE
// db.Batch, whose grouping planner runs same-leaf clusters through shared
// expansions (see rnknn.Batch).
//
// Queries and mutations take separate paths on purpose (the HTAP lesson:
// co-designed, not shared): /objects/insert and /objects/remove bypass
// admission and the cache entirely — churn must keep landing even when the
// read path is saturated, because churn is what retires stale cache
// entries.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"rnknn/pkg/rnknn"
)

// Config sizes the serving layers.
type Config struct {
	// MaxInFlight bounds concurrently admitted query requests (/knn, /range,
	// /batch); excess requests are answered 429 immediately. <= 0 means the
	// default 256.
	MaxInFlight int
	// CacheEntries bounds the result cache (total entries across shards).
	// 0 means the default 4096; negative disables caching.
	CacheEntries int
	// CacheShards is the shard count (rounded up to a power of two).
	// <= 0 means the default 16.
	CacheShards int
	// MaxBatch bounds the queries accepted in one /batch request. <= 0
	// means the default 4096.
	MaxBatch int
	// BatchShared sets the shared-expansion mode /batch executes with. The
	// zero value is rnknn.SharedAuto (the planner's fitted cost model
	// decides per group); SharedOff benchmarks the pooled fan-out baseline.
	BatchShared rnknn.SharedMode
}

const (
	defaultMaxInFlight  = 256
	defaultCacheEntries = 4096
	defaultMaxBatch     = 4096
)

// Server serves one rnknn.DB over HTTP. Create with New, mount Handler.
type Server struct {
	db        *rnknn.DB
	adm       *admission
	cache     *resultCache
	co        *coalescer
	maxBatch  int
	batchMode rnknn.SharedMode
	requests  atomic.Uint64
	// Batch-path counters: requests, member queries, members answered from
	// the cache, and members answered by a shared-expansion group.
	batches        atomic.Uint64
	batchQueries   atomic.Uint64
	batchCacheHits atomic.Uint64
	batchShared    atomic.Uint64
	mux            *http.ServeMux
	// gate, when non-nil, runs on the cache-miss path immediately before
	// the underlying query — a test hook that lets the coalescing and
	// admission tests hold queries in flight deterministically.
	gate func()
}

// New builds a Server over db with the given sizing.
func New(db *rnknn.DB, cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = defaultCacheEntries
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	s := &Server{
		db:        db,
		adm:       newAdmission(cfg.MaxInFlight),
		cache:     newResultCache(cfg.CacheEntries, cfg.CacheShards),
		co:        newCoalescer(),
		maxBatch:  cfg.MaxBatch,
		batchMode: cfg.BatchShared,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /knn", s.admitted(s.handleKNN))
	mux.HandleFunc("GET /range", s.admitted(s.handleRange))
	mux.HandleFunc("GET /monitor", s.admitted(s.handleMonitor))
	mux.HandleFunc("POST /batch", s.admitted(s.handleBatch))
	mux.HandleFunc("POST /objects/insert", s.handleObjects(s.db.InsertObjects))
	mux.HandleFunc("POST /objects/remove", s.handleObjects(s.db.RemoveObjects))
	s.mux = mux
	return s
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the serving layer's counters (the GET /stats "server"
// section).
func (s *Server) Stats() ServerStats {
	return ServerStats{
		InFlight:       s.adm.inFlight(),
		MaxInFlight:    s.adm.max(),
		Requests:       s.requests.Load(),
		Shed:           s.adm.shed.Load(),
		CacheHits:      s.cache.hits.Load(),
		CacheMisses:    s.cache.misses.Load(),
		CacheEvictions: s.cache.evictions.Load(),
		CacheEntries:   s.cache.len(),
		Coalesced:      s.co.coalesced.Load(),
		Batches:        s.batches.Load(),
		BatchQueries:   s.batchQueries.Load(),
		BatchCacheHits: s.batchCacheHits.Load(),
		BatchShared:    s.batchShared.Load(),
	}
}

// admitted wraps a query handler in the admission semaphore: acquire or
// answer 429 now, never queue.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.adm.tryAcquire() {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "server saturated: max in-flight queries reached"})
			return
		}
		defer s.adm.release()
		s.requests.Add(1)
		h(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	g := s.db.Graph()
	writeJSON(w, http.StatusOK, StatsResponse{
		Server: s.Stats(),
		Graph:  GraphJSON{NumVertices: g.NumVertices(), NumEdges: g.NumEdges() / 2, Weights: g.Kind.String()},
		DB:     s.db.Stats(),
	})
}

// handleKNN is the cached read path: epoch-keyed lookup, then single-flight
// execution on miss. The answer's epoch stamp always names the exact object
// set it was computed from.
func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	qv, err := intParam(r, "q", -1)
	if err != nil {
		writeError(w, err)
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		writeError(w, err)
		return
	}
	methodName, method, err := methodParam(r)
	if err != nil {
		writeError(w, err)
		return
	}
	category := r.URL.Query().Get("category")
	if category == "" {
		category = rnknn.DefaultCategory
	}
	res, pinned, cached, err := s.knnQuery(r.Context(), int32(qv), k, method, category)
	if err != nil {
		writeError(w, err)
		return
	}
	key := cacheKey{vertex: int32(qv), k: int32(k), radius: -1, epoch: pinned, category: category}
	s.writeKNN(w, key, methodName, res, cached, start)
}

// knnQuery answers one kNN through the cache and coalescer (the caller
// holds an admission slot; the sharded front calls it per shard): the
// lookup key pins the epoch the reader observed, so a hit is an answer
// computed from exactly that object set; a miss runs single-flight. It
// returns the epoch stamped on the answer and whether it was served
// without running a search here (a cache hit or a coalesced follower).
func (s *Server) knnQuery(ctx context.Context, qv int32, k int, method rnknn.Method, category string) ([]rnknn.Result, uint64, bool, error) {
	epoch, err := s.db.Epoch(category)
	if err != nil {
		return nil, 0, false, err
	}
	key := cacheKey{vertex: qv, k: int32(k), radius: -1, epoch: epoch, category: category}
	if res, ok := s.cache.get(key); ok {
		return res, epoch, true, nil
	}
	return s.co.do(ctx, key, func() ([]rnknn.Result, uint64, error) {
		if s.gate != nil {
			s.gate()
		}
		res, pinned, err := s.db.KNNPinned(ctx, qv, k,
			rnknn.WithMethod(method), rnknn.WithCategory(category))
		if err == nil {
			// Store under the epoch the search pinned — possibly newer than
			// the lookup epoch when churn raced this request; never older.
			s.cache.put(cacheKey{vertex: qv, k: int32(k), radius: -1, epoch: pinned, category: category}, res)
		}
		return res, pinned, err
	})
}

func (s *Server) writeKNN(w http.ResponseWriter, key cacheKey, method string, res []rnknn.Result, cached bool, start time.Time) {
	writeJSON(w, http.StatusOK, KNNResponse{
		Query:         key.vertex,
		K:             int(key.k),
		Method:        method,
		Category:      key.category,
		Epoch:         key.epoch,
		Cached:        cached,
		LatencyMicros: time.Since(start).Microseconds(),
		Results:       Results(res),
	})
}

// handleRange is the cached range path, the same three layers as /knn:
// epoch-keyed lookup, then single-flight execution on miss. Range entries
// share the kNN cache (k=0, radius>=0 keeps the key spaces disjoint), so
// repeated radii — loadgen's fixed-radius mix, map tiles at zoom levels —
// hit without a session, and object churn retires range answers by the same
// epoch mechanism.
func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	qv, err := intParam(r, "q", -1)
	if err != nil {
		writeError(w, err)
		return
	}
	radius, err := intParam(r, "radius", -1)
	if err != nil {
		writeError(w, err)
		return
	}
	category := r.URL.Query().Get("category")
	if category == "" {
		category = rnknn.DefaultCategory
	}
	res, pinned, cached, err := s.rangeQuery(r.Context(), int32(qv), int64(radius), category)
	if err != nil {
		writeError(w, err)
		return
	}
	key := cacheKey{vertex: int32(qv), radius: int64(radius), epoch: pinned, category: category}
	s.writeRange(w, key, res, cached, start)
}

// rangeQuery is knnQuery's range twin: epoch-keyed lookup, single-flight
// execution on miss, answer stamped with the pinned epoch.
func (s *Server) rangeQuery(ctx context.Context, qv int32, radius int64, category string) ([]rnknn.Result, uint64, bool, error) {
	epoch, err := s.db.Epoch(category)
	if err != nil {
		return nil, 0, false, err
	}
	key := cacheKey{vertex: qv, radius: radius, epoch: epoch, category: category}
	if res, ok := s.cache.get(key); ok {
		return res, epoch, true, nil
	}
	return s.co.do(ctx, key, func() ([]rnknn.Result, uint64, error) {
		if s.gate != nil {
			s.gate()
		}
		res, pinned, err := s.db.RangePinned(ctx, qv, rnknn.Dist(radius), rnknn.WithCategory(category))
		if err == nil {
			// Store under the epoch the search pinned, as /knn does.
			s.cache.put(cacheKey{vertex: qv, radius: radius, epoch: pinned, category: category}, res)
		}
		return res, pinned, err
	})
}

func (s *Server) writeRange(w http.ResponseWriter, key cacheKey, res []rnknn.Result, cached bool, start time.Time) {
	writeJSON(w, http.StatusOK, RangeResponse{
		Query:         key.vertex,
		Radius:        key.radius,
		Category:      key.category,
		Epoch:         key.epoch,
		Cached:        cached,
		LatencyMicros: time.Since(start).Microseconds(),
		Results:       Results(res),
	})
}

// handleBatch decodes a mixed kNN/range batch and runs it through the same
// three layers as the single-query endpoints, then one db.Batch:
//
//  1. Every member does an epoch-keyed cache lookup; hits never reach a
//     session.
//  2. Each distinct missed key claims the coalescer: members whose key is
//     already in flight (a concurrent /knn, /range, or another batch's
//     leader) become followers and just wait; duplicates inside the batch
//     collapse onto one leader.
//  3. The leaders (plus unkeyable members — unknown categories and other
//     per-member errors the library reports) execute as ONE db.Batch, so
//     same-leaf clusters among them ride the shared-expansion path, and
//     each answer is published to cache and followers under the epoch the
//     search pinned.
//  4. Followers collect their leaders' answers.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad batch body: " + err.Error()})
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "batch has no queries"})
		return
	}
	if len(req.Queries) > s.maxBatch {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("batch of %d queries exceeds limit %d", len(req.Queries), s.maxBatch)})
		return
	}
	n := len(req.Queries)
	methods := make([]rnknn.Method, n)
	methodNames := make([]string, n)
	for i, q := range req.Queries {
		methods[i] = rnknn.MethodAuto
		methodNames[i] = rnknn.MethodAuto.String()
		if q.Method != "" {
			m, err := rnknn.ParseMethod(q.Method)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("query %d: %v", i, err)})
				return
			}
			methods[i] = m
			methodNames[i] = m.String()
		}
		if q.Radius != nil && q.K > 0 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("query %d: both k and radius set", i)})
			return
		}
	}
	s.batches.Add(1)
	s.batchQueries.Add(uint64(n))

	// Phase 1: epoch-keyed cache lookups per member. An epoch lookup that
	// fails (unknown category) leaves the member unkeyed; the inner batch
	// reports the library's error for it.
	out := make([]BatchResultJSON, n)
	keys := make([]cacheKey, n)
	keyed := make([]bool, n)
	epochs := map[string]uint64{}
	var miss []int
	for i, q := range req.Queries {
		category := q.Category
		if category == "" {
			category = rnknn.DefaultCategory
		}
		epoch, ok := epochs[category]
		if !ok {
			var err error
			if epoch, err = s.db.Epoch(category); err != nil {
				miss = append(miss, i)
				continue
			}
			epochs[category] = epoch
		}
		if q.Radius != nil {
			keys[i] = cacheKey{vertex: q.Query, radius: *q.Radius, epoch: epoch, category: category}
		} else {
			keys[i] = cacheKey{vertex: q.Query, k: int32(q.K), radius: -1, epoch: epoch, category: category}
		}
		keyed[i] = true
		if res, ok := s.cache.get(keys[i]); ok {
			s.batchCacheHits.Add(1)
			out[i] = BatchResultJSON{Query: q.Query, Method: methodNames[i], Epoch: epoch, Cached: true, Results: Results(res)}
			continue
		}
		miss = append(miss, i)
	}

	// Phase 2: claim or follow each distinct missed key.
	type lead struct {
		call    *inflightCall
		members []int
	}
	type follow struct {
		call   *inflightCall
		member int
	}
	leaders := map[cacheKey]*lead{}
	var followers []follow
	var run []int // member indices this request executes (one per leader key, plus unkeyed members)
	for _, i := range miss {
		if !keyed[i] {
			run = append(run, i)
			continue
		}
		if l, ok := leaders[keys[i]]; ok {
			l.members = append(l.members, i)
			continue
		}
		call, leader := s.co.claim(keys[i])
		if leader {
			leaders[keys[i]] = &lead{call: call, members: []int{i}}
			run = append(run, i)
		} else {
			followers = append(followers, follow{call: call, member: i})
		}
	}

	// Phase 3: one db.Batch over the leaders — same-leaf clusters among them
	// share expansions — then publish under the epoch each answer pinned.
	if len(run) > 0 {
		b := s.db.Batch().SharedExpansion(s.batchMode)
		for _, i := range run {
			q := req.Queries[i]
			var opts []rnknn.QueryOption
			if q.Category != "" {
				opts = append(opts, rnknn.WithCategory(q.Category))
			}
			if q.Method != "" {
				opts = append(opts, rnknn.WithMethod(methods[i]))
			}
			if q.Radius != nil {
				b.AddRange(q.Query, rnknn.Dist(*q.Radius), opts...)
			} else {
				b.AddKNN(q.Query, q.K, opts...)
			}
		}
		if s.gate != nil {
			s.gate()
		}
		// Run only errors on ctx expiry, and then every member result carries
		// the error — publish those too, so followers never hang.
		results, _ := b.Run(r.Context())
		for j, i := range run {
			br := results[j]
			if br.Shared {
				s.batchShared.Add(1)
			}
			if !keyed[i] {
				out[i] = batchResultJSON(br, false)
				continue
			}
			l := leaders[keys[i]]
			if br.Err == nil {
				k := keys[i]
				k.epoch = br.Epoch // possibly newer than the lookup epoch; never older
				s.cache.put(k, br.Results)
			}
			s.co.publish(keys[i], l.call, br.Results, br.Epoch, br.Err)
			for mj, mi := range l.members {
				out[mi] = batchResultJSON(br, mj > 0)
			}
		}
	}

	// Phase 4: collect followers from their leaders (a concurrent single or
	// another batch), honoring this request's own deadline.
	for _, f := range followers {
		i := f.member
		select {
		case <-f.call.done:
			br := rnknn.BatchResult{Query: req.Queries[i].Query, Results: f.call.res, Err: f.call.err, Epoch: f.call.epoch}
			out[i] = batchResultJSON(br, true)
			if br.Err == nil {
				// The leader's concrete method is not recorded on the call;
				// echo what this member asked for, as /knn does for followers.
				out[i].Method = methodNames[i]
			}
		case <-r.Context().Done():
			out[i] = BatchResultJSON{Query: req.Queries[i].Query, Error: r.Context().Err().Error()}
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: out})
}

// batchResultJSON converts one library batch result to its wire form;
// cached marks answers served without running a search for this member
// (intra-batch duplicates and coalesced followers).
func batchResultJSON(br rnknn.BatchResult, cached bool) BatchResultJSON {
	out := BatchResultJSON{Query: br.Query, LatencyMicros: br.Latency.Microseconds(), Cached: cached, Shared: br.Shared}
	if br.Err != nil {
		out.Error = br.Err.Error()
	} else {
		out.Method = br.Method.String()
		out.Epoch = br.Epoch
		out.Results = Results(br.Results)
	}
	return out
}

// handleObjects wraps one mutation (InsertObjects or RemoveObjects). The
// mutation path deliberately skips admission and the cache — see the
// package comment.
func (s *Server) handleObjects(mutate func(string, []int32) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req ObjectsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad objects body: " + err.Error()})
			return
		}
		if req.Category == "" {
			req.Category = rnknn.DefaultCategory
		}
		if err := mutate(req.Category, req.Vertices); err != nil {
			writeError(w, err)
			return
		}
		epoch, err := s.db.Epoch(req.Category)
		if err != nil {
			writeError(w, err)
			return
		}
		n, _ := s.db.NumObjects(req.Category)
		writeJSON(w, http.StatusOK, ObjectsResponse{Category: req.Category, Epoch: epoch, NumObjects: n})
	}
}

// intParam parses an integer query parameter; def < 0 makes it required.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		if def < 0 {
			return 0, fmt.Errorf("missing required parameter %q", name)
		}
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %q is not an integer", name, v)
	}
	return n, nil
}

// methodParam parses the optional method parameter (default "Auto": the
// planner picks among whatever methods the DB was opened with).
func methodParam(r *http.Request) (string, rnknn.Method, error) {
	v := r.URL.Query().Get("method")
	if v == "" {
		return rnknn.MethodAuto.String(), rnknn.MethodAuto, nil
	}
	m, err := rnknn.ParseMethod(v)
	if err != nil {
		return "", 0, err
	}
	return m.String(), m, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps library errors onto HTTP statuses: unknown categories are
// 404, context expiry is 503 (the query was cut short, not invalid), and
// everything else — the typed validation errors — is 400.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, rnknn.ErrUnknownCategory):
		status = http.StatusNotFound
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
