package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/internal/knn"
	"rnknn/pkg/rnknn"
)

// TestEpochInvalidationHammer is the exactness proof for the epoch-keyed
// cache: concurrent readers hammer a small (query, k) space — so most
// responses are cache hits — while one writer churns the object set through
// the HTTP mutation endpoints. Every response carries the epoch it was
// computed at; the test reconstructs the exact object set of every epoch
// and asserts each response equals the brute-force answer over precisely
// that set. A cached entry served across an epoch bump would answer with a
// different set's neighbors and fail the comparison. The writer
// additionally re-queries a hot key after every mutation and checks it
// against a fresh db.BruteForceKNN — the stale-read probe at the moment of
// invalidation. Run under -race this also exercises the shard locks,
// coalescer, and admission counters.
func TestEpochInvalidationHammer(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "hammer", Rows: 10, Cols: 12, Seed: 5})
	initial := gen.Uniform(g, 0.08, 13)
	db, err := rnknn.Open(g,
		rnknn.WithMethods(rnknn.INE, rnknn.Gtree),
		rnknn.WithObjects(rnknn.DefaultCategory, initial),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{MaxInFlight: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// epochSets[e] is the exact object set live at epoch e. The writer
	// records the next epoch's set *before* publishing the mutation, so any
	// epoch a response can possibly carry is already recorded.
	var mu sync.Mutex
	epochSets := map[uint64][]int32{}
	live := map[int32]bool{}
	for _, v := range initial {
		live[v] = true
	}
	snapshotLive := func() []int32 {
		out := make([]int32, 0, len(live))
		for v := range live {
			out = append(out, v)
		}
		return out
	}
	mu.Lock()
	epochSets[0] = snapshotLive()
	mu.Unlock()

	verify := func(who string, resp KNNResponse) {
		mu.Lock()
		set, ok := epochSets[resp.Epoch]
		mu.Unlock()
		if !ok {
			t.Errorf("%s: response carries unknown epoch %d", who, resp.Epoch)
			return
		}
		want := knn.BruteForce(g, knn.NewObjectSet(g, set), resp.Query, resp.K)
		if !knn.SameResults(toResults(resp.Results), want) {
			t.Errorf("%s: STALE/WRONG answer at epoch %d for q=%d k=%d: got %v want %v (cached=%v)",
				who, resp.Epoch, resp.Query, resp.K, resp.Results, knn.FormatResults(want), resp.Cached)
		}
	}

	// Small hot key space: readers repeat these constantly, so churn is
	// guaranteed to race live cache entries.
	queryVertices := []int32{3, 17, 42, 60, 81, 99}
	kValues := []int{2, 4}
	getKNN := func(q int32, k int) (KNNResponse, error) {
		resp, err := http.Get(fmt.Sprintf("%s/knn?q=%d&k=%d", ts.URL, q, k))
		if err != nil {
			return KNNResponse{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return KNNResponse{}, fmt.Errorf("status %d", resp.StatusCode)
		}
		var kr KNNResponse
		return kr, json.NewDecoder(resp.Body).Decode(&kr)
	}

	const mutations = 80
	var done atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for !done.Load() {
				q := queryVertices[rng.Intn(len(queryVertices))]
				k := kValues[rng.Intn(len(kValues))]
				kr, err := getKNN(q, k)
				if err != nil {
					t.Error(err)
					return
				}
				verify(fmt.Sprintf("reader %d", r), kr)
			}
		}(r)
	}

	// The writer: toggle vertex membership through the HTTP endpoints so
	// every mutation provably changes the set (and so bumps the epoch by
	// exactly one — the precondition for pre-recording the next set).
	writerRng := rand.New(rand.NewSource(7))
	epoch := uint64(0)
	for i := 0; i < mutations; i++ {
		v := int32(writerRng.Intn(g.NumVertices()))
		endpoint := "/objects/insert"
		if live[v] {
			endpoint = "/objects/remove"
			delete(live, v)
		} else {
			live[v] = true
		}
		epoch++
		mu.Lock()
		epochSets[epoch] = snapshotLive()
		mu.Unlock()
		body, _ := json.Marshal(ObjectsRequest{Vertices: []int32{v}})
		resp, err := http.Post(ts.URL+endpoint, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var or ObjectsResponse
		if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if or.Epoch != epoch {
			t.Fatalf("mutation %d: epoch %d, want %d (membership toggle out of sync)", i, or.Epoch, epoch)
		}
		// Stale-read probe: a hot key immediately after invalidation must
		// answer from the new epoch's set, never the cached old one.
		kr, err := getKNN(queryVertices[i%len(queryVertices)], kValues[i%len(kValues)])
		if err != nil {
			t.Fatal(err)
		}
		if kr.Epoch < epoch {
			t.Fatalf("mutation %d: post-churn read answered from epoch %d < %d", i, kr.Epoch, epoch)
		}
		verify("writer probe", kr)
		if kr.Epoch == epoch {
			fresh, err := db.BruteForceKNN(kr.Query, kr.K)
			if err != nil {
				t.Fatal(err)
			}
			if !rnknn.SameResults(toResults(kr.Results), fresh) {
				t.Fatalf("mutation %d: served answer differs from fresh brute force", i)
			}
		}
	}
	done.Store(true)
	wg.Wait()

	st := s.Stats()
	if st.CacheHits == 0 {
		t.Fatal("hammer never hit the cache — the staleness property was not exercised")
	}
	if st.Shed != 0 {
		t.Fatalf("hammer shed %d requests; raise MaxInFlight", st.Shed)
	}
	t.Logf("hammer: %d requests, %d hits, %d misses, %d coalesced, %d entries, %d epochs",
		st.Requests, st.CacheHits, st.CacheMisses, st.Coalesced, st.CacheEntries, epoch)
}

// TestRangeEpochInvalidationHammer mirrors the kNN hammer for the cached
// /range path: concurrent readers repeat a small (query, radius) space —
// mostly cache hits — while a writer churns the object set over HTTP. Each
// response's epoch stamp must reconstruct to the brute-force range answer
// over exactly that epoch's object set; a range entry served across an
// epoch bump fails the comparison.
func TestRangeEpochInvalidationHammer(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "rhammer", Rows: 10, Cols: 12, Seed: 6})
	initial := gen.Uniform(g, 0.08, 17)
	db, err := rnknn.Open(g,
		rnknn.WithMethods(rnknn.INE),
		rnknn.WithObjects(rnknn.DefaultCategory, initial),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{MaxInFlight: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var mu sync.Mutex
	epochSets := map[uint64][]int32{}
	live := map[int32]bool{}
	for _, v := range initial {
		live[v] = true
	}
	snapshotLive := func() []int32 {
		out := make([]int32, 0, len(live))
		for v := range live {
			out = append(out, v)
		}
		return out
	}
	mu.Lock()
	epochSets[0] = snapshotLive()
	mu.Unlock()

	verify := func(who string, resp RangeResponse) {
		mu.Lock()
		set, ok := epochSets[resp.Epoch]
		mu.Unlock()
		if !ok {
			t.Errorf("%s: response carries unknown epoch %d", who, resp.Epoch)
			return
		}
		want := knn.BruteForceRange(g, knn.NewObjectSet(g, set), resp.Query, graph.Dist(resp.Radius))
		if !knn.SameResults(toResults(resp.Results), want) {
			t.Errorf("%s: STALE/WRONG range answer at epoch %d for q=%d radius=%d: got %v want %v (cached=%v)",
				who, resp.Epoch, resp.Query, resp.Radius, resp.Results, knn.FormatResults(want), resp.Cached)
		}
	}

	queryVertices := []int32{3, 17, 42, 60, 81, 99}
	radii := []int64{4000, 9000}
	getRange := func(q int32, radius int64) (RangeResponse, error) {
		resp, err := http.Get(fmt.Sprintf("%s/range?q=%d&radius=%d", ts.URL, q, radius))
		if err != nil {
			return RangeResponse{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return RangeResponse{}, fmt.Errorf("status %d", resp.StatusCode)
		}
		var rr RangeResponse
		return rr, json.NewDecoder(resp.Body).Decode(&rr)
	}

	const mutations = 60
	var done atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for !done.Load() {
				q := queryVertices[rng.Intn(len(queryVertices))]
				radius := radii[rng.Intn(len(radii))]
				rr, err := getRange(q, radius)
				if err != nil {
					t.Error(err)
					return
				}
				verify(fmt.Sprintf("reader %d", r), rr)
			}
		}(r)
	}

	writerRng := rand.New(rand.NewSource(11))
	epoch := uint64(0)
	for i := 0; i < mutations; i++ {
		v := int32(writerRng.Intn(g.NumVertices()))
		endpoint := "/objects/insert"
		if live[v] {
			endpoint = "/objects/remove"
			delete(live, v)
		} else {
			live[v] = true
		}
		epoch++
		mu.Lock()
		epochSets[epoch] = snapshotLive()
		mu.Unlock()
		body, _ := json.Marshal(ObjectsRequest{Vertices: []int32{v}})
		resp, err := http.Post(ts.URL+endpoint, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var or ObjectsResponse
		if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if or.Epoch != epoch {
			t.Fatalf("mutation %d: epoch %d, want %d (membership toggle out of sync)", i, or.Epoch, epoch)
		}
		// Stale-read probe at the moment of invalidation.
		rr, err := getRange(queryVertices[i%len(queryVertices)], radii[i%len(radii)])
		if err != nil {
			t.Fatal(err)
		}
		if rr.Epoch < epoch {
			t.Fatalf("mutation %d: post-churn range read answered from epoch %d < %d", i, rr.Epoch, epoch)
		}
		verify("writer probe", rr)
	}
	done.Store(true)
	wg.Wait()

	st := s.Stats()
	if st.CacheHits == 0 {
		t.Fatal("range hammer never hit the cache — the staleness property was not exercised")
	}
	if st.Shed != 0 {
		t.Fatalf("range hammer shed %d requests; raise MaxInFlight", st.Shed)
	}
	t.Logf("range hammer: %d requests, %d hits, %d misses, %d coalesced, %d entries, %d epochs",
		st.Requests, st.CacheHits, st.CacheMisses, st.Coalesced, st.CacheEntries, epoch)
}

// TestWeightViewServing sanity-checks the server over a travel-time view:
// the epoch key and answers remain exact under the alternate weight array.
func TestWeightViewServing(t *testing.T) {
	g := gen.Network(gen.NetworkSpec{Name: "tt", Rows: 8, Cols: 9, Seed: 2}).View(graph.TravelTime)
	db, err := rnknn.Open(g,
		rnknn.WithMethods(rnknn.INE),
		rnknn.WithObjects(rnknn.DefaultCategory, gen.Uniform(g, 0.1, 3)),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var kr KNNResponse
	if code := getJSON(t, ts.URL+"/knn?q=10&k=3", &kr); code != 200 {
		t.Fatalf("status %d", code)
	}
	want, _ := db.BruteForceKNN(10, 3)
	if !rnknn.SameResults(toResults(kr.Results), want) {
		t.Fatalf("travel-time answer wrong: %v vs %v", kr.Results, rnknn.FormatResults(want))
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Graph.Weights != graph.TravelTime.String() {
		t.Fatalf("stats weights %q", st.Graph.Weights)
	}
}
