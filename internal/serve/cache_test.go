package serve

import (
	"fmt"
	"sync"
	"testing"

	"rnknn/pkg/rnknn"
)

func res(vals ...int32) []rnknn.Result {
	out := make([]rnknn.Result, len(vals))
	for i, v := range vals {
		out[i] = rnknn.Result{Vertex: v, Dist: int64(v) * 10}
	}
	return out
}

func TestCacheHitMissAndEpochSeparation(t *testing.T) {
	c := newResultCache(64, 4)
	k0 := cacheKey{vertex: 7, k: 5, epoch: 0, category: "poi"}
	if _, ok := c.get(k0); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(k0, res(1, 2))
	got, ok := c.get(k0)
	if !ok || len(got) != 2 || got[0].Vertex != 1 {
		t.Fatalf("get after put: %v %v", got, ok)
	}
	// The same query at a later epoch is a different key: a mutation
	// invalidates by making old keys unreachable, not by deleting them.
	k1 := k0
	k1.epoch = 1
	if _, ok := c.get(k1); ok {
		t.Fatal("epoch-bumped key hit a stale entry")
	}
	c.put(k1, res(3))
	if got, _ := c.get(k1); len(got) != 1 || got[0].Vertex != 3 {
		t.Fatalf("epoch 1 entry: %v", got)
	}
	if got, _ := c.get(k0); len(got) != 2 {
		t.Fatalf("epoch 0 entry clobbered: %v", got)
	}
	// Distinct categories and k values separate too.
	for _, k := range []cacheKey{
		{vertex: 7, k: 6, epoch: 0, category: "poi"},
		{vertex: 7, k: 5, epoch: 0, category: "fuel"},
		{vertex: 8, k: 5, epoch: 0, category: "poi"},
	} {
		if _, ok := c.get(k); ok {
			t.Fatalf("key %+v aliased", k)
		}
	}
	if h, m := c.hits.Load(), c.misses.Load(); h != 3 || m != 5 {
		t.Fatalf("hits=%d misses=%d, want 3/5", h, m)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard of capacity 4 keeps eviction order observable.
	c := newResultCache(4, 1)
	key := func(i int) cacheKey { return cacheKey{vertex: int32(i), k: 1, category: "c"} }
	for i := 0; i < 4; i++ {
		c.put(key(i), res(int32(i)))
	}
	// Touch 0 so 1 is now least recent.
	if _, ok := c.get(key(0)); !ok {
		t.Fatal("key 0 missing")
	}
	c.put(key(4), res(4))
	if _, ok := c.get(key(1)); ok {
		t.Fatal("least-recent key 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3, 4} {
		if _, ok := c.get(key(i)); !ok {
			t.Fatalf("key %d evicted out of order", i)
		}
	}
	if c.evictions.Load() != 1 || c.len() != 4 {
		t.Fatalf("evictions=%d len=%d", c.evictions.Load(), c.len())
	}
	// Overwriting an existing key must not evict or grow.
	c.put(key(4), res(40))
	if got, _ := c.get(key(4)); len(got) != 1 || got[0].Vertex != 40 {
		t.Fatalf("overwrite lost: %v", got)
	}
	if c.len() != 4 || c.evictions.Load() != 1 {
		t.Fatalf("overwrite changed occupancy: len=%d evictions=%d", c.len(), c.evictions.Load())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1, 8)
	k := cacheKey{vertex: 1, k: 1}
	c.put(k, res(1))
	if _, ok := c.get(k); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.len())
	}
}

func TestCacheShardSizing(t *testing.T) {
	for _, tc := range []struct{ capacity, shards, wantShards int }{
		{4096, 16, 16},
		{4096, 0, 16},
		{100, 13, 16},
		{8, 16, 8}, // shards cut down to capacity
		{1, 16, 1}, // minimum one shard, one entry
		{3, 16, 2}, // power of two not above capacity
	} {
		c := newResultCache(tc.capacity, tc.shards)
		if len(c.shards) != tc.wantShards {
			t.Errorf("newResultCache(%d,%d): %d shards, want %d", tc.capacity, tc.shards, len(c.shards), tc.wantShards)
		}
	}
}

// TestCacheConcurrent hammers all operations; run under -race this is the
// shard-locking proof.
func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(128, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := cacheKey{vertex: int32(i % 97), k: int32(w%3 + 1), epoch: uint64(i % 5), category: "c"}
				if i%3 == 0 {
					c.put(k, res(int32(i%97)))
				} else if got, ok := c.get(k); ok {
					if len(got) != 1 || got[0].Vertex != int32(i%97) {
						panic(fmt.Sprintf("corrupt entry for %+v: %v", k, got))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.len() > 128 {
		t.Fatalf("cache over capacity: %d", c.len())
	}
}
