package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"rnknn/pkg/rnknn"
)

// postBatch posts queries to /batch and decodes the response.
func postBatch(t *testing.T, url string, queries []BatchQuery) BatchResponse {
	t.Helper()
	body, err := json.Marshal(BatchRequest{Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	return br
}

// TestBatchRidesCache proves /batch members ride the epoch-keyed result
// cache: a member whose answer is already cached (by a single or an earlier
// batch) never runs a search, intra-batch duplicates collapse onto one
// execution, and a repeat of the whole batch is answered entirely from the
// cache.
func TestBatchRidesCache(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm one key through the single path.
	if code := getJSON(t, fmt.Sprintf("%s/knn?q=10&k=3", ts.URL), nil); code != 200 {
		t.Fatalf("warmup status %d", code)
	}
	queries := []BatchQuery{
		{Query: 10, K: 3}, // cache hit (warmed above)
		{Query: 20, K: 3}, // miss: leader
		{Query: 20, K: 3}, // intra-batch duplicate of the leader
		{Query: 21, K: 4}, // miss: leader
	}
	br := postBatch(t, ts.URL, queries)
	if len(br.Results) != 4 {
		t.Fatalf("got %d results", len(br.Results))
	}
	for i, q := range queries {
		want, _ := db.BruteForceKNN(q.Query, q.K)
		if br.Results[i].Error != "" {
			t.Fatalf("member %d errored: %s", i, br.Results[i].Error)
		}
		if !rnknn.SameResults(toResults(br.Results[i].Results), want) {
			t.Fatalf("member %d wrong answer", i)
		}
	}
	if !br.Results[0].Cached {
		t.Fatal("warmed member did not report a cache hit")
	}
	if br.Results[1].Cached || !br.Results[2].Cached {
		t.Fatalf("duplicate handling: leader cached=%v dup cached=%v",
			br.Results[1].Cached, br.Results[2].Cached)
	}
	st := s.Stats()
	if st.Batches != 1 || st.BatchQueries != 4 || st.BatchCacheHits != 1 {
		t.Fatalf("batch counters after first batch: %+v", st)
	}

	// The searches the batch ran are now cached: an exact repeat answers
	// every member from the cache and runs nothing.
	var before uint64
	for _, ms := range db.Stats().Methods {
		before += ms.KNNQueries
	}
	br = postBatch(t, ts.URL, queries)
	for i := range br.Results {
		if !br.Results[i].Cached {
			t.Fatalf("repeat member %d not served from cache", i)
		}
	}
	var after uint64
	for _, ms := range db.Stats().Methods {
		after += ms.KNNQueries
	}
	if after != before {
		t.Fatalf("repeat batch ran %d searches, want 0", after-before)
	}
}

// TestBatchCoalescesWithSingles holds a single /knn in flight behind the
// test gate and proves a batch member with the identical key becomes a
// follower of that single — the two paths share one coalescer map — while
// the batch's other member proceeds as its own leader.
func TestBatchCoalescesWithSingles(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{MaxInFlight: 64})
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s.gate = func() { entered <- struct{}{}; <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var single KNNResponse
	go func() {
		defer wg.Done()
		getJSON(t, fmt.Sprintf("%s/knn?q=33&k=4", ts.URL), &single)
	}()
	<-entered // the single has claimed its key and is parked on the gate

	wg.Add(1)
	var br BatchResponse
	go func() {
		defer wg.Done()
		br = postBatch(t, ts.URL, []BatchQuery{
			{Query: 33, K: 4}, // identical to the in-flight single: follower
			{Query: 34, K: 4}, // its own leader
		})
	}()
	<-entered // the batch has registered its follower and is parked before Run
	waitFor(t, func() bool { return s.co.coalesced.Load() == 1 })
	close(release)
	wg.Wait()

	want33, _ := db.BruteForceKNN(33, 4)
	want34, _ := db.BruteForceKNN(34, 4)
	if !rnknn.SameResults(toResults(single.Results), want33) {
		t.Fatal("single answer wrong")
	}
	if !br.Results[0].Cached || !rnknn.SameResults(toResults(br.Results[0].Results), want33) {
		t.Fatalf("follower member: %+v", br.Results[0])
	}
	if br.Results[1].Cached || !rnknn.SameResults(toResults(br.Results[1].Results), want34) {
		t.Fatalf("leader member: %+v", br.Results[1])
	}
	// Exactly two searches ran: the single's leader and the batch's own.
	var total uint64
	for _, ms := range db.Stats().Methods {
		total += ms.KNNQueries
	}
	if total != 2 {
		t.Fatalf("%d underlying searches, want 2", total)
	}
}

// TestBatchSharedOnServer forces SharedOn and proves same-leaf members are
// answered by shared-expansion groups end to end — marked on the wire,
// counted in the server stats, and still exact.
func TestBatchSharedOnServer(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{BatchShared: rnknn.SharedOn})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 32 consecutive vertices on the 12x14 grid: by pigeonhole several land
	// in the same partition leaf, so SharedOn must form at least one group.
	queries := make([]BatchQuery, 32)
	for i := range queries {
		queries[i] = BatchQuery{Query: int32(40 + i), K: 3, Method: "INE"}
	}
	br := postBatch(t, ts.URL, queries)
	shared := 0
	for i, q := range queries {
		if br.Results[i].Error != "" {
			t.Fatalf("member %d errored: %s", i, br.Results[i].Error)
		}
		want, _ := db.BruteForceKNN(q.Query, q.K)
		if !rnknn.SameResults(toResults(br.Results[i].Results), want) {
			t.Fatalf("member %d wrong answer", i)
		}
		if br.Results[i].Shared {
			shared++
		}
	}
	if shared < 2 {
		t.Fatalf("only %d members shared, want >= 2", shared)
	}
	st := s.Stats()
	if st.BatchShared != uint64(shared) {
		t.Fatalf("BatchShared counter %d, want %d", st.BatchShared, shared)
	}
	if got := db.Stats().Batch; got.SharedQueries != uint64(shared) {
		t.Fatalf("db shared-query counter %d, want %d", got.SharedQueries, shared)
	}
}
