package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rnknn/internal/gen"
	"rnknn/pkg/rnknn"
)

// newShardedPair builds a monolithic DB (the oracle) and a sharded DB over
// the same network and objects, served by a sharded front.
func newShardedPair(t *testing.T, shards int) (*rnknn.DB, *rnknn.ShardedDB, *httptest.Server) {
	t.Helper()
	g := gen.Network(gen.NetworkSpec{Name: "shsrv", Rows: 11, Cols: 13, Seed: 5})
	objs := gen.Uniform(g, 0.04, 19)
	db, err := rnknn.Open(g,
		rnknn.WithMethods(rnknn.Gtree, rnknn.INE),
		rnknn.WithObjects(rnknn.DefaultCategory, objs))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := db.SaveShardSet(dir, shards); err != nil {
		t.Fatal(err)
	}
	sdb, err := rnknn.OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	if err := sdb.RegisterObjects(rnknn.DefaultCategory, objs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewSharded(sdb, Config{}).Handler())
	t.Cleanup(ts.Close)
	return db, sdb, ts
}

// TestShardedFrontKNNMatchesMonolithic: answers over HTTP through the
// sharded front equal the monolithic library answers, and a repeated
// query reports cached=true once every consulted shard has the entry.
func TestShardedFrontKNNMatchesMonolithic(t *testing.T) {
	db, _, ts := newShardedPair(t, 3)
	ctx := context.Background()
	n := db.Graph().NumVertices()
	for q := 0; q < n; q += n/11 + 1 {
		want, err := db.KNN(ctx, int32(q), 5)
		if err != nil {
			t.Fatal(err)
		}
		var resp KNNResponse
		if code := getJSON(t, fmt.Sprintf("%s/knn?q=%d&k=5", ts.URL, q), &resp); code != http.StatusOK {
			t.Fatalf("q=%d: status %d", q, code)
		}
		if !rnknn.SameResults(toRnknnResults(resp.Results), want) {
			t.Fatalf("q=%d: got %v want %v", q, resp.Results, want)
		}
		// Second identical request: every shard the fan touches now hits
		// its cache (the same shards are consulted — bounds are
		// deterministic), so the front reports cached.
		var again KNNResponse
		getJSON(t, fmt.Sprintf("%s/knn?q=%d&k=5", ts.URL, q), &again)
		if !again.Cached {
			t.Fatalf("q=%d: repeat not cached", q)
		}
	}
}

func toRnknnResults(rs []ResultJSON) []rnknn.Result {
	out := make([]rnknn.Result, len(rs))
	for i, r := range rs {
		out[i] = rnknn.Result{Vertex: r.Vertex, Dist: rnknn.Dist(r.Dist)}
	}
	return out
}

// TestShardedFrontRange mirrors the range path.
func TestShardedFrontRange(t *testing.T) {
	db, _, ts := newShardedPair(t, 2)
	want, err := db.Range(context.Background(), 30, 4000)
	if err != nil {
		t.Fatal(err)
	}
	var resp RangeResponse
	if code := getJSON(t, ts.URL+"/range?q=30&radius=4000", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !rnknn.SameResults(toRnknnResults(resp.Results), want) {
		t.Fatalf("got %v want %v", resp.Results, want)
	}
}

// TestShardedFrontObjectsInvalidatePerShard: a mutation routed through the
// front advances only the owning shard's epoch, and subsequent queries see
// the new object set.
func TestShardedFrontObjects(t *testing.T) {
	db, sdb, ts := newShardedPair(t, 3)
	// Insert a new object right next to a query vertex; the front's answer
	// must change accordingly and match the mirrored monolithic mutation.
	target := int32(db.Graph().NumVertices() / 2)
	body := fmt.Sprintf(`{"vertices":[%d]}`, target)
	resp, err := http.Post(ts.URL+"/objects/insert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	if err := db.InsertObjects(rnknn.DefaultCategory, []int32{target}); err != nil {
		t.Fatal(err)
	}
	n, _ := db.NumObjects(rnknn.DefaultCategory)
	sn, err := sdb.NumObjects(rnknn.DefaultCategory)
	if err != nil || sn != n {
		t.Fatalf("NumObjects %d vs %d (%v)", sn, n, err)
	}
	want, err := db.KNN(context.Background(), target, 1)
	if err != nil {
		t.Fatal(err)
	}
	var kr KNNResponse
	if code := getJSON(t, fmt.Sprintf("%s/knn?q=%d&k=1", ts.URL, target), &kr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !rnknn.SameResults(toRnknnResults(kr.Results), want) {
		t.Fatalf("after insert: got %v want %v", kr.Results, want)
	}
	if want[0].Vertex != target || want[0].Dist != 0 {
		t.Fatalf("inserted object not nearest: %v", want)
	}
}

// TestShardedFrontUnsupported: session- and plan-scoped endpoints answer
// 501 on the sharded front.
func TestShardedFrontUnsupported(t *testing.T) {
	_, _, ts := newShardedPair(t, 2)
	if code := getJSON(t, ts.URL+"/monitor?q=1&k=3&steps=2", nil); code != http.StatusNotImplemented {
		t.Fatalf("/monitor status %d", code)
	}
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(`{"queries":[{"query":1,"k":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("/batch status %d", resp.StatusCode)
	}
}

// TestShardedFrontStats: the stats endpoint reports every shard.
func TestShardedFrontStats(t *testing.T) {
	_, _, ts := newShardedPair(t, 3)
	getJSON(t, ts.URL+"/knn?q=5&k=3", nil)
	var st ShardedStatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.NumShards != 3 || len(st.Shards) != 3 {
		t.Fatalf("stats shards: %d / %d", st.NumShards, len(st.Shards))
	}
	totalReq := uint64(0)
	totalObj := 0
	for _, sh := range st.Shards {
		totalReq += sh.Server.Requests
		totalObj += sh.NumObjects
	}
	if totalReq == 0 {
		t.Fatal("no shard recorded the fanned request")
	}
	if totalObj == 0 {
		t.Fatal("no objects across shards")
	}
}

// TestShardedFrontSaturation: a shard with a full admission semaphore
// sheds the fanned request with 429.
func TestShardedFrontSaturation(t *testing.T) {
	_, sdb, _ := newShardedPair(t, 2)
	fs := NewSharded(sdb, Config{MaxInFlight: 1})
	ts := httptest.NewServer(fs.Handler())
	defer ts.Close()
	// Hold the only slot on every shard, then query.
	for i := 0; i < sdb.NumShards(); i++ {
		if !fs.Shard(i).adm.tryAcquire() {
			t.Fatal("slot unavailable")
		}
		defer fs.Shard(i).adm.release()
	}
	if code := getJSON(t, ts.URL+"/knn?q=5&k=3", nil); code != http.StatusTooManyRequests {
		t.Fatalf("saturated status %d", code)
	}
}
