package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rnknn/internal/knn"
	"rnknn/pkg/rnknn"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses an SSE body into events.
func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var events []sseEvent
	name := ""
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events = append(events, sseEvent{name: name, data: strings.TrimPrefix(line, "data: ")})
		}
	}
	if err := body.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// edgeWalkRoute builds a route that advances one edge per step.
func edgeWalkRoute(db *rnknn.DB, start int32, n int) []int32 {
	route := make([]int32, n)
	route[0] = start
	for i := 1; i < n; i++ {
		targets, _ := db.Graph().Neighbors(route[i-1])
		route[i] = targets[i%len(targets)]
	}
	return route
}

// TestMonitorEndpoint drives one /monitor SSE session over an explicit
// route and proves the streamed deltas replay to a valid kNN answer at
// every step, with a consistent closing summary.
func TestMonitorEndpoint(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const k = 4
	route := edgeWalkRoute(db, 17, 25)
	parts := make([]string, len(route))
	for i, v := range route {
		parts[i] = fmt.Sprint(v)
	}
	resp, err := http.Get(fmt.Sprintf("%s/monitor?route=%s&k=%d", ts.URL, strings.Join(parts, ","), k))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := readSSE(t, bufio.NewScanner(resp.Body))
	if len(events) != len(route)+1 {
		t.Fatalf("%d events, want %d steps + done", len(events), len(route)+1)
	}
	state := map[int32]int64{}
	avoided := 0
	for i, ev := range events[:len(route)] {
		if ev.name != "step" {
			t.Fatalf("event %d is %q", i, ev.name)
		}
		var step MonitorStepJSON
		if err := json.Unmarshal([]byte(ev.data), &step); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if step.Step != i || step.Vertex != route[i] {
			t.Fatalf("event %d: step %d vertex %d, want vertex %d", i, step.Step, step.Vertex, route[i])
		}
		if step.Refresh == "none" {
			avoided++
		}
		for _, e := range step.Events {
			switch e.Kind {
			case "enter", "dist_change":
				state[e.Object] = e.Dist
			case "exit":
				delete(state, e.Object)
			default:
				t.Fatalf("event %d: unknown kind %q", i, e.Kind)
			}
		}
		// The replayed membership must be a valid kNN answer at this step:
		// annotate members with true distances and compare tie-tolerantly.
		want, err := db.BruteForceKNN(step.Vertex, k)
		if err != nil {
			t.Fatal(err)
		}
		members := make([]int32, 0, len(state))
		for m := range state {
			members = append(members, m)
		}
		annotated := knn.BruteForce(db.Graph(), knn.NewObjectSet(db.Graph(), members), step.Vertex, len(members))
		if !knn.SameResults(annotated, want) {
			t.Fatalf("step %d: replayed set %s invalid (want %s)",
				i, knn.FormatResults(annotated), knn.FormatResults(want))
		}
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("final event is %q", last.name)
	}
	var sum MonitorSummaryJSON
	if err := json.Unmarshal([]byte(last.data), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Steps != len(route) || sum.Avoided != avoided || sum.Avoided+sum.Refreshes != sum.Steps {
		t.Fatalf("summary %+v vs observed avoided %d over %d steps", sum, avoided, len(route))
	}
	if sum.Avoided == 0 {
		t.Fatal("no steps avoided a search on an edge walk")
	}
}

// TestMonitorEndpointWalk covers the server-side random-walk form: the
// requested number of steps stream, and the same seed reproduces the same
// route.
func TestMonitorEndpointWalk(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() []int32 {
		resp, err := http.Get(ts.URL + "/monitor?q=30&steps=20&seed=9&k=3")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var vertices []int32
		for _, ev := range readSSE(t, bufio.NewScanner(resp.Body)) {
			if ev.name != "step" {
				continue
			}
			var step MonitorStepJSON
			if err := json.Unmarshal([]byte(ev.data), &step); err != nil {
				t.Fatal(err)
			}
			vertices = append(vertices, step.Vertex)
		}
		return vertices
	}
	first := get()
	if len(first) != 20 || first[0] != 30 {
		t.Fatalf("walk streamed %d steps from %v", len(first), first[:min(3, len(first))])
	}
	second := get()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("seeded walk not reproducible at step %d: %d vs %d", i, first[i], second[i])
		}
	}
}

// TestMonitorEndpointChurn lands an object mutation mid-session (the
// stream paced by interval_ms so the mutation provably precedes later
// steps) and requires an epoch refresh to appear on the stream.
func TestMonitorEndpointChurn(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	route := edgeWalkRoute(db, 40, 40)
	parts := make([]string, len(route))
	for i, v := range route {
		parts[i] = fmt.Sprint(v)
	}
	resp, err := http.Get(fmt.Sprintf("%s/monitor?route=%s&k=3&interval_ms=10", ts.URL, strings.Join(parts, ",")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	name := ""
	mutated := false
	sawEpochRefresh := false
	startEpoch := uint64(0)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			name = strings.TrimPrefix(line, "event: ")
			continue
		}
		if !strings.HasPrefix(line, "data: ") || name != "step" {
			continue
		}
		var step MonitorStepJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &step); err != nil {
			t.Fatal(err)
		}
		if step.Step == 0 {
			startEpoch = step.Epoch
		}
		if step.Epoch > startEpoch {
			if step.Epoch > startEpoch && step.Refresh == "epoch" {
				sawEpochRefresh = true
			}
		}
		// After a few streamed steps, churn the object set from outside.
		if step.Step == 5 && !mutated {
			mutated = true
			body, _ := json.Marshal(ObjectsRequest{Vertices: []int32{int32(step.Vertex)}})
			mresp, err := http.Post(ts.URL+"/objects/insert", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			mresp.Body.Close()
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !mutated {
		t.Fatal("mutation never fired")
	}
	if !sawEpochRefresh {
		t.Fatal("mid-session churn never surfaced as an epoch refresh on the stream")
	}
}

// TestMonitorEndpointErrors maps invalid input to proper HTTP statuses
// before any stream starts.
func TestMonitorEndpointErrors(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		url  string
		code int
	}{
		{"/monitor", http.StatusBadRequest},                        // neither q nor route
		{"/monitor?q=5&k=0", http.StatusBadRequest},                // bad k
		{"/monitor?q=999999", http.StatusBadRequest},               // vertex out of range
		{"/monitor?route=1,nope", http.StatusBadRequest},           // unparsable route
		{"/monitor?route=1,2&category=ghost", http.StatusNotFound}, // unknown category
		{"/monitor?q=5&steps=9999999", http.StatusBadRequest},      // steps over cap
		{"/monitor?q=5&k=3&method=ROAD", http.StatusBadRequest},    // method not enabled
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: error content type %q", tc.url, ct)
		}
	}
}
