// Sharded serving front: the HTTP face of rnknn.OpenSharded. Every shard
// gets a full Server — its own admission semaphore, epoch-keyed result
// cache, and coalescer, keyed on that shard's exact epochs — and the front
// routes /knn and /range through rnknn.ShardedDB's fan-out with the
// per-shard cached query path plugged in: a shard consulted twice for the
// same (vertex, k, epoch) answers the second time from its cache, and
// object churn on one shard invalidates only that shard's entries.
//
// Admission is per shard: a query request holds a slot on every shard it
// actually fans to, so a hot shard sheds load (429) without idling the
// others, and the geometric pruning means most requests touch only a few
// shards' semaphores. /monitor and /batch answer 501 — both are
// per-session/per-plan machinery that a later change can lift to the
// sharded layer; connect to a single-DB server for them today.
package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"rnknn/pkg/rnknn"
)

// errSaturated is returned by a shard's query path when its admission
// semaphore is full; the front maps it to 429.
var errSaturated = errors.New("server saturated: max in-flight queries reached")

// ShardedServer serves one rnknn.ShardedDB over HTTP: a front router plus
// one full Server (admission, cache, coalescer) per shard.
type ShardedServer struct {
	sdb    *rnknn.ShardedDB
	shards []*Server
	mux    *http.ServeMux
}

// NewSharded builds a sharded front over sdb. cfg sizes each per-shard
// Server individually (MaxInFlight and CacheEntries are per shard).
func NewSharded(sdb *rnknn.ShardedDB, cfg Config) *ShardedServer {
	fs := &ShardedServer{sdb: sdb}
	for i := 0; i < sdb.NumShards(); i++ {
		fs.shards = append(fs.shards, New(sdb.Shard(i), cfg))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", fs.handleHealthz)
	mux.HandleFunc("GET /stats", fs.handleStats)
	mux.HandleFunc("GET /knn", fs.handleKNN)
	mux.HandleFunc("GET /range", fs.handleRange)
	mux.HandleFunc("GET /monitor", fs.handleUnsupported)
	mux.HandleFunc("POST /batch", fs.handleUnsupported)
	mux.HandleFunc("POST /objects/insert", fs.handleObjects(sdb.InsertObjects))
	mux.HandleFunc("POST /objects/remove", fs.handleObjects(sdb.RemoveObjects))
	fs.mux = mux
	return fs
}

// Handler returns the HTTP handler serving every endpoint.
func (fs *ShardedServer) Handler() http.Handler { return fs.mux }

// Shard returns shard i's Server (its stats and counters).
func (fs *ShardedServer) Shard(i int) *Server { return fs.shards[i] }

func (fs *ShardedServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (fs *ShardedServer) handleUnsupported(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusNotImplemented, ErrorResponse{
		Error: "not supported on a sharded front; connect to a single-DB server",
	})
}

func (fs *ShardedServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	g := fs.sdb.Graph()
	out := ShardedStatsResponse{
		Graph:     GraphJSON{NumVertices: g.NumVertices(), NumEdges: g.NumEdges() / 2, Weights: g.Kind.String()},
		NumShards: fs.sdb.NumShards(),
	}
	for i, s := range fs.shards {
		n, _ := fs.sdb.Shard(i).NumObjects(rnknn.DefaultCategory)
		out.Shards = append(out.Shards, ShardStatsJSON{Server: s.Stats(), NumObjects: n})
	}
	writeJSON(w, http.StatusOK, out)
}

// shardKNN is the per-shard query the fan-out runs: take that shard's
// admission slot (or shed), then ride its cache and coalescer.
func (fs *ShardedServer) shardKNN(r *http.Request, shard int, qv int32, k int, method rnknn.Method, category string, allCached *bool) ([]rnknn.Result, error) {
	s := fs.shards[shard]
	if !s.adm.tryAcquire() {
		return nil, errSaturated
	}
	defer s.adm.release()
	s.requests.Add(1)
	res, _, cached, err := s.knnQuery(r.Context(), qv, k, method, category)
	if !cached {
		*allCached = false // one writer per shard slot; read after the fan joins
	}
	return res, err
}

func (fs *ShardedServer) handleKNN(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	qv, err := intParam(r, "q", -1)
	if err != nil {
		writeError(w, err)
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		writeError(w, err)
		return
	}
	methodName, method, err := methodParam(r)
	if err != nil {
		writeError(w, err)
		return
	}
	category := r.URL.Query().Get("category")
	if category == "" {
		category = rnknn.DefaultCategory
	}
	allCached := make([]bool, fs.sdb.NumShards())
	for i := range allCached {
		allCached[i] = true
	}
	res, err := fs.sdb.FanKNN(r.Context(), int32(qv), k, func(shard int) ([]rnknn.Result, error) {
		return fs.shardKNN(r, shard, int32(qv), k, method, category, &allCached[shard])
	})
	if err != nil {
		writeShardedError(w, err)
		return
	}
	cached := true
	for _, c := range allCached {
		cached = cached && c
	}
	// The composite epoch identifies the cross-shard object-set version the
	// answer reflects (informational — see rnknn.ShardedDB.Epoch).
	epoch, _ := fs.sdb.Epoch(category)
	writeJSON(w, http.StatusOK, KNNResponse{
		Query:         int32(qv),
		K:             k,
		Method:        methodName,
		Category:      category,
		Epoch:         epoch,
		Cached:        cached,
		LatencyMicros: time.Since(start).Microseconds(),
		Results:       Results(res),
	})
}

func (fs *ShardedServer) handleRange(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	qv, err := intParam(r, "q", -1)
	if err != nil {
		writeError(w, err)
		return
	}
	radius, err := intParam(r, "radius", -1)
	if err != nil {
		writeError(w, err)
		return
	}
	category := r.URL.Query().Get("category")
	if category == "" {
		category = rnknn.DefaultCategory
	}
	allCached := make([]bool, fs.sdb.NumShards())
	for i := range allCached {
		allCached[i] = true
	}
	res, err := fs.sdb.FanRange(r.Context(), int32(qv), rnknn.Dist(radius), func(shard int) ([]rnknn.Result, error) {
		s := fs.shards[shard]
		if !s.adm.tryAcquire() {
			return nil, errSaturated
		}
		defer s.adm.release()
		s.requests.Add(1)
		rs, _, cached, err := s.rangeQuery(r.Context(), int32(qv), int64(radius), category)
		if !cached {
			allCached[shard] = false
		}
		return rs, err
	})
	if err != nil {
		writeShardedError(w, err)
		return
	}
	cached := true
	for _, c := range allCached {
		cached = cached && c
	}
	epoch, _ := fs.sdb.Epoch(category)
	writeJSON(w, http.StatusOK, RangeResponse{
		Query:         int32(qv),
		Radius:        int64(radius),
		Category:      category,
		Epoch:         epoch,
		Cached:        cached,
		LatencyMicros: time.Since(start).Microseconds(),
		Results:       Results(res),
	})
}

// handleObjects routes one mutation through the ShardedDB (which splits
// the vertices by owning cell), bypassing admission and caches like the
// single-DB path — per-shard epochs advance, retiring exactly the
// affected shards' cache entries.
func (fs *ShardedServer) handleObjects(mutate func(string, []int32) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req ObjectsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad objects body: " + err.Error()})
			return
		}
		if req.Category == "" {
			req.Category = rnknn.DefaultCategory
		}
		if err := mutate(req.Category, req.Vertices); err != nil {
			writeError(w, err)
			return
		}
		epoch, err := fs.sdb.Epoch(req.Category)
		if err != nil {
			writeError(w, err)
			return
		}
		n, _ := fs.sdb.NumObjects(req.Category)
		writeJSON(w, http.StatusOK, ObjectsResponse{Category: req.Category, Epoch: epoch, NumObjects: n})
	}
}

// writeShardedError is writeError plus the sharded-only saturation case: a
// fanned shard refusing admission sheds the whole request.
func writeShardedError(w http.ResponseWriter, err error) {
	if errors.Is(err, errSaturated) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error()})
		return
	}
	writeError(w, err)
}
