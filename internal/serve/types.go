package serve

import (
	"rnknn/pkg/rnknn"
)

// The wire types are the one JSON vocabulary for query answers: the
// rnknnd endpoints encode them, cmd/loadgen decodes them, and
// cmd/knnquery's -json mode prints them — scripting against any of the
// three sees the same shape.

// ResultJSON is one query answer on the wire.
type ResultJSON struct {
	// Vertex is the object vertex id.
	Vertex int32 `json:"vertex"`
	// Dist is the network distance from the query vertex (travel distance
	// or travel time, per the graph's weight view).
	Dist int64 `json:"dist"`
}

// Results converts library results to their wire form.
func Results(rs []rnknn.Result) []ResultJSON {
	out := make([]ResultJSON, len(rs))
	for i, r := range rs {
		out[i] = ResultJSON{Vertex: r.Vertex, Dist: int64(r.Dist)}
	}
	return out
}

// KNNResponse answers GET /knn (and knnquery -json prints the same shape).
type KNNResponse struct {
	// Query echoes the query vertex; K the requested neighbor count.
	Query int32 `json:"query"`
	K     int   `json:"k"`
	// Method is the method the request asked for ("Auto" when the adaptive
	// planner routed it).
	Method string `json:"method"`
	// Category is the object category searched.
	Category string `json:"category"`
	// Epoch is the category epoch the answer was computed from — the exact
	// object-set version, stamped by the search itself. Two responses with
	// the same (query, k, category, epoch) saw the same object set.
	Epoch uint64 `json:"epoch"`
	// Cached reports the answer was served from the result cache (or from a
	// coalesced in-flight query) without running a search session.
	Cached bool `json:"cached"`
	// LatencyMicros is the server-side handling time in microseconds.
	LatencyMicros int64 `json:"latency_us"`
	// Results are the neighbors in nondecreasing distance order.
	Results []ResultJSON `json:"results"`
}

// RangeResponse answers GET /range. Epoch and Cached carry the same
// guarantees as on KNNResponse: the answer was computed from exactly that
// object-set version, and Cached marks cache hits and coalesced followers.
type RangeResponse struct {
	Query         int32        `json:"query"`
	Radius        int64        `json:"radius"`
	Category      string       `json:"category"`
	Epoch         uint64       `json:"epoch"`
	Cached        bool         `json:"cached"`
	LatencyMicros int64        `json:"latency_us"`
	Results       []ResultJSON `json:"results"`
}

// BatchRequest is the POST /batch body: a mixed list of kNN and range
// queries executed as one db.Batch.
type BatchRequest struct {
	Queries []BatchQuery `json:"queries"`
}

// BatchQuery is one query inside a batch: a kNN query when K > 0, a range
// query when Radius is set (exactly one of the two must be).
type BatchQuery struct {
	Query    int32  `json:"query"`
	K        int    `json:"k,omitempty"`
	Radius   *int64 `json:"radius,omitempty"`
	Method   string `json:"method,omitempty"`
	Category string `json:"category,omitempty"`
}

// BatchResponse answers POST /batch, one entry per query in request order.
type BatchResponse struct {
	Results []BatchResultJSON `json:"results"`
}

// BatchResultJSON is one batch query's outcome. Error carries per-query
// failures (validation, unknown category, cancellation); it is empty on
// success.
type BatchResultJSON struct {
	Query  int32  `json:"query"`
	Method string `json:"method,omitempty"`
	Error  string `json:"error,omitempty"`
	// Epoch is the category epoch the answer was computed from, with the
	// same guarantee as on KNNResponse.
	Epoch uint64 `json:"epoch,omitempty"`
	// Cached reports this member never ran a search: a result-cache hit, an
	// intra-batch duplicate, or a follower of a concurrent identical query.
	Cached bool `json:"cached,omitempty"`
	// Shared reports a shared-expansion group answered this member (see
	// rnknn.Batch).
	Shared        bool         `json:"shared,omitempty"`
	LatencyMicros int64        `json:"latency_us"`
	Results       []ResultJSON `json:"results"`
}

// ObjectsRequest is the POST /objects/insert and /objects/remove body.
type ObjectsRequest struct {
	Category string  `json:"category"`
	Vertices []int32 `json:"vertices"`
}

// ObjectsResponse reports the category state after the mutation.
type ObjectsResponse struct {
	Category string `json:"category"`
	// Epoch is the live epoch after the mutation (unchanged when the
	// mutation was a no-op).
	Epoch uint64 `json:"epoch"`
	// NumObjects is the live object count after the mutation.
	NumObjects int `json:"num_objects"`
}

// MonitorEventJSON is one result-set delta on the /monitor SSE stream:
// kind is "enter", "exit", or "dist_change". Dist is meaningful for enter
// and dist_change (distance from the step's refresh anchor).
type MonitorEventJSON struct {
	Kind   string `json:"kind"`
	Object int32  `json:"object"`
	Dist   int64  `json:"dist,omitempty"`
}

// MonitorStepJSON is one "step" event on the /monitor SSE stream: the
// step/epoch stamps, whether the step re-ran the search ("none" means the
// safe-region check alone proved the cached set exact), and the deltas
// versus the previous step (exits first; empty means no change).
type MonitorStepJSON struct {
	Step    int                `json:"step"`
	Vertex  int32              `json:"vertex"`
	Epoch   uint64             `json:"epoch"`
	Refresh string             `json:"refresh"`
	Events  []MonitorEventJSON `json:"events,omitempty"`
}

// MonitorStep converts a library monitor update to its wire form.
func MonitorStep(u rnknn.MonitorUpdate) MonitorStepJSON {
	out := MonitorStepJSON{Step: u.Step, Vertex: u.Vertex, Epoch: u.Epoch, Refresh: u.Refresh.String()}
	if len(u.Events) > 0 {
		out.Events = make([]MonitorEventJSON, len(u.Events))
		for i, e := range u.Events {
			out.Events[i] = MonitorEventJSON{Kind: e.Kind.String(), Object: e.Object, Dist: int64(e.Dist)}
		}
	}
	return out
}

// MonitorSummaryJSON is the "done" event closing a /monitor SSE stream:
// the session's step count and its avoided/re-run split — AvoidedRatio is
// the fraction of steps the safe-region check answered without a search.
type MonitorSummaryJSON struct {
	K            int     `json:"k"`
	Category     string  `json:"category"`
	Steps        int     `json:"steps"`
	Avoided      int     `json:"avoided"`
	Refreshes    int     `json:"refreshes"`
	AvoidedRatio float64 `json:"avoided_ratio"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// StatsResponse answers GET /stats: the serving layer's own counters, the
// served graph's shape (what a load generator needs to size its workload),
// and the library's Stats snapshot.
type StatsResponse struct {
	Server ServerStats `json:"server"`
	Graph  GraphJSON   `json:"graph"`
	DB     rnknn.Stats `json:"db"`
}

// ShardedStatsResponse answers GET /stats on a sharded front: the shared
// graph plus every shard's serving-layer counters.
type ShardedStatsResponse struct {
	Graph     GraphJSON        `json:"graph"`
	NumShards int              `json:"num_shards"`
	Shards    []ShardStatsJSON `json:"shards"`
}

// ShardStatsJSON is one shard's contribution to the sharded /stats view:
// its serving counters and the objects its cell owns (default category).
type ShardStatsJSON struct {
	Server     ServerStats `json:"server"`
	NumObjects int         `json:"num_objects"`
}

// GraphJSON describes the served road network.
type GraphJSON struct {
	NumVertices int    `json:"num_vertices"`
	NumEdges    int    `json:"num_edges"`
	Weights     string `json:"weights"`
}

// ServerStats are the serving layer's counters. Cache hits + coalesced
// requests are the queries the session pools never saw.
type ServerStats struct {
	// InFlight and MaxInFlight describe the admission semaphore.
	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight"`
	// Requests counts admitted query requests (knn, range, batch); Shed
	// counts requests refused with 429 at saturation.
	Requests uint64 `json:"requests"`
	Shed     uint64 `json:"shed"`
	// CacheHits/CacheMisses/CacheEvictions/CacheEntries describe the
	// epoch-keyed result cache. Entries under superseded epochs are not
	// invalidated explicitly — their keys become unreachable the moment the
	// epoch advances and age out of the LRU.
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CacheEntries   int    `json:"cache_entries"`
	// Coalesced counts requests that waited on an identical in-flight query
	// instead of running their own (the followers, not the leader). Batch
	// members coalesce through the same map as singles and count here too.
	Coalesced uint64 `json:"coalesced"`
	// Batches counts POST /batch requests accepted; BatchQueries their
	// member queries. BatchCacheHits counts members answered straight from
	// the result cache, and BatchShared members answered by a
	// shared-expansion group (the library's group split is under
	// db.batch).
	Batches        uint64 `json:"batches"`
	BatchQueries   uint64 `json:"batch_queries"`
	BatchCacheHits uint64 `json:"batch_cache_hits"`
	BatchShared    uint64 `json:"batch_shared"`
}
