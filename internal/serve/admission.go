package serve

import "sync/atomic"

// admission is the first load-shedding layer: a counting semaphore over the
// query endpoints. A request either takes a slot immediately or is refused
// — there is no queue, so under saturation the server answers 429 in
// microseconds instead of building an unbounded backlog whose every entry
// would time out anyway (fail fast, shed early). Mutation endpoints bypass
// admission: object churn is the invalidation path and must keep landing
// even when the read path is saturated — the separate-paths co-design the
// epoch machinery exists for.
type admission struct {
	slots chan struct{}
	shed  atomic.Uint64
}

func newAdmission(maxInFlight int) *admission {
	if maxInFlight <= 0 {
		maxInFlight = 1
	}
	return &admission{slots: make(chan struct{}, maxInFlight)}
}

// tryAcquire takes a slot without blocking; false means saturated (the
// caller answers 429) and is counted as shed.
func (a *admission) tryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
		a.shed.Add(1)
		return false
	}
}

func (a *admission) release() { <-a.slots }

// inFlight reports the slots currently held.
func (a *admission) inFlight() int { return len(a.slots) }

// max reports the semaphore capacity.
func (a *admission) max() int { return cap(a.slots) }
