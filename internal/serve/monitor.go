package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rnknn/internal/graph"
	"rnknn/pkg/rnknn"
)

// maxMonitorSteps bounds one monitor session's route length: a monitor
// holds its admission slot for its whole lifetime, so an unbounded route
// would let one client park in the semaphore forever.
const maxMonitorSteps = 65536

// handleMonitor is the continuous-query endpoint: GET /monitor opens a
// Server-Sent Events stream that follows a moving query along a route and
// emits one "step" event per vertex carrying the result-set deltas, then a
// "done" event with the session's avoided/re-run split. The route is either
// explicit (route=7,12,44,...) or a server-side random walk from a start
// vertex (q=7&steps=200&seed=3 — the form a load generator uses, since
// clients don't see the adjacency). interval_ms paces the steps, emulating
// a vehicle advancing one edge per tick.
//
// The handler runs inside the admission wrapper and holds its slot for the
// whole session — a monitor is sustained work, so it must count against
// MaxInFlight for its duration, not just its setup.
func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k", 10)
	if err != nil {
		writeError(w, err)
		return
	}
	_, method, err := methodParam(r)
	if err != nil {
		writeError(w, err)
		return
	}
	category := r.URL.Query().Get("category")
	if category == "" {
		category = rnknn.DefaultCategory
	}
	interval, err := intParam(r, "interval_ms", 0)
	if err != nil {
		writeError(w, err)
		return
	}
	route, err := s.monitorRoute(r)
	if err != nil {
		writeError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "streaming unsupported by connection"})
		return
	}

	var ticker *time.Ticker
	if interval > 0 {
		ticker = time.NewTicker(time.Duration(interval) * time.Millisecond)
		defer ticker.Stop()
	}

	// SSE headers are deferred until the first successful update so that
	// validation errors (bad k, bad vertex, unknown category) still answer
	// with their proper HTTP status instead of a 200 stream.
	streaming := false
	summary := MonitorSummaryJSON{K: k, Category: category}
	for u, err := range s.db.Monitor(r.Context(), route, k, rnknn.WithMethod(method), rnknn.WithCategory(category)) {
		if err != nil {
			if !streaming {
				writeError(w, err)
				return
			}
			writeSSE(w, "error", ErrorResponse{Error: err.Error()})
			fl.Flush()
			return
		}
		if !streaming {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
			w.WriteHeader(http.StatusOK)
			streaming = true
		}
		summary.Steps++
		if u.Refresh == rnknn.MonitorRefreshNone {
			summary.Avoided++
		} else {
			summary.Refreshes++
		}
		writeSSE(w, "step", MonitorStep(u))
		fl.Flush()
		if ticker != nil && summary.Steps < len(route) {
			select {
			case <-ticker.C:
			case <-r.Context().Done():
				return
			}
		}
	}
	if summary.Steps > 0 {
		summary.AvoidedRatio = float64(summary.Avoided) / float64(summary.Steps)
	}
	writeSSE(w, "done", summary)
	fl.Flush()
}

// monitorRoute builds the session's route: an explicit vertex list from
// route=, or a random walk over the adjacency from q= (steps= long, seeded
// by seed= for reproducibility).
func (s *Server) monitorRoute(r *http.Request) ([]int32, error) {
	if rv := r.URL.Query().Get("route"); rv != "" {
		parts := strings.Split(rv, ",")
		if len(parts) > maxMonitorSteps {
			return nil, fmt.Errorf("route of %d vertices exceeds limit %d", len(parts), maxMonitorSteps)
		}
		route := make([]int32, len(parts))
		for i, p := range parts {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("parameter \"route\": %q is not an integer", p)
			}
			route[i] = int32(n)
		}
		return route, nil
	}
	q, err := intParam(r, "q", -1)
	if err != nil {
		return nil, fmt.Errorf("%v (or pass an explicit route=)", err)
	}
	steps, err := intParam(r, "steps", 50)
	if err != nil {
		return nil, err
	}
	if steps < 1 || steps > maxMonitorSteps {
		return nil, fmt.Errorf("parameter \"steps\" must be in [1, %d], got %d", maxMonitorSteps, steps)
	}
	seed, err := intParam(r, "seed", 1)
	if err != nil {
		return nil, err
	}
	g := s.db.Graph()
	if q < 0 || q >= g.NumVertices() {
		return nil, fmt.Errorf("parameter \"q\": vertex %d out of range (network has %d vertices)", q, g.NumVertices())
	}
	return randomWalk(g, int32(q), steps, int64(seed)), nil
}

// randomWalk builds a route of n vertices starting at q, advancing one
// uniformly random outgoing edge per step (staying put at a dead end) — a
// vehicle wandering the network.
func randomWalk(g *graph.Graph, q int32, n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	route := make([]int32, n)
	route[0] = q
	for i := 1; i < n; i++ {
		targets, _ := g.Neighbors(route[i-1])
		if len(targets) == 0 {
			route[i] = route[i-1]
			continue
		}
		route[i] = targets[rng.Intn(len(targets))]
	}
	return route
}

// writeSSE writes one Server-Sent Event with a JSON payload.
func writeSSE(w http.ResponseWriter, event string, v any) {
	b, _ := json.Marshal(v)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}
