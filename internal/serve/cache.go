package serve

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"rnknn/pkg/rnknn"
)

// cacheKey identifies one cacheable answer — kNN or range: the query, the
// category, and — the part that makes invalidation exact and free — the
// category's epoch. Object churn advances the epoch, so every mutation
// silently retires all cached answers for that category: readers compute
// lookup keys from the live epoch and can no longer reach entries stamped
// with a superseded one. No TTLs, no eviction protocol, no stale reads —
// retired entries simply age out of the LRU.
//
// The two query shapes share the key space disjointly: kNN entries carry
// radius -1 (k >= 1), range entries carry k 0 (radius >= 0), so neither can
// ever collide with or shadow the other.
type cacheKey struct {
	vertex   int32
	k        int32
	radius   int64
	epoch    uint64
	category string
}

// cacheEntry is one stored answer. results is immutable after insertion:
// hits hand the same slice to any number of concurrent encoders, so nothing
// downstream may mutate it.
type cacheEntry struct {
	key     cacheKey
	results []rnknn.Result
	// prev/next chain the shard's LRU ring (older toward tail).
	prev, next *cacheEntry
}

// resultCache is the sharded LRU over cacheEntry. Sharding by key hash
// keeps the per-request critical section to one shard mutex, so cache
// bookkeeping never serializes the whole read path.
type resultCache struct {
	shards []cacheShard
	seed   maphash.Seed

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// cacheShard is one lock + map + intrusive LRU ring. head is most recent;
// sentinel-free: empty shard has nil head/tail.
type cacheShard struct {
	mu         sync.Mutex
	entries    map[cacheKey]*cacheEntry
	head, tail *cacheEntry
	cap        int
}

// newResultCache sizes a cache for capacity total entries across shards
// (shards rounded up to a power of two; capacity divided evenly with a
// minimum of 1 per shard). capacity <= 0 disables caching: every lookup
// misses and stores are dropped.
func newResultCache(capacity, shards int) *resultCache {
	if capacity <= 0 {
		return &resultCache{seed: maphash.MakeSeed()}
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if n > capacity {
		n = 1
		for n*2 <= capacity {
			n <<= 1
		}
	}
	per := capacity / n
	if per < 1 {
		per = 1
	}
	c := &resultCache{shards: make([]cacheShard, n), seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*cacheEntry)
		c.shards[i].cap = per
	}
	return c
}

func (c *resultCache) shard(key cacheKey) *cacheShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	var b [24]byte
	b[0] = byte(key.vertex)
	b[1] = byte(key.vertex >> 8)
	b[2] = byte(key.vertex >> 16)
	b[3] = byte(key.vertex >> 24)
	b[4] = byte(key.k)
	b[5] = byte(key.k >> 8)
	b[6] = byte(key.k >> 16)
	b[7] = byte(key.k >> 24)
	for i := 0; i < 8; i++ {
		b[8+i] = byte(key.radius >> (8 * i))
		b[16+i] = byte(key.epoch >> (8 * i))
	}
	h.Write(b[:])
	h.WriteString(key.category)
	return &c.shards[h.Sum64()&uint64(len(c.shards)-1)]
}

// get returns the cached results for key, promoting the entry to most
// recent. The returned slice is shared and must not be mutated.
func (c *resultCache) get(key cacheKey) ([]rnknn.Result, bool) {
	if len(c.shards) == 0 {
		c.misses.Add(1)
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.moveToFront(e)
	res := e.results
	s.mu.Unlock()
	c.hits.Add(1)
	return res, true
}

// put stores results under key (ownership of the slice passes to the
// cache), evicting the shard's least-recent entry on overflow.
func (c *resultCache) put(key cacheKey, results []rnknn.Result) {
	if len(c.shards) == 0 {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		// A coalesced peer or raced request already stored this answer; the
		// epoch in the key guarantees both computed it from the same object
		// set, so keeping either is correct.
		e.results = results
		s.moveToFront(e)
		s.mu.Unlock()
		return
	}
	e := &cacheEntry{key: key, results: results}
	s.entries[key] = e
	s.pushFront(e)
	var evicted bool
	if len(s.entries) > s.cap {
		old := s.tail
		s.unlink(old)
		delete(s.entries, old.key)
		evicted = true
	}
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// len reports the live entry count across shards.
func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
