package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rnknn/internal/gen"
	"rnknn/internal/knn"
	"rnknn/pkg/rnknn"
)

// newTestDB opens a small DB the endpoint tests share the shape of.
func newTestDB(t *testing.T) *rnknn.DB {
	t.Helper()
	g := gen.Network(gen.NetworkSpec{Name: "srv", Rows: 12, Cols: 14, Seed: 3})
	db, err := rnknn.Open(g,
		rnknn.WithMethods(rnknn.INE, rnknn.Gtree),
		rnknn.WithObjects(rnknn.DefaultCategory, gen.Uniform(g, 0.05, 11)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, body)
		}
	}
	return resp.StatusCode
}

func toResults(rs []ResultJSON) []knn.Result {
	out := make([]knn.Result, len(rs))
	for i, r := range rs {
		out[i] = knn.Result{Vertex: r.Vertex, Dist: r.Dist}
	}
	return out
}

// TestKNNEndpoint checks the full read path: correct answers (vs the
// brute-force reference), the epoch stamp, cache behavior across repeats
// and across churn, and error mapping.
func TestKNNEndpoint(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q, k := int32(17), 5
	var r1 KNNResponse
	if code := getJSON(t, fmt.Sprintf("%s/knn?q=%d&k=%d", ts.URL, q, k), &r1); code != 200 {
		t.Fatalf("status %d", code)
	}
	want, err := db.BruteForceKNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	if !rnknn.SameResults(toResults(r1.Results), want) {
		t.Fatalf("results %v != brute force %v", r1.Results, rnknn.FormatResults(want))
	}
	if r1.Cached || r1.Epoch != 0 || r1.Query != q || r1.K != k || r1.Category != rnknn.DefaultCategory {
		t.Fatalf("first response metadata: %+v", r1)
	}

	// Identical repeat: served from the cache, same answer.
	var r2 KNNResponse
	getJSON(t, fmt.Sprintf("%s/knn?q=%d&k=%d", ts.URL, q, k), &r2)
	if !r2.Cached {
		t.Fatal("repeat was not served from cache")
	}
	if !rnknn.SameResults(toResults(r2.Results), want) {
		t.Fatal("cached answer differs")
	}
	if st := s.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache counters after repeat: %+v", st)
	}

	// Churn bumps the epoch: the very next read misses and recomputes.
	ins, _ := json.Marshal(ObjectsRequest{Vertices: []int32{q}})
	resp, err := http.Post(ts.URL+"/objects/insert", "application/json", bytes.NewReader(ins))
	if err != nil {
		t.Fatal(err)
	}
	var or ObjectsResponse
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if or.Epoch != 1 {
		t.Fatalf("epoch after insert: %+v", or)
	}
	var r3 KNNResponse
	getJSON(t, fmt.Sprintf("%s/knn?q=%d&k=%d", ts.URL, q, k), &r3)
	if r3.Cached {
		t.Fatal("post-churn read served a pre-churn cache entry")
	}
	if r3.Epoch != 1 {
		t.Fatalf("post-churn epoch %d, want 1", r3.Epoch)
	}
	want2, _ := db.BruteForceKNN(q, k)
	if !rnknn.SameResults(toResults(r3.Results), want2) {
		t.Fatal("post-churn answer wrong")
	}
	// The query vertex itself is now an object at distance 0.
	if len(r3.Results) == 0 || r3.Results[0].Vertex != q || r3.Results[0].Dist != 0 {
		t.Fatalf("inserted object missing from answer: %v", r3.Results)
	}

	// A fixed method answers too.
	var r4 KNNResponse
	if code := getJSON(t, fmt.Sprintf("%s/knn?q=%d&k=%d&method=Gtree", ts.URL, q, k), &r4); code != 200 {
		t.Fatalf("method=Gtree status %d", code)
	}
	if r4.Method != "Gtree" || !rnknn.SameResults(toResults(r4.Results), want2) {
		t.Fatalf("Gtree response: %+v", r4)
	}

	// Error mapping.
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/knn", http.StatusBadRequest},                        // missing q
		{"/knn?q=abc", http.StatusBadRequest},                  // non-integer
		{"/knn?q=5&k=0", http.StatusBadRequest},                // ErrBadK
		{"/knn?q=999999&k=3", http.StatusBadRequest},           // ErrBadVertex
		{"/knn?q=5&k=3&method=nope", http.StatusBadRequest},    // ErrUnknownMethod
		{"/knn?q=5&k=3&method=IER-PHL", http.StatusBadRequest}, // ErrMethodNotEnabled
		{"/knn?q=5&k=3&category=ghost", http.StatusNotFound},   // ErrUnknownCategory
		{"/range?q=5&radius=-1", http.StatusBadRequest},        // ErrBadRadius
		{"/range?q=5&radius=100&category=no", http.StatusNotFound},
	} {
		if code := getJSON(t, ts.URL+tc.path, nil); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.path, code, tc.want)
		}
	}
}

func TestRangeAndBatchEndpoints(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := int32(40)
	var rr RangeResponse
	if code := getJSON(t, fmt.Sprintf("%s/range?q=%d&radius=30000", ts.URL, q), &rr); code != 200 {
		t.Fatalf("range status %d", code)
	}
	want, err := db.BruteForceRange(q, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if !rnknn.SameResults(toResults(rr.Results), want) {
		t.Fatalf("range results %v != %v", rr.Results, rnknn.FormatResults(want))
	}

	// Mixed batch: two kNN (one per method), a range, and a per-query
	// failure that must not sink the rest.
	radius := int64(20000)
	body, _ := json.Marshal(BatchRequest{Queries: []BatchQuery{
		{Query: 10, K: 3},
		{Query: 11, K: 2, Method: "Gtree"},
		{Query: 12, Radius: &radius},
		{Query: 999999, K: 3},
	}})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(br.Results) != 4 {
		t.Fatalf("batch returned %d results", len(br.Results))
	}
	for i, q := range []int32{10, 11, 12} {
		wantQ, _ := db.BruteForceKNN(q, []int{3, 2}[min(i, 1)])
		if i == 2 {
			wantQ, _ = db.BruteForceRange(q, radius)
		}
		if br.Results[i].Error != "" {
			t.Fatalf("batch query %d errored: %s", i, br.Results[i].Error)
		}
		if !rnknn.SameResults(toResults(br.Results[i].Results), wantQ) {
			t.Fatalf("batch query %d wrong answer", i)
		}
	}
	if br.Results[3].Error == "" {
		t.Fatal("out-of-range batch query reported no error")
	}

	// Malformed batches are whole-request 400s.
	for _, bad := range []string{
		`{"queries":[]}`,
		`{"queries":[{"query":1,"k":3,"radius":5}]}`,
		`{"queries":[{"query":1,"k":3,"method":"nope"}]}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Oversized batch refused.
	s2 := New(db, Config{MaxBatch: 2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err = http.Post(ts2.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", resp.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	getJSON(t, ts.URL+"/knn?q=5&k=3", nil)
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if st.Graph.NumVertices != db.Graph().NumVertices() {
		t.Fatalf("stats graph: %+v", st.Graph)
	}
	if st.Server.Requests != 1 || st.Server.MaxInFlight != defaultMaxInFlight {
		t.Fatalf("server stats: %+v", st.Server)
	}
	var totalKNN uint64
	for _, ms := range st.DB.Methods {
		totalKNN += ms.KNNQueries
	}
	if totalKNN != 1 {
		t.Fatalf("db stats report %d kNN queries, want 1", totalKNN)
	}
}

// TestCoalescing holds one query in flight behind the test gate and proves
// N identical concurrent requests execute exactly one underlying search:
// the db-level query counter says 1, every other request is a counted
// follower, and all N answers agree.
func TestCoalescing(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{MaxInFlight: 64})
	release := make(chan struct{})
	s.gate = func() { <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 16
	url := fmt.Sprintf("%s/knn?q=33&k=4", ts.URL)
	var wg sync.WaitGroup
	responses := make([]KNNResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			_ = json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i)
	}
	// The leader is parked on the gate; wait until the other n-1 requests
	// are all registered as followers, so nothing can slip past coalescing.
	waitFor(t, func() bool { return s.co.coalesced.Load() == n-1 })
	close(release)
	wg.Wait()

	var totalKNN uint64
	for _, ms := range db.Stats().Methods {
		totalKNN += ms.KNNQueries
	}
	if totalKNN != 1 {
		t.Fatalf("%d identical concurrent requests ran %d underlying queries, want 1", n, totalKNN)
	}
	want, _ := db.BruteForceKNN(33, 4)
	uncached := 0
	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !rnknn.SameResults(toResults(responses[i].Results), want) {
			t.Fatalf("request %d: wrong answer %v", i, responses[i].Results)
		}
		if !responses[i].Cached {
			uncached++
		}
	}
	if uncached != 1 {
		t.Fatalf("%d responses claim to have run a search, want exactly the leader", uncached)
	}
	if st := s.Stats(); st.Coalesced != n-1 {
		t.Fatalf("coalesced counter %d, want %d", st.Coalesced, n-1)
	}
}

// TestAdmissionSheds saturates the semaphore with gated queries and proves
// further requests are refused with 429 immediately — shed, not queued.
func TestAdmissionSheds(t *testing.T) {
	db := newTestDB(t)
	s := New(db, Config{MaxInFlight: 2})
	release := make(chan struct{})
	s.gate = func() { <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two distinct queries occupy both slots (distinct so neither coalesces
	// onto the other).
	var wg sync.WaitGroup
	for _, q := range []int{5, 6} {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			code := getJSONNoFatal(fmt.Sprintf("%s/knn?q=%d&k=3", ts.URL, q))
			if code != 200 {
				t.Errorf("gated request q=%d: status %d", q, code)
			}
		}(q)
	}
	waitFor(t, func() bool { return s.adm.inFlight() == 2 })

	// Every further request — including for already-cached-nothing and even
	// /range and /batch — is shed fast.
	const extra = 10
	start := time.Now()
	for i := 0; i < extra; i++ {
		if code := getJSONNoFatal(fmt.Sprintf("%s/knn?q=%d&k=3", ts.URL, 10+i)); code != http.StatusTooManyRequests {
			t.Fatalf("request %d at saturation: status %d, want 429", i, code)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shedding %d requests took %s — they queued", extra, elapsed)
	}
	if shed := s.Stats().Shed; shed != extra {
		t.Fatalf("shed counter %d, want %d", shed, extra)
	}
	close(release)
	wg.Wait()
	if st := s.Stats(); st.InFlight != 0 || st.Requests != 2 {
		t.Fatalf("after drain: %+v", st)
	}
}

func getJSONNoFatal(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		return -1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
