package serve

import (
	"context"
	"sync"
	"sync/atomic"

	"rnknn/pkg/rnknn"
)

// coalescer is the single-flight layer between the cache and the session
// pools: concurrent requests for the same (vertex, k, category, epoch) run
// one underlying query, and every waiter shares its answer. The epoch in
// the key keeps sharing exact — two requests that observed different
// epochs never coalesce, so a follower can only ever receive an answer at
// least as fresh as the epoch it looked up.
type coalescer struct {
	mu    sync.Mutex
	calls map[cacheKey]*inflightCall
	// coalesced counts followers (requests that waited instead of running).
	coalesced atomic.Uint64
}

// inflightCall is one leader's execution; done closes when res/epoch/err
// are final.
type inflightCall struct {
	done  chan struct{}
	res   []rnknn.Result
	epoch uint64
	err   error
}

func newCoalescer() *coalescer {
	return &coalescer{calls: map[cacheKey]*inflightCall{}}
}

// claim registers the caller as the leader for key if no identical call is
// in flight, returning (call, true); the caller MUST publish the call when
// its answer is final, or followers hang forever. Otherwise the caller is a
// follower: it gets the in-flight call and false, and should wait on
// call.done. Batch members and single requests claim through the same map,
// so a batch leader absorbs concurrent identical singles and vice versa.
func (co *coalescer) claim(key cacheKey) (*inflightCall, bool) {
	co.mu.Lock()
	if c, ok := co.calls[key]; ok {
		co.mu.Unlock()
		co.coalesced.Add(1)
		return c, false
	}
	c := &inflightCall{done: make(chan struct{})}
	co.calls[key] = c
	co.mu.Unlock()
	return c, true
}

// publish finalizes a claimed call with its answer and wakes every follower.
func (co *coalescer) publish(key cacheKey, c *inflightCall, res []rnknn.Result, epoch uint64, err error) {
	c.res, c.epoch, c.err = res, epoch, err
	co.mu.Lock()
	delete(co.calls, key)
	co.mu.Unlock()
	close(c.done)
}

// do runs fn for key, unless an identical call is already in flight, in
// which case it waits for that call's answer instead. Returns the results,
// the epoch the search pinned, and whether this request was a follower.
// A follower whose own ctx ends while waiting returns ctx's error — one
// slow leader must not pin an impatient follower past its deadline — but
// the leader itself always publishes to the remaining waiters.
func (co *coalescer) do(ctx context.Context, key cacheKey, fn func() ([]rnknn.Result, uint64, error)) ([]rnknn.Result, uint64, bool, error) {
	c, leader := co.claim(key)
	if !leader {
		select {
		case <-c.done:
			return c.res, c.epoch, true, c.err
		case <-ctx.Done():
			return nil, 0, true, ctx.Err()
		}
	}
	res, epoch, err := fn()
	co.publish(key, c, res, epoch, err)
	return res, epoch, false, err
}
