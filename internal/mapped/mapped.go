// Package mapped opens snapshot files as byte slices backed by a
// read-only mmap when the platform supports it, falling back to a plain
// read otherwise. The mapping is what makes warm start O(pages touched)
// instead of O(bytes decoded): the kernel pages index bytes in on first
// access, keeps them in the shared page cache, and every process (or
// every shard DB in one process) mapping the same snapshot file shares
// one physical copy.
//
// Data from a mapped Snapshot is read-only — writing through slices that
// alias it faults. The decoded indexes are immutable, so nothing does.
package mapped

import (
	"fmt"
	"io"
	"os"
)

// Snapshot is an open snapshot file's bytes plus how they are held.
type Snapshot struct {
	// Data is the whole file. When Mapped, it is a read-only view of the
	// kernel page cache and stays valid until Close.
	Data []byte
	// Mapped reports whether Data is an mmap'ed view (false on platforms
	// without mmap or when mapping failed and the file was read instead).
	Mapped bool
	region []byte // exact mapping for munmap; nil when !Mapped
}

// Open maps (or reads) the snapshot file at path.
func Open(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return OpenFile(f)
}

// OpenFile maps (or reads) f, which the caller remains responsible for
// closing — closing f does not invalidate an established mapping.
func OpenFile(f *os.File) (*Snapshot, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 {
		return nil, fmt.Errorf("mapped: %s is empty", f.Name())
	}
	if size <= int64(^uint(0)>>1) {
		if s, err := mmapFile(f, int(size)); err == nil {
			return s, nil
		}
	}
	// Fallback: a private in-memory copy (pipes, exotic filesystems,
	// platforms without mmap). Callers treat it identically, just without
	// the zero-copy and page-cache-sharing properties.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return &Snapshot{Data: data}, nil
}

// Close releases the mapping. Aliased slices decoded from Data must not be
// used afterwards; callers (rnknn.DB.Close) only close once queries have
// stopped. Safe on a fallback (non-mapped) Snapshot and on nil.
func (s *Snapshot) Close() error {
	if s == nil || !s.Mapped {
		return nil
	}
	region := s.region
	s.Data, s.region, s.Mapped = nil, nil, false
	return munmap(region)
}
