//go:build !unix

package mapped

import (
	"errors"
	"os"
)

// mmapFile always fails on platforms without unix mmap; OpenFile falls
// back to reading the file into private memory.
func mmapFile(f *os.File, size int) (*Snapshot, error) {
	return nil, errors.New("mapped: mmap unsupported on this platform")
}

func munmap(region []byte) error { return nil }
