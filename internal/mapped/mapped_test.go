package mapped_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rnknn/internal/mapped"
)

func TestOpenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	want := bytes.Repeat([]byte("0123456789abcdef"), 1000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := mapped.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s.Data, want) {
		t.Fatalf("mapped data differs: %d bytes vs %d", len(s.Data), len(want))
	}
	// The mapping (or fallback copy) must outlive the file handle — Open
	// already closed it — and survive a rename of the underlying path.
	if err := os.Rename(path, path+".moved"); err != nil {
		t.Fatal(err)
	}
	if s.Data[17] != want[17] {
		t.Fatal("data unreadable after rename")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
	var nilSnap *mapped.Snapshot
	if err := nilSnap.Close(); err != nil {
		t.Fatal("nil Close:", err)
	}
}

func TestOpenEmptyAndMissing(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mapped.Open(empty); err == nil {
		t.Fatal("empty file accepted")
	}
	if _, err := mapped.Open(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file accepted")
	}
}
