//go:build unix

package mapped

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared: every mapping of the
// same file shares the kernel's one physical copy of each page.
func mmapFile(f *os.File, size int) (*Snapshot, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &Snapshot{Data: data, Mapped: true, region: data}, nil
}

func munmap(region []byte) error { return syscall.Munmap(region) }
