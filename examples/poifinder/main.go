// POI finder: the decoupled-indexing scenario that motivates the paper
// (Section 2.2). One road network index serves many object categories —
// schools, hospitals, fast food — each registered as a named set with its
// own cheap object index, selected per query. The example answers "nearest
// hospital / fast food / school" from the same G-tree and cross-checks
// IER-PHL on the same workload.
package main

import (
	"context"
	"fmt"
	"time"

	"rnknn/internal/gen"
	"rnknn/pkg/rnknn"
)

func main() {
	g := gen.Network(gen.NetworkSpec{Name: "city", Rows: 68, Cols: 84, Seed: 3})
	fmt.Printf("city network: %d vertices\n\n", g.NumVertices())

	// The road network indexes are built once, at Open...
	start := time.Now()
	db, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree, rnknn.IERPHL))
	if err != nil {
		panic(err)
	}
	fmt.Printf("G-tree and PHL built once in %s\n", time.Since(start).Round(time.Millisecond))

	// ...then each category needs only its own object index.
	categories := gen.POICategories(g, 7)[:4]
	for _, cat := range categories {
		start = time.Now()
		if err := db.RegisterObjects(cat.Name, cat.Vertices); err != nil {
			panic(err)
		}
		n, _ := db.NumObjects(cat.Name)
		fmt.Printf("registered %-10s %5d objects (object index in %s)\n", cat.Name, n, time.Since(start))
	}

	ctx := context.Background()
	queries := gen.QueryVertices(g, 3, 11)
	for _, cat := range categories {
		fmt.Printf("\n%s:\n", cat.Name)
		for _, q := range queries {
			res, err := db.KNN(ctx, q, 3, rnknn.WithCategory(cat.Name))
			if err != nil {
				panic(err)
			}
			fmt.Printf("  from %-6d nearest 3: %s\n", q, rnknn.FormatResults(res))
		}
	}

	// The same categories work with any other enabled method; IER-PHL is
	// the paper's overall winner.
	fmt.Println("\ncross-check with IER-PHL (same categories, same answers):")
	for _, cat := range categories {
		agree := true
		for _, q := range queries {
			a, err := db.KNN(ctx, q, 3, rnknn.WithCategory(cat.Name), rnknn.WithMethod(rnknn.IERPHL))
			if err != nil {
				panic(err)
			}
			b, err := db.KNN(ctx, q, 3, rnknn.WithCategory(cat.Name), rnknn.WithMethod(rnknn.Gtree))
			if err != nil {
				panic(err)
			}
			if !rnknn.SameResults(a, b) {
				agree = false
			}
		}
		fmt.Printf("  %-10s agree=%v\n", cat.Name, agree)
	}
}
