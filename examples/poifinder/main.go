// POI finder: the decoupled-indexing scenario that motivates the paper
// (Section 2.2). One road network index serves many object sets — schools,
// hospitals, fast food — each with its own cheap object index, swapped at
// query time. The example answers "nearest hospital / fast food / school"
// from the same G-tree and compares IER-PHL on the same workload.
package main

import (
	"fmt"
	"time"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/knn"
)

func main() {
	g := gen.Network(gen.NetworkSpec{Name: "city", Rows: 68, Cols: 84, Seed: 3})
	engine := core.New(g)
	fmt.Printf("city network: %d vertices\n\n", g.NumVertices())

	// Eight POI categories with the paper's Table 2 densities.
	categories := gen.POICategories(g, 7)

	// The road network index is built once...
	start := time.Now()
	engine.GtreeIndex()
	fmt.Printf("G-tree built once in %s\n", time.Since(start).Round(time.Millisecond))

	// ...then each object set needs only its own occurrence list.
	queries := gen.QueryVertices(g, 3, 11)
	for _, cat := range categories[:4] {
		objs := knn.NewObjectSet(g, cat.Vertices)
		start = time.Now()
		m, err := engine.NewMethod(core.Gtree, objs)
		if err != nil {
			panic(err)
		}
		objIndexTime := time.Since(start)
		fmt.Printf("\n%s (%d objects; object index in %s):\n", cat.Name, objs.Len(), objIndexTime)
		for _, q := range queries {
			res := m.KNN(q, 3)
			fmt.Printf("  from %-6d nearest 3: %s\n", q, knn.FormatResults(res))
		}
	}

	// The same object sets work with any other method; IER-PHL is the
	// paper's overall winner.
	fmt.Println("\ncross-check with IER-PHL (same object sets, same answers):")
	for _, cat := range categories[:4] {
		objs := knn.NewObjectSet(g, cat.Vertices)
		m, err := engine.NewMethod(core.IERPHL, objs)
		if err != nil {
			panic(err)
		}
		agree := true
		gt, _ := engine.NewMethod(core.Gtree, objs)
		for _, q := range queries {
			if !knn.SameResults(m.KNN(q, 3), gt.KNN(q, 3)) {
				agree = false
			}
		}
		fmt.Printf("  %-10s agree=%v\n", cat.Name, agree)
	}
}
