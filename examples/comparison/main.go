// Comparison: a miniature of the paper's whole study through the public
// API. Open a DB with every method over one network and object set, verify
// each agrees with brute force, and print per-method timings from DB.Stats
// — a sanity harness for adopters choosing a method for their workload.
package main

import (
	"context"
	"fmt"
	"time"

	"rnknn/internal/gen"
	"rnknn/pkg/rnknn"
)

func main() {
	g := gen.Network(gen.NetworkSpec{Name: "bench", Rows: 48, Cols: 60, Seed: 8})
	// Every method except DisBrw-OH (same SILC index as DisBrw; kept for
	// the fig19 ablation). SILC's quadratic build dominates Open here.
	methods := []rnknn.Method{
		rnknn.INE, rnknn.IERDijk, rnknn.IERCH, rnknn.IERTNR, rnknn.IERPHL,
		rnknn.IERGt, rnknn.Gtree, rnknn.ROAD, rnknn.DisBrw,
	}
	start := time.Now()
	db, err := rnknn.Open(g, rnknn.WithMethods(methods...),
		rnknn.WithObjects(rnknn.DefaultCategory, gen.Uniform(g, 0.001, 9)))
	if err != nil {
		panic(err)
	}
	openTime := time.Since(start)

	queries := gen.QueryVertices(g, 50, 10)
	k := 10
	numObjects, _ := db.NumObjects(rnknn.DefaultCategory)
	fmt.Printf("network: %d vertices; objects: %d; k=%d; %d queries; all indexes built in %s\n\n",
		g.NumVertices(), numObjects, k, len(queries), openTime.Round(time.Millisecond))
	fmt.Printf("%-10s %12s %12s %8s\n", "method", "index build", "us/query", "correct")

	ctx := context.Background()
	indexFor := map[rnknn.Method]string{
		rnknn.IERCH: "CH", rnknn.IERTNR: "TNR", rnknn.IERPHL: "PHL",
		rnknn.IERGt: "Gtree", rnknn.Gtree: "Gtree", rnknn.ROAD: "ROAD", rnknn.DisBrw: "SILC",
	}
	stats := db.Stats()
	for _, m := range db.Methods() {
		correct := true
		for _, q := range queries {
			got, err := db.KNN(ctx, q, k, rnknn.WithMethod(m))
			if err != nil {
				panic(err)
			}
			want, err := db.BruteForceKNN(q, k)
			if err != nil {
				panic(err)
			}
			if !rnknn.SameResults(got, want) {
				correct = false
			}
		}
		build := stats.Indexes[indexFor[m]].BuildTime
		ms := db.Stats().Methods[m.String()]
		perQuery := float64(ms.TotalLatency.Microseconds()) / float64(ms.KNNQueries)
		fmt.Printf("%-10s %12s %12.1f %8v\n", m, build.Round(time.Millisecond), perQuery, correct)
	}
	fmt.Println("\nindex build times are shared: methods over the same index (IER-CH,")
	fmt.Println("IER-TNR, IER-PHL share the contraction hierarchy) reuse it.")
}
