// Comparison: a miniature of the paper's whole study. Build every method
// over one network and object set, verify they agree with brute force, and
// print per-method timings — a sanity harness for adopters choosing a
// method for their workload.
package main

import (
	"fmt"
	"time"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/knn"
)

func main() {
	g := gen.Network(gen.NetworkSpec{Name: "bench", Rows: 48, Cols: 60, Seed: 8})
	engine := core.New(g)
	objs := knn.NewObjectSet(g, gen.Uniform(g, 0.001, 9))
	queries := gen.QueryVertices(g, 50, 10)
	k := 10

	fmt.Printf("network: %d vertices; objects: %d; k=%d; %d queries\n\n",
		g.NumVertices(), objs.Len(), k, len(queries))
	fmt.Printf("%-10s %12s %12s %8s\n", "method", "build", "us/query", "correct")

	for _, kind := range core.Kinds() {
		if kind == core.DisBrwOH {
			continue // same index as DisBrw; kept for the fig19 ablation
		}
		start := time.Now()
		m, err := engine.NewMethod(kind, objs)
		if err != nil {
			panic(err)
		}
		build := time.Since(start)

		correct := true
		start = time.Now()
		for _, q := range queries {
			got := m.KNN(q, k)
			if !knn.SameResults(got, knn.BruteForce(g, objs, q, k)) {
				correct = false
			}
		}
		// Subtract nothing: brute force runs outside the timed loop below.
		elapsed := time.Since(start)

		// Re-run timed without verification for a clean number.
		start = time.Now()
		for _, q := range queries {
			m.KNN(q, k)
		}
		elapsed = time.Since(start)

		fmt.Printf("%-10s %12s %12.1f %8v\n",
			m.Name(), build.Round(time.Millisecond),
			float64(elapsed.Microseconds())/float64(len(queries)), correct)
	}
	fmt.Println("\nbuild times are incremental: methods sharing an index (IER-CH,")
	fmt.Println("IER-TNR, IER-PHL share the contraction hierarchy) reuse it.")
}
