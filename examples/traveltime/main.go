// Travel-time kNN: the Section 7.5 scenario. The same network topology
// carries travel-time weights; IER's Euclidean lower bound is scaled by the
// maximum speed S = max(dE/w), and the nearest POIs by driving time differ
// from the nearest by distance when highways are around.
package main

import (
	"context"
	"fmt"

	"rnknn/internal/gen"
	"rnknn/internal/graph"
	"rnknn/pkg/rnknn"
)

func main() {
	base := gen.Network(gen.NetworkSpec{Name: "metro", Rows: 48, Cols: 60, Seed: 5})
	objects := gen.Uniform(base, 0.001, 6)
	query := int32(base.NumVertices() / 4)
	ctx := context.Background()

	for _, kind := range []graph.WeightKind{graph.TravelDistance, graph.TravelTime} {
		g := base.View(kind)
		db, err := rnknn.Open(g,
			rnknn.WithMethods(rnknn.IERPHL, rnknn.INE),
			rnknn.WithObjects(rnknn.DefaultCategory, objects))
		if err != nil {
			panic(err)
		}
		res, err := db.KNN(ctx, query, 5)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s weights (S=%.2f): nearest 5 to vertex %d:\n", kind, g.MaxSpeed(), query)
		for i, r := range res {
			fmt.Printf("  %d. vertex %-7d %s %d\n", i+1, r.Vertex, kind, r.Dist)
		}
		// Every method returns the same answer on the same weights.
		check, err := db.KNN(ctx, query, 5, rnknn.WithMethod(rnknn.INE))
		if err != nil {
			panic(err)
		}
		if !rnknn.SameResults(res, check) {
			panic("methods disagree")
		}
	}
	fmt.Println("\nnote: rankings differ between metrics when fast roads make")
	fmt.Println("far-by-distance objects near-by-time, which is why the paper")
	fmt.Println("evaluates both (Section 7.5).")
}
