// Quickstart: generate a road network, open a DB with a G-tree, register
// an object set and answer kNN queries — the minimal end-to-end use of the
// public API.
package main

import (
	"context"
	"fmt"

	"rnknn/internal/gen"
	"rnknn/pkg/rnknn"
)

func main() {
	// A ~5k-vertex synthetic road network (perturbed grid with highway
	// tiers and degree-2 chains; see internal/gen).
	g := gen.Network(gen.NetworkSpec{Name: "quickstart", Rows: 48, Cols: 60, Seed: 1})
	fmt.Printf("road network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges()/2)

	// Open builds the G-tree once; the DB is safe for concurrent queries.
	db, err := rnknn.Open(g, rnknn.WithMethods(rnknn.Gtree))
	if err != nil {
		panic(err)
	}

	// 0.1% of vertices host objects (the paper's default density).
	// Categories can be re-registered at any time, even mid-query.
	if err := db.RegisterObjects(rnknn.DefaultCategory, gen.Uniform(g, 0.001, 2)); err != nil {
		panic(err)
	}
	n, _ := db.NumObjects(rnknn.DefaultCategory)
	fmt.Printf("object set: %d objects\n", n)

	ctx := context.Background()
	query := int32(g.NumVertices() / 3)
	for _, k := range []int{1, 5, 10} {
		results, err := db.KNN(ctx, query, k)
		if err != nil {
			panic(err)
		}
		fmt.Printf("k=%-2d -> %s\n", k, rnknn.FormatResults(results))
	}
	fmt.Println("G-tree build time:", db.Stats().Indexes["Gtree"].BuildTime.Round(1e6))
}
