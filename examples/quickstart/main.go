// Quickstart: generate a road network, build a G-tree, and answer a kNN
// query — the minimal end-to-end use of the library.
package main

import (
	"fmt"

	"rnknn/internal/core"
	"rnknn/internal/gen"
	"rnknn/internal/knn"
)

func main() {
	// A ~5k-vertex synthetic road network (perturbed grid with highway
	// tiers and degree-2 chains; see internal/gen).
	g := gen.Network(gen.NetworkSpec{Name: "quickstart", Rows: 48, Cols: 60, Seed: 1})
	fmt.Printf("road network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges()/2)

	// 0.1%% of vertices host objects (the paper's default density).
	objects := knn.NewObjectSet(g, gen.Uniform(g, 0.001, 2))
	fmt.Printf("object set: %d objects\n", objects.Len())

	// The Engine lazily builds each road-network index once and binds
	// methods to interchangeable object sets.
	engine := core.New(g)
	method, err := engine.NewMethod(core.Gtree, objects)
	if err != nil {
		panic(err)
	}

	query := int32(g.NumVertices() / 3)
	for _, k := range []int{1, 5, 10} {
		results := method.KNN(query, k)
		fmt.Printf("k=%-2d -> %s\n", k, knn.FormatResults(results))
	}
	fmt.Println("G-tree build time:", engine.BuildTimes["Gtree"].Round(1e6))
}
