module rnknn

go 1.24
