package rnknn

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links are not used in this repository.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks fails when the repository's authored documentation —
// README.md, everything under docs/, and cmd/README.md — links to an
// intra-repo path that does not exist, the CI guard behind keeping the docs
// navigable as the tree moves. Imported reference material (SNIPPETS.md,
// PAPERS.md, ...) quotes other repositories' links and is deliberately out
// of scope.
func TestDocLinks(t *testing.T) {
	mdFiles := []string{"README.md", filepath.Join("cmd", "README.md")}
	err := filepath.WalkDir("docs", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) < 4 {
		t.Fatalf("expected README.md, cmd/README.md and docs/*.md; found %v", mdFiles)
	}

	for _, file := range mdFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", file, m[1], resolved)
			}
		}
	}
}
